(* skyloft_run: command-line front end for the reproduction experiments.

   Examples:
     skyloft_run fig5               # schbench comparison (Figure 5)
     skyloft_run fig8b --full      # RocksDB sweep at 1s per point
     skyloft_run table6            # preemption mechanism costs
     skyloft_run all --quick       # everything, fast *)

open Cmdliner
module E = Skyloft_experiments
module Time = Skyloft_sim.Time

let config_term =
  let quick =
    Arg.(value & flag & info [ "quick" ] ~doc:"Short runs (80 ms per data point).")
  in
  let full =
    Arg.(value & flag & info [ "full" ] ~doc:"Long runs (1 s per data point).")
  in
  let duration_ms =
    Arg.(
      value
      & opt (some int) None
      & info [ "duration-ms" ] ~docv:"MS" ~doc:"Simulated milliseconds per data point.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed.")
  in
  let jobs =
    Arg.(
      value
      & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Run sweep cells across $(docv) domains.  Results are \
             byte-identical at any value: every data point is an \
             independent fixed-seed simulation, so parallelism only \
             changes wall-clock time.")
  in
  let requests =
    Arg.(
      value
      & opt (some int) None
      & info [ "requests" ] ~docv:"N"
          ~doc:
            "Requests per cell for request-driven experiments (scale).  \
             Overrides the quick/default/full tier (150k/1M/10M).")
  in
  let build quick full duration_ms seed jobs requests =
    let base =
      if quick then E.Config.quick else if full then E.Config.full else E.Config.default
    in
    let duration =
      match duration_ms with Some ms -> Time.ms ms | None -> base.E.Config.duration
    in
    { E.Config.duration; seed; jobs = max 1 jobs; requests }
  in
  Term.(const build $ quick $ full $ duration_ms $ seed $ jobs $ requests)

let experiments : (string * string * (E.Config.t -> unit)) list =
  [
    ("fig5", "schbench wakeup latency across schedulers",
     fun c -> ignore (E.Fig5.print c));
    ("fig6", "schbench wakeup latency vs RR time slice",
     fun c -> ignore (E.Fig6.print c));
    ("fig7a", "dispersive workload tail latency",
     fun c -> ignore (E.Fig7.print_a c));
    ( "fig7b",
      "dispersive workload co-located with a batch application",
      fun c -> ignore (E.Fig7.print_b c) );
    ( "fig7c",
      "CPU share of the batch application",
      fun c ->
        let b = E.Fig7.print_b c in
        ignore (E.Fig7.print_c c b) );
    ( "colocate-alloc",
      "core-allocation policy comparison (Static/Utilization/Delay)",
      fun c -> ignore (E.Colocate_alloc.print c) );
    ( "fault-sweep",
      "fault-rate sweep: p99 + recovery accounting under injected faults",
      fun c -> ignore (E.Fault_sweep.print c) );
    ( "obs-report",
      "unified observability report: latency attribution + trace analysis",
      fun c -> ignore (E.Obs_report.print c) );
    ("fig8a", "Memcached under the USR workload",
     fun c -> ignore (E.Fig8.print_a c));
    ("fig8b", "RocksDB under the bimodal workload",
     fun c -> ignore (E.Fig8.print_b c));
    ("table4", "scheduler lines of code", fun _ -> ignore (E.Tables.print_table4 ()));
    ("table5", "scheduling-policy parameters", fun _ -> E.Tables.print_table5 ());
    ("table6", "preemption mechanism costs", fun _ -> ignore (E.Tables.print_table6 ()));
    ( "table7",
      "threading operation costs (model; see bench for measured)",
      fun _ -> ignore (E.Tables.print_table7_model ()) );
    ("appswitch", "inter-application switch cost", fun _ -> E.Tables.print_appswitch ());
    ("ablations", "design-choice ablations (tick tax, 2a-vs-2b, dispatcher scaling, NIC modes, hybrid)",
     E.Ablations.print);
    ( "hybrid",
      "hybrid runtime vs both parents (ablation A5 only)",
      fun c -> ignore (E.Ablations.a5_hybrid_vs_parents c) );
    ( "worksteal",
      "work-stealing runtime vs the other three across arrival regimes \
       (ablation A6 only)",
      fun c -> ignore (E.Ablations.a6_worksteal_regimes c) );
    ( "scale",
      "scenario DSL x runtime sweep at millions of requests per cell",
      fun c -> ignore (E.Scale.print c) );
    ( "oversub",
      "oversubscribed machine: multi-runtime tenant sweep under the core broker",
      fun c -> ignore (E.Oversub.print c) );
    ( "golden",
      "print the determinism golden fingerprints (fixed seeds)",
      fun c -> E.Golden.print c );
  ]

let all_cmd config =
  List.iter (fun (_, _, run) -> run config) experiments

let cmd_of (name, doc, run) =
  Cmd.v (Cmd.info name ~doc) Term.(const run $ config_term)

(* trace-dump takes a file, not a Config: decode a flight-recorder binary
   image (e.g. the obs_trace_machine.bin obs-report writes), print the
   census and event lines, and re-verify the trace invariants offline. *)
let trace_dump_cmd =
  let path =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE"
          ~doc:"Flight-recorder binary image (Trace.write_binary output).")
  in
  let limit =
    Arg.(
      value
      & opt int 40
      & info [ "limit" ] ~docv:"N"
          ~doc:"Print at most $(docv) event lines (0 = all).")
  in
  let run path limit = ignore (E.Trace_dump.dump ~path ~limit) in
  Cmd.v
    (Cmd.info "trace-dump"
       ~doc:"Decode and verify a flight-recorder binary trace image")
    Term.(const run $ path $ limit)

let () =
  let default = Term.(const all_cmd $ config_term) in
  let info =
    Cmd.info "skyloft_run" ~version:"1.0"
      ~doc:"Reproduce the Skyloft (SOSP '24) evaluation tables and figures"
  in
  let cmds =
    List.map cmd_of experiments
    @ [ Cmd.v (Cmd.info "all" ~doc:"Run every experiment") default;
        trace_dump_cmd ]
  in
  exit (Cmd.eval (Cmd.group ~default info cmds))
