(* Flight-recorder satellites: the binary ring round-trips arbitrary
   event sequences byte-identically (wrap-around and interning
   included), the truncation contract survives overflow, and a brokered
   multi-tenant placement run satisfies the machine-level trace
   invariants end to end. *)

open Alcotest
module Trace = Skyloft_stats.Trace
module Trace_analysis = Skyloft_obs.Trace_analysis
module E = Skyloft_experiments

let qtest = QCheck_alcotest.to_alcotest

(* ---- property: ring round-trip -------------------------------------------

   Arbitrary event sequences — spans and instants of every kind, names
   drawn from a hot pool and from fresh runtime strings, payloads up to
   full 63-bit magnitude — pushed through a deliberately tiny ring so
   wrap-around is the common case.  The decode view must equal the last
   [capacity] events pushed, and the serialized image must survive
   [of_binary] byte-identically. *)

type op =
  | Op_span of { core : int; app : int; name : string; start : int; dur : int }
  | Op_instant of { core : int; at : int; kind_ix : int; name : string }

let n_kinds = List.length E.Trace_dump.all_kinds
let kind_of_ix ix = List.nth E.Trace_dump.all_kinds (ix mod n_kinds)

let op_gen =
  let open QCheck.Gen in
  let name_gen =
    oneof
      [
        oneofl [ "req"; "tick"; "t0-percpu"; "a" ];
        (* fresh strings exercise the interning table proper, not just
           the pointer memo; sizes 0..6 include the empty string *)
        string_size ~gen:(char_range 'a' 'z') (int_bound 6);
      ]
  in
  (* magnitudes from tiny to the 63-bit extremes the 8-byte encoding
     must carry (bit 62 is the int sign bit) *)
  let word_gen =
    oneof [ int_bound 1000; map (fun i -> i * 1_000_003) (int_bound 1_000_000);
            return max_int; return 0 ]
  in
  let span_gen =
    map
      (fun (core, app, name, (start, dur)) -> Op_span { core; app; name; start; dur })
      (quad (int_bound 63) word_gen name_gen
         (pair (int_bound 1_000_000_000) (int_bound 100_000)))
  in
  let instant_gen =
    map
      (fun (core, at, kind_ix, name) -> Op_instant { core; at; kind_ix; name })
      (quad (int_bound 63) (int_bound 1_000_000_000) (int_bound (n_kinds - 1))
         name_gen)
  in
  oneof [ span_gen; instant_gen ]

let scenario_gen =
  QCheck.Gen.(pair (int_range 1 12) (list_size (int_bound 40) op_gen))

let scenario_arb =
  QCheck.make scenario_gen
    ~print:(fun (cap, ops) ->
      Printf.sprintf "capacity=%d, %d ops" cap (List.length ops))

let apply trace op =
  match op with
  | Op_span { core; app; name; start; dur } ->
      Trace.span trace ~core ~app ~name ~start ~stop:(start + dur)
  | Op_instant { core; at; kind_ix; name } ->
      Trace.instant trace ~core ~at (kind_of_ix kind_ix) ~name

let expected_event op =
  match op with
  | Op_span { core; app; name; start; dur } ->
      Trace.Span { core; app; name; start; stop = start + dur }
  | Op_instant { core; at; kind_ix; name } ->
      Trace.Instant { core; at; kind = kind_of_ix kind_ix; name }

let decode_view trace = List.rev (Trace.fold trace (fun acc ev -> ev :: acc) [])

(* the ring keeps the newest [cap] pushes: drop the front of the list *)
let retained cap ops =
  let n = List.length ops in
  List.filteri (fun i _ -> i >= n - cap) ops

let prop_ring_round_trip =
  QCheck.Test.make ~name:"flat ring: encode/decode/serialize round-trips"
    ~count:300 scenario_arb (fun (cap, ops) ->
      let trace = Trace.create ~capacity:cap () in
      List.iter (apply trace) ops;
      let n = List.length ops in
      let expect = List.map expected_event (retained cap ops) in
      if decode_view trace <> expect then false
      else if Trace.events trace <> min n cap then false
      else if Trace.dropped trace <> max 0 (n - cap) then false
      else
        (* image round-trip: reload and re-serialize byte-identically *)
        let img = Trace.to_binary trace in
        let trace' = Trace.of_binary img in
        Trace.to_binary trace' = img
        && decode_view trace' = expect
        && Trace.dropped trace' = Trace.dropped trace
        && Trace.interned trace' = Trace.interned trace
        && Trace.to_chrome_json trace' = Trace.to_chrome_json trace)

(* ---- truncation contract --------------------------------------------------

   Overflowing a tiny ring must (a) keep exactly the newest [capacity]
   events in the decode view, (b) count the rest as dropped, (c) say so
   in every export: the Chrome JSON "M" trailer carries dropped/retained
   through both the plain and the counter-track export, and the binary
   image carries the counter through a reload. *)

let test_truncation_contract () =
  let cap = 4 in
  let trace = Trace.create ~capacity:cap () in
  for i = 0 to 9 do
    Trace.instant trace ~core:0 ~at:(100 * i) Trace.Wakeup
      ~name:(Printf.sprintf "e%d" i)
  done;
  check int "retained = capacity" cap (Trace.events trace);
  check int "dropped = overflow" 6 (Trace.dropped trace);
  let names =
    List.map
      (function
        | Trace.Instant { name; _ } -> name
        | Trace.Span _ -> "span?")
      (decode_view trace)
  in
  check (list string) "decode view keeps the newest, oldest-first"
    [ "e6"; "e7"; "e8"; "e9" ] names;
  let trailer = {|"name":"skyloft_dropped","ph":"M","pid":0,"tid":0,"args":{"dropped":6,"retained":4}|} in
  let contains hay needle =
    try ignore (Str.search_forward (Str.regexp_string needle) hay 0); true
    with Not_found -> false
  in
  let plain = Trace.to_chrome_json trace in
  check bool "plain export carries the M trailer" true (contains plain trailer);
  check bool "plain export dropped the overflowed events" false
    (contains plain {|"e0"|});
  let perfetto = Trace_analysis.to_chrome_json trace in
  check bool "counter-track export preserves the M trailer" true
    (contains perfetto trailer);
  let reloaded = Trace.of_binary (Trace.to_binary trace) in
  check int "binary image carries the drop counter" 6 (Trace.dropped reloaded);
  check bool "machine checker declines a truncated ring" true
    (Trace_analysis.check_machine trace = [])

(* ---- machine-level invariants over a brokered fleet -----------------------

   The golden machine-obs cell (4 tenants, 3 runtimes, hoard + stale +
   crash faults, shared flight recorder), reloaded from its own binary
   image: per-core spans must be monotone and non-overlapping, and the
   tenant-health edges must pair up — every Quarantine matched by a
   Release (or the run ends quarantined). *)

let test_machine_invariants () =
  let p =
    E.Obs_report.run_machine_point ~seed:7 ~requests:400 ~instrumented:false
  in
  check int "ring dropped nothing" 0 p.E.Obs_report.m_dropped;
  (* go through the image: the checkers run on the decode-from-binary path *)
  let trace = Trace.of_binary p.E.Obs_report.m_binary in
  check int "no structural violations"
    0 (List.length (Trace_analysis.check trace));
  check int "no machine-level violations"
    0 (List.length (Trace_analysis.check_machine trace));
  (* per-core span monotonicity, asserted directly: on each core, every
     span starts no earlier than the previous one stopped *)
  let last_stop = Hashtbl.create 32 in
  let overlaps = ref 0 and spans = ref 0 in
  Trace.iter trace (fun ev ->
      match ev with
      | Trace.Span { core; start; stop; _ } ->
          incr spans;
          (match Hashtbl.find_opt last_stop core with
          | Some prev when start < prev -> incr overlaps
          | _ -> ());
          Hashtbl.replace last_stop core stop
      | Trace.Instant _ -> ());
  check bool "spans recorded" true (!spans > 100);
  check int "per-core spans never overlap" 0 !overlaps;
  check bool "fleet spreads over several cores" true
    (Hashtbl.length last_stop >= 4);
  (* quarantine/release pairing per tenant: strict alternation, with an
     open quarantine allowed only at end of run *)
  let open_q = Hashtbl.create 4 in
  let quarantines = ref 0 and releases = ref 0 and unpaired = ref 0 in
  Trace.iter trace (fun ev ->
      match ev with
      | Trace.Instant { kind = Trace.Quarantine; name; _ } ->
          incr quarantines;
          if Hashtbl.mem open_q name then incr unpaired
          else Hashtbl.replace open_q name ()
      | Trace.Instant { kind = Trace.Release; name; _ } ->
          incr releases;
          if Hashtbl.mem open_q name then Hashtbl.remove open_q name
          else incr unpaired
      | _ -> ());
  check bool "the hoarder was quarantined" true (!quarantines >= 1);
  check bool "quarantine was released" true (!releases >= 1);
  check int "edges strictly alternate per tenant" 0 !unpaired;
  check bool "at most one tenant ends the run quarantined" true
    (Hashtbl.length open_q <= 1)

let suite =
  [
    qtest prop_ring_round_trip;
    test_case "ring overflow: truncation contract" `Quick
      test_truncation_contract;
    test_case "brokered fleet: machine-level trace invariants" `Slow
      test_machine_invariants;
  ]
