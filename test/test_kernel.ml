(* Tests for the kernel substrate: kthreads, the Linux scheduler model,
   and the Skyloft kernel module (binding rule). *)

module Time = Skyloft_sim.Time
module Engine = Skyloft_sim.Engine
module Coro = Skyloft_sim.Coro
module Topology = Skyloft_hw.Topology
module Machine = Skyloft_hw.Machine
module Costs = Skyloft_hw.Costs
module Kthread = Skyloft_kernel.Kthread
module Linux = Skyloft_kernel.Linux
module Kmod = Skyloft_kernel.Kmod
module Histogram = Skyloft_stats.Histogram

let check = Alcotest.check

let make ?(cores = 4) policy =
  let engine = Engine.create () in
  let machine = Machine.create engine (Topology.create ~sockets:1 ~cores_per_socket:cores) in
  let linux = Linux.create machine policy ~cores:(List.init cores Fun.id) in
  (engine, machine, linux)

(* ---- basic execution ---- *)

let test_linux_runs_to_completion () =
  let engine, _, linux = make Linux.cfs_default in
  let done_ = ref false in
  ignore
    (Linux.spawn linux ~name:"t"
       (Coro.Compute (Time.us 100, fun () -> done_ := true; Coro.Exit)));
  Engine.run ~until:(Time.ms 10) engine;
  check Alcotest.bool "finished" true !done_;
  check Alcotest.int "no threads left" 0 (Linux.alive linux)

let test_linux_parallel_threads () =
  let engine, _, linux = make ~cores:4 Linux.cfs_default in
  (* 4 threads x 1ms work on 4 cores should finish in ~1ms, not 4ms *)
  let last_done = ref 0 in
  for i = 1 to 4 do
    ignore
      (Linux.spawn linux ~name:(Printf.sprintf "t%d" i)
         (Coro.Compute (Time.ms 1, fun () -> last_done := Engine.now engine; Coro.Exit)))
  done;
  Engine.run ~until:(Time.ms 20) engine;
  check Alcotest.bool "parallel speedup" true (!last_done > 0 && !last_done < Time.ms 2)

let test_linux_block_wakeup () =
  let engine, _, linux = make Linux.cfs_default in
  let stages = ref [] in
  let worker =
    Linux.spawn linux ~name:"worker"
      (Coro.Compute
         ( Time.us 10,
           fun () ->
             stages := "worked" :: !stages;
             Coro.Block
               (fun () ->
                 stages := "woken" :: !stages;
                 Coro.Exit) ))
  in
  ignore
    (Linux.spawn linux ~name:"waker"
       (Coro.Compute (Time.us 100, fun () ->
            Linux.wakeup linux worker;
            Coro.Exit)));
  Engine.run ~until:(Time.ms 10) engine;
  check (Alcotest.list Alcotest.string) "block then wake" [ "worked"; "woken" ]
    (List.rev !stages)

let test_linux_pending_wake_not_lost () =
  let engine, _, linux = make Linux.cfs_default in
  let finished = ref false in
  let sleeper = ref None in
  let worker =
    Linux.spawn linux ~name:"w"
      (Coro.Compute
         ( Time.ms 1,
           fun () ->
             Coro.Block (fun () -> finished := true; Coro.Exit) ))
  in
  sleeper := Some worker;
  (* Wake it while it is still computing: the wake must be buffered. *)
  ignore
    (Engine.at engine (Time.us 100) (fun () -> Linux.wakeup linux worker));
  Engine.run ~until:(Time.ms 10) engine;
  check Alcotest.bool "pending wake consumed at block" true !finished

let test_linux_wakeup_latency_low_load () =
  (* With idle cores, a wakeup should start within a few microseconds. *)
  let engine, _, linux = make ~cores:4 Linux.cfs_default in
  let worker = Linux.spawn linux ~name:"w" (Coro.Block (fun () -> Coro.Exit)) in
  (* let it block first *)
  ignore (Engine.at engine (Time.us 50) (fun () -> Linux.wakeup linux worker));
  Engine.run ~until:(Time.ms 10) engine;
  let h = Linux.wakeup_hist linux in
  check Alcotest.int "one wakeup sample" 1 (Histogram.count h);
  check Alcotest.bool "wakeup < 5us on idle system" true
    (Histogram.max_value h < Time.us 5)

let test_linux_rr_slicing () =
  (* Two CPU-hogs on one core under RR must interleave at the slice. *)
  let engine, _, linux = make ~cores:1 (Linux.Rr { hz = 1000; slice = Time.ms 10 }) in
  let first_done = ref 0 and second_done = ref 0 in
  ignore
    (Linux.spawn linux ~name:"a"
       (Coro.Compute (Time.ms 30, fun () -> first_done := Engine.now engine; Coro.Exit)));
  ignore
    (Linux.spawn linux ~name:"b"
       (Coro.Compute (Time.ms 30, fun () -> second_done := Engine.now engine; Coro.Exit)));
  Engine.run ~until:(Time.ms 200) engine;
  (* With 10ms slices they interleave: both finish close together (~60ms),
     rather than one at 30ms and the other at 60. *)
  check Alcotest.bool "interleaved" true
    (abs (!first_done - !second_done) < Time.ms 15);
  check Alcotest.bool "both near 60ms" true (!first_done > Time.ms 45)

let test_linux_fifo_like_without_preemption () =
  (* Huge slice = no interleaving: first finishes ~30ms, second ~60ms. *)
  let engine, _, linux = make ~cores:1 (Linux.Rr { hz = 1000; slice = Time.s 100 }) in
  let first_done = ref 0 and second_done = ref 0 in
  ignore
    (Linux.spawn linux ~name:"a"
       (Coro.Compute (Time.ms 30, fun () -> first_done := Engine.now engine; Coro.Exit)));
  ignore
    (Linux.spawn linux ~name:"b"
       (Coro.Compute (Time.ms 30, fun () -> second_done := Engine.now engine; Coro.Exit)));
  Engine.run ~until:(Time.ms 200) engine;
  check Alcotest.bool "a first" true (!first_done < Time.ms 35);
  check Alcotest.bool "b second" true (!second_done > Time.ms 55)

let test_linux_cfs_fairness () =
  (* Two infinite-ish hogs on one core: CFS should give each ~half. *)
  let engine, _, linux = make ~cores:1 Linux.cfs_default in
  let a_ran = ref 0 and b_ran = ref 0 in
  let hog counter =
    let rec go () =
      Coro.Compute
        ( Time.ms 1,
          fun () ->
            counter := !counter + Time.ms 1;
            if Engine.now engine < Time.ms 400 then go () else Coro.Exit )
    in
    go ()
  in
  ignore (Linux.spawn linux ~name:"a" (hog a_ran));
  ignore (Linux.spawn linux ~name:"b" (hog b_ran));
  Engine.run ~until:(Time.ms 500) engine;
  let total = !a_ran + !b_ran in
  let ratio = float_of_int !a_ran /. float_of_int total in
  check Alcotest.bool "roughly fair split" true (ratio > 0.4 && ratio < 0.6)

let test_linux_eevdf_runs () =
  let engine, _, linux = make ~cores:2 Linux.eevdf_tuned in
  let finished = ref 0 in
  for _ = 1 to 8 do
    ignore
      (Linux.spawn linux ~name:"t"
         (Coro.Compute (Time.us 500, fun () -> incr finished; Coro.Exit)))
  done;
  Engine.run ~until:(Time.ms 50) engine;
  check Alcotest.int "all finish" 8 !finished

let test_linux_steal_balances () =
  (* Pin nothing; all spawned while cpu0 busy: idle cores should pull. *)
  let engine, _, linux = make ~cores:4 Linux.cfs_default in
  let finished = ref 0 in
  let last_done = ref 0 in
  for _ = 1 to 8 do
    ignore
      (Linux.spawn linux ~name:"t"
         (Coro.Compute
            (Time.ms 1, fun () -> incr finished; last_done := Engine.now engine; Coro.Exit)))
  done;
  Engine.run ~until:(Time.ms 50) engine;
  check Alcotest.int "all ran" 8 !finished;
  (* 8 x 1ms over 4 cores: should complete in well under 8ms *)
  check Alcotest.bool "parallelised" true (!last_done < Time.ms 4)

let test_linux_affinity_respected () =
  let engine, _, linux = make ~cores:2 Linux.cfs_default in
  let seen = ref (-1) in
  let kt =
    Linux.spawn linux ~name:"pinned" ~affinity:1
      (Coro.Compute (Time.us 10, fun () -> Coro.Exit))
  in
  ignore (Engine.at engine (Time.us 1) (fun () -> seen := kt.Kthread.last_core));
  Engine.run ~until:(Time.ms 10) engine;
  check Alcotest.int "ran on core 1" 1 !seen

let test_linux_yield_requeues () =
  let engine, _, linux = make ~cores:1 Linux.cfs_default in
  let order = ref [] in
  ignore
    (Linux.spawn linux ~name:"a"
       (Coro.Compute
          ( Time.us 10,
            fun () ->
              order := "a1" :: !order;
              Coro.Yield
                (fun () ->
                  order := "a2" :: !order;
                  Coro.Exit) )));
  ignore
    (Linux.spawn linux ~name:"b"
       (Coro.Compute (Time.us 10, fun () -> order := "b" :: !order; Coro.Exit)));
  Engine.run ~until:(Time.ms 10) engine;
  check Alcotest.bool "b ran between a's yield" true (List.rev !order = [ "a1"; "b"; "a2" ])

(* ---- kernel module / binding rule ---- *)

let make_kmod () =
  let engine = Engine.create () in
  let machine = Machine.create engine (Topology.create ~sockets:1 ~cores_per_socket:4) in
  (engine, machine, Kmod.create machine)

let test_kmod_park_and_activate () =
  let _, _, kmod = make_kmod () in
  let kt = Kmod.park_on_cpu kmod ~app:1 ~core:0 in
  check Alcotest.bool "parked inactive" false (Kmod.is_active kt);
  ignore (Kmod.activate kmod kt);
  check Alcotest.bool "active" true (Kmod.is_active kt);
  check Alcotest.bool "registered as active on core" true
    (match Kmod.active_on kmod ~core:0 with Some k -> k == kt | None -> false)

let test_kmod_binding_rule_on_activate () =
  let _, _, kmod = make_kmod () in
  let a = Kmod.park_on_cpu kmod ~app:1 ~core:0 in
  let b = Kmod.park_on_cpu kmod ~app:2 ~core:0 in
  ignore (Kmod.activate kmod a);
  check Alcotest.bool "second activation violates the rule" true
    (try
       ignore (Kmod.activate kmod b);
       false
     with Kmod.Binding_rule_violation _ -> true)

let test_kmod_switch_to () =
  let _, machine, kmod = make_kmod () in
  let a = Kmod.park_on_cpu kmod ~app:1 ~core:2 in
  let b = Kmod.park_on_cpu kmod ~app:2 ~core:2 in
  ignore (Kmod.activate kmod a);
  let cost = Kmod.switch_to kmod ~from:a ~target:b in
  check Alcotest.int "app switch cost is the paper's 1905ns" Costs.app_switch_ns cost;
  check Alcotest.bool "a parked" false (Kmod.is_active a);
  check Alcotest.bool "b active" true (Kmod.is_active b);
  (* the UINTR context followed the switch *)
  check Alcotest.bool "b's context installed" true
    (match Machine.uintr_installed machine ~core:2 with
    | Some ctx -> ctx == Kmod.uintr_ctx b
    | None -> false)

let test_kmod_switch_cross_core_rejected () =
  let _, _, kmod = make_kmod () in
  let a = Kmod.park_on_cpu kmod ~app:1 ~core:0 in
  let b = Kmod.park_on_cpu kmod ~app:2 ~core:1 in
  ignore (Kmod.activate kmod a);
  check Alcotest.bool "cross-core switch rejected" true
    (try
       ignore (Kmod.switch_to kmod ~from:a ~target:b);
       false
     with Kmod.Binding_rule_violation _ -> true)

let test_kmod_switch_from_inactive_rejected () =
  let _, _, kmod = make_kmod () in
  let a = Kmod.park_on_cpu kmod ~app:1 ~core:0 in
  let b = Kmod.park_on_cpu kmod ~app:2 ~core:0 in
  check Alcotest.bool "from must be active" true
    (try
       ignore (Kmod.switch_to kmod ~from:a ~target:b);
       false
     with Kmod.Binding_rule_violation _ -> true)

let test_kmod_terminate_last_rule () =
  let _, _, kmod = make_kmod () in
  let a = Kmod.park_on_cpu kmod ~app:1 ~core:0 in
  let b = Kmod.park_on_cpu kmod ~app:2 ~core:0 in
  ignore (Kmod.activate kmod a);
  (* a is active while b is parked: terminating a would strand b *)
  check Alcotest.bool "terminate active with parked peers rejected" true
    (try
       Kmod.terminate kmod a;
       false
     with Kmod.Binding_rule_violation _ -> true);
  (* park-switch to b, then a (parked) can terminate *)
  ignore (Kmod.switch_to kmod ~from:a ~target:b);
  Kmod.terminate kmod a;
  (* b is now the last one on the core: may terminate even while active *)
  Kmod.terminate kmod b;
  check (Alcotest.option Alcotest.unit) "core empty" None
    (Option.map ignore (Kmod.active_on kmod ~core:0))

let test_kmod_activate_after_terminate_rejected () =
  let _, _, kmod = make_kmod () in
  let a = Kmod.park_on_cpu kmod ~app:1 ~core:0 in
  Kmod.terminate kmod a;
  check Alcotest.bool "exited kthread cannot be reactivated" true
    (try
       ignore (Kmod.activate kmod a);
       false
     with Kmod.Binding_rule_violation _ -> true)

let test_kmod_switch_to_exited_rejected () =
  let _, _, kmod = make_kmod () in
  let a = Kmod.park_on_cpu kmod ~app:1 ~core:0 in
  let b = Kmod.park_on_cpu kmod ~app:2 ~core:0 in
  ignore (Kmod.activate kmod b);
  ignore (Kmod.switch_to kmod ~from:b ~target:a);
  (* b parked and terminates; the core allocator must not be able to hand
     the core back to it afterwards *)
  Kmod.terminate kmod b;
  check Alcotest.bool "switch to exited target rejected" true
    (try
       ignore (Kmod.switch_to kmod ~from:a ~target:b);
       false
     with Kmod.Binding_rule_violation _ -> true)

let test_kmod_timer_enable_sets_sn () =
  let _, _, kmod = make_kmod () in
  let a = Kmod.park_on_cpu kmod ~app:1 ~core:0 in
  Kmod.timer_enable kmod a;
  check Alcotest.bool "SN set" true (Machine.uintr_sn (Kmod.uintr_ctx a))

(* ---- Krq: the indexed runqueue behind the Linux models ---- *)

module Krq = Skyloft_kernel.Krq

let mk_kt ?affinity ?(vruntime = 0.0) ?(deadline = 0.0) tid =
  let kt = Kthread.create ~tid ~name:(Printf.sprintf "t%d" tid) ?affinity Coro.Exit in
  kt.Kthread.vruntime <- vruntime;
  kt.Kthread.deadline <- deadline;
  kt

let names q = List.map (fun (kt : Kthread.t) -> kt.Kthread.name) (Krq.to_list q)
let name_of = function Some (kt : Kthread.t) -> kt.Kthread.name | None -> "?"

let test_krq_fifo_under_equal_keys () =
  (* RR enqueues everything at key 0.0: the order must degenerate to
     enqueue-order FIFO, exactly like the old list append *)
  let q = Krq.create () in
  let kts = List.init 5 mk_kt in
  List.iter (fun kt -> Krq.add q ~key:0.0 kt) kts;
  check (Alcotest.list Alcotest.string) "insertion order"
    [ "t0"; "t1"; "t2"; "t3"; "t4" ] (names q);
  check Alcotest.string "FIFO head" "t0" (name_of (Krq.min_key q));
  Krq.remove q (List.nth kts 0);
  check Alcotest.string "next head" "t1" (name_of (Krq.min_key q));
  (* a re-enqueued thread goes to the back, not its old position *)
  Krq.add q ~key:0.0 (List.nth kts 0);
  check (Alcotest.list Alcotest.string) "requeue at tail"
    [ "t1"; "t2"; "t3"; "t4"; "t0" ] (names q)

let test_krq_min_key_and_ties () =
  let q = Krq.create () in
  let a = mk_kt ~vruntime:5.0 1 in
  let b = mk_kt ~vruntime:3.0 2 in
  let c = mk_kt ~vruntime:3.0 3 in
  List.iter (fun kt -> Krq.add q ~key:kt.Kthread.vruntime kt) [ a; b; c ];
  check Alcotest.string "smallest vruntime wins" "t2" (name_of (Krq.min_key q));
  check (Alcotest.float 1e-9) "min vruntime" 3.0 (Krq.min_vruntime q);
  check (Alcotest.float 1e-9) "sum vruntime" 11.0 (Krq.sum_vruntime q);
  Krq.remove q b;
  check Alcotest.string "tie broken by enqueue order" "t3"
    (name_of (Krq.min_key q))

let test_krq_eevdf_eligible_pick () =
  let q = Krq.create () in
  (* eligible = vruntime <= bound; among those, earliest deadline wins *)
  let a = mk_kt ~vruntime:1.0 ~deadline:9.0 1 in
  let b = mk_kt ~vruntime:2.0 ~deadline:4.0 2 in
  let c = mk_kt ~vruntime:8.0 ~deadline:1.0 3 in
  List.iter (fun kt -> Krq.add q ~key:kt.Kthread.vruntime kt) [ a; b; c ];
  check Alcotest.string "eligible min-deadline" "t2"
    (name_of (Krq.min_deadline_eligible q ~bound:5.0));
  check Alcotest.string "global min-deadline" "t3" (name_of (Krq.min_deadline q));
  check Alcotest.bool "nobody eligible below the floor" true
    (Krq.min_deadline_eligible q ~bound:0.5 = None);
  (* deadline ties break by enqueue order, like the old left fold *)
  let d = mk_kt ~vruntime:2.0 ~deadline:4.0 4 in
  Krq.add q ~key:d.Kthread.vruntime d;
  check Alcotest.string "deadline tie by enqueue order" "t2"
    (name_of (Krq.min_deadline_eligible q ~bound:5.0))

let test_krq_remove_and_double_add () =
  let q = Krq.create () in
  let a = mk_kt 1 and b = mk_kt 2 in
  Krq.add q ~key:0.0 a;
  (* removing an absent thread is a no-op, like the old List.filter *)
  Krq.remove q b;
  check Alcotest.int "still one" 1 (Krq.length q);
  check Alcotest.bool "double add rejected" true
    (try
       Krq.add q ~key:0.0 a;
       false
     with Invalid_argument _ -> true);
  Krq.remove q a;
  Krq.remove q a;
  check Alcotest.bool "empty after remove" true (Krq.is_empty q);
  check (Alcotest.float 1e-9) "min vruntime of empty" infinity (Krq.min_vruntime q);
  check Alcotest.bool "no min" true (Krq.min_key q = None)

let test_krq_first_unpinned () =
  let q = Krq.create () in
  let a = mk_kt ~affinity:0 ~vruntime:1.0 1 in
  let b = mk_kt ~vruntime:9.0 2 in
  let c = mk_kt ~vruntime:2.0 3 in
  List.iter (fun kt -> Krq.add q ~key:kt.Kthread.vruntime kt) [ a; b; c ];
  check Alcotest.bool "has unpinned" true (Krq.has_unpinned q);
  (* the steal victim is the earliest-ENQUEUED unpinned thread, not the
     one with the smallest key *)
  check Alcotest.string "earliest-enqueued unpinned" "t2"
    (name_of (Krq.first_unpinned q));
  Krq.remove q b;
  check Alcotest.string "next unpinned" "t3" (name_of (Krq.first_unpinned q));
  Krq.remove q c;
  check Alcotest.bool "only pinned left" false (Krq.has_unpinned q);
  check Alcotest.bool "no victim" true (Krq.first_unpinned q = None)

(* Krq vs the old list semantics under random interleavings: a sorted
   association list maintained with exactly the pre-Krq folds must agree
   on every query after every operation. *)
let prop_krq_matches_list_reference =
  let op_gen =
    QCheck.(
      list_of_size (Gen.int_range 0 200)
        (triple (int_range 0 2) (int_range 0 30) (int_range 0 100)))
  in
  QCheck.Test.make ~name:"krq: agrees with the list reference" ~count:100 op_gen
    (fun ops ->
      let q = Krq.create () in
      (* reference: (key, seq, kt) list in enqueue order *)
      let reference = ref [] in
      let seq = ref 0 in
      let by_tid = Hashtbl.create 16 in
      let ok = ref true in
      let ref_min_key () =
        match
          List.stable_sort
            (fun (k1, s1, _) (k2, s2, _) -> compare (k1, s1) (k2, s2))
            !reference
        with
        | [] -> None
        | (_, _, kt) :: _ -> Some kt
      in
      List.iter
        (fun (op, tid, key10) ->
          (match op with
          | 0 ->
              if not (Hashtbl.mem by_tid tid) then begin
                let key = float_of_int key10 /. 10.0 in
                let kt = mk_kt ~vruntime:key tid in
                Hashtbl.replace by_tid tid kt;
                Krq.add q ~key kt;
                reference := !reference @ [ (key, !seq, kt) ];
                incr seq
              end
          | 1 -> (
              match Hashtbl.find_opt by_tid tid with
              | Some kt ->
                  Hashtbl.remove by_tid tid;
                  Krq.remove q kt;
                  reference :=
                    List.filter (fun (_, _, kt') -> kt' != kt) !reference
              | None -> Krq.remove q (mk_kt (1000 + tid)))
          | _ -> (
              (* pop the min, as pick_next does *)
              match Krq.min_key q with
              | Some kt ->
                  Hashtbl.remove by_tid kt.Kthread.tid;
                  Krq.remove q kt;
                  reference :=
                    List.filter (fun (_, _, kt') -> kt' != kt) !reference
              | None -> if !reference <> [] then ok := false));
          let sum = List.fold_left (fun acc (k, _, _) -> acc +. k) 0.0 !reference in
          let mn =
            List.fold_left (fun acc (k, _, _) -> Float.min acc k) infinity !reference
          in
          if
            Krq.length q <> List.length !reference
            || name_of (Krq.min_key q) <> name_of (ref_min_key ())
            || abs_float (Krq.sum_vruntime q -. sum) > 1e-6
            || Krq.min_vruntime q <> mn
          then ok := false)
        ops;
      !ok)

let suite =
  [
    Alcotest.test_case "linux: run to completion" `Quick test_linux_runs_to_completion;
    Alcotest.test_case "linux: parallel threads" `Quick test_linux_parallel_threads;
    Alcotest.test_case "linux: block/wakeup" `Quick test_linux_block_wakeup;
    Alcotest.test_case "linux: pending wake" `Quick test_linux_pending_wake_not_lost;
    Alcotest.test_case "linux: wakeup latency low load" `Quick
      test_linux_wakeup_latency_low_load;
    Alcotest.test_case "linux: RR slicing" `Quick test_linux_rr_slicing;
    Alcotest.test_case "linux: no preemption with huge slice" `Quick
      test_linux_fifo_like_without_preemption;
    Alcotest.test_case "linux: CFS fairness" `Quick test_linux_cfs_fairness;
    Alcotest.test_case "linux: EEVDF runs" `Quick test_linux_eevdf_runs;
    Alcotest.test_case "linux: idle stealing" `Quick test_linux_steal_balances;
    Alcotest.test_case "linux: affinity" `Quick test_linux_affinity_respected;
    Alcotest.test_case "linux: yield requeues" `Quick test_linux_yield_requeues;
    Alcotest.test_case "kmod: park/activate" `Quick test_kmod_park_and_activate;
    Alcotest.test_case "kmod: binding rule on activate" `Quick
      test_kmod_binding_rule_on_activate;
    Alcotest.test_case "kmod: switch_to" `Quick test_kmod_switch_to;
    Alcotest.test_case "kmod: cross-core switch rejected" `Quick
      test_kmod_switch_cross_core_rejected;
    Alcotest.test_case "kmod: switch from inactive rejected" `Quick
      test_kmod_switch_from_inactive_rejected;
    Alcotest.test_case "kmod: terminate rules" `Quick test_kmod_terminate_last_rule;
    Alcotest.test_case "kmod: activate after terminate rejected" `Quick
      test_kmod_activate_after_terminate_rejected;
    Alcotest.test_case "kmod: switch to exited target rejected" `Quick
      test_kmod_switch_to_exited_rejected;
    Alcotest.test_case "kmod: timer enable" `Quick test_kmod_timer_enable_sets_sn;
    Alcotest.test_case "krq: FIFO under equal keys" `Quick
      test_krq_fifo_under_equal_keys;
    Alcotest.test_case "krq: min key and ties" `Quick test_krq_min_key_and_ties;
    Alcotest.test_case "krq: EEVDF eligible pick" `Quick test_krq_eevdf_eligible_pick;
    Alcotest.test_case "krq: remove/double-add" `Quick test_krq_remove_and_double_add;
    Alcotest.test_case "krq: first unpinned" `Quick test_krq_first_unpinned;
    QCheck_alcotest.to_alcotest prop_krq_matches_list_reference;
  ]
