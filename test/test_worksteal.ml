(* Behavioural tests for the work-stealing runtime: per-core deques,
   steal-half rebalancing, the persisted steal cursor, and the
   park/unpark path — all over the shared Runtime_core substrate. *)

module Time = Skyloft_sim.Time
module Engine = Skyloft_sim.Engine
module Coro = Skyloft_sim.Coro
module Topology = Skyloft_hw.Topology
module Machine = Skyloft_hw.Machine
module Kmod = Skyloft_kernel.Kmod
module App = Skyloft.App
module Task = Skyloft.Task
module Worksteal = Skyloft.Worksteal

let check = Alcotest.check

let make_rt ?(cores = 4) ?(timer_hz = 100_000) ?(preemption = true) ?quantum
    ?(park = None) () =
  let engine = Engine.create () in
  let machine =
    Machine.create engine (Topology.create ~sockets:1 ~cores_per_socket:8)
  in
  let kmod = Kmod.create machine in
  let rt =
    Worksteal.create machine kmod ~cores:(List.init cores Fun.id) ~timer_hz
      ~preemption ?quantum ~park ()
  in
  let app = Worksteal.create_app rt ~name:"app" in
  (engine, rt, app)

let spawn_timed engine rt app ?cpu name work finished =
  ignore
    (Worksteal.spawn rt app ~name ?cpu
       (Coro.Compute (work, fun () -> finished := Engine.now engine; Coro.Exit)))

(* Both tasks pinned to core 0: core 1 must steal one and they overlap. *)
let test_steals_to_idle_core () =
  let engine, rt, app = make_rt ~cores:2 () in
  let a = ref 0 and b = ref 0 in
  spawn_timed engine rt app ~cpu:0 "a" (Time.ms 1) a;
  spawn_timed engine rt app ~cpu:0 "b" (Time.ms 1) b;
  Engine.run ~until:(Time.ms 5) engine;
  check Alcotest.bool "ran in parallel via stealing" true
    (!a > 0 && !b > 0 && abs (!a - !b) < Time.us 100);
  check Alcotest.bool "a steal was counted" true (Worksteal.steals rt >= 1)

(* Six tasks pinned to core 0 of a 2-core runtime: the idle core's first
   grab takes HALF the backlog in one steal, not one task. *)
let test_steal_half_bulk () =
  let engine, rt, app = make_rt ~cores:2 () in
  let done_ = ref 0 in
  for i = 1 to 6 do
    ignore
      (Worksteal.spawn rt app ~name:(Printf.sprintf "t%d" i) ~cpu:0
         (Coro.Compute (Time.us 100, fun () -> incr done_; Coro.Exit)))
  done;
  Engine.run ~until:(Time.ms 5) engine;
  check Alcotest.int "all completed" 6 !done_;
  check Alcotest.bool "stole at least two tasks in one grab" true
    (Worksteal.stolen_tasks rt >= 2);
  (* bulk transfer: fewer grabs than migrated tasks *)
  check Alcotest.bool "steals < stolen tasks (bulk)" true
    (Worksteal.steals rt < Worksteal.stolen_tasks rt)

(* Without a quantum a long task blocks its core; with one the tick
   preempts it while local work is queued (same punchline as Percpu). *)
let test_quantum_breaks_hol () =
  let engine, rt, app = make_rt ~cores:1 ~quantum:(Time.us 5) () in
  let short = ref 0 in
  ignore
    (Worksteal.spawn rt app ~name:"scan" ~cpu:0
       (Coro.compute_then_exit (Time.us 591)));
  ignore
    (Engine.at engine (Time.us 1) (fun () ->
         spawn_timed engine rt app ~cpu:0 "get" (Time.ns 950) short));
  Engine.run ~until:(Time.ms 2) engine;
  check Alcotest.bool "GET escaped within ~2 quanta" true
    (!short > 0 && !short < Time.us 25)

(* An idle core whose scans keep failing parks (the steal-storm brake) and
   pays the resume cost on its next dispatch. *)
let test_parks_when_scans_fail () =
  let engine, rt, app =
    make_rt ~cores:1 ~park:(Some (Time.us 5, Time.us 2)) ()
  in
  let first = ref 0 and second = ref 0 in
  spawn_timed engine rt app ~cpu:0 "first" (Time.us 10) first;
  (* long gap: the core runs dry, fails its scans and parks *)
  ignore
    (Engine.at engine (Time.ms 1) (fun () ->
         spawn_timed engine rt app ~cpu:0 "second" (Time.us 10) second));
  Engine.run ~until:(Time.ms 2) engine;
  check Alcotest.bool "both completed" true (!first > 0 && !second > 0);
  check Alcotest.bool "the idle core parked" true (Worksteal.parks rt >= 1);
  check Alcotest.bool "the parked core was woken" true (Worksteal.unparks rt >= 1);
  check Alcotest.bool "failed scans were counted" true
    (Worksteal.steal_fails rt >= 1)

let test_no_park_when_disabled () =
  let engine, rt, app = make_rt ~cores:2 () in
  let a = ref 0 in
  spawn_timed engine rt app "a" (Time.us 10) a;
  Engine.run ~until:(Time.ms 2) engine;
  check Alcotest.int "no parks with parking off" 0 (Worksteal.parks rt);
  check Alcotest.int "no unparks either" 0 (Worksteal.unparks rt)

(* Steal probes and migrations are charged: the stolen task's attributed
   overhead includes the remote-cacheline costs, so total overhead on a
   steal-heavy run exceeds the bare switch costs. *)
let test_metrics_registered () =
  let engine, rt, app = make_rt ~cores:2 () in
  let a = ref 0 and b = ref 0 in
  spawn_timed engine rt app ~cpu:0 "a" (Time.us 50) a;
  spawn_timed engine rt app ~cpu:0 "b" (Time.us 50) b;
  Engine.run ~until:(Time.ms 2) engine;
  let reg = Skyloft_obs.Registry.create () in
  Worksteal.register_metrics rt reg;
  let samples = Skyloft_obs.Registry.snapshot reg in
  List.iter
    (fun name ->
      check Alcotest.bool (name ^ " present") true
        (Skyloft_obs.Registry.find samples name <> None))
    [
      "skyloft_worksteal_steals_total";
      "skyloft_worksteal_stolen_tasks_total";
      "skyloft_worksteal_steal_fails_total";
      "skyloft_worksteal_parks_total";
      "skyloft_worksteal_unparks_total";
    ];
  match Skyloft_obs.Registry.find samples "skyloft_worksteal_steals_total" with
  | Some (Skyloft_obs.Registry.Counter n) ->
      check Alcotest.int "steals metric mirrors the counter" (Worksteal.steals rt) n
  | _ -> Alcotest.fail "steals metric not an int counter"

let suite =
  [
    Alcotest.test_case "worksteal: steals to idle core" `Quick
      test_steals_to_idle_core;
    Alcotest.test_case "worksteal: steal-half takes a batch" `Quick
      test_steal_half_bulk;
    Alcotest.test_case "worksteal: quantum breaks HoL" `Quick
      test_quantum_breaks_hol;
    Alcotest.test_case "worksteal: parks on failed scans" `Quick
      test_parks_when_scans_fail;
    Alcotest.test_case "worksteal: no parking when disabled" `Quick
      test_no_park_when_disabled;
    Alcotest.test_case "worksteal: steal metrics registered" `Quick
      test_metrics_registered;
  ]
