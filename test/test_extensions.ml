(* Tests for the §6 extension features: MPK shared-memory protection,
   user-delegated peripheral interrupts (MSI NIC), blocking-event handling,
   and the periodic NIC polling mode. *)

module Time = Skyloft_sim.Time
module Engine = Skyloft_sim.Engine
module Rng = Skyloft_sim.Rng
module Dist = Skyloft_sim.Dist
module Coro = Skyloft_sim.Coro
module Topology = Skyloft_hw.Topology
module Machine = Skyloft_hw.Machine
module Mpk = Skyloft_hw.Mpk
module Vectors = Skyloft_hw.Vectors
module Kmod = Skyloft_kernel.Kmod
module Percpu = Skyloft.Percpu
module App = Skyloft.App
module Summary = Skyloft_stats.Summary
module Nic = Skyloft_net.Nic
module Packet = Skyloft_net.Packet
module Loadgen = Skyloft_net.Loadgen
module Udp_server = Skyloft_apps.Udp_server

let check = Alcotest.check

(* ---- MPK ---- *)

let test_mpk_default_permissive () =
  let mpk = Mpk.create ~cores:2 in
  let key = Mpk.fresh_pkey mpk in
  let region = Mpk.tag_region mpk ~name:"runqueue" key in
  Mpk.read mpk ~core:0 region;
  Mpk.write mpk ~core:0 region

let test_mpk_denies_after_revoke () =
  let mpk = Mpk.create ~cores:2 in
  let key = Mpk.fresh_pkey mpk in
  let region = Mpk.tag_region mpk ~name:"runqueue" key in
  Mpk.wrpkru mpk ~core:0 key ~allow_read:false ~allow_write:false;
  check Alcotest.bool "read faults" true
    (try
       Mpk.read mpk ~core:0 region;
       false
     with Mpk.Protection_fault _ -> true);
  check Alcotest.bool "write faults" true
    (try
       Mpk.write mpk ~core:0 region;
       false
     with Mpk.Protection_fault _ -> true);
  (* per-core: core 1 untouched *)
  Mpk.read mpk ~core:1 region

let test_mpk_write_disable_only () =
  let mpk = Mpk.create ~cores:1 in
  let key = Mpk.fresh_pkey mpk in
  let region = Mpk.tag_region mpk ~name:"meta" key in
  Mpk.wrpkru mpk ~core:0 key ~allow_read:true ~allow_write:false;
  Mpk.read mpk ~core:0 region;
  check Alcotest.bool "write still faults" true
    (try
       Mpk.write mpk ~core:0 region;
       false
     with Mpk.Protection_fault _ -> true)

let test_mpk_guardian () =
  let mpk = Mpk.create ~cores:1 in
  let key = Mpk.fresh_pkey mpk in
  let region = Mpk.tag_region mpk ~name:"shared-rq" key in
  Mpk.wrpkru mpk ~core:0 key ~allow_read:false ~allow_write:false;
  (* inside the guardian: the scheduler may touch the shared state *)
  Mpk.with_guardian mpk ~core:0 key (fun () ->
      Mpk.read mpk ~core:0 region;
      Mpk.write mpk ~core:0 region);
  (* outside again: application code faults *)
  check Alcotest.bool "revoked after guardian" true
    (try
       Mpk.write mpk ~core:0 region;
       false
     with Mpk.Protection_fault _ -> true)

let test_mpk_guardian_restores_on_exception () =
  let mpk = Mpk.create ~cores:1 in
  let key = Mpk.fresh_pkey mpk in
  let region = Mpk.tag_region mpk ~name:"shared" key in
  Mpk.wrpkru mpk ~core:0 key ~allow_read:false ~allow_write:false;
  (try Mpk.with_guardian mpk ~core:0 key (fun () -> failwith "boom") with
  | Failure _ -> ());
  check Alcotest.bool "still revoked after exception" true
    (try
       Mpk.read mpk ~core:0 region;
       false
     with Mpk.Protection_fault _ -> true)

let test_mpk_key_exhaustion () =
  let mpk = Mpk.create ~cores:1 in
  for _ = 1 to 15 do
    ignore (Mpk.fresh_pkey mpk)
  done;
  check Alcotest.bool "16th allocation fails" true
    (try
       ignore (Mpk.fresh_pkey mpk);
       false
     with Invalid_argument _ -> true)

(* ---- NIC modes ---- *)

let pkt ~at ~flow = Packet.create ~arrival:at ~service:(Time.us 1) ~flow ~kind:"r"

let test_nic_periodic_mode_batches () =
  let engine = Engine.create () in
  let nic = Nic.create engine ~queues:1 ~mode:(Nic.Periodic (Time.us 10)) () in
  let got = ref [] in
  Nic.on_packet nic ~queue:0 (fun p -> got := (Engine.now engine, p.Packet.flow) :: !got);
  Nic.rx nic (pkt ~at:0 ~flow:1);
  Nic.rx nic (pkt ~at:0 ~flow:2);
  Engine.run ~until:(Time.us 25) engine;
  (* both delivered together at the first poll boundary *)
  match List.rev !got with
  | [ (t1, 1); (t2, 2) ] ->
      check Alcotest.int "first at poll tick" (Time.us 10) t1;
      check Alcotest.int "second same tick" (Time.us 10) t2
  | _ -> Alcotest.fail "expected two batched deliveries"

let make_msi_server () =
  let engine = Engine.create () in
  let machine = Machine.create engine (Topology.create ~sockets:1 ~cores_per_socket:4) in
  let kmod = Kmod.create machine in
  let cores = [ 0; 1 ] in
  let rt =
    Percpu.create machine kmod ~cores ~preemption:false
      (Skyloft_policies.Work_stealing.create ())
  in
  let app = Percpu.create_app rt ~name:"srv" in
  let nic =
    Nic.create engine ~queues:2 ~mode:(Nic.Msi { machine; cores = [| 0; 1 |] }) ()
  in
  Udp_server.attach_irq rt app nic ~cores;
  (engine, rt, app, nic)

let test_nic_msi_end_to_end () =
  let engine, _, app, nic = make_msi_server () in
  let rng = Rng.create ~seed:2 in
  Loadgen.poisson engine ~rng ~rate_rps:100_000.0 ~service:(Dist.Constant (Time.us 2))
    ~duration:(Time.ms 10) (fun p -> Nic.rx nic p);
  Engine.run ~until:(Time.ms 15) engine;
  check Alcotest.bool "~1000 served over MSI" true (Summary.requests app.App.summary > 800);
  (* MSI delivery latency: ~0.6us + handler; p50 stays a few us *)
  check Alcotest.bool "latency small" true
    (Summary.latency_p app.App.summary 50.0 < Time.us 10)

let test_nic_msi_coalesces () =
  let engine, _, app, nic = make_msi_server () in
  (* burst of 10 packets to the same flow at one instant: one interrupt,
     the driver drains all of them *)
  for _ = 1 to 10 do
    Nic.rx nic (Packet.create ~arrival:0 ~service:(Time.us 1) ~flow:42 ~kind:"r")
  done;
  Engine.run ~until:(Time.ms 1) engine;
  check Alcotest.int "all ten served" 10 (Summary.requests app.App.summary)

(* ---- blocking events (page faults) ---- *)

let test_fault_current_blocks_and_resumes () =
  let engine = Engine.create () in
  let machine = Machine.create engine (Topology.create ~sockets:1 ~cores_per_socket:4) in
  let kmod = Kmod.create machine in
  let rt =
    Percpu.create machine kmod ~cores:[ 0 ] ~preemption:false
      (Skyloft_policies.Fifo.create ())
  in
  let app = Percpu.create_app rt ~name:"a" in
  let faulted_done = ref 0 and other_done = ref 0 in
  ignore
    (Percpu.spawn rt app ~name:"faulty"
       (Coro.Compute (Time.us 100, fun () -> faulted_done := Engine.now engine; Coro.Exit)));
  ignore
    (Percpu.spawn rt app ~name:"other"
       (Coro.Compute (Time.us 50, fun () -> other_done := Engine.now engine; Coro.Exit)));
  (* fault the running task at t=10us for 200us *)
  ignore
    (Engine.at engine (Time.us 10) (fun () ->
         check Alcotest.bool "fault accepted" true
           (Percpu.fault_current rt ~core:0 ~duration:(Time.us 200))));
  Engine.run ~until:(Time.ms 2) engine;
  (* the other task ran during the fault window *)
  check Alcotest.bool "other finished during the fault" true
    (!other_done > 0 && !other_done < Time.us 100);
  (* the faulted task resumed and finished its remaining 90us after 210us *)
  check Alcotest.bool "faulted task completed after resume" true
    (!faulted_done >= Time.us 210 && !faulted_done < Time.us 400)

let test_fault_on_idle_core () =
  let engine = Engine.create () in
  let machine = Machine.create engine (Topology.create ~sockets:1 ~cores_per_socket:2) in
  let kmod = Kmod.create machine in
  let rt =
    Percpu.create machine kmod ~cores:[ 0 ] ~preemption:false
      (Skyloft_policies.Fifo.create ())
  in
  ignore (Percpu.create_app rt ~name:"a");
  check Alcotest.bool "no task to fault" false
    (Percpu.fault_current rt ~core:0 ~duration:(Time.us 10));
  ignore engine

let test_fault_last_runnable_task () =
  (* Edge case: the faulting task is the only runnable task.  The core must
     go idle for the fault window, then pick the task back up and finish
     it — blocked-with-nothing-else must not wedge the core. *)
  let engine = Engine.create () in
  let machine = Machine.create engine (Topology.create ~sockets:1 ~cores_per_socket:2) in
  let kmod = Kmod.create machine in
  let rt =
    Percpu.create machine kmod ~cores:[ 0 ] ~preemption:false
      (Skyloft_policies.Fifo.create ())
  in
  let app = Percpu.create_app rt ~name:"a" in
  let done_at = ref 0 in
  ignore
    (Percpu.spawn rt app ~name:"only"
       (Coro.Compute (Time.us 100, fun () -> done_at := Engine.now engine; Coro.Exit)));
  let idle_during_fault = ref false in
  ignore
    (Engine.at engine (Time.us 10) (fun () ->
         check Alcotest.bool "fault accepted" true
           (Percpu.fault_current rt ~core:0 ~duration:(Time.us 300))));
  ignore
    (Engine.at engine (Time.us 150) (fun () ->
         idle_during_fault := Percpu.is_idle rt ~core:0));
  Engine.run ~until:(Time.ms 2) engine;
  check Alcotest.bool "core idled during the fault" true !idle_during_fault;
  (* 10us ran + 300us fault + remaining 90us *)
  check Alcotest.bool "task resumed and completed" true
    (!done_at >= Time.us 400 && !done_at < Time.us 600)

let test_fault_be_task_stays_out_of_lc_queues () =
  (* Edge case: the fault hits a core inside a BE grant, i.e. the current
     task is a best-effort batch worker.  The blocked BE task must come
     back through the BE queue, not the LC policy's runqueues — and LC
     work arriving during the fault window runs first. *)
  let engine = Engine.create () in
  let machine = Machine.create engine (Topology.create ~sockets:1 ~cores_per_socket:2) in
  let kmod = Kmod.create machine in
  let rt =
    Percpu.create machine kmod ~cores:[ 0 ] ~preemption:false
      (Skyloft_policies.Fifo.create ())
  in
  let lc = Percpu.create_app rt ~name:"lc" in
  let be = Percpu.create_app rt ~name:"batch" in
  Percpu.attach_be_app rt be ~chunk:(Time.us 50) ~workers:1;
  Engine.run ~until:(Time.us 10) engine;
  (* the BE worker owns the core; fault it for 200us *)
  ignore
    (Engine.at engine (Time.us 10) (fun () ->
         check Alcotest.bool "BE task faulted" true
           (Percpu.fault_current rt ~core:0 ~duration:(Time.us 200))));
  let lc_done = ref 0 in
  ignore
    (Engine.at engine (Time.us 20) (fun () ->
         ignore
           (Percpu.spawn rt lc ~name:"req"
              (Coro.Compute
                 (Time.us 30, fun () -> lc_done := Engine.now engine; Coro.Exit)))));
  Engine.run ~until:(Time.ms 3) engine;
  (* LC work ran during the BE fault window *)
  check Alcotest.bool "LC request completed during the fault" true
    (!lc_done > 0 && !lc_done < Time.us 210);
  (* the BE worker came back and kept accumulating busy time afterwards *)
  let busy_at_wake = be.App.busy_ns in
  Engine.run ~until:(Time.ms 4) engine;
  check Alcotest.bool "BE task resumed after the fault" true
    (be.App.busy_ns > busy_at_wake)

(* ---- register_uvec validation ---- *)

let test_register_uvec_reserved () =
  let engine = Engine.create () in
  let machine = Machine.create engine (Topology.create ~sockets:1 ~cores_per_socket:2) in
  let kmod = Kmod.create machine in
  let rt = Percpu.create machine kmod ~cores:[ 0 ] (Skyloft_policies.Fifo.create ()) in
  check Alcotest.bool "timer uvec reserved" true
    (try
       Percpu.register_uvec rt ~uvec:Vectors.uvec_timer (fun _ -> ());
       false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "mpk: permissive default" `Quick test_mpk_default_permissive;
    Alcotest.test_case "mpk: revoke denies" `Quick test_mpk_denies_after_revoke;
    Alcotest.test_case "mpk: write-disable" `Quick test_mpk_write_disable_only;
    Alcotest.test_case "mpk: guardian" `Quick test_mpk_guardian;
    Alcotest.test_case "mpk: guardian exception-safe" `Quick
      test_mpk_guardian_restores_on_exception;
    Alcotest.test_case "mpk: key exhaustion" `Quick test_mpk_key_exhaustion;
    Alcotest.test_case "nic: periodic batches" `Quick test_nic_periodic_mode_batches;
    Alcotest.test_case "nic: MSI end-to-end" `Quick test_nic_msi_end_to_end;
    Alcotest.test_case "nic: MSI coalescing" `Quick test_nic_msi_coalesces;
    Alcotest.test_case "fault: block and resume" `Quick test_fault_current_blocks_and_resumes;
    Alcotest.test_case "fault: idle core" `Quick test_fault_on_idle_core;
    Alcotest.test_case "fault: last runnable task" `Quick test_fault_last_runnable_task;
    Alcotest.test_case "fault: BE task in a BE grant" `Quick
      test_fault_be_task_stays_out_of_lc_queues;
    Alcotest.test_case "uvec: reserved vectors" `Quick test_register_uvec_reserved;
  ]
