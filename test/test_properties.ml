(* Property-based invariants of the scheduling runtimes: for random
   workloads under every policy, work is conserved, everything completes,
   CPU accounting is bounded, latency is at least the service time, and
   execution is deterministic in the seed. *)

module Time = Skyloft_sim.Time
module Engine = Skyloft_sim.Engine
module Coro = Skyloft_sim.Coro
module Topology = Skyloft_hw.Topology
module Machine = Skyloft_hw.Machine
module Kmod = Skyloft_kernel.Kmod
module Summary = Skyloft_stats.Summary
module Percpu = Skyloft.Percpu
module Centralized = Skyloft.Centralized
module App = Skyloft.App

let qtest = QCheck_alcotest.to_alcotest

(* A workload is a list of (spawn time, service time). *)
let workload_gen =
  QCheck.(
    list_of_size (Gen.int_range 1 60)
      (pair (int_range 0 500_000) (int_range 100 100_000)))

type outcome = {
  completed : int;
  busy_ns : int;
  end_time : int;
  p50 : int;
  p100 : int;
  preemptions : int;
}

let policies =
  [
    ("fifo", fun () -> Skyloft_policies.Fifo.create ());
    ("rr", fun () -> Skyloft_policies.Rr.create ~slice:(Time.us 20) ());
    ("cfs", fun () -> Skyloft_policies.Cfs.create ());
    ("eevdf", fun () -> Skyloft_policies.Eevdf.create ());
    ("ws", fun () -> Skyloft_policies.Work_stealing.create ());
    ("ws-preempt", fun () -> Skyloft_policies.Work_stealing.create ~quantum:(Time.us 10) ());
  ]

let run_percpu ctor workload =
  let engine = Engine.create ~seed:1 () in
  let machine = Machine.create engine (Topology.create ~sockets:1 ~cores_per_socket:4) in
  let kmod = Kmod.create machine in
  let rt = Percpu.create machine kmod ~cores:[ 0; 1; 2 ] ~timer_hz:100_000 (ctor ()) in
  let app = Percpu.create_app rt ~name:"w" in
  List.iteri
    (fun i (at, service) ->
      ignore
        (Engine.at engine at (fun () ->
             ignore
               (Percpu.spawn rt app
                  ~name:(Printf.sprintf "t%d" i)
                  ~service (Coro.compute_then_exit service)))))
    workload;
  (* generous drain: total work serialized + spawn horizon *)
  let horizon =
    500_000 + List.fold_left (fun acc (_, s) -> acc + s) 0 workload + Time.ms 50
  in
  Engine.run ~until:horizon engine;
  {
    completed = app.App.completed;
    busy_ns = app.App.busy_ns;
    end_time = horizon;
    p50 = Summary.latency_p app.App.summary 50.0;
    p100 = Summary.latency_p app.App.summary 100.0;
    preemptions = Percpu.preemptions rt;
  }

let total_service workload = List.fold_left (fun acc (_, s) -> acc + s) 0 workload

let prop_all_complete (name, ctor) =
  QCheck.Test.make
    ~name:(Printf.sprintf "percpu/%s: every task completes" name)
    ~count:30 workload_gen
    (fun workload ->
      let o = run_percpu ctor workload in
      o.completed = List.length workload)

let prop_work_conserved (name, ctor) =
  QCheck.Test.make
    ~name:(Printf.sprintf "percpu/%s: busy time covers the work" name)
    ~count:30 workload_gen
    (fun workload ->
      let o = run_percpu ctor workload in
      (* busy time includes switch costs, so it is at least the pure work
         and at most cores x horizon *)
      o.busy_ns >= total_service workload && o.busy_ns <= 3 * o.end_time)

let prop_latency_at_least_service (name, ctor) =
  QCheck.Test.make
    ~name:(Printf.sprintf "percpu/%s: latency >= service" name)
    ~count:30 workload_gen
    (fun workload ->
      let o = run_percpu ctor workload in
      (* the fastest request still had to do its own work (histogram
         bucketing gives ~2% slack) *)
      List.length workload = 0
      || float_of_int o.p100
         >= 0.95
            *. float_of_int (List.fold_left (fun acc (_, s) -> min acc s) max_int workload))

let prop_deterministic (name, ctor) =
  QCheck.Test.make
    ~name:(Printf.sprintf "percpu/%s: deterministic" name)
    ~count:15 workload_gen
    (fun workload ->
      let a = run_percpu ctor workload and b = run_percpu ctor workload in
      a = b)

let prop_fifo_never_preempts =
  QCheck.Test.make ~name:"percpu/fifo: zero preemptions" ~count:30 workload_gen
    (fun workload ->
      let o = run_percpu (fun () -> Skyloft_policies.Fifo.create ()) workload in
      o.preemptions = 0)

let run_centralized workload =
  let engine = Engine.create ~seed:1 () in
  let machine = Machine.create engine (Topology.create ~sockets:1 ~cores_per_socket:8) in
  let kmod = Kmod.create machine in
  let rt =
    Centralized.create machine kmod ~dispatcher_core:0 ~worker_cores:[ 1; 2; 3 ]
      ~quantum:(Time.us 20)
      (Skyloft_policies.Shinjuku.create ())
  in
  let app = Centralized.create_app rt ~name:"lc" in
  List.iteri
    (fun i (at, service) ->
      ignore
        (Engine.at engine at (fun () ->
             ignore
               (Centralized.submit rt app
                  ~name:(Printf.sprintf "t%d" i)
                  ~service (Coro.compute_then_exit service)))))
    workload;
  let horizon = 500_000 + total_service workload + Time.ms 50 in
  Engine.run ~until:horizon engine;
  (app.App.completed, Centralized.queue_length rt)

let prop_centralized_all_complete =
  QCheck.Test.make ~name:"centralized: every request completes, queue drains"
    ~count:30 workload_gen
    (fun workload ->
      let completed, queued = run_centralized workload in
      completed = List.length workload && queued = 0)

(* ---- Histogram sharding ------------------------------------------------ *)

module Histogram = Skyloft_stats.Histogram

(* The correctness base for [-j]-merged scale cells: recording values
   into per-shard histograms and merging the shards must be count-exact
   and percentile-equal to recording everything into one central
   histogram — regardless of how values are split across shards. *)
let prop_histogram_shard_merge =
  QCheck.Test.make ~name:"Histogram.merge_into: shards == central" ~count:100
    QCheck.(
      pair (int_range 1 8)
        (list_of_size (Gen.int_range 1 400) (int_range 0 50_000_000)))
    (fun (shards, values) ->
      let central = Histogram.create () in
      let shard = Array.init shards (fun _ -> Histogram.create ()) in
      List.iteri
        (fun i v ->
          Histogram.record central v;
          Histogram.record shard.(i mod shards) v)
        values;
      let merged = Histogram.create () in
      Array.iter (fun src -> Histogram.merge_into ~src ~dst:merged) shard;
      Histogram.count merged = Histogram.count central
      && Histogram.min_value merged = Histogram.min_value central
      && Histogram.max_value merged = Histogram.max_value central
      && List.for_all
           (fun p -> Histogram.percentile merged p = Histogram.percentile central p)
           [ 0.0; 25.0; 50.0; 90.0; 99.0; 99.9; 100.0 ]
      && Histogram.mean merged = Histogram.mean central)

(* ---- Broker conservation ---------------------------------------------- *)

module Policy = Skyloft_alloc.Policy
module Allocator = Skyloft_alloc.Allocator
module Broker = Skyloft_alloc.Broker

(* Random fleets under random abuse: tenants with random bounds and
   policies, driven by a random script of behaviour flips (congest, go
   idle, freeze the signal, thaw, crash).  After every tick the
   conservation invariants must hold from the outside — grants within the
   machine, every live tenant between its floor and ceiling, crashed
   tenants at zero, fairness a valid Jain index — on top of the broker's
   own internal [check_invariants] (which raises out of the property if
   it ever disagrees). *)

(* A fleet is (capacity, tenants, script): each tenant is (floor,
   headroom, lc?, policy#); each script step is (tenant#, behaviour#). *)
let broker_fleet_gen =
  QCheck.(
    triple (int_range 2 16)
      (list_of_size (Gen.int_range 1 6)
         (quad (int_range 0 2) (int_range 0 4) bool (int_range 0 2)))
      (list_of_size (Gen.int_range 20 80)
         (pair (int_range 0 5) (int_range 0 4))))

type tenant_state = {
  mutable congested : bool;
  mutable frozen : bool;
  mutable busy : int;
}

let prop_broker_conserves_cores =
  QCheck.Test.make ~name:"broker: conservation under random fleets and faults"
    ~count:60 broker_fleet_gen
    (fun (capacity, tenant_specs, script) ->
      QCheck.assume (tenant_specs <> []);
      let engine = Engine.create () in
      let interval = Time.us 5 in
      let config =
        (* tight knobs so short scripts can actually cross the edges *)
        {
          Broker.interval;
          degrade_after = 3;
          hoard_cap = 5;
          hoard_decay = 1;
          quarantine_ticks = 6;
        }
      in
      let broker = Broker.create ~engine ~capacity ~config () in
      (* clamp floors so the sum of initial grants fits the machine *)
      let remaining = ref capacity in
      let tenants =
        List.mapi
          (fun i (g_raw, extra, lc, p) ->
            let g = min g_raw !remaining in
            remaining := !remaining - g;
            let bounds =
              { Allocator.guaranteed = g; burstable = min capacity (g + extra) }
            in
            let st = { congested = false; frozen = false; busy = 0 } in
            let policy =
              match p with
              | 0 -> Policy.static ()
              | 1 -> Policy.delay ()
              | _ -> Policy.utilization ()
            in
            (* tracked via [apply]: [sample] runs once during registration,
               before the tenant is queryable through the broker *)
            let my_grant = ref g in
            Broker.register broker ~tenant:i
              ~name:(Printf.sprintf "t%d" i)
              ~kind:(if lc then Policy.Lc else Policy.Be)
              ~policy ~bounds ~initial:g
              ~sample:(fun () ->
                if st.congested && not st.frozen then
                  st.busy <- st.busy + (max 1 !my_grant * interval);
                if st.frozen then
                  { Allocator.runq_len = 2; oldest_delay = Time.us 15;
                    busy_ns = st.busy }
                else if st.congested then
                  { Allocator.runq_len = 4; oldest_delay = Time.us 20;
                    busy_ns = st.busy }
                else
                  { Allocator.runq_len = 0; oldest_delay = 0; busy_ns = st.busy })
              ~apply:(fun ~granted ~delta:_ ->
                my_grant := granted;
                0);
            (i, bounds, st))
          tenant_specs
      in
      let n = List.length tenants in
      let holds = ref true in
      let check_outside () =
        let total =
          List.fold_left
            (fun acc (i, _, _) -> acc + Broker.granted broker ~tenant:i)
            0 tenants
        in
        if total > capacity then holds := false;
        if Broker.free_cores broker <> capacity - total then holds := false;
        List.iter
          (fun (i, bounds, _) ->
            let g = Broker.granted broker ~tenant:i in
            match Broker.health broker ~tenant:i with
            | Broker.Crashed -> if g <> 0 then holds := false
            | _ ->
                if g < bounds.Allocator.guaranteed
                   || g > bounds.Allocator.burstable
                then holds := false)
          tenants;
        let f = Broker.fairness broker in
        if not (f > 0.0 && f <= 1.0 +. 1e-9) then holds := false
      in
      List.iteri
        (fun k (who, behaviour) ->
          let _, _, st = List.nth tenants (who mod n) in
          (match behaviour with
          | 0 -> st.congested <- true
          | 1 -> st.congested <- false
          | 2 -> st.frozen <- true
          | 3 -> st.frozen <- false
          | _ -> Broker.crash broker ~tenant:(who mod n));
          Engine.run ~until:((k + 1) * interval) engine;
          Broker.tick broker;
          check_outside ())
        script;
      !holds)

let suite =
  List.concat_map
    (fun policy ->
      [
        qtest (prop_all_complete policy);
        qtest (prop_work_conserved policy);
        qtest (prop_latency_at_least_service policy);
      ])
    policies
  @ [
      qtest (prop_deterministic (List.nth policies 1));
      qtest (prop_deterministic (List.nth policies 5));
      qtest prop_fifo_never_preempts;
      qtest prop_centralized_all_complete;
      qtest prop_histogram_shard_merge;
      qtest prop_broker_conserves_cores;
    ]
