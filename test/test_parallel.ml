(* Tests for the domain-parallel sweep driver (lib/experiments/parallel):
   the merged result must be indistinguishable from [List.map] at any
   job count and any cell claim order, a raising cell must fail the run
   cleanly with every domain joined, and [group] must invert the grid
   flattening the experiment drivers use. *)

open Alcotest
module Parallel = Skyloft_experiments.Parallel

let qtest = QCheck_alcotest.to_alcotest
let int_list = Alcotest.(list int)

(* A cell function with some per-cell work and state local to the call,
   so a data race or mis-merged index would actually show up. *)
let cell x =
  let acc = ref 0 in
  for i = 1 to 1000 do
    acc := !acc + ((x * i) mod 97)
  done;
  (x * 1_000_000) + !acc

let test_map_matches_sequential () =
  let items = List.init 23 Fun.id in
  let expected = List.map cell items in
  List.iter
    (fun jobs ->
      check int_list
        (Printf.sprintf "jobs=%d identical to sequential" jobs)
        expected
        (Parallel.map ~jobs cell items))
    [ 1; 2; 3; 4; 8; 64 ]

let test_map_empty_and_singleton () =
  check int_list "empty" [] (Parallel.map ~jobs:4 cell []);
  check int_list "singleton" [ cell 7 ] (Parallel.map ~jobs:4 cell [ 7 ])

(* The core determinism property: for ANY item list, ANY job count and
   ANY claim-order permutation, the merged result equals [List.map]. *)
let prop_any_order_any_jobs =
  let gen =
    QCheck.(
      triple
        (list_of_size (Gen.int_range 0 40) small_signed_int)
        (int_range 1 8)
        (int_range 0 1000))
  in
  QCheck.Test.make ~name:"parallel: any order/jobs = sequential" ~count:60 gen
    (fun (items, jobs, order_seed) ->
      let n = List.length items in
      (* a deterministic pseudo-random permutation of 0..n-1 *)
      let order = Array.init n Fun.id in
      let st = Random.State.make [| order_seed |] in
      for i = n - 1 downto 1 do
        let j = Random.State.int st (i + 1) in
        let tmp = order.(i) in
        order.(i) <- order.(j);
        order.(j) <- tmp
      done;
      Parallel.map ~order ~jobs cell items = List.map cell items)

let test_bad_order_rejected () =
  let items = [ 1; 2; 3 ] in
  check_raises "wrong length"
    (Invalid_argument "Parallel.map: order must have one entry per item")
    (fun () -> ignore (Parallel.map ~order:[| 0; 1 |] ~jobs:2 cell items));
  check_raises "not a permutation"
    (Invalid_argument "Parallel.map: order must be a permutation")
    (fun () -> ignore (Parallel.map ~order:[| 0; 0; 2 |] ~jobs:2 cell items))

exception Cell_failed of int

(* A raising cell fails the whole run: the exception surfaces, no domain
   is left hanging (the call returns), and the pool is immediately
   reusable — which it would not be if a worker domain were stuck. *)
let test_raising_cell_fails_cleanly () =
  let items = List.init 16 Fun.id in
  let f x = if x = 11 then raise (Cell_failed x) else cell x in
  List.iter
    (fun jobs ->
      check bool
        (Printf.sprintf "jobs=%d raising cell surfaces" jobs)
        true
        (try
           ignore (Parallel.map ~jobs f items);
           false
         with Cell_failed 11 -> true);
      (* the pool still works after the failure *)
      check int_list
        (Printf.sprintf "jobs=%d pool reusable after failure" jobs)
        (List.map cell items)
        (Parallel.map ~jobs cell items))
    [ 1; 4 ]

let test_first_failing_index_wins () =
  (* sequential claiming makes the winner deterministic: index 2 raises
     before index 9 is reached, even when the claim order visits 9 first
     — the re-raise picks the smallest failed index among those run *)
  let f x = if x >= 2 then raise (Cell_failed x) else cell x in
  check_raises "smallest failed index re-raised" (Cell_failed 2) (fun () ->
      ignore (Parallel.map ~jobs:1 f (List.init 12 Fun.id)))

(* Nested sweeps must not multiply domains: an inner map from inside a
   worker runs sequentially but still returns the right answer. *)
let test_nested_map_is_flat () =
  let inner x = Parallel.map ~jobs:4 cell [ x; x + 1 ] in
  let expected = List.map inner [ 10; 20; 30; 40 ] in
  check
    (Alcotest.list int_list)
    "nested map correct" expected
    (Parallel.map ~jobs:4 inner [ 10; 20; 30; 40 ])

let test_group () =
  check
    (Alcotest.list int_list)
    "rectangular" [ [ 1; 2 ]; [ 3; 4 ]; [ 5; 6 ] ]
    (Parallel.group ~size:2 [ 1; 2; 3; 4; 5; 6 ]);
  check (Alcotest.list int_list) "empty" [] (Parallel.group ~size:3 []);
  check_raises "ragged input"
    (Invalid_argument "Parallel.group: ragged input") (fun () ->
      ignore (Parallel.group ~size:2 [ 1; 2; 3 ]));
  check_raises "non-positive size"
    (Invalid_argument "Parallel.group: size must be positive") (fun () ->
      ignore (Parallel.group ~size:0 [ 1 ]))

let prop_group_inverts_concat =
  let gen = QCheck.(pair (int_range 1 6) (int_range 0 7)) in
  QCheck.Test.make ~name:"parallel: group inverts concat_map" ~count:100 gen
    (fun (size, rows) ->
      let grid = List.init rows (fun r -> List.init size (fun c -> (r * size) + c)) in
      Parallel.group ~size (List.concat grid) = grid)

let suite =
  [
    test_case "map matches sequential at every job count" `Quick
      test_map_matches_sequential;
    test_case "map: empty and singleton" `Quick test_map_empty_and_singleton;
    qtest prop_any_order_any_jobs;
    test_case "map rejects bad claim orders" `Quick test_bad_order_rejected;
    test_case "raising cell fails cleanly, pool reusable" `Quick
      test_raising_cell_fails_cleanly;
    test_case "smallest failed index wins" `Quick test_first_failing_index_wins;
    test_case "nested map stays flat and correct" `Quick test_nested_map_is_flat;
    test_case "group splits rectangles, rejects ragged" `Quick test_group;
    qtest prop_group_inverts_concat;
  ]
