(* Tests for the simulation substrate: Time, Rng, Dist, Eventq, Engine,
   Coro. *)

module Time = Skyloft_sim.Time
module Rng = Skyloft_sim.Rng
module Dist = Skyloft_sim.Dist
module Eventq = Skyloft_sim.Eventq
module Engine = Skyloft_sim.Engine
module Coro = Skyloft_sim.Coro

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* ---- Time ---- *)

let test_time_units () =
  check Alcotest.int "us" 1_000 (Time.us 1);
  check Alcotest.int "ms" 1_000_000 (Time.ms 1);
  check Alcotest.int "s" 1_000_000_000 (Time.s 1);
  check Alcotest.int "ns identity" 42 (Time.ns 42)

let test_time_cycles () =
  (* 2 GHz: 1000 cycles = 500 ns *)
  check Alcotest.int "of_cycles" 500 (Time.of_cycles 1000);
  check Alcotest.int "to_cycles" 1000 (Time.to_cycles 500);
  check Alcotest.int "roundtrip" 1234 (Time.to_cycles (Time.of_cycles 1234))

let test_time_float () =
  check Alcotest.int "of_us_float" 12_500 (Time.of_us_float 12.5);
  check (Alcotest.float 1e-9) "to_us_float" 12.5 (Time.to_us_float 12_500);
  check (Alcotest.float 1e-9) "to_s_float" 1.5 (Time.to_s_float 1_500_000_000)

let test_time_pp () =
  let s t = Format.asprintf "%a" Time.pp t in
  check Alcotest.string "ns" "999ns" (s 999);
  check Alcotest.string "us" "1.50us" (s 1_500);
  check Alcotest.string "ms" "2.00ms" (s (Time.ms 2));
  check Alcotest.string "s" "3.00s" (s (Time.s 3))

(* ---- Rng ---- *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:7 and b = Rng.create ~seed:7 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_matters () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Rng.bits64 a <> Rng.bits64 b then differs := true
  done;
  check Alcotest.bool "different seeds diverge" true !differs

let test_rng_copy () =
  let a = Rng.create ~seed:3 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  for _ = 1 to 50 do
    check Alcotest.int64 "copy same future" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_split_independent () =
  let a = Rng.create ~seed:3 in
  let child = Rng.split a in
  (* children and parents should not produce identical streams *)
  let same = ref 0 in
  for _ = 1 to 20 do
    if Rng.bits64 a = Rng.bits64 child then incr same
  done;
  check Alcotest.bool "split decorrelates" true (!same < 3)

let prop_int_in_range =
  QCheck.Test.make ~name:"Rng.int stays in range" ~count:500
    QCheck.(pair small_int (int_range 1 10_000))
    (fun (seed, bound) ->
      let rng = Rng.create ~seed in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let prop_uniform_in_unit =
  QCheck.Test.make ~name:"Rng.uniform in [0,1)" ~count:500 QCheck.small_int
    (fun seed ->
      let rng = Rng.create ~seed in
      let v = Rng.uniform rng in
      v >= 0.0 && v < 1.0)

let test_rng_exponential_mean () =
  let rng = Rng.create ~seed:11 in
  let n = 100_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential rng ~mean:100.0
  done;
  let mean = !sum /. float_of_int n in
  check Alcotest.bool "empirical mean within 2%" true (abs_float (mean -. 100.0) < 2.0)

let test_rng_int_bad_bound () =
  let rng = Rng.create ~seed:0 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

(* ---- Dist ---- *)

let test_dist_constant () =
  let rng = Rng.create ~seed:1 in
  for _ = 1 to 10 do
    check Alcotest.int "constant" 500 (Dist.sample (Dist.Constant 500) rng)
  done

let test_dist_bimodal_fractions () =
  let rng = Rng.create ~seed:5 in
  let d = Dist.Bimodal { p_short = 0.9; short = 10; long = 1_000 } in
  let shorts = ref 0 and n = 50_000 in
  for _ = 1 to n do
    if Dist.sample d rng = 10 then incr shorts
  done;
  let frac = float_of_int !shorts /. float_of_int n in
  check Alcotest.bool "~90% short" true (abs_float (frac -. 0.9) < 0.01)

let test_dist_means () =
  check (Alcotest.float 1e-6) "constant mean" 500.0 (Dist.mean (Dist.Constant 500));
  check (Alcotest.float 1e-6) "bimodal mean" 109.0
    (Dist.mean (Dist.Bimodal { p_short = 0.9; short = 10; long = 1_000 }));
  check (Alcotest.float 1e-6) "uniform mean" 150.0
    (Dist.mean (Dist.Uniform { lo = 100; hi = 200 }))

let test_dist_paper_workloads () =
  (* dispersive: 99.5% x 4us + 0.5% x 10ms = 53.98 us *)
  let m = Dist.mean Dist.dispersive /. 1_000.0 in
  check Alcotest.bool "dispersive mean ~54us" true (abs_float (m -. 53.98) < 0.1);
  (* rocksdb: (0.95 + 591)/2 us *)
  let m = Dist.mean Dist.rocksdb_bimodal /. 1_000.0 in
  check Alcotest.bool "rocksdb mean ~296us" true (abs_float (m -. 295.975) < 0.1)

let prop_sample_positive =
  QCheck.Test.make ~name:"Dist.sample always >= 1" ~count:300
    QCheck.(pair small_int (int_range 1 1_000_000))
    (fun (seed, mean) ->
      let rng = Rng.create ~seed in
      let d = Dist.Exponential { mean } in
      Dist.sample d rng >= 1)

let test_dist_empirical_exponential () =
  let rng = Rng.create ~seed:21 in
  let d = Dist.Exponential { mean = 10_000 } in
  let n = 50_000 in
  let sum = ref 0 in
  for _ = 1 to n do
    sum := !sum + Dist.sample d rng
  done;
  let mean = float_of_int !sum /. float_of_int n in
  check Alcotest.bool "exp empirical mean" true (abs_float (mean -. 10_000.) < 200.)

let test_dist_pareto_exact_mean () =
  (* alpha = 2, s = 1000, c = 100_000:
     2*1000*(1 - 1/100) + 100_000*(1/100)^2 = 1980 + 10 = 1990 *)
  check (Alcotest.float 1e-6) "alpha=2 mean" 1990.0
    (Dist.mean (Dist.Pareto { scale = 1_000; alpha = 2.0; cap = 100_000 }));
  (* the alpha = 1 limit: s * (1 + ln (c/s)) *)
  check (Alcotest.float 1e-6) "alpha=1 mean"
    (1_000.0 *. (1.0 +. log 100.0))
    (Dist.mean (Dist.Pareto { scale = 1_000; alpha = 1.0; cap = 100_000 }));
  (* cap = scale degenerates to a constant *)
  check (Alcotest.float 1e-6) "cap=scale mean" 1_000.0
    (Dist.mean (Dist.Pareto { scale = 1_000; alpha = 1.3; cap = 1_000 }))

let test_dist_pareto_bounded () =
  let rng = Rng.create ~seed:9 in
  let d = Dist.Pareto { scale = 1_000; alpha = 1.3; cap = 50_000 } in
  for _ = 1 to 20_000 do
    let x = Dist.sample d rng in
    check Alcotest.bool "within [scale, cap]" true (x >= 1_000 && x <= 50_000)
  done

let test_dist_pareto_invalid () =
  let rng = Rng.create ~seed:0 in
  Alcotest.check_raises "cap < scale"
    (Invalid_argument "Dist.sample: Pareto needs 1 <= scale <= cap and alpha > 0")
    (fun () ->
      ignore (Dist.sample (Dist.Pareto { scale = 100; alpha = 1.3; cap = 50 }) rng));
  Alcotest.check_raises "alpha <= 0"
    (Invalid_argument "Dist.sample: Pareto needs 1 <= scale <= cap and alpha > 0")
    (fun () ->
      ignore (Dist.sample (Dist.Pareto { scale = 100; alpha = 0.0; cap = 500 }) rng))

let test_dist_pareto_empirical_mean () =
  (* The convergence check the scale cells lean on: the capped tail makes
     the empirical mean converge to the exact Dist.mean. *)
  let rng = Rng.create ~seed:33 in
  let d = Dist.pareto_heavy in
  let expected = Dist.mean d in
  let n = 400_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. float_of_int (Dist.sample d rng)
  done;
  let empirical = !sum /. float_of_int n in
  check Alcotest.bool
    (Printf.sprintf "pareto empirical %.1f ~ exact %.1f" empirical expected)
    true
    (abs_float (empirical -. expected) /. expected < 0.05)

let prop_pareto_empirical_mean =
  (* Across random (scale, cap ratio, alpha): sampling converges to the
     closed form.  scale >= 500 keeps integer truncation (< 1 ns per
     draw) far below the 8% tolerance; the cap bounds the variance so
     30k draws suffice even at alpha near 1. *)
  QCheck.Test.make ~name:"Dist.Pareto empirical mean ~ exact mean" ~count:25
    QCheck.(
      quad small_int (int_range 500 5_000) (int_range 2 100)
        (float_range 1.05 3.0))
    (fun (seed, scale, ratio, alpha) ->
      let d = Dist.Pareto { scale; alpha; cap = scale * ratio } in
      let rng = Rng.create ~seed in
      let n = 30_000 in
      let sum = ref 0.0 in
      for _ = 1 to n do
        sum := !sum +. float_of_int (Dist.sample d rng)
      done;
      let empirical = !sum /. float_of_int n and expected = Dist.mean d in
      abs_float (empirical -. expected) /. expected < 0.08)

(* ---- Eventq ---- *)

let test_eventq_ordering () =
  let q = Eventq.create () in
  ignore (Eventq.schedule q ~at:30 "c");
  ignore (Eventq.schedule q ~at:10 "a");
  ignore (Eventq.schedule q ~at:20 "b");
  check (Alcotest.option (Alcotest.pair Alcotest.int Alcotest.string)) "a" (Some (10, "a"))
    (Eventq.pop q);
  check (Alcotest.option (Alcotest.pair Alcotest.int Alcotest.string)) "b" (Some (20, "b"))
    (Eventq.pop q);
  check (Alcotest.option (Alcotest.pair Alcotest.int Alcotest.string)) "c" (Some (30, "c"))
    (Eventq.pop q);
  check (Alcotest.option (Alcotest.pair Alcotest.int Alcotest.string)) "empty" None
    (Eventq.pop q)

let test_eventq_tie_fifo () =
  let q = Eventq.create () in
  ignore (Eventq.schedule q ~at:5 "first");
  ignore (Eventq.schedule q ~at:5 "second");
  ignore (Eventq.schedule q ~at:5 "third");
  let pop () = match Eventq.pop q with Some (_, s) -> s | None -> "?" in
  check Alcotest.string "fifo 1" "first" (pop ());
  check Alcotest.string "fifo 2" "second" (pop ());
  check Alcotest.string "fifo 3" "third" (pop ())

let test_eventq_cancel () =
  let q = Eventq.create () in
  let h = Eventq.schedule q ~at:1 "dead" in
  ignore (Eventq.schedule q ~at:2 "alive");
  Eventq.cancel q h;
  check Alcotest.bool "cancelled" true (Eventq.is_cancelled q h);
  check Alcotest.int "size skips cancelled" 1 (Eventq.size q);
  check (Alcotest.option (Alcotest.pair Alcotest.int Alcotest.string)) "skips dead"
    (Some (2, "alive")) (Eventq.pop q)

let test_eventq_peek () =
  let q = Eventq.create () in
  check (Alcotest.option Alcotest.int) "empty peek" None (Eventq.peek_time q);
  let h = Eventq.schedule q ~at:7 () in
  ignore (Eventq.schedule q ~at:9 ());
  check (Alcotest.option Alcotest.int) "peek min" (Some 7) (Eventq.peek_time q);
  Eventq.cancel q h;
  check (Alcotest.option Alcotest.int) "peek skips cancelled" (Some 9) (Eventq.peek_time q)

(* Regression for the O(1) size counter: double-cancel, cancel after the
   event fired, and cancel after pop must each leave the live count
   exact — the counter-based size must never drift from the truth. *)
let test_eventq_size_counter_exact () =
  let q = Eventq.create () in
  let h1 = Eventq.schedule q ~at:1 "a" in
  let h2 = Eventq.schedule q ~at:2 "b" in
  ignore (Eventq.schedule q ~at:3 "c");
  check Alcotest.int "three live" 3 (Eventq.size q);
  Eventq.cancel q h1;
  Eventq.cancel q h1;
  check Alcotest.int "double cancel counts once" 2 (Eventq.size q);
  ignore (Eventq.pop q);
  check Alcotest.int "pop of live event" 1 (Eventq.size q);
  (* h2 already left the heap via the pop above (the cancelled h1 was
     skipped); cancelling it now must not decrement anything *)
  Eventq.cancel q h2;
  check Alcotest.int "cancel after pop is a no-op" 1 (Eventq.size q);
  check Alcotest.bool "not empty" false (Eventq.is_empty q);
  ignore (Eventq.pop q);
  check Alcotest.int "drained" 0 (Eventq.size q);
  check Alcotest.bool "empty" true (Eventq.is_empty q);
  check (Alcotest.option (Alcotest.pair Alcotest.int Alcotest.string))
    "pop on empty" None (Eventq.pop q);
  check Alcotest.int "size stays 0" 0 (Eventq.size q)

(* The counter vs the ground truth under random schedule/cancel/pop
   interleavings: replay the same operations against a reference count. *)
let prop_eventq_size_matches_reference =
  let op_gen =
    QCheck.(
      list_of_size (Gen.int_range 0 300)
        (pair (int_range 0 2) (int_range 0 10_000)))
  in
  QCheck.Test.make ~name:"Eventq size is exact under random ops" ~count:100
    op_gen (fun ops ->
      let q = Eventq.create () in
      (* independent reference: payload ids of events neither popped nor
         cancelled — exactly the live set [size] claims to count *)
      let live = Hashtbl.create 64 in
      let handles = ref [] in
      let n_handles = ref 0 in
      let fresh = ref 0 in
      let ok = ref true in
      List.iter
        (fun (op, x) ->
          (match op with
          | 0 ->
              let id = !fresh in
              incr fresh;
              let h = Eventq.schedule q ~at:x id in
              handles := (h, id) :: !handles;
              incr n_handles;
              Hashtbl.replace live id ()
          | 1 ->
              if !n_handles > 0 then begin
                let h, id = List.nth !handles (x mod !n_handles) in
                Eventq.cancel q h;
                (* absent when already popped or already cancelled: in
                   both cases the live set must not shrink again *)
                Hashtbl.remove live id
              end
          | _ -> (
              match Eventq.pop q with
              | Some (_, id) -> Hashtbl.remove live id
              | None -> if Hashtbl.length live <> 0 then ok := false));
          if
            Eventq.size q <> Hashtbl.length live
            || Eventq.is_empty q <> (Hashtbl.length live = 0)
          then ok := false)
        ops;
      !ok)

let prop_eventq_sorted =
  QCheck.Test.make ~name:"Eventq pops in nondecreasing time order" ~count:100
    QCheck.(list_of_size (Gen.int_range 0 200) (int_range 0 100_000))
    (fun times ->
      let q = Eventq.create () in
      List.iter (fun at -> ignore (Eventq.schedule q ~at ())) times;
      let rec drain last =
        match Eventq.pop q with
        | None -> true
        | Some (t, ()) -> t >= last && drain t
      in
      drain 0)

let test_eventq_negative_time () =
  let q = Eventq.create () in
  Alcotest.check_raises "negative" (Invalid_argument "Eventq.schedule: negative time")
    (fun () -> ignore (Eventq.schedule q ~at:(-1) ()))

(* Stale-generation rejection: a handle whose event already popped must not
   be able to cancel the event that later reuses its slot.  The free list
   hands the just-freed slot straight back, so the second schedule reuses
   the first one's slot with a bumped generation. *)
let test_eventq_stale_generation () =
  let q = Eventq.create () in
  let old = Eventq.schedule q ~at:1 "old" in
  check (Alcotest.option (Alcotest.pair Alcotest.int Alcotest.string)) "old pops"
    (Some (1, "old")) (Eventq.pop q);
  let fresh = Eventq.schedule q ~at:2 "new" in
  Eventq.cancel q old;
  check Alcotest.bool "stale handle reports nothing cancelled" false
    (Eventq.is_cancelled q old);
  check Alcotest.bool "slot's new occupant untouched" false
    (Eventq.is_cancelled q fresh);
  check Alcotest.int "still one live event" 1 (Eventq.size q);
  check (Alcotest.option (Alcotest.pair Alcotest.int Alcotest.string))
    "new event survives the stale cancel" (Some (2, "new")) (Eventq.pop q)

(* Satellite: interleaved peek/cancel/pop must keep the lazy-cancellation
   bookkeeping exact — [size] never negative, no slot leaked, the
   cancelled-in-heap counter matching a recount — checked by the debug
   invariant walk after every operation. *)
let test_eventq_invariants_interleaved () =
  let q = Eventq.create () in
  Eventq.check_invariants q;
  (* enough events to force two heap growths past the initial capacity *)
  let handles = Array.init 70 (fun i -> Eventq.schedule q ~at:(i / 3) i) in
  Eventq.check_invariants q;
  Array.iteri (fun i h -> if i mod 3 = 0 then Eventq.cancel q h) handles;
  Eventq.check_invariants q;
  let next_cancel = ref 0 in
  let rec drain () =
    match Eventq.peek_time q with
    | None -> ()
    | Some at ->
        (* cancel mid-drain: live, already-cancelled, and already-popped
           handles all come through here — each must be idempotent *)
        if !next_cancel < Array.length handles then begin
          Eventq.cancel q handles.(!next_cancel);
          Eventq.cancel q handles.(!next_cancel);
          incr next_cancel
        end;
        Eventq.check_invariants q;
        (match Eventq.pop q with
        | Some (at', _) ->
            if at' < at then Alcotest.fail "pop went backwards past peek"
        | None -> ());
        check Alcotest.bool "size never negative" true (Eventq.size q >= 0);
        Eventq.check_invariants q;
        drain ()
  in
  drain ();
  check Alcotest.int "drained" 0 (Eventq.size q);
  Eventq.check_invariants q

(* Acceptance gate: steady-state schedule/pop on the flat heap allocates
   nothing.  [pop_exn] avoids the option/tuple of [pop]; the handle is an
   immediate int.  The small tolerance covers the boxed floats the two
   [Gc.minor_words] calls themselves return — 10k round trips at even one
   word each would blow far past it. *)
let test_eventq_zero_alloc () =
  let q = Eventq.create () in
  for i = 1 to 8 do
    ignore (Eventq.schedule q ~at:i ())
  done;
  for i = 9 to 100 do
    ignore (Eventq.schedule q ~at:i ());
    Eventq.pop_exn q
  done;
  let before = Gc.minor_words () in
  for i = 101 to 10_100 do
    ignore (Eventq.schedule q ~at:i ());
    Eventq.pop_exn q
  done;
  let words = Gc.minor_words () -. before in
  if words >= 64.0 then
    Alcotest.failf "steady-state schedule/pop allocated %.0f minor words" words

(* Satellite: the flat SoA heap against a naive sorted-list reference
   through random schedule/cancel/pop/peek scripts.  The model keeps
   (time, seq, id) sorted by (time, seq) — FIFO at equal instants — and
   deletes on cancel; cancelling an id no longer present (double cancel,
   popped handle, reused slot) deletes nothing, which is exactly the
   idempotence + stale-generation contract the flat heap must honour. *)
let prop_eventq_model =
  let op_gen =
    QCheck.(
      list_of_size (Gen.int_range 0 400) (pair (int_range 0 3) (int_range 0 1000)))
  in
  QCheck.Test.make ~name:"Eventq matches the sorted-list reference model"
    ~count:200 op_gen
    (fun ops ->
      let q = Eventq.create () in
      let model = ref [] in
      let rec insert ((t, s, _) as x) = function
        | [] -> [ x ]
        | (t', s', _) :: _ as l when (t, s) < (t', s') -> x :: l
        | y :: tl -> y :: insert x tl
      in
      let handles = ref [] in
      let n_handles = ref 0 in
      let next = ref 0 in
      let ok = ref true in
      List.iter
        (fun (op, x) ->
          (match op with
          | 0 ->
              let id = !next in
              incr next;
              let h = Eventq.schedule q ~at:(x mod 97) id in
              model := insert (x mod 97, id, id) !model;
              handles := (h, id) :: !handles;
              incr n_handles
          | 1 ->
              if !n_handles > 0 then begin
                let h, id = List.nth !handles (x mod !n_handles) in
                Eventq.cancel q h;
                model := List.filter (fun (_, _, id') -> id' <> id) !model
              end
          | 2 -> (
              match (Eventq.pop q, !model) with
              | Some (t, id), (t', _, id') :: tl when t = t' && id = id' ->
                  model := tl
              | None, [] -> ()
              | _ -> ok := false)
          | _ -> (
              match (Eventq.peek_time q, !model) with
              | Some t, (t', _, _) :: _ when t = t' -> ()
              | None, [] -> ()
              | _ -> ok := false));
          if Eventq.size q <> List.length !model then ok := false)
        ops;
      !ok)

(* ---- Engine ---- *)

let test_engine_ordering () =
  let e = Engine.create () in
  let log = ref [] in
  ignore (Engine.at e 30 (fun () -> log := (30, Engine.now e) :: !log));
  ignore (Engine.at e 10 (fun () -> log := (10, Engine.now e) :: !log));
  ignore (Engine.after e 20 (fun () -> log := (20, Engine.now e) :: !log));
  Engine.run e;
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "events fire in order at the right clock"
    [ (10, 10); (20, 20); (30, 30) ]
    (List.rev !log)

let test_engine_until () =
  let e = Engine.create () in
  let fired = ref 0 in
  ignore (Engine.at e 100 (fun () -> incr fired));
  ignore (Engine.at e 200 (fun () -> incr fired));
  Engine.run ~until:150 e;
  check Alcotest.int "only first fired" 1 !fired;
  check Alcotest.int "clock at limit" 150 (Engine.now e);
  Engine.run e;
  check Alcotest.int "second fires on resume" 2 !fired

let test_engine_until_empty_queue () =
  let e = Engine.create () in
  Engine.run ~until:5_000 e;
  check Alcotest.int "clock advances to until" 5_000 (Engine.now e)

let test_engine_every () =
  let e = Engine.create () in
  let count = ref 0 in
  Engine.every e ~period:10 (fun () ->
      incr count;
      !count < 5);
  Engine.run e;
  check Alcotest.int "five firings" 5 !count;
  check Alcotest.int "stops at 50" 50 (Engine.now e)

(* Regression for [every]'s rewrite onto the rearm seam: tick count,
   interleaving with one-shot events (including the FIFO tie at t=10,
   where the earlier-scheduled periodic event fires first), and the
   engine's fired-event total are exactly what the closure-per-tick
   implementation produced. *)
let test_engine_every_rearm_regression () =
  let e = Engine.create () in
  let log = ref [] in
  let ticks = ref 0 in
  Engine.every e ~period:10 (fun () ->
      incr ticks;
      log := Printf.sprintf "tick@%d" (Engine.now e) :: !log;
      !ticks < 3);
  ignore (Engine.at e 5 (fun () -> log := "a@5" :: !log));
  ignore (Engine.at e 10 (fun () -> log := "b@10" :: !log));
  ignore (Engine.at e 25 (fun () -> log := "c@25" :: !log));
  Engine.run e;
  check (Alcotest.list Alcotest.string) "ordering unchanged"
    [ "a@5"; "tick@10"; "b@10"; "tick@20"; "c@25"; "tick@30" ]
    (List.rev !log);
  check Alcotest.int "events_fired unchanged" 6 (Engine.events_fired e);
  check Alcotest.int "nothing pending" 0 (Engine.pending e);
  check Alcotest.int "clock at final tick" 30 (Engine.now e)

(* The rearm seam itself: one stable timer, re-armed and disarmed in
   place; arming an already-armed timer supersedes the pending firing. *)
let test_engine_timer_rearm () =
  let e = Engine.create () in
  let fired = ref [] in
  let tm = Engine.timer e ignore in
  Engine.set_callback tm (fun () -> fired := Engine.now e :: !fired);
  check Alcotest.bool "fresh timer disarmed" false (Engine.armed tm);
  Engine.arm tm ~at:10;
  check Alcotest.bool "armed" true (Engine.armed tm);
  Engine.arm tm ~at:20;  (* supersedes the t=10 firing *)
  Engine.run e;
  check (Alcotest.list Alcotest.int) "only the superseding arm fired" [ 20 ]
    (List.rev !fired);
  check Alcotest.bool "disarmed after firing" false (Engine.armed tm);
  Engine.arm_after tm 5;
  Engine.disarm tm;
  Engine.run e;
  check (Alcotest.list Alcotest.int) "disarm cancels" [ 20 ] (List.rev !fired);
  (* recurring returns the live timer: disarming it stops the series *)
  let n = ref 0 in
  let rt =
    Engine.recurring e ~period:7 (fun () ->
        incr n;
        true)
  in
  ignore (Engine.at e (Engine.now e + 22) (fun () -> Engine.disarm rt));
  Engine.run e;
  check Alcotest.int "three periods before the disarm" 3 !n

let test_engine_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let h = Engine.at e 10 (fun () -> fired := true) in
  Engine.cancel e h;
  Engine.run e;
  check Alcotest.bool "cancelled never fires" false !fired

let test_engine_past_raises () =
  let e = Engine.create () in
  ignore (Engine.at e 100 (fun () -> ()));
  Engine.run e;
  check Alcotest.bool "raises on past schedule" true
    (try
       ignore (Engine.at e 50 ignore);
       false
     with Invalid_argument _ -> true)

let test_engine_nested_schedule () =
  let e = Engine.create () in
  let log = ref [] in
  ignore
    (Engine.at e 10 (fun () ->
         ignore (Engine.after e 5 (fun () -> log := "inner" :: !log));
         log := "outer" :: !log));
  Engine.run e;
  check (Alcotest.list Alcotest.string) "nested" [ "outer"; "inner" ] (List.rev !log);
  check Alcotest.int "clock" 15 (Engine.now e)

let test_engine_max_events () =
  let e = Engine.create () in
  let rec chain () = ignore (Engine.after e 1 chain) in
  chain ();
  Engine.run ~max_events:100 e;
  check Alcotest.int "bounded" 100 (Engine.events_fired e)

let test_engine_split_rng_deterministic () =
  let mk () =
    let e = Engine.create ~seed:9 () in
    let r = Engine.split_rng e in
    Rng.bits64 r
  in
  check Alcotest.int64 "same seed, same split" (mk ()) (mk ())

(* ---- Coro ---- *)

let test_coro_repeat () =
  let built = Coro.repeat 3 (fun i tail -> Coro.Compute (i + 1, fun () -> tail)) Coro.Exit in
  (* Walk the chain: should be Compute 1 -> Compute 2 -> Compute 3 -> Exit *)
  let rec walk acc = function
    | Coro.Compute (d, k) -> walk (d :: acc) (k ())
    | Coro.Exit -> List.rev acc
    | Coro.Block _ | Coro.Yield _ -> Alcotest.fail "unexpected"
  in
  check (Alcotest.list Alcotest.int) "chain" [ 1; 2; 3 ] (walk [] built)

let test_coro_forever_compute_block () =
  let rec walk n body =
    if n = 0 then true
    else
      match body with
      | Coro.Compute (d, k) -> d = 77 && walk n (k ())
      | Coro.Block k -> walk (n - 1) (k ())
      | Coro.Yield _ | Coro.Exit -> false
  in
  check Alcotest.bool "compute/block alternation" true
    (walk 5 (Coro.forever_compute_block 77))

(* Lazy cancellation contract: cancelling a handle that already fired, or
   one that was already cancelled (any number of times), changes nothing —
   no callback is lost, replayed, or resurrected, and the engine keeps
   working. *)
let prop_cancel_idempotent =
  QCheck.Test.make ~name:"Engine.cancel on fired/cancelled handles is a no-op"
    ~count:100
    QCheck.(list_of_size (Gen.int_range 0 50) (pair (int_range 0 10_000) bool))
    (fun evs ->
      let engine = Engine.create () in
      let fired = ref 0 in
      let handles =
        List.map
          (fun (at, cancel) ->
            let h = Engine.at engine at (fun () -> incr fired) in
            if cancel then Engine.cancel engine h;
            h)
          evs
      in
      (* double-cancel before the run *)
      List.iter2
        (fun h (_, cancel) -> if cancel then Engine.cancel engine h)
        handles evs;
      Engine.run engine;
      let expected = List.length (List.filter (fun (_, c) -> not c) evs) in
      let fired_before = !fired in
      (* cancel every handle — fired and cancelled alike — twice over *)
      List.iter (Engine.cancel engine) handles;
      List.iter (Engine.cancel engine) handles;
      ignore (Engine.at engine 20_000 (fun () -> incr fired));
      Engine.run engine;
      fired_before = expected && !fired = fired_before + 1)

let suite =
  [
    Alcotest.test_case "time: units" `Quick test_time_units;
    Alcotest.test_case "time: cycles" `Quick test_time_cycles;
    Alcotest.test_case "time: float conversions" `Quick test_time_float;
    Alcotest.test_case "time: pp" `Quick test_time_pp;
    Alcotest.test_case "rng: deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng: seeds diverge" `Quick test_rng_seed_matters;
    Alcotest.test_case "rng: copy" `Quick test_rng_copy;
    Alcotest.test_case "rng: split" `Quick test_rng_split_independent;
    Alcotest.test_case "rng: exponential mean" `Slow test_rng_exponential_mean;
    Alcotest.test_case "rng: bad bound" `Quick test_rng_int_bad_bound;
    qtest prop_int_in_range;
    qtest prop_uniform_in_unit;
    Alcotest.test_case "dist: constant" `Quick test_dist_constant;
    Alcotest.test_case "dist: bimodal fractions" `Slow test_dist_bimodal_fractions;
    Alcotest.test_case "dist: exact means" `Quick test_dist_means;
    Alcotest.test_case "dist: paper workloads" `Quick test_dist_paper_workloads;
    Alcotest.test_case "dist: empirical exponential" `Slow test_dist_empirical_exponential;
    Alcotest.test_case "dist: pareto exact means" `Quick test_dist_pareto_exact_mean;
    Alcotest.test_case "dist: pareto bounded" `Slow test_dist_pareto_bounded;
    Alcotest.test_case "dist: pareto invalid args" `Quick test_dist_pareto_invalid;
    Alcotest.test_case "dist: pareto empirical mean" `Slow
      test_dist_pareto_empirical_mean;
    qtest prop_pareto_empirical_mean;
    qtest prop_sample_positive;
    Alcotest.test_case "eventq: ordering" `Quick test_eventq_ordering;
    Alcotest.test_case "eventq: FIFO ties" `Quick test_eventq_tie_fifo;
    Alcotest.test_case "eventq: cancel" `Quick test_eventq_cancel;
    Alcotest.test_case "eventq: peek" `Quick test_eventq_peek;
    Alcotest.test_case "eventq: negative time" `Quick test_eventq_negative_time;
    Alcotest.test_case "eventq: size counter exact" `Quick
      test_eventq_size_counter_exact;
    Alcotest.test_case "eventq: stale generation" `Quick
      test_eventq_stale_generation;
    Alcotest.test_case "eventq: invariants interleaved" `Quick
      test_eventq_invariants_interleaved;
    Alcotest.test_case "eventq: zero-alloc steady state" `Quick
      test_eventq_zero_alloc;
    qtest prop_eventq_size_matches_reference;
    qtest prop_eventq_sorted;
    qtest prop_eventq_model;
    Alcotest.test_case "engine: ordering" `Quick test_engine_ordering;
    Alcotest.test_case "engine: until" `Quick test_engine_until;
    Alcotest.test_case "engine: until empty" `Quick test_engine_until_empty_queue;
    Alcotest.test_case "engine: every" `Quick test_engine_every;
    Alcotest.test_case "engine: every rearm regression" `Quick
      test_engine_every_rearm_regression;
    Alcotest.test_case "engine: timer rearm seam" `Quick test_engine_timer_rearm;
    Alcotest.test_case "engine: cancel" `Quick test_engine_cancel;
    Alcotest.test_case "engine: past raises" `Quick test_engine_past_raises;
    Alcotest.test_case "engine: nested" `Quick test_engine_nested_schedule;
    Alcotest.test_case "engine: max events" `Quick test_engine_max_events;
    Alcotest.test_case "engine: rng determinism" `Quick test_engine_split_rng_deterministic;
    qtest prop_cancel_idempotent;
    Alcotest.test_case "coro: repeat" `Quick test_coro_repeat;
    Alcotest.test_case "coro: forever" `Quick test_coro_forever_compute_block;
  ]
