(* Fault injection (lib/fault) and the recovery machinery it exercises:
   the machine-level interrupt fate hook, host-kernel core steals,
   client-side retry, per-core watchdogs, deadline kills, dispatcher
   failover, allocator degradation, and NIC loss — ending with the
   fault-sweep reconciliation invariant (no task is ever silently lost). *)

open Alcotest
module Engine = Skyloft_sim.Engine
module Time = Skyloft_sim.Time
module Rng = Skyloft_sim.Rng
module Coro = Skyloft_sim.Coro
module Topology = Skyloft_hw.Topology
module Machine = Skyloft_hw.Machine
module Vectors = Skyloft_hw.Vectors
module Kmod = Skyloft_kernel.Kmod
module Packet = Skyloft_net.Packet
module Nic = Skyloft_net.Nic
module Loadgen = Skyloft_net.Loadgen
module App = Skyloft.App
module Percpu = Skyloft.Percpu
module Centralized = Skyloft.Centralized
module Summary = Skyloft_stats.Summary
module Histogram = Skyloft_stats.Histogram
module Allocator = Skyloft_alloc.Allocator
module Alloc_policy = Skyloft_alloc.Policy
module Plan = Skyloft_fault.Plan
module Injector = Skyloft_fault.Injector
module E = Skyloft_experiments

(* ---- machine-level interrupt fate hook ---- *)

let test_machine_fault_hook () =
  let engine = Engine.create () in
  let machine = Machine.create engine (Topology.create ~sockets:1 ~cores_per_socket:2) in
  check bool "default fate is Deliver" true
    (Machine.fault_fate machine ~core:0 Vectors.uintr_notification = Machine.Deliver);
  Machine.set_fault_hook machine (fun ~core vector ->
      if core = 1 && vector = Vectors.uintr_notification then Machine.Drop
      else if vector = Vectors.timer then Machine.Delay (Time.us 7)
      else Machine.Deliver);
  check bool "hook drops the targeted vector on the targeted core" true
    (Machine.fault_fate machine ~core:1 Vectors.uintr_notification = Machine.Drop);
  check bool "other cores unaffected" true
    (Machine.fault_fate machine ~core:0 Vectors.uintr_notification = Machine.Deliver);
  check bool "hook can delay" true
    (Machine.fault_fate machine ~core:0 Vectors.timer = Machine.Delay (Time.us 7));
  Machine.clear_fault_hook machine;
  check bool "cleared hook restores Deliver" true
    (Machine.fault_fate machine ~core:1 Vectors.uintr_notification = Machine.Deliver)

(* ---- host-kernel core steal (Kmod) ---- *)

let test_kmod_steal () =
  let engine = Engine.create () in
  let machine = Machine.create engine (Topology.create ~sockets:1 ~cores_per_socket:2) in
  let kmod = Kmod.create machine in
  check (option int) "no steal yet" None (Kmod.stolen_until kmod ~core:0);
  let reacted = ref [] in
  Kmod.on_steal kmod ~core:0 (fun ~duration -> reacted := duration :: !reacted);
  Kmod.steal_core kmod ~core:0 ~duration:(Time.us 100);
  check (option int) "stolen until steal end" (Some (Time.us 100))
    (Kmod.stolen_until kmod ~core:0);
  check (list int) "runtime reaction fired with the duration" [ Time.us 100 ] !reacted;
  (* overlapping steal extends the outage *)
  ignore
    (Engine.at engine (Time.us 50) (fun () ->
         Kmod.steal_core kmod ~core:0 ~duration:(Time.us 100)));
  ignore
    (Engine.at engine (Time.us 60) (fun () ->
         check (option int) "overlap extends, not restarts" (Some (Time.us 150))
           (Kmod.stolen_until kmod ~core:0)));
  ignore
    (Engine.at engine (Time.us 200) (fun () ->
         check (option int) "steal over" None (Kmod.stolen_until kmod ~core:0)));
  Engine.run engine;
  check int "both steals counted" 2 (Kmod.steals kmod)

(* ---- client-side retry with backoff (Loadgen.retrying) ---- *)

let test_retrying_succeeds_after_retry () =
  let engine = Engine.create () in
  let tries = ref [] in
  let gave_up = ref false in
  Loadgen.retrying engine ~budget:3 ~backoff:(Time.us 100)
    ~attempt:(fun k done_ ->
      tries := (k, Engine.now engine) :: !tries;
      done_ (k = 1))
    (fun () -> gave_up := true);
  Engine.run engine;
  check (list (pair int int)) "try 0 at t=0, try 1 after one backoff"
    [ (0, 0); (1, Time.us 100) ]
    (List.rev !tries);
  check bool "no give-up on success" false !gave_up

let test_retrying_gives_up_with_exponential_backoff () =
  let engine = Engine.create () in
  let tries = ref [] in
  let gave_up_at = ref (-1) in
  Loadgen.retrying engine ~budget:3 ~backoff:(Time.us 100)
    ~attempt:(fun k done_ ->
      tries := (k, Engine.now engine) :: !tries;
      done_ false)
    (fun () -> gave_up_at := Engine.now engine);
  Engine.run engine;
  (* backoff doubles: 100us after try 0, 200us after try 1 *)
  check (list (pair int int)) "exponential backoff between tries"
    [ (0, 0); (1, Time.us 100); (2, Time.us 300) ]
    (List.rev !tries);
  check int "give-up after the last failed try" (Time.us 300) !gave_up_at

let test_retrying_backoff_ceiling () =
  let engine = Engine.create () in
  let tries = ref [] in
  Loadgen.retrying engine ~budget:6 ~backoff:(Time.us 100)
    ~max_backoff:(Time.us 400)
    ~attempt:(fun k done_ ->
      tries := (k, Engine.now engine) :: !tries;
      done_ false)
    (fun () -> ());
  Engine.run engine;
  (* doubles 100 -> 200, then the 400us ceiling holds every later wait *)
  check (list (pair int int)) "backoff saturates at the ceiling"
    [
      (0, 0);
      (1, Time.us 100);
      (2, Time.us 300);
      (3, Time.us 700);
      (4, Time.us 1100);
      (5, Time.us 1500);
    ]
    (List.rev !tries);
  check_raises "ceiling below the base rejected"
    (Invalid_argument "Loadgen.retrying: max_backoff must be >= backoff")
    (fun () ->
      Loadgen.retrying engine ~backoff:(Time.us 100)
        ~max_backoff:(Time.us 50)
        ~attempt:(fun _ done_ -> done_ true)
        (fun () -> ()))

let test_retrying_done_idempotent () =
  let engine = Engine.create () in
  let outcomes = ref 0 in
  Loadgen.retrying engine ~budget:2 ~backoff:(Time.us 10)
    ~attempt:(fun _ done_ ->
      done_ true;
      (* a buggy server calling back twice must not double-count *)
      done_ false)
    (fun () -> incr outcomes);
  Engine.run engine;
  check int "late done_ calls ignored" 0 !outcomes

(* ---- fault plans ---- *)

let test_plan_validation () =
  check_raises "ipi_loss with no probability"
    (Invalid_argument "Plan.ipi_loss: at least one probability must be non-zero")
    (fun () -> ignore (Plan.ipi_loss ()));
  check_raises "packet_loss out of range"
    (Invalid_argument "Plan.packet_loss: probability outside [0, 1]") (fun () ->
      ignore (Plan.packet_loss ~p_drop:1.5 ()));
  check_raises "core_steal with zero period"
    (Invalid_argument "Plan.core_steal: period must be positive") (fun () ->
      ignore (Plan.core_steal ~period:0 ~duration:(Time.us 10) ()));
  check_raises "tenant plan with a negative tenant"
    (Invalid_argument "Plan.tenant_hoard: tenant must be >= 0") (fun () ->
      ignore (Plan.tenant_hoard ~tenant:(-1) ()));
  let w = Plan.window ~start:(Time.us 10) ~stop:(Time.us 20) () in
  check bool "window active inside" true (Plan.active w ~at:(Time.us 15));
  check bool "window half-open at stop" false (Plan.active w ~at:(Time.us 20));
  check bool "window expired past stop" true (Plan.expired w ~at:(Time.us 20))

(* Degenerate windows are rejected at construction, not discovered later
   as a plan that silently never fires (or always fires). *)
let test_window_validation () =
  check_raises "empty window (stop = start)"
    (Invalid_argument "Plan.window: stop must be after start") (fun () ->
      ignore (Plan.window ~start:(Time.us 10) ~stop:(Time.us 10) ()));
  check_raises "inverted window (stop < start)"
    (Invalid_argument "Plan.window: stop must be after start") (fun () ->
      ignore (Plan.window ~start:(Time.us 10) ~stop:(Time.us 5) ()));
  check_raises "negative start"
    (Invalid_argument "Plan.window: start must be >= 0") (fun () ->
      ignore (Plan.window ~start:(-1) ()));
  check_raises "stop before time zero"
    (Invalid_argument "Plan.window: stop must be after start") (fun () ->
      ignore (Plan.window ~stop:0 ()));
  (* the open-ended and instantaneous-start forms remain legal *)
  let w = Plan.window () in
  check bool "default window is always" true (Plan.active w ~at:0);
  check bool "default window never expires" false
    (Plan.expired w ~at:max_int);
  let w1 = Plan.window ~stop:1 () in
  check bool "one-tick window active at 0" true (Plan.active w1 ~at:0);
  check bool "one-tick window over at 1" true (Plan.expired w1 ~at:1)

(* ---- injector: IPI drops reach the machine hook ---- *)

let test_injector_ipi_drop () =
  let engine = Engine.create () in
  let machine = Machine.create engine (Topology.create ~sockets:1 ~cores_per_socket:2) in
  let rng = Rng.create ~seed:11 in
  let inj = Injector.create ~engine ~rng () in
  let target =
    { Injector.machine; kmod = None; nic = None; cores = [ 0 ]; poison = None }
  in
  Injector.arm inj target [ Plan.ipi_loss ~p_drop:1.0 () ];
  check bool "notification IPI to a targeted core drops" true
    (Machine.fault_fate machine ~core:0 Vectors.uintr_notification = Machine.Drop);
  check bool "untargeted core delivers" true
    (Machine.fault_fate machine ~core:1 Vectors.uintr_notification = Machine.Deliver);
  check bool "unrelated vectors deliver" true
    (Machine.fault_fate machine ~core:0 Vectors.resched = Machine.Deliver);
  check int "every drop recorded" 1 (Injector.injected_of inj ~kind:"ipi-drop");
  check bool "event log carries the drop" true
    (List.exists (fun e -> e.Injector.kind = "ipi-drop") (Injector.events inj));
  check_raises "double arm rejected" (Invalid_argument "Injector.arm: already armed")
    (fun () -> Injector.arm inj target [])

(* ---- NIC loss injection ---- *)

let test_nic_loss () =
  let engine = Engine.create () in
  let nic = Nic.create engine ~queues:1 ~ring_capacity:16 () in
  let seen = ref 0 in
  Nic.on_packet nic ~queue:0 (fun _ -> incr seen);
  let pkt i = Packet.create ~arrival:0 ~service:(Time.us 1) ~flow:i ~kind:"get" in
  Nic.set_loss nic (Some (fun p -> p.Packet.flow mod 2 = 0));
  for i = 0 to 9 do
    Nic.rx nic (pkt i)
  done;
  Engine.run engine;
  check int "even packets dropped on the wire" 5 (Nic.injected_drops nic);
  check int "odd packets delivered" 5 !seen;
  check int "all arrivals counted" 10 (Nic.received nic);
  Nic.set_loss nic None;
  Nic.rx nic (pkt 100);
  Engine.run engine;
  check int "loss cleared" 5 (Nic.injected_drops nic)

(* ---- percpu: watchdog rescues a stuck core ---- *)

let test_percpu_watchdog_rescue () =
  let engine = Engine.create () in
  let machine = Machine.create engine (Topology.create ~sockets:1 ~cores_per_socket:2) in
  let kmod = Kmod.create machine in
  (* no timer at all: a poisoned (never-yielding) task can only be broken
     out by the watchdog *)
  let rt =
    Percpu.create machine kmod ~cores:[ 0 ] ~preemption:false
      ~watchdog:(Time.us 50)
      (Skyloft_policies.Fifo.create ())
  in
  let app = Percpu.create_app rt ~name:"a" in
  ignore
    (Percpu.spawn rt app ~name:"poison"
       (Coro.Compute (Time.ms 5, fun () -> Coro.Exit)));
  let short_done = ref 0 in
  ignore
    (Percpu.spawn rt app ~name:"victim"
       (Coro.Compute (Time.us 10, fun () -> short_done := Engine.now engine; Coro.Exit)));
  Engine.run ~until:(Time.ms 1) engine;
  check bool "watchdog rescued the stuck core" true (Percpu.watchdog_rescues rt >= 1);
  check bool "queued task ran after the rescue" true
    (!short_done > 0 && !short_done < Time.us 500);
  check bool "detection latency recorded" true
    (Histogram.count (Percpu.rescue_detection rt) >= 1)

(* ---- percpu: deadline kill ---- *)

let test_percpu_deadline_kill () =
  let engine = Engine.create () in
  let machine = Machine.create engine (Topology.create ~sockets:1 ~cores_per_socket:2) in
  let kmod = Kmod.create machine in
  let rt =
    Percpu.create machine kmod ~cores:[ 0 ] ~preemption:false
      (Skyloft_policies.Fifo.create ())
  in
  let app = Percpu.create_app rt ~name:"a" in
  let dropped = ref 0 and completed = ref 0 in
  (* three fates: completes before the deadline, killed while running,
     killed while still queued behind the runner *)
  ignore
    (Percpu.spawn rt app ~name:"fast" ~deadline:(Time.us 500)
       ~on_drop:(fun _ -> incr dropped)
       (Coro.Compute (Time.us 20, fun () -> incr completed; Coro.Exit)));
  ignore
    (Percpu.spawn rt app ~name:"slow" ~deadline:(Time.us 100)
       ~on_drop:(fun _ -> incr dropped)
       (Coro.Compute (Time.ms 2, fun () -> incr completed; Coro.Exit)));
  ignore
    (Percpu.spawn rt app ~name:"queued" ~deadline:(Time.us 50)
       ~on_drop:(fun _ -> incr dropped)
       (Coro.Compute (Time.us 20, fun () -> incr completed; Coro.Exit)));
  Engine.run ~until:(Time.ms 5) engine;
  check int "one task completed" 1 !completed;
  check int "two tasks dropped" 2 !dropped;
  check int "runtime counter agrees" 2 (Percpu.deadline_drops rt);
  check int "summary drop accounting agrees" 2 (Summary.drops app.App.summary)

(* ---- centralized: lost preemption IPI rescued by the watchdog ---- *)

let test_centralized_watchdog_rescue () =
  let engine = Engine.create () in
  let machine = Machine.create engine (Topology.create ~sockets:1 ~cores_per_socket:4) in
  let kmod = Kmod.create machine in
  let rt =
    Centralized.create machine kmod ~dispatcher_core:0 ~worker_cores:[ 1 ]
      ~quantum:(Time.us 20) ~watchdog:(Time.us 100)
      (Skyloft_policies.Fifo.create ())
  in
  let app = Centralized.create_app rt ~name:"a" in
  (* every preemption notification is lost: quantum expiry cannot preempt,
     so only the watchdog can free the worker for the second request *)
  Machine.set_fault_hook machine (fun ~core:_ vector ->
      if vector = Vectors.uintr_notification then Machine.Drop else Machine.Deliver);
  ignore
    (Centralized.submit rt app ~name:"hog"
       (Coro.Compute (Time.ms 3, fun () -> Coro.Exit)));
  let short_done = ref 0 in
  ignore
    (Centralized.submit rt app ~name:"victim"
       (Coro.Compute (Time.us 10, fun () -> short_done := Engine.now engine; Coro.Exit)));
  Engine.run ~until:(Time.ms 1) engine;
  check bool "watchdog rescued the worker" true (Centralized.watchdog_rescues rt >= 1);
  check bool "second request ran after the rescue" true
    (!short_done > 0 && !short_done < Time.ms 1)

(* ---- centralized: dispatcher failover under a host steal ---- *)

let test_centralized_dispatcher_failover () =
  let engine = Engine.create () in
  let machine = Machine.create engine (Topology.create ~sockets:1 ~cores_per_socket:4) in
  let kmod = Kmod.create machine in
  let rt =
    Centralized.create machine kmod ~dispatcher_core:0 ~worker_cores:[ 1; 2 ]
      ~quantum:(Time.us 20) ~watchdog:(Time.us 100)
      (Skyloft_policies.Fifo.create ())
  in
  let app = Centralized.create_app rt ~name:"a" in
  let served_at = ref 0 in
  ignore
    (Engine.at engine (Time.us 10) (fun () ->
         (* the host kernel steals the dispatcher core for 2 ms *)
         Kmod.steal_core kmod ~core:0 ~duration:(Time.ms 2)));
  (* submitted after the failover deadline (bound = 100 us): without the
     failover the dispatcher would sit wedged until the 2 ms hand-back *)
  ignore
    (Engine.at engine (Time.us 400) (fun () ->
         ignore
           (Centralized.submit rt app ~name:"post-failover"
              (Coro.Compute (Time.us 10, fun () -> served_at := Engine.now engine; Coro.Exit)))));
  Engine.run ~until:(Time.ms 1) engine;
  check bool "watchdog failed the dispatcher over" true (Centralized.failovers rt >= 1);
  check bool "request served long before the steal hand-back" true
    (!served_at > 0 && !served_at < Time.ms 1)

(* ---- centralized: deadline drop ---- *)

let test_centralized_deadline_kill () =
  let engine = Engine.create () in
  let machine = Machine.create engine (Topology.create ~sockets:1 ~cores_per_socket:4) in
  let kmod = Kmod.create machine in
  let rt =
    Centralized.create machine kmod ~dispatcher_core:0 ~worker_cores:[ 1 ]
      ~quantum:0
      (Skyloft_policies.Fifo.create ())
  in
  let app = Centralized.create_app rt ~name:"a" in
  let dropped = ref 0 and completed = ref 0 in
  ignore
    (Centralized.submit rt app ~name:"slow" ~deadline:(Time.us 100)
       ~on_drop:(fun _ -> incr dropped)
       (Coro.Compute (Time.ms 2, fun () -> incr completed; Coro.Exit)));
  ignore
    (Centralized.submit rt app ~name:"queued" ~deadline:(Time.us 50)
       ~on_drop:(fun _ -> incr dropped)
       (Coro.Compute (Time.us 10, fun () -> incr completed; Coro.Exit)));
  Engine.run ~until:(Time.ms 5) engine;
  check int "both requests dropped" 2 !dropped;
  check int "nothing completed" 0 !completed;
  check int "runtime counter agrees" 2 (Centralized.deadline_drops rt);
  check int "summary drop accounting agrees" 2 (Summary.drops app.App.summary)

(* ---- allocator: graceful degradation and recovery ---- *)

let test_allocator_degrades_and_recovers () =
  let engine = Engine.create () in
  let events = ref [] in
  let alloc =
    Allocator.create ~engine
      ~policy:(Alloc_policy.delay ())
      ~interval:(Time.us 5) ~total_cores:4
      ~on_event:(fun e -> events := e.Allocator.action :: !events)
      ~degrade_after:3 ()
  in
  let frozen = ref true in
  let busy = ref 0 in
  Allocator.register alloc ~app:0 ~name:"lc" ~kind:Alloc_policy.Lc
    ~bounds:{ Allocator.guaranteed = 1; burstable = 4 }
    ~initial:2
    ~sample:(fun () ->
      (* work queued, cores granted — but zero progress while frozen *)
      if not !frozen then busy := !busy + Time.us 8;
      { Allocator.runq_len = 4; oldest_delay = Time.us 20; busy_ns = !busy })
    ~apply:(fun ~granted:_ ~delta:_ -> 0);
  Allocator.tick alloc;
  Allocator.tick alloc;
  check bool "not yet degraded below the threshold" false (Allocator.degraded alloc);
  Allocator.tick alloc;
  check bool "degraded at the third stale tick" true (Allocator.degraded alloc);
  check int "one degradation counted" 1 (Allocator.degradations alloc);
  (* progress resumes: signals thaw, the configured policy comes back *)
  frozen := false;
  Allocator.tick alloc;
  Allocator.tick alloc;
  check bool "recovered once progress resumed" false (Allocator.degraded alloc);
  let saw a = List.mem a !events in
  check bool "Degraded event emitted" true (saw Allocator.Degraded);
  check bool "Recovered event emitted" true (saw Allocator.Recovered)

(* ---- reconciliation with zero-service requests ---- *)

(* Regression: [Runtime_core.admit] recorded a completion's summary and
   attribution rows only when the declared service was positive, so a
   degenerate workload of zero-service requests completed without a trace
   — [requests] stayed 0 against N completions and reconciliation against
   the spawn counters broke silently. *)
let test_zero_service_requests_reconcile () =
  let engine = Engine.create ~seed:5 () in
  let machine =
    Machine.create engine (Topology.create ~sockets:1 ~cores_per_socket:2)
  in
  let kmod = Kmod.create machine in
  let rt =
    Percpu.create machine kmod ~cores:[ 0; 1 ] (Skyloft_policies.Fifo.create ())
  in
  let app = Percpu.create_app rt ~name:"degenerate" in
  let n = 12 in
  for i = 0 to n - 1 do
    ignore
      (Engine.at engine (i * Time.us 10) (fun () ->
           (* declared service 0, body exits immediately *)
           ignore (Percpu.spawn rt app ~name:(Printf.sprintf "z%d" i) Coro.Exit)))
  done;
  Engine.run ~until:(Time.ms 2) engine;
  check int "all spawned" n app.App.spawned;
  check int "all completed" n app.App.completed;
  check int "every zero-service completion in the summary" n
    (Summary.requests app.App.summary);
  check int "every zero-service completion attributed" n
    (Skyloft_obs.Attribution.requests app.App.attribution);
  check int "submitted = completed + drops" n
    (app.App.completed + Summary.drops app.App.summary)

(* ---- fault sweep: reconciliation — no task silently lost ---- *)

let test_fault_sweep_zero_lost () =
  let config = { E.Config.duration = Time.ms 5; seed = 7; jobs = 1; requests = None } in
  List.iter
    (fun runtime ->
      let p = E.Fault_sweep.run_point config ~runtime ~rate:0.05 in
      check int
        (Printf.sprintf "%s: submitted all accounted for" p.E.Fault_sweep.runtime)
        0 p.E.Fault_sweep.lost;
      check bool
        (Printf.sprintf "%s: work actually flowed" p.E.Fault_sweep.runtime)
        true
        (p.E.Fault_sweep.submitted > 0 && p.E.Fault_sweep.completed > 0);
      check bool
        (Printf.sprintf "%s: faults actually injected" p.E.Fault_sweep.runtime)
        true
        (p.E.Fault_sweep.injected > 0))
    E.Fault_sweep.runtimes

let suite =
  [
    test_case "machine: interrupt fate hook" `Quick test_machine_fault_hook;
    test_case "kmod: core steal masks and extends" `Quick test_kmod_steal;
    test_case "retrying: succeeds after retry" `Quick test_retrying_succeeds_after_retry;
    test_case "retrying: exponential backoff, give-up" `Quick
      test_retrying_gives_up_with_exponential_backoff;
    test_case "retrying: backoff ceiling" `Quick test_retrying_backoff_ceiling;
    test_case "retrying: done_ idempotent" `Quick test_retrying_done_idempotent;
    test_case "plan: validation and windows" `Quick test_plan_validation;
    test_case "plan: degenerate windows rejected" `Quick test_window_validation;
    test_case "injector: IPI drop" `Quick test_injector_ipi_drop;
    test_case "nic: injected wire loss" `Quick test_nic_loss;
    test_case "percpu: watchdog rescue" `Quick test_percpu_watchdog_rescue;
    test_case "percpu: deadline kill" `Quick test_percpu_deadline_kill;
    test_case "centralized: watchdog rescue" `Quick test_centralized_watchdog_rescue;
    test_case "centralized: dispatcher failover" `Quick
      test_centralized_dispatcher_failover;
    test_case "centralized: deadline kill" `Quick test_centralized_deadline_kill;
    test_case "allocator: degrade and recover" `Quick
      test_allocator_degrades_and_recovers;
    test_case "zero-service requests reconcile" `Quick
      test_zero_service_requests_reconcile;
    test_case "fault-sweep: zero lost tasks" `Slow test_fault_sweep_zero_lost;
  ]
