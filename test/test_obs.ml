(* The observability layer (lib/obs): metrics registry semantics and
   exposition formats, latency-attribution bookkeeping, and the
   trace-analysis invariant checker — ending with a small end-to-end
   per-CPU run whose every request must satisfy the attribution identity
   and whose trace must pass the checker. *)

open Alcotest
module Engine = Skyloft_sim.Engine
module Time = Skyloft_sim.Time
module Coro = Skyloft_sim.Coro
module Topology = Skyloft_hw.Topology
module Machine = Skyloft_hw.Machine
module Kmod = Skyloft_kernel.Kmod
module Percpu = Skyloft.Percpu
module App = Skyloft.App
module Histogram = Skyloft_stats.Histogram
module Timeseries = Skyloft_stats.Timeseries
module Trace = Skyloft_stats.Trace
module Registry = Skyloft_obs.Registry
module Attribution = Skyloft_obs.Attribution
module Trace_analysis = Skyloft_obs.Trace_analysis

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

(* ---- registry ---- *)

let test_registry_name_validation () =
  let reg = Registry.create () in
  check_raises "invalid metric name"
    (Invalid_argument {|Registry: invalid metric name "9bad"|})
    (fun () -> Registry.counter reg "9bad" (fun () -> 0));
  check_raises "invalid label name"
    (Invalid_argument {|Registry: invalid label name "bad-label"|})
    (fun () ->
      Registry.counter reg ~labels:[ ("bad-label", "x") ] "ok" (fun () -> 0))

let test_registry_duplicate_rejected () =
  let reg = Registry.create () in
  Registry.counter reg ~labels:[ Registry.core 0 ] "dup_total" (fun () -> 1);
  (* same name, different labels: fine *)
  Registry.counter reg ~labels:[ Registry.core 1 ] "dup_total" (fun () -> 2);
  (* same name, same labels (in any order): rejected *)
  check_raises "duplicate (name, labels) rejected"
    (Invalid_argument "Registry: duplicate metric dup_total{core=0}")
    (fun () ->
      Registry.counter reg ~labels:[ Registry.core 0 ] "dup_total" (fun () -> 3));
  check int "both registered" 2 (Registry.size reg)

(* Slot-backed counters: a per-core family kept as unboxed words in the
   registry's shared slab must be indistinguishable in every export from
   the closure-backed counters it replaces, survive slab growth past the
   initial capacity, and keep the usual duplicate rejection. *)
let test_registry_counter_slots () =
  let reg = Registry.create () in
  let slots = Registry.core_counter_slots reg ~cores:4 "ticks_total" in
  check int "one instrument per core" 4 (Registry.size reg);
  Registry.bump reg slots.(1);
  Registry.bump reg slots.(1);
  Registry.bump_by reg slots.(3) 40;
  let closure_value = ref 2 in
  Registry.counter reg ~labels:[ ("kind", "closure") ] "ticks_total" (fun () ->
      !closure_value);
  let samples = Registry.snapshot reg in
  check (option (of_pp Fmt.nop)) "slot counter reads its slab word"
    (Some (Registry.Counter 2))
    (Registry.find samples ~labels:[ Registry.core 1 ] "ticks_total");
  check (option (of_pp Fmt.nop)) "bump_by lands"
    (Some (Registry.Counter 40))
    (Registry.find samples ~labels:[ Registry.core 3 ] "ticks_total");
  check (option (of_pp Fmt.nop)) "untouched slot is zero"
    (Some (Registry.Counter 0))
    (Registry.find samples ~labels:[ Registry.core 0 ] "ticks_total");
  (* identical rendering to a closure counter holding the same value *)
  let prom = Registry.to_prometheus samples in
  check bool "slot line matches closure format" true
    (contains ~needle:{|ticks_total{core="1"} 2|} prom
    && contains ~needle:{|ticks_total{kind="closure"} 2|} prom);
  check int "slot_value agrees" 2 (Registry.slot_value reg slots.(1));
  (* growth: past the initial 16-word slab, earlier slots keep their
     values (the blit) and bumps through old slot indices still land *)
  let more =
    Array.init 40 (fun i ->
        Registry.counter_slot reg ~labels:[ Registry.core i ] "grown_total")
  in
  Registry.bump reg more.(39);
  Registry.bump reg slots.(1);
  check int "old slot survives growth" 3 (Registry.slot_value reg slots.(1));
  check int "new slot lands" 1 (Registry.slot_value reg more.(39));
  Registry.set_slot reg more.(0) 7;
  check int "set_slot" 7 (Registry.slot_value reg more.(0));
  check_raises "duplicate slot metric rejected"
    (Invalid_argument "Registry: duplicate metric grown_total{core=0}")
    (fun () ->
      ignore (Registry.counter_slot reg ~labels:[ Registry.core 0 ] "grown_total"))

let test_registry_snapshot_isolation () =
  let reg = Registry.create () in
  let n = ref 1 in
  Registry.counter reg "live_total" (fun () -> !n);
  let h = Histogram.create () in
  Histogram.record h 100;
  Registry.histogram reg "lat_ns" h;
  let s1 = Registry.snapshot reg in
  n := 41;
  Histogram.record h 900;
  let s2 = Registry.snapshot reg in
  (match Registry.find s1 "live_total" with
  | Some (Registry.Counter 1) -> ()
  | _ -> fail "first snapshot must keep the old counter value");
  (match Registry.find s2 "live_total" with
  | Some (Registry.Counter 41) -> ()
  | _ -> fail "second snapshot must see the new counter value");
  match (Registry.find s1 "lat_ns", Registry.find s2 "lat_ns") with
  | Some (Registry.Summary a), Some (Registry.Summary b) ->
      check int "old summary count" 1 a.count;
      check int "new summary count" 2 b.count
  | _ -> fail "histogram materialises as a summary"

let test_registry_prometheus_format () =
  let reg = Registry.create () in
  Registry.counter reg
    ~labels:[ ("app", "a\"b\\c\nd") ]
    ~help:"requests served" "req_total" (fun () -> 7);
  Registry.gauge reg "share" (fun () -> 0.5);
  let h = Histogram.create () in
  List.iter (Histogram.record h) [ 100; 200; 300; 400 ];
  Registry.histogram reg "lat_ns" h;
  let text = Registry.to_prometheus (Registry.snapshot reg) in
  check bool "HELP line" true (contains ~needle:"# HELP req_total requests served" text);
  check bool "TYPE counter" true (contains ~needle:"# TYPE req_total counter" text);
  check bool "label value escaped" true
    (contains ~needle:{|req_total{app="a\"b\\c\nd"} 7|} text);
  check bool "summary type" true (contains ~needle:"# TYPE lat_ns summary" text);
  check bool "p99 quantile row" true (contains ~needle:{|lat_ns{quantile="0.99"}|} text);
  check bool "count row" true (contains ~needle:"lat_ns_count 4" text);
  check bool "gauge row" true (contains ~needle:"share 0.5" text)

let test_registry_series_and_json () =
  let reg = Registry.create () in
  let s = Timeseries.create () in
  Timeseries.record s ~at:0 2;
  Timeseries.record s ~at:100 6;
  Registry.series reg "depth" s;
  let snap = Registry.snapshot ~until:200 reg in
  (match Registry.find snap "depth" with
  | Some (Registry.Level l) ->
      check int "last" 6 l.last;
      check int "max" 6 l.max;
      (* 2 for 100 ns then 6 for 100 ns *)
      check (float 1e-6) "time-weighted mean" 4.0 l.mean
  | _ -> fail "series materialises as a level");
  let json = Registry.to_json snap in
  check bool "json has metrics array" true (contains ~needle:{|"metrics":|} json);
  check bool "json has the instrument" true (contains ~needle:{|"name":"depth"|} json)

(* ---- attribution ---- *)

let test_attribution_identity () =
  let a = Attribution.create () in
  (* exact: queueing 10 + overhead 3 + stall 2 + service 85 = 100 *)
  Attribution.record a ~queueing:10 ~overhead:3 ~stall:2 ~response:100 ~declared:85;
  check int "one request" 1 (Attribution.requests a);
  check int "no mismatch" 0 (Attribution.mismatches a);
  check (float 1e-6) "service is the residue" 85.0
    (Histogram.mean (Attribution.service a));
  (* residue 90 <> declared 85: mismatch *)
  Attribution.record a ~queueing:5 ~overhead:3 ~stall:2 ~response:100 ~declared:85;
  check int "residue/declared disagreement counted" 1 (Attribution.mismatches a);
  (* negative residue: mismatch even with declared 0 *)
  Attribution.record a ~queueing:80 ~overhead:30 ~stall:0 ~response:100 ~declared:0;
  check int "negative residue counted" 2 (Attribution.mismatches a);
  check int "three requests" 3 (Attribution.requests a)

let test_attribution_registers () =
  let reg = Registry.create () in
  let a = Attribution.create () in
  Attribution.record a ~queueing:1 ~overhead:1 ~stall:1 ~response:10 ~declared:7;
  Attribution.register reg ~labels:[ Registry.app "lc" ] a;
  let snap = Registry.snapshot reg in
  match
    Registry.find snap ~labels:[ Registry.app "lc" ] "skyloft_latency_requests_total"
  with
  | Some (Registry.Counter 1) -> ()
  | _ -> fail "attribution request counter registered under the app label"

(* ---- trace analysis ---- *)

let test_analysis_utilization () =
  let trace = Trace.create () in
  Trace.span trace ~core:0 ~app:1 ~name:"a" ~start:0 ~stop:100;
  Trace.span trace ~core:0 ~app:2 ~name:"b" ~start:150 ~stop:250;
  Trace.span trace ~core:1 ~app:1 ~name:"c" ~start:0 ~stop:400;
  Trace.instant trace ~core:0 ~at:400 Trace.Wakeup ~name:"w";
  let reports = Trace_analysis.utilization trace ~until:400 in
  check int "two cores" 2 (List.length reports);
  let r0 = List.nth reports 0 in
  check int "core id ordered" 0 r0.Trace_analysis.core;
  check int "busy" 200 r0.Trace_analysis.busy_ns;
  check int "idle" 200 r0.Trace_analysis.idle_ns;
  check int "spans" 2 r0.Trace_analysis.spans;
  check int "instants" 1 r0.Trace_analysis.instants;
  check (list (pair int int)) "per-app busy" [ (1, 100); (2, 100) ]
    r0.Trace_analysis.per_app;
  check (float 1e-6) "busy share" 0.5 (Trace_analysis.busy_share r0);
  let r1 = List.nth reports 1 in
  check int "core 1 fully busy" 0 r1.Trace_analysis.idle_ns

let test_analysis_valid_trace () =
  let trace = Trace.create () in
  Trace.span trace ~core:0 ~app:1 ~name:"a" ~start:0 ~stop:100;
  Trace.instant trace ~core:0 ~at:100 Trace.Preempt ~name:"a";
  (* back-to-back spans share an edge: not an overlap *)
  Trace.span trace ~core:0 ~app:1 ~name:"b" ~start:100 ~stop:180;
  (* same interval on another core: fine *)
  Trace.span trace ~core:1 ~app:1 ~name:"c" ~start:0 ~stop:180;
  check int "valid trace has no violations" 0
    (List.length (Trace_analysis.check trace))

let test_analysis_overlap_detected () =
  let trace = Trace.create () in
  Trace.span trace ~core:0 ~app:1 ~name:"a" ~start:0 ~stop:100;
  Trace.span trace ~core:0 ~app:1 ~name:"b" ~start:60 ~stop:160;
  match Trace_analysis.check trace with
  | [ v ] ->
      check int "on the shared core" 0 v.Trace_analysis.core;
      check bool "overlap reported" true
        (contains ~needle:"overlaps" v.Trace_analysis.what)
  | l -> fail (Printf.sprintf "expected exactly one violation, got %d" (List.length l))

let test_analysis_orphan_preempt_detected () =
  let trace = Trace.create () in
  Trace.span trace ~core:0 ~app:1 ~name:"a" ~start:0 ~stop:100;
  Trace.instant trace ~core:0 ~at:300 Trace.Preempt ~name:"a";
  (* a non-preempt instant outside every span is fine *)
  Trace.instant trace ~core:0 ~at:350 Trace.Wakeup ~name:"w";
  match Trace_analysis.check trace with
  | [ v ] ->
      check int "at the orphan instant" 300 v.Trace_analysis.at;
      check bool "containment reported" true
        (contains ~needle:"outside every span" v.Trace_analysis.what)
  | l -> fail (Printf.sprintf "expected exactly one violation, got %d" (List.length l))

let test_analysis_nonmonotone_detected () =
  let trace = Trace.create () in
  Trace.span trace ~core:0 ~app:1 ~name:"a" ~start:200 ~stop:300;
  Trace.span trace ~core:1 ~app:1 ~name:"b" ~start:0 ~stop:100;
  let vs = Trace_analysis.check trace in
  check bool "emission-order regression reported" true
    (List.exists
       (fun v -> contains ~needle:"backwards" v.Trace_analysis.what)
       vs)

let test_analysis_counter_tracks () =
  let trace = Trace.create () in
  Trace.span trace ~core:0 ~app:1 ~name:"a" ~start:0 ~stop:100;
  let s = Timeseries.create () in
  Timeseries.record s ~at:50 3;
  let json = Trace_analysis.to_chrome_json ~counters:[ ("depth", s) ] trace in
  check bool "counter event present" true
    (contains ~needle:{|"name":"depth","ph":"C","ts":0.050|} json);
  check bool "counter value" true (contains ~needle:{|"args":{"value":3}|} json);
  check bool "dropped metadata trailer" true
    (contains ~needle:{|"name":"skyloft_dropped","ph":"M"|} json)

(* ---- end to end: a traced per-CPU run must satisfy everything ---- *)

let test_end_to_end_percpu () =
  let engine = Engine.create ~seed:7 () in
  let machine = Machine.create engine (Topology.create ~sockets:1 ~cores_per_socket:2) in
  let kmod = Kmod.create machine in
  let rt =
    Percpu.create machine kmod ~cores:[ 0; 1 ]
      (Skyloft_policies.Work_stealing.create ~quantum:(Time.us 20) ())
  in
  let trace = Trace.create () in
  Percpu.set_trace rt trace;
  let app = Percpu.create_app rt ~name:"lc" in
  let reg = Registry.create () in
  Percpu.register_metrics rt reg;
  for i = 0 to 19 do
    ignore
      (Engine.at engine (i * Time.us 10) (fun () ->
           let service = Time.us 5 + (i mod 4 * Time.us 25) in
           if i mod 5 = 0 then begin
             (* block mid-service; woken externally — a fault stall *)
             let s1 = service / 2 in
             let s2 = service - s1 in
             let task =
               Percpu.spawn rt app ~service ~name:(Printf.sprintf "f%d" i)
                 (Coro.Compute
                    ( s1,
                      fun () ->
                        Coro.Block (fun () -> Coro.Compute (s2, fun () -> Coro.Exit))
                    ))
             in
             ignore
               (Engine.after engine (s1 + Time.us 30) (fun () ->
                    Percpu.wakeup rt task))
           end
           else
             ignore
               (Percpu.spawn rt app ~service ~name:(Printf.sprintf "t%d" i)
                  (Coro.Compute (service, fun () -> Coro.Exit)))))
  done;
  Engine.run ~until:(Time.ms 2) engine;
  let a = app.App.attribution in
  check int "all requests completed and recorded" 20 (Attribution.requests a);
  check int "identity holds for every request" 0 (Attribution.mismatches a);
  check bool "quantum preemptions charged some overhead" true
    (Histogram.mean (Attribution.overhead a) > 0.0);
  check bool "blocked requests charged some stall" true
    (Histogram.mean (Attribution.stall a) > 0.0);
  check int "trace invariants hold" 0 (List.length (Trace_analysis.check trace));
  let snap = Registry.snapshot ~until:(Time.ms 2) reg in
  (match
     Registry.find snap
       ~labels:[ Registry.app "lc" ]
       "skyloft_latency_requests_total"
   with
  | Some (Registry.Counter 20) -> ()
  | _ -> fail "registry sees the 20 attributed requests");
  match Registry.find snap "skyloft_percpu_task_switches_total" with
  | Some (Registry.Counter n) -> check bool "switch counter live" true (n > 0)
  | _ -> fail "runtime counters registered"

let suite =
  [
    test_case "registry name validation" `Quick test_registry_name_validation;
    test_case "registry duplicate rejected" `Quick test_registry_duplicate_rejected;
    test_case "snapshot isolation" `Quick test_registry_snapshot_isolation;
    test_case "counter slots" `Quick test_registry_counter_slots;
    test_case "prometheus exposition" `Quick test_registry_prometheus_format;
    test_case "series level + json export" `Quick test_registry_series_and_json;
    test_case "attribution identity + mismatches" `Quick test_attribution_identity;
    test_case "attribution registers" `Quick test_attribution_registers;
    test_case "utilization from spans" `Quick test_analysis_utilization;
    test_case "valid trace passes" `Quick test_analysis_valid_trace;
    test_case "overlap detected" `Quick test_analysis_overlap_detected;
    test_case "orphan preempt detected" `Quick test_analysis_orphan_preempt_detected;
    test_case "non-monotone emission detected" `Quick test_analysis_nonmonotone_detected;
    test_case "perfetto counter tracks" `Quick test_analysis_counter_tracks;
    test_case "end-to-end percpu run" `Quick test_end_to_end_percpu;
  ]
