(* Determinism regression: the simulation — fault injection included — is
   a pure function of the seed.  Two runs at the same seed must agree to
   the byte (traces) and to the last counter (sweep points), and the
   committed golden fingerprints pin the exact behaviour: any refactor
   that changes a single scheduling decision, cost charge, or trace byte
   at the fixed seeds fails here.  Regenerate intentionally with
   [skyloft_run golden] after a behaviour-changing change. *)

open Alcotest
module Time = Skyloft_sim.Time
module E = Skyloft_experiments

let test_trace_byte_identical () =
  let json1, injected1 = E.Golden.traced_percpu ~seed:1234 in
  let json2, injected2 = E.Golden.traced_percpu ~seed:1234 in
  check bool "faults were actually injected" true (injected1 > 0);
  check int "same injection count" injected1 injected2;
  check bool "traces byte-identical at the same seed" true
    (String.equal json1 json2)

let test_hybrid_trace_byte_identical () =
  let json1, injected1, switches1 = E.Golden.traced_hybrid ~seed:1234 in
  let json2, injected2, switches2 = E.Golden.traced_hybrid ~seed:1234 in
  check bool "faults were actually injected" true (injected1 > 0);
  check bool "the burst crossed the hysteresis band (both modes covered)" true
    (switches1 >= 2);
  check int "same injection count" injected1 injected2;
  check int "same mode-switch count" switches1 switches2;
  check bool "traces byte-identical at the same seed" true
    (String.equal json1 json2)

let test_worksteal_trace_byte_identical () =
  let json1, injected1, steals1 = E.Golden.traced_worksteal ~seed:1234 in
  let json2, injected2, steals2 = E.Golden.traced_worksteal ~seed:1234 in
  check bool "faults were actually injected" true (injected1 > 0);
  check bool "the pinned backlog was actually stolen" true (steals1 > 0);
  check int "same injection count" injected1 injected2;
  check int "same steal count" steals1 steals2;
  check bool "traces byte-identical at the same seed" true
    (String.equal json1 json2)

let test_sweep_point_reproducible () =
  let config = { E.Config.duration = Time.ms 5; seed = 11; jobs = 1; requests = None } in
  List.iter
    (fun runtime ->
      let p1 = E.Fault_sweep.run_point config ~runtime ~rate:0.05 in
      let p2 = E.Fault_sweep.run_point config ~runtime ~rate:0.05 in
      check bool
        (Printf.sprintf "%s: identical point at the same seed"
           p1.E.Fault_sweep.runtime)
        true (p1 = p2))
    E.Fault_sweep.runtimes

let test_sweep_fault_free_reproducible () =
  (* rate 0 arms nothing: the fault machinery present but disabled must
     still be a pure function of the seed (no hidden RNG draws). *)
  let config = { E.Config.duration = Time.ms 5; seed = 3; jobs = 1; requests = None } in
  let p1 = E.Fault_sweep.run_point config ~runtime:("percpu", E.Fault_sweep.Percore) ~rate:0.0 in
  let p2 = E.Fault_sweep.run_point config ~runtime:("percpu", E.Fault_sweep.Percore) ~rate:0.0 in
  check bool "fault-free runs identical" true (p1 = p2);
  check int "nothing injected at rate 0" 0 p1.E.Fault_sweep.injected

let test_obs_registry_transparent () =
  (* Attaching the metrics registry (and snapshotting it) must not perturb
     the simulation: the trace-and-attribution fingerprint of a registry-on
     run must equal the registry-off run at the same seed. *)
  let config = { E.Config.duration = Time.ms 5; seed = 7; jobs = 1; requests = None } in
  List.iter
    (fun runtime ->
      let on_ = E.Obs_report.run_point config ~runtime ~instrumented:true in
      let off = E.Obs_report.run_point config ~runtime ~instrumented:false in
      check bool "registry produced samples" true
        (on_.E.Obs_report.samples <> [] && off.E.Obs_report.samples = []);
      check string
        (Printf.sprintf "%s: registry-on fingerprint equals registry-off"
           on_.E.Obs_report.runtime)
        off.E.Obs_report.fingerprint on_.E.Obs_report.fingerprint;
      check int
        (Printf.sprintf "%s: no attribution mismatches" on_.E.Obs_report.runtime)
        0 on_.E.Obs_report.mismatches)
    E.Obs_report.runtimes

(* The committed goldens.  The percpu and centralized values predate the
   Runtime_core extraction: both runtimes rewritten over the shared
   substrate reproduce their original behaviour to the byte.

   Regenerated intentionally with the work-stealing steal-loop bugfix
   (owner-head LIFO with preempted-to-tail, persisted per-thief steal
   cursor with early break, rotating unmanaged-waker fallback):
   - the scale-*-percpu cells run the fixed Work_stealing policy under
     sustained queueing, where LIFO pops and the rotated fallback are
     visible;
   - obs-machine and oversub-* additionally rotate their mixed tenant
     fleets through all FOUR runtimes now (worksteal included).
   Every centralized and hybrid cell, trace-percpu (Fifo policy), and
   even fault-sweep-percpu / obs-report-percpu — whose queues rarely
   exceed depth 1, so head-vs-tail is indistinguishable — reproduce
   their previous bytes exactly. *)
let golden =
  [
    ("trace-percpu", "9c64a29436da6fcec0dc0f6163d2b289");
    ("trace-centralized", "955699be07fb44fc55c69cde49b8a3c2");
    ("trace-hybrid", "d0d03b164a30aa1e8594db8b407306cd");
    (* all tasks pinned to core 0: steal-half grabs, failed scans and the
       park/unpark path are all on the golden path *)
    ("trace-worksteal", "dbf58cf4269bd6c204ba29aaa0f8a2f3");
    ("fault-sweep-centralized", "68465e416532f1c4e86396a3ade56a41");
    ("fault-sweep-percpu", "c75bbf972b642cb524545d99ab748a19");
    ("fault-sweep-hybrid", "5df7e275881371c38e2b6e33e3f41b60");
    ("fault-sweep-worksteal", "9bca178607b09f7fa55e4ee781be4b7d");
    ("obs-report-centralized", "8661815e83e556500087e0615508cdea");
    ("obs-report-percpu", "15d4959e4628708894c4151cdb1e7e1b");
    ("obs-report-hybrid", "2b8295ae9d0b0b633242042411c74f0c");
    ("obs-report-worksteal", "460d391d28a7b1fcb47f0bbc666b117c");
    (* machine-level obs point: brokered 4-tenant fleet (one tenant per
       runtime), shared flight recorder, all three tenant faults — trace
       JSON + placement digest *)
    ("obs-machine", "dc0dc273410d80249923d53f00d417d8");
    (* scenario-DSL cells: 30k requests through the scale compile path *)
    ("scale-steady-pareto-percpu", "66ec7116948f66804d148c3a56384aee");
    ("scale-steady-pareto-centralized", "0fe7a85605c82f6d8c68d13b820622e9");
    ("scale-steady-pareto-hybrid", "79733c6e39acec77d7404c6a98921ea8");
    ("scale-steady-pareto-worksteal", "8539def246537560ede6cd76d71fff8c");
    ("scale-bursty-mmpp-percpu", "4d28fb5d5f10df68de534bf4b0006bce");
    ("scale-bursty-mmpp-centralized", "bca46aad79898bf490b75091ba8a3dcc");
    ("scale-bursty-mmpp-hybrid", "4d05f92172daf794a9cae5bac99b7a82");
    ("scale-bursty-mmpp-worksteal", "d20f617894d1f0776e37e8c3a3630cc1");
    ("scale-tenant-mix-percpu", "01ed0d8859ff0e93b234804194346192");
    ("scale-tenant-mix-centralized", "2bf6238e0d5777cc0a9883bdaf7a50e7");
    ("scale-tenant-mix-hybrid", "73d3dfbb760010794372732c471ab1d4");
    ("scale-tenant-mix-worksteal", "226bbfa081ae3183297d67a096dc76a0");
    (* oversub cells: a 4-tenant mixed-runtime placement under the core
       broker, fault-free / hoarding / crashing tenant 0 *)
    ("oversub-none", "4fb3504f19b2857ce769c63bc644109a");
    ("oversub-hoard", "cd6f734caa0563036d19da85e22e6c2a");
    ("oversub-crash", "e7f42711ea32e5c4ec65fd2e0c87a8f0");
  ]

let check_golden got =
  check int "every golden entry computed" (List.length golden) (List.length got);
  List.iter
    (fun (name, expected) ->
      match List.assoc_opt name got with
      | Some actual -> check string name expected actual
      | None -> fail (Printf.sprintf "missing golden entry %s" name))
    golden

let test_golden_fingerprints () = check_golden (E.Golden.fingerprints ())

(* The same goldens computed with the cells fanned across 4 domains: the
   parallel driver must be invisible in the results, byte for byte. *)
let test_golden_fingerprints_parallel () =
  check_golden (E.Golden.fingerprints ~jobs:4 ())

let suite =
  [
    test_case "trace bytes reproduce under faults" `Quick test_trace_byte_identical;
    test_case "hybrid trace reproduces across both modes" `Quick
      test_hybrid_trace_byte_identical;
    test_case "worksteal trace reproduces across steals and parks" `Quick
      test_worksteal_trace_byte_identical;
    test_case "sweep point reproduces" `Slow test_sweep_point_reproducible;
    test_case "fault-free sweep reproduces" `Quick test_sweep_fault_free_reproducible;
    test_case "metrics registry is transparent" `Quick test_obs_registry_transparent;
    test_case "golden fingerprints match the committed values" `Slow
      test_golden_fingerprints;
    test_case "golden fingerprints identical at -j 4" `Slow
      test_golden_fingerprints_parallel;
  ]
