(* Determinism regression: the simulation — fault injection included — is
   a pure function of the seed.  Two runs at the same seed must agree to
   the byte (traces) and to the last counter (sweep points). *)

open Alcotest
module Engine = Skyloft_sim.Engine
module Time = Skyloft_sim.Time
module Rng = Skyloft_sim.Rng
module Coro = Skyloft_sim.Coro
module Topology = Skyloft_hw.Topology
module Machine = Skyloft_hw.Machine
module Kmod = Skyloft_kernel.Kmod
module Percpu = Skyloft.Percpu
module Trace = Skyloft_stats.Trace
module Plan = Skyloft_fault.Plan
module Injector = Skyloft_fault.Injector
module E = Skyloft_experiments

(* A small per-CPU run with IPI loss, core steals and the watchdog armed,
   fully traced; returns the rendered Chrome JSON. *)
let traced_run ~seed =
  (* app ids leak into the trace's pid fields; restart the process-wide
     counter so both runs label the app identically *)
  Skyloft.App.reset_ids ();
  let engine = Engine.create () in
  let machine = Machine.create engine (Topology.create ~sockets:1 ~cores_per_socket:4) in
  let kmod = Kmod.create machine in
  let rt =
    Percpu.create machine kmod ~cores:[ 0; 1; 2; 3 ] ~watchdog:(Time.us 100)
      (Skyloft_policies.Fifo.create ())
  in
  let trace = Trace.create () in
  Percpu.set_trace rt trace;
  let rng = Rng.create ~seed in
  let inj = Injector.create ~engine ~rng ~trace () in
  Injector.arm inj
    { Injector.machine; kmod = Some kmod; nic = None; cores = [ 0; 1; 2; 3 ];
      poison = None }
    [
      Plan.ipi_loss ~p_drop:0.3 ~p_delay:0.3 ~delay:(Time.us 20) ();
      Plan.core_steal ~period:(Time.us 200) ~duration:(Time.us 50) ();
    ];
  let app = Percpu.create_app rt ~name:"a" in
  for i = 0 to 39 do
    ignore
      (Engine.at engine (i * Time.us 25) (fun () ->
           ignore
             (Percpu.spawn rt app
                ~name:(Printf.sprintf "t%d" i)
                (Coro.Compute (Time.us 10 + (i mod 7 * Time.us 4), fun () -> Coro.Exit)))))
  done;
  Engine.run ~until:(Time.ms 3) engine;
  (Trace.to_chrome_json trace, Injector.injected inj)

let test_trace_byte_identical () =
  let json1, injected1 = traced_run ~seed:1234 in
  let json2, injected2 = traced_run ~seed:1234 in
  check bool "faults were actually injected" true (injected1 > 0);
  check int "same injection count" injected1 injected2;
  check bool "traces byte-identical at the same seed" true
    (String.equal json1 json2)

let test_sweep_point_reproducible () =
  let config = { E.Config.duration = Time.ms 5; seed = 11 } in
  List.iter
    (fun runtime ->
      let p1 = E.Fault_sweep.run_point config ~runtime ~rate:0.05 in
      let p2 = E.Fault_sweep.run_point config ~runtime ~rate:0.05 in
      check bool
        (Printf.sprintf "%s: identical point at the same seed"
           p1.E.Fault_sweep.runtime)
        true (p1 = p2))
    E.Fault_sweep.runtimes

let test_sweep_fault_free_reproducible () =
  (* rate 0 arms nothing: the fault machinery present but disabled must
     still be a pure function of the seed (no hidden RNG draws). *)
  let config = { E.Config.duration = Time.ms 5; seed = 3 } in
  let p1 = E.Fault_sweep.run_point config ~runtime:("percpu", E.Fault_sweep.Percore) ~rate:0.0 in
  let p2 = E.Fault_sweep.run_point config ~runtime:("percpu", E.Fault_sweep.Percore) ~rate:0.0 in
  check bool "fault-free runs identical" true (p1 = p2);
  check int "nothing injected at rate 0" 0 p1.E.Fault_sweep.injected

let test_obs_registry_transparent () =
  (* Attaching the metrics registry (and snapshotting it) must not perturb
     the simulation: the trace-and-attribution fingerprint of a registry-on
     run must equal the registry-off run at the same seed. *)
  let config = { E.Config.duration = Time.ms 5; seed = 7 } in
  List.iter
    (fun runtime ->
      let on_ = E.Obs_report.run_point config ~runtime ~instrumented:true in
      let off = E.Obs_report.run_point config ~runtime ~instrumented:false in
      check bool "registry produced samples" true
        (on_.E.Obs_report.samples <> [] && off.E.Obs_report.samples = []);
      check string
        (Printf.sprintf "%s: registry-on fingerprint equals registry-off"
           on_.E.Obs_report.runtime)
        off.E.Obs_report.fingerprint on_.E.Obs_report.fingerprint;
      check int
        (Printf.sprintf "%s: no attribution mismatches" on_.E.Obs_report.runtime)
        0 on_.E.Obs_report.mismatches)
    E.Obs_report.runtimes

let suite =
  [
    test_case "trace bytes reproduce under faults" `Quick test_trace_byte_identical;
    test_case "sweep point reproduces" `Slow test_sweep_point_reproducible;
    test_case "fault-free sweep reproduces" `Quick test_sweep_fault_free_reproducible;
    test_case "metrics registry is transparent" `Quick test_obs_registry_transparent;
  ]
