(* Tests for the hardware model: topology, costs (Table 6 shape), machine
   interrupt plumbing, UINTR semantics, UITT. *)

module Time = Skyloft_sim.Time
module Engine = Skyloft_sim.Engine
module Topology = Skyloft_hw.Topology
module Costs = Skyloft_hw.Costs
module Vectors = Skyloft_hw.Vectors
module Machine = Skyloft_hw.Machine
module Uitt = Skyloft_hw.Uitt

let check = Alcotest.check

(* ---- Topology ---- *)

let test_topology_basics () =
  let t = Topology.paper_server in
  check Alcotest.int "48 cores" 48 (Topology.total_cores t);
  check Alcotest.int "socket of 0" 0 (Topology.socket_of_core t 0);
  check Alcotest.int "socket of 23" 0 (Topology.socket_of_core t 23);
  check Alcotest.int "socket of 24" 1 (Topology.socket_of_core t 24);
  check Alcotest.bool "cross numa" true (Topology.cross_numa t 0 24);
  check Alcotest.bool "same numa" false (Topology.cross_numa t 0 23)

let test_topology_invalid () =
  check Alcotest.bool "bad core id" true
    (try
       ignore (Topology.socket_of_core Topology.paper_server 48);
       false
     with Invalid_argument _ -> true);
  check Alcotest.bool "bad create" true
    (try
       ignore (Topology.create ~sockets:0 ~cores_per_socket:4);
       false
     with Invalid_argument _ -> true)

(* ---- Costs: composed mechanisms track the paper's Table 6 ---- *)

let within_pct ~pct a b =
  let a = float_of_int a and b = float_of_int b in
  abs_float (a -. b) <= pct /. 100.0 *. b

let test_costs_table6_close_to_paper () =
  List.iter2
    (fun (m : Costs.mechanism) (pname, psend, precv, pdeliv) ->
      check Alcotest.string "row name" pname m.name;
      (match (m.send, psend) with
      | Some s, Some ps ->
          check Alcotest.bool
            (Printf.sprintf "%s send %d ~ %d" m.name s ps)
            true (within_pct ~pct:10.0 s ps)
      | None, None -> ()
      | _ -> Alcotest.fail "send column shape mismatch");
      check Alcotest.bool
        (Printf.sprintf "%s receive %d ~ %d" m.name m.receive precv)
        true
        (within_pct ~pct:10.0 m.receive precv);
      match (m.delivery, pdeliv) with
      | Some d, Some pd ->
          check Alcotest.bool
            (Printf.sprintf "%s delivery %d ~ %d" m.name d pd)
            true (within_pct ~pct:10.0 d pd)
      | None, None -> ()
      | _ -> Alcotest.fail "delivery column shape mismatch")
    Costs.table6 Costs.paper_table6

let test_costs_orderings () =
  (* The qualitative claims of §5.4. *)
  let get = function Some x -> x | None -> 0 in
  check Alcotest.bool "signal send >> user IPI send" true
    (get Costs.signal.send > 5 * get Costs.user_ipi.send);
  check Alcotest.bool "kernel IPI send > user IPI send" true
    (get Costs.kernel_ipi.send > get Costs.user_ipi.send);
  check Alcotest.bool "signal receive ~ 10x user IPI receive" true
    (Costs.signal.receive > 8 * Costs.user_ipi.receive);
  check Alcotest.bool "setitimer ~ 8x user timer" true
    (Costs.setitimer.receive > 7 * Costs.user_timer.receive);
  check Alcotest.bool "user timer receive < user IPI receive" true
    (Costs.user_timer.receive < Costs.user_ipi.receive);
  check Alcotest.bool "cross-NUMA delivery penalty" true
    (get Costs.user_ipi_cross_numa.delivery > get Costs.user_ipi.delivery)

let test_costs_ns_conversions () =
  check Alcotest.int "user IPI send ns" (Time.of_cycles 167)
    (Costs.uipi_send_ns ~cross_numa:false);
  check Alcotest.bool "senduipi_sn ~123 cycles" true
    (within_pct ~pct:5.0 Costs.senduipi_sn 123)

(* ---- Machine ---- *)

let make_machine () =
  let engine = Engine.create () in
  let machine = Machine.create engine (Topology.create ~sockets:2 ~cores_per_socket:4) in
  (engine, machine)

let test_machine_kernel_ipi_delivery () =
  let engine, machine = make_machine () in
  let got = ref [] in
  Machine.set_kernel_handler (Machine.core machine 1) (fun v ->
      got := (Engine.now engine, v) :: !got);
  Machine.send_ipi machine ~src:0 ~dst:1 Vectors.resched;
  Engine.run engine;
  match !got with
  | [ (at, v) ] ->
      check Alcotest.int "vector" Vectors.resched v;
      check Alcotest.int "arrives after kipi delivery" Costs.kipi_delivery_ns at
  | _ -> Alcotest.fail "expected exactly one interrupt"

let test_machine_masking () =
  let engine, machine = make_machine () in
  let core = Machine.core machine 2 in
  let got = ref [] in
  Machine.set_kernel_handler core (fun v -> got := v :: !got);
  Machine.mask_interrupts core;
  Machine.send_ipi machine ~src:0 ~dst:2 11;
  Machine.send_ipi machine ~src:0 ~dst:2 22;
  Engine.run engine;
  check (Alcotest.list Alcotest.int) "nothing while masked" [] !got;
  Machine.unmask_interrupts core;
  check (Alcotest.list Alcotest.int) "delivered in arrival order" [ 11; 22 ]
    (List.rev !got)

(* Regression: a handler that re-masks mid-replay must not let vectors
   raised while re-masked overtake the still-queued older ones.  The
   handler for 11 re-masks and lets time pass (pumping the engine) until
   its IPI 44 lands in the pending queue; 22 and 33 were queued before 44
   existed, so the final delivery order is 11, 22, 33, 44 — the buggy
   replay pushed the remainder back on top of 44 and delivered 44 ahead
   of 22 and 33. *)
let test_machine_unmask_remask_keeps_arrival_order () =
  let engine, machine = make_machine () in
  let core = Machine.core machine 2 in
  let got = ref [] in
  Machine.set_kernel_handler core (fun v ->
      got := v :: !got;
      if v = 11 then begin
        (* the handler holds the mask while newer work arrives: 44 is
           queued in [pending] before the replay re-queues 22 and 33 *)
        Machine.mask_interrupts core;
        Machine.send_ipi machine ~src:0 ~dst:2 44;
        Engine.run engine
      end);
  Machine.mask_interrupts core;
  Machine.send_ipi machine ~src:0 ~dst:2 11;
  Machine.send_ipi machine ~src:0 ~dst:2 22;
  Machine.send_ipi machine ~src:0 ~dst:2 33;
  Engine.run engine;
  check (Alcotest.list Alcotest.int) "nothing while masked" [] !got;
  (* replay dispatches 11, whose handler re-masks: 22, 33 and the newer
     44 stay queued *)
  Machine.unmask_interrupts core;
  check (Alcotest.list Alcotest.int) "only 11 before the re-mask" [ 11 ]
    (List.rev !got);
  Machine.unmask_interrupts core;
  check (Alcotest.list Alcotest.int) "arrival order preserved across re-mask"
    [ 11; 22; 33; 44 ] (List.rev !got)

let test_machine_timer_periodic () =
  let engine, machine = make_machine () in
  let core = Machine.core machine 0 in
  let ticks = ref 0 in
  Machine.set_kernel_handler core (fun v -> if v = Vectors.timer then incr ticks);
  Machine.timer_set_periodic machine ~core:0 ~hz:1000;
  Engine.run ~until:(Time.ms 10) engine;
  check Alcotest.int "10 ticks in 10ms at 1kHz" 10 !ticks;
  Machine.timer_stop machine ~core:0;
  let before = !ticks in
  Engine.run ~until:(Time.ms 20) engine;
  check Alcotest.int "no ticks after stop" before !ticks

(* Regression: a tick the injector delayed past [timer_stop] must not
   deliver.  The tick at 1ms is held until 1.5ms; the timer stops at
   1.2ms; the delayed continuation used to fire anyway. *)
let test_machine_delayed_tick_dies_at_stop () =
  let engine, machine = make_machine () in
  let core = Machine.core machine 0 in
  let ticks = ref 0 in
  Machine.set_kernel_handler core (fun v -> if v = Vectors.timer then incr ticks);
  Machine.set_fault_hook machine (fun ~core:_ v ->
      if v = Vectors.timer then Machine.Delay (Time.us 500) else Machine.Deliver);
  Machine.timer_set_periodic machine ~core:0 ~hz:1000;
  ignore (Engine.at engine (Time.us 1200) (fun () -> Machine.timer_stop machine ~core:0));
  Engine.run ~until:(Time.ms 3) engine;
  check Alcotest.int "delayed tick suppressed after stop" 0 !ticks;
  (* sanity: without the stop the same delayed train does deliver *)
  Machine.timer_set_periodic machine ~core:0 ~hz:1000;
  Engine.run ~until:(Time.ms 6) engine;
  check Alcotest.bool "delayed ticks deliver while armed" true (!ticks > 0);
  Machine.timer_stop machine ~core:0

(* Regression: [timer_one_shot] ignored [timer_stop] entirely — both the
   armed shot and its injector-delayed continuation must die with the
   generation. *)
let test_machine_one_shot_dies_at_stop () =
  let engine, machine = make_machine () in
  let core = Machine.core machine 1 in
  let ticks = ref 0 in
  Machine.set_kernel_handler core (fun v -> if v = Vectors.timer then incr ticks);
  Machine.timer_one_shot machine ~core:1 ~after:(Time.ms 1);
  ignore (Engine.at engine (Time.us 500) (fun () -> Machine.timer_stop machine ~core:1));
  Engine.run ~until:(Time.ms 3) engine;
  check Alcotest.int "stopped one-shot never fires" 0 !ticks;
  (* a fresh shot after the stop is live *)
  Machine.timer_one_shot machine ~core:1 ~after:(Time.ms 1);
  Engine.run ~until:(Time.ms 5) engine;
  check Alcotest.int "re-armed one-shot fires" 1 !ticks;
  (* the delayed-continuation path: shot fires at 1ms, injector holds it
     500us, the stop at 1.2ms lands inside the hold window *)
  Machine.set_fault_hook machine (fun ~core:_ v ->
      if v = Vectors.timer then Machine.Delay (Time.us 500) else Machine.Deliver);
  Machine.timer_one_shot machine ~core:1 ~after:(Time.ms 1);
  ignore
    (Engine.at engine
       (Engine.now engine + Time.us 1200)
       (fun () -> Machine.timer_stop machine ~core:1));
  Engine.run ~until:(Engine.now engine + Time.ms 3) engine;
  check Alcotest.int "delayed one-shot suppressed by stop" 1 !ticks

let test_machine_timer_reprogram () =
  let engine, machine = make_machine () in
  let core = Machine.core machine 0 in
  let ticks = ref 0 in
  Machine.set_kernel_handler core (fun v -> if v = Vectors.timer then incr ticks);
  Machine.timer_set_periodic machine ~core:0 ~hz:1000;
  Machine.timer_set_periodic machine ~core:0 ~hz:100;
  check Alcotest.int "hz readable" 100 (Machine.timer_hz core);
  Engine.run ~until:(Time.ms 100) engine;
  check Alcotest.int "only the 100Hz train survives" 10 !ticks

(* ---- UINTR semantics ---- *)

let test_uintr_senduipi_delivers () =
  let engine, machine = make_machine () in
  let ctx = Machine.uintr_create_ctx () in
  let got = ref [] in
  Machine.uintr_register_handler ctx ~uinv:Vectors.uintr_notification (fun ~uvec ->
      got := (Engine.now engine, uvec) :: !got);
  Machine.uintr_install machine ~core:3 ctx;
  Machine.senduipi machine ~src_core:0 ctx ~uvec:5;
  Engine.run engine;
  match !got with
  | [ (at, uvec) ] ->
      check Alcotest.int "uvec" 5 uvec;
      check Alcotest.int "delivery latency" (Costs.uipi_delivery_ns ~cross_numa:false) at
  | _ -> Alcotest.fail "expected one user interrupt"

let test_uintr_sn_suppresses_ipi () =
  let engine, machine = make_machine () in
  let ctx = Machine.uintr_create_ctx () in
  let got = ref 0 in
  Machine.uintr_register_handler ctx ~uinv:Vectors.uintr_notification (fun ~uvec:_ ->
      incr got);
  Machine.uintr_install machine ~core:3 ctx;
  Machine.uintr_set_sn ctx true;
  Machine.senduipi machine ~src_core:0 ctx ~uvec:5;
  Engine.run engine;
  check Alcotest.int "no delivery with SN set" 0 !got;
  check Alcotest.bool "but PIR is posted" true (Machine.uintr_pir_pending ctx)

let test_uintr_pending_pir_fires_on_install () =
  (* A parked application's UPID accumulates interrupts; they deliver when
     the kernel installs the context (thread switched in). *)
  let engine, machine = make_machine () in
  let ctx = Machine.uintr_create_ctx () in
  let got = ref [] in
  Machine.uintr_register_handler ctx ~uinv:Vectors.uintr_notification (fun ~uvec ->
      got := uvec :: !got);
  Machine.senduipi machine ~src_core:0 ctx ~uvec:7;
  Engine.run engine;
  check (Alcotest.list Alcotest.int) "nothing while uninstalled" [] !got;
  Machine.uintr_install machine ~core:1 ctx;
  check (Alcotest.list Alcotest.int) "recognised at install" [ 7 ] !got

let test_uintr_timer_delegation_needs_pir () =
  (* The §3.2 subtlety: delegating the timer vector alone is NOT enough —
     with an empty PIR the notification is dropped. *)
  let engine, machine = make_machine () in
  let ctx = Machine.uintr_create_ctx () in
  let fired = ref 0 in
  Machine.uintr_register_handler ctx ~uinv:Vectors.timer (fun ~uvec:_ -> incr fired);
  Machine.uintr_set_sn ctx true;
  Machine.uintr_install machine ~core:0 ctx;
  Machine.timer_set_periodic machine ~core:0 ~hz:1000;
  Engine.run ~until:(Time.ms 5) engine;
  check Alcotest.int "all notifications dropped: PIR empty" 0 !fired;
  check Alcotest.int "drops counted" 5
    (Machine.dropped_notifications (Machine.core machine 0))

let test_uintr_timer_delegation_with_self_post () =
  (* Full §3.2 protocol: SN=1, prime the PIR, re-post in the handler. *)
  let engine, machine = make_machine () in
  let ctx = Machine.uintr_create_ctx () in
  let fired = ref 0 in
  Machine.uintr_register_handler ctx ~uinv:Vectors.timer (fun ~uvec ->
      if uvec = Vectors.uvec_timer then begin
        incr fired;
        (* Listing 1 line 5: reset UPID.PIR for the next timer *)
        Machine.senduipi machine ~src_core:0 ctx ~uvec:Vectors.uvec_timer
      end);
  Machine.uintr_set_sn ctx true;
  Machine.uintr_install machine ~core:0 ctx;
  (* prime the PIR *)
  Machine.senduipi machine ~src_core:0 ctx ~uvec:Vectors.uvec_timer;
  Machine.timer_set_periodic machine ~core:0 ~hz:1000;
  Engine.run ~until:(Time.ms 10) engine;
  check Alcotest.int "every tick handled in user space" 10 !fired

let test_uintr_timer_delegation_without_repost_stops () =
  (* Forgetting the handler re-post: only the first tick arrives. *)
  let engine, machine = make_machine () in
  let ctx = Machine.uintr_create_ctx () in
  let fired = ref 0 in
  Machine.uintr_register_handler ctx ~uinv:Vectors.timer (fun ~uvec:_ -> incr fired);
  Machine.uintr_set_sn ctx true;
  Machine.uintr_install machine ~core:0 ctx;
  Machine.senduipi machine ~src_core:0 ctx ~uvec:Vectors.uvec_timer;
  Machine.timer_set_periodic machine ~core:0 ~hz:1000;
  Engine.run ~until:(Time.ms 10) engine;
  check Alcotest.int "only the first interrupt delivered" 1 !fired

let test_uintr_uninstall () =
  let engine, machine = make_machine () in
  let ctx = Machine.uintr_create_ctx () in
  let got = ref 0 in
  Machine.uintr_register_handler ctx ~uinv:Vectors.uintr_notification (fun ~uvec:_ ->
      incr got);
  Machine.uintr_install machine ~core:1 ctx;
  Machine.uintr_uninstall machine ~core:1;
  check (Alcotest.option Alcotest.unit) "uninstalled" None
    (Option.map ignore (Machine.uintr_installed machine ~core:1));
  Machine.senduipi machine ~src_core:0 ctx ~uvec:1;
  Engine.run engine;
  check Alcotest.int "no delivery when uninstalled" 0 !got;
  (* ... but it fires on re-install. *)
  Machine.uintr_install machine ~core:1 ctx;
  check Alcotest.int "pending fires on reinstall" 1 !got

let test_uintr_bad_uvec () =
  let _, machine = make_machine () in
  let ctx = Machine.uintr_create_ctx () in
  check Alcotest.bool "uvec > 63 rejected" true
    (try
       Machine.senduipi machine ~src_core:0 ctx ~uvec:64;
       false
     with Invalid_argument _ -> true)

(* ---- UITT ---- *)

let test_uitt_senduipi () =
  let engine, machine = make_machine () in
  let ctx = Machine.uintr_create_ctx () in
  let got = ref [] in
  Machine.uintr_register_handler ctx ~uinv:Vectors.uintr_notification (fun ~uvec ->
      got := uvec :: !got);
  Machine.uintr_install machine ~core:2 ctx;
  let uitt = Uitt.create machine ~size:8 in
  Uitt.set uitt 3 ctx ~uvec:9;
  Uitt.senduipi uitt ~src_core:0 3;
  Engine.run engine;
  check (Alcotest.list Alcotest.int) "delivered via UITT" [ 9 ] !got

let test_uitt_empty_entry_gp () =
  let _, machine = make_machine () in
  let uitt = Uitt.create machine ~size:4 in
  check Alcotest.bool "empty entry faults" true
    (try
       Uitt.senduipi uitt ~src_core:0 2;
       false
     with Invalid_argument _ -> true);
  check Alcotest.bool "out of range faults" true
    (try
       Uitt.senduipi uitt ~src_core:0 99;
       false
     with Invalid_argument _ -> true)

let test_uitt_clear () =
  let _, machine = make_machine () in
  let ctx = Machine.uintr_create_ctx () in
  let uitt = Uitt.create machine ~size:4 in
  Uitt.set uitt 0 ctx ~uvec:1;
  Uitt.clear uitt 0;
  check Alcotest.bool "cleared entry faults" true
    (try
       Uitt.senduipi uitt ~src_core:0 0;
       false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "topology: basics" `Quick test_topology_basics;
    Alcotest.test_case "topology: invalid" `Quick test_topology_invalid;
    Alcotest.test_case "costs: table 6 vs paper" `Quick test_costs_table6_close_to_paper;
    Alcotest.test_case "costs: qualitative orderings" `Quick test_costs_orderings;
    Alcotest.test_case "costs: ns conversions" `Quick test_costs_ns_conversions;
    Alcotest.test_case "machine: kernel IPI delivery" `Quick test_machine_kernel_ipi_delivery;
    Alcotest.test_case "machine: masking" `Quick test_machine_masking;
    Alcotest.test_case "machine: re-mask during replay keeps arrival order"
      `Quick test_machine_unmask_remask_keeps_arrival_order;
    Alcotest.test_case "machine: periodic timer" `Quick test_machine_timer_periodic;
    Alcotest.test_case "machine: delayed tick dies at timer_stop" `Quick
      test_machine_delayed_tick_dies_at_stop;
    Alcotest.test_case "machine: one-shot dies at timer_stop" `Quick
      test_machine_one_shot_dies_at_stop;
    Alcotest.test_case "machine: timer reprogram" `Quick test_machine_timer_reprogram;
    Alcotest.test_case "uintr: senduipi delivers" `Quick test_uintr_senduipi_delivers;
    Alcotest.test_case "uintr: SN suppresses" `Quick test_uintr_sn_suppresses_ipi;
    Alcotest.test_case "uintr: pending fires on install" `Quick
      test_uintr_pending_pir_fires_on_install;
    Alcotest.test_case "uintr: timer delegation needs PIR" `Quick
      test_uintr_timer_delegation_needs_pir;
    Alcotest.test_case "uintr: timer delegation works with self-post" `Quick
      test_uintr_timer_delegation_with_self_post;
    Alcotest.test_case "uintr: missing re-post stops delivery" `Quick
      test_uintr_timer_delegation_without_repost_stops;
    Alcotest.test_case "uintr: uninstall" `Quick test_uintr_uninstall;
    Alcotest.test_case "uintr: bad uvec" `Quick test_uintr_bad_uvec;
    Alcotest.test_case "uitt: senduipi" `Quick test_uitt_senduipi;
    Alcotest.test_case "uitt: empty entry" `Quick test_uitt_empty_entry_gp;
    Alcotest.test_case "uitt: clear" `Quick test_uitt_clear;
  ]
