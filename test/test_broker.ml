(* The machine-level core broker and the oversubscribed placements built
   on it: arbitration and conservation driven with synthetic tenants (no
   runtimes), then the tenant-fault defenses (staleness, hoarding,
   crash), then end-to-end placements of real runtimes with lossless
   request reconciliation. *)

module Time = Skyloft_sim.Time
module Engine = Skyloft_sim.Engine
module Dist = Skyloft_sim.Dist
module Policy = Skyloft_alloc.Policy
module Allocator = Skyloft_alloc.Allocator
module Broker = Skyloft_alloc.Broker
module Plan = Skyloft_fault.Plan
module Scenario = Skyloft_scenario.Scenario
module Shape = Skyloft_scenario.Shape
module Arrival = Skyloft_scenario.Arrival
module Placement = Skyloft_scenario.Placement

let check = Alcotest.check

(* A synthetic tenant: the test scripts its whole-runtime congestion
   sample; [apply] records the allowance the broker drove. *)
type fake = {
  mutable runq : int;
  mutable delay : Time.t;
  mutable busy_rate : float;  (* fraction of granted cores kept busy *)
  mutable busy_acc : float;
  mutable allowance : int;
}

let fake () =
  { runq = 0; delay = 0; busy_rate = 0.0; busy_acc = 0.0; allowance = 0 }

let add broker ~id ?(kind = Policy.Lc) ?policy ~g ~b ~initial f =
  let interval = Broker.interval broker in
  let policy =
    match policy with Some p -> p | None -> Policy.delay ()
  in
  f.allowance <- initial;
  Broker.register broker ~tenant:id
    ~name:(Printf.sprintf "t%d" id)
    ~kind ~policy
    ~bounds:{ Allocator.guaranteed = g; burstable = b }
    ~initial
    ~sample:(fun () ->
      f.busy_acc <-
        f.busy_acc
        +. f.busy_rate
           *. float_of_int (max 1 f.allowance)
           *. float_of_int interval;
      {
        Allocator.runq_len = f.runq;
        oldest_delay = f.delay;
        busy_ns = int_of_float f.busy_acc;
      })
    ~apply:(fun ~granted ~delta:_ ->
      f.allowance <- granted;
      0)

let make ?config ~capacity () =
  let engine = Engine.create () in
  let broker = Broker.create ~engine ~capacity ?config () in
  (engine, broker)

(* Advance virtual time by one interval, then run one control round —
   what [Broker.start]'s periodic loop does, under test control. *)
let tick_n engine broker n =
  for _ = 1 to n do
    Engine.run ~until:(Engine.now engine + Broker.interval broker) engine;
    Broker.tick broker
  done

let congested f =
  f.runq <- 4;
  f.delay <- Time.us 20;
  f.busy_rate <- 1.0

let grant_from_pool () =
  let engine, broker = make ~capacity:8 () in
  let f = fake () in
  add broker ~id:0 ~g:1 ~b:6 ~initial:1 f;
  congested f;
  tick_n engine broker 1;
  check Alcotest.int "granted grew from the pool" 5 (Broker.granted broker ~tenant:0);
  check Alcotest.int "allowance driven" 5 f.allowance;
  check Alcotest.int "free pool shrank" 3 (Broker.free_cores broker);
  check Alcotest.bool "grant counted" true (Broker.grants broker >= 1)

let lc_steals_from_be () =
  let engine, broker = make ~capacity:4 () in
  let be = fake () and lc = fake () in
  add broker ~id:0 ~kind:Policy.Be ~policy:(Policy.static ()) ~g:1 ~b:4
    ~initial:3 be;
  add broker ~id:1 ~g:1 ~b:4 ~initial:1 lc;
  congested lc;
  be.busy_rate <- 1.0;
  tick_n engine broker 1;
  check Alcotest.int "BE clamped to its floor" 1 (Broker.granted broker ~tenant:0);
  check Alcotest.int "LC took the stolen cores" 3 (Broker.granted broker ~tenant:1);
  check Alcotest.bool "steal counted as reclaim" true (Broker.reclaims broker >= 1);
  check Alcotest.int "conservation" 4
    (Broker.granted broker ~tenant:0 + Broker.granted broker ~tenant:1)

let idle_tenant_yields () =
  let engine, broker = make ~capacity:8 () in
  let f = fake () in
  add broker ~id:0 ~g:1 ~b:6 ~initial:4 f;
  tick_n engine broker 3;
  check Alcotest.int "idle tenant shed to near-floor" 1
    (Broker.granted broker ~tenant:0);
  check Alcotest.bool "yield counted" true (Broker.yields broker >= 1);
  check Alcotest.int "pool refilled" 7 (Broker.free_cores broker)

let floor_never_reclaimed () =
  let engine, broker = make ~capacity:4 () in
  let be = fake () and lc = fake () in
  add broker ~id:0 ~kind:Policy.Be ~policy:(Policy.static ()) ~g:2 ~b:4
    ~initial:2 be;
  add broker ~id:1 ~g:1 ~b:4 ~initial:1 lc;
  congested lc;
  be.busy_rate <- 1.0;
  tick_n engine broker 5;
  check Alcotest.bool "BE never below its guaranteed floor" true
    (Broker.granted broker ~tenant:0 >= 2)

let quick_config =
  {
    (Broker.default_config ()) with
    Broker.degrade_after = 3;
    hoard_cap = 5;
    hoard_decay = 1;
    quarantine_ticks = 4;
  }

let stale_degrade_and_recover () =
  let engine, broker = make ~config:quick_config ~capacity:8 () in
  let f = fake () in
  add broker ~id:0 ~g:1 ~b:6 ~initial:4 f;
  (* Frozen signal: queue claimed non-empty, busy never advances. *)
  f.runq <- 2;
  f.busy_rate <- 0.0;
  tick_n engine broker 3;
  check Alcotest.string "degraded on frozen signal" "stale"
    (Broker.health_name (Broker.health broker ~tenant:0));
  check Alcotest.int "clamped to floor" 1 (Broker.granted broker ~tenant:0);
  check Alcotest.int "degradation counted" 1 (Broker.degradations broker);
  (* Signal moves again: recovery on the next round. *)
  f.busy_rate <- 0.5;
  tick_n engine broker 1;
  check Alcotest.string "recovered when the signal moved" "healthy"
    (Broker.health_name (Broker.health broker ~tenant:0));
  check Alcotest.bool "recover event logged" true
    (List.exists
       (fun (e : Broker.event) -> e.Broker.action = Broker.Recover)
       (Broker.events broker))

let zero_floor_stays_stale () =
  let engine, broker = make ~config:quick_config ~capacity:8 () in
  let f = fake () in
  add broker ~id:0 ~g:0 ~b:6 ~initial:2 f;
  f.runq <- 2;
  f.busy_rate <- 0.0;
  tick_n engine broker 20;
  (* A zero-guarantee tenant clamped to 0 cores must not oscillate
     Degrade/Recover while frozen: one degradation, still stale. *)
  check Alcotest.string "still stale" "stale"
    (Broker.health_name (Broker.health broker ~tenant:0));
  check Alcotest.int "exactly one degradation" 1 (Broker.degradations broker);
  check Alcotest.int "zero cores held" 0 (Broker.granted broker ~tenant:0)

let hoard_quarantine_and_release () =
  let engine, broker = make ~config:quick_config ~capacity:4 () in
  let hog = fake () and victim = fake () in
  add broker ~id:0 ~g:1 ~b:4 ~initial:3 hog;
  add broker ~id:1 ~g:1 ~b:4 ~initial:1 victim;
  (* Both claim congestion; the pool is dry; the hog sits above its floor
     while the victim starves at its own — the hoard signature. *)
  congested hog;
  congested victim;
  tick_n engine broker 5;
  check Alcotest.string "hog quarantined" "quarantined"
    (Broker.health_name (Broker.health broker ~tenant:0));
  check Alcotest.int "hog clamped to floor" 1 (Broker.granted broker ~tenant:0);
  check Alcotest.int "quarantine counted" 1 (Broker.quarantines broker);
  tick_n engine broker 1;
  check Alcotest.bool "victim grew into the reclaimed cores" true
    (Broker.granted broker ~tenant:1 > 1);
  (* Behave from now on: served out, released, score reset. *)
  hog.runq <- 0;
  hog.delay <- 0;
  hog.busy_rate <- 0.0;
  victim.runq <- 0;
  victim.delay <- 0;
  tick_n engine broker 6;
  check Alcotest.string "released after serving quarantine" "healthy"
    (Broker.health_name (Broker.health broker ~tenant:0));
  check Alcotest.int "release counted" 1 (Broker.releases broker);
  check Alcotest.int "hoard score reset" 0 (Broker.hoard_score broker ~tenant:0)

let crash_reclaims_floor () =
  let engine, broker = make ~capacity:8 () in
  let f = fake () and other = fake () in
  add broker ~id:0 ~g:2 ~b:6 ~initial:4 f;
  add broker ~id:1 ~g:1 ~b:6 ~initial:1 other;
  tick_n engine broker 1;
  let held = Broker.granted broker ~tenant:0 in
  Broker.crash broker ~tenant:0;
  check Alcotest.string "crashed" "crashed"
    (Broker.health_name (Broker.health broker ~tenant:0));
  check Alcotest.int "everything reclaimed, floor included" 0
    (Broker.granted broker ~tenant:0);
  check Alcotest.int "allowance driven to zero" 0 f.allowance;
  check Alcotest.bool "pool refilled" true (Broker.free_cores broker >= held);
  Broker.crash broker ~tenant:0;
  check Alcotest.int "idempotent" 1 (Broker.crashes broker);
  (* The dead tenant is out of arbitration: ticks keep running and the
     invariant checker accepts its below-floor zero grant. *)
  congested other;
  tick_n engine broker 3;
  check Alcotest.int "still zero" 0 (Broker.granted broker ~tenant:0);
  check Alcotest.(float 1e-9) "fairness excludes the crashed tenant" 1.0
    (Broker.fairness broker)

let fairness_index () =
  let engine, broker = make ~capacity:8 () in
  let a = fake () and b = fake () in
  add broker ~id:0 ~g:1 ~b:4 ~initial:2 a;
  add broker ~id:1 ~g:1 ~b:4 ~initial:2 b;
  a.busy_rate <- 1.0;
  b.busy_rate <- 1.0;
  a.runq <- 1;
  b.runq <- 1;
  tick_n engine broker 10;
  check Alcotest.(float 1e-9) "equal shares are perfectly fair" 1.0
    (Broker.fairness broker);
  (* Skew the holdings: fairness strictly drops. *)
  let engine2, broker2 = make ~capacity:8 () in
  let c = fake () and d = fake () in
  add broker2 ~id:0 ~g:1 ~b:6 ~initial:6 c;
  add broker2 ~id:1 ~g:1 ~b:6 ~initial:1 d;
  c.busy_rate <- 1.0;
  d.busy_rate <- 1.0;
  c.runq <- 1;
  d.runq <- 1;
  tick_n engine2 broker2 10;
  check Alcotest.bool "skewed shares are unfair" true
    (Broker.fairness broker2 < 0.9)

let register_validation () =
  let _, broker = make ~capacity:4 () in
  let f = fake () in
  let reg ?(id = 0) ~g ~b ~initial () =
    add broker ~id ~g ~b ~initial (fake ())
  in
  Alcotest.check_raises "burstable over capacity"
    (Invalid_argument "Broker.register: burstable exceeds the core pool")
    (fun () -> reg ~g:1 ~b:5 ~initial:1 ());
  Alcotest.check_raises "initial outside bounds"
    (Invalid_argument "Broker.register: initial grant outside bounds")
    (fun () -> reg ~g:2 ~b:4 ~initial:1 ());
  add broker ~id:0 ~g:1 ~b:4 ~initial:3 f;
  Alcotest.check_raises "duplicate tenant"
    (Invalid_argument "Broker.register: tenant already registered") (fun () ->
      reg ~id:0 ~g:1 ~b:2 ~initial:1 ());
  Alcotest.check_raises "pool exhausted"
    (Invalid_argument "Broker.register: initial grants exceed the core pool")
    (fun () -> reg ~id:1 ~g:2 ~b:2 ~initial:2 ())

(* ---- placements: real runtimes under the broker ------------------------- *)

let light_shape = Shape.Single (Dist.Exponential { mean = Time.us 5 })

let mixed_tenants ?(rate = 100_000.0) () =
  [
    Placement.tenant ~name:"percpu-a" ~runtime:Scenario.Percpu ~guaranteed:1
      ~burstable:2 ~shape:light_shape
      ~arrival:(Arrival.Poisson { rate_rps = rate })
      ();
    Placement.tenant ~name:"central-b" ~runtime:Scenario.Centralized
      ~guaranteed:1 ~burstable:2 ~shape:light_shape
      ~arrival:(Arrival.Poisson { rate_rps = rate })
      ();
    Placement.tenant ~name:"hybrid-c" ~runtime:Scenario.Hybrid ~guaranteed:1
      ~burstable:2 ~shape:light_shape
      ~arrival:(Arrival.Poisson { rate_rps = rate })
      ();
  ]

let placement_reconciles () =
  let r =
    Placement.run ~seed:7 ~name:"smoke" ~capacity:4 ~requests:120
      (mixed_tenants ())
  in
  List.iter
    (fun t ->
      check Alcotest.int
        (Printf.sprintf "%s lossless accounting" t.Placement.t_name)
        0 (Placement.lost t);
      check Alcotest.bool
        (Printf.sprintf "%s completed work" t.Placement.t_name)
        true
        (t.Placement.completed > 0))
    r.Placement.tenants;
  check Alcotest.bool "fairness in (0, 1]" true
    (r.Placement.fairness > 0.0 && r.Placement.fairness <= 1.0);
  check Alcotest.int "no crashes" 0 r.Placement.crashes

let placement_deterministic () =
  let digest () =
    Placement.digest_string
      (Placement.run ~seed:11 ~name:"det" ~capacity:4 ~requests:80
         (mixed_tenants ()))
  in
  check Alcotest.string "same seed, same digest" (digest ()) (digest ())

let placement_crash_fault () =
  let faults =
    [ Plan.tenant_crash ~window:(Plan.window ~start:(Time.us 300) ()) ~tenant:1 () ]
  in
  let r =
    Placement.run ~seed:9 ~faults ~name:"crash" ~capacity:4 ~requests:200
      (mixed_tenants ())
  in
  let victim = List.nth r.Placement.tenants 1 in
  check Alcotest.string "victim marked crashed" "crashed"
    victim.Placement.final_health;
  check Alcotest.int "victim still lossless (retries settle as give-ups)" 0
    (Placement.lost victim);
  check Alcotest.bool "victim gave up on post-crash requests" true
    (victim.Placement.gave_up > 0);
  check Alcotest.int "crash reclaimed the floor" 0 victim.Placement.final_granted;
  List.iteri
    (fun i t ->
      if i <> 1 then
        check Alcotest.int
          (Printf.sprintf "%s unaffected accounting" t.Placement.t_name)
          0 (Placement.lost t))
    r.Placement.tenants

let placement_stale_fault () =
  let faults =
    [
      Plan.tenant_stale
        ~window:(Plan.window ~start:(Time.us 200) ~stop:(Time.us 900) ())
        ~tenant:0 ();
    ]
  in
  let r =
    Placement.run ~seed:13 ~faults ~name:"stale" ~capacity:4 ~requests:200
      (mixed_tenants ())
  in
  check Alcotest.bool "stale tenant was degraded" true
    (r.Placement.degradations >= 1);
  let victim = List.hd r.Placement.tenants in
  check Alcotest.string "recovered after the window" "healthy"
    victim.Placement.final_health;
  List.iter
    (fun t -> check Alcotest.int "lossless" 0 (Placement.lost t))
    r.Placement.tenants

let placement_hoard_fault () =
  let config =
    {
      (Placement.default_config ()) with
      Placement.broker =
        {
          (Broker.default_config ()) with
          Broker.hoard_cap = 10;
          hoard_decay = 1;
          quarantine_ticks = 100;
        };
    }
  in
  let faults =
    [ Plan.tenant_hoard ~window:(Plan.window ~start:(Time.us 200) ()) ~tenant:0 () ]
  in
  let r =
    Placement.run ~seed:17 ~faults ~config ~name:"hoard" ~capacity:4
      ~requests:300
      (mixed_tenants ~rate:150_000.0 ())
  in
  check Alcotest.bool "hoarder was quarantined" true
    (r.Placement.quarantines >= 1);
  List.iter
    (fun t -> check Alcotest.int "lossless" 0 (Placement.lost t))
    r.Placement.tenants

let suite =
  [
    Alcotest.test_case "grant from pool" `Quick grant_from_pool;
    Alcotest.test_case "LC steals from BE above floor" `Quick lc_steals_from_be;
    Alcotest.test_case "idle tenant yields" `Quick idle_tenant_yields;
    Alcotest.test_case "floor never reclaimed" `Quick floor_never_reclaimed;
    Alcotest.test_case "stale: degrade then recover" `Quick
      stale_degrade_and_recover;
    Alcotest.test_case "zero-floor tenant cannot oscillate" `Quick
      zero_floor_stays_stale;
    Alcotest.test_case "hoard: quarantine then release" `Quick
      hoard_quarantine_and_release;
    Alcotest.test_case "crash reclaims the floor" `Quick crash_reclaims_floor;
    Alcotest.test_case "fairness index" `Quick fairness_index;
    Alcotest.test_case "register validation" `Quick register_validation;
    Alcotest.test_case "placement reconciles losslessly" `Quick
      placement_reconciles;
    Alcotest.test_case "placement deterministic" `Quick placement_deterministic;
    Alcotest.test_case "placement crash fault" `Quick placement_crash_fault;
    Alcotest.test_case "placement stale fault" `Quick placement_stale_fault;
    Alcotest.test_case "placement hoard fault" `Quick placement_hoard_fault;
  ]
