(* Tests for histograms and run summaries. *)

module Histogram = Skyloft_stats.Histogram
module Summary = Skyloft_stats.Summary

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let test_hist_empty () =
  let h = Histogram.create () in
  check Alcotest.bool "empty" true (Histogram.is_empty h);
  check Alcotest.int "count" 0 (Histogram.count h);
  check Alcotest.int "p99 of empty" 0 (Histogram.percentile h 99.0);
  check Alcotest.int "min" 0 (Histogram.min_value h);
  check Alcotest.int "max" 0 (Histogram.max_value h)

let test_hist_exact_small_values () =
  (* values below sub_buckets are recorded exactly *)
  let h = Histogram.create () in
  List.iter (Histogram.record h) [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ];
  check Alcotest.int "p50" 5 (Histogram.percentile h 50.0);
  check Alcotest.int "p100" 10 (Histogram.percentile h 100.0);
  check Alcotest.int "p10" 1 (Histogram.percentile h 10.0);
  check Alcotest.int "min" 1 (Histogram.min_value h);
  check Alcotest.int "max" 10 (Histogram.max_value h)

let test_hist_minmax_exact () =
  let h = Histogram.create () in
  Histogram.record h 123_456_789;
  Histogram.record h 42;
  check Alcotest.int "min exact" 42 (Histogram.min_value h);
  check Alcotest.int "max exact" 123_456_789 (Histogram.max_value h)

let test_hist_record_n () =
  let h = Histogram.create () in
  Histogram.record_n h 100 ~n:1000;
  Histogram.record_n h 10_000 ~n:10;
  check Alcotest.int "count" 1010 (Histogram.count h);
  check Alcotest.bool "p50 near 100" true (abs (Histogram.percentile h 50.0 - 100) <= 2)

let test_hist_percentile_monotone () =
  let h = Histogram.create () in
  for i = 1 to 10_000 do
    Histogram.record h i
  done;
  let last = ref 0 in
  List.iter
    (fun p ->
      let v = Histogram.percentile h p in
      check Alcotest.bool (Printf.sprintf "p%.1f monotone" p) true (v >= !last);
      last := v)
    [ 1.0; 10.0; 25.0; 50.0; 75.0; 90.0; 99.0; 99.9; 100.0 ]

let prop_hist_relative_error =
  QCheck.Test.make ~name:"histogram percentile relative error < 2/sub_buckets"
    ~count:200
    QCheck.(int_range 1 1_000_000_000)
    (fun v ->
      let h = Histogram.create () in
      Histogram.record h v;
      let p = Histogram.percentile h 100.0 in
      (* single value: percentile = max_value = exact *)
      p = v)

let prop_hist_bucket_error =
  QCheck.Test.make ~name:"histogram p50 error bounded" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 100) (int_range 1 10_000_000))
    (fun values ->
      let h = Histogram.create () in
      List.iter (Histogram.record h) values;
      let sorted = List.sort compare values in
      let exact = List.nth sorted ((List.length values - 1) / 2) in
      let approx = Histogram.percentile h 50.0 in
      (* log-linear buckets with 64 sub-buckets: <= ~3.2% error *)
      float_of_int (abs (approx - exact)) <= (0.032 *. float_of_int exact) +. 1.0)

let test_hist_mean () =
  let h = Histogram.create () in
  List.iter (Histogram.record h) [ 10; 20; 30 ];
  check Alcotest.bool "mean ~20" true (abs_float (Histogram.mean h -. 20.0) < 0.5)

let test_hist_merge () =
  let a = Histogram.create () and b = Histogram.create () in
  Histogram.record a 5;
  Histogram.record b 500_000;
  Histogram.merge_into ~src:b ~dst:a;
  check Alcotest.int "merged count" 2 (Histogram.count a);
  check Alcotest.int "merged min" 5 (Histogram.min_value a);
  check Alcotest.int "merged max" 500_000 (Histogram.max_value a)

let test_hist_reset () =
  let h = Histogram.create () in
  Histogram.record h 99;
  Histogram.reset h;
  check Alcotest.bool "reset empty" true (Histogram.is_empty h)

let test_hist_negative_raises () =
  let h = Histogram.create () in
  Alcotest.check_raises "negative" (Invalid_argument "Histogram.record: negative value")
    (fun () -> Histogram.record h (-1))

let test_hist_bad_subbuckets () =
  Alcotest.check_raises "not a power of two"
    (Invalid_argument "Histogram.create: sub_buckets must be a power of two") (fun () ->
      ignore (Histogram.create ~sub_buckets:33 ()))

(* ---- Summary ---- *)

let test_summary_latency_and_slowdown () =
  let s = Summary.create () in
  (* request: arrived 0, completed 100, service 50 -> latency 100, slowdown 2.0 *)
  Summary.record_request s ~arrival:0 ~completion:100 ~service:50;
  check Alcotest.int "requests" 1 (Summary.requests s);
  check Alcotest.int "latency p100" 100 (Summary.latency_p s 100.0);
  check (Alcotest.float 0.05) "slowdown" 2.0 (Summary.slowdown_p s 100.0)

let test_summary_slowdown_floor () =
  let s = Summary.create () in
  (* completion = arrival: slowdown must still be >= 1 *)
  Summary.record_request s ~arrival:0 ~completion:0 ~service:50;
  check Alcotest.bool "slowdown >= 1" true (Summary.slowdown_p s 100.0 >= 1.0)

let test_summary_throughput () =
  let s = Summary.create () in
  for i = 1 to 1000 do
    Summary.record_request s ~arrival:i ~completion:(i + 10) ~service:5
  done;
  let rps = Summary.throughput_rps s ~duration:1_000_000_000 in
  check (Alcotest.float 0.001) "1000 req over 1s" 1000.0 rps

let test_summary_merge () =
  let a = Summary.create () and b = Summary.create () in
  Summary.record_request a ~arrival:0 ~completion:10 ~service:10;
  Summary.record_request b ~arrival:0 ~completion:20 ~service:10;
  Summary.record_wakeup b 77;
  Summary.merge_into ~src:b ~dst:a;
  check Alcotest.int "merged requests" 2 (Summary.requests a);
  check Alcotest.int "merged wakeups" 77 (Summary.wakeup_p a 100.0)

let test_summary_invalid () =
  let s = Summary.create () in
  check Alcotest.bool "completion < arrival raises" true
    (try
       Summary.record_request s ~arrival:10 ~completion:5 ~service:1;
       false
     with Invalid_argument _ -> true);
  check Alcotest.bool "negative service raises" true
    (try
       Summary.record_request s ~arrival:0 ~completion:5 ~service:(-1);
       false
     with Invalid_argument _ -> true);
  (* zero service is legal: the request still has a latency, it just
     contributes no slowdown sample (slowdown would divide by zero) *)
  Summary.record_request s ~arrival:0 ~completion:5 ~service:0;
  check Alcotest.int "zero-service request counted" 1 (Summary.requests s)

let test_timeseries_empty_mean () =
  let module Timeseries = Skyloft_stats.Timeseries in
  let s = Timeseries.create () in
  check (Alcotest.float 1e-9) "empty mean is 0" 0.0 (Timeseries.mean s ~until:1_000);
  check (Alcotest.float 1e-9) "empty integral is 0" 0.0
    (Timeseries.integrate s ~until:1_000)

let test_timeseries_integrate () =
  let module Timeseries = Skyloft_stats.Timeseries in
  let s = Timeseries.create () in
  Timeseries.record s ~at:0 2;
  Timeseries.record s ~at:100 6;
  (* 2 for 100 ns, then 6 for 100 ns *)
  check (Alcotest.float 1e-6) "integral is the step area" 800.0
    (Timeseries.integrate s ~until:200);
  check (Alcotest.float 1e-6) "mean is integral over window" 4.0
    (Timeseries.mean s ~until:200);
  (* a window ending before the last sample still integrates the prefix *)
  check (Alcotest.float 1e-6) "prefix integral" 200.0
    (Timeseries.integrate s ~until:100)

let test_timeseries_truncation_exact () =
  (* A wrapped series must agree with an unbounded reference: eviction
     folds each dropped sample's holding interval into the truncation
     accumulators, so integrate/mean stay exact over the full history. *)
  let module Timeseries = Skyloft_stats.Timeseries in
  let small = Timeseries.create ~capacity:4 () in
  let big = Timeseries.create ~capacity:10_000 () in
  (* distinct values so collapsing never kicks in; irregular spacing *)
  for i = 0 to 499 do
    let at = i * 7 and v = (i * 13 mod 97) + i in
    Timeseries.record small ~at v;
    Timeseries.record big ~at v
  done;
  let until = 500 * 7 in
  check Alcotest.int "reference dropped nothing" 0 (Timeseries.dropped big);
  check Alcotest.bool "wrapped series dropped samples" true
    (Timeseries.dropped small > 0);
  check Alcotest.int "window holds capacity samples" 4 (Timeseries.length small);
  check (Alcotest.float 1e-6) "integral exact across eviction"
    (Timeseries.integrate big ~until)
    (Timeseries.integrate small ~until);
  check (Alcotest.float 1e-9) "mean exact across eviction"
    (Timeseries.mean big ~until)
    (Timeseries.mean small ~until)

let test_timeseries_truncated_span () =
  let module Timeseries = Skyloft_stats.Timeseries in
  let s = Timeseries.create ~capacity:2 () in
  Timeseries.record s ~at:0 1;
  Timeseries.record s ~at:100 2;
  check Alcotest.int "no truncation before wrap" 0 (Timeseries.truncated_span s);
  Timeseries.record s ~at:250 3;
  (* the at:0 sample (held 0..100) scrolled out *)
  check Alcotest.int "span of the evicted holding interval" 100
    (Timeseries.truncated_span s);
  check Alcotest.int "one sample dropped" 1 (Timeseries.dropped s);
  Timeseries.record s ~at:400 4;
  (* now at:100 (held 100..250) is gone too *)
  check Alcotest.int "span accumulates" 250 (Timeseries.truncated_span s);
  (* window-only views see just the retained ring *)
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "window holds the two newest" [ (250, 3); (400, 4) ]
    (Timeseries.to_list s);
  (* full-history accounting: 1*100 + 2*150 + 3*150 + 4*100 = 1250 *)
  check (Alcotest.float 1e-6) "integral covers evicted prefix" 1250.0
    (Timeseries.integrate s ~until:500);
  check (Alcotest.float 1e-9) "mean over full span" (1250.0 /. 500.0)
    (Timeseries.mean s ~until:500)

let test_timeseries_capacity_one () =
  let module Timeseries = Skyloft_stats.Timeseries in
  let s = Timeseries.create ~capacity:1 () in
  Timeseries.record s ~at:0 5;
  Timeseries.record s ~at:10 7;
  Timeseries.record s ~at:30 9;
  (* evicted intervals close at the incoming sample: 5*10 + 7*20 *)
  check Alcotest.int "span at capacity 1" 30 (Timeseries.truncated_span s);
  check (Alcotest.float 1e-6) "integral at capacity 1"
    (50.0 +. 140.0 +. (9.0 *. 10.0))
    (Timeseries.integrate s ~until:40)

let suite =
  [
    Alcotest.test_case "timeseries: empty mean" `Quick test_timeseries_empty_mean;
    Alcotest.test_case "timeseries: integrate" `Quick test_timeseries_integrate;
    Alcotest.test_case "hist: empty" `Quick test_hist_empty;
    Alcotest.test_case "hist: exact small" `Quick test_hist_exact_small_values;
    Alcotest.test_case "hist: min/max exact" `Quick test_hist_minmax_exact;
    Alcotest.test_case "hist: record_n" `Quick test_hist_record_n;
    Alcotest.test_case "hist: monotone percentiles" `Quick test_hist_percentile_monotone;
    qtest prop_hist_relative_error;
    qtest prop_hist_bucket_error;
    Alcotest.test_case "hist: mean" `Quick test_hist_mean;
    Alcotest.test_case "hist: merge" `Quick test_hist_merge;
    Alcotest.test_case "hist: reset" `Quick test_hist_reset;
    Alcotest.test_case "hist: negative raises" `Quick test_hist_negative_raises;
    Alcotest.test_case "hist: bad subbuckets" `Quick test_hist_bad_subbuckets;
    Alcotest.test_case "summary: latency+slowdown" `Quick test_summary_latency_and_slowdown;
    Alcotest.test_case "summary: slowdown floor" `Quick test_summary_slowdown_floor;
    Alcotest.test_case "summary: throughput" `Quick test_summary_throughput;
    Alcotest.test_case "summary: merge" `Quick test_summary_merge;
    Alcotest.test_case "summary: invalid input" `Quick test_summary_invalid;
  ]
