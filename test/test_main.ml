let () =
  Alcotest.run "skyloft"
    [
      ("sim", Test_sim.suite);
      ("stats", Test_stats.suite);
      ("hw", Test_hw.suite);
      ("kernel", Test_kernel.suite);
      ("alloc", Test_alloc.suite);
      ("broker", Test_broker.suite);
      ("core", Test_core.suite);
      ("runtime_core", Test_runtime_core.suite);
      ("worksteal", Test_worksteal.suite);
      ("net", Test_net.suite);
      ("policies", Test_policies.suite);
      ("apps", Test_apps.suite);
      ("baselines", Test_baselines.suite);
      ("extensions", Test_extensions.suite);
      ("fault", Test_fault.suite);
      ("obs", Test_obs.suite);
      ("determinism", Test_determinism.suite);
      ("parallel", Test_parallel.suite);
      ("sync", Test_sync.suite);
      ("properties", Test_properties.suite);
      ("trace", Test_trace.suite);
      ("flight_recorder", Test_flight_recorder.suite);
      ("scenario", Test_scenario.suite);
      ("experiments", Test_experiments.suite);
      ("integration", Test_integration.suite);
      ("uthread", Test_uthread.suite);
    ]
