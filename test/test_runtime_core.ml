(* Runtime_core exercised through a minimal in-test stub runtime: a bare
   synchronous DISPATCH over N execution units and a FIFO policy, nothing
   else.  If the substrate really carries the shared machinery — lifecycle
   + attribution, app table, BE occupancy, deadline kills, watchdog
   bookkeeping — then even this degenerate runtime gets all of it for
   free, and these tests pin that down without either real runtime in the
   loop. *)

open Alcotest
module Engine = Skyloft_sim.Engine
module Time = Skyloft_sim.Time
module Coro = Skyloft_sim.Coro
module Topology = Skyloft_hw.Topology
module Machine = Skyloft_hw.Machine
module Kmod = Skyloft_kernel.Kmod
module Histogram = Skyloft_stats.Histogram
module Summary = Skyloft_stats.Summary
module Trace = Skyloft_stats.Trace
module Attribution = Skyloft_obs.Attribution
module App = Skyloft.App
module Task = Skyloft.Task
module Sched_ops = Skyloft.Sched_ops
module Runqueue = Skyloft.Runqueue
module Rc = Skyloft.Runtime_core

type stub = {
  rc : Rc.t;
  execs : Rc.exec array;
  incoming : int array;  (* simulated in-flight assignment per unit *)
  engine : Engine.t;
}

let reschedule st ex ~prev:_ =
  if ex.Rc.current = None then begin
    let pick () =
      let be =
        if Rc.be_occupancy st.rc < st.rc.Rc.be_allowance then
          Runqueue.pop_head st.rc.Rc.be_queue
        else None
      in
      match be with
      | Some task -> Some task
      | None -> st.rc.Rc.policy.task_dequeue ~cpu:ex.Rc.exec_core
    in
    match Rc.next_live st.rc pick with
    | Some task ->
        ignore (Rc.begin_run st.rc ex task ~switch_cost:0);
        Rc.run_after_switch st.rc ex task ~switch_cost:0
    | None -> ()
  end

let kick_all st = Array.iter (fun ex -> reschedule st ex ~prev:None) st.execs

(* Every queue lives at cpu 0 so a FIFO policy behaves as one shared
   queue regardless of how many units the stub has. *)
let make ?(units = 1) () =
  let engine = Engine.create () in
  let machine =
    Machine.create engine (Topology.create ~sockets:1 ~cores_per_socket:4)
  in
  let kmod = Kmod.create machine in
  let rc = Rc.create machine kmod ~record_wakeups:true ~trace_app_switches:false in
  let execs = Array.init units Rc.make_exec in
  let incoming = Array.make units (-1) in
  let st = { rc; execs; incoming; engine } in
  Rc.install_dispatch rc
    {
      Rc.d_name = "stub";
      d_units = execs;
      d_enqueue_cpu = (fun _ -> 0);
      d_incoming_app = (fun ex -> incoming.(ex.Rc.exec_core));
      d_released = (fun _ -> ());
      d_reschedule = (fun ex ~prev -> reschedule st ex ~prev);
    };
  Rc.install_policy rc (Skyloft_policies.Fifo.create ());
  st

let spawn st app ~name ?(service = 0) ?deadline ?on_drop body =
  let task =
    Rc.admit st.rc app ~name ~arrival:(Rc.now st.rc) ~service ~record:true body
  in
  st.rc.Rc.policy.task_init task;
  st.rc.Rc.policy.task_enqueue ~cpu:0 ~reason:Sched_ops.Enq_new task;
  kick_all st;
  (match deadline with
  | Some d ->
      Rc.arm_deadline st.rc ?on_drop task ~deadline:d ~err:"stub: bad deadline"
  | None -> ());
  task

let wake st task =
  Rc.awaken st.rc task ~place:(fun task ->
      ignore (st.rc.Rc.policy.task_wakeup ~waker_cpu:0 task);
      kick_all st)

(* ---- app table ----------------------------------------------------------- *)

let test_find_app_many () =
  let st = make () in
  let apps =
    List.init 200 (fun i ->
        Rc.new_app st.rc ~name:(Printf.sprintf "app%d" i))
  in
  List.iter
    (fun (app : App.t) ->
      let found = Rc.find_app st.rc app.App.id in
      check bool
        (Printf.sprintf "app %d resolves to itself" app.App.id)
        true (found == app))
    apps;
  check string "daemon is id 0" st.rc.Rc.daemon.App.name
    (Rc.find_app st.rc 0).App.name;
  check_raises "unknown id raises Not_found" Not_found (fun () ->
      ignore (Rc.find_app st.rc 99_999))

(* ---- lifecycle + attribution --------------------------------------------- *)

let test_lifecycle_attribution () =
  let st = make () in
  let app = Rc.new_app st.rc ~name:"lc" in
  (* one yielding request, one blocking request woken externally *)
  ignore
    (spawn st app ~name:"yielder" ~service:(Time.us 50)
       (Coro.Compute
          ( Time.us 20,
            fun () ->
              Coro.Yield
                (fun () -> Coro.Compute (Time.us 30, fun () -> Coro.Exit)) )));
  let blocker =
    spawn st app ~name:"blocker" ~service:(Time.us 20)
      (Coro.Compute
         ( Time.us 10,
           fun () ->
             Coro.Block (fun () -> Coro.Compute (Time.us 10, fun () -> Coro.Exit))
         ))
  in
  ignore (Engine.after st.engine (Time.us 200) (fun () -> wake st blocker));
  Engine.run ~until:(Time.ms 2) st.engine;
  check int "both requests completed" 2 (Summary.requests app.App.summary);
  check int "attribution recorded both" 2 (Attribution.requests app.App.attribution);
  check int "identity holds (no mismatches)" 0
    (Attribution.mismatches app.App.attribution);
  check int "busy time is the compute total" (Time.us 70) app.App.busy_ns;
  check int "no tasks left alive" 0 app.App.tasks_alive;
  (match st.rc.Rc.wakeups with
  | Some h ->
      check bool "wakeup-to-dispatch latency sampled" false (Histogram.is_empty h)
  | None -> fail "stub asked for wakeup recording");
  (* stall must cover the blocked interval: response - service - queue > 150us *)
  check bool "blocked interval attributed as stall" true
    (Histogram.mean (Attribution.stall app.App.attribution) > 0.0)

(* ---- deadline kills ------------------------------------------------------- *)

let test_deadline_kills () =
  let st = make () in
  let app = Rc.new_app st.rc ~name:"lc" in
  let dropped = ref [] in
  let on_drop (task : Task.t) = dropped := task.Task.name :: !dropped in
  (* A runs and is killed mid-flight; C is killed while still queued behind
     A (discarded lazily at dequeue); B completes; D blocks and is killed
     while blocked. *)
  ignore
    (spawn st app ~name:"A" ~deadline:(Time.us 100) ~on_drop
       (Coro.Compute (Time.ms 1, fun () -> Coro.Exit)));
  ignore
    (spawn st app ~name:"C" ~deadline:(Time.us 60) ~on_drop
       (Coro.Compute (Time.us 50, fun () -> Coro.Exit)));
  ignore
    (spawn st app ~name:"B" ~service:(Time.us 50) ~deadline:(Time.ms 2)
       (Coro.Compute (Time.us 50, fun () -> Coro.Exit)));
  ignore
    (spawn st app ~name:"D" ~deadline:(Time.us 300) ~on_drop
       (Coro.Compute
          ( Time.us 10,
            fun () -> Coro.Block (fun () -> Coro.Exit) )));
  Engine.run ~until:(Time.ms 3) st.engine;
  check int "three deadline drops" 3 st.rc.Rc.deadline_drops;
  check int "only B completed" 1 (Summary.requests app.App.summary);
  check int "drops counted in the summary" 3 (Summary.drops app.App.summary);
  check (list string) "on_drop saw A, C and D"
    [ "A"; "C"; "D" ]
    (List.sort compare !dropped);
  check int "no tasks left alive" 0 app.App.tasks_alive;
  check_raises "non-positive deadline rejected"
    (Invalid_argument "stub: bad deadline") (fun () ->
      ignore
        (spawn st app ~name:"bad" ~deadline:0 (Coro.Compute (1, fun () -> Coro.Exit))))

(* ---- watchdog bookkeeping ------------------------------------------------- *)

let test_watchdog_rescue () =
  let st = make () in
  let app = Rc.new_app st.rc ~name:"lc" in
  let trace = Trace.create () in
  st.rc.Rc.trace <- Some trace;
  let bound = Time.us 50 in
  (* The stub's scan: any task a full bound past its start is deposed and
     requeued — Runtime_core counts, samples and traces the rescue. *)
  let scan ~bound =
    Array.iter
      (fun ex ->
        match ex.Rc.current with
        | Some task when not (Rc.Eventq.is_null ex.Rc.completion) ->
            let overrun = Rc.now st.rc - task.Task.run_start - bound in
            if overrun > 0 then begin
              Rc.rescued st.rc ex ~late:overrun;
              match Rc.depose st.rc ex ~overhead:0 with
              | Some t ->
                  st.rc.Rc.policy.task_enqueue ~cpu:0
                    ~reason:Sched_ops.Enq_preempted t;
                  reschedule st ex ~prev:(Some t)
              | None -> ()
            end
        | _ -> ())
      st.execs
  in
  Rc.start_watchdog st.rc ~bound:(Some bound) scan;
  ignore
    (spawn st app ~name:"hog" ~service:(Time.us 400)
       (Coro.Compute (Time.us 400, fun () -> Coro.Exit)));
  Engine.run ~until:(Time.ms 2) st.engine;
  check bool "rescues counted" true (st.rc.Rc.rescues > 0);
  check bool "detection latency sampled" false
    (Histogram.is_empty st.rc.Rc.rescue_detect);
  let rescue_instants =
    Trace.fold trace
      (fun acc ev ->
        match ev with
        | Trace.Instant { kind = Trace.Watchdog_rescue; _ } -> acc + 1
        | _ -> acc)
      0
  in
  check int "one trace instant per rescue" st.rc.Rc.rescues rescue_instants;
  (* the rescued task still finishes, and its attribution still adds up *)
  check int "hog completed despite rescues" 1 (Summary.requests app.App.summary);
  check int "identity survives depose/requeue" 0
    (Attribution.mismatches app.App.attribution)

(* ---- BE occupancy and attachment validation ------------------------------- *)

let test_be_occupancy () =
  let st = make ~units:2 () in
  let be = Rc.new_app st.rc ~name:"batch" in
  Rc.spawn_be_workers st.rc be ~chunk:(Time.us 10) ~workers:2 ~who:"stub";
  check int "nothing running yet" 0 (Rc.be_occupancy st.rc);
  (* an assignment in flight counts as occupancy before it lands *)
  st.incoming.(0) <- be.App.id;
  check int "in-flight assignment counted" 1 (Rc.be_occupancy st.rc);
  st.incoming.(0) <- -1;
  kick_all st;
  check int "both units running BE" 2 (Rc.be_occupancy st.rc);
  check bool "BE tasks recognised" true
    (match st.execs.(0).Rc.current with
    | Some task -> Rc.is_be st.rc task
    | None -> false);
  check_raises "second BE app rejected"
    (Invalid_argument "stub: BE app already set") (fun () ->
      Rc.spawn_be_workers st.rc be ~chunk:(Time.us 10) ~workers:1 ~who:"stub");
  (* an app from some other runtime's table is refused *)
  let foreign = App.create ~id:999 ~name:"foreign" in
  let st2 = make () in
  check_raises "foreign app rejected"
    (Invalid_argument "stub: app not created by this runtime") (fun () ->
      Rc.spawn_be_workers st2.rc foreign ~chunk:(Time.us 10) ~workers:1
        ~who:"stub")

let suite =
  [
    test_case "find_app is exact over many apps" `Quick test_find_app_many;
    test_case "lifecycle keeps the attribution identity" `Quick
      test_lifecycle_attribution;
    test_case "deadline kills in every state" `Quick test_deadline_kills;
    test_case "watchdog bookkeeping" `Quick test_watchdog_rescue;
    test_case "BE occupancy counts in-flight work" `Quick test_be_occupancy;
  ]
