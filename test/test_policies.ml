(* Behavioural tests for each scheduling policy, driven through the real
   runtimes. *)

module Time = Skyloft_sim.Time
module Engine = Skyloft_sim.Engine
module Coro = Skyloft_sim.Coro
module Topology = Skyloft_hw.Topology
module Machine = Skyloft_hw.Machine
module Kmod = Skyloft_kernel.Kmod
module Task = Skyloft.Task
module App = Skyloft.App
module Percpu = Skyloft.Percpu
module Centralized = Skyloft.Centralized
module Fifo = Skyloft_policies.Fifo
module Rr = Skyloft_policies.Rr
module Cfs = Skyloft_policies.Cfs
module Eevdf = Skyloft_policies.Eevdf
module Shinjuku = Skyloft_policies.Shinjuku
module Shinjuku_shenango = Skyloft_policies.Shinjuku_shenango
module Work_stealing = Skyloft_policies.Work_stealing

let check = Alcotest.check

let make_rt ?(cores = 4) ?(timer_hz = 100_000) ?(preemption = true) ctor =
  let engine = Engine.create () in
  let machine = Machine.create engine (Topology.create ~sockets:1 ~cores_per_socket:8) in
  let kmod = Kmod.create machine in
  let rt =
    Percpu.create machine kmod ~cores:(List.init cores Fun.id) ~timer_hz ~preemption ctor
  in
  let app = Percpu.create_app rt ~name:"app" in
  (engine, rt, app)

(* Spawn a compute task that records its completion time. *)
let spawn_timed engine rt app ?cpu name work finished =
  ignore
    (Percpu.spawn rt app ~name ?cpu
       (Coro.Compute (work, fun () -> finished := Engine.now engine; Coro.Exit)))

(* ---- FIFO ---- *)

let test_fifo_order () =
  let engine, rt, app = make_rt ~cores:1 (Fifo.create ()) in
  let order = ref [] in
  for i = 1 to 5 do
    ignore
      (Percpu.spawn rt app ~name:(string_of_int i)
         (Coro.Compute (Time.us 10, fun () -> order := i :: !order; Coro.Exit)))
  done;
  Engine.run ~until:(Time.ms 1) engine;
  check (Alcotest.list Alcotest.int) "completion in arrival order" [ 1; 2; 3; 4; 5 ]
    (List.rev !order)

let test_fifo_never_preempts () =
  let engine, rt, app = make_rt ~cores:1 (Fifo.create ()) in
  ignore (Percpu.spawn rt app ~name:"hog" (Coro.compute_then_exit (Time.ms 3)));
  ignore (Percpu.spawn rt app ~name:"short" (Coro.compute_then_exit (Time.us 1)));
  Engine.run ~until:(Time.ms 5) engine;
  check Alcotest.int "zero preemptions despite 100kHz ticks" 0 (Percpu.preemptions rt)

(* ---- RR ---- *)

let test_rr_slices () =
  let engine, rt, app = make_rt ~cores:1 (Rr.create ~slice:(Time.us 50) ()) in
  let a = ref 0 and b = ref 0 in
  spawn_timed engine rt app "a" (Time.ms 1) a;
  spawn_timed engine rt app "b" (Time.ms 1) b;
  Engine.run ~until:(Time.ms 5) engine;
  (* interleaved: both finish around 2ms, within a slice of each other *)
  check Alcotest.bool "interleaved" true (abs (!a - !b) < Time.us 200);
  check Alcotest.bool "preempted many times" true (Percpu.preemptions rt > 10)

let test_rr_infinite_slice_is_fifo () =
  let engine, rt, app = make_rt ~cores:1 (Rr.create ()) in
  let a = ref 0 and b = ref 0 in
  spawn_timed engine rt app "a" (Time.ms 1) a;
  spawn_timed engine rt app "b" (Time.ms 1) b;
  Engine.run ~until:(Time.ms 5) engine;
  check Alcotest.int "no preemption" 0 (Percpu.preemptions rt);
  check Alcotest.bool "a then b" true (!a < !b && !a < Time.ms 2)

let test_rr_wakeup_to_idle_core () =
  let engine, rt, app = make_rt ~cores:2 (Rr.create ~slice:(Time.us 50) ()) in
  ignore (Percpu.spawn rt app ~name:"hog" ~cpu:0 (Coro.compute_then_exit (Time.ms 2)));
  let woke = ref 0 in
  let sleeper =
    Percpu.spawn rt app ~name:"sleeper" ~cpu:0
      (Coro.Block (fun () -> woke := Engine.now engine; Coro.Exit))
  in
  ignore (Engine.at engine (Time.us 500) (fun () -> Percpu.wakeup rt sleeper));
  Engine.run ~until:(Time.ms 3) engine;
  (* core 1 is idle: the wakeup must land there immediately *)
  check Alcotest.bool "woken promptly on idle core" true
    (!woke > 0 && !woke < Time.us 505)

(* ---- CFS ---- *)

let test_cfs_fair_split () =
  let engine, rt, app = make_rt ~cores:1 (Cfs.create ()) in
  (* two hogs that each want 5ms on one core *)
  let a = ref 0 and b = ref 0 in
  spawn_timed engine rt app "a" (Time.ms 5) a;
  spawn_timed engine rt app "b" (Time.ms 5) b;
  Engine.run ~until:(Time.ms 15) engine;
  check Alcotest.bool "both done close together (fair)" true
    (!a > 0 && !b > 0 && abs (!a - !b) < Time.ms 1)

let test_cfs_three_way_fairness () =
  let engine, rt, app = make_rt ~cores:1 (Cfs.create ()) in
  let dones = Array.make 3 0 in
  for i = 0 to 2 do
    let r = ref 0 in
    spawn_timed engine rt app (Printf.sprintf "t%d" i) (Time.ms 2) r;
    ignore (Engine.at engine (Time.ms 14) (fun () -> dones.(i) <- !r))
  done;
  Engine.run ~until:(Time.ms 15) engine;
  let min_d = Array.fold_left min max_int dones and max_d = Array.fold_left max 0 dones in
  check Alcotest.bool "all three finish within ~1 slice window" true
    (min_d > 0 && max_d - min_d < Time.ms 1)

let test_cfs_sleeper_gets_priority () =
  (* A task that slept should preempt... in Skyloft CFS, run soon after
     wake even though a hog is running, bounded by the 10us tick. *)
  let engine, rt, app = make_rt ~cores:1 (Cfs.create ()) in
  ignore (Percpu.spawn rt app ~name:"hog" (Coro.compute_then_exit (Time.ms 4)));
  let woke_done = ref 0 in
  let sleeper =
    Percpu.spawn rt app ~name:"sleeper"
      (Coro.Block
         (fun () ->
           Coro.Compute (Time.us 20, fun () -> woke_done := Engine.now engine; Coro.Exit)))
  in
  ignore (Engine.at engine (Time.ms 1) (fun () -> Percpu.wakeup rt sleeper));
  Engine.run ~until:(Time.ms 6) engine;
  (* woken at 1ms with sleeper credit: should finish within ~100us, far
     before the hog's 4ms completion *)
  check Alcotest.bool "sleeper ran promptly" true
    (!woke_done > Time.ms 1 && !woke_done < Time.ms 1 + Time.us 150)

(* ---- EEVDF ---- *)

let test_eevdf_fair_split () =
  let engine, rt, app = make_rt ~cores:1 (Eevdf.create ()) in
  let a = ref 0 and b = ref 0 in
  spawn_timed engine rt app "a" (Time.ms 5) a;
  spawn_timed engine rt app "b" (Time.ms 5) b;
  Engine.run ~until:(Time.ms 15) engine;
  check Alcotest.bool "fair" true (!a > 0 && !b > 0 && abs (!a - !b) < Time.ms 1)

let test_eevdf_lag_preserved_on_wake () =
  let engine, rt, app = make_rt ~cores:1 (Eevdf.create ()) in
  ignore (Percpu.spawn rt app ~name:"hog" (Coro.compute_then_exit (Time.ms 4)));
  let woke_done = ref 0 in
  let sleeper =
    Percpu.spawn rt app ~name:"sleeper"
      (Coro.Block
         (fun () ->
           Coro.Compute (Time.us 20, fun () -> woke_done := Engine.now engine; Coro.Exit)))
  in
  ignore (Engine.at engine (Time.ms 1) (fun () -> Percpu.wakeup rt sleeper));
  Engine.run ~until:(Time.ms 6) engine;
  check Alcotest.bool "woken task scheduled quickly (positive lag)" true
    (!woke_done > Time.ms 1 && !woke_done < Time.ms 1 + Time.us 150)

(* ---- Work stealing ---- *)

let test_ws_steals_to_idle_core () =
  let engine, rt, app = make_rt ~cores:2 (Work_stealing.create ()) in
  (* both tasks pinned to core 0's queue; core 1 must steal one *)
  let a = ref 0 and b = ref 0 in
  spawn_timed engine rt app ~cpu:0 "a" (Time.ms 1) a;
  spawn_timed engine rt app ~cpu:0 "b" (Time.ms 1) b;
  Engine.run ~until:(Time.ms 5) engine;
  check Alcotest.bool "ran in parallel via stealing" true
    (!a > 0 && !b > 0 && abs (!a - !b) < Time.us 100)

(* The GET arrives once the SCAN is already running (owner-head LIFO means
   a GET queued before the first dispatch would be picked first). *)
let test_ws_nonpreemptive_hol () =
  let engine, rt, app = make_rt ~cores:1 (Work_stealing.create ()) in
  let short = ref 0 in
  ignore (Percpu.spawn rt app ~name:"scan" ~cpu:0 (Coro.compute_then_exit (Time.us 591)));
  ignore
    (Engine.at engine (Time.us 1) (fun () ->
         spawn_timed engine rt app ~cpu:0 "get" (Time.ns 950) short));
  Engine.run ~until:(Time.ms 2) engine;
  check Alcotest.bool "GET waited behind the SCAN" true (!short >= Time.us 591)

let test_ws_preemptive_breaks_hol () =
  let engine, rt, app =
    make_rt ~cores:1 (Work_stealing.create ~quantum:(Time.us 5) ())
  in
  let short = ref 0 in
  ignore (Percpu.spawn rt app ~name:"scan" ~cpu:0 (Coro.compute_then_exit (Time.us 591)));
  ignore
    (Engine.at engine (Time.us 1) (fun () ->
         spawn_timed engine rt app ~cpu:0 "get" (Time.ns 950) short));
  Engine.run ~until:(Time.ms 2) engine;
  check Alcotest.bool "GET escaped within ~2 quanta" true
    (!short > 0 && !short < Time.us 25)

(* Direct-instance regression tests for the steal-path bugfixes: a
   synthetic view lets us assert queue order, victim distribution and
   wakeup placement without the runtime's dispatch noise. *)

let ws_instance ?(cores = [| 0; 1 |]) ?(is_idle = fun _ -> false) () =
  let view =
    { Skyloft.Sched_ops.cores; is_idle; now = (fun () -> 0) }
  in
  Work_stealing.create () view

let mk_task id name = Task.create ~id ~app:1 ~name (Coro.compute_then_exit 1)

let names = Alcotest.list Alcotest.string

(* Owner-head LIFO: fresh tasks run newest-first, a preempted task goes to
   the tail behind queued short work (failed before the semantics fix:
   every reason was push_tail, making the queue plain FIFO). *)
let test_ws_owner_head_lifo () =
  let p = ws_instance () in
  let enq reason t = p.Skyloft.Sched_ops.task_enqueue ~cpu:0 ~reason t in
  List.iteri
    (fun i name -> enq Skyloft.Sched_ops.Enq_new (mk_task i name))
    [ "a"; "b"; "c" ];
  let deq () =
    match p.Skyloft.Sched_ops.task_dequeue ~cpu:0 with
    | Some t -> t.Task.name
    | None -> "-"
  in
  check Alcotest.string "owner pops the newest first" "c" (deq ());
  enq Skyloft.Sched_ops.Enq_preempted (mk_task 10 "preempted");
  let d1 = deq () in
  let d2 = deq () in
  let d3 = deq () in
  check names "preempted waits behind queued work" [ "b"; "a"; "preempted" ]
    [ d1; d2; d3 ]

(* The steal scan stops at the first hit and resumes from a persisted
   cursor, so repeated steals rotate across victims instead of draining
   thief+1 first (the old loop always restarted at thief+1). *)
let test_ws_steal_cursor_round_robin () =
  let p = ws_instance ~cores:[| 0; 1; 2; 3 |] () in
  let id = ref 0 in
  (* two tasks per victim; pop_tail steals the first-enqueued one *)
  List.iter
    (fun cpu ->
      List.iter
        (fun tag ->
          incr id;
          p.Skyloft.Sched_ops.task_enqueue ~cpu ~reason:Skyloft.Sched_ops.Enq_new
            (mk_task !id (Printf.sprintf "v%d-%s" cpu tag)))
        [ "first"; "second" ])
    [ 1; 2; 3 ];
  let steal () =
    match p.Skyloft.Sched_ops.sched_balance ~cpu:0 with
    | Some t -> t.Task.name
    | None -> "-"
  in
  check Alcotest.string "first steal hits thief+1" "v1-first" (steal ());
  (* early exit: victims 2 and 3 were not touched by the first steal *)
  let local_len cpu =
    let rec drain acc =
      match p.Skyloft.Sched_ops.task_dequeue ~cpu with
      | Some t -> drain (t :: acc)
      | None -> acc
    in
    let popped_rev = drain [] in
    (* rebuild the queue exactly: push_head in reverse pop order *)
    List.iter
      (fun t ->
        p.Skyloft.Sched_ops.task_enqueue ~cpu ~reason:Skyloft.Sched_ops.Enq_new t)
      popped_rev;
    List.length popped_rev
  in
  check Alcotest.int "victim 2 untouched after the first steal" 2 (local_len 2);
  check Alcotest.int "victim 3 untouched after the first steal" 2 (local_len 3);
  let got = ref [] in
  for _ = 1 to 6 do
    got := steal () :: !got
  done;
  let got = List.rev !got in
  check names "subsequent steals rotate round-robin from the cursor"
    [ "v2-first"; "v3-first"; "v1-second"; "v2-second"; "v3-second"; "-" ]
    got

(* An unmanaged waker with no idle core rotates its fallback instead of
   hot-spotting core 0. *)
let test_ws_wakeup_fallback_rotates () =
  let p = ws_instance ~cores:[| 0; 1; 2 |] () in
  let targets =
    List.map
      (fun i -> p.Skyloft.Sched_ops.task_wakeup ~waker_cpu:99 (mk_task i "w"))
      [ 1; 2; 3; 4 ]
  in
  check (Alcotest.list Alcotest.int) "fallback rotates across cores"
    [ 0; 1; 2; 0 ] targets;
  (* an idle core still wins over the rotation *)
  let p = ws_instance ~cores:[| 0; 1; 2 |] ~is_idle:(fun c -> c = 2) () in
  check Alcotest.int "idle core preferred over the fallback" 2
    (p.Skyloft.Sched_ops.task_wakeup ~waker_cpu:99 (mk_task 9 "w"))

(* ---- Shinjuku / Shinjuku-Shenango (centralized) ---- *)

let make_centralized ?(workers = 2) ~quantum ctor =
  let engine = Engine.create () in
  let machine = Machine.create engine (Topology.create ~sockets:1 ~cores_per_socket:8) in
  let kmod = Kmod.create machine in
  let rt =
    Centralized.create machine kmod ~dispatcher_core:0
      ~worker_cores:(List.init workers (fun i -> i + 1))
      ~quantum ctor
  in
  let app = Centralized.create_app rt ~name:"lc" in
  (engine, rt, app)

let test_shinjuku_processor_sharing () =
  let engine, rt, app = make_centralized ~workers:1 ~quantum:(Time.us 30) (Shinjuku.create ()) in
  let short = ref 0 in
  ignore
    (Centralized.submit rt app ~name:"long" ~service:(Time.ms 10)
       (Coro.compute_then_exit (Time.ms 10)));
  ignore
    (Centralized.submit rt app ~name:"short" ~service:(Time.us 4)
       (Coro.Compute (Time.us 4, fun () -> short := Engine.now engine; Coro.Exit)));
  Engine.run ~until:(Time.ms 20) engine;
  check Alcotest.bool "short request escaped the 10ms request" true
    (!short > 0 && !short < Time.us 100)

let test_shinjuku_shenango_congestion_stats () =
  let ctor, stats = Shinjuku_shenango.create () in
  let engine, rt, app = make_centralized ~workers:1 ~quantum:(Time.us 30) ctor in
  (* overload the single worker so the queue backs up *)
  for _ = 1 to 20 do
    ignore
      (Centralized.submit rt app ~name:"req" ~service:(Time.us 100)
         (Coro.compute_then_exit (Time.us 100)))
  done;
  Engine.run ~until:(Time.ms 10) engine;
  check Alcotest.bool "queueing delay observed" true
    (stats.Shinjuku_shenango.max_queue_delay > 0);
  check Alcotest.int "all served eventually" 20 app.App.completed

let suite =
  [
    Alcotest.test_case "fifo: completion order" `Quick test_fifo_order;
    Alcotest.test_case "fifo: never preempts" `Quick test_fifo_never_preempts;
    Alcotest.test_case "rr: slicing" `Quick test_rr_slices;
    Alcotest.test_case "rr: infinite slice = fifo" `Quick test_rr_infinite_slice_is_fifo;
    Alcotest.test_case "rr: wakeup to idle core" `Quick test_rr_wakeup_to_idle_core;
    Alcotest.test_case "cfs: fair split" `Quick test_cfs_fair_split;
    Alcotest.test_case "cfs: 3-way fairness" `Quick test_cfs_three_way_fairness;
    Alcotest.test_case "cfs: sleeper priority" `Quick test_cfs_sleeper_gets_priority;
    Alcotest.test_case "eevdf: fair split" `Quick test_eevdf_fair_split;
    Alcotest.test_case "eevdf: lag on wake" `Quick test_eevdf_lag_preserved_on_wake;
    Alcotest.test_case "ws: stealing" `Quick test_ws_steals_to_idle_core;
    Alcotest.test_case "ws: HoL without preemption" `Quick test_ws_nonpreemptive_hol;
    Alcotest.test_case "ws: preemption breaks HoL" `Quick test_ws_preemptive_breaks_hol;
    Alcotest.test_case "ws: owner-head LIFO, preempted to tail" `Quick
      test_ws_owner_head_lifo;
    Alcotest.test_case "ws: steal cursor round-robin + early exit" `Quick
      test_ws_steal_cursor_round_robin;
    Alcotest.test_case "ws: wakeup fallback rotates off core 0" `Quick
      test_ws_wakeup_fallback_rotates;
    Alcotest.test_case "shinjuku: processor sharing" `Quick test_shinjuku_processor_sharing;
    Alcotest.test_case "shinjuku-shenango: congestion stats" `Quick
      test_shinjuku_shenango_congestion_stats;
  ]
