(* Tests for the scenario DSL (lib/scenario): arrival processes, service
   shapes, scenario validation, compilation semantics onto the runtimes,
   digest determinism, and the bounded-memory property the million-request
   scale cells depend on. *)

open Alcotest
module Time = Skyloft_sim.Time
module Rng = Skyloft_sim.Rng
module Dist = Skyloft_sim.Dist
module Histogram = Skyloft_stats.Histogram
module Arrival = Skyloft_scenario.Arrival
module Shape = Skyloft_scenario.Shape
module Scenario = Skyloft_scenario.Scenario

let invalid f = try f (); false with Invalid_argument _ -> true

(* ---- Arrival ----------------------------------------------------------- *)

let test_arrival_validate () =
  check bool "zero poisson rate" true
    (invalid (fun () -> Arrival.validate (Arrival.Poisson { rate_rps = 0.0 })));
  check bool "negative mmpp rate" true
    (invalid (fun () ->
         Arrival.validate
           (Arrival.Mmpp
              { rate_on = -1.0; rate_off = 0.0; mean_on = Time.ms 1;
                mean_off = Time.ms 1 })));
  check bool "all-zero mmpp rates" true
    (invalid (fun () ->
         Arrival.validate
           (Arrival.Mmpp
              { rate_on = 0.0; rate_off = 0.0; mean_on = Time.ms 1;
                mean_off = Time.ms 1 })));
  check bool "non-positive sojourn" true
    (invalid (fun () ->
         Arrival.validate
           (Arrival.Mmpp
              { rate_on = 1.0; rate_off = 0.0; mean_on = 0; mean_off = Time.ms 1 })));
  check bool "empty diurnal" true
    (invalid (fun () -> Arrival.validate (Arrival.Diurnal { segments = [] })));
  check bool "all-zero diurnal" true
    (invalid (fun () ->
         Arrival.validate
           (Arrival.Diurnal { segments = [ (Time.ms 1, 0.0) ] })));
  (* zero-rate nights are fine as long as one segment is positive *)
  Arrival.validate
    (Arrival.Diurnal { segments = [ (Time.ms 1, 0.0); (Time.ms 1, 100.0) ] })

let test_arrival_mean_rate () =
  check (float 1e-9) "poisson" 5_000.0
    (Arrival.mean_rate (Arrival.Poisson { rate_rps = 5_000.0 }));
  (* MMPP: sojourn-weighted: (1e6*2 + 1e5*6) / 8 = 325k *)
  check (float 1e-6) "mmpp weighted" 325_000.0
    (Arrival.mean_rate
       (Arrival.Mmpp
          { rate_on = 1_000_000.0; rate_off = 100_000.0; mean_on = Time.ms 2;
            mean_off = Time.ms 6 }));
  (* diurnal: duration-weighted: (2*30k + 3*12k + 5*1.5k) / 10 = 10.35k *)
  check (float 1e-6) "diurnal weighted" 10_350.0
    (Arrival.mean_rate
       (Arrival.Diurnal
          { segments =
              [ (Time.ms 2, 30_000.0); (Time.ms 3, 12_000.0);
                (Time.ms 5, 1_500.0) ] }))

(* Drive a sampler over [horizon] of virtual time; returns arrival count
   after checking times are nondecreasing. *)
let drain_sampler next ~horizon =
  let count = ref 0 and now = ref 0 and go = ref true in
  while !go do
    match next ~now:!now with
    | None -> go := false
    | Some at ->
        check bool "arrivals nondecreasing" true (at >= !now);
        if at >= horizon then go := false
        else begin
          incr count;
          now := at
        end
  done;
  !count

let test_arrival_empirical_rates () =
  List.iter
    (fun (name, arrival, horizon_ms, tol) ->
      let next = Arrival.sampler arrival (Rng.create ~seed:1) in
      let horizon = Time.ms horizon_ms in
      let n = drain_sampler next ~horizon in
      let expected =
        Arrival.mean_rate arrival *. (float_of_int horizon /. 1e9)
      in
      let rel = abs_float (float_of_int n -. expected) /. expected in
      check bool
        (Printf.sprintf "%s: %d arrivals ~ %.0f expected (rel %.3f)" name n
           expected rel)
        true (rel < tol))
    [
      ("poisson", Arrival.Poisson { rate_rps = 100_000.0 }, 200, 0.05);
      (* per-cycle burst counts are ~exponential (Poisson over an
         exponential sojourn), so convergence is slow: per-seed std is
         ~5% even at ~400 cycles *)
      ( "mmpp",
        Arrival.Mmpp
          { rate_on = 400_000.0; rate_off = 20_000.0; mean_on = Time.ms 2;
            mean_off = Time.ms 6 },
        3_200, 0.15 );
      ( "diurnal",
        Arrival.Diurnal
          { segments =
              [ (Time.ms 2, 200_000.0); (Time.ms 3, 50_000.0);
                (Time.ms 5, 10_000.0) ] },
        500, 0.10 );
    ]

let test_arrival_sampler_deterministic () =
  let arrival =
    Arrival.Mmpp
      { rate_on = 500_000.0; rate_off = 0.0; mean_on = Time.ms 1;
        mean_off = Time.ms 2 }
  in
  let times seed =
    let next = Arrival.sampler arrival (Rng.create ~seed) in
    let acc = ref [] and now = ref 0 in
    for _ = 1 to 500 do
      match next ~now:!now with
      | Some at ->
          acc := at :: !acc;
          now := at
      | None -> ()
    done;
    !acc
  in
  check bool "same seed, same stream" true (times 7 = times 7);
  check bool "different seed, different stream" true (times 7 <> times 8)

let test_arrival_rotate () =
  let segs = [ (1, 10.0); (2, 20.0); (3, 30.0) ] in
  check bool "rotate 0 = id" true (Arrival.rotate 0 segs = segs);
  check bool "rotate 1" true
    (Arrival.rotate 1 segs = [ (2, 20.0); (3, 30.0); (1, 10.0) ]);
  check bool "rotate wraps" true (Arrival.rotate 4 segs = Arrival.rotate 1 segs);
  (* rotation preserves the long-run rate *)
  check (float 1e-9) "rotation preserves mean rate"
    (Arrival.mean_rate (Arrival.Diurnal { segments = segs }))
    (Arrival.mean_rate (Arrival.Diurnal { segments = Arrival.rotate 2 segs }))

(* ---- Shape ------------------------------------------------------------- *)

let test_shape_validate () =
  check bool "empty chain" true
    (invalid (fun () -> Shape.validate (Shape.Chain [])));
  check bool "zero fanout" true
    (invalid (fun () ->
         Shape.validate (Shape.Fanout { width = 0; stage = Dist.Constant 10 })));
  check bool "empty mix" true
    (invalid (fun () -> Shape.validate (Shape.Mix [])));
  check bool "non-positive mix weight" true
    (invalid (fun () ->
         Shape.validate
           (Shape.Mix [ (0.0, Shape.Single (Dist.Constant 10)) ])));
  check bool "invalid nested branch" true
    (invalid (fun () ->
         Shape.validate (Shape.Mix [ (1.0, Shape.Chain []) ])))

let test_shape_mean_service () =
  check (float 1e-9) "single" 100.0
    (Shape.mean_service (Shape.Single (Dist.Constant 100)));
  check (float 1e-9) "chain sums" 600.0
    (Shape.mean_service
       (Shape.Chain [ Dist.Constant 100; Dist.Constant 200; Dist.Constant 300 ]));
  check (float 1e-9) "fanout multiplies" 400.0
    (Shape.mean_service (Shape.Fanout { width = 4; stage = Dist.Constant 100 }));
  (* mix weights normalize: 0.5/2 each -> (100 + 400) / 2 *)
  check (float 1e-9) "mix weighted" 250.0
    (Shape.mean_service
       (Shape.Mix
          [
            (1.0, Shape.Single (Dist.Constant 100));
            (1.0, Shape.Fanout { width = 4; stage = Dist.Constant 100 });
          ]))

let test_shape_stages () =
  check int "single" 1 (Shape.stages (Shape.Single (Dist.Constant 1)));
  check int "chain" 3
    (Shape.stages (Shape.Chain [ Dist.Constant 1; Dist.Constant 1; Dist.Constant 1 ]));
  check int "fanout" 4
    (Shape.stages (Shape.Fanout { width = 4; stage = Dist.Constant 1 }));
  check int "mix takes the max" 4
    (Shape.stages
       (Shape.Mix
          [
            (1.0, Shape.Single (Dist.Constant 1));
            (1.0, Shape.Fanout { width = 4; stage = Dist.Constant 1 });
          ]))

(* ---- Scenario validation ----------------------------------------------- *)

let lc name = Scenario.lc ~name ~shape:(Shape.Single (Dist.Constant 1_000))
    ~arrival:(Arrival.Poisson { rate_rps = 1_000.0 })

let test_scenario_validate () =
  check bool "no LC tenant" true
    (invalid (fun () ->
         Scenario.validate
           (Scenario.make ~name:"x" ~cores:2 [ Scenario.be ~name:"b" () ])));
  check bool "two BE tenants" true
    (invalid (fun () ->
         Scenario.validate
           (Scenario.make ~name:"x" ~cores:2
              [ lc "a"; Scenario.be ~name:"b" (); Scenario.be ~name:"c" () ])));
  check bool "duplicate names" true
    (invalid (fun () ->
         Scenario.validate (Scenario.make ~name:"x" ~cores:2 [ lc "a"; lc "a" ])));
  check bool "guaranteed beyond cores" true
    (invalid (fun () ->
         Scenario.validate
           (Scenario.make ~name:"x" ~cores:2
              [ lc "a"; Scenario.be ~name:"b" ~guaranteed:3 () ])));
  check bool "burstable below guaranteed" true
    (invalid (fun () ->
         Scenario.validate
           (Scenario.make ~name:"x" ~cores:4
              [ lc "a"; Scenario.be ~name:"b" ~guaranteed:2 ~burstable:1 () ])));
  Scenario.validate
    (Scenario.make ~name:"ok" ~cores:4
       [ lc "a"; lc "b"; Scenario.be ~name:"c" ~guaranteed:1 ~burstable:3 () ])

let test_scenario_load_accounting () =
  let s =
    Scenario.make ~name:"x" ~cores:4
      [
        Scenario.lc ~name:"a" ~shape:(Shape.Single (Dist.Constant 2_000))
          ~arrival:(Arrival.Poisson { rate_rps = 100_000.0 });
        Scenario.lc ~name:"b"
          ~shape:(Shape.Fanout { width = 2; stage = Dist.Constant 1_000 })
          ~arrival:(Arrival.Poisson { rate_rps = 50_000.0 });
      ]
  in
  check (float 1e-9) "aggregate rate" 150_000.0 (Scenario.mean_rate_rps s);
  (* demand: 1e5*2us + 5e4*2us = 0.3 core-seconds/s over 4 cores *)
  check (float 1e-9) "offered load" 0.075 (Scenario.offered_load s)

(* ---- Compilation semantics --------------------------------------------- *)

let run_tiny ?(seed = 11) ?(requests = 300) ~cores ~shape ~runtime () =
  let s =
    Scenario.make ~name:"tiny" ~cores
      [
        Scenario.lc ~name:"t" ~shape
          ~arrival:(Arrival.Poisson { rate_rps = 2_000.0 });
      ]
  in
  Scenario.run ~seed ~requests ~runtime s

let test_chain_latency_floor () =
  (* at ~no load, a 2-stage chain's latency is at least the summed
     service; the shape compiler must thread stage 2 after stage 1 *)
  let d =
    run_tiny ~cores:4
      ~shape:(Shape.Chain [ Dist.Constant (Time.us 10); Dist.Constant (Time.us 20) ])
      ~runtime:Scenario.Percpu ()
  in
  check int "all completed" d.Scenario.submitted d.Scenario.completed;
  let h = Scenario.merged_latency d in
  check bool "chain latency >= total service" true
    (Histogram.min_value h >= Time.us 30)

let test_fanout_overlaps () =
  (* 4 x 10us in parallel on 8 idle cores: well under the 40us a serial
     chain would cost, but at least one stage's 10us *)
  let d =
    run_tiny ~cores:8
      ~shape:(Shape.Fanout { width = 4; stage = Dist.Constant (Time.us 10) })
      ~runtime:Scenario.Percpu ()
  in
  check int "all completed" d.Scenario.submitted d.Scenario.completed;
  let h = Scenario.merged_latency d in
  check bool "fanout waits for the slowest stage" true
    (Histogram.min_value h >= Time.us 10);
  check bool
    (Printf.sprintf "fanout overlaps (p50 %d ns < serialized 40us)"
       (Histogram.percentile h 50.0))
    true
    (Histogram.percentile h 50.0 < Time.us 40)

let test_submitted_close_to_target () =
  (* the stop rule may overshoot by at most one in-flight arrival per LC
     tenant *)
  let s =
    Scenario.make ~name:"multi" ~cores:4
      [
        lc "a"; lc "b"; lc "c";
        Scenario.be ~name:"d" ~guaranteed:1 ();
      ]
  in
  let d = Scenario.run ~seed:3 ~requests:500 ~runtime:Scenario.Centralized s in
  check bool "reached the target" true (d.Scenario.submitted >= 500);
  check bool "bounded overshoot" true (d.Scenario.submitted <= 500 + 3);
  check int "drained" d.Scenario.submitted d.Scenario.completed;
  check int "one digest per LC tenant" 3 (List.length d.Scenario.tenants);
  (* per-tenant counts sum to the cell totals *)
  check int "tenant submissions sum" d.Scenario.submitted
    (List.fold_left
       (fun acc (t : Scenario.tenant_digest) -> acc + t.submitted)
       0 d.Scenario.tenants)

let test_digest_deterministic () =
  List.iter
    (fun runtime ->
      let run seed =
        Scenario.digest_string
          (run_tiny ~seed ~cores:2 ~shape:(Shape.Single Dist.pareto_heavy)
             ~runtime ())
      in
      check string
        (Scenario.runtime_name runtime ^ ": same seed, same digest")
        (run 21) (run 21);
      check bool
        (Scenario.runtime_name runtime ^ ": different seed, different digest")
        true (run 21 <> run 22))
    Scenario.runtimes

let test_be_tenant_scheduled () =
  (* with a guaranteed core the BE tenant must actually run (grants
     recorded) without stopping LC completion *)
  let s =
    Scenario.make ~name:"colo" ~cores:4
      [
        Scenario.lc ~name:"lc" ~shape:(Shape.Single (Dist.Exponential { mean = Time.us 2 }))
          ~arrival:(Arrival.Poisson { rate_rps = 100_000.0 });
        Scenario.be ~name:"be" ~guaranteed:1 ~burstable:3 ();
      ]
  in
  let d = Scenario.run ~seed:9 ~requests:2_000 ~runtime:Scenario.Percpu s in
  check int "all LC completed" d.Scenario.submitted d.Scenario.completed;
  check bool "allocator granted cores to BE" true (d.Scenario.alloc_grants > 0)

(* ---- Bounded memory ---------------------------------------------------- *)

(* The scale contract: live heap is O(tenants + in-flight), independent of
   the request count.  Run the same cheap cell at 1M and 10M requests and
   compare major-heap live words after a full collection — growth beyond
   noise means per-request state is accumulating somewhere. *)
let test_bounded_memory () =
  let cell requests =
    let s =
      Scenario.make ~name:"mem" ~cores:2
        [
          Scenario.lc ~name:"t"
            ~shape:(Shape.Single (Dist.Exponential { mean = Time.us 1 }))
            ~arrival:(Arrival.Poisson { rate_rps = 1_000_000.0 });
        ]
    in
    let d = Scenario.run ~seed:13 ~requests ~runtime:Scenario.Percpu s in
    check int "all completed" d.Scenario.submitted d.Scenario.completed;
    check bool "hit the request target" true (d.Scenario.submitted >= requests);
    Gc.compact ();
    (Gc.stat ()).Gc.live_words
  in
  let live_1m = cell 1_000_000 in
  let live_10m = cell 10_000_000 in
  let ratio = float_of_int live_10m /. float_of_int live_1m in
  check bool
    (Printf.sprintf "live words flat: 1M -> %d, 10M -> %d (ratio %.3f)" live_1m
       live_10m ratio)
    true (ratio < 1.1)

let suite =
  [
    test_case "arrival: validation" `Quick test_arrival_validate;
    test_case "arrival: exact mean rates" `Quick test_arrival_mean_rate;
    test_case "arrival: empirical rates" `Slow test_arrival_empirical_rates;
    test_case "arrival: sampler deterministic" `Quick
      test_arrival_sampler_deterministic;
    test_case "arrival: rotate" `Quick test_arrival_rotate;
    test_case "shape: validation" `Quick test_shape_validate;
    test_case "shape: exact mean service" `Quick test_shape_mean_service;
    test_case "shape: stages" `Quick test_shape_stages;
    test_case "scenario: validation" `Quick test_scenario_validate;
    test_case "scenario: load accounting" `Quick test_scenario_load_accounting;
    test_case "scenario: chain latency floor" `Quick test_chain_latency_floor;
    test_case "scenario: fanout overlaps" `Quick test_fanout_overlaps;
    test_case "scenario: submitted ~ target" `Quick test_submitted_close_to_target;
    test_case "scenario: digest deterministic" `Slow test_digest_deterministic;
    test_case "scenario: BE tenant scheduled" `Quick test_be_tenant_scheduled;
    test_case "scenario: bounded memory at 10M requests" `Slow
      test_bounded_memory;
  ]
