(* Tests for the scheduling tracer and its runtime integration. *)

module Time = Skyloft_sim.Time
module Engine = Skyloft_sim.Engine
module Coro = Skyloft_sim.Coro
module Topology = Skyloft_hw.Topology
module Machine = Skyloft_hw.Machine
module Kmod = Skyloft_kernel.Kmod
module Trace = Skyloft_stats.Trace
module Percpu = Skyloft.Percpu

let check = Alcotest.check

let test_trace_basic () =
  let trace = Trace.create () in
  Trace.span trace ~core:0 ~app:1 ~name:"task" ~start:100 ~stop:200;
  Trace.instant trace ~core:0 ~at:150 Trace.Preempt ~name:"task";
  check Alcotest.int "two events" 2 (Trace.events trace);
  check Alcotest.int "no drops" 0 (Trace.dropped trace)

let test_trace_ring_bounded () =
  let trace = Trace.create ~capacity:10 () in
  for i = 0 to 24 do
    Trace.instant trace ~core:0 ~at:i Trace.Wakeup ~name:"x"
  done;
  check Alcotest.int "retains capacity" 10 (Trace.events trace);
  check Alcotest.int "drops counted" 15 (Trace.dropped trace)

let test_trace_invalid_span () =
  let trace = Trace.create () in
  check Alcotest.bool "stop before start raises" true
    (try
       Trace.span trace ~core:0 ~app:0 ~name:"x" ~start:10 ~stop:5;
       false
     with Invalid_argument _ -> true)

let test_trace_chrome_json_shape () =
  let trace = Trace.create () in
  Trace.span trace ~core:2 ~app:7 ~name:"he\"llo" ~start:1_000 ~stop:3_500;
  Trace.instant trace ~core:1 ~at:2_000 Trace.App_switch ~name:"b";
  let json = Trace.to_chrome_json trace in
  check Alcotest.bool "array" true
    (String.length json > 2 && json.[0] = '[' && json.[String.length json - 1] = ']');
  check Alcotest.bool "span present with dur" true
    (let re = Str.regexp_string {|"ph":"X","ts":1.000,"dur":2.500,"pid":7,"tid":2|} in
     try
       ignore (Str.search_forward re json 0);
       true
     with Not_found -> false);
  check Alcotest.bool "quote escaped" true
    (let re = Str.regexp_string {|he\"llo|} in
     try
       ignore (Str.search_forward re json 0);
       true
     with Not_found -> false)

let test_trace_runtime_integration () =
  let engine = Engine.create () in
  let machine = Machine.create engine (Topology.create ~sockets:1 ~cores_per_socket:4) in
  let kmod = Kmod.create machine in
  let rt =
    Percpu.create machine kmod ~cores:[ 0 ]
      (Skyloft_policies.Rr.create ~slice:(Time.us 20) ())
  in
  let trace = Trace.create () in
  Percpu.set_trace rt trace;
  let app = Percpu.create_app rt ~name:"a" in
  ignore (Percpu.spawn rt app ~name:"long" (Coro.compute_then_exit (Time.us 200)));
  ignore (Percpu.spawn rt app ~name:"other" (Coro.compute_then_exit (Time.us 200)));
  Engine.run ~until:(Time.ms 2) engine;
  (* two interleaved tasks: several run spans and preempt instants *)
  check Alcotest.bool "events recorded" true (Trace.events trace > 5);
  let json = Trace.to_chrome_json trace in
  check Alcotest.bool "preempt instants present" true
    (try
       ignore (Str.search_forward (Str.regexp_string {|"name":"preempt:|}) json 0);
       true
     with Not_found -> false);
  check Alcotest.bool "run spans present" true
    (try
       ignore (Str.search_forward (Str.regexp_string {|"name":"long"|}) json 0);
       true
     with Not_found -> false)

let test_trace_clear () =
  let trace = Trace.create ~capacity:4 () in
  for i = 0 to 9 do
    Trace.instant trace ~core:0 ~at:i Trace.Wakeup ~name:"x"
  done;
  check Alcotest.int "ring full" 4 (Trace.events trace);
  check Alcotest.int "drops accumulated" 6 (Trace.dropped trace);
  Trace.clear trace;
  check Alcotest.int "no events after clear" 0 (Trace.events trace);
  check Alcotest.int "drop counter reset" 0 (Trace.dropped trace);
  Trace.instant trace ~core:0 ~at:100 Trace.Wakeup ~name:"y";
  check Alcotest.int "reusable after clear" 1 (Trace.events trace)

let test_trace_dropped_metadata () =
  let trace = Trace.create ~capacity:4 () in
  for i = 0 to 9 do
    Trace.instant trace ~core:0 ~at:i Trace.Wakeup ~name:"x"
  done;
  let json = Trace.to_chrome_json trace in
  check Alcotest.bool "metadata trailer records the drop count" true
    (try
       ignore
         (Str.search_forward
            (Str.regexp_string
               {|"name":"skyloft_dropped","ph":"M","pid":0,"tid":0,"args":{"dropped":6,"retained":4}|})
            json 0);
       true
     with Not_found -> false)

let test_trace_write_file () =
  let trace = Trace.create () in
  Trace.span trace ~core:0 ~app:0 ~name:"t" ~start:0 ~stop:10;
  let path = Filename.temp_file "skyloft" ".json" in
  Trace.write_chrome_json trace ~path;
  let ic = open_in path in
  let content = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  check Alcotest.string "file matches" (Trace.to_chrome_json trace) content

let suite =
  [
    Alcotest.test_case "trace: basic" `Quick test_trace_basic;
    Alcotest.test_case "trace: bounded ring" `Quick test_trace_ring_bounded;
    Alcotest.test_case "trace: invalid span" `Quick test_trace_invalid_span;
    Alcotest.test_case "trace: chrome json" `Quick test_trace_chrome_json_shape;
    Alcotest.test_case "trace: runtime integration" `Quick test_trace_runtime_integration;
    Alcotest.test_case "trace: clear" `Quick test_trace_clear;
    Alcotest.test_case "trace: dropped metadata" `Quick test_trace_dropped_metadata;
    Alcotest.test_case "trace: write file" `Quick test_trace_write_file;
  ]
