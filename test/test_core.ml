(* Tests for the Skyloft core: tasks, runqueues, the per-CPU runtime
   (timer delegation, preemption, multi-app switching) and the centralized
   runtime (dispatcher, quantum preemption, BE co-scheduling). *)

module Time = Skyloft_sim.Time
module Engine = Skyloft_sim.Engine
module Coro = Skyloft_sim.Coro
module Topology = Skyloft_hw.Topology
module Machine = Skyloft_hw.Machine
module Costs = Skyloft_hw.Costs
module Kmod = Skyloft_kernel.Kmod
module Histogram = Skyloft_stats.Histogram
module Summary = Skyloft_stats.Summary
module Task = Skyloft.Task
module Runqueue = Skyloft.Runqueue
module Sched_ops = Skyloft.Sched_ops
module App = Skyloft.App
module Percpu = Skyloft.Percpu
module Centralized = Skyloft.Centralized

let check = Alcotest.check

(* ---- Runqueue ---- *)

(* Task ids are allocated per run by Runtime_core; tests mint their own. *)
let next_id = ref 0

let mk_task name =
  incr next_id;
  Task.create ~id:!next_id ~app:1 ~name Coro.Exit

let test_runqueue_fifo () =
  let q = Runqueue.create () in
  let a = mk_task "a" and b = mk_task "b" and c = mk_task "c" in
  Runqueue.push_tail q a;
  Runqueue.push_tail q b;
  Runqueue.push_head q c;
  check Alcotest.int "length" 3 (Runqueue.length q);
  check (Alcotest.list Alcotest.string) "order c a b" [ "c"; "a"; "b" ]
    (List.map (fun (t : Task.t) -> t.name) (Runqueue.to_list q));
  check Alcotest.string "pop head" "c"
    (match Runqueue.pop_head q with Some t -> t.Task.name | None -> "?");
  check Alcotest.string "pop tail" "b"
    (match Runqueue.pop_tail q with Some t -> t.Task.name | None -> "?");
  check Alcotest.int "one left" 1 (Runqueue.length q)

let test_runqueue_remove () =
  let q = Runqueue.create () in
  let a = mk_task "a" and b = mk_task "b" and c = mk_task "c" in
  List.iter (Runqueue.push_tail q) [ a; b; c ];
  check Alcotest.bool "remove middle" true (Runqueue.remove q b);
  check Alcotest.bool "remove again is false" false (Runqueue.remove q b);
  check (Alcotest.list Alcotest.string) "a c left" [ "a"; "c" ]
    (List.map (fun (t : Task.t) -> t.name) (Runqueue.to_list q))

let test_runqueue_double_insert_rejected () =
  let q = Runqueue.create () in
  let a = mk_task "a" in
  Runqueue.push_tail q a;
  check Alcotest.bool "double insert raises" true
    (try
       Runqueue.push_tail q a;
       false
     with Invalid_argument _ -> true)

let rq_names q = List.map (fun (t : Task.t) -> t.name) (Runqueue.to_list q)

let test_runqueue_pop_tail_drain () =
  let q = Runqueue.create () in
  List.iter (fun n -> Runqueue.push_tail q (mk_task n)) [ "a"; "b"; "c" ];
  let pop () =
    match Runqueue.pop_tail q with Some t -> t.Task.name | None -> "-"
  in
  let p1 = pop () in
  let p2 = pop () in
  let p3 = pop () in
  let p4 = pop () in
  check (Alcotest.list Alcotest.string) "tail-first drain then empty"
    [ "c"; "b"; "a"; "-" ] [ p1; p2; p3; p4 ];
  check Alcotest.bool "empty after drain" true (Runqueue.is_empty q)

let test_runqueue_remove_ends () =
  let q = Runqueue.create () in
  let a = mk_task "a" and b = mk_task "b" and c = mk_task "c" in
  List.iter (Runqueue.push_tail q) [ a; b; c ];
  check Alcotest.bool "remove head" true (Runqueue.remove q a);
  check (Alcotest.list Alcotest.string) "b c left" [ "b"; "c" ] (rq_names q);
  check Alcotest.bool "remove tail" true (Runqueue.remove q c);
  check (Alcotest.list Alcotest.string) "b left" [ "b" ] (rq_names q);
  check Alcotest.bool "remove last" true (Runqueue.remove q b);
  check Alcotest.bool "empty" true (Runqueue.is_empty q);
  check Alcotest.bool "remove from empty is false" false (Runqueue.remove q b)

let test_runqueue_repush_after_remove () =
  let q = Runqueue.create () in
  let a = mk_task "a" and b = mk_task "b" in
  List.iter (Runqueue.push_tail q) [ a; b ];
  check Alcotest.bool "remove a" true (Runqueue.remove q a);
  (* a removed task is fully unlinked: re-pushing must not raise and must
     land at the requested end *)
  Runqueue.push_tail q a;
  check (Alcotest.list Alcotest.string) "b a after re-push" [ "b"; "a" ]
    (rq_names q);
  check Alcotest.bool "remove b" true (Runqueue.remove q b);
  Runqueue.push_head q b;
  check (Alcotest.list Alcotest.string) "b a after head re-push" [ "b"; "a" ]
    (rq_names q)

let test_runqueue_steal_half () =
  let victim = Runqueue.create () and thief = Runqueue.create () in
  (* owner-head LIFO: push_head in arrival order, so the tail is oldest *)
  List.iter (fun n -> Runqueue.push_head victim (mk_task n)) [ "t1"; "t2"; "t3"; "t4"; "t5" ];
  let moved = Runqueue.steal_half ~from:victim ~into:thief in
  check Alcotest.int "ceil(5/2) moved" 3 moved;
  check (Alcotest.list Alcotest.string) "victim keeps the newest"
    [ "t5"; "t4" ] (rq_names victim);
  check (Alcotest.list Alcotest.string) "thief got the oldest, oldest-first"
    [ "t1"; "t2"; "t3" ] (rq_names thief);
  (* a single queued task is stealable (rounding up) *)
  let v1 = Runqueue.create () and th1 = Runqueue.create () in
  Runqueue.push_head v1 (mk_task "solo");
  check Alcotest.int "1 of 1 moved" 1 (Runqueue.steal_half ~from:v1 ~into:th1);
  check Alcotest.bool "victim empty" true (Runqueue.is_empty v1);
  check Alcotest.int "nothing to steal from empty" 0
    (Runqueue.steal_half ~from:v1 ~into:th1)

(* Model test: steal-half against a plain-list reference.  The victim is
   an owner-head LIFO deque holding tasks 1..n (n from the generator); the
   reference splits the arrival-ordered list — the thief must get the
   oldest ceil(n/2) in arrival order, the victim must keep the newest
   floor(n/2) in LIFO order. *)
let prop_runqueue_steal_half_model =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"steal-half matches the list model" ~count:100
       QCheck.(int_bound 40)
       (fun n ->
         let victim = Runqueue.create () and thief = Runqueue.create () in
         let arrival = List.init n (fun i -> Printf.sprintf "m%d" i) in
         List.iter (fun name -> Runqueue.push_head victim (mk_task name)) arrival;
         let moved = Runqueue.steal_half ~from:victim ~into:thief in
         let want = (n + 1) / 2 in
         let expect_thief = List.filteri (fun i _ -> i < want) arrival in
         let expect_victim =
           List.rev (List.filteri (fun i _ -> i >= want) arrival)
         in
         moved = want
         && rq_names thief = expect_thief
         && rq_names victim = expect_victim
         && Runqueue.length victim + Runqueue.length thief = n))

let prop_runqueue_fifo_order =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"runqueue preserves FIFO order" ~count:100
       QCheck.(small_list small_int)
       (fun xs ->
         let q = Runqueue.create () in
         let tasks = List.map (fun x -> (x, mk_task (string_of_int x))) xs in
         List.iter (fun (_, t) -> Runqueue.push_tail q t) tasks;
         let rec drain acc =
           match Runqueue.pop_head q with
           | Some t -> drain (t.Task.name :: acc)
           | None -> List.rev acc
         in
         drain [] = List.map (fun (_, t) -> t.Task.name) tasks))

(* ---- a trivial FIFO policy for runtime tests ---- *)

let fifo_ctor : Sched_ops.ctor =
 fun view ->
  let q = Runqueue.create () in
  {
    Sched_ops.policy_name = "test-fifo";
    task_init = ignore;
    task_terminate = ignore;
    task_enqueue = (fun ~cpu:_ ~reason:_ task -> Runqueue.push_tail q task);
    task_dequeue = (fun ~cpu:_ -> Runqueue.pop_head q);
    task_block = (fun ~cpu:_ _ -> ());
    task_wakeup =
      (fun ~waker_cpu task ->
        Runqueue.push_tail q task;
        Sched_ops.wakeup_to_idle_or view ~fallback:waker_cpu);
    sched_timer_tick = (fun ~cpu:_ _ -> false);
    sched_balance = Sched_ops.no_balance;
  }

(* RR policy with a given slice, local queue per core *)
let rr_ctor slice : Sched_ops.ctor =
 fun view ->
  let q = Runqueue.create () in
  {
    Sched_ops.policy_name = "test-rr";
    task_init = ignore;
    task_terminate = ignore;
    task_enqueue = (fun ~cpu:_ ~reason:_ task -> Runqueue.push_tail q task);
    task_dequeue = (fun ~cpu:_ -> Runqueue.pop_head q);
    task_block = (fun ~cpu:_ _ -> ());
    task_wakeup =
      (fun ~waker_cpu task ->
        Runqueue.push_tail q task;
        Sched_ops.wakeup_to_idle_or view ~fallback:waker_cpu);
    sched_timer_tick =
      (fun ~cpu:_ task ->
        (not (Runqueue.is_empty q)) && view.now () - task.Task.run_start >= slice);
    sched_balance = Sched_ops.no_balance;
  }

let make_percpu ?(cores = 4) ?(timer_hz = 100_000) ?(preemption = true) ctor =
  let engine = Engine.create () in
  let machine = Machine.create engine (Topology.create ~sockets:1 ~cores_per_socket:8) in
  let kmod = Kmod.create machine in
  let rt = Percpu.create machine kmod ~cores:(List.init cores Fun.id) ~timer_hz ~preemption ctor in
  (engine, machine, rt)

(* ---- Percpu runtime ---- *)

let test_percpu_runs_task () =
  let engine, _, rt = make_percpu fifo_ctor in
  let app = Percpu.create_app rt ~name:"app" in
  let done_at = ref 0 in
  ignore
    (Percpu.spawn rt app ~name:"t" ~service:(Time.us 100)
       (Coro.Compute (Time.us 100, fun () -> done_at := Engine.now engine; Coro.Exit)));
  Engine.run ~until:(Time.ms 1) engine;
  check Alcotest.bool "ran" true (!done_at > 0);
  check Alcotest.int "completed count" 1 app.App.completed;
  check Alcotest.int "recorded" 1 (Summary.requests app.App.summary)

let test_percpu_parallelism () =
  let engine, _, rt = make_percpu ~cores:4 fifo_ctor in
  let app = Percpu.create_app rt ~name:"app" in
  let last = ref 0 in
  for _ = 1 to 4 do
    ignore
      (Percpu.spawn rt app ~name:"t"
         (Coro.Compute (Time.ms 1, fun () -> last := Engine.now engine; Coro.Exit)))
  done;
  Engine.run ~until:(Time.ms 10) engine;
  check Alcotest.bool "4 tasks on 4 cores in ~1ms" true (!last < Time.ms 2);
  check Alcotest.int "all done" 4 app.App.completed

let test_percpu_timer_ticks_happen () =
  let engine, _, rt = make_percpu ~cores:1 ~timer_hz:10_000 fifo_ctor in
  let app = Percpu.create_app rt ~name:"app" in
  ignore (Percpu.spawn rt app ~name:"hog" (Coro.compute_then_exit (Time.ms 5)));
  Engine.run ~until:(Time.ms 5) engine;
  (* 10kHz for 5ms on a busy core: ~50 ticks *)
  check Alcotest.bool "ticks counted" true (Percpu.timer_ticks rt >= 40)

let test_percpu_no_preemption_mode () =
  let engine, _, rt = make_percpu ~cores:1 ~preemption:false fifo_ctor in
  let app = Percpu.create_app rt ~name:"app" in
  ignore (Percpu.spawn rt app ~name:"hog" (Coro.compute_then_exit (Time.ms 5)));
  Engine.run ~until:(Time.ms 6) engine;
  check Alcotest.int "no ticks" 0 (Percpu.timer_ticks rt);
  check Alcotest.int "still completes" 1 app.App.completed

let test_percpu_rr_preemption () =
  (* One core, RR 50us slices: a long task and a short task interleave; the
     short one finishes long before the long one. *)
  let engine, _, rt = make_percpu ~cores:1 (rr_ctor (Time.us 50)) in
  let app = Percpu.create_app rt ~name:"app" in
  let long_done = ref 0 and short_done = ref 0 in
  ignore
    (Percpu.spawn rt app ~name:"long"
       (Coro.Compute (Time.ms 2, fun () -> long_done := Engine.now engine; Coro.Exit)));
  ignore
    (Percpu.spawn rt app ~name:"short"
       (Coro.Compute (Time.us 100, fun () -> short_done := Engine.now engine; Coro.Exit)));
  Engine.run ~until:(Time.ms 5) engine;
  check Alcotest.bool "short escapes head-of-line blocking" true
    (!short_done > 0 && !short_done < Time.us 400);
  check Alcotest.bool "long still finishes" true (!long_done > Time.ms 2);
  check Alcotest.bool "preemptions happened" true (Percpu.preemptions rt > 0)

let test_percpu_fifo_hol_blocking () =
  (* Same workload without preemption: the short task waits for the long. *)
  let engine, _, rt = make_percpu ~cores:1 ~preemption:false fifo_ctor in
  let app = Percpu.create_app rt ~name:"app" in
  let short_done = ref 0 in
  ignore (Percpu.spawn rt app ~name:"long" (Coro.compute_then_exit (Time.ms 2)));
  ignore
    (Percpu.spawn rt app ~name:"short"
       (Coro.Compute (Time.us 100, fun () -> short_done := Engine.now engine; Coro.Exit)));
  Engine.run ~until:(Time.ms 5) engine;
  check Alcotest.bool "short suffered HoL blocking" true (!short_done > Time.ms 2)

let test_percpu_block_wakeup_latency () =
  let engine, _, rt = make_percpu ~cores:2 fifo_ctor in
  let app = Percpu.create_app rt ~name:"app" in
  let woke = ref false in
  let sleeper =
    Percpu.spawn rt app ~name:"sleeper" (Coro.Block (fun () -> woke := true; Coro.Exit))
  in
  ignore (Engine.at engine (Time.us 100) (fun () -> Percpu.wakeup rt sleeper));
  Engine.run ~until:(Time.ms 1) engine;
  check Alcotest.bool "woken" true !woke;
  let h = Percpu.wakeup_hist rt in
  check Alcotest.int "one sample" 1 (Histogram.count h);
  (* user-space wakeup on an idle core: sub-microsecond *)
  check Alcotest.bool "sub-us wakeup" true (Histogram.max_value h < Time.us 1)

let test_percpu_multi_app_switching () =
  (* Two applications sharing one core: switching between their tasks must
     go through the kernel module and be counted. *)
  let engine, _, rt = make_percpu ~cores:1 (rr_ctor (Time.us 20)) in
  let app1 = Percpu.create_app rt ~name:"lc" in
  let app2 = Percpu.create_app rt ~name:"be" in
  ignore (Percpu.spawn rt app1 ~name:"a" (Coro.compute_then_exit (Time.us 200)));
  ignore (Percpu.spawn rt app2 ~name:"b" (Coro.compute_then_exit (Time.us 200)));
  Engine.run ~until:(Time.ms 2) engine;
  check Alcotest.int "both done" 2 (app1.App.completed + app2.App.completed);
  check Alcotest.bool "app switches happened" true (Percpu.app_switches rt >= 2);
  check Alcotest.bool "both apps got CPU" true
    (app1.App.busy_ns > 0 && app2.App.busy_ns > 0)

let test_percpu_app_switch_costs_more () =
  (* The same interleaving within one app vs across apps: cross-app must
     take longer in total (1905ns vs 37ns per switch). *)
  let run two_apps =
    let engine, _, rt = make_percpu ~cores:1 (rr_ctor (Time.us 10)) in
    let app1 = Percpu.create_app rt ~name:"a1" in
    let app2 = if two_apps then Percpu.create_app rt ~name:"a2" else app1 in
    let finished = ref 0 in
    let spawn app name =
      ignore
        (Percpu.spawn rt app ~name
           (Coro.Compute (Time.us 300, fun () -> finished := Engine.now engine; Coro.Exit)))
    in
    spawn app1 "x";
    spawn app2 "y";
    Engine.run ~until:(Time.ms 5) engine;
    !finished
  in
  let same = run false and cross = run true in
  check Alcotest.bool "cross-app interleaving is slower" true (cross > same + Time.us 20)

let test_percpu_uipi_preemption () =
  (* Dispatcher-style preemption: send a user IPI to a busy core; its
     handler asks the policy, which preempts at quantum expiry. *)
  let engine, _, rt = make_percpu ~cores:2 ~preemption:false (rr_ctor (Time.us 10)) in
  let app = Percpu.create_app rt ~name:"app" in
  ignore (Percpu.spawn rt app ~name:"long" ~cpu:0 (Coro.compute_then_exit (Time.ms 1)));
  ignore (Percpu.spawn rt app ~name:"waiting" ~cpu:0 (Coro.compute_then_exit (Time.us 10)));
  (* preemption disabled -> no timer; send an explicit user IPI at 100us *)
  ignore
    (Engine.at engine (Time.us 100) (fun () ->
         Percpu.preempt_core rt ~src_core:1 ~dst_core:0));
  Engine.run ~until:(Time.ms 3) engine;
  check Alcotest.bool "IPI preempted the long task" true (Percpu.preemptions rt >= 1)

let test_percpu_requires_cores () =
  let engine = Engine.create () in
  let machine = Machine.create engine (Topology.create ~sockets:1 ~cores_per_socket:2) in
  let kmod = Kmod.create machine in
  check Alcotest.bool "no cores rejected" true
    (try
       ignore (Percpu.create machine kmod ~cores:[] fifo_ctor);
       false
     with Invalid_argument _ -> true)

let test_percpu_be_colocation () =
  (* BE soaks idle cores via the allocator; LC load evicts it. *)
  let engine, _, rt = make_percpu ~cores:2 fifo_ctor in
  let lc = Percpu.create_app rt ~name:"lc" in
  let be = Percpu.create_app rt ~name:"batch" in
  Percpu.attach_be_app rt be ~chunk:(Time.us 20) ~workers:2;
  (* idle phase: BE owns both cores *)
  Engine.run ~until:(Time.ms 2) engine;
  let idle_be = be.App.busy_ns in
  check Alcotest.bool "BE soaks idle cores" true
    (float_of_int idle_be /. float_of_int (2 * Time.ms 2) > 0.9);
  (* loaded phase: 15us of LC work every 10us (75% of 2 cores) *)
  let done_ = ref 0 in
  for i = 0 to 999 do
    ignore
      (Engine.at engine (Time.ms 2 + (i * Time.us 10)) (fun () ->
           ignore
             (Percpu.spawn rt lc ~name:"req" ~service:(Time.us 15)
                (Coro.Compute (Time.us 15, fun () -> incr done_; Coro.Exit)))))
  done;
  Engine.run ~until:(Time.ms 16) engine;
  check Alcotest.int "all LC served despite BE" 1000 !done_;
  check Alcotest.bool "BE preempted for LC" true (Percpu.be_preemptions rt > 0);
  match Percpu.allocator rt with
  | None -> Alcotest.fail "allocator not started by attach_be_app"
  | Some alloc ->
      check Alcotest.bool "allocator moved cores" true
        (Skyloft_alloc.Allocator.reclaims alloc > 0
        || Skyloft_alloc.Allocator.yields alloc > 0);
      check Alcotest.bool "switch costs charged" true
        (Skyloft_alloc.Allocator.charged_ns alloc > 0)

let test_percpu_be_guaranteed_cores () =
  (* A guaranteed BE core survives saturating LC load. *)
  let engine, _, rt = make_percpu ~cores:2 fifo_ctor in
  let lc = Percpu.create_app rt ~name:"lc" in
  let be = Percpu.create_app rt ~name:"batch" in
  let alloc_cfg =
    { (Skyloft_alloc.Allocator.default_config ()) with
      Skyloft_alloc.Allocator.be_guaranteed = 1 }
  in
  Percpu.attach_be_app rt ~alloc:alloc_cfg be ~chunk:(Time.us 20) ~workers:2;
  (* oversubscribe: 30us of LC work every 10us *)
  for i = 0 to 999 do
    ignore
      (Engine.at engine (i * Time.us 10) (fun () ->
           ignore
             (Percpu.spawn rt lc ~name:"req" ~service:(Time.us 30)
                (Coro.compute_then_exit (Time.us 30)))))
  done;
  Engine.run ~until:(Time.ms 10) engine;
  let total = 2 * Time.ms 10 in
  let be_share = App.cpu_share be ~total_ns:total in
  (* one of two cores guaranteed -> BE keeps ~half the machine *)
  check Alcotest.bool "guaranteed core kept under saturation" true (be_share > 0.4);
  match Percpu.allocator rt with
  | None -> Alcotest.fail "allocator missing"
  | Some alloc ->
      check Alcotest.int "grant never below guarantee" 1
        (Skyloft_alloc.Allocator.granted alloc ~app:be.App.id)

(* ---- Centralized runtime ---- *)

let make_centralized ?(workers = 4) ?(quantum = Time.us 30) ?mechanism ?alloc
    ?immediate () =
  let engine = Engine.create () in
  let machine = Machine.create engine (Topology.create ~sockets:1 ~cores_per_socket:8) in
  let kmod = Kmod.create machine in
  let rt =
    Centralized.create machine kmod ~dispatcher_core:0
      ~worker_cores:(List.init workers (fun i -> i + 1))
      ~quantum ?mechanism ?alloc ?immediate
      (fun view ->
        ignore view;
        fifo_ctor view)
  in
  (engine, machine, rt)

let test_centralized_basic () =
  let engine, _, rt = make_centralized () in
  let app = Centralized.create_app rt ~name:"lc" in
  let done_ = ref 0 in
  for _ = 1 to 8 do
    ignore
      (Centralized.submit rt app ~name:"req" ~service:(Time.us 10)
         (Coro.Compute (Time.us 10, fun () -> incr done_; Coro.Exit)))
  done;
  Engine.run ~until:(Time.ms 1) engine;
  check Alcotest.int "all requests served" 8 !done_;
  check Alcotest.int "dispatches counted" 8 (Centralized.dispatches rt)

let test_centralized_quantum_preemption () =
  (* 1 worker: a 1ms request then a 10us request.  With a 30us quantum the
     short request must NOT wait the full 1ms. *)
  let engine, _, rt = make_centralized ~workers:1 ~quantum:(Time.us 30) () in
  let app = Centralized.create_app rt ~name:"lc" in
  let short_done = ref 0 in
  ignore
    (Centralized.submit rt app ~name:"long" ~service:(Time.ms 1)
       (Coro.compute_then_exit (Time.ms 1)));
  ignore
    (Centralized.submit rt app ~name:"short" ~service:(Time.us 10)
       (Coro.Compute (Time.us 10, fun () -> short_done := Engine.now engine; Coro.Exit)));
  Engine.run ~until:(Time.ms 5) engine;
  check Alcotest.bool "preempted" true (Centralized.preemptions rt >= 1);
  check Alcotest.bool "short finished way before 1ms" true
    (!short_done > 0 && !short_done < Time.us 200)

let test_centralized_no_quantum_hol () =
  let engine, _, rt = make_centralized ~workers:1 ~quantum:0 () in
  let app = Centralized.create_app rt ~name:"lc" in
  let short_done = ref 0 in
  ignore
    (Centralized.submit rt app ~name:"long" ~service:(Time.ms 1)
       (Coro.compute_then_exit (Time.ms 1)));
  ignore
    (Centralized.submit rt app ~name:"short" ~service:(Time.us 10)
       (Coro.Compute (Time.us 10, fun () -> short_done := Engine.now engine; Coro.Exit)));
  Engine.run ~until:(Time.ms 5) engine;
  check Alcotest.int "no preemption" 0 (Centralized.preemptions rt);
  check Alcotest.bool "short suffered HoL" true (!short_done >= Time.ms 1)

let test_centralized_be_uses_idle_cores () =
  let engine, _, rt = make_centralized ~workers:2 () in
  let _lc = Centralized.create_app rt ~name:"lc" in
  let be = Centralized.create_app rt ~name:"batch" in
  Centralized.attach_be_app rt be ~chunk:(Time.us 100) ~workers:2;
  Engine.run ~until:(Time.ms 10) engine;
  (* With no LC load at all, BE gets ~100% of both workers. *)
  let share = App.cpu_share be ~total_ns:(2 * Time.ms 10) in
  check Alcotest.bool "BE share near 1.0 when idle" true (share > 0.9)

let test_centralized_be_reclaimed_under_load () =
  (* default alloc config: Static policy at a 5us interval *)
  let engine, _, rt = make_centralized ~workers:2 () in
  let lc = Centralized.create_app rt ~name:"lc" in
  let be = Centralized.create_app rt ~name:"batch" in
  Centralized.attach_be_app rt be ~chunk:(Time.us 100) ~workers:2;
  (* Heavy LC load: 15us of work every 10us = 75% of the 2 workers *)
  let rec gen i =
    if i < 2000 then
      ignore
        (Engine.at engine (i * Time.us 10) (fun () ->
             ignore
               (Centralized.submit rt lc ~name:"req" ~service:(Time.us 15)
                  (Coro.compute_then_exit (Time.us 15)));
             gen (i + 1)))
  in
  gen 0;
  (* arrivals span 20ms; leave drain time before measuring *)
  Engine.run ~until:(Time.ms 25) engine;
  let lc_share = App.cpu_share lc ~total_ns:(2 * Time.ms 25) in
  let be_share = App.cpu_share be ~total_ns:(2 * Time.ms 25) in
  check Alcotest.bool "BE cores reclaimed" true (Centralized.be_preemptions rt > 0);
  (* LC demands 2000 x 15us over 50ms of core time = 0.6; it must get all
     of it, and BE must soak most of the leftover without starving LC. *)
  check Alcotest.bool "LC gets its full demand" true (lc_share >= 0.58);
  check Alcotest.bool "BE soaks idle capacity" true
    (be_share > 0.15 && lc_share > be_share);
  check Alcotest.int "all LC served" 2000 lc.App.completed;
  match Centralized.allocator rt with
  | None -> Alcotest.fail "allocator not started by attach_be_app"
  | Some alloc ->
      check Alcotest.bool "allocator reclaimed cores" true
        (Skyloft_alloc.Allocator.reclaims alloc > 0);
      (* every core moved was charged the §5.4 inter-app switch cost *)
      let moves =
        Skyloft_alloc.Allocator.grants alloc + Skyloft_alloc.Allocator.reclaims alloc
        + Skyloft_alloc.Allocator.yields alloc
      in
      check Alcotest.bool "switch costs charged for moves" true
        (moves > 0
        && Skyloft_alloc.Allocator.charged_ns alloc
           >= Skyloft_hw.Costs.app_switch_ns)

let test_centralized_dispatcher_serializes () =
  (* With an expensive dispatcher (ghOSt-like), throughput is capped by
     dispatch cost: 100 requests x 2us dispatch >= 200us of dispatcher
     time even though 4 workers could run the 1us requests faster. *)
  let mech = { Centralized.ghost_mechanism with dispatch_cost = Time.us 2 } in
  let engine, _, rt = make_centralized ~workers:4 ~mechanism:mech () in
  let app = Centralized.create_app rt ~name:"lc" in
  let last_done = ref 0 in
  for _ = 1 to 100 do
    ignore
      (Centralized.submit rt app ~name:"req" ~service:1_000
         (Coro.Compute (1_000, fun () -> last_done := Engine.now engine; Coro.Exit)))
  done;
  Engine.run ~until:(Time.ms 5) engine;
  check Alcotest.bool "dispatcher-bound completion time" true (!last_done >= Time.us 200)

let test_centralized_invalid_config () =
  let engine = Engine.create () in
  let machine = Machine.create engine (Topology.create ~sockets:1 ~cores_per_socket:4) in
  let kmod = Kmod.create machine in
  check Alcotest.bool "dispatcher in worker set rejected" true
    (try
       ignore
         (Centralized.create machine kmod ~dispatcher_core:1 ~worker_cores:[ 1; 2 ]
            ~quantum:0 fifo_ctor);
       false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "runqueue: fifo + deque" `Quick test_runqueue_fifo;
    Alcotest.test_case "runqueue: remove" `Quick test_runqueue_remove;
    Alcotest.test_case "runqueue: double insert" `Quick test_runqueue_double_insert_rejected;
    Alcotest.test_case "runqueue: pop_tail drains" `Quick test_runqueue_pop_tail_drain;
    Alcotest.test_case "runqueue: remove head/tail/last" `Quick test_runqueue_remove_ends;
    Alcotest.test_case "runqueue: re-push after remove" `Quick
      test_runqueue_repush_after_remove;
    Alcotest.test_case "runqueue: steal-half" `Quick test_runqueue_steal_half;
    prop_runqueue_steal_half_model;
    prop_runqueue_fifo_order;
    Alcotest.test_case "percpu: runs a task" `Quick test_percpu_runs_task;
    Alcotest.test_case "percpu: parallelism" `Quick test_percpu_parallelism;
    Alcotest.test_case "percpu: timer ticks" `Quick test_percpu_timer_ticks_happen;
    Alcotest.test_case "percpu: no-preemption mode" `Quick test_percpu_no_preemption_mode;
    Alcotest.test_case "percpu: RR preemption beats HoL" `Quick test_percpu_rr_preemption;
    Alcotest.test_case "percpu: FIFO suffers HoL" `Quick test_percpu_fifo_hol_blocking;
    Alcotest.test_case "percpu: block/wakeup" `Quick test_percpu_block_wakeup_latency;
    Alcotest.test_case "percpu: multi-app switching" `Quick test_percpu_multi_app_switching;
    Alcotest.test_case "percpu: app switch cost" `Quick test_percpu_app_switch_costs_more;
    Alcotest.test_case "percpu: user-IPI preemption" `Quick test_percpu_uipi_preemption;
    Alcotest.test_case "percpu: needs cores" `Quick test_percpu_requires_cores;
    Alcotest.test_case "percpu: BE co-location" `Quick test_percpu_be_colocation;
    Alcotest.test_case "percpu: BE guaranteed cores" `Quick
      test_percpu_be_guaranteed_cores;
    Alcotest.test_case "centralized: basic" `Quick test_centralized_basic;
    Alcotest.test_case "centralized: quantum preemption" `Quick
      test_centralized_quantum_preemption;
    Alcotest.test_case "centralized: HoL without quantum" `Quick
      test_centralized_no_quantum_hol;
    Alcotest.test_case "centralized: BE gets idle cores" `Quick
      test_centralized_be_uses_idle_cores;
    Alcotest.test_case "centralized: BE reclaimed under load" `Quick
      test_centralized_be_reclaimed_under_load;
    Alcotest.test_case "centralized: dispatcher serializes" `Quick
      test_centralized_dispatcher_serializes;
    Alcotest.test_case "centralized: invalid config" `Quick test_centralized_invalid_config;
  ]
