(* Smoke and shape tests for the experiment harnesses: each figure/table
   module runs end-to-end at a tiny simulated duration and its headline
   orderings hold.  These catch regressions in the reproduction pipeline
   itself. *)

module Time = Skyloft_sim.Time
module E = Skyloft_experiments

let check = Alcotest.check

(* Tiny config: enough samples for orderings, fast enough for CI. *)
let tiny = { E.Config.duration = Time.ms 40; seed = 7; jobs = 1; requests = None }

let test_fig5_shape () =
  (* Run one Linux and one Skyloft system at one oversubscribed point. *)
  let linux =
    E.Fig5.run_one tiny (List.nth E.Fig5.systems 1) (* Linux-CFS *) ~workers:48
  in
  let sky =
    E.Fig5.run_one tiny (List.nth E.Fig5.systems 6) (* Skyloft-CFS *) ~workers:48
  in
  let module H = Skyloft_stats.Histogram in
  check Alcotest.bool "samples collected" true (H.count linux > 50 && H.count sky > 50);
  check Alcotest.bool "Skyloft p99 << Linux p99" true
    (H.percentile sky 99.0 * 10 < H.percentile linux 99.0)

let test_fig6_proportionality () =
  let p99 slice =
    Skyloft_stats.Histogram.percentile (E.Fig6.run_one tiny ~slice ~workers:48) 99.0
  in
  let small = p99 (Some (Time.us 10)) in
  let big = p99 (Some (Time.us 200)) in
  let fifo = p99 None in
  check Alcotest.bool "latency grows with slice" true (small < big && big < fifo)

let test_fig7_orderings () =
  let point system =
    E.Fig7.run_point tiny system ~with_be:false
      ~rate_rps:(0.8 *. E.Fig7.saturation)
  in
  let sky = point (E.Fig7.Skyloft_c (Time.us 30)) in
  let shinjuku = point E.Fig7.Shinjuku_c in
  let ghost = point E.Fig7.Ghost_c in
  check Alcotest.bool "Skyloft ~ Shinjuku (within 2x)" true
    (sky.E.Fig7.p99_us < 2.0 *. shinjuku.E.Fig7.p99_us
    && shinjuku.E.Fig7.p99_us < 2.0 *. sky.E.Fig7.p99_us);
  check Alcotest.bool "ghOSt worse than Skyloft" true
    (ghost.E.Fig7.p99_us > sky.E.Fig7.p99_us)

let test_fig7_be_share () =
  let low =
    E.Fig7.run_point tiny (E.Fig7.Skyloft_c (Time.us 30)) ~with_be:true
      ~rate_rps:(0.1 *. E.Fig7.saturation)
  in
  let high =
    E.Fig7.run_point tiny (E.Fig7.Skyloft_c (Time.us 30)) ~with_be:true
      ~rate_rps:(0.9 *. E.Fig7.saturation)
  in
  check Alcotest.bool "batch share shrinks with load" true
    (low.E.Fig7.be_share > high.E.Fig7.be_share);
  let shinjuku =
    E.Fig7.run_point tiny E.Fig7.Shinjuku_c ~with_be:true
      ~rate_rps:(0.5 *. E.Fig7.saturation)
  in
  check (Alcotest.float 1e-9) "Shinjuku batch share is zero" 0.0
    shinjuku.E.Fig7.be_share

let test_fig8b_preemption_wins () =
  let run system =
    E.Fig8.run_server tiny system ~workers:6
      ~service:Skyloft_apps.Rocksdb.service
      ~rate_rps:(0.6 *. Skyloft_apps.Rocksdb.saturation_rps ~cores:6)
  in
  let sky = run (E.Fig8.Sky_ws (Some (Time.us 5))) in
  let shenango = run E.Fig8.Shenango_ws in
  check Alcotest.bool "preemption crushes the slowdown tail" true
    (sky.E.Fig8.p999_slowdown *. 3.0 < shenango.E.Fig8.p999_slowdown)

let test_tables_print () =
  (* The table printers must run without raising and return content. *)
  let rows4 = E.Tables.print_table4 () in
  check Alcotest.bool "table4 rows" true (List.length rows4 >= 6);
  E.Tables.print_table5 ();
  let rows6 = E.Tables.print_table6 () in
  check Alcotest.int "table6 has six mechanisms" 6 (List.length rows6);
  let rows7 = E.Tables.print_table7_model () in
  check Alcotest.int "table7 has four ops" 4 (List.length rows7);
  E.Tables.print_appswitch ()

let test_table4_loc_counts () =
  (* Policy files exist and are small (the Table 4 claim). *)
  List.iter
    (fun (name, path) ->
      match E.Tables.count_loc path with
      | Some loc ->
          check Alcotest.bool (name ^ " under 200 LoC") true (loc > 5 && loc < 200)
      | None -> Alcotest.fail (path ^ " missing"))
    E.Tables.policy_files

let suite =
  [
    Alcotest.test_case "fig5 shape" `Slow test_fig5_shape;
    Alcotest.test_case "fig6 proportionality" `Slow test_fig6_proportionality;
    Alcotest.test_case "fig7 orderings" `Slow test_fig7_orderings;
    Alcotest.test_case "fig7 batch share" `Slow test_fig7_be_share;
    Alcotest.test_case "fig8b preemption wins" `Slow test_fig8b_preemption_wins;
    Alcotest.test_case "tables print" `Quick test_tables_print;
    Alcotest.test_case "table4 loc" `Quick test_table4_loc_counts;
  ]
