(* Unit tests for the core allocator: policy decisions and the arbitration
   loop, driven directly with synthetic congestion samples (no runtime). *)

module Time = Skyloft_sim.Time
module Engine = Skyloft_sim.Engine
module Timeseries = Skyloft_stats.Timeseries
module Costs = Skyloft_hw.Costs
module Policy = Skyloft_alloc.Policy
module Allocator = Skyloft_alloc.Allocator

let check = Alcotest.check

(* A fake app: the test scripts its congestion signals; [apply] mimics the
   runtimes' charging convention (BE pays the §5.4 cost per core moved). *)
type fake = {
  mutable runq : int;
  mutable delay : Time.t;
  mutable busy_rate : float;  (* fraction of granted cores kept busy *)
  mutable busy_acc : float;
  mutable applied : int list;  (* grant after each transition, newest first *)
}

let fake () = { runq = 0; delay = 0; busy_rate = 0.0; busy_acc = 0.0; applied = [] }

let interval = Time.us 5

let register alloc ~app ~kind ~bounds ~initial ?(charge = false) f =
  let granted = ref initial in
  Allocator.register alloc ~app
    ~name:(Printf.sprintf "app%d" app)
    ~kind ~bounds ~initial
    ~sample:(fun () ->
      (* busy tracks the scripted rate against the current grant *)
      f.busy_acc <-
        f.busy_acc
        +. (f.busy_rate *. float_of_int (max 1 !granted) *. float_of_int interval);
      {
        Allocator.runq_len = f.runq;
        oldest_delay = f.delay;
        busy_ns = int_of_float f.busy_acc;
      })
    ~apply:(fun ~granted:g ~delta ->
      granted := g;
      f.applied <- g :: f.applied;
      if charge then Costs.app_switch_ns * abs delta else 0)

let make ?(policy = Policy.static ()) ?(total_cores = 8) () =
  let engine = Engine.create () in
  let alloc = Allocator.create ~engine ~policy ~interval ~total_cores () in
  (engine, alloc)

(* ---- registration & bounds ---- *)

let test_register_validates () =
  let _, alloc = make () in
  let f = fake () in
  let bad g = try g (); false with Invalid_argument _ -> true in
  check Alcotest.bool "guaranteed > burstable rejected" true
    (bad (fun () ->
         register alloc ~app:1 ~kind:Policy.Lc
           ~bounds:{ Allocator.guaranteed = 3; burstable = 2 }
           ~initial:2 f));
  check Alcotest.bool "burstable > pool rejected" true
    (bad (fun () ->
         register alloc ~app:1 ~kind:Policy.Lc
           ~bounds:{ Allocator.guaranteed = 0; burstable = 9 }
           ~initial:0 f));
  check Alcotest.bool "initial outside bounds rejected" true
    (bad (fun () ->
         register alloc ~app:1 ~kind:Policy.Lc
           ~bounds:{ Allocator.guaranteed = 2; burstable = 4 }
           ~initial:1 f));
  register alloc ~app:1 ~kind:Policy.Lc
    ~bounds:{ Allocator.guaranteed = 0; burstable = 8 }
    ~initial:6 f;
  check Alcotest.bool "initial grants may not oversubscribe the pool" true
    (bad (fun () ->
         register alloc ~app:2 ~kind:Policy.Be
           ~bounds:{ Allocator.guaranteed = 0; burstable = 8 }
           ~initial:3 (fake ())));
  check Alcotest.int "free pool tracks grants" 2 (Allocator.free_cores alloc)

(* ---- static policy arbitration ---- *)

let test_static_reclaims_for_lc () =
  let _, alloc = make () in
  let lc = fake () and be = fake () in
  register alloc ~app:1 ~kind:Policy.Lc
    ~bounds:{ Allocator.guaranteed = 0; burstable = 8 }
    ~initial:0 lc;
  register alloc ~app:2 ~kind:Policy.Be ~charge:true
    ~bounds:{ Allocator.guaranteed = 0; burstable = 8 }
    ~initial:8 be;
  (* LC congestion: 3 queued tasks -> steal 3 cores from BE *)
  lc.runq <- 3;
  Allocator.tick alloc;
  check Alcotest.int "LC granted 3" 3 (Allocator.granted alloc ~app:1);
  check Alcotest.int "BE shrunk to 5" 5 (Allocator.granted alloc ~app:2);
  check Alcotest.int "switch cost charged per core moved"
    (3 * Costs.app_switch_ns) (Allocator.charged_ns alloc);
  (* queue drains -> LC yields everything, BE regrows within one tick *)
  lc.runq <- 0;
  Allocator.tick alloc;
  check Alcotest.int "LC back to 0" 0 (Allocator.granted alloc ~app:1);
  check Alcotest.int "BE back to 8" 8 (Allocator.granted alloc ~app:2);
  check Alcotest.bool "yields counted separately" true (Allocator.yields alloc >= 1)

let test_guaranteed_never_reclaimed () =
  let _, alloc = make () in
  let lc = fake () and be = fake () in
  register alloc ~app:1 ~kind:Policy.Lc
    ~bounds:{ Allocator.guaranteed = 0; burstable = 8 }
    ~initial:0 lc;
  (* BE holds 2 guaranteed cores *)
  register alloc ~app:2 ~kind:Policy.Be
    ~bounds:{ Allocator.guaranteed = 2; burstable = 8 }
    ~initial:8 be;
  (* LC demands far more than the pool: BE must keep its guarantee *)
  lc.runq <- 100;
  for _ = 1 to 10 do
    Allocator.tick alloc
  done;
  check Alcotest.int "BE kept its guaranteed cores" 2 (Allocator.granted alloc ~app:2);
  check Alcotest.int "LC capped at pool minus guarantee" 6
    (Allocator.granted alloc ~app:1);
  (* and the guarantee survives every recorded transition *)
  check Alcotest.bool "no transition ever dipped below the guarantee" true
    (List.for_all (fun g -> g >= 2) be.applied)

let test_burstable_caps_grants () =
  let _, alloc = make () in
  let lc = fake () in
  register alloc ~app:1 ~kind:Policy.Lc
    ~bounds:{ Allocator.guaranteed = 0; burstable = 3 }
    ~initial:0 lc;
  lc.runq <- 50;
  Allocator.tick alloc;
  Allocator.tick alloc;
  check Alcotest.int "LC capped at burstable" 3 (Allocator.granted alloc ~app:1);
  check Alcotest.int "rest of the pool stays free" 5 (Allocator.free_cores alloc)

(* ---- hysteresis ---- *)

let test_hysteresis_prevents_oscillation () =
  (* Steady 60% utilization sits between the watermarks: a hysteresis-2
     utilization policy must make no transitions at all after warm-up. *)
  let _, alloc =
    make ~policy:(Policy.utilization ~hi:0.9 ~lo:0.2 ~hysteresis:2 ()) ()
  in
  let lc = fake () in
  register alloc ~app:1 ~kind:Policy.Lc
    ~bounds:{ Allocator.guaranteed = 0; burstable = 8 }
    ~initial:4 lc;
  lc.busy_rate <- 0.6;
  for _ = 1 to 50 do
    Allocator.tick alloc
  done;
  check Alcotest.int "no grants under steady mid-band load" 0 (Allocator.grants alloc);
  check Alcotest.int "no yields under steady mid-band load" 0 (Allocator.yields alloc);
  check Alcotest.int "grant unchanged" 4 (Allocator.granted alloc ~app:1)

let test_hysteresis_filters_single_tick_spike () =
  (* One tick above the high watermark must not trigger a grant with
     hysteresis 2; two consecutive ones must. *)
  let _, alloc =
    make ~policy:(Policy.utilization ~hi:0.9 ~lo:0.2 ~hysteresis:2 ()) ()
  in
  let lc = fake () in
  register alloc ~app:1 ~kind:Policy.Lc
    ~bounds:{ Allocator.guaranteed = 0; burstable = 8 }
    ~initial:4 lc;
  lc.busy_rate <- 0.95;
  Allocator.tick alloc;
  lc.busy_rate <- 0.5;
  Allocator.tick alloc;
  check Alcotest.int "single spike filtered" 0 (Allocator.grants alloc);
  lc.busy_rate <- 0.95;
  Allocator.tick alloc;
  Allocator.tick alloc;
  check Alcotest.bool "sustained load grants" true (Allocator.grants alloc >= 1)

(* ---- delay policy ---- *)

let test_delay_policy_grants_on_queueing () =
  let _, alloc =
    make ~policy:(Policy.delay ~threshold:(Time.us 10) ~idle_ticks:2 ()) ()
  in
  let lc = fake () and be = fake () in
  register alloc ~app:1 ~kind:Policy.Lc
    ~bounds:{ Allocator.guaranteed = 0; burstable = 8 }
    ~initial:0 lc;
  register alloc ~app:2 ~kind:Policy.Be
    ~bounds:{ Allocator.guaranteed = 0; burstable = 8 }
    ~initial:8 be;
  (* old delay below threshold: no reclaim *)
  lc.runq <- 2;
  lc.delay <- Time.us 8;
  Allocator.tick alloc;
  check Alcotest.int "below threshold holds" 8 (Allocator.granted alloc ~app:2);
  (* above threshold: steal for each queued task *)
  lc.delay <- Time.us 12;
  Allocator.tick alloc;
  check Alcotest.int "above threshold steals" 2 (Allocator.granted alloc ~app:1);
  (* calm + fully idle LC: cores trickle back after idle_ticks *)
  lc.runq <- 0;
  lc.delay <- 0;
  lc.busy_rate <- 0.0;
  for _ = 1 to 10 do
    Allocator.tick alloc
  done;
  check Alcotest.bool "idle LC yields back" true (Allocator.granted alloc ~app:1 < 2)

(* ---- periodic loop & timeseries ---- *)

let test_periodic_loop_and_series () =
  let engine, alloc = make () in
  let lc = fake () and be = fake () in
  register alloc ~app:1 ~kind:Policy.Lc
    ~bounds:{ Allocator.guaranteed = 0; burstable = 8 }
    ~initial:0 lc;
  register alloc ~app:2 ~kind:Policy.Be
    ~bounds:{ Allocator.guaranteed = 0; burstable = 8 }
    ~initial:8 be;
  Allocator.start alloc;
  ignore (Engine.at engine (Time.us 12) (fun () -> lc.runq <- 4));
  ignore (Engine.at engine (Time.us 32) (fun () -> lc.runq <- 0));
  Engine.run ~until:(Time.us 100) engine;
  check Alcotest.bool "ticked every interval" true (Allocator.ticks alloc >= 19);
  (* runq stays at 4 until 32us, so the static policy keeps stealing: the
     series must record BE dipping (all the way to 0 after two ticks) and
     recovering once the queue drains *)
  let s = Allocator.series alloc ~app:2 in
  check Alcotest.int "series recorded the dip" 0 (Timeseries.min_value s);
  check Alcotest.int "series back at burstable" 8
    (match Timeseries.last s with Some (_, v) -> v | None -> -1);
  Allocator.stop alloc;
  let before = Allocator.ticks alloc in
  Engine.run ~until:(Time.us 200) engine;
  check Alcotest.int "stop halts the loop" before (Allocator.ticks alloc)

let test_event_log () =
  let events = ref [] in
  let lc = fake () and be = fake () in
  let engine = Engine.create () in
  let alloc =
    Allocator.create ~engine ~policy:(Policy.static ()) ~interval ~total_cores:8
      ~on_event:(fun ev -> events := ev :: !events)
      ()
  in
  register alloc ~app:1 ~kind:Policy.Lc
    ~bounds:{ Allocator.guaranteed = 0; burstable = 8 }
    ~initial:0 lc;
  register alloc ~app:2 ~kind:Policy.Be
    ~bounds:{ Allocator.guaranteed = 0; burstable = 8 }
    ~initial:8 be;
  lc.runq <- 2;
  Allocator.tick alloc;
  check Alcotest.bool "on_event fired" true (List.length !events >= 2);
  check Alcotest.bool "log matches hook" true
    (List.length (Allocator.events alloc) = List.length !events);
  check Alcotest.bool "reclaim recorded against BE" true
    (List.exists
       (fun (e : Allocator.event) ->
         e.Allocator.app = 2 && e.Allocator.action = Allocator.Reclaimed)
       !events)

(* ---- degradation: mode-transition events alternate with honest times ---- *)

(* The event log must tell the degradation story exactly: one [Degraded]
   per stale episode, one [Recovered] per thaw, strictly alternating,
   each stamped with the virtual time of the tick that crossed the edge —
   not the tick the staleness began, and never a duplicate while the
   condition persists. *)
let test_degrade_recover_event_ordering () =
  let engine = Engine.create () in
  let modes = ref [] in
  let alloc =
    Allocator.create ~engine
      ~policy:(Policy.delay ())
      ~interval ~total_cores:4 ~degrade_after:3
      ~on_event:(fun e ->
        if e.Allocator.app = -1 then modes := e :: !modes)
      ()
  in
  let frozen = ref true in
  let busy = ref 0 in
  Allocator.register alloc ~app:0 ~name:"lc" ~kind:Policy.Lc
    ~bounds:{ Allocator.guaranteed = 1; burstable = 4 }
    ~initial:2
    ~sample:(fun () ->
      (* work queued, cores granted; zero progress while frozen *)
      if not !frozen then busy := !busy + Time.us 8;
      { Allocator.runq_len = 4; oldest_delay = Time.us 20; busy_ns = !busy })
    ~apply:(fun ~granted:_ ~delta:_ -> 0);
  let tick_at k =
    Engine.run ~until:(k * interval) engine;
    Allocator.tick alloc
  in
  (* two full episodes: freeze (ticks 1-3), thaw (4), freeze (5-7), thaw (8) *)
  for k = 1 to 8 do
    (match k with 4 -> frozen := false | 5 -> frozen := true | 8 -> frozen := false | _ -> ());
    tick_at k
  done;
  let modes = List.rev !modes in
  check (Alcotest.list Alcotest.int) "stamped with the edge-crossing tick's time"
    [ 3 * interval; 4 * interval; 7 * interval; 8 * interval ]
    (List.map (fun e -> e.Allocator.at) modes);
  check Alcotest.bool "strictly alternating Degraded/Recovered" true
    (List.map (fun e -> e.Allocator.action) modes
    = [ Allocator.Degraded; Allocator.Recovered;
        Allocator.Degraded; Allocator.Recovered ]);
  List.iter
    (fun e ->
      check Alcotest.int "mode transitions move no cores" 0 e.Allocator.delta;
      check Alcotest.string "allocator-wide event" "allocator" e.Allocator.app_name)
    modes;
  check Alcotest.int "one degradation counted per episode" 2
    (Allocator.degradations alloc);
  check Alcotest.bool "ends recovered" false (Allocator.degraded alloc)

let suite =
  [
    Alcotest.test_case "alloc: registration bounds" `Quick test_register_validates;
    Alcotest.test_case "alloc: static reclaims for LC" `Quick
      test_static_reclaims_for_lc;
    Alcotest.test_case "alloc: guaranteed cores never reclaimed" `Quick
      test_guaranteed_never_reclaimed;
    Alcotest.test_case "alloc: burstable caps grants" `Quick test_burstable_caps_grants;
    Alcotest.test_case "alloc: hysteresis prevents oscillation" `Quick
      test_hysteresis_prevents_oscillation;
    Alcotest.test_case "alloc: hysteresis filters spikes" `Quick
      test_hysteresis_filters_single_tick_spike;
    Alcotest.test_case "alloc: delay policy" `Quick test_delay_policy_grants_on_queueing;
    Alcotest.test_case "alloc: periodic loop + timeseries" `Quick
      test_periodic_loop_and_series;
    Alcotest.test_case "alloc: event log" `Quick test_event_log;
    Alcotest.test_case "alloc: degrade/recover event ordering" `Quick
      test_degrade_recover_event_ordering;
  ]
