module Time = Skyloft_sim.Time

type kind = Lc | Be

type signal = {
  kind : kind;
  cores : int;
  runq_len : int;
  oldest_delay : Time.t;
  utilization : float;
}

type decision = Grant of int | Yield of int | Hold

module type POLICY = sig
  type t

  val name : string
  val observe : t -> app:int -> signal -> decision
end

type t = P : (module POLICY with type t = 'a) * 'a -> t

let pack (type a) (m : (module POLICY with type t = a)) (st : a) = P (m, st)
let name (P ((module M), _)) = M.name
let observe (P ((module M), st)) ~app s = M.observe st ~app s

(* A BE app under the reactive policies: soak whatever the free pool holds
   (the arbiter clamps to burstable and to what is actually free). *)
let be_greedy (s : signal) =
  if s.cores < max_int then Grant max_int else Hold

(* ---- Static: the pre-allocator baseline split --------------------------- *)

module Static_impl = struct
  type t = unit

  let name = "static"

  let observe () ~app:_ s =
    match s.kind with
    | Lc ->
        (* Claim a core per queued task; hand everything back the moment
           the queue drains so BE regrows within one check interval. *)
        if s.runq_len > 0 then Grant s.runq_len
        else if s.cores > 0 then Yield s.cores
        else Hold
    | Be -> be_greedy s
end

let static () = pack (module Static_impl) ()

(* ---- Utilization: watermarks + hysteresis ------------------------------- *)

module Utilization_impl = struct
  type app_state = { mutable above : int; mutable below : int }

  type t = {
    hi : float;
    lo : float;
    hysteresis : int;
    apps : (int, app_state) Hashtbl.t;
  }

  let name = "utilization"

  let state t app =
    match Hashtbl.find_opt t.apps app with
    | Some st -> st
    | None ->
        let st = { above = 0; below = 0 } in
        Hashtbl.replace t.apps app st;
        st

  let observe t ~app s =
    let st = state t app in
    if s.utilization >= t.hi then begin
      st.below <- 0;
      st.above <- st.above + 1;
      if st.above >= t.hysteresis then begin
        st.above <- 0;
        (* Enough cores to bring utilization back under the high watermark:
           busy core-equivalents / hi, rounded up. *)
        let busy_cores = s.utilization *. float_of_int (max 1 s.cores) in
        let want = int_of_float (ceil (busy_cores /. t.hi)) in
        Grant (max 1 (want - s.cores))
      end
      else Hold
    end
    else if s.utilization <= t.lo then begin
      st.above <- 0;
      st.below <- st.below + 1;
      if st.below >= t.hysteresis && s.cores > 0 then begin
        st.below <- 0;
        (* Shed down to the high-watermark target in one step, so a calm
           app does not ratchet its grant upward over time. *)
        let busy_cores = s.utilization *. float_of_int (max 1 s.cores) in
        let target = int_of_float (ceil (busy_cores /. t.hi)) in
        Yield (max 1 (s.cores - target))
      end
      else Hold
    end
    else begin
      st.above <- 0;
      st.below <- 0;
      Hold
    end
end

let utilization ?(hi = 0.9) ?(lo = 0.2) ?(hysteresis = 2) () =
  if not (lo < hi) then invalid_arg "Policy.utilization: need lo < hi";
  if hysteresis < 1 then invalid_arg "Policy.utilization: hysteresis >= 1";
  pack
    (module Utilization_impl)
    { Utilization_impl.hi; lo; hysteresis; apps = Hashtbl.create 8 }

(* ---- Delay: Shenango's oldest-pending-task congestion signal ------------ *)

module Delay_impl = struct
  type app_state = { mutable calm : int }

  type t = {
    threshold : Time.t;
    idle_ticks : int;
    apps : (int, app_state) Hashtbl.t;
  }

  let name = "delay"

  let state t app =
    match Hashtbl.find_opt t.apps app with
    | Some st -> st
    | None ->
        let st = { calm = 0 } in
        Hashtbl.replace t.apps app st;
        st

  let observe t ~app s =
    match s.kind with
    | Be -> be_greedy s
    | Lc ->
        let st = state t app in
        if s.oldest_delay > t.threshold then begin
          st.calm <- 0;
          Grant (max 1 s.runq_len)
        end
        else begin
          (* Spare capacity in core-equivalents this interval; keep one
             headroom core so a single arrival does not immediately queue
             past the threshold again. *)
          let busy_cores = s.utilization *. float_of_int (max 1 s.cores) in
          let spare = float_of_int s.cores -. busy_cores in
          if s.runq_len = 0 && s.cores > 0 && spare > 1.5 then begin
            st.calm <- st.calm + 1;
            if st.calm >= t.idle_ticks then begin
              st.calm <- 0;
              Yield (max 1 (int_of_float (spare -. 1.0)))
            end
            else Hold
          end
          else begin
            st.calm <- 0;
            Hold
          end
        end
end

let delay ?(threshold = Time.us 10) ?(idle_ticks = 2) () =
  if threshold <= 0 then invalid_arg "Policy.delay: threshold must be positive";
  if idle_ticks < 1 then invalid_arg "Policy.delay: idle_ticks >= 1";
  pack (module Delay_impl) { Delay_impl.threshold; idle_ticks; apps = Hashtbl.create 8 }
