module Time = Skyloft_sim.Time
module Engine = Skyloft_sim.Engine
module Timeseries = Skyloft_stats.Timeseries

(** The machine-level core broker: the {!Allocator} promoted one level up.

    Where the allocator arbitrates cores between the applications of one
    runtime, the broker arbitrates whole runtimes — tenants — sharing one
    simulated machine (the iokernel role in Caladan/Shenango).  Each
    tenant registers a whole-runtime congestion sample, an apply hook
    (typically the runtime's [set_core_allowance]) and guaranteed /
    burstable bounds; every interval the broker samples, lets a fresh
    per-tenant {!Policy} instance ask for or yield cores, and arbitrates
    under conservation invariants checked on every tick: the sum of
    grants never exceeds the machine's capacity, and no live tenant ever
    drops below its guaranteed floor.

    Tenants are untrusted, so the broker layers defenses: per-tenant
    signal staleness ({!Degrade}/{!Recover}, the allocator's
    [Degraded]/[Recovered] path lifted to tenant granularity), hoard
    scores with decay that quarantine a tenant claiming congestion
    forever ({!Quarantine}/{!Release} — clamped to its floor, never
    reclaimed past it), and broker-driven reclamation of everything —
    floor included — when a tenant {!crash}es. *)

type health =
  | Healthy
  | Stale  (** congestion signal frozen: clamped to its floor, ignored *)
  | Quarantined  (** hoard cap tripped: clamped to its floor for a while *)
  | Crashed  (** everything reclaimed; out of arbitration for good *)

type action =
  | Grant
  | Reclaim
  | Yield
  | Degrade  (** tenant went stale (cores reclaimed to floor in [delta]) *)
  | Recover  (** stale tenant's signal moved again *)
  | Quarantine  (** hoard cap tripped (cores reclaimed to floor in [delta]) *)
  | Release  (** quarantine served out *)
  | Crash  (** tenant crashed ([delta] = cores reclaimed, floor included) *)

type event = {
  at : Time.t;
  tenant : int;
  tenant_name : string;
  action : action;
  delta : int;
  granted : int;
}

type config = {
  interval : Time.t;  (** sampling period (default 5 µs) *)
  degrade_after : int;
      (** consecutive frozen ticks before a tenant is degraded *)
  hoard_cap : int;  (** hoard score that trips quarantine *)
  hoard_decay : int;  (** score decay per well-behaved tick *)
  quarantine_ticks : int;  (** intervals a quarantined tenant sits out *)
}

val default_config : unit -> config
(** 5 µs interval, degrade after 20 ticks, hoard cap 40 with decay 2,
    quarantine 400 ticks (2 ms at the default interval). *)

type t

val create :
  engine:Engine.t ->
  capacity:int ->
  ?config:config ->
  ?on_event:(event -> unit) ->
  unit ->
  t
(** A broker over a machine with [capacity] brokered cores.  Raises
    [Invalid_argument] on a non-positive capacity or malformed config. *)

val register :
  t ->
  tenant:int ->
  name:string ->
  kind:Policy.kind ->
  policy:Policy.t ->
  bounds:Allocator.bounds ->
  initial:int ->
  sample:(unit -> Allocator.raw) ->
  apply:(granted:int -> delta:int -> Time.t) ->
  unit
(** Register a tenant.  [policy] must be a fresh instance (policies carry
    hysteresis state); [sample] is read once per tick; [apply] drives the
    runtime's core allowance and returns the switch cost to charge.
    Registration order is the arbitration order.  Raises
    [Invalid_argument] on duplicate ids, malformed bounds, or initial
    grants exceeding the pool. *)

val intercept_sample :
  t -> tenant:int -> (granted:int -> Allocator.raw -> Allocator.raw) -> unit
(** Install a fault-injection interceptor rewriting the tenant's raw
    congestion sample in flight (see [Injector.arm_tenants]). *)

val clear_intercept : t -> tenant:int -> unit

val set_trace :
  t -> ?core_of_tenant:(int -> int) -> Skyloft_stats.Trace.t -> unit
(** Mirror every broker event onto the flight recorder as a machine-level
    instant ([Broker_grant]/[Broker_reclaim]/[Broker_yield] for core
    movements, [Tenant_degrade]/[Tenant_recover], [Quarantine]/[Release]
    and [Tenant_crash] for health edges), named after the tenant.
    [core_of_tenant] maps a tenant id to the core the instant lands on —
    typically the base of the tenant's physical core range (see
    [Placement]) so arbitration shows up on the right track; defaults to
    the identity. *)

exception Invariant_violation of string

val check_invariants : t -> unit
(** Raises {!Invariant_violation} unless [sum granted <= capacity] and
    every non-crashed tenant holds at least its guaranteed floor (and at
    most its burstable ceiling).  Called internally after every tick. *)

val tick : t -> unit
(** One control round: sample (through interceptors), staleness edges and
    quarantine countdown, healthy-tenant policy decisions, hoard scoring,
    three-phase arbitration (yields, LC grants with BE steals above
    floors, BE grants), then {!check_invariants}. *)

val start : t -> unit
(** Tick every [config.interval] until {!stop}. *)

val stop : t -> unit

val crash : t -> tenant:int -> unit
(** Broker-driven crash reclamation: take back everything the tenant
    held — the guaranteed floor included, which only a crash may — and
    exclude it from arbitration and fairness from now on.  Idempotent. *)

val fairness : t -> float
(** Jain's index over per-tenant core-time integrals, each normalized by
    its guaranteed floor; 1.0 is perfectly fair, 1/n maximally unfair.
    Crashed tenants are excluded. *)

(** {1 Accessors} *)

val granted : t -> tenant:int -> int
val health : t -> tenant:int -> health
val hoard_score : t -> tenant:int -> int
val core_ns : t -> tenant:int -> int
(** Integral of granted cores over time, settled to now. *)

val series : t -> tenant:int -> Timeseries.t
val capacity : t -> int
val free_cores : t -> int
val interval : t -> Time.t
val grants : t -> int
val reclaims : t -> int
val yields : t -> int
val ticks : t -> int
val charged_ns : t -> Time.t
val degradations : t -> int
val quarantines : t -> int
val releases : t -> int
val crashes : t -> int

val events : t -> event list
(** The bounded event log (most recent 4096), oldest first. *)

val health_name : health -> string
val action_name : action -> string

val register_metrics :
  t -> ?labels:Skyloft_obs.Registry.labels -> Skyloft_obs.Registry.t -> unit
(** Pull-based [skyloft_broker_*] metrics: machine-wide counters (grants,
    reclaims, yields, ticks, charged switch cost, degradations,
    quarantines, releases, crashes), pool gauges (free cores, capacity,
    Jain fairness), and per-tenant gauges/series under an [app] label
    (granted cores, health code, hoard score, core-time integral, granted
    series).  Attaching a registry cannot perturb the control loop. *)
