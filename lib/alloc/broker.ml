module Time = Skyloft_sim.Time
module Engine = Skyloft_sim.Engine
module Timeseries = Skyloft_stats.Timeseries

(* The machine-level core broker: the {!Allocator} promoted one level up.
   Where the allocator arbitrates cores between the applications of ONE
   runtime, the broker arbitrates whole runtimes — tenants — sharing one
   machine (the iokernel role in Caladan/Shenango, and the coordinator of
   "Rethinking Thread Scheduling under Oversubscription").  Each tenant
   registers a congestion sample (its runtime's whole-runtime probe), an
   apply hook (the runtime's [set_core_allowance]) and guaranteed/burstable
   bounds; every interval the broker samples, lets a per-tenant policy ask
   for or yield cores, and arbitrates under conservation invariants: the
   sum of grants never exceeds the machine's cores, and no live tenant is
   ever pushed below its guaranteed floor.

   Tenants are untrusted, so the broker carries layered defenses:
   - per-tenant signal STALENESS (busy frozen while claiming queued work):
     after [degrade_after] ticks the tenant is degraded — clamped to its
     floor, decisions ignored — and recovers the moment the signal moves;
   - HOARD detection: a tenant above its floor that keeps claiming
     congestion while the pool is empty and other tenants starve
     accumulates a hoard score (decaying while it behaves); at
     [hoard_cap] it is QUARANTINED — clamped to its floor for
     [quarantine_ticks] intervals, then released on good behavior;
   - tenant CRASH: [crash] reclaims everything including the floor, and
     the tenant is excluded from arbitration and fairness from then on. *)

type health = Healthy | Stale | Quarantined | Crashed

type action =
  | Grant
  | Reclaim
  | Yield
  | Degrade
  | Recover
  | Quarantine
  | Release
  | Crash

type event = {
  at : Time.t;
  tenant : int;
  tenant_name : string;
  action : action;
  delta : int;
  granted : int;
}

type config = {
  interval : Time.t;
  degrade_after : int;
  hoard_cap : int;
  hoard_decay : int;
  quarantine_ticks : int;
}

let default_config () =
  {
    interval = Time.us 5;
    degrade_after = 20;
    hoard_cap = 40;
    hoard_decay = 2;
    quarantine_ticks = 400;
  }

type binding = {
  id : int;
  tenant_name : string;
  kind : Policy.kind;
  policy : Policy.t;
  bounds : Allocator.bounds;
  sample : unit -> Allocator.raw;
  apply : granted:int -> delta:int -> Time.t;
  mutable intercept : (granted:int -> Allocator.raw -> Allocator.raw) option;
      (* fault-injection seam: rewrites the raw sample in flight *)
  mutable granted : int;
  mutable last_busy_ns : int;
  mutable stale_ticks : int;
  mutable health : health;
  mutable hoard_score : int;
  mutable quarantine_left : int;
  mutable core_ns : int;  (* integral of granted cores over time *)
  mutable core_ns_at : Time.t;
  series : Timeseries.t;
}

type t = {
  engine : Engine.t;
  capacity : int;  (* the machine's brokered core pool *)
  cfg : config;
  on_event : event -> unit;
  mutable trace : Skyloft_stats.Trace.t option;
  mutable core_of_tenant : int -> int;
  mutable tenants : binding list;  (* registration order — the iteration
                                      order everywhere, for determinism *)
  event_log : event Queue.t;
  mutable grants : int;
  mutable reclaims : int;
  mutable yields : int;
  mutable ticks : int;
  mutable charged_ns : Time.t;
  mutable degradations : int;
  mutable quarantines : int;
  mutable releases : int;
  mutable crashes : int;
  mutable running : bool;
}

let event_log_cap = 4096

let create ~engine ~capacity ?(config = default_config ())
    ?(on_event = ignore) () =
  if capacity <= 0 then invalid_arg "Broker.create: capacity must be positive";
  if config.interval <= 0 then
    invalid_arg "Broker.create: interval must be positive";
  if config.degrade_after <= 0 then
    invalid_arg "Broker.create: degrade_after must be positive";
  if config.hoard_cap <= 0 then
    invalid_arg "Broker.create: hoard_cap must be positive";
  if config.hoard_decay < 0 then
    invalid_arg "Broker.create: hoard_decay must be non-negative";
  if config.quarantine_ticks <= 0 then
    invalid_arg "Broker.create: quarantine_ticks must be positive";
  {
    engine;
    capacity;
    cfg = config;
    on_event;
    trace = None;
    core_of_tenant = (fun id -> id);
    tenants = [];
    event_log = Queue.create ();
    grants = 0;
    reclaims = 0;
    yields = 0;
    ticks = 0;
    charged_ns = 0;
    degradations = 0;
    quarantines = 0;
    releases = 0;
    crashes = 0;
    running = false;
  }

let sum_granted t = List.fold_left (fun acc b -> acc + b.granted) 0 t.tenants
let free_cores t = t.capacity - sum_granted t

let find t tenant =
  match List.find_opt (fun b -> b.id = tenant) t.tenants with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "Broker: unregistered tenant %d" tenant)

let register t ~tenant ~name ~kind ~policy ~bounds ~initial ~sample ~apply =
  if List.exists (fun b -> b.id = tenant) t.tenants then
    invalid_arg "Broker.register: tenant already registered";
  if bounds.Allocator.guaranteed < 0
     || bounds.Allocator.guaranteed > bounds.Allocator.burstable
  then invalid_arg "Broker.register: need 0 <= guaranteed <= burstable";
  if bounds.Allocator.burstable > t.capacity then
    invalid_arg "Broker.register: burstable exceeds the core pool";
  if initial < bounds.Allocator.guaranteed || initial > bounds.Allocator.burstable
  then invalid_arg "Broker.register: initial grant outside bounds";
  if initial > free_cores t then
    invalid_arg "Broker.register: initial grants exceed the core pool";
  let b =
    {
      id = tenant;
      tenant_name = name;
      kind;
      policy;
      bounds;
      sample;
      apply;
      intercept = None;
      granted = initial;
      last_busy_ns = (sample ()).Allocator.busy_ns;
      stale_ticks = 0;
      health = Healthy;
      hoard_score = 0;
      quarantine_left = 0;
      core_ns = 0;
      core_ns_at = Engine.now t.engine;
      series = Timeseries.create ();
    }
  in
  Timeseries.record b.series ~at:(Engine.now t.engine) initial;
  t.tenants <- t.tenants @ [ b ]

let intercept_sample t ~tenant f = (find t tenant).intercept <- Some f
let clear_intercept t ~tenant = (find t tenant).intercept <- None

(* ---- events --------------------------------------------------------------- *)

let set_trace t ?core_of_tenant trace =
  t.trace <- Some trace;
  match core_of_tenant with Some f -> t.core_of_tenant <- f | None -> ()

(* Broker actions on the shared machine timeline: arbitration instants
   land on a representative core of the tenant's physical range (the
   [core_of_tenant] mapping), named after the tenant, so a single
   Perfetto view attributes cross-tenant interference. *)
let trace_kind_of_action = function
  | Grant -> Skyloft_stats.Trace.Broker_grant
  | Reclaim -> Skyloft_stats.Trace.Broker_reclaim
  | Yield -> Skyloft_stats.Trace.Broker_yield
  | Degrade -> Skyloft_stats.Trace.Tenant_degrade
  | Recover -> Skyloft_stats.Trace.Tenant_recover
  | Quarantine -> Skyloft_stats.Trace.Quarantine
  | Release -> Skyloft_stats.Trace.Release
  | Crash -> Skyloft_stats.Trace.Tenant_crash

let log_event t ev =
  if Queue.length t.event_log >= event_log_cap then ignore (Queue.pop t.event_log);
  Queue.push ev t.event_log;
  (match t.trace with
  | Some trace ->
      Skyloft_stats.Trace.instant trace
        ~core:(t.core_of_tenant ev.tenant)
        ~at:ev.at
        (trace_kind_of_action ev.action)
        ~name:ev.tenant_name
  | None -> ());
  t.on_event ev

(* Health transitions move no cores; [delta] records context (e.g. the
   cores reclaimed by the companion transition). *)
let emit t b ~action ~delta =
  log_event t
    {
      at = Engine.now t.engine;
      tenant = b.id;
      tenant_name = b.tenant_name;
      action;
      delta;
      granted = b.granted;
    }

(* Apply one accepted core movement: adjust the grant, drive the runtime's
   allowance through [apply], charge its switch cost, log the event. *)
let transition t b ~action ~delta =
  if delta = 0 then ()
  else begin
    b.granted <- b.granted + delta;
    t.charged_ns <- t.charged_ns + b.apply ~granted:b.granted ~delta;
    (match action with
    | Grant -> t.grants <- t.grants + 1
    | Reclaim -> t.reclaims <- t.reclaims + 1
    | Yield -> t.yields <- t.yields + 1
    | Degrade | Recover | Quarantine | Release | Crash -> ());
    Timeseries.record b.series ~at:(Engine.now t.engine) b.granted;
    emit t b ~action ~delta:(abs delta)
  end

(* Clamp a misbehaving tenant to its guaranteed floor, refilling the pool
   with everything above it.  The floor itself is never reclaimed — that is
   the graceful half of the degradation. *)
let reclaim_to_floor t b =
  let excess = b.granted - b.bounds.Allocator.guaranteed in
  if excess > 0 then transition t b ~action:Reclaim ~delta:(-excess)

(* ---- conservation invariants ---------------------------------------------- *)

exception Invariant_violation of string

let check_invariants t =
  let sum = sum_granted t in
  if sum > t.capacity then
    raise
      (Invariant_violation
         (Printf.sprintf "Broker: %d cores granted, machine has %d" sum
            t.capacity));
  List.iter
    (fun b ->
      if b.health <> Crashed && b.granted < b.bounds.Allocator.guaranteed then
        raise
          (Invariant_violation
             (Printf.sprintf "Broker: tenant %s below its floor (%d < %d)"
                b.tenant_name b.granted b.bounds.Allocator.guaranteed));
      if b.granted > b.bounds.Allocator.burstable then
        raise
          (Invariant_violation
             (Printf.sprintf "Broker: tenant %s above burstable (%d > %d)"
                b.tenant_name b.granted b.bounds.Allocator.burstable)))
    t.tenants

(* ---- the control loop ------------------------------------------------------ *)

(* Fold the elapsed holding interval into the per-tenant core-time
   integral (the fairness currency). *)
let settle_core_ns t b =
  let at = Engine.now t.engine in
  b.core_ns <- b.core_ns + (b.granted * max 0 (at - b.core_ns_at));
  b.core_ns_at <- at

let signal_of t b (r : Allocator.raw) =
  let busy = max 0 (r.Allocator.busy_ns - b.last_busy_ns) in
  b.last_busy_ns <- r.Allocator.busy_ns;
  (* Staleness: cores granted and work claimed queued, yet zero progress —
     the tenant stopped reporting (or its runtime is wedged) and the
     broker would be trading cores on fiction.  A tenant already stale
     stays stale while frozen even at its floor, so a zero-guarantee
     tenant cannot oscillate Degrade/Recover. *)
  let frozen = busy = 0 && r.Allocator.runq_len > 0 in
  (match b.health with
  | Stale -> if frozen then b.stale_ticks <- b.stale_ticks + 1 else b.stale_ticks <- 0
  | Healthy | Quarantined | Crashed ->
      if frozen && b.granted > 0 then b.stale_ticks <- b.stale_ticks + 1
      else b.stale_ticks <- 0);
  {
    Policy.kind = b.kind;
    cores = b.granted;
    runq_len = r.Allocator.runq_len;
    oldest_delay = r.Allocator.oldest_delay;
    utilization =
      float_of_int busy /. float_of_int (t.cfg.interval * max 1 b.granted);
  }

let tick t =
  t.ticks <- t.ticks + 1;
  (* 1. sample every live tenant (through the fault interceptor, if any)
     and settle the fairness integrals *)
  let sampled =
    List.map
      (fun b ->
        settle_core_ns t b;
        if b.health = Crashed then (b, None)
        else
          let r = b.sample () in
          let r =
            match b.intercept with
            | Some f -> f ~granted:b.granted r
            | None -> r
          in
          (b, Some (signal_of t b r)))
      t.tenants
  in
  (* 2. health transitions: staleness edges and quarantine countdown *)
  List.iter
    (fun (b, _) ->
      match b.health with
      | Healthy when b.stale_ticks >= t.cfg.degrade_after ->
          b.health <- Stale;
          t.degradations <- t.degradations + 1;
          let held = b.granted in
          reclaim_to_floor t b;
          emit t b ~action:Degrade ~delta:(held - b.granted)
      | Stale when b.stale_ticks = 0 ->
          b.health <- Healthy;
          emit t b ~action:Recover ~delta:0
      | Quarantined ->
          b.quarantine_left <- b.quarantine_left - 1;
          if b.quarantine_left <= 0 then begin
            b.health <- Healthy;
            b.hoard_score <- 0;
            t.releases <- t.releases + 1;
            emit t b ~action:Release ~delta:0
          end
      | Healthy | Stale | Crashed -> ())
    sampled;
  (* 3. policy decisions — only healthy tenants get a say *)
  let decisions =
    List.map
      (fun (b, s) ->
        match (b.health, s) with
        | Healthy, Some s -> (b, Policy.observe b.policy ~app:b.id s)
        | _ -> (b, Policy.Hold))
      sampled
  in
  (* 4. hoard scoring: a tenant above its floor that keeps claiming
     congestion while the pool is dry and another healthy tenant is asking
     too is hoarding; behaving tenants decay their score. *)
  let wants_more (_, d) = match d with Policy.Grant n -> n > 0 | _ -> false in
  let decisions =
    List.map
      (fun (b, d) ->
        if b.health <> Healthy then (b, d)
        else begin
          let hoarding =
            wants_more (b, d)
            && b.granted > b.bounds.Allocator.guaranteed
            && free_cores t = 0
            && List.exists
                 (fun (b', d') ->
                   b' != b && b'.health = Healthy && wants_more (b', d'))
                 decisions
          in
          if hoarding then b.hoard_score <- b.hoard_score + 1
          else b.hoard_score <- max 0 (b.hoard_score - t.cfg.hoard_decay);
          if b.hoard_score >= t.cfg.hoard_cap then begin
            b.health <- Quarantined;
            b.quarantine_left <- t.cfg.quarantine_ticks;
            t.quarantines <- t.quarantines + 1;
            let held = b.granted in
            reclaim_to_floor t b;
            emit t b ~action:Quarantine ~delta:(held - b.granted);
            (b, Policy.Hold)
          end
          else (b, d)
        end)
      decisions
  in
  (* 5. arbitration, exactly the allocator's three phases *)
  let free = ref (free_cores t) in
  List.iter
    (fun (b, d) ->
      match d with
      | Policy.Yield n ->
          let n = min n (b.granted - b.bounds.Allocator.guaranteed) in
          if n > 0 then begin
            transition t b ~action:Yield ~delta:(-n);
            free := !free + n
          end
      | Policy.Grant _ | Policy.Hold -> ())
    decisions;
  List.iter
    (fun (b, d) ->
      match (b.kind, d) with
      | Policy.Lc, Policy.Grant n ->
          let want = ref (min n (b.bounds.Allocator.burstable - b.granted)) in
          let from_free = min !want !free in
          if from_free > 0 then begin
            free := !free - from_free;
            want := !want - from_free;
            transition t b ~action:Grant ~delta:from_free
          end;
          List.iter
            (fun donor ->
              if
                !want > 0 && donor.kind = Policy.Be
                && donor.health = Healthy
              then begin
                let steal =
                  min !want (donor.granted - donor.bounds.Allocator.guaranteed)
                in
                if steal > 0 then begin
                  transition t donor ~action:Reclaim ~delta:(-steal);
                  transition t b ~action:Grant ~delta:steal;
                  want := !want - steal
                end
              end)
            t.tenants
      | _ -> ())
    decisions;
  List.iter
    (fun (b, d) ->
      match (b.kind, d) with
      | Policy.Be, Policy.Grant n ->
          let take =
            min (min n (b.bounds.Allocator.burstable - b.granted)) !free
          in
          if take > 0 then begin
            free := !free - take;
            transition t b ~action:Grant ~delta:take
          end
      | _ -> ())
    decisions;
  check_invariants t

(* ---- tenant crash ----------------------------------------------------------- *)

(* The tenant's runtime died: reclaim everything it held — the guaranteed
   floor included, which only a crash may take — and drop it from
   arbitration and fairness for good. *)
let crash t ~tenant =
  let b = find t tenant in
  if b.health <> Crashed then begin
    settle_core_ns t b;
    let held = b.granted in
    b.granted <- 0;
    if held > 0 then
      t.charged_ns <- t.charged_ns + b.apply ~granted:0 ~delta:(-held);
    b.health <- Crashed;
    t.crashes <- t.crashes + 1;
    Timeseries.record b.series ~at:(Engine.now t.engine) 0;
    emit t b ~action:Crash ~delta:held
  end

(* ---- fairness --------------------------------------------------------------- *)

(* Jain's fairness index over per-tenant core-time, each normalized by its
   guaranteed floor so heterogeneous tenants compare meaningfully:
   J = (sum x)^2 / (n * sum x^2), 1.0 = perfectly fair.  Crashed tenants
   are excluded (their zero share is not unfairness). *)
let fairness t =
  let xs =
    List.filter_map
      (fun b ->
        if b.health = Crashed then None
        else begin
          settle_core_ns t b;
          Some
            (float_of_int b.core_ns
            /. float_of_int (max 1 b.bounds.Allocator.guaranteed))
        end)
      t.tenants
  in
  let n = List.length xs in
  if n = 0 then 1.0
  else
    let s = List.fold_left ( +. ) 0.0 xs in
    let s2 = List.fold_left (fun acc x -> acc +. (x *. x)) 0.0 xs in
    if s2 = 0.0 then 1.0 else s *. s /. (float_of_int n *. s2)

(* ---- driving ---------------------------------------------------------------- *)

let start t =
  if t.running then invalid_arg "Broker.start: already running";
  t.running <- true;
  Engine.every t.engine ~period:t.cfg.interval (fun () ->
      if t.running then tick t;
      t.running)

let stop t = t.running <- false

(* ---- accessors -------------------------------------------------------------- *)

let granted t ~tenant = (find t tenant).granted
let health t ~tenant = (find t tenant).health
let hoard_score t ~tenant = (find t tenant).hoard_score
let series t ~tenant = (find t tenant).series

let core_ns t ~tenant =
  let b = find t tenant in
  settle_core_ns t b;
  b.core_ns

let capacity t = t.capacity
let interval t = t.cfg.interval
let grants t = t.grants
let reclaims t = t.reclaims
let yields t = t.yields
let ticks t = t.ticks
let charged_ns t = t.charged_ns
let degradations t = t.degradations
let quarantines t = t.quarantines
let releases t = t.releases
let crashes t = t.crashes
let events t = List.of_seq (Queue.to_seq t.event_log)

let health_name = function
  | Healthy -> "healthy"
  | Stale -> "stale"
  | Quarantined -> "quarantined"
  | Crashed -> "crashed"

let action_name = function
  | Grant -> "grant"
  | Reclaim -> "reclaim"
  | Yield -> "yield"
  | Degrade -> "degrade"
  | Recover -> "recover"
  | Quarantine -> "quarantine"
  | Release -> "release"
  | Crash -> "crash"

(* Pull-based registration: closures read broker state only at snapshot
   time, so attaching a registry cannot perturb the control loop. *)
let register_metrics t ?(labels = []) reg =
  let module Registry = Skyloft_obs.Registry in
  let c name help read = Registry.counter reg ~help ~labels name read in
  c "skyloft_broker_grants_total" "Core grants applied" (fun () -> t.grants);
  c "skyloft_broker_reclaims_total" "Forced core reclaims" (fun () ->
      t.reclaims);
  c "skyloft_broker_yields_total" "Voluntary core yields" (fun () -> t.yields);
  c "skyloft_broker_ticks_total" "Broker sampling rounds" (fun () -> t.ticks);
  c "skyloft_broker_charged_ns_total"
    "Switch cost charged for broker transitions" (fun () -> t.charged_ns);
  c "skyloft_broker_degradations_total" "Tenants degraded on stale signals"
    (fun () -> t.degradations);
  c "skyloft_broker_quarantines_total" "Tenants quarantined for hoarding"
    (fun () -> t.quarantines);
  c "skyloft_broker_releases_total" "Tenants released from quarantine"
    (fun () -> t.releases);
  c "skyloft_broker_crashes_total" "Tenant crashes reclaimed" (fun () ->
      t.crashes);
  Registry.gauge reg ~labels "skyloft_broker_free_cores"
    ~help:"Cores currently in the free pool" (fun () ->
      float_of_int (free_cores t));
  Registry.gauge reg ~labels "skyloft_broker_capacity"
    ~help:"Brokered cores in the machine pool" (fun () ->
      float_of_int t.capacity);
  Registry.gauge reg ~labels "skyloft_broker_fairness"
    ~help:"Jain index over normalized per-tenant core-time" (fun () ->
      fairness t);
  List.iter
    (fun b ->
      let al = labels @ [ Registry.app b.tenant_name ] in
      Registry.gauge reg ~labels:al "skyloft_broker_granted_cores"
        ~help:"Cores currently granted" (fun () -> float_of_int b.granted);
      Registry.gauge reg ~labels:al "skyloft_broker_health"
        ~help:"0 healthy, 1 stale, 2 quarantined, 3 crashed" (fun () ->
          match b.health with
          | Healthy -> 0.0
          | Stale -> 1.0
          | Quarantined -> 2.0
          | Crashed -> 3.0);
      Registry.gauge reg ~labels:al "skyloft_broker_hoard_score"
        ~help:"Current hoard score (quarantine at hoard_cap)" (fun () ->
          float_of_int b.hoard_score);
      Registry.counter reg ~labels:al
        ~help:"Integral of granted cores over time"
        "skyloft_broker_tenant_core_ns_total" (fun () ->
          settle_core_ns t b;
          b.core_ns);
      Registry.series reg ~labels:al "skyloft_broker_granted_series"
        ~help:"Granted core count over time" b.series)
    t.tenants
