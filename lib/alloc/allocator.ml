module Time = Skyloft_sim.Time
module Engine = Skyloft_sim.Engine
module Timeseries = Skyloft_stats.Timeseries

type bounds = { guaranteed : int; burstable : int }
type raw = { runq_len : int; oldest_delay : Time.t; busy_ns : int }
type action = Granted | Reclaimed | Yielded | Degraded | Recovered

type event = {
  at : Time.t;
  app : int;
  app_name : string;
  action : action;
  delta : int;
  granted : int;
}

type config = {
  policy : Policy.t;
  interval : Time.t;
  be_guaranteed : int;
  be_burstable : int option;
  degrade_after : int option;
}

let default_config () =
  {
    policy = Policy.static ();
    interval = Time.us 5;
    be_guaranteed = 0;
    be_burstable = None;
    degrade_after = None;
  }

type binding = {
  id : int;
  app_name : string;
  kind : Policy.kind;
  bounds : bounds;
  sample : unit -> raw;
  apply : granted:int -> delta:int -> Time.t;
  mutable granted : int;
  mutable last_busy_ns : int;
  mutable stale_ticks : int;  (* consecutive ticks with a frozen signal *)
  series : Timeseries.t;
}

type t = {
  engine : Engine.t;
  policy : Policy.t;
  interval : Time.t;
  total_cores : int;
  on_event : event -> unit;
  degrade_after : int option;
  fallback : Policy.t;  (* Static, used while degraded *)
  mutable degraded : bool;
  mutable degradations : int;
  mutable apps : binding list;  (* registration order *)
  event_log : event Queue.t;
  mutable grants : int;
  mutable reclaims : int;
  mutable yields : int;
  mutable ticks : int;
  mutable charged_ns : Time.t;
  mutable running : bool;
}

let event_log_cap = 4096

let create ~engine ~policy ~interval ~total_cores ?(on_event = ignore)
    ?degrade_after () =
  if interval <= 0 then invalid_arg "Allocator.create: interval must be positive";
  if total_cores <= 0 then invalid_arg "Allocator.create: total_cores must be positive";
  (match degrade_after with
  | Some n when n <= 0 -> invalid_arg "Allocator.create: degrade_after must be positive"
  | Some _ | None -> ());
  {
    engine;
    policy;
    interval;
    total_cores;
    on_event;
    degrade_after;
    fallback = Policy.static ();
    degraded = false;
    degradations = 0;
    apps = [];
    event_log = Queue.create ();
    grants = 0;
    reclaims = 0;
    yields = 0;
    ticks = 0;
    charged_ns = 0;
    running = false;
  }

let sum_granted t = List.fold_left (fun acc b -> acc + b.granted) 0 t.apps
let free_cores t = t.total_cores - sum_granted t

let find t app =
  match List.find_opt (fun b -> b.id = app) t.apps with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "Allocator: unregistered app %d" app)

let register t ~app ~name ~kind ~bounds ~initial ~sample ~apply =
  if List.exists (fun b -> b.id = app) t.apps then
    invalid_arg "Allocator.register: app already registered";
  if bounds.guaranteed < 0 || bounds.guaranteed > bounds.burstable then
    invalid_arg "Allocator.register: need 0 <= guaranteed <= burstable";
  if bounds.burstable > t.total_cores then
    invalid_arg "Allocator.register: burstable exceeds the core pool";
  if initial < bounds.guaranteed || initial > bounds.burstable then
    invalid_arg "Allocator.register: initial grant outside bounds";
  if initial > free_cores t then
    invalid_arg "Allocator.register: initial grants exceed the core pool";
  let b =
    {
      id = app;
      app_name = name;
      kind;
      bounds;
      sample;
      apply;
      granted = initial;
      last_busy_ns = (sample ()).busy_ns;
      stale_ticks = 0;
      series = Timeseries.create ();
    }
  in
  Timeseries.record b.series ~at:(Engine.now t.engine) initial;
  t.apps <- t.apps @ [ b ]

(* Apply one accepted transition: adjust the grant, inform the runtime,
   charge its switch cost, and log the event. *)
let transition t b ~action ~delta =
  if delta = 0 then ()
  else begin
    b.granted <- b.granted + delta;
    t.charged_ns <- t.charged_ns + b.apply ~granted:b.granted ~delta;
    (match action with
    | Granted -> t.grants <- t.grants + 1
    | Reclaimed -> t.reclaims <- t.reclaims + 1
    | Yielded -> t.yields <- t.yields + 1
    | Degraded | Recovered -> ());
    let ev =
      {
        at = Engine.now t.engine;
        app = b.id;
        app_name = b.app_name;
        action;
        delta = abs delta;
        granted = b.granted;
      }
    in
    Timeseries.record b.series ~at:ev.at b.granted;
    if Queue.length t.event_log >= event_log_cap then ignore (Queue.pop t.event_log);
    Queue.push ev t.event_log;
    t.on_event ev
  end

let signal_of t b (r : raw) =
  let busy = max 0 (r.busy_ns - b.last_busy_ns) in
  b.last_busy_ns <- r.busy_ns;
  (* Staleness: cores granted and work queued, yet zero progress — the
     congestion signal is frozen (stuck tasks, stolen cores, lost ticks)
     and adaptive policies would act on fiction. *)
  if busy = 0 && r.runq_len > 0 && b.granted > 0 then
    b.stale_ticks <- b.stale_ticks + 1
  else b.stale_ticks <- 0;
  {
    Policy.kind = b.kind;
    cores = b.granted;
    runq_len = r.runq_len;
    oldest_delay = r.oldest_delay;
    utilization =
      float_of_int busy /. float_of_int (t.interval * max 1 b.granted);
  }

(* Mode transitions bypass {!transition}: they move no cores. *)
let emit_mode t action =
  let ev =
    {
      at = Engine.now t.engine;
      app = -1;
      app_name = "allocator";
      action;
      delta = 0;
      granted = sum_granted t;
    }
  in
  if Queue.length t.event_log >= event_log_cap then ignore (Queue.pop t.event_log);
  Queue.push ev t.event_log;
  t.on_event ev

let update_mode t =
  match t.degrade_after with
  | None -> ()
  | Some n ->
      let stale = List.exists (fun b -> b.stale_ticks >= n) t.apps in
      if stale && not t.degraded then begin
        t.degraded <- true;
        t.degradations <- t.degradations + 1;
        emit_mode t Degraded
      end
      else if (not stale) && t.degraded then begin
        t.degraded <- false;
        emit_mode t Recovered
      end

let tick t =
  t.ticks <- t.ticks + 1;
  let sampled = List.map (fun b -> (b, signal_of t b (b.sample ()))) t.apps in
  update_mode t;
  (* Graceful degradation: while congestion signals are stale, decide with
     the predictable Static fallback instead of an adaptive policy whose
     hysteresis state is being fed frozen inputs. *)
  let policy = if t.degraded then t.fallback else t.policy in
  let decisions =
    List.map (fun (b, s) -> (b, Policy.observe policy ~app:b.id s)) sampled
  in
  let free = ref (free_cores t) in
  (* 1. voluntary yields refill the pool (never below the guaranteed floor) *)
  List.iter
    (fun (b, d) ->
      match d with
      | Policy.Yield n ->
          let n = min n (b.granted - b.bounds.guaranteed) in
          if n > 0 then begin
            transition t b ~action:Yielded ~delta:(-n);
            free := !free + n
          end
      | Policy.Grant _ | Policy.Hold -> ())
    decisions;
  (* 2. LC grants: free pool first, then steal from BE above guaranteed *)
  List.iter
    (fun (b, d) ->
      match (b.kind, d) with
      | Policy.Lc, Policy.Grant n ->
          let want = ref (min n (b.bounds.burstable - b.granted)) in
          let from_free = min !want !free in
          if from_free > 0 then begin
            free := !free - from_free;
            want := !want - from_free;
            transition t b ~action:Granted ~delta:from_free
          end;
          List.iter
            (fun donor ->
              if !want > 0 && donor.kind = Policy.Be then begin
                let steal = min !want (donor.granted - donor.bounds.guaranteed) in
                if steal > 0 then begin
                  transition t donor ~action:Reclaimed ~delta:(-steal);
                  transition t b ~action:Granted ~delta:steal;
                  want := !want - steal
                end
              end)
            t.apps
      | _ -> ())
    decisions;
  (* 3. BE grants: whatever the pool still holds *)
  List.iter
    (fun (b, d) ->
      match (b.kind, d) with
      | Policy.Be, Policy.Grant n ->
          let take = min (min n (b.bounds.burstable - b.granted)) !free in
          if take > 0 then begin
            free := !free - take;
            transition t b ~action:Granted ~delta:take
          end
      | _ -> ())
    decisions

let start t =
  if t.running then invalid_arg "Allocator.start: already running";
  t.running <- true;
  Engine.every t.engine ~period:t.interval (fun () ->
      if t.running then tick t;
      t.running)

let stop t = t.running <- false
let granted t ~app = (find t app).granted
let series t ~app = (find t app).series
let grants t = t.grants
let reclaims t = t.reclaims
let yields t = t.yields
let ticks t = t.ticks
let charged_ns t = t.charged_ns
let events t = List.of_seq (Queue.to_seq t.event_log)
let degraded t = t.degraded
let degradations t = t.degradations

let policy_name t =
  if t.degraded then Policy.name t.fallback else Policy.name t.policy

let interval t = t.interval

(* Pull-based registration: closures read allocator state only at snapshot
   time, so attaching a registry cannot perturb the control loop. *)
let register_metrics t ?(labels = []) reg =
  let module Registry = Skyloft_obs.Registry in
  let c name help read = Registry.counter reg ~help ~labels name read in
  c "skyloft_alloc_grants_total" "Core grants applied" (fun () -> t.grants);
  c "skyloft_alloc_reclaims_total" "Forced core reclaims (LC steals)"
    (fun () -> t.reclaims);
  c "skyloft_alloc_yields_total" "Voluntary core yields" (fun () -> t.yields);
  c "skyloft_alloc_ticks_total" "Controller sampling rounds" (fun () ->
      t.ticks);
  c "skyloft_alloc_charged_ns_total"
    "Switch cost charged for allocator transitions" (fun () -> t.charged_ns);
  c "skyloft_alloc_degradations_total"
    "Falls back to the Static policy on stale signals" (fun () ->
      t.degradations);
  Registry.gauge reg ~labels "skyloft_alloc_free_cores"
    ~help:"Cores currently in the free pool" (fun () ->
      float_of_int (free_cores t));
  Registry.gauge reg ~labels "skyloft_alloc_degraded"
    ~help:"1 while deciding with the Static fallback" (fun () ->
      if t.degraded then 1.0 else 0.0);
  List.iter
    (fun b ->
      let al = labels @ [ Registry.app b.app_name ] in
      Registry.gauge reg ~labels:al "skyloft_alloc_granted_cores"
        ~help:"Cores currently granted" (fun () -> float_of_int b.granted);
      Registry.series reg ~labels:al "skyloft_alloc_granted_series"
        ~help:"Granted core count over time" b.series)
    t.apps
