module Time = Skyloft_sim.Time
module Engine = Skyloft_sim.Engine
module Timeseries = Skyloft_stats.Timeseries

(** The core allocator: a periodic controller (Shenango/Caladan's
    "iokernel" role, run in simulated time) that multiplexes a fixed pool
    of isolated cores between latency-critical and best-effort
    applications.

    Each tick it samples every registered application's congestion signals
    (runqueue length, oldest-pending-task queueing delay, utilization),
    asks the {!Policy} for a per-app decision, and arbitrates:

    - yields return cores to the free pool (never below the app's
      guaranteed floor);
    - LC grants are served from the free pool first, then by {e stealing}
      from BE apps above their guaranteed floor;
    - BE grants are served from the free pool only.

    The allocator itself never touches cores: every accepted transition
    calls the owning runtime's [apply] callback, which enforces the new
    grant through the kernel module (park / {!Skyloft_kernel.Kmod.activate}
    / {!Skyloft_kernel.Kmod.switch_to}) and returns the virtual-time cost
    it charged — the paper's §5.4 inter-application switch costs — which
    the allocator accumulates for reporting.  Decisions are exported as a
    per-app core-count {!Timeseries} and an event log. *)

type bounds = { guaranteed : int; burstable : int }
(** Per-app core bounds: [guaranteed] is never reclaimed (not even by an
    LC steal); [burstable] caps growth. *)

(** Raw congestion sample a runtime provides; the allocator derives the
    policy-facing {!Policy.signal} (utilization from the busy-time delta
    over the interval). *)
type raw = {
  runq_len : int;
  oldest_delay : Time.t;
  busy_ns : int;  (** cumulative, including the in-flight segment *)
}

type action =
  | Granted
  | Reclaimed
  | Yielded
  | Degraded  (** signals went stale; fell back to the Static policy *)
  | Recovered  (** signals move again; the configured policy resumed *)

type event = {
  at : Time.t;
  app : int;  (** [-1] for allocator-wide mode transitions *)
  app_name : string;
  action : action;
  delta : int;  (** cores moved (positive); [0] for mode transitions *)
  granted : int;  (** the app's grant after the transition *)
}

(** Runtime-facing configuration: which policy arbitrates BE core
    ownership, at what cadence, and the BE application's bounds.  Both
    runtimes accept one of these and translate it into {!register} calls. *)
type config = {
  policy : Policy.t;  (** congestion policy driving grant/reclaim decisions *)
  interval : Time.t;  (** controller period (the paper uses 5 µs) *)
  be_guaranteed : int;  (** cores the BE app never loses *)
  be_burstable : int option;
      (** cap on BE cores; [None] means every managed core *)
  degrade_after : int option;
      (** fall back to the Static policy after this many consecutive ticks
          of a stale congestion signal (an app with cores granted, work
          queued, and zero progress); [None] disables degradation *)
}

val default_config : unit -> config
(** Static policy, 5 µs interval, bounds [0 .. all cores], no
    degradation. *)

type t

val create :
  engine:Engine.t ->
  policy:Policy.t ->
  interval:Time.t ->
  total_cores:int ->
  ?on_event:(event -> unit) ->
  ?degrade_after:int ->
  unit ->
  t

val register :
  t ->
  app:int ->
  name:string ->
  kind:Policy.kind ->
  bounds:bounds ->
  initial:int ->
  sample:(unit -> raw) ->
  apply:(granted:int -> delta:int -> Time.t) ->
  unit
(** Register an application.  [initial] cores are granted immediately
    (bounds-checked; the sum of initial grants may not exceed the pool).
    [sample] is called once per tick; [apply] is called on every accepted
    transition with the new grant and the signed core delta, and returns
    the switch cost the runtime charged. *)

val start : t -> unit
(** Begin the periodic sampling loop (first tick one interval from now). *)

val stop : t -> unit

val tick : t -> unit
(** Run one sampling/arbitration round immediately (tests, benchmarks). *)

val granted : t -> app:int -> int
val series : t -> app:int -> Timeseries.t
(** Core-count timeseries, one sample per change. *)

val grants : t -> int
val reclaims : t -> int
(** Transitions applied so far; [reclaims] counts forced steals, voluntary
    yields are separate. *)

val yields : t -> int
val ticks : t -> int

val charged_ns : t -> Time.t
(** Total switch cost charged by the runtime for allocator transitions. *)

val events : t -> event list
(** Chronological log of the most recent transitions (bounded). *)

val degraded : t -> bool
(** Currently deciding with the Static fallback because some app's
    congestion signal is stale (see {!config.degrade_after}). *)

val degradations : t -> int
(** Times the allocator entered degraded mode. *)

val policy_name : t -> string
(** Name of the policy currently deciding (the fallback while degraded). *)

val interval : t -> Time.t
val free_cores : t -> int

(** [register_metrics t reg] registers the allocator's transition counters,
    free-pool and degradation gauges (under [skyloft_alloc_*]), and each
    registered application's granted-core gauge and timeseries (labelled
    with the app name).  Call after the applications have registered.
    Pull-based; never perturbs the control loop. *)
val register_metrics :
  t -> ?labels:Skyloft_obs.Registry.labels -> Skyloft_obs.Registry.t -> unit
