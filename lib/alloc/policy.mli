module Time = Skyloft_sim.Time

(** Core-allocation policies: the decision half of the {!Allocator}.

    A policy is a pure-ish controller observing one congestion {!signal}
    per registered application per sampling interval and answering with a
    {!decision} — ask for cores, give some back, or hold.  The allocator
    arbitrates the decisions against the machine's core budget and each
    application's guaranteed/burstable bounds; policies never see other
    applications and never touch the kernel module, which is what keeps
    them small (the same property the paper claims for scheduling policies
    behind Table 2). *)

type kind =
  | Lc  (** latency-critical: may steal cores from BE apps above their
            guaranteed floor *)
  | Be  (** best-effort: granted only cores the LC side leaves free *)

(** One application's congestion sample over the last interval. *)
type signal = {
  kind : kind;
  cores : int;  (** cores currently granted to the application *)
  runq_len : int;  (** tasks waiting in its runqueue *)
  oldest_delay : Time.t;
      (** queueing delay of the oldest pending task (Shenango's congestion
          signal); 0 when the queue is empty *)
  utilization : float;
      (** busy time over the interval divided by [interval * max 1 cores];
          may exceed 1.0 when the app ran on more cores than granted *)
}

type decision =
  | Grant of int  (** request this many additional cores *)
  | Yield of int  (** return this many cores to the free pool *)
  | Hold

(** The pluggable policy signature.  [observe] is called once per
    application per allocator tick; [t] carries per-application hysteresis
    state. *)
module type POLICY = sig
  type t

  val name : string
  val observe : t -> app:int -> signal -> decision
end

type t
(** A packed policy instance.  Instances are stateful (hysteresis
    counters): create a fresh one per runtime. *)

val pack : (module POLICY with type t = 'a) -> 'a -> t
(** Wrap a custom policy implementation. *)

val name : t -> string
val observe : t -> app:int -> signal -> decision

val static : unit -> t
(** The baseline split (the pre-allocator behaviour): an LC app claims
    [runq_len] cores whenever work is queued and yields everything back
    when the queue is empty; a BE app greedily asks for whatever the free
    pool holds.  No hysteresis — all swings happen at the check interval. *)

val utilization : ?hi:float -> ?lo:float -> ?hysteresis:int -> unit -> t
(** Watermark controller: after [hysteresis] consecutive intervals (default
    2) above [hi] (default 0.9) the app asks for enough cores to bring
    utilization back under [hi]; after [hysteresis] intervals below [lo]
    (default 0.2) it yields one.  The two counters reset each other, which
    is what prevents grant/reclaim oscillation under a steady load. *)

val delay : ?threshold:Time.t -> ?idle_ticks:int -> unit -> t
(** Shenango's congestion signal: an LC app whose oldest pending task has
    waited longer than [threshold] (default 10 µs) claims [runq_len] cores
    immediately; after [idle_ticks] consecutive quiet intervals (default 2:
    empty queue, utilization under 0.5) it yields one core back.  BE apps
    greedily soak the free pool, exactly as under {!static}. *)
