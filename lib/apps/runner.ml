module Coro = Skyloft_sim.Coro
module Histogram = Skyloft_stats.Histogram
module Linux = Skyloft_kernel.Linux
module Kthread = Skyloft_kernel.Kthread
module Task = Skyloft.Task
module Percpu = Skyloft.Percpu

type handle = Kt of Kthread.t | Tsk of Task.t

type t = {
  spawn : name:string -> Coro.t -> handle;
  spawn_deadline :
    name:string ->
    deadline:Skyloft_sim.Time.t ->
    on_drop:(unit -> unit) ->
    Coro.t ->
    handle;
  wakeup : handle -> unit;
  set_track_wakeup : handle -> bool -> unit;
  wakeup_hist : unit -> Histogram.t;
}

let of_linux linux =
  {
    spawn = (fun ~name body -> Kt (Linux.spawn linux ~name body));
    spawn_deadline =
      (fun ~name:_ ~deadline:_ ~on_drop:_ _ ->
        invalid_arg "Runner: deadline unsupported on the Linux baseline");
    wakeup =
      (function Kt kt -> Linux.wakeup linux kt | Tsk _ -> invalid_arg "Runner: mixed");
    set_track_wakeup =
      (fun h v ->
        match h with
        | Kt kt -> kt.Kthread.track_wakeup <- v
        | Tsk _ -> invalid_arg "Runner: mixed");
    wakeup_hist = (fun () -> Linux.wakeup_hist linux);
  }

let of_percpu rt app =
  {
    spawn = (fun ~name body -> Tsk (Percpu.spawn rt app ~name ~record:false body));
    spawn_deadline =
      (fun ~name ~deadline ~on_drop body ->
        Tsk
          (Percpu.spawn rt app ~name ~record:false ~deadline
             ~on_drop:(fun _ -> on_drop ())
             body));
    wakeup =
      (function Tsk t -> Percpu.wakeup rt t | Kt _ -> invalid_arg "Runner: mixed");
    set_track_wakeup =
      (fun h v ->
        match h with
        | Tsk t -> t.Task.track_wakeup <- v
        | Kt _ -> invalid_arg "Runner: mixed");
    wakeup_hist = (fun () -> Percpu.wakeup_hist rt);
  }
