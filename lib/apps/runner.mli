module Coro = Skyloft_sim.Coro
module Histogram = Skyloft_stats.Histogram

(** A scheduler-neutral way for workloads to spawn and wake threads.

    schbench runs unchanged on the Linux scheduler model and on the Skyloft
    runtime (Figure 5 compares exactly that); this record is the small
    surface it needs. *)

type handle

type t = {
  spawn : name:string -> Coro.t -> handle;
  spawn_deadline :
    name:string ->
    deadline:Skyloft_sim.Time.t ->
    on_drop:(unit -> unit) ->
    Coro.t ->
    handle;
      (** spawn with a kill deadline: if the thread has not exited
          [deadline] ns from now it is forcibly terminated and [on_drop]
          runs (see {!Skyloft.Percpu.spawn}).  Raises on runtimes without
          deadline support (the Linux baseline). *)
  wakeup : handle -> unit;
  set_track_wakeup : handle -> bool -> unit;
      (** exclude a thread (e.g. schbench's message thread) from the
          wakeup-latency histogram *)
  wakeup_hist : unit -> Histogram.t;
}

val of_linux : Skyloft_kernel.Linux.t -> t
val of_percpu : Skyloft.Percpu.t -> Skyloft.App.t -> t
