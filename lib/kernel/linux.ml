module Time = Skyloft_sim.Time
module Coro = Skyloft_sim.Coro
module Engine = Skyloft_sim.Engine
module Eventq = Skyloft_sim.Eventq
module Machine = Skyloft_hw.Machine
module Costs = Skyloft_hw.Costs
module Vectors = Skyloft_hw.Vectors
module Histogram = Skyloft_stats.Histogram

type policy =
  | Cfs of {
      hz : int;
      min_granularity : Time.t;
      sched_latency : Time.t;
      wakeup_granularity : Time.t;
    }
  | Rr of { hz : int; slice : Time.t }
  | Eevdf of { hz : int; base_slice : Time.t }

(* Table 5 parameter sets.  wakeup_granularity is not listed in the paper;
   we follow the kernel's convention of keeping it in the order of
   min_granularity. *)
let cfs_default =
  Cfs
    {
      hz = 250;
      min_granularity = Time.ms 3;
      sched_latency = Time.ms 24;
      wakeup_granularity = Time.ms 3;
    }

let cfs_tuned =
  Cfs
    {
      hz = 1000;
      min_granularity = Time.of_us_float 12.5;
      sched_latency = Time.us 50;
      wakeup_granularity = Time.of_us_float 12.5;
    }

let rr_default = Rr { hz = 250; slice = Time.ms 100 }
let eevdf_default = Eevdf { hz = 1000; base_slice = Time.ms 3 }
let eevdf_tuned = Eevdf { hz = 1000; base_slice = Time.of_us_float 12.5 }

type cpu = {
  idx : int;  (* machine core id *)
  mutable curr : Kthread.t option;
  rq : Krq.t;  (* Ready threads, indexed by the policy sort key *)
  mutable min_vruntime : float;
  mutable last_update : Time.t;
  mutable completion : Eventq.handle;  (* Eventq.null when no segment armed *)
  mutable completion_fire : unit -> unit;
      (* the cpu's one stable segment-end closure, re-armed per segment *)
}

type t = {
  machine : Machine.t;
  engine : Engine.t;
  policy : policy;
  cpus : cpu array;
  by_core : (int, cpu) Hashtbl.t;
  wakeups : Histogram.t;
  mutable switches : int;
  mutable alive : int;
  mutable next_tid : int;  (* per-instance tid allocator: no global state *)
}

let now t = Engine.now t.engine

let policy_hz = function Cfs { hz; _ } -> hz | Rr { hz; _ } -> hz | Eevdf { hz; _ } -> hz

(* [create] lives after the dispatch group below: it wires each cpu's
   stable completion closure, which needs [on_complete]. *)

(* ---- vruntime / deadline accounting ---------------------------------- *)

let update_curr t cpu =
  let n = now t in
  (match cpu.curr with
  | Some kt when kt.Kthread.state = Kthread.Running && n > cpu.last_update ->
      let delta = float_of_int (n - cpu.last_update) in
      kt.Kthread.vruntime <- kt.Kthread.vruntime +. (delta *. 1024.0 /. float_of_int kt.Kthread.weight)
  | _ -> ());
  cpu.last_update <- n;
  let leftmost = Krq.min_vruntime cpu.rq in
  let floor_v =
    match cpu.curr with
    | Some kt -> Float.min kt.Kthread.vruntime leftmost
    | None -> leftmost
  in
  if floor_v < infinity then cpu.min_vruntime <- Float.max cpu.min_vruntime floor_v

let avg_vruntime cpu =
  let s0, n0 =
    match cpu.curr with Some kt -> (kt.Kthread.vruntime, 1) | None -> (0.0, 0)
  in
  let sum = s0 +. Krq.sum_vruntime cpu.rq in
  let n = n0 + Krq.length cpu.rq in
  if n = 0 then cpu.min_vruntime else sum /. float_of_int n

let nr_on cpu = Krq.length cpu.rq + match cpu.curr with Some _ -> 1 | None -> 0

(* ---- enqueue / pick --------------------------------------------------- *)

let enqueue t cpu (kt : Kthread.t) =
  (* Migrating between runqueues renormalises the virtual time basis. *)
  (match Hashtbl.find_opt t.by_core kt.last_core with
  | Some src when src != cpu ->
      kt.vruntime <- kt.vruntime -. src.min_vruntime +. cpu.min_vruntime;
      kt.deadline <- kt.deadline -. src.min_vruntime +. cpu.min_vruntime
  | _ -> ());
  kt.last_core <- cpu.idx;
  (* RR keys everything at 0.0, so the (key, seq) order is plain FIFO. *)
  let key = match t.policy with Rr _ -> 0.0 | Cfs _ | Eevdf _ -> kt.vruntime in
  Krq.add cpu.rq ~key kt

let take_from_rq cpu kt = Krq.remove cpu.rq kt

let pick_next t cpu =
  match t.policy with
  | Rr _ | Cfs _ -> Krq.min_key cpu.rq
  | Eevdf _ ->
      if Krq.is_empty cpu.rq then None
      else (
        let avg = avg_vruntime cpu in
        match Krq.min_deadline_eligible cpu.rq ~bound:avg with
        | Some kt -> Some kt
        | None -> Krq.min_deadline cpu.rq)

(* Idle balance: pull one unpinned Ready thread from the busiest runqueue. *)
let steal t cpu =
  let best = ref None in
  Array.iter
    (fun other ->
      if other != cpu && Krq.has_unpinned other.rq then
        match !best with
        | Some b when nr_on b >= nr_on other -> ()
        | _ -> best := Some other)
    t.cpus;
  match !best with
  | None -> None
  | Some src -> (
      match Krq.first_unpinned src.rq with
      | None -> None
      | Some kt ->
          take_from_rq src kt;
          Some kt)

(* ---- dispatch / run --------------------------------------------------- *)

let rec process t cpu (kt : Kthread.t) =
  match kt.body with
  | Coro.Compute (d, k) ->
      kt.cont <- k;
      kt.segment_end <- now t + d;
      cpu.completion <- Engine.at t.engine kt.segment_end cpu.completion_fire
  | Coro.Yield _ ->
      (* The continuation is evaluated when the thread is dispatched again,
         so its side effects happen at resume time. *)
      update_curr t cpu;
      kt.state <- Kthread.Ready;
      cpu.curr <- None;
      enqueue t cpu kt;
      rr_requeue t kt;
      schedule t cpu ~prev:(Some kt)
  | Coro.Block k ->
      if kt.pending_wake then begin
        kt.pending_wake <- false;
        kt.body <- k ();
        process t cpu kt
      end
      else begin
        kt.body <- Coro.Block k;
        update_curr t cpu;
        eevdf_dequeue t cpu kt;
        kt.state <- Kthread.Blocked;
        cpu.curr <- None;
        schedule t cpu ~prev:(Some kt)
      end
  | Coro.Exit ->
      update_curr t cpu;
      kt.state <- Kthread.Exited;
      t.alive <- t.alive - 1;
      cpu.curr <- None;
      schedule t cpu ~prev:(Some kt)

and rr_requeue t (kt : Kthread.t) =
  match t.policy with Rr { slice; _ } -> kt.slice_left <- slice | Cfs _ | Eevdf _ -> ()

and eevdf_dequeue t cpu (kt : Kthread.t) =
  match t.policy with
  | Eevdf { base_slice; _ } ->
      let lag = avg_vruntime cpu -. kt.vruntime in
      let cap = float_of_int base_slice in
      kt.lag <- Float.max (-.cap) (Float.min cap lag)
  | Cfs _ | Rr _ -> ()

and on_complete t cpu (kt : Kthread.t) =
  cpu.completion <- Eventq.null;
  update_curr t cpu;
  kt.body <- kt.cont ();
  process t cpu kt

and dispatch t cpu (kt : Kthread.t) ~switch_cost =
  kt.state <- Kthread.Running;
  cpu.curr <- Some kt;
  let start = now t + switch_cost in
  (match kt.wake_time with
  | Some w ->
      if kt.track_wakeup then Histogram.record t.wakeups (start - w);
      kt.wake_time <- None
  | None -> ());
  kt.slice_start <- start;
  (match t.policy with
  | Rr { slice; _ } -> if kt.slice_left <= 0 then kt.slice_left <- slice
  | Eevdf { base_slice; _ } ->
      if kt.deadline <= kt.vruntime then
        kt.deadline <- kt.vruntime +. float_of_int base_slice
  | Cfs _ -> ());
  cpu.last_update <- start;
  let continue () =
    match cpu.curr with
    | Some k when k == kt && kt.state = Kthread.Running ->
        (match kt.body with
        | Coro.Yield k -> kt.body <- k ()
        | Coro.Block k when kt.resuming ->
            kt.resuming <- false;
            kt.body <- k ()
        | Coro.Block _ | Coro.Compute _ | Coro.Exit -> ());
        process t cpu kt
    | _ -> ()
  in
  if switch_cost = 0 then continue ()
  else begin
    t.switches <- t.switches + 1;
    ignore (Engine.after t.engine switch_cost continue)
  end

and schedule t cpu ~prev =
  let next =
    match pick_next t cpu with
    | Some kt ->
        take_from_rq cpu kt;
        Some kt
    | None -> steal t cpu
  in
  match next with
  | None -> cpu.curr <- None
  | Some kt ->
      let same = match prev with Some p -> p == kt | None -> false in
      let cost =
        if same then 0
        else if kt.wake_time <> None then Costs.linux_wakeup_switch_ns
        else Costs.linux_ctx_switch_ns
      in
      dispatch t cpu kt ~switch_cost:cost

(* ---- construction ------------------------------------------------------- *)

let create machine policy ~cores =
  if cores = [] then invalid_arg "Linux.create: no cores";
  let cpus =
    Array.of_list
      (List.map
         (fun idx ->
           {
             idx;
             curr = None;
             rq = Krq.create ();
             min_vruntime = 0.0;
             last_update = 0;
             completion = Eventq.null;
             completion_fire = ignore;
           })
         cores)
  in
  let t =
    {
      machine;
      engine = Machine.engine machine;
      policy;
      cpus;
      by_core = Hashtbl.create 64;
      wakeups = Histogram.create ();
      switches = 0;
      alive = 0;
      next_tid = 1;
    }
  in
  Array.iter (fun c -> Hashtbl.replace t.by_core c.idx c) cpus;
  (* Each cpu's stable completion closure reads [curr] when it fires: a
     completion is only armed for the running thread, and every path that
     takes the thread off the cpu cancels it first. *)
  Array.iter
    (fun c ->
      c.completion_fire <-
        (fun () ->
          match c.curr with Some kt -> on_complete t c kt | None -> ()))
    cpus;
  t

(* ---- preemption -------------------------------------------------------- *)

let preempt_curr t cpu =
  match cpu.curr with
  | Some kt when not (Eventq.is_null cpu.completion) ->
      update_curr t cpu;
      Engine.cancel t.engine cpu.completion;
      cpu.completion <- Eventq.null;
      let remaining = max 0 (kt.segment_end - now t) in
      kt.body <- Coro.Compute (remaining, kt.cont);
      kt.state <- Kthread.Ready;
      cpu.curr <- None;
      enqueue t cpu kt;
      schedule t cpu ~prev:(Some kt)
  | _ -> ()

(* Interrupt overhead pushes the running segment's completion back. *)
let steal_time t cpu cost =
  match cpu.curr with
  | Some kt when not (Eventq.is_null cpu.completion) ->
      Engine.cancel t.engine cpu.completion;
      kt.segment_end <- kt.segment_end + cost;
      cpu.completion <- Engine.at t.engine kt.segment_end cpu.completion_fire
  | _ -> ()

let tick_period t = max 1 (1_000_000_000 / policy_hz t.policy)

let on_tick t cpu =
  steal_time t cpu Costs.kernel_tick_ns;
  update_curr t cpu;
  match cpu.curr with
  | None -> ()
  | Some kt -> (
      if not (Krq.is_empty cpu.rq) then
        match t.policy with
        | Cfs { min_granularity; sched_latency; _ } ->
            let slice =
              max min_granularity (sched_latency / max 1 (nr_on cpu))
            in
            if now t - kt.slice_start >= slice then preempt_curr t cpu
        | Rr _ ->
            kt.slice_left <- kt.slice_left - tick_period t;
            if kt.slice_left <= 0 then begin
              rr_requeue t kt;
              preempt_curr t cpu
            end
        | Eevdf { base_slice; _ } ->
            if now t - kt.slice_start >= base_slice then begin
              kt.deadline <- kt.vruntime +. float_of_int base_slice;
              preempt_curr t cpu
            end)

let install_timers t =
  Array.iter
    (fun cpu ->
      let core = Machine.core t.machine cpu.idx in
      Machine.set_kernel_handler core (fun v ->
          if v = Vectors.timer then on_tick t cpu);
      Machine.timer_set_periodic t.machine ~core:cpu.idx ~hz:(policy_hz t.policy))
    t.cpus

(* create + timers: expose a single constructor. *)
let create machine policy ~cores =
  let t = create machine policy ~cores in
  install_timers t;
  t

(* ---- wakeup / spawn ---------------------------------------------------- *)

let select_cpu t (kt : Kthread.t) =
  match kt.affinity with
  | Some core -> (
      match Hashtbl.find_opt t.by_core core with
      | Some cpu -> cpu
      | None -> invalid_arg "Linux: affinity outside managed cores")
  | None -> (
      let prev = Hashtbl.find_opt t.by_core kt.last_core in
      match prev with
      | Some cpu when cpu.curr = None -> cpu
      | _ -> (
          let idle = Array.to_list t.cpus |> List.find_opt (fun c -> c.curr = None) in
          match idle with
          | Some cpu -> cpu
          | None ->
              (* wake_affine: stay on the previous CPU unless it is clearly
                 more loaded than the least-loaded one *)
              let least =
                Array.fold_left
                  (fun best c -> if nr_on c < nr_on best then c else best)
                  t.cpus.(0) t.cpus
              in
              (match prev with
              | Some p when nr_on p <= nr_on least + 1 -> p
              | _ -> least)))

let wakeup_place t cpu (kt : Kthread.t) =
  match t.policy with
  | Cfs { sched_latency; _ } ->
      let credit = float_of_int sched_latency /. 2.0 in
      kt.vruntime <- Float.max kt.vruntime (cpu.min_vruntime -. credit)
  | Eevdf { base_slice; _ } ->
      kt.vruntime <- avg_vruntime cpu -. kt.lag;
      kt.deadline <- kt.vruntime +. float_of_int base_slice
  | Rr _ -> ()

let wakeup_preempt t cpu (kt : Kthread.t) =
  match cpu.curr with
  | None -> ()
  | Some curr -> (
      match t.policy with
      | Cfs { wakeup_granularity; _ } ->
          update_curr t cpu;
          if kt.vruntime +. float_of_int wakeup_granularity < curr.Kthread.vruntime then
            preempt_curr t cpu
      | Eevdf _ ->
          update_curr t cpu;
          if kt.deadline < curr.Kthread.deadline then preempt_curr t cpu
      | Rr _ -> ())

let wakeup t (kt : Kthread.t) =
  match kt.state with
  | Kthread.Blocked ->
      kt.state <- Kthread.Ready;
      kt.resuming <- true;
      kt.wake_time <- Some (now t);
      let cpu = select_cpu t kt in
      wakeup_place t cpu kt;
      if cpu.curr = None then begin
        enqueue t cpu kt;
        (* the woken thread is the only candidate unless a steal beats it;
           schedule picks by policy *)
        match pick_next t cpu with
        | Some next ->
            take_from_rq cpu next;
            dispatch t cpu next
              ~switch_cost:
                (if next.Kthread.wake_time <> None then Costs.linux_wakeup_switch_ns
                 else Costs.linux_ctx_switch_ns)
        | None -> ()
      end
      else begin
        enqueue t cpu kt;
        wakeup_preempt t cpu kt
      end
  | Kthread.Running | Kthread.Ready -> kt.pending_wake <- true
  | Kthread.Suspended | Kthread.Exited -> ()

let spawn t ~name ?affinity ?weight body =
  let tid = t.next_tid in
  t.next_tid <- tid + 1;
  let kt = Kthread.create ~tid ~name ?affinity ?weight body in
  t.alive <- t.alive + 1;
  let cpu = select_cpu t kt in
  kt.vruntime <- cpu.min_vruntime;
  (match t.policy with
  | Eevdf { base_slice; _ } -> kt.deadline <- kt.vruntime +. float_of_int base_slice
  | Rr { slice; _ } -> kt.slice_left <- slice
  | Cfs _ -> ());
  kt.last_core <- cpu.idx;
  if cpu.curr = None then dispatch t cpu kt ~switch_cost:Costs.linux_ctx_switch_ns
  else enqueue t cpu kt;
  kt

let current t ~core =
  match Hashtbl.find_opt t.by_core core with Some cpu -> cpu.curr | None -> None

let nr_runnable t =
  Array.fold_left (fun acc cpu -> acc + nr_on cpu) 0 t.cpus

let wakeup_hist t = t.wakeups
let context_switches t = t.switches
let alive t = t.alive
