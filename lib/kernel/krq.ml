(* Indexed runqueue for the Linux scheduler models.

   The previous representation was a plain [Kthread.t list] in enqueue
   order: O(n) append on enqueue, O(n) scans for the CFS min-vruntime and
   EEVDF min-deadline picks, and O(n) removal.  This module replaces it
   with an augmented AVL tree ordered by [(key, seq)] where [key] is the
   policy sort key (vruntime for CFS/EEVDF, 0.0 for RR so the order
   degenerates to FIFO) and [seq] is a fresh per-enqueue sequence number.
   Because the scheduler never mutates vruntime/deadline/affinity while a
   thread sits in a runqueue (only [curr] is accounted), the keys
   snapshotted at insert stay valid for the entry's whole residence.

   Tie-breaking is identical to the old left-fold with strict [<] over
   the enqueue-ordered list: among equal keys the earliest-enqueued
   thread (smallest [seq]) wins. *)

type entry = {
  kt : Kthread.t;
  key : float;  (* policy sort key: vruntime (CFS/EEVDF) or 0.0 (RR) *)
  seq : int;  (* enqueue order; unique tiebreak *)
  vr : float;  (* vruntime snapshot at enqueue *)
  dl : float;  (* EEVDF deadline snapshot at enqueue *)
  unpinned : bool;  (* affinity = None at enqueue (never mutated enqueued) *)
}

type tree =
  | Leaf
  | Node of {
      l : tree;
      e : entry;
      r : tree;
      height : int;
      size : int;
      sum_vr : float;  (* sum of vruntime over the subtree *)
      min_vr : float;  (* min vruntime over the subtree *)
      min_dl : entry;  (* min (deadline, seq) over the subtree *)
      first_unp : entry option;  (* min seq among unpinned, if any *)
    }

let height = function Leaf -> 0 | Node n -> n.height
let size = function Leaf -> 0 | Node n -> n.size
let sum_vr = function Leaf -> 0.0 | Node n -> n.sum_vr
let min_vr = function Leaf -> infinity | Node n -> n.min_vr
let min_dl_opt = function Leaf -> None | Node n -> Some n.min_dl
let first_unp = function Leaf -> None | Node n -> n.first_unp

(* min by (deadline, seq); seq is unique so the order is total. *)
let pick_dl a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some ea, Some eb ->
      if ea.dl < eb.dl || (ea.dl = eb.dl && ea.seq < eb.seq) then a else b

let pick_unp a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some ea, Some eb -> if ea.seq < eb.seq then a else b

let mk l e r =
  let min_dl =
    match pick_dl (pick_dl (Some e) (min_dl_opt l)) (min_dl_opt r) with
    | Some m -> m
    | None -> assert false
  in
  Node
    {
      l;
      e;
      r;
      height = 1 + max (height l) (height r);
      size = 1 + size l + size r;
      sum_vr = e.vr +. sum_vr l +. sum_vr r;
      min_vr = Float.min e.vr (Float.min (min_vr l) (min_vr r));
      min_dl;
      first_unp =
        pick_unp
          (pick_unp (if e.unpinned then Some e else None) (first_unp l))
          (first_unp r);
    }

(* Standard AVL rebalance: callable when the two sides differ by at most 2
   (the invariant after a single insert or delete below). *)
let balance l e r =
  if height l > height r + 1 then
    match l with
    | Node { l = ll; e = le; r = lr; _ } ->
        if height ll >= height lr then mk ll le (mk lr e r)
        else (
          match lr with
          | Node { l = lrl; e = lre; r = lrr; _ } ->
              mk (mk ll le lrl) lre (mk lrr e r)
          | Leaf -> assert false)
    | Leaf -> assert false
  else if height r > height l + 1 then
    match r with
    | Node { l = rl; e = re; r = rr; _ } ->
        if height rr >= height rl then mk (mk l e rl) re rr
        else (
          match rl with
          | Node { l = rll; e = rle; r = rlr; _ } ->
              mk (mk l e rll) rle (mk rlr re rr)
          | Leaf -> assert false)
    | Leaf -> assert false
  else mk l e r

let cmp_key (k1, s1) (k2, s2) = if k1 = k2 then compare s1 s2 else compare k1 k2

let rec insert t e =
  match t with
  | Leaf -> mk Leaf e Leaf
  | Node n ->
      if cmp_key (e.key, e.seq) (n.e.key, n.e.seq) < 0 then
        balance (insert n.l e) n.e n.r
      else balance n.l n.e (insert n.r e)

let rec pop_min = function
  | Leaf -> assert false
  | Node { l = Leaf; e; r; _ } -> (e, r)
  | Node { l; e; r; _ } ->
      let m, l' = pop_min l in
      (m, balance l' e r)

let rec delete t ~key ~seq =
  match t with
  | Leaf -> Leaf (* absent: removal is a no-op, like the old List.filter *)
  | Node n ->
      let c = cmp_key (key, seq) (n.e.key, n.e.seq) in
      if c < 0 then balance (delete n.l ~key ~seq) n.e n.r
      else if c > 0 then balance n.l n.e (delete n.r ~key ~seq)
      else (
        match (n.l, n.r) with
        | l, Leaf -> l
        | l, r ->
            let m, r' = pop_min r in
            balance l m r')

let rec leftmost = function
  | Leaf -> None
  | Node { l = Leaf; e; _ } -> Some e
  | Node { l; _ } -> leftmost l

(* Min (deadline, seq) among entries with key <= bound.  Entries with
   key <= bound form a prefix of the (key, seq) order, so we walk down
   the spine combining cached subtree minima: O(log n). *)
let rec min_dl_prefix t ~bound best =
  match t with
  | Leaf -> best
  | Node n ->
      if n.e.key <= bound then
        let best = pick_dl best (min_dl_opt n.l) in
        let best = pick_dl best (Some n.e) in
        min_dl_prefix n.r ~bound best
      else min_dl_prefix n.l ~bound best

(* ---- public interface -------------------------------------------------- *)

type t = {
  mutable root : tree;
  index : (int, float * int) Hashtbl.t;  (* tid -> (key, seq) *)
  mutable next_seq : int;
}

let create () = { root = Leaf; index = Hashtbl.create 16; next_seq = 0 }
let length t = size t.root
let is_empty t = t.root = Leaf
let mem t (kt : Kthread.t) = Hashtbl.mem t.index kt.Kthread.tid

let add t ~key (kt : Kthread.t) =
  if mem t kt then invalid_arg "Krq.add: kthread already enqueued";
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let e =
    {
      kt;
      key;
      seq;
      vr = kt.Kthread.vruntime;
      dl = kt.Kthread.deadline;
      unpinned = kt.Kthread.affinity = None;
    }
  in
  t.root <- insert t.root e;
  Hashtbl.replace t.index kt.Kthread.tid (key, seq)

let remove t (kt : Kthread.t) =
  match Hashtbl.find_opt t.index kt.Kthread.tid with
  | None -> ()
  | Some (key, seq) ->
      t.root <- delete t.root ~key ~seq;
      Hashtbl.remove t.index kt.Kthread.tid

let min_key t = match leftmost t.root with None -> None | Some e -> Some e.kt
let min_vruntime t = min_vr t.root
let sum_vruntime t = sum_vr t.root

let min_deadline t =
  match min_dl_opt t.root with None -> None | Some e -> Some e.kt

let min_deadline_eligible t ~bound =
  match min_dl_prefix t.root ~bound None with
  | None -> None
  | Some e -> Some e.kt

let has_unpinned t = first_unp t.root <> None

let first_unpinned t =
  match first_unp t.root with None -> None | Some e -> Some e.kt

let to_list t =
  let rec go acc = function
    | Leaf -> acc
    | Node { l; e; r; _ } -> go (e.kt :: go acc r) l
  in
  go [] t.root
