module Time = Skyloft_sim.Time
module Coro = Skyloft_sim.Coro

type state = Ready | Running | Blocked | Suspended | Exited

type t = {
  tid : int;
  name : string;
  mutable state : state;
  mutable affinity : int option;
  mutable last_core : int;
  mutable body : Coro.t;
  mutable cont : unit -> Coro.t;
  mutable segment_end : Time.t;
  mutable wake_time : Time.t option;
  mutable pending_wake : bool;
  mutable resuming : bool;
  mutable track_wakeup : bool;
  mutable vruntime : float;
  mutable deadline : float;
  mutable lag : float;
  mutable slice_left : Time.t;
  mutable slice_start : Time.t;
  weight : int;
}

let create ~tid ~name ?affinity ?(weight = 1024) body =
  {
    tid;
    name;
    state = Ready;
    affinity;
    last_core = (match affinity with Some c -> c | None -> 0);
    body;
    cont = (fun () -> Coro.Exit);
    segment_end = 0;
    wake_time = None;
    pending_wake = false;
    resuming = false;
    track_wakeup = true;
    vruntime = 0.0;
    deadline = 0.0;
    lag = 0.0;
    slice_left = 0;
    slice_start = 0;
    weight;
  }

let is_runnable t = match t.state with Ready | Running -> true | _ -> false

let state_name = function
  | Ready -> "ready"
  | Running -> "running"
  | Blocked -> "blocked"
  | Suspended -> "suspended"
  | Exited -> "exited"

let pp ppf t = Format.fprintf ppf "%s[%d] %s" t.name t.tid (state_name t.state)
