module Time = Skyloft_sim.Time
module Engine = Skyloft_sim.Engine
module Machine = Skyloft_hw.Machine
module Costs = Skyloft_hw.Costs
module Vectors = Skyloft_hw.Vectors

exception Binding_rule_violation of string

type state = Parked | Active | Exited

type kthread = {
  tid : int;
  app : int;
  core : int;
  ctx : Machine.uintr_ctx;
  mutable state : state;
}

type t = {
  machine : Machine.t;
  mutable threads : kthread list;
  mutable next_tid : int;  (* per-instance tid allocator: no global state *)
  steal_handlers : (int, duration:Time.t -> unit) Hashtbl.t;
  stolen : (int, Time.t) Hashtbl.t;  (* core -> end of the current steal *)
  mutable steals : int;
}

let create machine =
  {
    machine;
    threads = [];
    next_tid = 1;
    steal_handlers = Hashtbl.create 8;
    stolen = Hashtbl.create 8;
    steals = 0;
  }

let violation fmt = Format.kasprintf (fun s -> raise (Binding_rule_violation s)) fmt

let kthreads_on t ~core =
  List.filter (fun kt -> kt.core = core && kt.state <> Exited) t.threads

let active_on t ~core =
  List.find_opt (fun kt -> kt.core = core && kt.state = Active) t.threads

let park_on_cpu t ~app ~core =
  if core < 0 || core >= Machine.n_cores t.machine then
    invalid_arg "Kmod.park_on_cpu: bad core";
  let tid = t.next_tid in
  t.next_tid <- tid + 1;
  let kt =
    { tid; app; core; ctx = Machine.uintr_create_ctx (); state = Parked }
  in
  t.threads <- kt :: t.threads;
  kt

let activate t kt =
  (match kt.state with
  | Exited -> violation "activate: kthread %d already exited" kt.tid
  | Active -> violation "activate: kthread %d already active" kt.tid
  | Parked -> ());
  (match active_on t ~core:kt.core with
  | Some other ->
      violation "activate: core %d already has active kthread %d (app %d)" kt.core
        other.tid other.app
  | None -> ());
  kt.state <- Active;
  Machine.uintr_install t.machine ~core:kt.core kt.ctx;
  Costs.linux_wakeup_switch_ns

let switch_to t ~from ~target =
  if from == target then violation "switch_to: from and target are the same kthread";
  if from.state <> Active then violation "switch_to: kthread %d is not active" from.tid;
  if target.state = Exited then violation "switch_to: target %d exited" target.tid;
  if from.core <> target.core then
    violation "switch_to: cross-core switch (%d -> %d)" from.core target.core;
  (* Both transitions happen atomically in the kernel, upholding the
     binding rule throughout (§3.3). *)
  from.state <- Parked;
  target.state <- Active;
  Machine.uintr_install t.machine ~core:target.core target.ctx;
  Costs.app_switch_ns

let terminate t kt =
  (match kt.state with
  | Exited -> ()
  | Active ->
      let others =
        List.filter (fun o -> o != kt) (kthreads_on t ~core:kt.core)
      in
      if others <> [] then
        violation
          "terminate: active kthread %d exits while %d parked kthread(s) remain on core \
           %d — wake one first"
          kt.tid (List.length others) kt.core;
      Machine.uintr_uninstall t.machine ~core:kt.core
  | Parked -> ());
  kt.state <- Exited

let app_of kt = kt.app
let core_of kt = kt.core
let is_active kt = kt.state = Active
let uintr_ctx kt = kt.ctx

let timer_enable _t kt =
  Machine.uintr_set_uinv kt.ctx Vectors.timer;
  Machine.uintr_set_sn kt.ctx true

let timer_set_hz t ~core ~hz =
  Machine.timer_set_periodic t.machine ~core ~hz;
  Time.of_cycles Costs.lapic_timer_program

(* ---- imperfect isolation: the host kernel steals a core ---------------- *)

let on_steal t ~core f = Hashtbl.replace t.steal_handlers core f
let stolen_until t ~core = Hashtbl.find_opt t.stolen core

let steal_core t ~core ~duration =
  if duration <= 0 then invalid_arg "Kmod.steal_core: duration must be positive";
  if core < 0 || core >= Machine.n_cores t.machine then
    invalid_arg "Kmod.steal_core: bad core";
  t.steals <- t.steals + 1;
  let engine = Machine.engine t.machine in
  let until =
    let fresh = Engine.now engine + duration in
    match Hashtbl.find_opt t.stolen core with
    | Some existing -> max existing fresh  (* overlapping steals extend *)
    | None -> fresh
  in
  Hashtbl.replace t.stolen core until;
  let c = Machine.core t.machine core in
  Machine.mask_interrupts c;
  (match Hashtbl.find_opt t.steal_handlers core with
  | Some f -> f ~duration
  | None -> ());
  ignore
    (Engine.at engine until (fun () ->
         (* Only the latest steal's expiry hands the core back. *)
         if Hashtbl.find_opt t.stolen core = Some until then begin
           Hashtbl.remove t.stolen core;
           Machine.unmask_interrupts c
         end))

let steals t = t.steals

let register_metrics t ?(labels = []) reg =
  Skyloft_obs.Registry.counter reg ~labels "skyloft_kmod_steals_total"
    ~help:"Host-kernel core steals on isolated cores" (fun () -> t.steals)
