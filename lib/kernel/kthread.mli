module Time = Skyloft_sim.Time
module Coro = Skyloft_sim.Coro

(** Kernel threads (Linux [task_struct] model).

    Shared by the Linux scheduler models (where kthreads are the scheduling
    unit) and by the Skyloft kernel module (where one kthread per
    application per isolated core is parked/activated under the Single
    Binding Rule).  The per-class scheduling fields (vruntime, EEVDF
    deadline/lag, RR slice) live here so scheduler classes stay stateless. *)

type state =
  | Ready  (** runnable, waiting in some runqueue *)
  | Running  (** currently on a CPU *)
  | Blocked  (** waiting for a wakeup (futex, I/O, ...) *)
  | Suspended  (** parked by the Skyloft kernel module: invisible to the
                   kernel scheduler *)
  | Exited

type t = {
  tid : int;
  name : string;
  mutable state : state;
  mutable affinity : int option;  (** pinned core, [None] = any managed core *)
  mutable last_core : int;  (** last core this thread ran on *)
  mutable body : Coro.t;  (** what the thread does when next dispatched *)
  mutable cont : unit -> Coro.t;  (** continuation of the in-flight compute *)
  mutable segment_end : Time.t;  (** absolute end of the in-flight compute *)
  mutable wake_time : Time.t option;  (** set by wakeup, cleared when it runs:
                                          wakeup-latency probe *)
  mutable pending_wake : bool;  (** a wakeup arrived while not blocked; the
                                    next block consumes it immediately
                                    (futex/semaphore semantics) *)
  mutable resuming : bool;  (** woken from a block: the next dispatch resumes
                                the block continuation instead of re-blocking *)
  mutable track_wakeup : bool;  (** record wakeup latencies for this thread *)
  mutable vruntime : float;  (** CFS / EEVDF virtual time, ns *)
  mutable deadline : float;  (** EEVDF virtual deadline, ns *)
  mutable lag : float;  (** EEVDF lag at dequeue, ns *)
  mutable slice_left : Time.t;  (** RR remaining slice *)
  mutable slice_start : Time.t;  (** when the current slice started *)
  weight : int;  (** load weight; 1024 = nice 0 *)
}

val create : tid:int -> name:string -> ?affinity:int -> ?weight:int -> Coro.t -> t
(** Tids are allocated per scheduler instance ({!Kmod}, {!Linux}) — there
    is no process-wide counter, so concurrent simulations in different
    domains cannot perturb each other's tids. *)

val is_runnable : t -> bool
val pp : Format.formatter -> t -> unit
