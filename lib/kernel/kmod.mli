module Time = Skyloft_sim.Time
module Machine = Skyloft_hw.Machine

(** The Skyloft kernel module (the [/dev/skyloft] ioctl surface, §4.2).

    Tracks one kernel thread per (application, isolated core) pair and
    enforces the paper's Single Binding Rule:

    {e No two or more active kernel threads may be bound to the same
    isolated core simultaneously (§3.3).}

    Violations raise [Binding_rule_violation] — they indicate a scheduler
    bug, exactly the class of error the rule exists to exclude.  Operations
    return the virtual-time cost the caller must charge (the §5.4 switch
    costs); the kernel module itself never advances the clock. *)

exception Binding_rule_violation of string

type kthread

type t

val create : Machine.t -> t

val park_on_cpu : t -> app:int -> core:int -> kthread
(** [skyloft_park_on_cpu]: create a kernel thread for application [app],
    bind it to [core], and suspend it (inactive).  Its UINTR receiver
    context exists from birth so senders can target it while parked. *)

val activate : t -> kthread -> Time.t
(** [skyloft_wakeup]: make a parked kthread the active one on its core.
    Raises {!Binding_rule_violation} if another kthread is already active
    there.  Installs the kthread's UINTR context on the core.  Returns the
    kernel wakeup cost to charge. *)

val switch_to : t -> from:kthread -> target:kthread -> Time.t
(** [skyloft_switch_to]: atomically suspend [from] and activate [target] on
    the same core, swapping the installed UINTR context.  Returns the
    inter-application switch cost (§5.4: 1,905 ns).  Raises
    {!Binding_rule_violation} if [from] is not active, if the two kthreads
    are bound to different cores, or if [from == target]. *)

val terminate : t -> kthread -> unit
(** Mark a kthread exited and release its binding.  An active kthread may
    only terminate if it is the last non-exited kthread on its core
    (otherwise the parked ones could never be woken again, §3.3). *)

val active_on : t -> core:int -> kthread option
val app_of : kthread -> int
val core_of : kthread -> int
val is_active : kthread -> bool
val uintr_ctx : kthread -> Machine.uintr_ctx
val kthreads_on : t -> core:int -> kthread list

(** {1 User-interrupt / timer configuration (ioctl lower half)} *)

val timer_enable : t -> kthread -> unit
(** [skyloft_timer_enable]: switch the kthread's UINV to the hardware timer
    vector and set UPID.SN, so LAPIC timer interrupts on its core are
    recognised as user interrupts while it runs (§3.2).  The LibOS must
    still prime the PIR with a self-SENDUIPI before the first timer fires. *)

val timer_set_hz : t -> core:int -> hz:int -> Time.t
(** [skyloft_timer_set_hz]: program the core's LAPIC timer.  Returns the
    MSR-write cost. *)

(** {1 Imperfect isolation (fault injection)}

    In practice "isolated" cores are not: the host kernel can still run
    bound workqueues, vmstat updates, or an RT throttling tick on them.
    {!steal_core} models the core vanishing for a bounded interval —
    interrupts are masked for the duration (arriving vectors queue and
    replay at hand-back, exactly like a real kernel-mode burst), and the
    owning runtime's registered handler is told so it can freeze the
    running task's progress. *)

val steal_core : t -> core:int -> duration:Time.t -> unit
(** The host kernel takes [core] for [duration] nanoseconds starting now.
    Overlapping steals extend the outage rather than ending it early. *)

val on_steal : t -> core:int -> (duration:Time.t -> unit) -> unit
(** Register the runtime-side reaction for steals of [core] (at most one;
    later registrations replace earlier ones).  Called synchronously at
    the start of each steal. *)

val stolen_until : t -> core:int -> Time.t option
(** End of the steal currently in progress on [core], if any. *)

val steals : t -> int
(** Total {!steal_core} invocations so far. *)

(** [register_metrics t reg] registers the kernel module's counters (under
    [skyloft_kmod_*]).  Pull-based; never perturbs the simulation. *)
val register_metrics :
  t -> ?labels:Skyloft_obs.Registry.labels -> Skyloft_obs.Registry.t -> unit
