(** Indexed runqueue for the Linux scheduler models.

    An augmented balanced tree ordered by [(key, seq)] — [key] is the
    policy sort key (vruntime under CFS/EEVDF, 0.0 under RR so the order
    degenerates to enqueue-order FIFO) and [seq] a fresh per-enqueue
    sequence number.  Replaces the former [Kthread.t list] (O(n) append,
    O(n) picks) with O(log n) enqueue/dequeue and O(log n) or O(1)
    queries, while reproducing the list semantics exactly: among equal
    keys the earliest-enqueued thread wins, as with the old strict-[<]
    left fold.

    Soundness note: the Linux models never mutate a kthread's vruntime,
    deadline or affinity while it sits in a runqueue (accounting touches
    only the running [curr]), so the values snapshotted at {!add} remain
    the live values for the entry's whole residence. *)

type t

val create : unit -> t
val length : t -> int
(** O(1). *)

val is_empty : t -> bool
(** O(1). *)

val mem : t -> Kthread.t -> bool

val add : t -> key:float -> Kthread.t -> unit
(** Enqueue with the given policy key, snapshotting the kthread's
    vruntime/deadline/affinity.  O(log n).
    @raise Invalid_argument if the kthread is already enqueued. *)

val remove : t -> Kthread.t -> unit
(** Dequeue; a no-op when absent (like the old [List.filter]).  O(log n). *)

val min_key : t -> Kthread.t option
(** Entry with the smallest [(key, seq)]: the CFS min-vruntime pick, or
    the FIFO head under RR.  O(log n). *)

val min_vruntime : t -> float
(** Smallest vruntime in the queue; [infinity] when empty.  O(1). *)

val sum_vruntime : t -> float
(** Sum of vruntimes over the queue; [0.0] when empty (EEVDF average).
    O(1). *)

val min_deadline : t -> Kthread.t option
(** Entry with the smallest [(deadline, seq)] — the EEVDF pick when no
    thread is eligible.  O(1). *)

val min_deadline_eligible : t -> bound:float -> Kthread.t option
(** Smallest [(deadline, seq)] among entries with [key <= bound] — the
    EEVDF eligible pick ([bound] = average vruntime).  O(log n). *)

val has_unpinned : t -> bool
(** O(1). *)

val first_unpinned : t -> Kthread.t option
(** Earliest-enqueued entry with no affinity — the idle-balance steal
    victim.  O(1). *)

val to_list : t -> Kthread.t list
(** In [(key, seq)] order; for tests. *)
