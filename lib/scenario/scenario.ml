module Time = Skyloft_sim.Time
module Engine = Skyloft_sim.Engine
module Rng = Skyloft_sim.Rng
module Coro = Skyloft_sim.Coro
module Dist = Skyloft_sim.Dist
module Topology = Skyloft_hw.Topology
module Machine = Skyloft_hw.Machine
module Kmod = Skyloft_kernel.Kmod
module Histogram = Skyloft_stats.Histogram
module App = Skyloft.App
module Allocator = Skyloft_alloc.Allocator
module Alloc_policy = Skyloft_alloc.Policy
module Loadgen = Skyloft_net.Loadgen

type bounds = { guaranteed : int; burstable : int option }
type lc_spec = { lc_name : string; shape : Shape.t; arrival : Arrival.t }

type be_spec = {
  be_name : string;
  chunk : Time.t;
  workers : int option;  (* default: one per worker core *)
  bounds : bounds;
}

type tenant = Lc of lc_spec | Be of be_spec

type t = {
  name : string;
  cores : int;
  timer_hz : int;
  quantum : Time.t;
  tenants : tenant list;
}

let lc ~name ~shape ~arrival = Lc { lc_name = name; shape; arrival }

let be ?(chunk = Time.us 50) ?workers ?(guaranteed = 0) ?burstable ~name () =
  Be { be_name = name; chunk; workers; bounds = { guaranteed; burstable } }

let make ?(timer_hz = 100_000) ?(quantum = Time.us 30) ~name ~cores tenants =
  { name; cores; timer_hz; quantum; tenants }

let tenant_name = function
  | Lc { lc_name; _ } -> lc_name
  | Be { be_name; _ } -> be_name

let validate t =
  if t.cores < 1 then invalid_arg "Scenario: cores must be >= 1";
  if t.timer_hz < 1 then invalid_arg "Scenario: timer_hz must be >= 1";
  if t.quantum < 1 then invalid_arg "Scenario: quantum must be >= 1";
  let names = List.map tenant_name t.tenants in
  if List.length (List.sort_uniq String.compare names) <> List.length names then
    invalid_arg "Scenario: duplicate tenant names";
  let lcs, bes =
    List.partition (function Lc _ -> true | Be _ -> false) t.tenants
  in
  if lcs = [] then invalid_arg "Scenario: needs at least one LC tenant";
  if List.length bes > 1 then
    invalid_arg
      "Scenario: at most one BE tenant (the runtimes attach a single \
       best-effort application to the core allocator)";
  List.iter
    (function
      | Lc { shape; arrival; _ } ->
          Shape.validate shape;
          Arrival.validate arrival
      | Be { workers; chunk; bounds; _ } ->
          (match workers with
          | Some w when w < 1 -> invalid_arg "Scenario: BE workers must be >= 1"
          | _ -> ());
          if chunk < 1 then invalid_arg "Scenario: BE chunk must be >= 1";
          if bounds.guaranteed < 0 || bounds.guaranteed > t.cores then
            invalid_arg "Scenario: BE guaranteed cores out of range";
          (match bounds.burstable with
          | Some b when b < bounds.guaranteed || b > t.cores ->
              invalid_arg "Scenario: BE burstable cores out of range"
          | _ -> ()))
    t.tenants

let mean_rate_rps t =
  List.fold_left
    (fun acc -> function
      | Lc { arrival; _ } -> acc +. Arrival.mean_rate arrival
      | Be _ -> acc)
    0.0 t.tenants

(* Long-run LC compute demand as a fraction of the worker pool. *)
let offered_load t =
  let demand =
    List.fold_left
      (fun acc -> function
        | Lc { arrival; shape; _ } ->
            acc +. (Arrival.mean_rate arrival *. Shape.mean_service shape /. 1e9)
        | Be _ -> acc)
      0.0 t.tenants
  in
  demand /. float_of_int t.cores

(* ---- compilation onto the runtimes -------------------------------------- *)

type runtime = Percpu | Centralized | Hybrid | Worksteal

let runtime_name = function
  | Percpu -> "percpu"
  | Centralized -> "centralized"
  | Hybrid -> "hybrid"
  | Worksteal -> "worksteal"

let runtimes = [ Percpu; Centralized; Hybrid; Worksteal ]

type tenant_digest = {
  tenant : string;
  submitted : int;
  completed : int;
  latency : Histogram.t;
}

type digest = {
  scenario : string;
  runtime : string;
  target : int;
  submitted : int;
  completed : int;
  last_completion : Time.t;
  tenants : tenant_digest list;
  be_preemptions : int;
  alloc_grants : int;
  alloc_reclaims : int;
}

(* Merged LC latency across tenants: per-tenant histogram snapshots are
   mergeable — count-exact and percentile-equal to central recording (the
   QCheck property in test/test_properties.ml). *)
let merged_latency d =
  let all = Histogram.create () in
  List.iter (fun td -> Histogram.merge_into ~src:td.latency ~dst:all) d.tenants;
  all

(* Runtime-neutral submission surface: what the compiled scenario needs
   from a runtime, nothing more. *)
type iface = {
  submit : App.t -> name:string -> service:Time.t -> on_done:(unit -> unit) -> unit;
  create_app : name:string -> App.t;
  attach_be : App.t -> chunk:Time.t -> workers:int -> unit;
  be_preemptions : unit -> int;
  allocator : unit -> Allocator.t option;
}

(* The delay policy keeps reacting while LC is starved of cores (the
   utilization signal goes silent there); the BE tenant's declared bounds
   become the allocator's guaranteed/burstable band. *)
let alloc_config (bounds : bounds) =
  {
    (Allocator.default_config ()) with
    Allocator.policy = Alloc_policy.delay ();
    be_guaranteed = bounds.guaranteed;
    be_burstable = bounds.burstable;
  }

let make_iface ~machine ~kmod ~runtime ~cores ~timer_hz ~quantum ~be_bounds =
  match runtime with
  | Percpu ->
      let rt =
        Skyloft.Percpu.create machine kmod ~cores:(List.init cores Fun.id)
          ~timer_hz
          (Skyloft_policies.Work_stealing.create ~quantum ())
      in
      {
        submit =
          (fun app ~name ~service ~on_done ->
            ignore
              (Skyloft.Percpu.spawn rt app ~name ~record:false
                 (Coro.Compute
                    ( service,
                      fun () ->
                        on_done ();
                        Coro.Exit ))));
        create_app = (fun ~name -> Skyloft.Percpu.create_app rt ~name);
        attach_be =
          (fun app ~chunk ~workers ->
            let bounds = Option.get be_bounds in
            Skyloft.Percpu.attach_be_app rt ~alloc:(alloc_config bounds) app
              ~chunk ~workers);
        be_preemptions = (fun () -> Skyloft.Percpu.be_preemptions rt);
        allocator = (fun () -> Skyloft.Percpu.allocator rt);
      }
  | Centralized ->
      let rt =
        Skyloft.Centralized.create machine kmod ~dispatcher_core:0
          ~worker_cores:(List.init cores (fun i -> i + 1))
          ~quantum
          ?alloc:(Option.map alloc_config be_bounds)
          (fst (Skyloft_policies.Shinjuku_shenango.create ()))
      in
      {
        submit =
          (fun app ~name ~service ~on_done ->
            ignore
              (Skyloft.Centralized.submit rt app ~record:false ~name
                 (Coro.Compute
                    ( service,
                      fun () ->
                        on_done ();
                        Coro.Exit ))));
        create_app = (fun ~name -> Skyloft.Centralized.create_app rt ~name);
        attach_be =
          (fun app ~chunk ~workers ->
            Skyloft.Centralized.attach_be_app rt app ~chunk ~workers);
        be_preemptions = (fun () -> Skyloft.Centralized.be_preemptions rt);
        allocator = (fun () -> Skyloft.Centralized.allocator rt);
      }
  | Hybrid ->
      let rt =
        Skyloft.Hybrid.create machine kmod ~dispatcher_core:0
          ~worker_cores:(List.init cores (fun i -> i + 1))
          ~quantum
          ?alloc:(Option.map alloc_config be_bounds)
          (fst (Skyloft_policies.Shinjuku_shenango.create ()))
      in
      {
        submit =
          (fun app ~name ~service ~on_done ->
            ignore
              (Skyloft.Hybrid.submit rt app ~record:false ~name
                 (Coro.Compute
                    ( service,
                      fun () ->
                        on_done ();
                        Coro.Exit ))));
        create_app = (fun ~name -> Skyloft.Hybrid.create_app rt ~name);
        attach_be =
          (fun app ~chunk ~workers ->
            Skyloft.Hybrid.attach_be_app rt app ~chunk ~workers);
        be_preemptions = (fun () -> Skyloft.Hybrid.be_preemptions rt);
        allocator = (fun () -> Skyloft.Hybrid.allocator rt);
      }
  | Worksteal ->
      let rt =
        Skyloft.Worksteal.create machine kmod ~cores:(List.init cores Fun.id)
          ~timer_hz ~quantum ()
      in
      {
        submit =
          (fun app ~name ~service ~on_done ->
            ignore
              (Skyloft.Worksteal.spawn rt app ~name ~record:false
                 (Coro.Compute
                    ( service,
                      fun () ->
                        on_done ();
                        Coro.Exit ))));
        create_app = (fun ~name -> Skyloft.Worksteal.create_app rt ~name);
        attach_be =
          (fun app ~chunk ~workers ->
            let bounds = Option.get be_bounds in
            Skyloft.Worksteal.attach_be_app rt ~alloc:(alloc_config bounds) app
              ~chunk ~workers);
        be_preemptions = (fun () -> Skyloft.Worksteal.be_preemptions rt);
        allocator = (fun () -> Skyloft.Worksteal.allocator rt);
      }

type lc_state = {
  l_spec : lc_spec;
  l_app : App.t;
  l_rng : Rng.t;  (* service draws + mix picks *)
  l_hist : Histogram.t;
  mutable l_submitted : int;
  mutable l_completed : int;
}

let pick_branch rng branches =
  let total = List.fold_left (fun acc (w, _) -> acc +. w) 0.0 branches in
  let u = Rng.float rng total in
  let rec go acc = function
    | [ (_, shape) ] -> shape
    | (w, shape) :: rest -> if u < acc +. w then shape else go (acc +. w) rest
    | [] -> assert false
  in
  go 0.0 branches

let run ?(seed = 42) ~requests ~runtime scenario =
  validate scenario;
  if requests < 1 then invalid_arg "Scenario.run: requests must be >= 1";
  let engine = Engine.create ~seed () in
  let topo_cores =
    match runtime with
    | Percpu | Worksteal -> scenario.cores
    | Centralized | Hybrid -> scenario.cores + 1
  in
  let machine =
    Machine.create engine (Topology.create ~sockets:1 ~cores_per_socket:topo_cores)
  in
  let kmod = Kmod.create machine in
  let be_tenant =
    List.find_map (function Be b -> Some b | Lc _ -> None) scenario.tenants
  in
  let iface =
    make_iface ~machine ~kmod ~runtime ~cores:scenario.cores
      ~timer_hz:scenario.timer_hz ~quantum:scenario.quantum
      ~be_bounds:(Option.map (fun b -> b.bounds) be_tenant)
  in
  (* Apps are created and RNG streams split in scenario order, before
     anything runs: the draw order is part of the seed contract. *)
  let lcs =
    List.filter_map
      (function
        | Lc spec ->
            Some
              {
                l_spec = spec;
                l_app = iface.create_app ~name:spec.lc_name;
                l_rng = Engine.split_rng engine;
                l_hist = Histogram.create ();
                l_submitted = 0;
                l_completed = 0;
              }
        | Be _ -> None)
      scenario.tenants
  in
  let arrival_rngs = List.map (fun _ -> Engine.split_rng engine) lcs in
  (match be_tenant with
  | Some { be_name; chunk; workers; _ } ->
      let app = iface.create_app ~name:be_name in
      let workers =
        match workers with Some w -> w | None -> scenario.cores
      in
      iface.attach_be app ~chunk ~workers
  | None -> ());
  let submitted = ref 0 and completed = ref 0 in
  let last_completion = ref 0 in
  (* One request: compile the shape to task submissions.  [finish] runs
     at the completion of the last stage (chain) or the join (fan-out)
     and records only into the tenant's bounded histogram — nothing
     per-request survives the request. *)
  let issue (l : lc_state) at =
    l.l_submitted <- l.l_submitted + 1;
    incr submitted;
    let finish () =
      l.l_completed <- l.l_completed + 1;
      incr completed;
      let now = Engine.now engine in
      last_completion := max !last_completion now;
      Histogram.record l.l_hist (now - at)
    in
    let rec exec shape k =
      match shape with
      | Shape.Single d | Shape.Chain [ d ] ->
          iface.submit l.l_app ~name:l.l_spec.lc_name
            ~service:(Dist.sample d l.l_rng) ~on_done:k
      | Shape.Chain [] -> assert false (* validated non-empty *)
      | Shape.Chain (d :: rest) ->
          iface.submit l.l_app ~name:l.l_spec.lc_name
            ~service:(Dist.sample d l.l_rng)
            ~on_done:(fun () -> exec (Shape.Chain rest) k)
      | Shape.Fanout { width; stage } ->
          let remaining = ref width in
          for _ = 1 to width do
            iface.submit l.l_app ~name:l.l_spec.lc_name
              ~service:(Dist.sample stage l.l_rng)
              ~on_done:(fun () ->
                decr remaining;
                if !remaining = 0 then k ())
          done
      | Shape.Mix branches -> exec (pick_branch l.l_rng branches) k
    in
    exec l.l_spec.shape finish
  in
  List.iter2
    (fun l arrival_rng ->
      let next = Arrival.sampler l.l_spec.arrival arrival_rng in
      Loadgen.stream engine
        ~next:(fun ~now -> if !submitted >= requests then None else next ~now)
        (fun at -> issue l at))
    lcs arrival_rngs;
  (* Drain in bounded chunks: the periodic timers refill the event queue
     forever, so the engine never runs dry on its own — run until every
     submitted request completed, with a generous cap so a wedged cell
     reports completed < submitted instead of hanging. *)
  let expected_ns =
    int_of_float (float_of_int requests /. mean_rate_rps scenario *. 1e9)
  in
  let chunk = max (Time.ms 10) (expected_ns / 16) in
  let hard_cap = (8 * expected_ns) + Time.s 1 in
  let rec drain until =
    Engine.run ~until engine;
    if (!submitted < requests || !completed < !submitted) && until < hard_cap
    then drain (until + chunk)
  in
  drain chunk;
  {
    scenario = scenario.name;
    runtime = runtime_name runtime;
    target = requests;
    submitted = !submitted;
    completed = !completed;
    last_completion = !last_completion;
    tenants =
      List.map
        (fun l ->
          {
            tenant = l.l_spec.lc_name;
            submitted = l.l_submitted;
            completed = l.l_completed;
            latency = l.l_hist;
          })
        lcs;
    be_preemptions = iface.be_preemptions ();
    alloc_grants =
      (match iface.allocator () with Some a -> Allocator.grants a | None -> 0);
    alloc_reclaims =
      (match iface.allocator () with Some a -> Allocator.reclaims a | None -> 0);
  }

(* ---- digests -------------------------------------------------------------- *)

let hist_line h =
  Printf.sprintf "n=%d min=%d p50=%d p90=%d p99=%d p999=%d max=%d mean=%.3f"
    (Histogram.count h) (Histogram.min_value h)
    (Histogram.percentile h 50.0) (Histogram.percentile h 90.0)
    (Histogram.percentile h 99.0) (Histogram.percentile h 99.9)
    (Histogram.max_value h) (Histogram.mean h)

(* Everything request-visible, rendered deterministically: the scale
   experiment's golden digests are MD5 over this string. *)
let digest_string d =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%s|%s|target=%d|submitted=%d|completed=%d|last=%d\n"
       d.scenario d.runtime d.target d.submitted d.completed d.last_completion);
  Buffer.add_string buf
    (Printf.sprintf "be_preempt=%d|grants=%d|reclaims=%d\n" d.be_preemptions
       d.alloc_grants d.alloc_reclaims);
  List.iter
    (fun td ->
      Buffer.add_string buf
        (Printf.sprintf "%s|submitted=%d|completed=%d|%s\n" td.tenant
           td.submitted td.completed (hist_line td.latency)))
    d.tenants;
  Buffer.add_string buf (Printf.sprintf "all|%s\n" (hist_line (merged_latency d)));
  Buffer.contents buf

let pp_digest ppf d =
  Format.fprintf ppf "%s on %s: %d/%d completed, all %s" d.scenario d.runtime
    d.completed d.submitted
    (hist_line (merged_latency d))
