module Time = Skyloft_sim.Time
module Rng = Skyloft_sim.Rng

(** Declarative arrival processes for the scenario DSL.

    An arrival value describes {e when} requests arrive; {!sampler}
    compiles it into a stateful next-arrival function fed to
    {!Skyloft_net.Loadgen.stream}.  Everything is seed-deterministic: the
    whole arrival stream is a pure function of the supplied {!Rng.t}.
    Rates are requests per second of virtual time. *)

type t =
  | Poisson of { rate_rps : float }
      (** memoryless open-loop arrivals at a constant rate — the §5.2/§5.3
          client *)
  | Mmpp of {
      rate_on : float;
      rate_off : float;
      mean_on : Time.t;
      mean_off : Time.t;
    }
      (** two-phase Markov-modulated Poisson process: exponentially
          distributed sojourns of mean [mean_on]/[mean_off] alternate
          between a burst phase at [rate_on] and a lull at [rate_off]
          (often 0) — the bursty load under which LibPreemptible shows
          scheduler conclusions flip *)
  | Diurnal of { segments : (Time.t * float) list }
      (** piecewise-constant rate curve: [(duration, rate)] segments
          played in order and cycled forever — a compressed day.  Zero
          rate segments (nights) are allowed as long as one segment is
          positive. *)

val validate : t -> unit
(** @raise Invalid_argument on non-positive Poisson rate, negative or
    all-zero MMPP/Diurnal rates, or non-positive sojourns/durations. *)

val mean_rate : t -> float
(** Long-run average arrival rate in rps (exact: phase- or
    segment-weighted). *)

val sampler : t -> Rng.t -> now:Time.t -> Time.t option
(** [sampler t rng] compiles the process into a stateful next-arrival
    function: each call returns the absolute time of the next arrival at
    or after [now].  Phase changes between arrivals are simulated
    exactly (exponential gaps are redrawn at phase boundaries, which the
    memoryless property makes exact).  Never returns [None]; the stream
    is stopped by its consumer (e.g. a request-count target).
    Runs [validate] first. *)

val rotate : int -> (Time.t * float) list -> (Time.t * float) list
(** [rotate n segments] starts the cycle [n] segments in — phase-shifts
    one diurnal curve across many tenants so their peaks don't align. *)

val pp : Format.formatter -> t -> unit
