module Time = Skyloft_sim.Time
module Rng = Skyloft_sim.Rng

type t =
  | Poisson of { rate_rps : float }
  | Mmpp of {
      rate_on : float;
      rate_off : float;
      mean_on : Time.t;
      mean_off : Time.t;
    }
  | Diurnal of { segments : (Time.t * float) list }

let validate = function
  | Poisson { rate_rps } ->
      if rate_rps <= 0.0 then invalid_arg "Arrival: Poisson rate must be positive"
  | Mmpp { rate_on; rate_off; mean_on; mean_off } ->
      if rate_on < 0.0 || rate_off < 0.0 then
        invalid_arg "Arrival: MMPP rates must be non-negative";
      if rate_on <= 0.0 && rate_off <= 0.0 then
        invalid_arg "Arrival: MMPP needs a positive rate in at least one phase";
      if mean_on <= 0 || mean_off <= 0 then
        invalid_arg "Arrival: MMPP phase sojourns must be positive"
  | Diurnal { segments } ->
      if segments = [] then invalid_arg "Arrival: Diurnal needs segments";
      List.iter
        (fun (dur, rate) ->
          if dur <= 0 then invalid_arg "Arrival: Diurnal segment durations must be positive";
          if rate < 0.0 then invalid_arg "Arrival: Diurnal rates must be non-negative")
        segments;
      if not (List.exists (fun (_, rate) -> rate > 0.0) segments) then
        invalid_arg "Arrival: Diurnal needs a positive rate in at least one segment"

let mean_rate = function
  | Poisson { rate_rps } -> rate_rps
  | Mmpp { rate_on; rate_off; mean_on; mean_off } ->
      let on = float_of_int mean_on and off = float_of_int mean_off in
      ((rate_on *. on) +. (rate_off *. off)) /. (on +. off)
  | Diurnal { segments } ->
      let weighted, span =
        List.fold_left
          (fun (w, s) (dur, rate) ->
            (w +. (rate *. float_of_int dur), s +. float_of_int dur))
          (0.0, 0.0) segments
      in
      weighted /. span

(* One exponential gap in ns at [rate_rps]; at least 1 ns so virtual time
   always advances. *)
let exp_gap rng ~rate_rps =
  max 1 (int_of_float (Rng.exponential rng ~mean:(1e9 /. rate_rps)))

(* Piecewise-constant-rate sampling, shared by MMPP and Diurnal: walk the
   phase timeline from [now]; in each phase draw an exponential gap at the
   phase's rate and accept it if it lands before the phase ends, otherwise
   advance to the phase boundary and redraw (memorylessness makes the
   redraw exact, not an approximation). *)
let piecewise_sampler ~rng ~advance =
  (* [phase_end] is absolute; [rate] the current phase's rate.  [advance]
     rolls the mutable phase state forward and returns (rate, phase_end)
     for the phase starting at the given time. *)
  let state = ref None in
  fun ~now ->
    let rec go t =
      let rate, phase_end =
        match !state with
        | Some (rate, phase_end) when phase_end > t -> (rate, phase_end)
        | _ ->
            let next = advance ~at:t in
            state := Some next;
            next
      in
      if rate <= 0.0 then begin
        state := None;
        go phase_end
      end
      else begin
        let gap = exp_gap rng ~rate_rps:rate in
        if t + gap <= phase_end then Some (t + gap)
        else begin
          state := None;
          go phase_end
        end
      end
    in
    go now

let sampler t rng =
  validate t;
  match t with
  | Poisson { rate_rps } -> fun ~now -> Some (now + exp_gap rng ~rate_rps)
  | Mmpp { rate_on; rate_off; mean_on; mean_off } ->
      let on = ref true in
      (* The stream starts in the on phase; each [advance] call enters the
         phase in force at [at] and draws its sojourn. *)
      let first = ref true in
      piecewise_sampler ~rng ~advance:(fun ~at ->
          if !first then first := false else on := not !on;
          let rate = if !on then rate_on else rate_off in
          let mean = if !on then mean_on else mean_off in
          let sojourn =
            max 1 (int_of_float (Rng.exponential rng ~mean:(float_of_int mean)))
          in
          (rate, at + sojourn))
  | Diurnal { segments } ->
      let segs = Array.of_list segments in
      let idx = ref (-1) in
      piecewise_sampler ~rng ~advance:(fun ~at ->
          idx := (!idx + 1) mod Array.length segs;
          let dur, rate = segs.(!idx) in
          (rate, at + dur))

let rotate n = function
  | [] -> []
  | segments ->
      let len = List.length segments in
      let k = ((n mod len) + len) mod len in
      let rec split i acc = function
        | rest when i = k -> rest @ List.rev acc
        | x :: rest -> split (i + 1) (x :: acc) rest
        | [] -> assert false
      in
      split 0 [] segments

let pp ppf = function
  | Poisson { rate_rps } -> Format.fprintf ppf "poisson(%.0f rps)" rate_rps
  | Mmpp { rate_on; rate_off; mean_on; mean_off } ->
      Format.fprintf ppf "mmpp(on=%.0f rps/%a, off=%.0f rps/%a)" rate_on Time.pp
        mean_on rate_off Time.pp mean_off
  | Diurnal { segments } ->
      Format.fprintf ppf "diurnal(%d segments, mean=%.0f rps)"
        (List.length segments)
        (mean_rate (Diurnal { segments }))
