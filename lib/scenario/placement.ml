module Time = Skyloft_sim.Time
module Engine = Skyloft_sim.Engine
module Rng = Skyloft_sim.Rng
module Coro = Skyloft_sim.Coro
module Dist = Skyloft_sim.Dist
module Topology = Skyloft_hw.Topology
module Machine = Skyloft_hw.Machine
module Costs = Skyloft_hw.Costs
module Kmod = Skyloft_kernel.Kmod
module Histogram = Skyloft_stats.Histogram
module App = Skyloft.App
module Allocator = Skyloft_alloc.Allocator
module Alloc_policy = Skyloft_alloc.Policy
module Broker = Skyloft_alloc.Broker
module Loadgen = Skyloft_net.Loadgen
module Plan = Skyloft_fault.Plan
module Injector = Skyloft_fault.Injector

(* A placement is one oversubscribed machine: N independent runtime
   instances (tenants) sharing one simulated machine under a core
   {!Broker}.  Each tenant owns a disjoint physical core range sized by
   its burstable ceiling — the broker's allowance grants decide how much
   of that range the tenant may actually occupy, and the broker's
   capacity is smaller than the sum of ceilings.  That is the
   oversubscription: every tenant could burst, not all at once.

   The centralized and hybrid flavours get one extra dispatcher core
   outside the brokered pool (the Caladan iokernel arrangement: control
   planes run on dedicated cores, only worker cores are traded). *)

type tenant = {
  name : string;
  runtime : Scenario.runtime;
  kind : Alloc_policy.kind;
  guaranteed : int;
  burstable : int;
  shape : Shape.t;
  arrival : Arrival.t;
}

let tenant ?(kind = Alloc_policy.Lc) ~name ~runtime ~guaranteed ~burstable
    ~shape ~arrival () =
  if guaranteed < 0 then invalid_arg "Placement.tenant: guaranteed < 0";
  if burstable < 1 then invalid_arg "Placement.tenant: burstable < 1";
  if burstable < guaranteed then
    invalid_arg "Placement.tenant: burstable < guaranteed";
  Shape.validate shape;
  Arrival.validate arrival;
  { name; runtime; kind; guaranteed; burstable; shape; arrival }

type config = {
  timer_hz : int;
  quantum : Time.t;
  deadline : Time.t;  (* per-task kill timer; keeps crashed tenants lossless *)
  retry_budget : int;
  retry_backoff : Time.t;
  broker : Broker.config;
}

let default_config () =
  {
    timer_hz = 100_000;
    quantum = Time.us 30;
    deadline = Time.ms 5;
    retry_budget = 2;
    retry_backoff = Time.us 100;
    broker = Broker.default_config ();
  }

(* Runtime-neutral surface, one per tenant: submit one deadline-armed
   task, drive the broker's allowance, report congestion, and hook the
   tenant into the machine-wide observability plane (shared flight
   recorder + pull registry, tenant-labelled). *)
type rt_iface = {
  rt_submit :
    name:string ->
    service:Time.t ->
    on_drop:(unit -> unit) ->
    on_done:(unit -> unit) ->
    unit;
  rt_set_allowance : int -> unit;
  rt_congestion : unit -> Allocator.raw;
  rt_deadline_drops : unit -> int;
  rt_set_trace : Skyloft_stats.Trace.t -> unit;
  rt_register : Skyloft_obs.Registry.t -> unit;
}

let make_iface ~machine ~config ~(spec : tenant) ~cores =
  let deadline = config.deadline in
  let kmod = Kmod.create machine in
  match spec.runtime with
  | Scenario.Percpu ->
      let rt =
        Skyloft.Percpu.create machine kmod ~cores ~timer_hz:config.timer_hz
          (Skyloft_policies.Work_stealing.create ~quantum:config.quantum ())
      in
      let app = Skyloft.Percpu.create_app rt ~name:spec.name in
      {
        rt_submit =
          (fun ~name ~service ~on_drop ~on_done ->
            ignore
              (Skyloft.Percpu.spawn rt app ~name ~record:false ~deadline
                 ~on_drop:(fun _ -> on_drop ())
                 (Coro.Compute
                    ( service,
                      fun () ->
                        on_done ();
                        Coro.Exit ))));
        rt_set_allowance = Skyloft.Percpu.set_core_allowance rt;
        rt_congestion = (fun () -> Skyloft.Percpu.congestion rt);
        rt_deadline_drops = (fun () -> Skyloft.Percpu.deadline_drops rt);
        rt_set_trace = Skyloft.Percpu.set_trace rt;
        rt_register =
          (fun reg ->
            Skyloft.Percpu.register_metrics rt
              ~labels:[ ("tenant", spec.name) ]
              reg);
      }
  | Scenario.Worksteal ->
      let rt =
        Skyloft.Worksteal.create machine kmod ~cores ~timer_hz:config.timer_hz
          ~quantum:config.quantum ()
      in
      let app = Skyloft.Worksteal.create_app rt ~name:spec.name in
      {
        rt_submit =
          (fun ~name ~service ~on_drop ~on_done ->
            ignore
              (Skyloft.Worksteal.spawn rt app ~name ~record:false ~deadline
                 ~on_drop:(fun _ -> on_drop ())
                 (Coro.Compute
                    ( service,
                      fun () ->
                        on_done ();
                        Coro.Exit ))));
        rt_set_allowance = Skyloft.Worksteal.set_core_allowance rt;
        rt_congestion = (fun () -> Skyloft.Worksteal.congestion rt);
        rt_deadline_drops = (fun () -> Skyloft.Worksteal.deadline_drops rt);
        rt_set_trace = Skyloft.Worksteal.set_trace rt;
        rt_register =
          (fun reg ->
            Skyloft.Worksteal.register_metrics rt
              ~labels:[ ("tenant", spec.name) ]
              reg);
      }
  | Scenario.Centralized ->
      let dispatcher_core = List.hd cores and worker_cores = List.tl cores in
      let rt =
        Skyloft.Centralized.create machine kmod ~dispatcher_core ~worker_cores
          ~quantum:config.quantum
          (fst (Skyloft_policies.Shinjuku_shenango.create ()))
      in
      let app = Skyloft.Centralized.create_app rt ~name:spec.name in
      {
        rt_submit =
          (fun ~name ~service ~on_drop ~on_done ->
            ignore
              (Skyloft.Centralized.submit rt app ~record:false ~deadline
                 ~on_drop:(fun _ -> on_drop ())
                 ~name
                 (Coro.Compute
                    ( service,
                      fun () ->
                        on_done ();
                        Coro.Exit ))));
        rt_set_allowance = Skyloft.Centralized.set_core_allowance rt;
        rt_congestion = (fun () -> Skyloft.Centralized.congestion rt);
        rt_deadline_drops = (fun () -> Skyloft.Centralized.deadline_drops rt);
        rt_set_trace = Skyloft.Centralized.set_trace rt;
        rt_register =
          (fun reg ->
            Skyloft.Centralized.register_metrics rt
              ~labels:[ ("tenant", spec.name) ]
              reg);
      }
  | Scenario.Hybrid ->
      let dispatcher_core = List.hd cores and worker_cores = List.tl cores in
      let rt =
        Skyloft.Hybrid.create machine kmod ~dispatcher_core ~worker_cores
          ~quantum:config.quantum ~timer_hz:config.timer_hz
          (fst (Skyloft_policies.Shinjuku_shenango.create ()))
      in
      let app = Skyloft.Hybrid.create_app rt ~name:spec.name in
      {
        rt_submit =
          (fun ~name ~service ~on_drop ~on_done ->
            ignore
              (Skyloft.Hybrid.submit rt app ~record:false ~deadline
                 ~on_drop:(fun _ -> on_drop ())
                 ~name
                 (Coro.Compute
                    ( service,
                      fun () ->
                        on_done ();
                        Coro.Exit ))));
        rt_set_allowance = Skyloft.Hybrid.set_core_allowance rt;
        rt_congestion = (fun () -> Skyloft.Hybrid.congestion rt);
        rt_deadline_drops = (fun () -> Skyloft.Hybrid.deadline_drops rt);
        rt_set_trace = Skyloft.Hybrid.set_trace rt;
        rt_register =
          (fun reg ->
            Skyloft.Hybrid.register_metrics rt
              ~labels:[ ("tenant", spec.name) ]
              reg);
      }

type tenant_result = {
  t_name : string;
  t_runtime : string;
  t_kind : string;
  t_guaranteed : int;
  t_burstable : int;
  submitted : int;
  completed : int;
  gave_up : int;
  deadline_drops : int;
  final_granted : int;
  final_health : string;
  core_ns : int;
  latency : Histogram.t;
  allowance : Skyloft_stats.Timeseries.t;  (* granted cores over time *)
}

let lost r = r.submitted - r.completed - r.gave_up

type result = {
  placement : string;
  capacity : int;
  target : int;  (* requests per tenant *)
  last_completion : Time.t;
  tenants : tenant_result list;
  fairness : float;
  grants : int;
  reclaims : int;
  yields : int;
  degradations : int;
  quarantines : int;
  releases : int;
  crashes : int;
  charged_ns : Time.t;
}

type state = {
  spec : tenant;
  iface : rt_iface;
  rng : Rng.t;  (* service draws + mix picks *)
  hist : Histogram.t;
  mutable s_submitted : int;
  mutable s_completed : int;
  mutable s_gave_up : int;
}

let pick_branch rng branches =
  let total = List.fold_left (fun acc (w, _) -> acc +. w) 0.0 branches in
  let u = Rng.float rng total in
  let rec go acc = function
    | [ (_, shape) ] -> shape
    | (w, shape) :: rest -> if u < acc +. w then shape else go (acc +. w) rest
    | [] -> assert false
  in
  go 0.0 branches

let run ?(seed = 42) ?(faults = []) ?(config = default_config ()) ?trace
    ?registry ~name ~capacity ~requests tenants =
  if tenants = [] then invalid_arg "Placement.run: no tenants";
  if requests < 1 then invalid_arg "Placement.run: requests must be >= 1";
  if capacity < 1 then invalid_arg "Placement.run: capacity must be >= 1";
  let floors = List.fold_left (fun acc t -> acc + t.guaranteed) 0 tenants in
  if floors > capacity then
    invalid_arg "Placement.run: guaranteed floors exceed broker capacity";
  let n = List.length tenants in
  List.iter
    (fun (p : Plan.t) ->
      match p.Plan.spec with
      | Plan.Tenant_hoard { tenant }
      | Plan.Tenant_stale { tenant }
      | Plan.Tenant_crash { tenant } ->
          if tenant >= n then invalid_arg "Placement.run: fault tenant out of range"
      | _ -> invalid_arg "Placement.run: only tenant-level fault plans apply")
    faults;
  let names = List.map (fun t -> t.name) tenants in
  if List.length (List.sort_uniq String.compare names) <> n then
    invalid_arg "Placement.run: duplicate tenant names";
  let engine = Engine.create ~seed () in
  (* Physical layout: disjoint contiguous ranges, ceilings fully backed;
     centralized flavours prepend a dedicated dispatcher core that is not
     part of the brokered pool. *)
  let ranges = ref [] in
  let total_cores =
    List.fold_left
      (fun base t ->
        let extra =
          match t.runtime with
          | Scenario.Percpu | Scenario.Worksteal -> 0
          | Scenario.Centralized | Scenario.Hybrid -> 1
        in
        let width = t.burstable + extra in
        ranges := List.init width (fun i -> base + i) :: !ranges;
        base + width)
      0 tenants
  in
  let ranges = List.rev !ranges in
  let machine =
    Machine.create engine
      (Topology.create ~sockets:1 ~cores_per_socket:total_cores)
  in
  (* Split order is the seed contract: injector first, then service
     streams, then arrival streams, each in tenant order. *)
  let inj_rng = Engine.split_rng engine in
  let broker =
    Broker.create ~engine ~capacity ~config:config.broker ()
  in
  let states =
    List.map2
      (fun spec cores ->
        let iface = make_iface ~machine ~config ~spec ~cores in
        iface.rt_set_allowance spec.guaranteed;
        {
          spec;
          iface;
          rng = Engine.split_rng engine;
          hist = Histogram.create ();
          s_submitted = 0;
          s_completed = 0;
          s_gave_up = 0;
        })
      tenants ranges
  in
  let arrival_rngs = List.map (fun _ -> Engine.split_rng engine) states in
  List.iteri
    (fun i st ->
      let policy =
        match st.spec.kind with
        | Alloc_policy.Lc -> Alloc_policy.delay ()
        | Alloc_policy.Be -> Alloc_policy.utilization ()
      in
      Broker.register broker ~tenant:i ~name:st.spec.name ~kind:st.spec.kind
        ~policy
        ~bounds:
          {
            Allocator.guaranteed = st.spec.guaranteed;
            burstable = st.spec.burstable;
          }
        ~initial:st.spec.guaranteed
        ~sample:(fun () -> st.iface.rt_congestion ())
        ~apply:(fun ~granted ~delta ->
          st.iface.rt_set_allowance granted;
          Costs.app_switch_ns * abs delta))
    states;
  (* Machine-wide observability plane: one shared flight recorder across
     every tenant's runtime AND the broker (arbitration instants land on
     the base core of the tenant's physical range), one pull registry
     with tenant-labelled runtime metrics.  Both are strictly passive —
     attaching them must not perturb the simulation (the obs-report
     experiment asserts fingerprint identity either way). *)
  let bases = Array.of_list (List.map List.hd ranges) in
  (match trace with
  | Some tr ->
      List.iter (fun st -> st.iface.rt_set_trace tr) states;
      Broker.set_trace broker ~core_of_tenant:(fun i -> bases.(i)) tr
  | None -> ());
  (match registry with
  | Some reg ->
      List.iter (fun st -> st.iface.rt_register reg) states;
      Broker.register_metrics broker reg
  | None -> ());
  let injector = Injector.create ~engine ~rng:inj_rng () in
  if faults <> [] then Injector.arm_tenants injector ~broker faults;
  Broker.start broker;
  let total_submitted = ref 0 and total_settled = ref 0 in
  let last_completion = ref 0 in
  (* One request: one shape execution per retry attempt, every task armed
     with the placement deadline.  A dropped stage fails the attempt
     (fan-out siblings already in flight run to their own end but their
     join never fires); the retry loop guarantees every request settles
     as exactly one of completed or gave-up — the reconciliation
     invariant [lost = 0] the experiment asserts. *)
  let issue (st : state) at =
    st.s_submitted <- st.s_submitted + 1;
    incr total_submitted;
    let rec exec shape ~fail ~k =
      match shape with
      | Shape.Single d | Shape.Chain [ d ] ->
          st.iface.rt_submit ~name:st.spec.name
            ~service:(Dist.sample d st.rng) ~on_drop:fail ~on_done:k
      | Shape.Chain [] -> assert false
      | Shape.Chain (d :: rest) ->
          st.iface.rt_submit ~name:st.spec.name
            ~service:(Dist.sample d st.rng) ~on_drop:fail
            ~on_done:(fun () -> exec (Shape.Chain rest) ~fail ~k)
      | Shape.Fanout { width; stage } ->
          let remaining = ref width in
          for _ = 1 to width do
            st.iface.rt_submit ~name:st.spec.name
              ~service:(Dist.sample stage st.rng) ~on_drop:fail
              ~on_done:(fun () ->
                decr remaining;
                if !remaining = 0 then k ())
          done
      | Shape.Mix branches -> exec (pick_branch st.rng branches) ~fail ~k
    in
    Loadgen.retrying engine ~budget:config.retry_budget
      ~backoff:config.retry_backoff
      ~attempt:(fun _k done_ ->
        exec st.spec.shape
          ~fail:(fun () -> done_ false)
          ~k:(fun () ->
            let now = Engine.now engine in
            last_completion := max !last_completion now;
            st.s_completed <- st.s_completed + 1;
            incr total_settled;
            Histogram.record st.hist (now - at);
            done_ true))
      (fun () ->
        st.s_gave_up <- st.s_gave_up + 1;
        incr total_settled)
  in
  List.iter2
    (fun st arrival_rng ->
      let next = Arrival.sampler st.spec.arrival arrival_rng in
      Loadgen.stream engine
        ~next:(fun ~now ->
          if st.s_submitted >= requests then None else next ~now)
        (fun at -> issue st at))
    states arrival_rngs;
  (* Bounded chunked drain, as in Scenario.run: the broker tick and the
     runtimes' timers refill the queue forever, so run until every
     tenant's stream closed and every request settled, under a hard cap
     generous enough for crash scenarios (retries of dead tenants settle
     by deadline, not by service). *)
  let slowest =
    List.fold_left
      (fun acc t ->
        max acc (float_of_int requests /. Arrival.mean_rate t.arrival))
      0.0 tenants
  in
  let expected_ns = int_of_float (slowest *. 1e9) in
  let chunk = max (Time.ms 10) (expected_ns / 16) in
  let hard_cap = (8 * expected_ns) + Time.s 1 in
  let all_submitted () = List.for_all (fun st -> st.s_submitted >= requests) states in
  let rec drain until =
    Engine.run ~until engine;
    if ((not (all_submitted ())) || !total_settled < !total_submitted)
       && until < hard_cap
    then drain (until + chunk)
  in
  drain chunk;
  Broker.stop broker;
  ignore (Injector.injected injector);
  {
    placement = name;
    capacity;
    target = requests;
    last_completion = !last_completion;
    tenants =
      List.mapi
        (fun i st ->
          {
            t_name = st.spec.name;
            t_runtime = Scenario.runtime_name st.spec.runtime;
            t_kind =
              (match st.spec.kind with Alloc_policy.Lc -> "lc" | Alloc_policy.Be -> "be");
            t_guaranteed = st.spec.guaranteed;
            t_burstable = st.spec.burstable;
            submitted = st.s_submitted;
            completed = st.s_completed;
            gave_up = st.s_gave_up;
            deadline_drops = st.iface.rt_deadline_drops ();
            final_granted = Broker.granted broker ~tenant:i;
            final_health = Broker.health_name (Broker.health broker ~tenant:i);
            core_ns = Broker.core_ns broker ~tenant:i;
            latency = st.hist;
            allowance = Broker.series broker ~tenant:i;
          })
        states;
    fairness = Broker.fairness broker;
    grants = Broker.grants broker;
    reclaims = Broker.reclaims broker;
    yields = Broker.yields broker;
    degradations = Broker.degradations broker;
    quarantines = Broker.quarantines broker;
    releases = Broker.releases broker;
    crashes = Broker.crashes broker;
    charged_ns = Broker.charged_ns broker;
  }

(* ---- digests ------------------------------------------------------------- *)

let hist_line h =
  Printf.sprintf "n=%d min=%d p50=%d p90=%d p99=%d p999=%d max=%d mean=%.3f"
    (Histogram.count h) (Histogram.min_value h)
    (Histogram.percentile h 50.0) (Histogram.percentile h 90.0)
    (Histogram.percentile h 99.0) (Histogram.percentile h 99.9)
    (Histogram.max_value h) (Histogram.mean h)

let digest_string r =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "oversub|%s|capacity=%d|target=%d|last=%d\n" r.placement
       r.capacity r.target r.last_completion);
  List.iter
    (fun t ->
      Buffer.add_string buf
        (Printf.sprintf
           "%s|%s|%s|g=%d|b=%d|submitted=%d|completed=%d|gave_up=%d|drops=%d|granted=%d|health=%s|core_ns=%d|%s\n"
           t.t_name t.t_runtime t.t_kind t.t_guaranteed t.t_burstable
           t.submitted t.completed t.gave_up t.deadline_drops t.final_granted
           t.final_health t.core_ns (hist_line t.latency)))
    r.tenants;
  Buffer.add_string buf
    (Printf.sprintf
       "broker|grants=%d|reclaims=%d|yields=%d|degraded=%d|quarantined=%d|released=%d|crashed=%d|charged=%d|fairness=%.4f\n"
       r.grants r.reclaims r.yields r.degradations r.quarantines r.releases
       r.crashes r.charged_ns r.fairness);
  Buffer.contents buf

let pp_result ppf r =
  Format.fprintf ppf "%s: %d tenants on %d cores, fairness %.4f" r.placement
    (List.length r.tenants) r.capacity r.fairness
