module Dist = Skyloft_sim.Dist

type t =
  | Single of Dist.t
  | Chain of Dist.t list
  | Fanout of { width : int; stage : Dist.t }
  | Mix of (float * t) list

let rec validate = function
  | Single _ -> ()
  | Chain [] -> invalid_arg "Shape: Chain needs at least one stage"
  | Chain _ -> ()
  | Fanout { width; _ } ->
      if width < 1 then invalid_arg "Shape: Fanout width must be >= 1"
  | Mix [] -> invalid_arg "Shape: Mix needs at least one branch"
  | Mix branches ->
      List.iter
        (fun (w, shape) ->
          if w <= 0.0 then invalid_arg "Shape: Mix weights must be positive";
          validate shape)
        branches

let rec mean_service = function
  | Single d -> Dist.mean d
  | Chain ds -> List.fold_left (fun acc d -> acc +. Dist.mean d) 0.0 ds
  | Fanout { width; stage } -> float_of_int width *. Dist.mean stage
  | Mix branches ->
      let weighted, total =
        List.fold_left
          (fun (acc, tw) (w, shape) -> (acc +. (w *. mean_service shape), tw +. w))
          (0.0, 0.0) branches
      in
      weighted /. total

let rec stages = function
  | Single _ -> 1
  | Chain ds -> List.length ds
  | Fanout { width; _ } -> width
  | Mix branches ->
      List.fold_left (fun acc (_, shape) -> max acc (stages shape)) 0 branches

let rec pp ppf = function
  | Single d -> Format.fprintf ppf "single(%a)" Dist.pp d
  | Chain ds ->
      Format.fprintf ppf "chain(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf " -> ")
           Dist.pp)
        ds
  | Fanout { width; stage } -> Format.fprintf ppf "fanout(%d x %a)" width Dist.pp stage
  | Mix branches ->
      let total = List.fold_left (fun acc (w, _) -> acc +. w) 0.0 branches in
      Format.fprintf ppf "mix(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf " | ")
           (fun ppf (w, shape) ->
             Format.fprintf ppf "%.0f%% %a" (w /. total *. 100.) pp shape))
        branches
