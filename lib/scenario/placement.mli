module Time = Skyloft_sim.Time
module Histogram = Skyloft_stats.Histogram
module Alloc_policy = Skyloft_alloc.Policy
module Broker = Skyloft_alloc.Broker
module Plan = Skyloft_fault.Plan

(** Oversubscribed-machine placements: N independent runtime instances
    (any mix of the three flavours) sharing one simulated machine under a
    core {!Broker}.

    Each tenant owns a disjoint physical core range sized by its
    burstable ceiling; the broker's allowance grants decide how much of
    that range it may occupy at any moment, and the broker capacity is
    typically smaller than the sum of ceilings — every tenant could
    burst, not all at once.  Centralized and hybrid tenants get one extra
    dedicated dispatcher core outside the brokered pool (the Caladan
    iokernel arrangement: control planes are not traded).

    Requests are issued open-loop per tenant and armed with a per-task
    deadline plus client-side retry ({!Skyloft_net.Loadgen.retrying}), so
    even a crashed tenant's accounting is lossless: every submitted
    request settles as exactly one of completed or gave-up
    ([{!lost} = 0], the reconciliation invariant the oversub experiment
    asserts).  Everything is a pure function of the seed: same seed ⇒
    byte-identical {!digest_string} at any [-j]. *)

type tenant = {
  name : string;
  runtime : Scenario.runtime;
  kind : Alloc_policy.kind;
      (** broker arbitration class: LC tenants may steal from BE tenants
          above their floors; BE tenants grow from the free pool only *)
  guaranteed : int;  (** floor, never reclaimed (except by crash) *)
  burstable : int;  (** ceiling; also the tenant's physical core range *)
  shape : Shape.t;
  arrival : Arrival.t;
}

val tenant :
  ?kind:Alloc_policy.kind ->
  name:string ->
  runtime:Scenario.runtime ->
  guaranteed:int ->
  burstable:int ->
  shape:Shape.t ->
  arrival:Arrival.t ->
  unit ->
  tenant
(** Validating constructor (default [kind] LC).  Raises
    [Invalid_argument] on negative floors, [burstable < max 1 guaranteed],
    or an invalid shape/arrival. *)

type config = {
  timer_hz : int;
  quantum : Time.t;
  deadline : Time.t;
      (** per-task kill timer; what keeps a dead tenant's requests from
          lingering forever *)
  retry_budget : int;
  retry_backoff : Time.t;
  broker : Broker.config;
}

val default_config : unit -> config
(** 100 kHz timers, 30 µs quantum, 5 ms deadline, 2 tries with 100 µs
    base backoff, {!Broker.default_config}. *)

type tenant_result = {
  t_name : string;
  t_runtime : string;
  t_kind : string;
  t_guaranteed : int;
  t_burstable : int;
  submitted : int;
  completed : int;
  gave_up : int;  (** retry budget exhausted *)
  deadline_drops : int;  (** task-level kills (a request may retry past one) *)
  final_granted : int;
  final_health : string;
  core_ns : int;  (** integral of granted cores over time *)
  latency : Histogram.t;  (** response time of completed requests, ns *)
  allowance : Skyloft_stats.Timeseries.t;
      (** granted cores over time — the broker's per-tenant series, ready
          to export as a Perfetto counter track *)
}

val lost : tenant_result -> int
(** [submitted - completed - gave_up]; 0 iff accounting reconciles. *)

type result = {
  placement : string;
  capacity : int;
  target : int;  (** requests per tenant *)
  last_completion : Time.t;
  tenants : tenant_result list;  (** registration (list) order *)
  fairness : float;  (** Jain over floor-normalized core-time integrals *)
  grants : int;
  reclaims : int;
  yields : int;
  degradations : int;
  quarantines : int;
  releases : int;
  crashes : int;
  charged_ns : Time.t;
}

val run :
  ?seed:int ->
  ?faults:Plan.t list ->
  ?config:config ->
  ?trace:Skyloft_stats.Trace.t ->
  ?registry:Skyloft_obs.Registry.t ->
  name:string ->
  capacity:int ->
  requests:int ->
  tenant list ->
  result
(** Build the machine, one runtime + app per tenant, register everyone
    with a fresh broker (initial grant = floor), arm tenant-level fault
    plans ({!Plan.tenant_hoard} / [tenant_stale] / [tenant_crash]; any
    machine-level plan raises), then drive every tenant's arrival stream
    until [requests] requests each have been issued and all of them have
    settled (bounded drain: a wedged placement returns [lost > 0] rather
    than hanging).  Raises [Invalid_argument] when floors exceed
    [capacity], on duplicate names, or an out-of-range fault tenant.
    Deterministic in [seed] (default 42).

    [trace] is a shared machine-wide flight recorder: every tenant's
    runtime records its spans/instants into it (physical core ids, so
    per-core tracks never interleave across tenants) and the broker
    mirrors its arbitration and health edges onto the base core of each
    tenant's range.  [registry] attaches tenant-labelled runtime metrics
    plus the broker's [skyloft_broker_*] family.  Both are strictly
    passive: attaching them does not change the simulation (obs-report
    asserts digest identity with and without). *)

val digest_string : result -> string
(** Canonical deterministic rendering (the oversub goldens are MD5 over
    this): per-tenant counts, health, core-time and latency summaries,
    then broker totals and fairness. *)

val pp_result : Format.formatter -> result -> unit
