module Dist = Skyloft_sim.Dist

(** Declarative service shapes for the scenario DSL: {e what} one request
    costs, as a composition of compute stages.

    Shapes follow the ebsl benchmark suite's three archetypes —
    [benchmark_webserver] (one stage per request), [benchmark_chain]
    (sequential dependent stages), [benchmark_mixer] (a probabilistic mix
    of different request classes, including parallel fan-out) — and
    compile onto runtime task submissions in {!Scenario}. *)

type t =
  | Single of Dist.t  (** one compute stage per request *)
  | Chain of Dist.t list
      (** sequential stages: stage [i+1] is submitted when stage [i]
          completes (its own scheduling round trip each time); the
          request completes with the last stage *)
  | Fanout of { width : int; stage : Dist.t }
      (** parallel stages: [width] tasks submitted together, each with an
          independent draw from [stage]; the request completes when all
          of them have (a webserver handler fanning out to backends and
          joining) *)
  | Mix of (float * t) list
      (** weighted request classes: each arrival picks one branch with
          probability proportional to its weight *)

val validate : t -> unit
(** @raise Invalid_argument on an empty chain or mix, non-positive mix
    weights, or a fan-out width below 1 (recursively). *)

val mean_service : t -> float
(** Expected total compute demand of one request in ns (exact from
    {!Dist.mean}): chain stages and fan-out branches add their work.
    Note this is CPU demand, not latency — fan-out stages overlap in
    time on a multi-core runtime. *)

val stages : t -> int
(** Maximum number of task submissions one request can cost (chain
    length / fan-out width; max across mix branches). *)

val pp : Format.formatter -> t -> unit
