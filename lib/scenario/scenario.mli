module Time = Skyloft_sim.Time
module Histogram = Skyloft_stats.Histogram

(** The scenario DSL: declarative workloads compiled onto the runtimes.

    A scenario composes three orthogonal pieces:

    - {e arrival processes} ({!Arrival}): when requests arrive — Poisson,
      MMPP on/off bursts, diurnal piecewise-rate curves;
    - {e service shapes} ({!Shape}): what one request costs — a single
      stage, a sequential chain, a parallel fan-out with join, or a
      weighted mix of those;
    - {e a tenant mix}: N co-located applications (hundreds scale fine)
      tagged LC or BE, the BE tenant carrying guaranteed/burstable core
      bounds that feed the {!Skyloft_alloc} allocator.

    {!run} compiles any scenario onto any of the four runtimes through
    {!Skyloft_net.Loadgen.stream} and returns only mergeable streaming
    digests — per-tenant log-linear histograms and counters, never
    per-request records — so a cell can run 10⁷+ requests in bounded
    live heap.  Everything is a pure function of the seed: same seed ⇒
    byte-identical {!digest_string}, at any [-j]. *)

type bounds = { guaranteed : int; burstable : int option }
(** BE core band fed to the allocator: [guaranteed] cores are never
    reclaimed, growth stops at [burstable] (default: every core). *)

type lc_spec = { lc_name : string; shape : Shape.t; arrival : Arrival.t }

type be_spec = {
  be_name : string;
  chunk : Time.t;
  workers : int option;
  bounds : bounds;
}

type tenant = Lc of lc_spec | Be of be_spec

type t = {
  name : string;
  cores : int;  (** worker cores (the centralized flavours add a dispatcher) *)
  timer_hz : int;
  quantum : Time.t;
  tenants : tenant list;
}

val lc : name:string -> shape:Shape.t -> arrival:Arrival.t -> tenant
(** A latency-critical tenant: an open-loop request stream. *)

val be :
  ?chunk:Time.t ->
  ?workers:int ->
  ?guaranteed:int ->
  ?burstable:int ->
  name:string ->
  unit ->
  tenant
(** The best-effort tenant: endless [chunk]-sized batch work (default
    50 µs chunks, one worker per core), co-scheduled under the core
    allocator within [guaranteed]..[burstable] cores (defaults 0..all). *)

val make :
  ?timer_hz:int -> ?quantum:Time.t -> name:string -> cores:int -> tenant list -> t
(** Assemble a scenario (100 kHz user timer and 30 µs quantum by
    default, the Table 5 parameters). *)

val validate : t -> unit
(** @raise Invalid_argument on: no LC tenant; more than one BE tenant
    (the runtimes attach a single BE application to the allocator);
    duplicate tenant names; out-of-range bounds; or any invalid shape or
    arrival process (recursively). *)

val mean_rate_rps : t -> float
(** Aggregate long-run LC arrival rate. *)

val offered_load : t -> float
(** Long-run LC compute demand over worker capacity (1.0 = saturated,
    before scheduling overheads). *)

(** {1 Compilation} *)

type runtime = Percpu | Centralized | Hybrid | Worksteal

val runtime_name : runtime -> string
val runtimes : runtime list

type tenant_digest = {
  tenant : string;
  submitted : int;
  completed : int;
  latency : Histogram.t;  (** response time, ns; mergeable snapshot *)
}

type digest = {
  scenario : string;
  runtime : string;
  target : int;  (** requested request count *)
  submitted : int;  (** actual; may overshoot by at most one in-flight
                        arrival per LC tenant *)
  completed : int;
  last_completion : Time.t;
  tenants : tenant_digest list;  (** LC tenants, scenario order *)
  be_preemptions : int;
  alloc_grants : int;
  alloc_reclaims : int;
}

val run : ?seed:int -> requests:int -> runtime:runtime -> t -> digest
(** Compile and run one cell: build the runtime (work-stealing per-CPU,
    Shinjuku-Shenango centralized, the hybrid, or the steal-half deque
    runtime), create one app per tenant, attach the BE tenant to the
    allocator with its bounds, drive
    every LC tenant's arrival process through
    {!Skyloft_net.Loadgen.stream} until [requests] arrivals have been
    issued in total, then drain until every submitted request completed
    (bounded: a wedged cell returns [completed < submitted] rather than
    hanging).  Live heap is O(tenants + in-flight), independent of
    [requests].  Deterministic in [seed] (default 42). *)

val merged_latency : digest -> Histogram.t
(** All LC tenants' latency histograms merged into one (fresh). *)

val digest_string : digest -> string
(** Canonical deterministic rendering of everything request-visible in
    the digest: counts, per-tenant and merged histogram summaries,
    allocator totals.  The scale experiment's goldens are MD5 over
    this. *)

val pp_digest : Format.formatter -> digest -> unit
