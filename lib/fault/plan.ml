module Time = Skyloft_sim.Time

type window = { start : Time.t; stop : Time.t option }

let window ?(start = 0) ?stop () =
  if start < 0 then invalid_arg "Plan.window: start must be >= 0";
  (match stop with
  | Some s when s <= start -> invalid_arg "Plan.window: stop must be after start"
  | Some _ | None -> ());
  { start; stop }

let always = { start = 0; stop = None }

let active w ~at =
  at >= w.start && match w.stop with Some s -> at < s | None -> true

let expired w ~at = match w.stop with Some s -> at >= s | None -> false

type ipi_loss = { p_drop : float; p_delay : float; delay : Time.t }

type spec =
  | Ipi_loss of ipi_loss
  | Core_steal of { period : Time.t; duration : Time.t }
  | Poison of { period : Time.t; service : Time.t }
  | Packet_loss of { p_drop : float }
  (* Tenant-level faults, armed against a machine-level core broker
     (Injector.arm_tenants) rather than machine hardware: *)
  | Tenant_hoard of { tenant : int }
      (* the tenant claims congestion forever: its broker sample reports a
         deep queue and full utilization regardless of reality *)
  | Tenant_stale of { tenant : int }
      (* the tenant stops reporting: its broker sample freezes at the
         first in-window value (busy never advances) *)
  | Tenant_crash of { tenant : int }
      (* the tenant's runtime dies at window start; the broker reclaims
         every core it held *)

type t = { window : window; spec : spec }

let check_prob what p =
  if p < 0.0 || p > 1.0 then
    invalid_arg (Printf.sprintf "Plan.%s: probability outside [0, 1]" what)

let ipi_loss ?(window = always) ?(p_drop = 0.0) ?(p_delay = 0.0)
    ?(delay = Time.us 50) () =
  check_prob "ipi_loss" p_drop;
  check_prob "ipi_loss" p_delay;
  if delay <= 0 then invalid_arg "Plan.ipi_loss: delay must be positive";
  if p_drop = 0.0 && p_delay = 0.0 then
    invalid_arg "Plan.ipi_loss: at least one probability must be non-zero";
  { window; spec = Ipi_loss { p_drop; p_delay; delay } }

let core_steal ?(window = always) ~period ~duration () =
  if period <= 0 then invalid_arg "Plan.core_steal: period must be positive";
  if duration <= 0 then invalid_arg "Plan.core_steal: duration must be positive";
  { window; spec = Core_steal { period; duration } }

let poison ?(window = always) ~period ~service () =
  if period <= 0 then invalid_arg "Plan.poison: period must be positive";
  if service <= 0 then invalid_arg "Plan.poison: service must be positive";
  { window; spec = Poison { period; service } }

let packet_loss ?(window = always) ~p_drop () =
  check_prob "packet_loss" p_drop;
  if p_drop = 0.0 then invalid_arg "Plan.packet_loss: p_drop must be non-zero";
  { window; spec = Packet_loss { p_drop } }

let check_tenant who tenant =
  if tenant < 0 then
    invalid_arg (Printf.sprintf "Plan.%s: tenant must be >= 0" who)

let tenant_hoard ?(window = always) ~tenant () =
  check_tenant "tenant_hoard" tenant;
  { window; spec = Tenant_hoard { tenant } }

let tenant_stale ?(window = always) ~tenant () =
  check_tenant "tenant_stale" tenant;
  { window; spec = Tenant_stale { tenant } }

let tenant_crash ?(window = always) ~tenant () =
  check_tenant "tenant_crash" tenant;
  { window; spec = Tenant_crash { tenant } }

let name t =
  match t.spec with
  | Ipi_loss _ -> "ipi-loss"
  | Core_steal _ -> "core-steal"
  | Poison _ -> "poison"
  | Packet_loss _ -> "packet-loss"
  | Tenant_hoard _ -> "tenant-hoard"
  | Tenant_stale _ -> "tenant-stale"
  | Tenant_crash _ -> "tenant-crash"
