module Time = Skyloft_sim.Time
module Engine = Skyloft_sim.Engine
module Rng = Skyloft_sim.Rng
module Machine = Skyloft_hw.Machine
module Vectors = Skyloft_hw.Vectors
module Kmod = Skyloft_kernel.Kmod
module Nic = Skyloft_net.Nic
module Trace = Skyloft_stats.Trace
module Allocator = Skyloft_alloc.Allocator
module Broker = Skyloft_alloc.Broker

type target = {
  machine : Machine.t;
  kmod : Kmod.t option;
  nic : Nic.t option;
  cores : int list;
  poison : (core:int -> service:Time.t -> unit) option;
}

type event = { at : Time.t; kind : string; core : int }

type t = {
  engine : Engine.t;
  rng : Rng.t;
  trace : Trace.t option;
  log : event Queue.t;
  counts : (string, int) Hashtbl.t;
  mutable armed : bool;
}

let log_cap = 65536

let create ~engine ~rng ?trace () =
  {
    engine;
    rng;
    trace;
    log = Queue.create ();
    counts = Hashtbl.create 8;
    armed = false;
  }

let now t = Engine.now t.engine

let record t ~kind ~core =
  Hashtbl.replace t.counts kind
    (1 + Option.value (Hashtbl.find_opt t.counts kind) ~default:0);
  if Queue.length t.log >= log_cap then ignore (Queue.pop t.log);
  Queue.push { at = now t; kind; core } t.log;
  match t.trace with
  | Some trace ->
      Trace.instant trace ~core:(max 0 core) ~at:(now t) Trace.Inject ~name:kind
  | None -> ()

(* One periodic loop per scheduled plan: fire every [period] inside the
   window, stop for good once it expires. *)
let periodic t ~(window : Plan.window) ~period fire =
  let start = max (window.Plan.start + period) (now t + period) in
  Engine.every t.engine ~period ~start (fun () ->
      if Plan.expired window ~at:(now t) then false
      else begin
        if Plan.active window ~at:(now t) then fire ();
        true
      end)

let pick_core t cores =
  let arr = Array.of_list cores in
  arr.(Rng.int t.rng (Array.length arr))

let arm t target plans =
  if t.armed then invalid_arg "Injector.arm: already armed";
  t.armed <- true;
  if target.cores = [] then invalid_arg "Injector.arm: no target cores";
  let ipi_plans =
    List.filter_map
      (fun (p : Plan.t) ->
        match p.Plan.spec with
        | Plan.Ipi_loss l -> Some (p.Plan.window, l)
        | _ -> None)
      plans
  in
  (* All IPI-loss plans share one machine-level hook; the first plan whose
     window is active decides the fate of each queried delivery.  The hook
     only touches notification and delegated-timer vectors on target cores:
     everything else delivers untouched. *)
  if ipi_plans <> [] then
    Machine.set_fault_hook target.machine (fun ~core vector ->
        let applicable =
          (vector = Vectors.uintr_notification || vector = Vectors.timer)
          && List.mem core target.cores
        in
        if not applicable then Machine.Deliver
        else
          match
            List.find_opt (fun (w, _) -> Plan.active w ~at:(now t)) ipi_plans
          with
          | None -> Machine.Deliver
          | Some (_, { Plan.p_drop; p_delay; delay }) ->
              if p_drop > 0.0 && Rng.uniform t.rng < p_drop then begin
                record t ~kind:"ipi-drop" ~core;
                Machine.Drop
              end
              else if p_delay > 0.0 && Rng.uniform t.rng < p_delay then begin
                record t ~kind:"ipi-delay" ~core;
                Machine.Delay delay
              end
              else Machine.Deliver);
  let packet_plans =
    List.filter_map
      (fun (p : Plan.t) ->
        match p.Plan.spec with
        | Plan.Packet_loss { p_drop } -> Some (p.Plan.window, p_drop)
        | _ -> None)
      plans
  in
  if packet_plans <> [] then begin
    let nic =
      match target.nic with
      | Some nic -> nic
      | None -> invalid_arg "Injector.arm: packet-loss plan without a NIC"
    in
    Nic.set_loss nic
      (Some
         (fun _pkt ->
           List.exists
             (fun (w, p_drop) ->
               Plan.active w ~at:(now t)
               && Rng.uniform t.rng < p_drop
               &&
               (record t ~kind:"pkt-drop" ~core:(-1);
                true))
             packet_plans))
  end;
  List.iter
    (fun (p : Plan.t) ->
      match p.Plan.spec with
      | Plan.Ipi_loss _ | Plan.Packet_loss _ -> ()
      | Plan.Tenant_hoard _ | Plan.Tenant_stale _ | Plan.Tenant_crash _ ->
          invalid_arg "Injector.arm: tenant plans are armed with arm_tenants"
      | Plan.Core_steal { period; duration } ->
          let kmod =
            match target.kmod with
            | Some kmod -> kmod
            | None -> invalid_arg "Injector.arm: core-steal plan without a Kmod"
          in
          periodic t ~window:p.Plan.window ~period (fun () ->
              let core = pick_core t target.cores in
              record t ~kind:"core-steal" ~core;
              Kmod.steal_core kmod ~core ~duration)
      | Plan.Poison { period; service } ->
          let poison =
            match target.poison with
            | Some f -> f
            | None ->
                invalid_arg "Injector.arm: poison plan without a spawn callback"
          in
          periodic t ~window:p.Plan.window ~period (fun () ->
              let core = pick_core t target.cores in
              record t ~kind:"poison" ~core;
              poison ~core ~service))
    plans

(* Tenant-level faults live one layer up from the machine: they corrupt
   (or end) what a tenant tells the machine-level core broker, not what
   the hardware does.  Armed separately from [arm] because the target is
   a [Broker.t], and independently of it — a scenario may arm both.  The
   hoard and stale interceptors are pure functions of the window and the
   sample stream, and the crash is a single scheduled thunk, so no RNG is
   drawn: tenant plans keep the fault-free-bit-identical contract. *)
let arm_tenants t ~broker plans =
  List.iter
    (fun (p : Plan.t) ->
      match p.Plan.spec with
      | Plan.Tenant_hoard { tenant } ->
          (* Claim congestion forever: deep queue, old work, and a busy
             integral that advances by exactly granted-cores x interval
             every tick — fully utilized, never stale, always hungry.
             This is the adversary the hoard detector (not the staleness
             detector) must catch. *)
          let active = ref false in
          let busy = ref 0 in
          Broker.intercept_sample broker ~tenant (fun ~granted raw ->
              if Plan.active p.Plan.window ~at:(now t) then begin
                if not !active then begin
                  active := true;
                  busy := raw.Allocator.busy_ns;
                  record t ~kind:"tenant-hoard" ~core:(-1)
                end;
                busy := !busy + (granted * Broker.interval broker);
                {
                  Allocator.runq_len = 64;
                  oldest_delay = Time.ms 5;
                  busy_ns = !busy;
                }
              end
              else begin
                active := false;
                raw
              end)
      | Plan.Tenant_stale { tenant } ->
          (* Stop reporting: the sample freezes at the first in-window
             value, queue pinned non-empty so the frozen signal reads as
             "work waiting, nothing moving" — the staleness detector's
             trigger condition. *)
          let frozen = ref None in
          Broker.intercept_sample broker ~tenant (fun ~granted:_ raw ->
              if Plan.active p.Plan.window ~at:(now t) then begin
                match !frozen with
                | Some r -> r
                | None ->
                    let r =
                      { raw with Allocator.runq_len = max 1 raw.Allocator.runq_len }
                    in
                    frozen := Some r;
                    record t ~kind:"tenant-stale" ~core:(-1);
                    r
              end
              else begin
                frozen := None;
                raw
              end)
      | Plan.Tenant_crash { tenant } ->
          let at = max p.Plan.window.Plan.start (now t) in
          ignore
            (Engine.at t.engine at (fun () ->
                 record t ~kind:"tenant-crash" ~core:(-1);
                 Broker.crash broker ~tenant))
      | Plan.Ipi_loss _ | Plan.Core_steal _ | Plan.Poison _
      | Plan.Packet_loss _ ->
          invalid_arg "Injector.arm_tenants: not a tenant plan")
    plans

let injected t = Hashtbl.fold (fun _ n acc -> acc + n) t.counts 0

let injected_of t ~kind =
  Option.value (Hashtbl.find_opt t.counts kind) ~default:0

let register_metrics t ?(labels = []) reg =
  let module Registry = Skyloft_obs.Registry in
  Registry.counter reg ~labels "skyloft_fault_injected_total"
    ~help:"Faults injected" (fun () -> injected t);
  List.iter
    (fun kind ->
      Registry.counter reg
        ~labels:(labels @ [ ("kind", kind) ])
        "skyloft_fault_injected_kind_total" ~help:"Faults injected by kind"
        (fun () -> injected_of t ~kind))
    [
      "ipi-drop";
      "ipi-delay";
      "core-steal";
      "poison";
      "pkt-drop";
      "tenant-hoard";
      "tenant-stale";
      "tenant-crash";
    ]

let events t = List.of_seq (Queue.to_seq t.log)
