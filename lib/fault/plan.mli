module Time = Skyloft_sim.Time

(** Declarative fault plans: what goes wrong, when, and how hard.

    A plan is pure data — nothing happens until {!Injector.arm} schedules
    it against a target.  Plans compose: arm a list of them and each
    contributes its fault class inside its activity {!window}.  All
    randomness is drawn from the injector's own split RNG, so a faulty run
    replays bit-for-bit from the same seed and a disabled injector makes
    zero draws (leaving every other stream untouched). *)

type window = { start : Time.t; stop : Time.t option }
(** Half-open activity interval [\[start, stop)]; [stop = None] means
    "until the end of the run". *)

val window : ?start:Time.t -> ?stop:Time.t -> unit -> window
val always : window

val active : window -> at:Time.t -> bool
val expired : window -> at:Time.t -> bool

type ipi_loss = { p_drop : float; p_delay : float; delay : Time.t }

type spec =
  | Ipi_loss of ipi_loss
      (** Each user-IPI notification / delegated timer tick is dropped with
          [p_drop], else delayed by [delay] with [p_delay] — the §3.2
          lost-wakeup window made manifest. *)
  | Core_steal of { period : Time.t; duration : Time.t }
      (** Every [period], the host kernel steals one target core for
          [duration] (imperfect isolation: bound workqueues, vmstat, RT
          throttling). *)
  | Poison of { period : Time.t; service : Time.t }
      (** Every [period], a poisoned task that computes for [service]
          without ever yielding lands on one target core — head-of-line
          blocking the watchdog must break. *)
  | Packet_loss of { p_drop : float }
      (** Each arriving packet is discarded at the wire with [p_drop]. *)
  | Tenant_hoard of { tenant : int }
      (** The tenant claims congestion forever: its broker congestion
          sample reports a deep queue and full utilization regardless of
          reality, so its policy keeps demanding cores.  Armed with
          {!Injector.arm_tenants} against a machine-level core broker. *)
  | Tenant_stale of { tenant : int }
      (** The tenant stops reporting: its broker sample freezes at the
          first in-window value (busy never advances, queue pinned
          non-empty), tripping the broker's staleness detector. *)
  | Tenant_crash of { tenant : int }
      (** The tenant's runtime dies at window start; the broker reclaims
          every core it held, guaranteed floor included. *)

type t = { window : window; spec : spec }

(** Constructors validate their parameters and raise [Invalid_argument]
    on nonsense (probabilities outside [0, 1], non-positive periods). *)

val ipi_loss :
  ?window:window ->
  ?p_drop:float ->
  ?p_delay:float ->
  ?delay:Time.t ->
  unit ->
  t
(** Default delay 50 µs; at least one probability must be non-zero. *)

val core_steal : ?window:window -> period:Time.t -> duration:Time.t -> unit -> t
val poison : ?window:window -> period:Time.t -> service:Time.t -> unit -> t
val packet_loss : ?window:window -> p_drop:float -> unit -> t

val tenant_hoard : ?window:window -> tenant:int -> unit -> t
val tenant_stale : ?window:window -> tenant:int -> unit -> t
val tenant_crash : ?window:window -> tenant:int -> unit -> t

val name : t -> string
