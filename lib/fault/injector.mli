module Time = Skyloft_sim.Time
module Engine = Skyloft_sim.Engine
module Rng = Skyloft_sim.Rng
module Machine = Skyloft_hw.Machine
module Kmod = Skyloft_kernel.Kmod
module Nic = Skyloft_net.Nic
module Trace = Skyloft_stats.Trace

(** Deterministic fault injector: schedules the fault {!Plan}s against a
    concrete target (machine, kernel module, NIC, cores).

    Determinism contract: give the injector its own {!Rng} split (via
    [Engine.split_rng]) and it draws from nothing else; when no plans are
    armed it draws nothing and schedules nothing, so a fault-free run is
    bit-identical to one built without an injector at all.  Every injected
    fault is counted, appended to a bounded event log, and — when a trace
    is attached — emitted as a {!Trace.Inject} instant, so recovery
    latencies can be read straight off the timeline. *)

type target = {
  machine : Machine.t;
  kmod : Kmod.t option;  (** required by [Core_steal] plans *)
  nic : Nic.t option;  (** required by [Packet_loss] plans *)
  cores : int list;
      (** cores eligible for IPI loss, steals, and poisoned tasks *)
  poison : (core:int -> service:Time.t -> unit) option;
      (** how to land a never-yielding task on a core (required by
          [Poison] plans): the runtime spawns a [service]-long compute
          with no scheduling point *)
}

type event = { at : Time.t; kind : string; core : int }
(** [core] is [-1] for faults without a core (packet drops). *)

type t

val create : engine:Engine.t -> rng:Rng.t -> ?trace:Trace.t -> unit -> t

val arm : t -> target -> Plan.t list -> unit
(** Install hooks and periodic loops for every plan.  May be called once
    per injector; raises [Invalid_argument] on a second call, or when a
    plan needs a target component ([kmod], [nic], [poison]) that is
    [None].  Fault kinds recorded: ["ipi-drop"], ["ipi-delay"],
    ["core-steal"], ["poison"], ["pkt-drop"]. *)

val arm_tenants : t -> broker:Skyloft_alloc.Broker.t -> Plan.t list -> unit
(** Arm tenant-level plans ([Tenant_hoard], [Tenant_stale],
    [Tenant_crash]) against a machine-level core {!Skyloft_alloc.Broker}:
    hoard and stale plans install per-tenant sample interceptors that
    rewrite what the tenant reports inside their windows (fault kinds
    ["tenant-hoard"] / ["tenant-stale"], recorded on the activation edge),
    and crash plans schedule a broker-driven reclamation at window start
    (["tenant-crash"]).  Independent of {!arm} — a scenario may use both.
    Tenant plans draw no randomness, preserving the fault-free
    determinism contract.  Raises [Invalid_argument] on a machine-level
    plan. *)

val injected : t -> int
(** Total faults injected so far. *)

val injected_of : t -> kind:string -> int
val events : t -> event list

(** [register_metrics t reg] registers the injected-fault counters, total
    and per kind (under [skyloft_fault_*]).  Pull-based; never perturbs
    the injection schedule. *)
val register_metrics :
  t -> ?labels:Skyloft_obs.Registry.labels -> Skyloft_obs.Registry.t -> unit
