module Time = Skyloft_sim.Time
module Engine = Skyloft_sim.Engine
module Machine = Skyloft_hw.Machine
module Vectors = Skyloft_hw.Vectors

type mode =
  | Spin
  | Periodic of Time.t
  | Msi of { machine : Machine.t; cores : int array }

type t = {
  engine : Engine.t;
  rings : Ring.t array;
  consumers : (Packet.t -> unit) option array;
  poll_cost : Time.t;
  mode : mode;
  mutable received : int;
  mutable loss : (Packet.t -> bool) option;  (* fault injection: wire loss *)
  mutable injected_drops : int;
  mutable poll_fns : (unit -> unit) array;
      (* one prebuilt spin-poll closure per queue, so Spin mode schedules
         the same closure per packet instead of allocating one *)
}

let drain t ~queue f =
  let ring = t.rings.(queue) in
  let rec go n =
    match Ring.pop ring with
    | Some pkt ->
        f pkt;
        go (n + 1)
    | None -> n
  in
  go 0

let create engine ~queues ?(ring_capacity = 1024) ?(poll_cost = 120) ?(mode = Spin) () =
  if queues <= 0 then invalid_arg "Nic.create: queues must be positive";
  (match mode with
  | Msi { cores; _ } when Array.length cores <> queues ->
      invalid_arg "Nic.create: Msi cores must match queue count"
  | _ -> ());
  let t =
    {
      engine;
      rings = Array.init queues (fun _ -> Ring.create ~capacity:ring_capacity);
      consumers = Array.make queues None;
      poll_cost;
      mode;
      received = 0;
      loss = None;
      injected_drops = 0;
      poll_fns = [||];
    }
  in
  t.poll_fns <-
    Array.init queues (fun queue () ->
        match Ring.pop t.rings.(queue) with
        | Some pkt -> (
            match t.consumers.(queue) with Some f -> f pkt | None -> ())
        | None -> ());
  (match mode with
  | Periodic interval ->
      for queue = 0 to queues - 1 do
        Engine.every engine ~period:interval (fun () ->
            (match t.consumers.(queue) with
            | Some f -> ignore (drain t ~queue f)
            | None -> ());
            true)
      done
  | Spin | Msi _ -> ());
  t

let on_packet t ~queue f =
  if queue < 0 || queue >= Array.length t.rings then invalid_arg "Nic.on_packet: bad queue";
  t.consumers.(queue) <- Some f

let rec rx t pkt =
  t.received <- t.received + 1;
  match t.loss with
  | Some lost when lost pkt -> t.injected_drops <- t.injected_drops + 1
  | Some _ | None -> rx_steer t pkt

and rx_steer t pkt =
  let queue = Rss.queue_of_flow ~queues:(Array.length t.rings) pkt.Packet.flow in
  let ring = t.rings.(queue) in
  let was_empty = Ring.is_empty ring in
  if Ring.push ring pkt then
    match t.mode with
    | Spin ->
        ignore (Engine.after t.engine t.poll_cost (Array.unsafe_get t.poll_fns queue))
    | Periodic _ -> ()
    | Msi { machine; cores } ->
        (* Interrupt coalescing: only an empty->nonempty transition posts an
           interrupt; the driver drains the whole ring per interrupt. *)
        if was_empty then begin
          let core = cores.(queue) in
          match Machine.uintr_installed machine ~core with
          | Some ctx -> Machine.senduipi machine ~src_core:core ctx ~uvec:Vectors.uvec_nic
          | None -> ()
        end

let set_loss t f = t.loss <- f
let queues t = Array.length t.rings
let drops t = Array.fold_left (fun acc ring -> acc + Ring.dropped ring) 0 t.rings
let received t = t.received
let injected_drops t = t.injected_drops

let register_metrics t ?(labels = []) reg =
  let module Registry = Skyloft_obs.Registry in
  Registry.counter reg ~labels "skyloft_nic_received_total"
    ~help:"Packets accepted into a receive ring" (fun () -> t.received);
  Registry.counter reg ~labels "skyloft_nic_drops_total"
    ~help:"Packets lost to full receive rings" (fun () -> drops t);
  Registry.counter reg ~labels "skyloft_nic_injected_drops_total"
    ~help:"Packets dropped by the injected wire-loss predicate" (fun () ->
      t.injected_drops)
