module Time = Skyloft_sim.Time
module Engine = Skyloft_sim.Engine
module Rng = Skyloft_sim.Rng
module Dist = Skyloft_sim.Dist

(** Open-loop load generator: the separate client machine of §5.3, issuing
    requests with Poisson arrivals regardless of server progress (the
    arrival process that makes tail latency honest). *)

val poisson :
  Engine.t ->
  rng:Rng.t ->
  rate_rps:float ->
  service:Dist.t ->
  ?start:Time.t ->
  duration:Time.t ->
  ?kind:(Rng.t -> string) ->
  (Packet.t -> unit) ->
  unit
(** Schedule Poisson arrivals at [rate_rps] for [duration] starting at
    [start] (default now).  Each arrival gets a service demand drawn from
    [service], a random flow id, and a kind from [kind] (default "req"),
    then is passed to the sink at its arrival time. *)

val stream :
  Engine.t ->
  next:(now:Time.t -> Time.t option) ->
  (Time.t -> unit) ->
  unit
(** Generalized open-loop driver: [next ~now] returns the absolute virtual
    time of the next arrival ([None] ends the stream; times in the past
    are clamped to [now]), and the sink runs at each arrival time with
    that time.  [next] is consulted once per arrival, after the sink —
    exactly one arrival is in flight at a time, so a stream holds O(1)
    event-queue space regardless of how many arrivals it will emit.
    {!Skyloft_scenario.Arrival} compiles its declarative arrival processes
    (Poisson, MMPP on/off, diurnal curves) into [next] functions. *)

val retrying :
  Engine.t ->
  ?budget:int ->
  ?backoff:Time.t ->
  ?max_backoff:Time.t ->
  attempt:(int -> (bool -> unit) -> unit) ->
  (unit -> unit) ->
  unit
(** Client-side retry with capped exponential backoff: [attempt k done_]
    issues try number [k] (0-based) and must eventually call [done_ ok]
    exactly once (extra calls are ignored).  On failure the next try
    fires after [min max_backoff (backoff * 2{^k})] (defaults: 100 µs
    base, 10 ms ceiling), up to [budget] tries total (default 3); when
    the budget is exhausted [give_up] runs instead — so every request
    ends in exactly one of success or give-up, never silence.

    The ceiling keeps large budgets sane: without it try 20 would wait
    100 µs × 2{^20} ≈ 105 s of virtual time (and the shift itself would
    overflow past try 62).  [max_backoff] must be at least [backoff];
    the small default budgets never reach the default ceiling, so
    existing fixed-seed runs are unchanged.  Used with per-task
    deadlines to keep request accounting lossless under injected
    faults. *)

val uniform_closed :
  Engine.t ->
  rng:Rng.t ->
  interval:Time.t ->
  count:int ->
  service:Dist.t ->
  (Packet.t -> unit) ->
  unit
(** Fixed-interval generator: [count] packets spaced [interval] apart
    (handy for deterministic tests and microbenchmarks). *)
