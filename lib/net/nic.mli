module Time = Skyloft_sim.Time
module Engine = Skyloft_sim.Engine
module Machine = Skyloft_hw.Machine

(** Simulated NIC with RSS steering into per-queue receive rings (§3.5),
    in three reception modes:

    - {!Spin}: a dedicated DPDK-style polling core forwards each packet to
      its queue's consumer after a small per-packet cost — the paper's
      deployment model.
    - {!Periodic}: the rings are drained in batches every fixed interval
      (an energy-conscious poller); packets wait up to one interval.
    - {!Msi}: the §6 extension — the device posts a user interrupt
      ({!Skyloft_hw.Vectors.uvec_nic}) to the queue's core when a packet
      lands in an empty ring, and the runtime's user-space driver drains
      it.  No polling core, no kernel: the interrupt path is the same
      UINTR machinery the scheduler uses. *)

type mode =
  | Spin
  | Periodic of Time.t
  | Msi of { machine : Machine.t; cores : int array }
      (** [cores.(q)] is the target core of queue [q]'s interrupt *)

type t

val create :
  Engine.t -> queues:int -> ?ring_capacity:int -> ?poll_cost:Time.t ->
  ?mode:mode -> unit -> t
(** [poll_cost] (default 120 ns) is the per-packet forwarding cost in
    [Spin] mode.  Default mode is [Spin]. *)

val on_packet : t -> queue:int -> (Packet.t -> unit) -> unit
(** Register the consumer for one queue (used by [Spin] and [Periodic];
    in [Msi] mode the runtime's interrupt handler calls {!drain}). *)

val rx : t -> Packet.t -> unit
(** A packet arrives from the wire now: steer by RSS, enqueue, and notify
    according to the mode.  Dropped if the ring is full. *)

val drain : t -> queue:int -> (Packet.t -> unit) -> int
(** Pop every packet currently in the queue's ring through [f]; returns
    the number drained.  This is the user-space driver path for [Msi]. *)

val queues : t -> int

val drops : t -> int
(** Packets lost to full receive rings (overflow). *)

val received : t -> int

(** {1 Fault injection} *)

val set_loss : t -> (Packet.t -> bool) option -> unit
(** Install (or clear) a wire-loss predicate: a packet for which it
    returns [true] is counted in {!injected_drops} and never reaches a
    ring — the injected-fault analogue of {!drops}.  Used by
    [Skyloft_fault] to model lossy links and NIC discards. *)

val injected_drops : t -> int

(** [register_metrics t reg] registers the NIC's packet counters (under
    [skyloft_nic_*]).  Pull-based; never perturbs the simulation. *)
val register_metrics :
  t -> ?labels:Skyloft_obs.Registry.labels -> Skyloft_obs.Registry.t -> unit
