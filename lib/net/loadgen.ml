module Time = Skyloft_sim.Time
module Engine = Skyloft_sim.Engine
module Rng = Skyloft_sim.Rng
module Dist = Skyloft_sim.Dist

let poisson engine ~rng ~rate_rps ~service ?start ~duration ?(kind = fun _ -> "req") sink =
  if rate_rps <= 0.0 then invalid_arg "Loadgen.poisson: rate must be positive";
  let start = match start with Some s -> s | None -> Engine.now engine in
  let mean_gap_ns = 1e9 /. rate_rps in
  let stop = start + duration in
  (* One reusable timer re-armed in place per arrival — the open-loop
     stream allocates no closure per request. *)
  let at = ref 0 in
  let tm = Engine.timer engine ignore in
  Engine.set_callback tm (fun () ->
      let arrival = !at in
      let pkt =
        Packet.create ~arrival
          ~service:(Dist.sample service rng)
          ~flow:(Rng.int rng 1_000_000) ~kind:(kind rng)
      in
      sink pkt;
      let gap = max 1 (int_of_float (Rng.exponential rng ~mean:mean_gap_ns)) in
      let next = arrival + gap in
      if next < stop then begin
        at := next;
        Engine.arm tm ~at:next
      end);
  let first = start + max 1 (int_of_float (Rng.exponential rng ~mean:mean_gap_ns)) in
  if first < stop then begin
    at := first;
    Engine.arm tm ~at:first
  end

let stream engine ~next emit =
  let tm = Engine.timer engine ignore in
  let at = ref 0 in
  let arm_next ~now =
    match next ~now with
    | None -> ()
    | Some t ->
        let t = max t now in
        at := t;
        Engine.arm tm ~at:t
  in
  Engine.set_callback tm (fun () ->
      let fired_at = !at in
      emit fired_at;
      arm_next ~now:fired_at);
  arm_next ~now:(Engine.now engine)

let retrying engine ?(budget = 3) ?(backoff = Time.us 100)
    ?(max_backoff = Time.ms 10) ~attempt give_up =
  if budget < 1 then invalid_arg "Loadgen.retrying: budget must be >= 1";
  if backoff < 0 then invalid_arg "Loadgen.retrying: backoff must be >= 0";
  if max_backoff < backoff then
    invalid_arg "Loadgen.retrying: max_backoff must be >= backoff";
  let rec go k =
    (* One outcome per attempt: a late failure signal after a success (or
       a duplicate callback) must not trigger a spurious retry. *)
    let finished = ref false in
    attempt k (fun ok ->
        if not !finished then begin
          finished := true;
          if not ok then
            if k + 1 < budget then
              (* the shift saturates well before it could overflow: past
                 2^20 the ceiling has long since taken over *)
              let wait = min max_backoff (backoff * (1 lsl min k 20)) in
              ignore (Engine.after engine wait (fun () -> go (k + 1)))
            else give_up ()
        end)
  in
  go 0

let uniform_closed engine ~rng ~interval ~count ~service sink =
  if interval <= 0 then invalid_arg "Loadgen.uniform_closed: interval must be positive";
  for i = 0 to count - 1 do
    let at = Engine.now engine + (i * interval) in
    ignore
      (Engine.at engine at (fun () ->
           sink
             (Packet.create ~arrival:at ~service:(Dist.sample service rng)
                ~flow:(Rng.int rng 1_000_000) ~kind:"req")))
  done
