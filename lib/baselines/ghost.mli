module Time = Skyloft_sim.Time

(** ghOSt model (§5.2 comparator): the same dispatcher-plus-workers shape
    as Skyloft-Shinjuku, with the ghOSt cost vector — agent/transaction
    work per dispatch, kernel-IPI preemption, kernel-thread switches —
    which is what produces its ~0.8× max throughput and ~3× low-load
    tails in Figure 7. *)

val make :
  Skyloft_hw.Machine.t ->
  Skyloft_kernel.Kmod.t ->
  dispatcher_core:int ->
  worker_cores:int list ->
  quantum:Time.t ->
  ?alloc:Skyloft_alloc.Allocator.config ->
  ?immediate:bool ->
  Skyloft.Sched_ops.ctor ->
  Skyloft.Centralized.t
