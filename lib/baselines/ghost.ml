module Time = Skyloft_sim.Time
module Machine = Skyloft_hw.Machine
module Kmod = Skyloft_kernel.Kmod
module Centralized = Skyloft.Centralized

(** ghOSt model (§5.2 comparator).

    ghOSt delegates kernel scheduling decisions to a user-space global
    agent: state changes flow to the agent as messages, decisions flow back
    as transactions committed into the kernel, and preemption rides kernel
    IPIs between kernel threads.  Structurally it is the same
    dispatcher-plus-workers shape as Skyloft-Shinjuku, so it runs on the
    same centralized runtime with the ghOSt cost vector
    ({!Skyloft.Centralized.ghost_mechanism}): ~1.5 µs of agent/transaction
    work per dispatch, kernel-IPI preemption, and kernel-thread context
    switches on the workers.  Those costs are what produce its lower
    maximum throughput (~0.8x) and ~3x higher low-load tail latency in
    Figure 7. *)

let make machine kmod ~dispatcher_core ~worker_cores ~quantum ?alloc ?immediate
    policy =
  Centralized.create machine kmod ~dispatcher_core ~worker_cores ~quantum
    ~mechanism:Centralized.ghost_mechanism ?alloc ?immediate policy
