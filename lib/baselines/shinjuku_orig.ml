module Time = Skyloft_sim.Time
module Machine = Skyloft_hw.Machine
module Kmod = Skyloft_kernel.Kmod
module Centralized = Skyloft.Centralized

(** Original Shinjuku model (§5.2 comparator).

    Shinjuku runs inside Dune and preempts workers with virtualization
    posted interrupts; its dispatcher spins on a dedicated core over a
    single global queue.  Preemption costs are a small multiple of user
    IPIs ({!Skyloft.Centralized.shinjuku_mechanism}), which is why the
    paper finds Skyloft and Shinjuku nearly indistinguishable on the
    single-workload experiment (Figure 7a).

    The structural difference is multi-application support: Shinjuku
    dedicates its cores to one application, so in the co-location
    experiment its batch CPU share is identically zero (Figure 7c) — here,
    simply never attach a BE application. *)

let make machine kmod ~dispatcher_core ~worker_cores ~quantum policy =
  Centralized.create machine kmod ~dispatcher_core ~worker_cores ~quantum
    ~mechanism:Centralized.shinjuku_mechanism ~immediate:true policy
