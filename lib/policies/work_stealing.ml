module Time = Skyloft_sim.Time
module Task = Skyloft.Task
module Sched_ops = Skyloft.Sched_ops
module Runqueue = Skyloft.Runqueue

(** Work stealing, Shenango-style (§5.3), in cooperative and preemptive
    variants.

    Each core owns a deque: the owner pushes and pops at the head (locality)
    while idle cores steal from the tail of a victim scanned round-robin.
    Woken tasks land on the waking core's queue.  The preemptive variant is
    the paper's punchline for RocksDB: {e without modifying the policy}, the
    user-space timer tick preempts any request that has run longer than the
    quantum, breaking head-of-line blocking for 591 µs scans while 0.95 µs
    GETs wait (Figure 8b).  [quantum = None] is plain Shenango-style
    cooperative work stealing (used for Memcached, Figure 8a). *)

let create ?quantum () : Sched_ops.ctor =
 fun view ->
  let queues = Hashtbl.create 32 in
  Array.iter (fun core -> Hashtbl.replace queues core (Runqueue.create ())) view.cores;
  let q cpu =
    match Hashtbl.find_opt queues cpu with
    | Some q -> q
    | None -> invalid_arg "work_stealing: unmanaged cpu"
  in
  let n = Array.length view.cores in
  let pos = Hashtbl.create 32 in
  Array.iteri (fun i core -> Hashtbl.replace pos core i) view.cores;
  (* Per-thief steal cursor: the next scan resumes where the last successful
     steal left off, so repeated steals spread across victims round-robin
     instead of draining thief+1 first. *)
  let cursor = Hashtbl.create 32 in
  (* Rotation point for wakeups from unmanaged cores when nobody is idle. *)
  let wake_rr = ref 0 in
  {
    Sched_ops.policy_name =
      (match quantum with Some _ -> "work-stealing-preemptive" | None -> "work-stealing");
    task_init = ignore;
    task_terminate = ignore;
    task_enqueue =
      (fun ~cpu ~reason task ->
        match reason with
        (* A preempted or yielded task goes to the tail so queued short
           work runs first... *)
        | Sched_ops.Enq_preempted | Sched_ops.Enq_yielded ->
            Runqueue.push_tail (q cpu) task
        (* ...while the owner pushes fresh and woken tasks at the head
           (LIFO locality: the newest task's state is hottest in cache). *)
        | Sched_ops.Enq_new | Sched_ops.Enq_woken -> Runqueue.push_head (q cpu) task);
    task_dequeue = (fun ~cpu -> Runqueue.pop_head (q cpu));
    task_block = (fun ~cpu:_ _ -> ());
    task_wakeup =
      (fun ~waker_cpu task ->
        let target =
          if Hashtbl.mem pos waker_cpu then waker_cpu
          else begin
            (* Unmanaged waker: prefer an idle core, else rotate the
               fallback so repeated wakeups do not hot-spot core 0. *)
            let fallback = view.cores.(!wake_rr mod n) in
            wake_rr := (!wake_rr + 1) mod n;
            Sched_ops.wakeup_to_idle_or view ~fallback
          end
        in
        Runqueue.push_head (q target) task;
        target);
    sched_timer_tick =
      (fun ~cpu task ->
        match quantum with
        | None -> false
        | Some quantum ->
            (* Preempting with an empty local queue would only reschedule
               the same task; skip the churn. *)
            (not (Runqueue.is_empty (q cpu)))
            && view.now () - task.Task.run_start >= quantum);
    sched_balance =
      (fun ~cpu ->
        (* Round-robin victim scan resuming at the persisted cursor (first
           scan starts just after the thief), stopping at the first hit. *)
        let self = match Hashtbl.find_opt pos cpu with Some i -> i | None -> 0 in
        let start =
          match Hashtbl.find_opt cursor cpu with
          | Some i -> i
          | None -> (self + 1) mod n
        in
        let stolen = ref None in
        let k = ref 0 in
        while !stolen = None && !k < n do
          let idx = (start + !k) mod n in
          if idx <> self then begin
            stolen := Runqueue.pop_tail (q view.cores.(idx));
            if !stolen <> None then Hashtbl.replace cursor cpu ((idx + 1) mod n)
          end;
          incr k
        done;
        !stolen);
  }
