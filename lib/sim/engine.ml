type t = {
  mutable clock : Time.t;
  queue : (unit -> unit) Eventq.t;
  root_rng : Rng.t;
  mutable fired : int;
}

let create ?(seed = 42) () =
  { clock = Time.zero; queue = Eventq.create (); root_rng = Rng.create ~seed; fired = 0 }

let now t = t.clock
let rng t = t.root_rng
let split_rng t = Rng.split t.root_rng

let at t time f =
  if time < t.clock then
    invalid_arg
      (Format.asprintf "Engine.at: time %a is before now %a" Time.pp time Time.pp t.clock);
  Eventq.schedule t.queue ~at:time f

let after t delay f =
  if delay < 0 then invalid_arg "Engine.after: negative delay";
  at t (t.clock + delay) f

let cancel t h = Eventq.cancel t.queue h

(* A reusable timer event: one stable [fire] closure for the timer's whole
   lifetime, re-armed in place, instead of a fresh closure per tick.  The
   handle field is cleared before the callback runs so the callback can
   re-arm immediately. *)
type timer = {
  te : t;
  mutable th : Eventq.handle;
  mutable cb : unit -> unit;
  fire : unit -> unit;
}

let timer t cb =
  let rec tm =
    { te = t; th = Eventq.null; cb; fire = (fun () -> tm.th <- Eventq.null; tm.cb ()) }
  in
  tm

let set_callback tm cb = tm.cb <- cb
let armed tm = not (Eventq.is_null tm.th)

let disarm tm =
  Eventq.cancel tm.te.queue tm.th;
  tm.th <- Eventq.null

let arm tm ~at:time =
  if armed tm then disarm tm;
  tm.th <- at tm.te time tm.fire

let arm_after tm delay =
  if delay < 0 then invalid_arg "Engine.arm_after: negative delay";
  arm tm ~at:(tm.te.clock + delay)

let recurring t ~period ?start f =
  if period <= 0 then invalid_arg "Engine.every: period must be positive";
  let first = match start with Some s -> s | None -> t.clock + period in
  let tm = timer t ignore in
  set_callback tm (fun () -> if f () then arm_after tm period);
  arm tm ~at:first;
  tm

let every t ~period ?start f = ignore (recurring t ~period ?start f)

let step t =
  let next = Eventq.next_time t.queue in
  if next < 0 then false
  else begin
    let f = Eventq.pop_exn t.queue in
    t.clock <- next;
    t.fired <- t.fired + 1;
    f ();
    true
  end

let run ?until ?max_events t =
  let limit = match until with Some l -> l | None -> max_int in
  let budget = ref (match max_events with Some n -> n | None -> max_int) in
  let continue = ref true in
  while !continue && !budget > 0 do
    let next = Eventq.next_time t.queue in
    if next < 0 then continue := false
    else if next > limit then begin
      t.clock <- max t.clock limit;
      continue := false
    end
    else begin
      let f = Eventq.pop_exn t.queue in
      t.clock <- next;
      t.fired <- t.fired + 1;
      f ();
      decr budget
    end
  done;
  match until with
  | Some limit when t.clock < limit && Eventq.is_empty t.queue -> t.clock <- limit
  | _ -> ()

let pending t = Eventq.size t.queue
let events_fired t = t.fired
