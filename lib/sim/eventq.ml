(* A handle carries a pointer to its queue's cancelled-in-heap counter so
   [cancel] — which has no queue argument — can keep [size] O(1): the
   count of cancelled entries still sitting in the heap is maintained
   live instead of recomputed by an O(n) scan. *)
type handle = {
  mutable cancelled : bool;
  mutable in_heap : bool;
  cancelled_in_heap : int ref;  (* shared with the owning queue *)
}

type 'a entry = { time : Time.t; seq : int; payload : 'a; handle : handle }

type 'a t = {
  mutable heap : 'a entry array;
  mutable len : int;
  mutable next_seq : int;
  cancelled_in_heap : int ref;
}

let create () =
  { heap = [||]; len = 0; next_seq = 0; cancelled_in_heap = ref 0 }

let entry_lt a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t =
  let cap = Array.length t.heap in
  let new_cap = if cap = 0 then 16 else cap * 2 in
  (* Safe placeholder: duplicate slot 0; len guards all reads. *)
  let fresh = Array.make new_cap t.heap.(0) in
  Array.blit t.heap 0 fresh 0 t.len;
  t.heap <- fresh

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if entry_lt t.heap.(i) t.heap.(parent) then begin
      let tmp = t.heap.(i) in
      t.heap.(i) <- t.heap.(parent);
      t.heap.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < t.len && entry_lt t.heap.(left) t.heap.(!smallest) then smallest := left;
  if right < t.len && entry_lt t.heap.(right) t.heap.(!smallest) then smallest := right;
  if !smallest <> i then begin
    let tmp = t.heap.(i) in
    t.heap.(i) <- t.heap.(!smallest);
    t.heap.(!smallest) <- tmp;
    sift_down t !smallest
  end

let schedule t ~at payload =
  if at < 0 then invalid_arg "Eventq.schedule: negative time";
  let handle =
    { cancelled = false; in_heap = true; cancelled_in_heap = t.cancelled_in_heap }
  in
  let entry = { time = at; seq = t.next_seq; payload; handle } in
  t.next_seq <- t.next_seq + 1;
  if t.len = 0 && Array.length t.heap = 0 then t.heap <- Array.make 16 entry;
  if t.len = Array.length t.heap then grow t;
  t.heap.(t.len) <- entry;
  t.len <- t.len + 1;
  sift_up t (t.len - 1);
  handle

let cancel handle =
  if not handle.cancelled then begin
    handle.cancelled <- true;
    if handle.in_heap then incr handle.cancelled_in_heap
  end

let is_cancelled handle = handle.cancelled

let pop_raw t =
  if t.len = 0 then None
  else begin
    let top = t.heap.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.heap.(0) <- t.heap.(t.len);
      sift_down t 0
    end;
    top.handle.in_heap <- false;
    if top.handle.cancelled then decr t.cancelled_in_heap;
    Some top
  end

let rec pop t =
  match pop_raw t with
  | None -> None
  | Some e ->
      if e.handle.cancelled then pop t
      else Some (e.time, e.payload)

let rec peek_time t =
  if t.len = 0 then None
  else if t.heap.(0).handle.cancelled then begin
    ignore (pop_raw t);
    peek_time t
  end
  else Some t.heap.(0).time

(* Lazy cancellation: live entries = stored entries minus the cancelled
   ones still in the heap, both tracked incrementally.  O(1). *)
let size t = t.len - !(t.cancelled_in_heap)
let is_empty t = size t = 0
