(* Structure-of-arrays binary min-heap.  The heap proper is a preallocated
   int Bigarray with three machine words per node — time, sequence number,
   slot index — so sifting moves unboxed ints with no write barrier.
   Payloads and per-event bookkeeping (generation, cancelled flag) live in a
   parallel slab addressed by slot index and recycled through a free stack,
   so [schedule]/[cancel]/[pop] allocate nothing in steady state.

   A handle is an int packing (generation lsl slot_bits) lor slot.  The
   slot's generation is bumped when the event leaves the heap, so a stale
   handle — one whose event already fired or was collected — fails the
   generation check and [cancel] is a no-op, preserving the old boxed
   handles' cancel-after-fire semantics without keeping them alive. *)

type handle = int

let null : handle = -1
let is_null (h : handle) = h < 0

(* 2^25 events in flight before slot indices run out (schedule raises past
   that); the remaining bits hold the generation, masked on wraparound. *)
let slot_bits = 25
let slot_mask = (1 lsl slot_bits) - 1
let gen_mask = (1 lsl (Sys.int_size - 1 - slot_bits)) - 1

type ba = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type 'a t = {
  mutable heap : ba;  (* stride 3 per node: time, seq, slot *)
  mutable len : int;  (* live heap nodes; each owns exactly one slot *)
  mutable next_seq : int;
  mutable cancelled_in_heap : int;
  (* slot slab, all of capacity [cap]: *)
  mutable gens : ba;  (* slot -> current generation *)
  mutable dead : ba;  (* slot -> 1 iff cancelled while still heaped *)
  mutable payloads : Obj.t array;
  mutable free : ba;  (* stack of free slot indices *)
  mutable free_top : int;
  mutable cap : int;
  mutable last_time : Time.t;  (* time of the event [pop_exn] last returned *)
}

let unit_obj = Obj.repr ()

let ba_create n = Bigarray.Array1.create Bigarray.int Bigarray.c_layout n

(* Eta-expanded at the concrete type so the access primitive is applied
   directly (and the wrapper inlined): a bare alias of [unsafe_get] is a
   closure over the generic kind-dispatching accessor, ~10x slower. *)
let[@inline] bget (a : ba) i = Bigarray.Array1.unsafe_get a i
let[@inline] bset (a : ba) i (v : int) = Bigarray.Array1.unsafe_set a i v

let create () =
  let cap = 16 in
  let free = ba_create cap in
  (* Stack top is the highest index, so seed it descending: slots are then
     handed out in ascending order, which keeps dumps readable. *)
  for i = 0 to cap - 1 do bset free i (cap - 1 - i) done;
  let gens = ba_create cap in
  Bigarray.Array1.fill gens 0;
  let dead = ba_create cap in
  Bigarray.Array1.fill dead 0;
  {
    heap = ba_create (3 * cap);
    len = 0;
    next_seq = 0;
    cancelled_in_heap = 0;
    gens;
    dead;
    payloads = Array.make cap unit_obj;
    free;
    free_top = cap;
    cap;
    last_time = -1;
  }

let grow t =
  let cap = t.cap in
  if cap > slot_mask lsr 1 then
    invalid_arg "Eventq.schedule: too many events in flight";
  let new_cap = cap * 2 in
  let heap = ba_create (3 * new_cap) in
  for i = 0 to (3 * t.len) - 1 do bset heap i (bget t.heap i) done;
  let gens = ba_create new_cap in
  let dead = ba_create new_cap in
  for i = 0 to cap - 1 do
    bset gens i (bget t.gens i);
    bset dead i (bget t.dead i)
  done;
  for i = cap to new_cap - 1 do
    bset gens i 0;
    bset dead i 0
  done;
  let payloads = Array.make new_cap unit_obj in
  Array.blit t.payloads 0 payloads 0 cap;
  (* grow only runs when every slot is live, so the free stack is empty:
     refill it with just the new slots, descending for ascending hand-out *)
  let free = ba_create new_cap in
  for i = 0 to new_cap - cap - 1 do bset free i (new_cap - 1 - i) done;
  t.heap <- heap;
  t.gens <- gens;
  t.dead <- dead;
  t.payloads <- payloads;
  t.free <- free;
  t.free_top <- new_cap - cap;
  t.cap <- new_cap

(* node [i] sorts before node [j]: earlier time, or same time and earlier
   sequence number — the FIFO-at-same-instant determinism contract *)
let node_lt t i j =
  let bi = 3 * i and bj = 3 * j in
  let ti = bget t.heap bi and tj = bget t.heap bj in
  ti < tj || (ti = tj && bget t.heap (bi + 1) < bget t.heap (bj + 1))

let swap_nodes t i j =
  let bi = 3 * i and bj = 3 * j in
  let t0 = bget t.heap bi and t1 = bget t.heap (bi + 1) and t2 = bget t.heap (bi + 2) in
  bset t.heap bi (bget t.heap bj);
  bset t.heap (bi + 1) (bget t.heap (bj + 1));
  bset t.heap (bi + 2) (bget t.heap (bj + 2));
  bset t.heap bj t0;
  bset t.heap (bj + 1) t1;
  bset t.heap (bj + 2) t2

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if node_lt t i parent then begin
      swap_nodes t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < t.len && node_lt t left !smallest then smallest := left;
  if right < t.len && node_lt t right !smallest then smallest := right;
  if !smallest <> i then begin
    swap_nodes t i !smallest;
    sift_down t !smallest
  end

let schedule t ~at payload =
  if at < 0 then invalid_arg "Eventq.schedule: negative time";
  if t.free_top = 0 then grow t;
  t.free_top <- t.free_top - 1;
  let slot = bget t.free t.free_top in
  bset t.dead slot 0;
  Array.unsafe_set t.payloads slot (Obj.repr payload);
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let i = t.len in
  t.len <- i + 1;
  let b = 3 * i in
  bset t.heap b at;
  bset t.heap (b + 1) seq;
  bset t.heap (b + 2) slot;
  sift_up t i;
  (bget t.gens slot lsl slot_bits) lor slot

(* A handle is valid while its slot's generation matches; anything else —
   negative, out of range, stale — refers to an event that already left the
   heap and must be ignored. *)
let live_slot t (h : handle) =
  if h < 0 then -1
  else
    let slot = h land slot_mask in
    if slot < t.cap && bget t.gens slot = h asr slot_bits then slot else -1

let cancel t (h : handle) =
  let slot = live_slot t h in
  if slot >= 0 && bget t.dead slot = 0 then begin
    bset t.dead slot 1;
    t.cancelled_in_heap <- t.cancelled_in_heap + 1;
    (* [size] must never go negative: every cancelled entry is still heaped *)
    assert (t.cancelled_in_heap <= t.len)
  end

let is_cancelled t (h : handle) =
  let slot = live_slot t h in
  slot >= 0 && bget t.dead slot = 1

(* Release the popped node's slot: bump the generation so outstanding
   handles go stale, drop the payload reference, recycle the index. *)
let free_slot t slot =
  bset t.gens slot ((bget t.gens slot + 1) land gen_mask);
  Array.unsafe_set t.payloads slot unit_obj;
  bset t.free t.free_top slot;
  t.free_top <- t.free_top + 1

(* Remove the heap root and free its slot; true iff it was cancelled. *)
let drop_top t =
  let slot = bget t.heap 2 in
  let last = t.len - 1 in
  t.len <- last;
  if last > 0 then begin
    let b = 3 * last in
    bset t.heap 0 (bget t.heap b);
    bset t.heap 1 (bget t.heap (b + 1));
    bset t.heap 2 (bget t.heap (b + 2));
    sift_down t 0
  end;
  let cancelled = bget t.dead slot = 1 in
  if cancelled then begin
    t.cancelled_in_heap <- t.cancelled_in_heap - 1;
    assert (t.cancelled_in_heap >= 0)
  end;
  free_slot t slot;
  cancelled

exception Empty

(* Zero-allocation pop for the engine's hot loop: the payload comes back
   bare and the event's timestamp is left in [last_time]. *)
let rec pop_exn : 'a. 'a t -> 'a =
 fun t ->
  if t.len = 0 then raise Empty
  else begin
    let time = bget t.heap 0 in
    let slot = bget t.heap 2 in
    let payload = Array.unsafe_get t.payloads slot in
    if drop_top t then pop_exn t
    else begin
      t.last_time <- time;
      (Obj.obj payload : 'a)
    end
  end

let last_time t = t.last_time

let pop t =
  if t.len = 0 then None
  else
    match pop_exn t with
    | payload -> Some (t.last_time, payload)
    | exception Empty -> None

(* Earliest live event's time, or -1 when none; cancelled entries at the
   root are collected on the way (lazy deletion). *)
let rec next_time t =
  if t.len = 0 then -1
  else if bget t.dead (bget t.heap 2) = 1 then begin
    ignore (drop_top t);
    next_time t
  end
  else bget t.heap 0

let peek_time t = match next_time t with -1 -> None | time -> Some time

(* Lazy cancellation: live entries = stored entries minus the cancelled
   ones still in the heap, both tracked incrementally.  O(1). *)
let size t = t.len - t.cancelled_in_heap
let is_empty t = size t = 0

let check_invariants t =
  if t.len < 0 || t.len > t.cap then failwith "Eventq: len out of range";
  if t.free_top <> t.cap - t.len then failwith "Eventq: slot/heap leak";
  if t.cancelled_in_heap < 0 then failwith "Eventq: negative cancelled count";
  if t.cancelled_in_heap > t.len then failwith "Eventq: cancelled > heaped";
  if size t < 0 then failwith "Eventq: negative size";
  let cancelled = ref 0 in
  for i = 0 to t.len - 1 do
    if bget t.dead (bget t.heap ((3 * i) + 2)) = 1 then incr cancelled;
    if i > 0 && node_lt t i ((i - 1) / 2) then failwith "Eventq: heap order"
  done;
  if !cancelled <> t.cancelled_in_heap then
    failwith "Eventq: cancelled count drifted"
