type t =
  | Constant of Time.t
  | Exponential of { mean : Time.t }
  | Uniform of { lo : Time.t; hi : Time.t }
  | Bimodal of { p_short : float; short : Time.t; long : Time.t }
  | Lognormal of { mu : float; sigma : float }
  | Pareto of { scale : Time.t; alpha : float; cap : Time.t }

let clamp x = if x < 1 then 1 else x

(* Box-Muller; one draw per call is fine at simulation scale. *)
let normal rng =
  let u1 = 1.0 -. Rng.uniform rng and u2 = Rng.uniform rng in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let sample t rng =
  match t with
  | Constant d -> clamp d
  | Exponential { mean } ->
      clamp (int_of_float (Rng.exponential rng ~mean:(float_of_int mean)))
  | Uniform { lo; hi } ->
      if hi <= lo then clamp lo else clamp (lo + Rng.int rng (hi - lo))
  | Bimodal { p_short; short; long } ->
      if Rng.uniform rng < p_short then clamp short else clamp long
  | Lognormal { mu; sigma } ->
      clamp (int_of_float (exp (mu +. (sigma *. normal rng))))
  | Pareto { scale; alpha; cap } ->
      if scale < 1 || cap < scale || alpha <= 0.0 then
        invalid_arg "Dist.sample: Pareto needs 1 <= scale <= cap and alpha > 0";
      (* Inverse CDF on (0, 1]: 1 - uniform avoids u = 0 (infinite draw). *)
      let u = 1.0 -. Rng.uniform rng in
      let x = float_of_int scale /. (u ** (1.0 /. alpha)) in
      clamp (min cap (int_of_float x))

let mean = function
  | Constant d -> float_of_int d
  | Exponential { mean } -> float_of_int mean
  | Uniform { lo; hi } -> float_of_int (lo + hi) /. 2.0
  | Bimodal { p_short; short; long } ->
      (p_short *. float_of_int short) +. ((1.0 -. p_short) *. float_of_int long)
  | Lognormal { mu; sigma } -> exp (mu +. (sigma *. sigma /. 2.0))
  | Pareto { scale; alpha; cap } ->
      (* Exact mean of the capped distribution min(X, cap):
         E = int_{s}^{c} x f(x) dx + c * P(X > c)
           = alpha/(alpha-1) * s * (1 - (s/c)^(alpha-1)) + c * (s/c)^alpha
         and the alpha = 1 limit is s * (1 + ln (c/s)).  The cap makes the
         mean finite even for alpha <= 1, where the unbounded Pareto
         diverges. *)
      let s = float_of_int scale and c = float_of_int cap in
      if cap = scale then s
      else if Float.abs (alpha -. 1.0) < 1e-9 then s *. (1.0 +. log (c /. s))
      else
        (alpha /. (alpha -. 1.0) *. s *. (1.0 -. ((s /. c) ** (alpha -. 1.0))))
        +. (c *. ((s /. c) ** alpha))

let pp ppf = function
  | Constant d -> Format.fprintf ppf "const(%a)" Time.pp d
  | Exponential { mean } -> Format.fprintf ppf "exp(mean=%a)" Time.pp mean
  | Uniform { lo; hi } -> Format.fprintf ppf "uniform(%a,%a)" Time.pp lo Time.pp hi
  | Bimodal { p_short; short; long } ->
      Format.fprintf ppf "bimodal(%.1f%% %a / %a)" (p_short *. 100.) Time.pp short Time.pp long
  | Lognormal { mu; sigma } -> Format.fprintf ppf "lognormal(mu=%.2f,sigma=%.2f)" mu sigma
  | Pareto { scale; alpha; cap } ->
      Format.fprintf ppf "pareto(scale=%a,alpha=%.2f,cap=%a)" Time.pp scale alpha
        Time.pp cap

let dispersive = Bimodal { p_short = 0.995; short = Time.us 4; long = Time.ms 10 }
let rocksdb_bimodal = Bimodal { p_short = 0.5; short = Time.ns 950; long = Time.us 591 }
let memcached_usr = Exponential { mean = Time.us 2 }

let pareto_heavy =
  Pareto { scale = Time.us 1; alpha = 1.3; cap = Time.ms 5 }
