(** Discrete-event simulation driver.

    The engine owns the virtual clock and the event queue.  Components
    schedule thunks at absolute or relative virtual times; [run] fires them
    in time order, advancing the clock discontinuously.  Within one instant,
    events fire in scheduling order.

    The engine deliberately knows nothing about cores, interrupts, or
    schedulers — those live in the hardware and kernel layers and express
    themselves as scheduled thunks. *)

type t

val create : ?seed:int -> unit -> t
(** Fresh engine with clock at 0.  [seed] (default 42) seeds the root PRNG
    from which component streams are split. *)

val now : t -> Time.t
(** Current virtual time. *)

val rng : t -> Rng.t
(** The engine's root PRNG.  Prefer [split_rng] for components. *)

val split_rng : t -> Rng.t
(** A fresh independent stream for one simulation component. *)

val at : t -> Time.t -> (unit -> unit) -> Eventq.handle
(** [at t time f] schedules [f] to run at absolute virtual [time], which must
    not be in the past. *)

val after : t -> Time.t -> (unit -> unit) -> Eventq.handle
(** [after t delay f] schedules [f] to run [delay] ns from now. *)

val cancel : t -> Eventq.handle -> unit
(** Cancel a scheduled event; stale or [Eventq.null] handles are no-ops. *)

(** {2 Reusable timer events}

    A [timer] owns one stable closure for its whole lifetime and is
    re-armed in place, so self-re-arming periodic work — timer ticks, NIC
    polls, arrival streams, watchdogs — costs zero allocations per tick
    instead of a closure plus handle each. *)

type timer

val timer : t -> (unit -> unit) -> timer
(** A disarmed timer running the given callback when it fires.  The
    timer's pending-event handle is cleared before the callback runs, so
    the callback may [arm] it again immediately (self-re-arm). *)

val set_callback : timer -> (unit -> unit) -> unit
(** Replace the timer's callback (takes effect from the next firing). *)

val arm : timer -> at:Time.t -> unit
(** Schedule the timer's next firing at an absolute time, cancelling any
    firing already pending. *)

val arm_after : timer -> Time.t -> unit
(** [arm] at [now + delay]. *)

val disarm : timer -> unit
(** Cancel the pending firing, if any. *)

val armed : timer -> bool

val recurring : t -> period:Time.t -> ?start:Time.t -> (unit -> bool) -> timer
(** [recurring t ~period f] runs [f] each [period] ns (first at [start],
    default [now + period]) until [f] returns [false]; the returned timer
    can be disarmed or re-armed to pause/resume the cycle. *)

val every : t -> period:Time.t -> ?start:Time.t -> (unit -> bool) -> unit
(** [recurring] for callers that never need the timer back. *)

val run : ?until:Time.t -> ?max_events:int -> t -> unit
(** Drain the event queue.  Stops when the queue is empty, when the next
    event would fire after [until], or after [max_events] events.  The clock
    is left at the last fired event (or at [until] if given and reached). *)

val step : t -> bool
(** Fire exactly the next event.  [false] when the queue is empty. *)

val pending : t -> int
(** Number of live scheduled events. *)

val events_fired : t -> int
(** Total events fired since creation (useful to bound runaway models). *)
