(** Service-time and inter-arrival distributions used by the workloads.

    Distributions are immutable descriptions; [sample] draws from a supplied
    generator so the same description can feed several independent streams.
    All samples are virtual-time durations in nanoseconds. *)

type t =
  | Constant of Time.t  (** always the same duration *)
  | Exponential of { mean : Time.t }  (** light-tailed, memoryless *)
  | Uniform of { lo : Time.t; hi : Time.t }
  | Bimodal of { p_short : float; short : Time.t; long : Time.t }
      (** with probability [p_short] the short mode, otherwise the long one;
          the paper's dispersive (99.5% 4 µs / 0.5% 10 ms) and RocksDB
          (50% 0.95 µs / 50% 591 µs) workloads are both of this form *)
  | Lognormal of { mu : float; sigma : float }
      (** parameters of the underlying normal; samples in ns *)
  | Pareto of { scale : Time.t; alpha : float; cap : Time.t }
      (** bounded heavy tail: a Pareto with minimum [scale] and shape
          [alpha], clamped at [cap].  Requires [1 <= scale <= cap] and
          [alpha > 0].  The cap keeps the mean finite (and [mean] exact)
          even for [alpha <= 1], where the unbounded Pareto diverges —
          LibPreemptible-style heavy-tailed service times without
          unbounded single requests. *)

val sample : t -> Rng.t -> Time.t
(** Draw one duration.  Samples are clamped to be at least 1 ns. *)

val mean : t -> float
(** Expected value in nanoseconds (exact, not estimated; for [Pareto] the
    mean of the capped distribution [min (X, cap)], in closed form). *)

val pp : Format.formatter -> t -> unit

(** {1 Common workloads from the paper} *)

val dispersive : t
(** §5.2 synthetic workload: 99.5% short requests of 4 µs, 0.5% long
    requests of 10 ms. *)

val rocksdb_bimodal : t
(** §5.3 RocksDB server workload: 50% GET at 0.95 µs, 50% SCAN at 591 µs. *)

val memcached_usr : t
(** §5.3 Memcached USR workload service time: GET-dominated and
    light-tailed.  Modelled as exponential with a 2 µs mean around the
    measured per-request cost. *)

val pareto_heavy : t
(** Heavy-tailed reference workload for the scenario experiments: Pareto
    with a 1 µs minimum, shape 1.3, capped at 5 ms (mean ~4.1 µs). *)
