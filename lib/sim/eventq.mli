(** Timestamped event queue: the heart of the discrete-event engine.

    A structure-of-arrays binary min-heap keyed by (time, sequence number):
    time, sequence and slot index live as unboxed machine words in a
    preallocated int [Bigarray], payloads and handle state in a parallel
    generation-counted free-list slab.  [schedule], [cancel] and [pop]
    allocate nothing in steady state.  The sequence number guarantees that
    events scheduled for the same instant fire in insertion order, which
    keeps simulations deterministic.  Events can be cancelled in O(1)
    through the handle returned at insertion (lazy deletion). *)

type 'a t

type handle = private int
(** Token for a scheduled event; allows cancellation.  An int packing the
    event's slot index and the slot's generation: once the event fires or
    its cancelled entry is collected, the generation moves on and the
    handle goes stale — stale handles are ignored everywhere. *)

val null : handle
(** A handle that never refers to any event; [cancel] on it is a no-op.
    Lets callers keep a bare [handle] field instead of [handle option]. *)

val is_null : handle -> bool

val create : unit -> 'a t

val schedule : 'a t -> at:Time.t -> 'a -> handle
(** Insert an event to fire at absolute time [at]. *)

val cancel : 'a t -> handle -> unit
(** Cancel a scheduled event.  Cancelling twice, cancelling [null], or
    cancelling an event that already fired (stale generation), is a
    no-op. *)

val is_cancelled : 'a t -> handle -> bool
(** True iff the handle's event is still pending and has been cancelled.
    Once the cancelled entry is lazily collected the handle goes stale and
    this returns [false]. *)

val pop : 'a t -> (Time.t * 'a) option
(** Remove and return the earliest live event, skipping cancelled ones.
    [None] when the queue holds no live events.  Allocates the result;
    the engine's hot loop uses [pop_exn]/[last_time] instead. *)

exception Empty

val pop_exn : 'a t -> 'a
(** Allocation-free [pop]: returns the payload bare and records the
    event's timestamp, readable via [last_time].  @raise Empty when the
    queue holds no live events. *)

val last_time : 'a t -> Time.t
(** Timestamp of the event the last successful [pop_exn] returned
    (-1 before the first pop). *)

val next_time : 'a t -> Time.t
(** Time of the earliest live event, or -1 when there is none.
    Allocation-free [peek_time]; collects cancelled entries at the root. *)

val peek_time : 'a t -> Time.t option
(** Time of the earliest live event without removing it. *)

val size : 'a t -> int
(** Number of live (non-cancelled, not yet fired) events.  O(1): the
    count of cancelled-but-still-heaped entries is tracked incrementally
    rather than recomputed by scanning the heap. *)

val is_empty : 'a t -> bool
(** O(1). *)

val check_invariants : 'a t -> unit
(** Test hook: verify the heap order, the slot/heap conservation law
    (every heap node owns exactly one slab slot), and that the live
    cancelled count matches a full recount — [size] can never go
    negative.  Raises [Failure] on drift.  O(n). *)
