(** Timestamped event queue: the heart of the discrete-event engine.

    A binary min-heap keyed by (time, sequence number).  The sequence number
    guarantees that events scheduled for the same instant fire in insertion
    order, which keeps simulations deterministic.  Events can be cancelled in
    O(1) through the handle returned at insertion (lazy deletion). *)

type 'a t

type handle
(** Token for a scheduled event; allows cancellation. *)

val create : unit -> 'a t

val schedule : 'a t -> at:Time.t -> 'a -> handle
(** Insert an event to fire at absolute time [at]. *)

val cancel : handle -> unit
(** Cancel a scheduled event.  Cancelling twice, or cancelling an event that
    already fired, is a no-op. *)

val is_cancelled : handle -> bool

val pop : 'a t -> (Time.t * 'a) option
(** Remove and return the earliest live event, skipping cancelled ones.
    [None] when the queue holds no live events. *)

val peek_time : 'a t -> Time.t option
(** Time of the earliest live event without removing it. *)

val size : 'a t -> int
(** Number of live (non-cancelled, not yet fired) events.  O(1): the
    count of cancelled-but-still-heaped entries is tracked incrementally
    rather than recomputed by scanning the heap. *)

val is_empty : 'a t -> bool
(** O(1). *)
