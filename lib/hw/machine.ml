module Time = Skyloft_sim.Time
module Engine = Skyloft_sim.Engine

type vector = int

type uintr_ctx = {
  mutable pir : int64;
  mutable sn : bool;
  mutable uinv : vector;
  mutable uirr : int64;
  mutable handler : (uvec:int -> unit) option;
  mutable installed_on : int option;
}

type core = {
  id : int;
  socket_id : int;
  mutable uintr : uintr_ctx option;
  mutable kernel_handler : (vector -> unit) option;
  mutable masked : bool;
  mutable pending : vector list;  (* reversed arrival order *)
  mutable timer_gen : int;  (* invalidates stale periodic arms *)
  mutable hz : int;
  mutable interrupts_received : int;
  mutable user_interrupts : int;
  mutable dropped : int;
  deliver : (unit -> unit) option array;
      (* memoized per-vector delivery closures: every IPI to this core
         schedules the same closure instead of allocating a fresh one *)
}

type fate = Deliver | Drop | Delay of Time.t

type t = {
  engine : Engine.t;
  topo : Topology.t;
  cores : core array;
  mutable fault_hook : (core:int -> vector -> fate) option;
  mutable injected_ipi_drops : int;
  mutable injected_ipi_delays : int;
}

let create engine topo =
  let make_core id =
    {
      id;
      socket_id = Topology.socket_of_core topo id;
      uintr = None;
      kernel_handler = None;
      masked = false;
      pending = [];
      timer_gen = 0;
      hz = 0;
      interrupts_received = 0;
      user_interrupts = 0;
      dropped = 0;
      deliver = Array.make 256 None;
    }
  in
  {
    engine;
    topo;
    cores = Array.init (Topology.total_cores topo) make_core;
    fault_hook = None;
    injected_ipi_drops = 0;
    injected_ipi_delays = 0;
  }

let engine t = t.engine
let topology t = t.topo
let n_cores t = Array.length t.cores

let core t i =
  if i < 0 || i >= Array.length t.cores then invalid_arg "Machine.core: bad core id";
  t.cores.(i)

let core_id c = c.id
let socket c = c.socket_id
let set_kernel_handler c f = c.kernel_handler <- Some f
let interrupts_masked c = c.masked

(* Recognition: move posted PIR bits into the UIRR and run the handler once
   per set bit, highest vector first (x86 priority order). *)
let recognize c ctx =
  if ctx.pir = 0L then c.dropped <- c.dropped + 1
  else begin
    ctx.uirr <- Int64.logor ctx.uirr ctx.pir;
    ctx.pir <- 0L;
    match ctx.handler with
    | None -> ()
    | Some handler ->
        for uvec = 63 downto 0 do
          let bit = Int64.shift_left 1L uvec in
          if Int64.logand ctx.uirr bit <> 0L then begin
            ctx.uirr <- Int64.logand ctx.uirr (Int64.lognot bit);
            c.user_interrupts <- c.user_interrupts + 1;
            handler ~uvec
          end
        done
  end

let dispatch c v =
  c.interrupts_received <- c.interrupts_received + 1;
  match c.uintr with
  | Some ctx when v = ctx.uinv -> recognize c ctx
  | Some _ | None -> ( match c.kernel_handler with Some f -> f v | None -> ())

let raise_vector c v = if c.masked then c.pending <- v :: c.pending else dispatch c v

let mask_interrupts c = c.masked <- true

let unmask_interrupts c =
  c.masked <- false;
  let queued = List.rev c.pending in
  c.pending <- [];
  let rec replay = function
    | [] -> ()
    | v :: rest ->
        if c.masked then
          (* A handler re-masked mid-replay.  The still-queued remainder is
             older than anything raised since the re-mask, so it belongs at
             the back of [pending] (which is newest-first): appending its
             reversal preserves global arrival order. *)
          c.pending <- c.pending @ List.rev (v :: rest)
        else begin
          dispatch c v;
          replay rest
        end
  in
  replay queued

(* Fault injection (lib/fault): an optional hook decides the fate of each
   interrupt about to be delivered.  Without a hook every call is [Deliver]
   with zero extra work, so fault-free runs are bit-identical to a build
   that never heard of injection. *)
let set_fault_hook t f = t.fault_hook <- Some f
let clear_fault_hook t = t.fault_hook <- None

let fault_fate t ~core v =
  match t.fault_hook with
  | None -> Deliver
  | Some f -> (
      match f ~core v with
      | Deliver -> Deliver
      | Drop ->
          t.injected_ipi_drops <- t.injected_ipi_drops + 1;
          Drop
      | Delay d ->
          t.injected_ipi_delays <- t.injected_ipi_delays + 1;
          Delay d)

let injected_ipi_drops t = t.injected_ipi_drops
let injected_ipi_delays t = t.injected_ipi_delays

(* The delivery closure for vector [v] at [c], built once per (core,
   vector) pair and reused for every subsequent IPI — delivery itself then
   allocates nothing per interrupt. *)
let delivery c v =
  if v < 0 || v >= Array.length c.deliver then fun () -> raise_vector c v
  else
    match Array.unsafe_get c.deliver v with
    | Some f -> f
    | None ->
        let f () = raise_vector c v in
        c.deliver.(v) <- Some f;
        f

let send_ipi t ~src ~dst v =
  let cross = Topology.cross_numa t.topo src dst in
  let latency =
    if v = Vectors.uintr_notification then Costs.uipi_delivery_ns ~cross_numa:cross
    else Costs.kipi_delivery_ns
  in
  let target = core t dst in
  match fault_fate t ~core:dst v with
  | Drop -> ()
  | Delay d -> ignore (Engine.after t.engine (latency + d) (delivery target v))
  | Deliver -> ignore (Engine.after t.engine latency (delivery target v))

let timer_stop t ~core:i =
  let c = core t i in
  c.timer_gen <- c.timer_gen + 1;
  c.hz <- 0

let timer_set_periodic t ~core:i ~hz =
  if hz <= 0 then invalid_arg "Machine.timer_set_periodic: hz must be positive";
  let c = core t i in
  c.timer_gen <- c.timer_gen + 1;
  c.hz <- hz;
  let gen = c.timer_gen in
  let period = max 1 (1_000_000_000 / hz) in
  Engine.every t.engine ~period (fun () ->
      if c.timer_gen = gen then begin
        (* LAPIC ticks are local, but the injector may still lose or delay
           them — the imperfect-isolation failure mode of delegated timers. *)
        (match fault_fate t ~core:i Vectors.timer with
        | Drop -> ()
        | Delay d ->
            (* Recheck the generation at fire time: a tick delayed past
               [timer_stop] (or past a re-arm) must not deliver. *)
            ignore
              (Engine.after t.engine d (fun () ->
                   if c.timer_gen = gen then raise_vector c Vectors.timer))
        | Deliver -> raise_vector c Vectors.timer);
        true
      end
      else false)

let timer_one_shot t ~core:i ~after =
  let c = core t i in
  let gen = c.timer_gen in
  ignore
    (Engine.after t.engine after (fun () ->
         if c.timer_gen = gen then
           match fault_fate t ~core:i Vectors.timer with
           | Drop -> ()
           | Delay d ->
               ignore
                 (Engine.after t.engine d (fun () ->
                      if c.timer_gen = gen then raise_vector c Vectors.timer))
           | Deliver -> raise_vector c Vectors.timer))

let timer_hz c = c.hz

let uintr_create_ctx () =
  { pir = 0L; sn = false; uinv = Vectors.uintr_notification; uirr = 0L; handler = None;
    installed_on = None }

let uintr_register_handler ctx ~uinv handler =
  ctx.uinv <- uinv;
  ctx.handler <- Some handler

let uintr_set_uinv ctx v = ctx.uinv <- v
let uintr_set_sn ctx sn = ctx.sn <- sn
let uintr_sn ctx = ctx.sn
let uintr_pir_pending ctx = ctx.pir <> 0L

let uintr_install t ~core:i ctx =
  let c = core t i in
  (match c.uintr with Some old -> old.installed_on <- None | None -> ());
  c.uintr <- Some ctx;
  ctx.installed_on <- Some i;
  (* Hardware recognises already-posted interrupts when the thread resumes
     user mode. *)
  if ctx.pir <> 0L && not c.masked then recognize c ctx

let uintr_uninstall t ~core:i =
  let c = core t i in
  (match c.uintr with Some ctx -> ctx.installed_on <- None | None -> ());
  c.uintr <- None

let uintr_installed t ~core:i = (core t i).uintr

let senduipi t ~src_core ctx ~uvec =
  if uvec < 0 || uvec > 63 then invalid_arg "Machine.senduipi: uvec out of range";
  ctx.pir <- Int64.logor ctx.pir (Int64.shift_left 1L uvec);
  if not ctx.sn then
    match ctx.installed_on with
    | Some dst -> send_ipi t ~src:src_core ~dst ctx.uinv
    | None -> ()

let interrupts_received c = c.interrupts_received
let user_interrupts_delivered c = c.user_interrupts
let dropped_notifications c = c.dropped
