module Time = Skyloft_sim.Time
module Engine = Skyloft_sim.Engine

(** The simulated machine: cores, interrupt wires, LAPIC timers, and the
    UINTR architectural state machine.

    The machine is policy-free.  Operating-system layers (the simulated Linux
    kernel, the Skyloft LibOS) install handlers on cores; the machine routes
    hardware events to them with the latencies from {!Costs}.

    {2 UINTR model}

    Each potential receiver (one per kernel thread that called
    [uintr_register_handler]) owns a {!uintr_ctx} holding the architectural
    UPID (PIR + SN) plus the UINV / UIRR / UIHANDLER state the kernel
    context-switches with the thread.  A context is {e installed} on a core
    when its thread is the one running there; only then can user interrupts
    actually be delivered.  [senduipi] always posts to the PIR; it generates
    a physical notification IPI only when SN is clear, matching the Intel
    semantics the paper exploits (§3.2):

    - posting with SN set updates the PIR silently — this is the self-post
      trick that lets a hardware timer interrupt be recognised as a user
      interrupt;
    - a notification arriving while the PIR is empty is dropped — this is
      why timer delegation needs the PIR pre-populated, and why the handler
      must re-post before returning (Listing 1, line 5). *)

type vector = int

type uintr_ctx
(** Architectural user-interrupt receiver state for one thread. *)

type t

type core
(** One physical core of the machine. *)

val create : Engine.t -> Topology.t -> t
val engine : t -> Engine.t
val topology : t -> Topology.t
val n_cores : t -> int
val core : t -> int -> core
val core_id : core -> int
val socket : core -> int

(** {1 Kernel-level interrupt plumbing} *)

val set_kernel_handler : core -> (vector -> unit) -> unit
(** Install the kernel's interrupt handler (IDT) for this core.  Receives
    every vector that is not consumed by an installed UINTR context. *)

val mask_interrupts : core -> unit
(** Defer interrupt delivery (cli).  Arriving vectors queue up. *)

val unmask_interrupts : core -> unit
(** Re-enable delivery (sti) and synchronously deliver deferred vectors in
    arrival order. *)

val interrupts_masked : core -> bool

val send_ipi : t -> src:int -> dst:int -> vector -> unit
(** Kernel IPI: arrives at [dst] after the kernel-IPI delivery latency. *)

(** {1 Interrupt fault injection}

    An optional machine-wide hook (installed by the {!Skyloft_fault}
    injector) decides the fate of every interrupt about to be delivered:
    IPIs in {!send_ipi} and local LAPIC timer expiries.  Without a hook
    nothing changes — no extra events, no RNG draws — so fault-free runs
    stay bit-identical. *)

type fate = Deliver | Drop | Delay of Time.t

val set_fault_hook : t -> (core:int -> vector -> fate) -> unit
(** Install the interrupt-fate hook.  [core] is the delivery target. *)

val clear_fault_hook : t -> unit

val fault_fate : t -> core:int -> vector -> fate
(** Consult the hook (counting drops/delays); [Deliver] when none is
    installed.  Runtimes that model notification latency outside
    {!send_ipi} (the centralized dispatcher) call this on their modelled
    delivery path so injected IPI loss reaches them too. *)

val injected_ipi_drops : t -> int
val injected_ipi_delays : t -> int

(** {1 LAPIC timer} *)

val timer_set_periodic : t -> core:int -> hz:int -> unit
(** Program the core-local timer to fire {!Vectors.timer} at [hz] Hz.
    Re-programming replaces the previous period. *)

val timer_one_shot : t -> core:int -> after:Time.t -> unit
val timer_stop : t -> core:int -> unit
val timer_hz : core -> int

(** {1 UINTR receiver side} *)

val uintr_create_ctx : unit -> uintr_ctx
(** Fresh receiver state: empty PIR, SN clear, no handler. *)

val uintr_register_handler :
  uintr_ctx -> uinv:vector -> (uvec:int -> unit) -> unit
(** Set UIHANDLER and UINV.  The handler receives the user-vector index
    (0..63) recovered from the UIRR. *)

val uintr_set_uinv : uintr_ctx -> vector -> unit
(** Change the notification vector the receiver recognises.  Setting it to
    {!Vectors.timer} is the first half of the timer-delegation trick
    (privileged: done by the Skyloft kernel module). *)

val uintr_set_sn : uintr_ctx -> bool -> unit
val uintr_sn : uintr_ctx -> bool
val uintr_pir_pending : uintr_ctx -> bool

val uintr_install : t -> core:int -> uintr_ctx -> unit
(** Make [ctx] the running receiver on [core] (the kernel does this when it
    switches in the owning thread).  If the PIR already has posted bits,
    recognition happens immediately — pending user interrupts fire. *)

val uintr_uninstall : t -> core:int -> unit
(** Remove the receiver context from the core (thread switched out). *)

val uintr_installed : t -> core:int -> uintr_ctx option

(** {1 UINTR sender side} *)

val senduipi : t -> src_core:int -> uintr_ctx -> uvec:int -> unit
(** Post user interrupt [uvec] to the receiver: set PIR bit; if SN is clear
    and the context is installed on some core, send the notification IPI
    (arriving with the user-IPI delivery latency, cross-NUMA aware).  If SN
    is set, only the PIR is updated — no IPI (the §3.2 self-post). *)

(** {1 Statistics} *)

val interrupts_received : core -> int
val user_interrupts_delivered : core -> int
val dropped_notifications : core -> int
(** Notifications that arrived with an empty PIR (the §3.2 trap for the
    unwary: a timer interrupt delegated to user space without pre-posting). *)
