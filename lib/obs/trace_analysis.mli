module Time = Skyloft_sim.Time
module Trace = Skyloft_stats.Trace
module Timeseries = Skyloft_stats.Timeseries

(** Analysis passes over a {!Trace.t} ring: per-core utilization,
    structural invariant checking, and a Perfetto export with counter
    tracks.

    All passes fold over the retained events only; a trace that dropped
    events is analysed for what it kept (and {!check} skips the
    containment invariant, which cannot be decided on a truncated ring). *)

type core_report = {
  core : int;
  busy_ns : int;  (** sum of span durations on this core *)
  idle_ns : int;  (** [until - busy_ns], clamped at 0 *)
  spans : int;
  instants : int;
  per_app : (int * int) list;  (** (app id, busy ns), ascending app id *)
}

val utilization : Trace.t -> until:Time.t -> core_report list
(** Run/idle breakdown per core over [\[0, until\]], ascending core id.
    Only cores that appear in the trace are reported. *)

val busy_share : core_report -> float
(** [busy_ns / (busy_ns + idle_ns)]; 0 when the window is empty. *)

type violation = { core : int; at : Time.t; what : string }

val check : Trace.t -> violation list
(** Structural invariants every well-formed runtime trace satisfies:

    - timestamps are monotone in emission order (spans stamp their [stop],
      instants their [at]);
    - spans on one core never overlap;
    - every [Preempt] instant lies within some span on its core
      (inclusive bounds — delivery lands exactly at the span's end; only
      checked when the ring dropped nothing).

    Empty when the trace is well-formed. *)

val pp_violation : Format.formatter -> violation -> unit

val check_machine : Trace.t -> violation list
(** Machine-level invariants over the broker's instants (per tenant name,
    replaying the health automaton):

    - [Quarantine]/[Release] strictly alternate — no release without a
      quarantine, no second quarantine without a release (a run may {e
      end} quarantined);
    - [Tenant_degrade]/[Tenant_recover] strictly alternate likewise;
    - nothing is emitted for a tenant after its [Tenant_crash];
    - no [Broker_grant] lands on a quarantined tenant (the clamp holds).

    Only checked when the ring dropped nothing — on a truncated trace the
    opening edge of a pair may be among the dropped events — so size the
    ring for the run.  Empty when the machine timeline is well-formed. *)

val to_chrome_json : ?counters:(string * Timeseries.t) list -> Trace.t -> string
(** {!Trace.to_chrome_json} plus one Perfetto counter track (["C"] phase
    events, [pid] 0) per named series — queue depth, per-app core counts.
    The trailing [skyloft_dropped] metadata event is preserved. *)

val write_chrome_json :
  ?counters:(string * Timeseries.t) list -> Trace.t -> path:string -> unit
