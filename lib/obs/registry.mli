module Time = Skyloft_sim.Time
module Histogram = Skyloft_stats.Histogram
module Timeseries = Skyloft_stats.Timeseries

(** Typed metrics registry: the single observability surface of the
    reproduction.

    Every subsystem (both runtimes, the core allocator, the kernel
    module, the NIC, the fault injector) registers its existing counters
    here instead of growing one getter per counter.  Registration is
    {e pull-based}: an instrument is a name, a label set, and a closure
    (or a live {!Histogram.t}/{!Timeseries.t}) that is read only when a
    snapshot is taken.  The registry therefore never advances the
    simulation, draws randomness, or schedules events — a run with the
    registry attached is byte-identical to one without it
    ([test/test_determinism.ml] and [BENCH_obs.json] enforce this).

    Names must match Prometheus conventions
    ([\[a-zA-Z_:\]\[a-zA-Z0-9_:\]*]); the [(name, labels)] pair must be
    unique.  Use the [core]/[app] label helpers for the two label
    dimensions the paper's evaluation slices by. *)

type t

type labels = (string * string) list
(** Label pairs, e.g. [[("core", "3"); ("app", "lc")]].  Order is
    preserved in exports; uniqueness is checked on the sorted pairs. *)

val core : int -> string * string
(** [core 3] is [("core", "3")]. *)

val app : string -> string * string
(** [app "lc"] is [("app", "lc")]. *)

val create : unit -> t

val counter : t -> ?help:string -> ?labels:labels -> string -> (unit -> int) -> unit
(** Register a monotonically-nondecreasing integer read at snapshot time.
    Raises [Invalid_argument] on an invalid name or a duplicate
    [(name, labels)]. *)

val gauge : t -> ?help:string -> ?labels:labels -> string -> (unit -> float) -> unit
(** Register an instantaneous value read at snapshot time. *)

val histogram : t -> ?help:string -> ?labels:labels -> string -> Histogram.t -> unit
(** Register a live histogram; snapshots materialise count, quantiles,
    mean, and max (exported as a Prometheus summary). *)

val series : t -> ?help:string -> ?labels:labels -> string -> Timeseries.t -> unit
(** Register a live step-function timeseries; snapshots materialise the
    last value plus its time-weighted mean and extremes. *)

val size : t -> int
(** Registered instruments. *)

(** {1 Unboxed counter slots}

    Hot-path counters (per-core tick/steal/interrupt tallies) can be kept
    as machine words in one shared int [Bigarray] slab owned by the
    registry instead of an [int ref] plus a reading closure per counter:
    {!bump} is a single unboxed load/add/store — no allocation, no write
    barrier — and snapshots read the same words, so the exported sample is
    identical to a closure-backed {!counter}. *)

type slot = private int
(** Index of one counter word in the registry's shared slab. *)

val counter_slot : t -> ?help:string -> ?labels:labels -> string -> slot
(** Allocate a slab slot starting at 0 and register it under [name]; the
    snapshot value is whatever the slot holds at snapshot time.  Same
    validation and duplicate rules as {!counter}. *)

val core_counter_slots :
  t -> ?help:string -> ?labels:labels -> cores:int -> string -> slot array
(** One slot per core, each registered with [labels @ [core c]] — the
    common per-core counter family in one call.  Raises
    [Invalid_argument] if [cores <= 0]. *)

val alloc_slot : t -> slot
(** A bare slot with no registered instrument (for intermediate tallies
    that feed a {!gauge} or are read directly). *)

val bump : t -> slot -> unit
(** Add 1.  No allocation, no bounds check beyond the slab's. *)

val bump_by : t -> slot -> int -> unit
(** Add [n] (may be negative; counters are conventionally monotonic). *)

val slot_value : t -> slot -> int
(** Current value of the slot. *)

val set_slot : t -> slot -> int -> unit
(** Overwrite the slot (e.g. to mirror an externally-maintained total). *)

(** {1 Snapshots} *)

(** Materialised value of one instrument at snapshot time. *)
type value =
  | Counter of int
  | Gauge of float
  | Summary of {
      count : int;
      mean : float;
      p50 : int;
      p90 : int;
      p99 : int;
      p999 : int;
      max : int;
    }
  | Level of { last : int; mean : float; min : int; max : int }

type sample = { name : string; help : string; labels : labels; value : value }

val snapshot : ?until:Time.t -> t -> sample list
(** Materialise every instrument now, in registration order grouped by
    name.  The result is isolated: later instrument updates do not change
    an already-taken snapshot.  [until] (default 0) closes the
    integration window for {!series} means. *)

val find : sample list -> ?labels:labels -> string -> value option
(** Exact [(name, labels)] lookup in a snapshot. *)

val to_prometheus : sample list -> string
(** Prometheus text exposition format (HELP/TYPE per metric name;
    counters and gauges as single samples, histograms as summaries with
    quantile labels plus _sum/_count, series as gauges).  Label values
    are escaped per the spec (backslash, double quote, newline). *)

val to_json : sample list -> string
(** The same snapshot as one JSON object:
    [{metrics: [{name; labels; kind; ...value fields}]}]. *)
