module Histogram = Skyloft_stats.Histogram

(** Latency attribution: each completed request's response time split into
    the four segments the paper's analysis cares about.

    - {e queueing}: runnable but not on a core (arrival→dispatch, plus any
      requeue→redispatch interval after a preemption or wakeup);
    - {e overhead}: scheduling mechanism cost charged to the request —
      context-switch cost at dispatch, preemption delivery (user IPI / UINTR
      receive), timer ticks and rescues that land while it runs;
    - {e stall}: time blocked on a fault or stolen from under the task by
      the host kernel ([Kmod] core steals);
    - {e service}: the work itself.

    The runtimes stamp the first three directly (see the [obs_*] fields on
    [Task.t]); service is the residue [response - (queueing + overhead +
    stall)].  Because every charge is made from the same virtual clock that
    advances the task, the residue must equal the service time the workload
    declared — {!record} counts a {e mismatch} whenever it does not, and the
    [obs-report] experiment and CI fail on any mismatch.  The identity
    [queueing + overhead + stall + service = response] therefore holds
    exactly, per request, in integer nanoseconds. *)

type t

val create : unit -> t

val record :
  t -> queueing:int -> overhead:int -> stall:int -> response:int -> declared:int -> unit
(** Attribute one completed request.  [declared] is the service time the
    workload asked for ([Task.service]); the residue
    [response - queueing - overhead - stall] is recorded as the service
    segment.  Counts a mismatch if the residue is negative or differs from
    a positive [declared]. *)

val requests : t -> int
val mismatches : t -> int

val queueing : t -> Histogram.t
val service : t -> Histogram.t
val overhead : t -> Histogram.t
val stall : t -> Histogram.t
val response : t -> Histogram.t
(** Per-segment histograms (ns), one entry per recorded request. *)

val register : Registry.t -> ?labels:Registry.labels -> t -> unit
(** Register the five segment histograms plus request/mismatch counters
    under [skyloft_latency_*], tagged with [labels] (typically
    [[Registry.app name]]). *)

val pp_row : Format.formatter -> string * t -> unit
(** One table row: label, requests, then mean ns per segment and the mean
    response. *)
