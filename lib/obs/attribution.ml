module Histogram = Skyloft_stats.Histogram

type t = {
  queueing : Histogram.t;
  service : Histogram.t;
  overhead : Histogram.t;
  stall : Histogram.t;
  response : Histogram.t;
  mutable requests : int;
  mutable mismatches : int;
}

let create () =
  {
    queueing = Histogram.create ();
    service = Histogram.create ();
    overhead = Histogram.create ();
    stall = Histogram.create ();
    response = Histogram.create ();
    requests = 0;
    mismatches = 0;
  }

let record t ~queueing ~overhead ~stall ~response ~declared =
  let residue = response - queueing - overhead - stall in
  if residue < 0 || (declared > 0 && residue <> declared) then
    t.mismatches <- t.mismatches + 1;
  t.requests <- t.requests + 1;
  Histogram.record t.queueing (max 0 queueing);
  Histogram.record t.overhead (max 0 overhead);
  Histogram.record t.stall (max 0 stall);
  Histogram.record t.service (max 0 residue);
  Histogram.record t.response (max 0 response)

let requests t = t.requests
let mismatches t = t.mismatches
let queueing t = t.queueing
let service t = t.service
let overhead t = t.overhead
let stall t = t.stall
let response t = t.response

let register reg ?(labels = []) t =
  Registry.counter reg ~labels "skyloft_latency_requests_total"
    ~help:"Requests with full latency attribution" (fun () -> t.requests);
  Registry.counter reg ~labels "skyloft_latency_mismatches_total"
    ~help:"Requests whose segments did not sum to the response time" (fun () ->
      t.mismatches);
  Registry.histogram reg ~labels "skyloft_latency_queueing_ns"
    ~help:"Time runnable but not running" t.queueing;
  Registry.histogram reg ~labels "skyloft_latency_service_ns"
    ~help:"Time doing the request's own work" t.service;
  Registry.histogram reg ~labels "skyloft_latency_overhead_ns"
    ~help:"Scheduling mechanism cost charged to the request" t.overhead;
  Registry.histogram reg ~labels "skyloft_latency_stall_ns"
    ~help:"Time blocked on faults or host core steals" t.stall;
  Registry.histogram reg ~labels "skyloft_latency_response_ns"
    ~help:"End-to-end response time" t.response

let pp_row ppf (label, t) =
  Format.fprintf ppf "%-12s %8d %12.0f %12.0f %12.0f %12.0f %12.0f" label
    t.requests (Histogram.mean t.queueing) (Histogram.mean t.service)
    (Histogram.mean t.overhead) (Histogram.mean t.stall)
    (Histogram.mean t.response)
