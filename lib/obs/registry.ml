module Time = Skyloft_sim.Time
module Histogram = Skyloft_stats.Histogram
module Timeseries = Skyloft_stats.Timeseries

type labels = (string * string) list

type source =
  | Src_counter of (unit -> int)
  | Src_gauge of (unit -> float)
  | Src_histogram of Histogram.t
  | Src_series of Timeseries.t

type instrument = { name : string; help : string; labels : labels; source : source }

type slab =
  (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  mutable instruments : instrument list;  (* newest first *)
  keys : (string * labels, unit) Hashtbl.t;  (* uniqueness: (name, sorted labels) *)
  mutable slots : slab;  (* shared unboxed counter slab, grown by doubling *)
  mutable slots_used : int;
}

type slot = int

let core c = ("core", string_of_int c)
let app name = ("app", name)

let slab_create n =
  let s = Bigarray.Array1.create Bigarray.int Bigarray.c_layout n in
  Bigarray.Array1.fill s 0;
  s

let create () =
  {
    instruments = [];
    keys = Hashtbl.create 64;
    slots = slab_create 16;
    slots_used = 0;
  }

let size t = List.length t.instruments

(* ---- unboxed counter slots ------------------------------------------------ *)

(* Hot-path counters live as machine words in one shared [Bigarray] slab:
   [bump] is a single unboxed load/add/store with no write barrier and no
   closure or ref cell per counter.  Snapshots read the very same words, so
   a slot-backed counter is indistinguishable from a closure-backed one in
   every export. *)

let alloc_slot t =
  let cap = Bigarray.Array1.dim t.slots in
  if t.slots_used = cap then begin
    let bigger = slab_create (2 * cap) in
    Bigarray.Array1.blit t.slots (Bigarray.Array1.sub bigger 0 cap);
    t.slots <- bigger
  end;
  let s = t.slots_used in
  t.slots_used <- s + 1;
  s

let bump t s = Bigarray.Array1.unsafe_set t.slots s (Bigarray.Array1.unsafe_get t.slots s + 1)
let bump_by t s n = Bigarray.Array1.unsafe_set t.slots s (Bigarray.Array1.unsafe_get t.slots s + n)
let slot_value t s = Bigarray.Array1.get t.slots s
let set_slot t s v = Bigarray.Array1.set t.slots s v

let valid_name name =
  String.length name > 0
  && (match name.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true | _ -> false)
       name

let valid_label_name name =
  String.length name > 0
  && (match name.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       name

let canonical labels = List.sort compare labels

let register t ~name ~help ~labels source =
  if not (valid_name name) then
    invalid_arg (Printf.sprintf "Registry: invalid metric name %S" name);
  List.iter
    (fun (k, _) ->
      if not (valid_label_name k) then
        invalid_arg (Printf.sprintf "Registry: invalid label name %S" k))
    labels;
  let key = (name, canonical labels) in
  if Hashtbl.mem t.keys key then
    invalid_arg
      (Printf.sprintf "Registry: duplicate metric %s{%s}" name
         (String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) labels)));
  Hashtbl.replace t.keys key ();
  t.instruments <- { name; help; labels; source } :: t.instruments

let counter t ?(help = "") ?(labels = []) name read =
  register t ~name ~help ~labels (Src_counter read)

let counter_slot t ?help ?labels name =
  let s = alloc_slot t in
  counter t ?help ?labels name (fun () -> slot_value t s);
  s

let core_counter_slots t ?help ?(labels = []) ~cores name =
  if cores <= 0 then invalid_arg "Registry.core_counter_slots: cores must be positive";
  Array.init cores (fun c -> counter_slot t ?help ~labels:(labels @ [ core c ]) name)

let gauge t ?(help = "") ?(labels = []) name read =
  register t ~name ~help ~labels (Src_gauge read)

let histogram t ?(help = "") ?(labels = []) name h =
  register t ~name ~help ~labels (Src_histogram h)

let series t ?(help = "") ?(labels = []) name s =
  register t ~name ~help ~labels (Src_series s)

(* ---- snapshots ----------------------------------------------------------- *)

type value =
  | Counter of int
  | Gauge of float
  | Summary of {
      count : int;
      mean : float;
      p50 : int;
      p90 : int;
      p99 : int;
      p999 : int;
      max : int;
    }
  | Level of { last : int; mean : float; min : int; max : int }

type sample = { name : string; help : string; labels : labels; value : value }

let materialise ~until (i : instrument) =
  let value =
    match i.source with
    | Src_counter read -> Counter (read ())
    | Src_gauge read -> Gauge (read ())
    | Src_histogram h ->
        Summary
          {
            count = Histogram.count h;
            mean = Histogram.mean h;
            p50 = Histogram.percentile h 50.0;
            p90 = Histogram.percentile h 90.0;
            p99 = Histogram.percentile h 99.0;
            p999 = Histogram.percentile h 99.9;
            max = Histogram.max_value h;
          }
    | Src_series s ->
        Level
          {
            last = (match Timeseries.last s with Some (_, v) -> v | None -> 0);
            mean = Timeseries.mean s ~until;
            min = Timeseries.min_value s;
            max = Timeseries.max_value s;
          }
  in
  { name = i.name; help = i.help; labels = i.labels; value }

(* Registration order, grouped by first occurrence of each name so the
   Prometheus rendering emits one HELP/TYPE block per metric. *)
let snapshot ?(until = 0) t =
  let in_order = List.rev t.instruments in
  let seen = Hashtbl.create 16 in
  let names =
    List.filter_map
      (fun (i : instrument) ->
        if Hashtbl.mem seen i.name then None
        else begin
          Hashtbl.replace seen i.name ();
          Some i.name
        end)
      in_order
  in
  List.concat_map
    (fun name ->
      List.filter_map
        (fun (i : instrument) ->
          if i.name = name then Some (materialise ~until i) else None)
        in_order)
    names

let find samples ?(labels = []) name =
  let want = canonical labels in
  List.find_map
    (fun s ->
      if s.name = name && canonical s.labels = want then Some s.value else None)
    samples

(* ---- Prometheus text format ---------------------------------------------- *)

let escape_label v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let render_labels = function
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label v)) labels)
      ^ "}"

let prom_type = function
  | Counter _ -> "counter"
  | Gauge _ | Level _ -> "gauge"
  | Summary _ -> "summary"

let to_prometheus samples =
  let buf = Buffer.create 4096 in
  let last_name = ref "" in
  List.iter
    (fun s ->
      if s.name <> !last_name then begin
        last_name := s.name;
        if s.help <> "" then
          Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" s.name s.help);
        Buffer.add_string buf
          (Printf.sprintf "# TYPE %s %s\n" s.name (prom_type s.value))
      end;
      match s.value with
      | Counter v ->
          Buffer.add_string buf
            (Printf.sprintf "%s%s %d\n" s.name (render_labels s.labels) v)
      | Gauge v ->
          Buffer.add_string buf
            (Printf.sprintf "%s%s %.6g\n" s.name (render_labels s.labels) v)
      | Level { last; _ } ->
          Buffer.add_string buf
            (Printf.sprintf "%s%s %d\n" s.name (render_labels s.labels) last)
      | Summary { count; mean; p50; p90; p99; p999; max } ->
          List.iter
            (fun (q, v) ->
              Buffer.add_string buf
                (Printf.sprintf "%s%s %d\n" s.name
                   (render_labels (s.labels @ [ ("quantile", q) ]))
                   v))
            [ ("0.5", p50); ("0.9", p90); ("0.99", p99); ("0.999", p999); ("1", max) ];
          Buffer.add_string buf
            (Printf.sprintf "%s_sum%s %.6g\n" s.name (render_labels s.labels)
               (mean *. float_of_int count));
          Buffer.add_string buf
            (Printf.sprintf "%s_count%s %d\n" s.name (render_labels s.labels) count))
    samples;
  Buffer.contents buf

(* ---- JSON ----------------------------------------------------------------- *)

let escape_json = Skyloft_stats.Trace.escape

let json_labels labels =
  "{"
  ^ String.concat ","
      (List.map
         (fun (k, v) -> Printf.sprintf "%S:\"%s\"" k (escape_json v))
         labels)
  ^ "}"

let to_json samples =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"metrics\":[";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_string buf ",\n";
      let body =
        match s.value with
        | Counter v -> Printf.sprintf "\"kind\":\"counter\",\"value\":%d" v
        | Gauge v -> Printf.sprintf "\"kind\":\"gauge\",\"value\":%.6g" v
        | Summary { count; mean; p50; p90; p99; p999; max } ->
            Printf.sprintf
              "\"kind\":\"summary\",\"count\":%d,\"mean\":%.6g,\"p50\":%d,\"p90\":%d,\"p99\":%d,\"p999\":%d,\"max\":%d"
              count mean p50 p90 p99 p999 max
        | Level { last; mean; min; max } ->
            Printf.sprintf
              "\"kind\":\"series\",\"last\":%d,\"mean\":%.6g,\"min\":%d,\"max\":%d"
              last mean min max
      in
      Buffer.add_string buf
        (Printf.sprintf "{\"name\":\"%s\",\"labels\":%s,%s}" (escape_json s.name)
           (json_labels s.labels) body))
    samples;
  Buffer.add_string buf "]}";
  Buffer.contents buf
