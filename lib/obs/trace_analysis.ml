module Time = Skyloft_sim.Time
module Trace = Skyloft_stats.Trace
module Timeseries = Skyloft_stats.Timeseries

type core_report = {
  core : int;
  busy_ns : int;
  idle_ns : int;
  spans : int;
  instants : int;
  per_app : (int * int) list;
}

type per_core = {
  mutable c_busy : int;
  mutable c_spans : int;
  mutable c_instants : int;
  c_apps : (int, int ref) Hashtbl.t;
}

let get_core tbl core =
  match Hashtbl.find_opt tbl core with
  | Some pc -> pc
  | None ->
      let pc = { c_busy = 0; c_spans = 0; c_instants = 0; c_apps = Hashtbl.create 4 } in
      Hashtbl.replace tbl core pc;
      pc

let utilization trace ~until =
  let tbl = Hashtbl.create 16 in
  Trace.iter trace (fun ev ->
      match ev with
      | Trace.Span { core; app; start; stop; _ } ->
          let pc = get_core tbl core in
          let dur = stop - start in
          pc.c_busy <- pc.c_busy + dur;
          pc.c_spans <- pc.c_spans + 1;
          let cell =
            match Hashtbl.find_opt pc.c_apps app with
            | Some r -> r
            | None ->
                let r = ref 0 in
                Hashtbl.replace pc.c_apps app r;
                r
          in
          cell := !cell + dur
      | Trace.Instant { core; _ } ->
          let pc = get_core tbl core in
          pc.c_instants <- pc.c_instants + 1);
  Hashtbl.fold
    (fun core pc acc ->
      let per_app =
        Hashtbl.fold (fun app busy acc -> (app, !busy) :: acc) pc.c_apps []
        |> List.sort compare
      in
      {
        core;
        busy_ns = pc.c_busy;
        idle_ns = max 0 (until - pc.c_busy);
        spans = pc.c_spans;
        instants = pc.c_instants;
        per_app;
      }
      :: acc)
    tbl []
  |> List.sort (fun a b -> compare a.core b.core)

let busy_share r =
  let window = r.busy_ns + r.idle_ns in
  if window = 0 then 0.0 else float_of_int r.busy_ns /. float_of_int window

(* ---- invariant checking --------------------------------------------------- *)

type violation = { core : int; at : Time.t; what : string }

let pp_violation ppf v =
  Format.fprintf ppf "core %d @ %d ns: %s" v.core v.at v.what

let emission_time = function
  | Trace.Span { stop; _ } -> stop
  | Trace.Instant { at; _ } -> at

let check trace =
  let violations = ref [] in
  let add core at what = violations := { core; at; what } :: !violations in
  (* 1. Timestamps nondecreasing in emission order. *)
  let prev = ref min_int in
  Trace.iter trace (fun ev ->
      let t = emission_time ev in
      if t < !prev then
        add
          (match ev with Trace.Span { core; _ } | Trace.Instant { core; _ } -> core)
          t
          (Printf.sprintf "timestamp went backwards (%d after %d)" t !prev);
      prev := t);
  (* Collect spans and preempt instants per core. *)
  let spans = Hashtbl.create 16 and preempts = Hashtbl.create 16 in
  let push tbl core v =
    let l = match Hashtbl.find_opt tbl core with Some l -> l | None -> [] in
    Hashtbl.replace tbl core (v :: l)
  in
  Trace.iter trace (fun ev ->
      match ev with
      | Trace.Span { core; start; stop; _ } -> push spans core (start, stop)
      | Trace.Instant { core; at; kind = Trace.Preempt; _ } -> push preempts core at
      | Trace.Instant _ -> ());
  (* 2. No overlapping spans on one core. *)
  Hashtbl.iter
    (fun core l ->
      let sorted = List.sort compare l in
      ignore
        (List.fold_left
           (fun prev_stop (start, stop) ->
             (match prev_stop with
             | Some p when start < p ->
                 add core start
                   (Printf.sprintf "span starting at %d overlaps previous span ending at %d"
                      start p)
             | _ -> ());
             Some (max (Option.value prev_stop ~default:min_int) stop))
           None sorted))
    spans;
  (* 3. Every Preempt instant inside some span on its core (inclusive:
     delivery lands exactly at the victim span's stop).  Undecidable on a
     truncated ring — the covering span may be among the dropped events. *)
  if Trace.dropped trace = 0 then
    Hashtbl.iter
      (fun core l ->
        let core_spans = match Hashtbl.find_opt spans core with Some s -> s | None -> [] in
        List.iter
          (fun at ->
            let covered =
              List.exists (fun (start, stop) -> start <= at && at <= stop) core_spans
            in
            if not covered then
              add core at "preempt instant outside every span on its core")
          l)
      preempts;
  List.rev !violations

(* ---- machine-level invariants ---------------------------------------------- *)

(* Per-tenant health automaton replayed from the broker's instants, keyed
   by tenant name (the instant payload the broker emits). *)
type tenant_state = {
  mutable quarantined : bool;
  mutable degraded : bool;
  mutable crashed : bool;
}

let check_machine trace =
  let violations = ref [] in
  let add core at what = violations := { core; at; what } :: !violations in
  let tenants = Hashtbl.create 8 in
  let state name =
    match Hashtbl.find_opt tenants name with
    | Some s -> s
    | None ->
        let s = { quarantined = false; degraded = false; crashed = false } in
        Hashtbl.replace tenants name s;
        s
  in
  (* Undecidable on a truncated ring: the opening edge of any pair may be
     among the dropped events. *)
  if Trace.dropped trace = 0 then
    Trace.iter trace (fun ev ->
        match ev with
        | Trace.Span _ -> ()
        | Trace.Instant { core; at; kind; name } -> (
            let machine_kind =
              match kind with
              | Trace.Broker_grant | Trace.Broker_reclaim | Trace.Broker_yield
              | Trace.Tenant_degrade | Trace.Tenant_recover | Trace.Quarantine
              | Trace.Release | Trace.Tenant_crash ->
                  true
              | _ -> false
            in
            if machine_kind then begin
              let s = state name in
              if s.crashed then
                add core at
                  (Printf.sprintf "tenant %s: %s after crash" name
                     (Trace.kind_name kind));
              match kind with
              | Trace.Quarantine ->
                  if s.quarantined then
                    add core at
                      (Printf.sprintf "tenant %s: quarantined twice without release"
                         name);
                  s.quarantined <- true
              | Trace.Release ->
                  if not s.quarantined then
                    add core at
                      (Printf.sprintf "tenant %s: release without quarantine" name);
                  s.quarantined <- false
              | Trace.Tenant_degrade ->
                  if s.degraded then
                    add core at
                      (Printf.sprintf "tenant %s: degraded twice without recover"
                         name);
                  s.degraded <- true
              | Trace.Tenant_recover ->
                  if not s.degraded then
                    add core at
                      (Printf.sprintf "tenant %s: recover without degrade" name);
                  s.degraded <- false
              | Trace.Tenant_crash -> s.crashed <- true
              | Trace.Broker_grant ->
                  (* Quarantined tenants hold no policy say; a grant while
                     clamped means the broker leaked cores past the clamp. *)
                  if s.quarantined then
                    add core at
                      (Printf.sprintf "tenant %s: grant while quarantined" name)
              | _ -> ()
            end));
  List.rev !violations

(* ---- Perfetto export with counter tracks ---------------------------------- *)

let us t = float_of_int t /. 1_000.0

let counter_json name (at, v) =
  Printf.sprintf {|{"name":"%s","ph":"C","ts":%.3f,"pid":0,"args":{"value":%d}}|}
    (Trace.escape name) (us at) v

let to_chrome_json ?(counters = []) trace =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "[";
  Trace.iter trace (fun ev ->
      let s =
        match ev with
        | Trace.Span { core; app; name; start; stop } ->
            Printf.sprintf
              {|{"name":"%s","ph":"X","ts":%.3f,"dur":%.3f,"pid":%d,"tid":%d}|}
              (Trace.escape name) (us start)
              (us (stop - start))
              app core
        | Trace.Instant { core; at; kind; name } ->
            Printf.sprintf
              {|{"name":"%s:%s","ph":"i","ts":%.3f,"pid":0,"tid":%d,"s":"t"}|}
              (Trace.kind_name kind) (Trace.escape name) (us at) core
      in
      Buffer.add_string buf s;
      Buffer.add_string buf ",\n");
  List.iter
    (fun (name, series) ->
      List.iter
        (fun sample ->
          Buffer.add_string buf (counter_json name sample);
          Buffer.add_string buf ",\n")
        (Timeseries.to_list series))
    counters;
  Buffer.add_string buf
    (Printf.sprintf
       {|{"name":"skyloft_dropped","ph":"M","pid":0,"tid":0,"args":{"dropped":%d,"retained":%d}}|}
       (Trace.dropped trace) (Trace.events trace));
  Buffer.add_string buf "]";
  Buffer.contents buf

let write_chrome_json ?counters trace ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_chrome_json ?counters trace))
