module Time = Skyloft_sim.Time
module Engine = Skyloft_sim.Engine
module Topology = Skyloft_hw.Topology
module Machine = Skyloft_hw.Machine
module Linux = Skyloft_kernel.Linux
module Kmod = Skyloft_kernel.Kmod
module Histogram = Skyloft_stats.Histogram
module Percpu = Skyloft.Percpu
module Runner = Skyloft_apps.Runner
module Schbench = Skyloft_apps.Schbench

(** Figure 5: schbench wakeup latency across schedulers, 24 cores, 1
    message thread, growing worker count.  Linux schedulers run with the
    Table 5 parameters (timer capped at 1000 Hz); Skyloft policies run at
    a 100 kHz user-space timer.  The paper's headline: ~100 µs wakeup
    latency under Skyloft vs ~10,000 µs under Linux once the cores are
    oversubscribed. *)

type system =
  | Linux_sys of Linux.policy * string
  | Skyloft_sys of (unit -> Skyloft.Sched_ops.ctor) * string

let cores = List.init 24 Fun.id

let systems =
  [
    Linux_sys (Linux.rr_default, "Linux-RR");
    Linux_sys (Linux.cfs_default, "Linux-CFS");
    Linux_sys (Linux.cfs_tuned, "Linux-CFS-tuned");
    Linux_sys (Linux.eevdf_default, "Linux-EEVDF");
    Linux_sys (Linux.eevdf_tuned, "Linux-EEVDF-tuned");
    Skyloft_sys
      ((fun () -> Skyloft_policies.Rr.create ~slice:(Time.us 50) ()), "Skyloft-RR");
    Skyloft_sys ((fun () -> Skyloft_policies.Cfs.create ()), "Skyloft-CFS");
    Skyloft_sys ((fun () -> Skyloft_policies.Eevdf.create ()), "Skyloft-EEVDF");
  ]

let name_of = function Linux_sys (_, n) -> n | Skyloft_sys (_, n) -> n

let worker_counts = [ 8; 16; 24; 32; 48; 64 ]

let run_one (config : Config.t) system ~workers =
  let engine = Engine.create ~seed:config.seed () in
  let machine = Machine.create engine Topology.paper_server in
  let runner =
    match system with
    | Linux_sys (policy, _) -> Runner.of_linux (Linux.create machine policy ~cores)
    | Skyloft_sys (ctor, _) ->
        let kmod = Kmod.create machine in
        let rt = Percpu.create machine kmod ~cores ~timer_hz:100_000 (ctor ()) in
        let app = Percpu.create_app rt ~name:"schbench" in
        Runner.of_percpu rt app
  in
  Schbench.run runner engine (Schbench.default_config ~workers) ~duration:config.duration

type point = { workers : int; p50 : Time.t; p99 : Time.t; samples : int }

let point config system ~workers =
  let h = run_one config system ~workers in
  {
    workers;
    p50 = Histogram.percentile h 50.0;
    p99 = Histogram.percentile h 99.0;
    samples = Histogram.count h;
  }

let sweep (config : Config.t) system =
  Parallel.map ~jobs:config.jobs
    (fun workers -> point config system ~workers)
    worker_counts

let print (config : Config.t) =
  Report.section
    "Figure 5: schbench p99 wakeup latency (us) vs worker threads, 24 cores";
  (* One cell per (system, worker count): the whole grid fans across
     domains instead of one row at a time. *)
  let cells =
    List.concat_map
      (fun s -> List.map (fun w -> (s, w)) worker_counts)
      systems
  in
  let points =
    Parallel.map ~jobs:config.jobs
      (fun (s, w) -> point config s ~workers:w)
      cells
  in
  let results =
    List.map2
      (fun s pts -> (name_of s, pts))
      systems
      (Parallel.group ~size:(List.length worker_counts) points)
  in
  let header = "system" :: List.map string_of_int worker_counts in
  let rows =
    List.map
      (fun (name, points) -> name :: List.map (fun p -> Report.us p.p99) points)
      results
  in
  Report.table ~header rows;
  Report.note
    "paper: Skyloft policies stay ~100us while Linux reaches ~10,000us once workers > cores";
  (* Also print p50 for completeness *)
  Report.subsection "p50 wakeup latency (us)";
  let rows50 =
    List.map
      (fun (name, points) -> name :: List.map (fun p -> Report.us p.p50) points)
      results
  in
  Report.table ~header rows50;
  results
