module Time = Skyloft_sim.Time
module Engine = Skyloft_sim.Engine
module Rng = Skyloft_sim.Rng
module Topology = Skyloft_hw.Topology
module Machine = Skyloft_hw.Machine
module Kmod = Skyloft_kernel.Kmod
module Summary = Skyloft_stats.Summary
module App = Skyloft.App
module Percpu = Skyloft.Percpu
module Nic = Skyloft_net.Nic
module Loadgen = Skyloft_net.Loadgen
module Udp_server = Skyloft_apps.Udp_server
module Memcached = Skyloft_apps.Memcached
module Rocksdb = Skyloft_apps.Rocksdb
module Shenango = Skyloft_baselines.Shenango

(** Figure 8: real-world applications over the kernel-bypass network path
    (§5.3).

    - (a) Memcached under the USR workload (light-tailed), 4 workers:
      Skyloft work stealing ~ Shenango, within ~2% max throughput, with
      slightly better low-load tails (no core parking).
    - (b) RocksDB under the bimodal 50/50 GET/SCAN workload, 14 workers,
      metric p99.9 {e slowdown}: Skyloft sustains ~1.9x Shenango's load at
      a 50x slowdown SLO with a 5 µs quantum; the utimer variant loses
      ~13% (one core burned as the software timer). *)

type system =
  | Sky_ws of Time.t option  (** work stealing, optional preemption quantum *)
  | Sky_utimer of Time.t  (** dedicated-core software timer, quantum period *)
  | Shenango_ws

let system_name = function
  | Sky_ws None -> "Skyloft-WS"
  | Sky_ws (Some q) -> Printf.sprintf "Skyloft-WS (q=%.0fus)" (Time.to_us_float q)
  | Sky_utimer q -> Printf.sprintf "Skyloft-utimer (q=%.0fus)" (Time.to_us_float q)
  | Shenango_ws -> "Shenango"

type point = { offered_rps : float; achieved_rps : float; p999_us : float;
               p999_slowdown : float }

let run_server (config : Config.t) system ~workers ~service ~rate_rps =
  let engine = Engine.create ~seed:config.seed () in
  let machine = Machine.create engine Topology.paper_server in
  let kmod = Kmod.create machine in
  let cores, rt =
    match system with
    | Sky_ws quantum ->
        let cores = List.init workers Fun.id in
        ( cores,
          Percpu.create machine kmod ~cores ~timer_hz:100_000
            ~preemption:(quantum <> None)
            (Skyloft_policies.Work_stealing.create ?quantum ()) )
    | Sky_utimer q ->
        (* one worker is sacrificed as the software timer *)
        let cores = List.init (workers - 1) Fun.id in
        let rt =
          Percpu.create machine kmod ~cores ~preemption:false
            (Skyloft_policies.Work_stealing.create ~quantum:q ())
        in
        let hz = max 1 (1_000_000_000 / q) in
        Percpu.start_utimer rt ~src_core:(workers - 1) ~hz;
        (cores, rt)
    | Shenango_ws ->
        let cores = List.init workers Fun.id in
        (cores, Shenango.make machine kmod ~cores)
  in
  let app = Percpu.create_app rt ~name:"server" in
  let nic = Nic.create engine ~queues:(List.length cores) () in
  Udp_server.attach rt app nic ~cores;
  let rng = Engine.split_rng engine in
  Loadgen.poisson engine ~rng ~rate_rps ~service ~duration:config.duration
    (fun pkt -> Nic.rx nic pkt);
  let in_window = ref 0 in
  ignore
    (Engine.at engine config.duration (fun () ->
         in_window := Summary.requests app.App.summary));
  Engine.run ~until:(config.duration + Time.ms 60) engine;
  {
    offered_rps = rate_rps;
    achieved_rps = float_of_int !in_window /. Time.to_s_float config.duration;
    p999_us = Time.to_us_float (Summary.latency_p app.App.summary 99.9);
    p999_slowdown = Summary.slowdown_p app.App.summary 99.9;
  }

(* ---- (a) Memcached ---- *)

let memcached_workers = 4
let memcached_saturation = Memcached.saturation_rps ~cores:memcached_workers
let memcached_fractions = [ 0.2; 0.4; 0.6; 0.7; 0.8; 0.9; 0.95 ]
let memcached_systems = [ Sky_ws None; Shenango_ws ]

(* One cell per (system, load fraction), fanned across domains. *)
let sweep_grid (config : Config.t) systems ~fractions ~run =
  let cells =
    List.concat_map (fun s -> List.map (fun frac -> (s, frac)) fractions) systems
  in
  let points =
    Parallel.map ~jobs:config.jobs (fun (s, frac) -> run s frac) cells
  in
  List.map2
    (fun s pts -> (system_name s, pts))
    systems
    (Parallel.group ~size:(List.length fractions) points)

let sweep_memcached (config : Config.t) system =
  Parallel.map ~jobs:config.jobs
    (fun frac ->
      run_server config system ~workers:memcached_workers ~service:Memcached.service
        ~rate_rps:(frac *. memcached_saturation))
    memcached_fractions

let print_a config =
  Report.section
    (Printf.sprintf
       "Figure 8a: Memcached USR workload, 4 workers — p99.9 latency (us) vs load \
        (saturation ~%.0f krps)"
       (memcached_saturation /. 1000.));
  let results =
    sweep_grid config memcached_systems ~fractions:memcached_fractions
      ~run:(fun s frac ->
        run_server config s ~workers:memcached_workers ~service:Memcached.service
          ~rate_rps:(frac *. memcached_saturation))
  in
  let header =
    "system"
    :: List.map (fun f -> Printf.sprintf "%.0f%%" (f *. 100.)) memcached_fractions
  in
  let rows =
    List.map
      (fun (name, points) ->
        name :: List.map (fun p -> Printf.sprintf "%.1f" p.p999_us) points)
      results
  in
  Report.table ~header rows;
  Report.subsection "achieved throughput (krps)";
  let rows_t =
    List.map
      (fun (name, points) ->
        name :: List.map (fun p -> Report.krps p.achieved_rps) points)
      results
  in
  Report.table ~header:("system" :: List.tl header) rows_t;
  Report.note "paper: Skyloft within 2%% of Shenango's max throughput, slightly lower";
  Report.note "       low-load tails (Shenango pays core re-allocations)";
  results

(* ---- (b) RocksDB ---- *)

let rocksdb_workers = 14
let rocksdb_saturation = Rocksdb.saturation_rps ~cores:rocksdb_workers
let rocksdb_fractions = [ 0.2; 0.35; 0.5; 0.6; 0.7; 0.75; 0.8; 0.85; 0.9 ]

let rocksdb_systems =
  [
    Sky_ws (Some (Time.us 5));
    Sky_ws (Some (Time.us 15));
    Sky_ws (Some (Time.us 30));
    Sky_utimer (Time.us 5);
    Shenango_ws;
  ]

let sweep_rocksdb (config : Config.t) system =
  Parallel.map ~jobs:config.jobs
    (fun frac ->
      run_server config system ~workers:rocksdb_workers ~service:Rocksdb.service
        ~rate_rps:(frac *. rocksdb_saturation))
    rocksdb_fractions

(** Highest achieved load (krps) whose p99.9 slowdown stays under the SLO. *)
let max_load_under_slo points ~slo =
  List.fold_left
    (fun acc p -> if p.p999_slowdown <= slo then max acc p.achieved_rps else acc)
    0.0 points

let print_b config =
  Report.section
    (Printf.sprintf
       "Figure 8b: RocksDB bimodal 50/50 GET/SCAN, 14 workers — p99.9 slowdown vs load \
        (saturation ~%.1f krps)"
       (rocksdb_saturation /. 1000.));
  let results =
    sweep_grid config rocksdb_systems ~fractions:rocksdb_fractions
      ~run:(fun s frac ->
        run_server config s ~workers:rocksdb_workers ~service:Rocksdb.service
          ~rate_rps:(frac *. rocksdb_saturation))
  in
  let header =
    "system"
    :: List.map (fun f -> Printf.sprintf "%.0f%%" (f *. 100.)) rocksdb_fractions
  in
  let rows =
    List.map
      (fun (name, points) ->
        name :: List.map (fun p -> Printf.sprintf "%.1fx" p.p999_slowdown) points)
      results
  in
  Report.table ~header rows;
  Report.subsection "max sustained load at 50x p99.9-slowdown SLO (krps)";
  let slo_rows =
    List.map
      (fun (name, points) ->
        [ name; Report.krps (max_load_under_slo points ~slo:50.0) ])
      results
  in
  Report.table ~header:[ "system"; "max krps @ 50x" ] slo_rows;
  Report.note "paper: Skyloft q=5us sustains ~1.9x Shenango's load at the 50x SLO;";
  Report.note "       the utimer variant is ~13%% below the LAPIC-timer variant";
  results
