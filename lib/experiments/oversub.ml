module Time = Skyloft_sim.Time
module Dist = Skyloft_sim.Dist
module Histogram = Skyloft_stats.Histogram
module Broker = Skyloft_alloc.Broker
module Policy = Skyloft_alloc.Policy
module Plan = Skyloft_fault.Plan
module Scenario = Skyloft_scenario.Scenario
module Shape = Skyloft_scenario.Shape
module Arrival = Skyloft_scenario.Arrival
module Placement = Skyloft_scenario.Placement

(** The oversubscription experiment: N runtime instances brokered on one
    machine, with one tenant misbehaving.

    Every cell is a {!Placement}: n tenants, each guaranteed 1 core and
    allowed to burst to 4, on a brokered pool of 2n cores — the sum of
    ceilings exceeds the machine, so tenants genuinely compete.  Tenant 0
    misbehaves per the fault scenario (claims congestion forever, stops
    reporting, or crashes outright) and the sweep measures what the
    broker's layered defenses buy the {e healthy} tenants: their merged
    p99 under a hoarding neighbour with quarantine armed versus disarmed,
    fairness over floor-normalized core-time, and lossless per-tenant
    request accounting even when the neighbour dies.

    Two structural assertions run on every sweep (not just in tests):
    each tenant reconciles exactly ([lost = 0]), and with quarantine
    armed the healthy-tenant p99 under a hoarder stays within
    {!interference_bound} of the fault-free baseline — the graceful half
    of graceful degradation, falsified if the defense regresses. *)

let faulty_tenant = 0

(* Per-LC-tenant offered load: ~1.3 core-equivalents against an average
   fair share of 2 (pool 2n over n tenants), so there is real headroom
   to trade yet any tenant clamped to its 1-core floor is overloaded —
   misallocation is visible, not masked by slack. *)
let lc_rate = 260_000.0
let lc_shape = Shape.Single (Dist.Exponential { mean = Time.us 5 })

(* BE tenants (mixed fleet only): coarser chunks, ~1 core-equivalent. *)
let be_rate = 50_000.0
let be_shape = Shape.Single (Dist.Exponential { mean = Time.us 20 })

let mixes = [ "percpu"; "mixed" ]

let runtime_of ~mix i =
  match mix with
  | "percpu" -> Scenario.Percpu
  | _ ->
      List.nth
        [
          Scenario.Percpu;
          Scenario.Centralized;
          Scenario.Hybrid;
          Scenario.Worksteal;
        ]
        (i mod 4)

let kind_of ~mix i =
  if String.equal mix "mixed" && i mod 4 = 3 then Policy.Be else Policy.Lc

let tenants ~mix ~n ~capacity =
  List.init n (fun i ->
      let kind = kind_of ~mix i in
      let shape, arrival =
        match kind with
        | Policy.Lc -> (lc_shape, Arrival.Poisson { rate_rps = lc_rate })
        | Policy.Be -> (be_shape, Arrival.Poisson { rate_rps = be_rate })
      in
      Placement.tenant ~kind
        ~name:
          (Printf.sprintf "t%02d-%s" i
             (Scenario.runtime_name (runtime_of ~mix i)))
        ~runtime:(runtime_of ~mix i) ~guaranteed:1
        ~burstable:(min 4 capacity) ~shape ~arrival ())

let scenarios = [ "none"; "hoard"; "hoard-open"; "stale"; "crash" ]

(* Fault windows as fractions of the LC stream's nominal length: the
   stale window closes mid-run so recovery is part of the measurement;
   hoard and crash never end. *)
let faults_of ~scenario ~t_ns =
  let frac f = int_of_float (float_of_int t_ns *. f) in
  match scenario with
  | "none" -> []
  | "hoard" | "hoard-open" ->
      [
        Plan.tenant_hoard
          ~window:(Plan.window ~start:(frac 0.15) ())
          ~tenant:faulty_tenant ();
      ]
  | "stale" ->
      [
        Plan.tenant_stale
          ~window:(Plan.window ~start:(frac 0.15) ~stop:(frac 0.55) ())
          ~tenant:faulty_tenant ();
      ]
  | "crash" ->
      [
        Plan.tenant_crash
          ~window:(Plan.window ~start:(frac 0.3) ())
          ~tenant:faulty_tenant ();
      ]
  | s -> invalid_arg ("Oversub: unknown scenario " ^ s)

(* "hoard-open" is the ablation: identical hoarder, quarantine
   effectively disarmed (a cap no run can reach), so the interference it
   measures is what the defense is worth. *)
let placement_config ~scenario =
  let base = Placement.default_config () in
  if String.equal scenario "hoard-open" then
    {
      base with
      Placement.broker =
        { (Broker.default_config ()) with Broker.hoard_cap = 1_000_000_000 };
    }
  else base

(* Requests per tenant by tier: --quick 400 (CI smoke), default 1500,
   --full 5000 — or exactly what --requests says. *)
let requests_for (config : Config.t) =
  match config.requests with
  | Some r -> r
  | None ->
      if config.duration <= Config.quick.duration then 400
      else if config.duration >= Config.full.duration then 5_000
      else 1_500

let counts_for (config : Config.t) =
  if config.duration <= Config.quick.duration then [ 2; 8 ]
  else if config.duration >= Config.full.duration then [ 2; 4; 8; 16; 32; 64 ]
  else [ 2; 8; 64 ]

let run_cell ~seed ~mix ~n ~scenario ~requests =
  let capacity = 2 * n in
  let t_ns = int_of_float (float_of_int requests /. lc_rate *. 1e9) in
  let r =
    Placement.run ~seed
      ~faults:(faults_of ~scenario ~t_ns)
      ~config:(placement_config ~scenario)
      ~name:(Printf.sprintf "%s-n%02d-%s" mix n scenario)
      ~capacity ~requests
      (tenants ~mix ~n ~capacity)
  in
  (* Reconciliation, asserted on every cell: each tenant's requests all
     settled as completed or gave-up — even the crashed tenant's. *)
  List.iter
    (fun t ->
      if Placement.lost t <> 0 then
        failwith
          (Printf.sprintf "oversub %s: tenant %s lost %d requests"
             r.Placement.placement t.Placement.t_name (Placement.lost t)))
    r.Placement.tenants;
  if not (r.Placement.fairness > 0.0 && r.Placement.fairness <= 1.0 +. 1e-9)
  then
    failwith
      (Printf.sprintf "oversub %s: fairness %.4f outside (0, 1]"
         r.Placement.placement r.Placement.fairness);
  r

(* Merged latency of everyone except the misbehaving tenant: the
   interference measurement. *)
let healthy_latency (r : Placement.result) =
  let h = Histogram.create () in
  List.iteri
    (fun i t ->
      if i <> faulty_tenant then
        Histogram.merge_into ~src:t.Placement.latency ~dst:h)
    r.Placement.tenants;
  h

let healthy_p99 r = Histogram.percentile (healthy_latency r) 99.0

let faulty_p99 (r : Placement.result) =
  Histogram.percentile
    (List.nth r.Placement.tenants faulty_tenant).Placement.latency 99.0

(* With quarantine armed, a hoarding neighbour may cost the healthy
   tenants at most this factor over the fault-free baseline p99 (against
   a floor so a microsecond-level baseline doesn't make the bound
   vacuous).  The disarmed ablation is asserted at least as bad as the
   armed run — together: the defense bounds interference the ablation
   shows is otherwise unbounded. *)
let interference_bound = 25.0
let baseline_floor = Time.us 50

let check_interference ~mix ~n points =
  let p99 scenario =
    match
      List.find_opt (fun (s, _) -> String.equal s scenario) points
    with
    | Some (_, r) -> healthy_p99 r
    | None -> failwith "oversub: missing scenario point"
  in
  let baseline = max (p99 "none") baseline_floor in
  let armed = p99 "hoard" in
  let open_ = p99 "hoard-open" in
  if float_of_int armed > interference_bound *. float_of_int baseline then
    failwith
      (Printf.sprintf
         "oversub %s n=%d: quarantined hoard p99 %d ns exceeds %.0fx baseline \
          %d ns"
         mix n armed interference_bound baseline);
  if open_ < armed then
    failwith
      (Printf.sprintf
         "oversub %s n=%d: disarmed hoard p99 %d ns below armed %d ns — \
          quarantine is not earning its keep"
         mix n open_ armed)

let sweep_all (config : Config.t) =
  let requests = requests_for config in
  let counts = counts_for config in
  let cells =
    List.concat_map
      (fun mix ->
        List.concat_map
          (fun n -> List.map (fun scenario -> (mix, n, scenario)) scenarios)
          counts)
      mixes
  in
  let points =
    Parallel.map ~jobs:config.jobs
      (fun (mix, n, scenario) ->
        (mix, n, scenario, run_cell ~seed:config.seed ~mix ~n ~scenario ~requests))
      cells
  in
  (* Group back by (mix, n) and run the cross-scenario assertions. *)
  List.iter
    (fun mix ->
      List.iter
        (fun n ->
          let group =
            List.filter_map
              (fun (m, n', s, r) ->
                if String.equal m mix && n' = n then Some (s, r) else None)
              points
          in
          check_interference ~mix ~n group)
        counts)
    mixes;
  points

let print (config : Config.t) =
  let requests = requests_for config in
  Report.section
    (Printf.sprintf
       "Oversubscribed machine: tenant sweep under the core broker, %d \
        requests per tenant"
       requests);
  Report.note
    "each tenant: 1 guaranteed / 4 burstable cores on a pool of 2n — ceilings \
     oversubscribe the machine";
  Report.note
    "tenant 0 misbehaves per scenario; healthy p99 is everyone else's merged \
     tail";
  let points = sweep_all config in
  List.iter
    (fun mix ->
      Report.subsection (Printf.sprintf "fleet: %s" mix);
      Report.table
        ~header:
          [
            "tenants";
            "scenario";
            "healthy p99 (us)";
            "faulty p99 (us)";
            "completed";
            "gave up";
            "fairness";
            "degr";
            "quar";
            "crash";
          ]
        (List.filter_map
           (fun (m, n, scenario, r) ->
             if not (String.equal m mix) then None
             else
               let completed, gave_up =
                 List.fold_left
                   (fun (c, g) t ->
                     (c + t.Placement.completed, g + t.Placement.gave_up))
                   (0, 0) r.Placement.tenants
               in
               Some
                 [
                   string_of_int n;
                   scenario;
                   Report.us (healthy_p99 r);
                   Report.us (faulty_p99 r);
                   string_of_int completed;
                   string_of_int gave_up;
                   Printf.sprintf "%.4f" r.Placement.fairness;
                   string_of_int r.Placement.degradations;
                   string_of_int r.Placement.quarantines;
                   string_of_int r.Placement.crashes;
                 ])
           points))
    mixes;
  Report.note
    "asserted on every sweep: per-tenant lost = 0; armed-hoard healthy p99 <= \
     %.0fx fault-free baseline; disarmed >= armed"
    interference_bound;
  Report.note
    "same seed => byte-identical digests at any -j (goldens in skyloft_run \
     golden)";
  points

(* Golden cells: small mixed-fleet placements through the identical
   machinery, digested byte-for-byte (fixed seed, independent of the CLI
   config). *)
let golden_seed = 5
let golden_requests = 400

let golden_cell ~scenario =
  Placement.digest_string
    (run_cell ~seed:golden_seed ~mix:"mixed" ~n:4 ~scenario
       ~requests:golden_requests)

let golden_scenarios = [ "none"; "hoard"; "crash" ]
