module Time = Skyloft_sim.Time
module Engine = Skyloft_sim.Engine
module Rng = Skyloft_sim.Rng
module Coro = Skyloft_sim.Coro
module Topology = Skyloft_hw.Topology
module Machine = Skyloft_hw.Machine
module Kmod = Skyloft_kernel.Kmod
module Percpu = Skyloft.Percpu
module Centralized = Skyloft.Centralized
module Hybrid = Skyloft.Hybrid
module Worksteal = Skyloft.Worksteal
module Trace = Skyloft_stats.Trace
module Plan = Skyloft_fault.Plan
module Injector = Skyloft_fault.Injector

(** Golden determinism fingerprints.

    Each entry is a digest of everything request- or trace-visible in one
    fixed-seed run: the full Chrome-JSON trace of a small faulty run per
    runtime, the obs-report fingerprint (trace + attribution + queue
    depth), and every field of a fault-sweep point.  The values are
    recorded in [test/test_determinism.ml]; any refactor that changes a
    single scheduling decision, cost charge, or trace byte at the same
    seed fails that test.  Regenerate intentionally with
    [skyloft_run golden] after a behaviour-changing (not
    behaviour-preserving) change. *)

(* A small per-CPU run with IPI loss, core steals and the watchdog armed,
   fully traced; returns the rendered Chrome JSON. *)
let traced_percpu ~seed =
  (* app ids leak into the trace's pid fields; per-run allocation in
     Runtime_core labels the app identically in every run *)
  let engine = Engine.create () in
  let machine =
    Machine.create engine (Topology.create ~sockets:1 ~cores_per_socket:4)
  in
  let kmod = Kmod.create machine in
  let rt =
    Percpu.create machine kmod ~cores:[ 0; 1; 2; 3 ] ~watchdog:(Time.us 100)
      (Skyloft_policies.Fifo.create ())
  in
  let trace = Trace.create () in
  Percpu.set_trace rt trace;
  let rng = Rng.create ~seed in
  let inj = Injector.create ~engine ~rng ~trace () in
  Injector.arm inj
    { Injector.machine; kmod = Some kmod; nic = None; cores = [ 0; 1; 2; 3 ];
      poison = None }
    [
      Plan.ipi_loss ~p_drop:0.3 ~p_delay:0.3 ~delay:(Time.us 20) ();
      Plan.core_steal ~period:(Time.us 200) ~duration:(Time.us 50) ();
    ];
  let app = Percpu.create_app rt ~name:"a" in
  for i = 0 to 39 do
    ignore
      (Engine.at engine (i * Time.us 25) (fun () ->
           ignore
             (Percpu.spawn rt app
                ~name:(Printf.sprintf "t%d" i)
                (Coro.Compute (Time.us 10 + (i mod 7 * Time.us 4), fun () -> Coro.Exit)))))
  done;
  Engine.run ~until:(Time.ms 3) engine;
  (Trace.to_chrome_json trace, Injector.injected inj)

(* The work-stealing counterpart: every task lands on core 0 so the other
   deques run dry and the trace covers steal-half grabs, failed scans and
   the park/unpark path, under the same fault classes. *)
let traced_worksteal ~seed =
  let engine = Engine.create () in
  let machine =
    Machine.create engine (Topology.create ~sockets:1 ~cores_per_socket:4)
  in
  let kmod = Kmod.create machine in
  let rt =
    Worksteal.create machine kmod ~cores:[ 0; 1; 2; 3 ] ~quantum:(Time.us 30)
      ~watchdog:(Time.us 100) ()
  in
  let trace = Trace.create () in
  Worksteal.set_trace rt trace;
  let rng = Rng.create ~seed in
  let inj = Injector.create ~engine ~rng ~trace () in
  Injector.arm inj
    { Injector.machine; kmod = Some kmod; nic = None; cores = [ 0; 1; 2; 3 ];
      poison = None }
    [
      Plan.ipi_loss ~p_drop:0.3 ~p_delay:0.3 ~delay:(Time.us 20) ();
      Plan.core_steal ~period:(Time.us 200) ~duration:(Time.us 50) ();
    ];
  let app = Worksteal.create_app rt ~name:"a" in
  for i = 0 to 39 do
    ignore
      (Engine.at engine (i * Time.us 25) (fun () ->
           ignore
             (Worksteal.spawn rt app ~cpu:0
                ~name:(Printf.sprintf "t%d" i)
                (Coro.Compute (Time.us 10 + (i mod 7 * Time.us 4), fun () -> Coro.Exit)))))
  done;
  Engine.run ~until:(Time.ms 3) engine;
  (Trace.to_chrome_json trace, Injector.injected inj, Worksteal.steals rt)

(* The centralized counterpart: dispatcher + four workers under the same
   fault classes, quantum preemption and the watchdog armed. *)
let traced_centralized ~seed =
  let engine = Engine.create () in
  let machine =
    Machine.create engine (Topology.create ~sockets:1 ~cores_per_socket:5)
  in
  let kmod = Kmod.create machine in
  let rt =
    Centralized.create machine kmod ~dispatcher_core:0
      ~worker_cores:[ 1; 2; 3; 4 ] ~quantum:(Time.us 30)
      ~watchdog:(Time.us 200)
      (Skyloft_policies.Shinjuku.create ())
  in
  let trace = Trace.create () in
  Centralized.set_trace rt trace;
  let rng = Rng.create ~seed in
  let inj = Injector.create ~engine ~rng ~trace () in
  Injector.arm inj
    { Injector.machine; kmod = Some kmod; nic = None;
      cores = [ 0; 1; 2; 3; 4 ]; poison = None }
    [
      Plan.ipi_loss ~p_drop:0.3 ~p_delay:0.3 ~delay:(Time.us 20) ();
      Plan.core_steal ~period:(Time.us 200) ~duration:(Time.us 50) ();
    ];
  let app = Centralized.create_app rt ~name:"a" in
  for i = 0 to 39 do
    ignore
      (Engine.at engine (i * Time.us 25) (fun () ->
           ignore
             (Centralized.submit rt app
                ~name:(Printf.sprintf "t%d" i)
                (Coro.Compute (Time.us 10 + (i mod 7 * Time.us 4), fun () -> Coro.Exit)))))
  done;
  Engine.run ~until:(Time.ms 3) engine;
  (Trace.to_chrome_json trace, Injector.injected inj)

(* The hybrid under the same fault classes, with a mid-run burst deep
   enough to cross the hysteresis band — the golden covers both dispatch
   modes and the [Mode_switch] instants between them. *)
let traced_hybrid ~seed =
  let engine = Engine.create () in
  let machine =
    Machine.create engine (Topology.create ~sockets:1 ~cores_per_socket:5)
  in
  let kmod = Kmod.create machine in
  let rt =
    Hybrid.create machine kmod ~dispatcher_core:0 ~worker_cores:[ 1; 2; 3; 4 ]
      ~quantum:(Time.us 30) ~watchdog:(Time.us 200)
      (fst (Skyloft_policies.Shinjuku_shenango.create ()))
  in
  let trace = Trace.create () in
  Hybrid.set_trace rt trace;
  let rng = Rng.create ~seed in
  let inj = Injector.create ~engine ~rng ~trace () in
  Injector.arm inj
    { Injector.machine; kmod = Some kmod; nic = None;
      cores = [ 0; 1; 2; 3; 4 ]; poison = None }
    [
      Plan.ipi_loss ~p_drop:0.3 ~p_delay:0.3 ~delay:(Time.us 20) ();
      Plan.core_steal ~period:(Time.us 200) ~duration:(Time.us 50) ();
    ];
  let app = Hybrid.create_app rt ~name:"a" in
  let submit i =
    ignore
      (Hybrid.submit rt app
         ~name:(Printf.sprintf "t%d" i)
         (Coro.Compute (Time.us 10 + (i mod 7 * Time.us 4), fun () -> Coro.Exit)))
  in
  for i = 0 to 39 do
    ignore (Engine.at engine (i * Time.us 25) (fun () -> submit i))
  done;
  (* the burst: 20 requests land together, pushing the queue past the
     hi threshold (2x the workers) so the monitor flips to percore *)
  ignore
    (Engine.at engine (Time.ms 1 + Time.us 10) (fun () ->
         for i = 100 to 119 do
           submit i
         done));
  Engine.run ~until:(Time.ms 3) engine;
  (Trace.to_chrome_json trace, Injector.injected inj, Hybrid.mode_switches rt)

(* Every field of the point, pinned down to the last counter. *)
let fault_point_string (p : Fault_sweep.point) =
  Printf.sprintf
    "%s|%.6f|%.6f|%d|%d|%d|%d|%d|%d|%d|%d|%d|%d|%.6f|%.6f|%d|%d"
    p.Fault_sweep.runtime p.Fault_sweep.rate p.Fault_sweep.p99_us
    p.Fault_sweep.submitted p.Fault_sweep.completed p.Fault_sweep.gave_up
    p.Fault_sweep.net_drops p.Fault_sweep.lost p.Fault_sweep.attempts
    p.Fault_sweep.deadline_drops p.Fault_sweep.rescues p.Fault_sweep.failovers
    p.Fault_sweep.degradations p.Fault_sweep.detect_p50_us
    p.Fault_sweep.detect_p99_us p.Fault_sweep.injected p.Fault_sweep.steals

let digest s = Digest.to_hex (Digest.string s)

(* Fixed seeds and durations: golden values must not depend on the CLI
   config, only on the code. *)
let trace_seed = 1234
let sweep_config =
  { Config.duration = Time.ms 5; seed = 11; jobs = 1; requests = None }

let sweep_rate = 0.05

let obs_config =
  { Config.duration = Time.ms 5; seed = 7; jobs = 1; requests = None }

(* Scale cells run tiny compared to the real sweep (30k requests) but
   through the identical compile-and-run path; the digest covers every
   count, histogram summary and allocator total in the cell. *)
let scale_seed = 5
let scale_requests = 30_000

(* The machine-level obs point: full brokered fleet with all three tenant
   faults, digest over the machine trace JSON (spans + broker instants +
   allowance counter tracks) and the placement digest. *)
let obs_machine_seed = 7
let obs_machine_requests = 400

(* Every golden is one independent cell; [jobs] fans them across domains.
   The values must be identical at any [jobs] — that invariance, checked
   against the committed digests, is the proof that parallelization is
   transparent. *)
let fingerprints ?(jobs = 1) () =
  let cells =
    [
      ("trace-percpu", fun () -> digest (fst (traced_percpu ~seed:trace_seed)));
      ( "trace-centralized",
        fun () -> digest (fst (traced_centralized ~seed:trace_seed)) );
      ( "trace-hybrid",
        fun () ->
          let json, _, _ = traced_hybrid ~seed:trace_seed in
          digest json );
      ( "trace-worksteal",
        fun () ->
          let json, _, _ = traced_worksteal ~seed:trace_seed in
          digest json );
    ]
    @ List.map
        (fun ((name, _) as runtime) ->
          ( "fault-sweep-" ^ name,
            fun () ->
              digest
                (fault_point_string
                   (Fault_sweep.run_point sweep_config ~runtime ~rate:sweep_rate))
          ))
        Fault_sweep.runtimes
    @ List.map
        (fun ((name, _) as runtime) ->
          ( "obs-report-" ^ name,
            fun () ->
              (Obs_report.run_point obs_config ~runtime ~instrumented:false)
                .Obs_report.fingerprint ))
        Obs_report.runtimes
    @ [
        ( "obs-machine",
          fun () ->
            (Obs_report.run_machine_point ~seed:obs_machine_seed
               ~requests:obs_machine_requests ~instrumented:false)
              .Obs_report.m_fingerprint );
      ]
    @ List.concat_map
        (fun scenario ->
          List.map
            (fun runtime ->
              ( Printf.sprintf "scale-%s-%s" scenario.Scale.Scenario.name
                  (Scale.Scenario.runtime_name runtime),
                fun () ->
                  digest
                    (Scale.Scenario.digest_string
                       (Scale.Scenario.run ~seed:scale_seed
                          ~requests:scale_requests ~runtime scenario)) ))
            Scale.runtimes)
        Scale.scenarios
    @ List.map
        (fun scenario ->
          ( "oversub-" ^ scenario,
            fun () -> digest (Oversub.golden_cell ~scenario) ))
        Oversub.golden_scenarios
  in
  Parallel.map ~jobs (fun (name, f) -> (name, f ())) cells

let print (config : Config.t) =
  Report.section "Golden determinism fingerprints (fixed seeds)";
  List.iter (fun (name, fp) -> Printf.printf "  %-24s %s\n" name fp)
    (fingerprints ~jobs:config.jobs ())
