module Time = Skyloft_sim.Time
module Dist = Skyloft_sim.Dist
module Scenario = Skyloft_scenario.Scenario
module Arrival = Skyloft_scenario.Arrival
module Shape = Skyloft_scenario.Shape
module Histogram = Skyloft_stats.Histogram

(** The scale experiment: a scenario x runtime sweep at millions of
    requests per cell.

    Each cell compiles one declarative scenario ({!Skyloft_scenario})
    onto one runtime and runs it to a fixed {e request count} — not a
    fixed duration like the §5 figures — because the point of the sweep
    is constant-memory accounting at 10⁷+ requests: digests are
    per-tenant log-linear histograms, never per-request lists, so live
    heap is flat from the first million requests to the last.  The
    three scenarios cover the axes the paper's fixed Poisson/bimodal
    evaluation cannot: heavy tails (bounded Pareto), bursts (MMPP
    on/off at saturating burst intensity), and a compressed diurnal day
    across 120 co-located tenants. *)

let cores = 8

(* Steady heavy tail: one open-loop Poisson tenant at ~30% load with
   Pareto(1 µs, alpha 1.3, cap 5 ms) service, plus a batch tenant with a
   guaranteed core.  The LibPreemptible axis: what a heavy tail alone
   does to each runtime's p99.9. *)
let steady_pareto =
  Scenario.make ~name:"steady-pareto" ~cores
    [
      Scenario.lc ~name:"front" ~shape:(Shape.Single Dist.pareto_heavy)
        ~arrival:(Arrival.Poisson { rate_rps = 600_000.0 });
      Scenario.be ~name:"batch" ~guaranteed:1 ();
    ]

(* Bursty chains: an MMPP tenant whose on-phases arrive at ~80% of
   saturation (2 ms bursts separated by 6 ms lulls) through a 3-stage
   sequential chain, next to a small fan-out tenant and batch work.
   Scheduler conclusions flip under exactly this shape of load. *)
let bursty_mmpp =
  Scenario.make ~name:"bursty-mmpp" ~cores
    [
      Scenario.lc ~name:"burst"
        ~shape:
          (Shape.Chain
             [
               Dist.Exponential { mean = Time.us 1 };
               Dist.Exponential { mean = Time.us 2 };
               Dist.Exponential { mean = Time.us 1 };
             ])
        ~arrival:
          (Arrival.Mmpp
             {
               rate_on = 1_600_000.0;
               rate_off = 100_000.0;
               mean_on = Time.ms 2;
               mean_off = Time.ms 6;
             });
      Scenario.lc ~name:"fanout"
        ~shape:(Shape.Fanout { width = 4; stage = Dist.Exponential { mean = Time.us 1 } })
        ~arrival:(Arrival.Poisson { rate_rps = 50_000.0 });
      Scenario.be ~name:"batch" ~guaranteed:1 ();
    ]

(* The colocation story: 120 LC tenants, each a mixer (90% short single
   stage, 10% 4-way fan-out) on its own phase-shifted diurnal curve (a
   10 ms compressed day), plus batch.  Peaks are deliberately offset so
   the aggregate stays near ~35% while individual tenants swing 20x. *)
let n_mix_tenants = 120

let mix_day =
  [ (Time.ms 2, 30_000.0); (Time.ms 3, 12_000.0); (Time.ms 5, 1_500.0) ]

let tenant_mix =
  Scenario.make ~name:"tenant-mix" ~cores
    (List.init n_mix_tenants (fun i ->
         Scenario.lc
           ~name:(Printf.sprintf "t%03d" i)
           ~shape:
             (Shape.Mix
                [
                  (0.9, Shape.Single (Dist.Exponential { mean = Time.us 2 }));
                  ( 0.1,
                    Shape.Fanout
                      { width = 4; stage = Dist.Exponential { mean = Time.us 1 } }
                  );
                ])
           ~arrival:(Arrival.Diurnal { segments = Arrival.rotate i mix_day }))
    @ [ Scenario.be ~name:"batch" ~guaranteed:1 () ])

let scenarios = [ steady_pareto; bursty_mmpp; tenant_mix ]
let runtimes = Scenario.runtimes

(* Requests per cell by tier: --quick 150k (the CI smoke), default 1M,
   --full 10M — or exactly what --requests says. *)
let requests_for (config : Config.t) =
  match config.requests with
  | Some r -> r
  | None ->
      if config.duration <= Config.quick.duration then 150_000
      else if config.duration >= Config.full.duration then 10_000_000
      else 1_000_000

let run_cell (config : Config.t) ~scenario ~runtime ~requests =
  Scenario.run ~seed:config.seed ~requests ~runtime scenario

(* One cell per (scenario, runtime), fanned across domains; merging is
   by cell index, so results are byte-identical at any -j. *)
let sweep_all (config : Config.t) =
  let requests = requests_for config in
  let cells =
    List.concat_map
      (fun sc -> List.map (fun rt -> (sc, rt)) runtimes)
      scenarios
  in
  let points =
    Parallel.map ~jobs:config.jobs
      (fun (scenario, runtime) -> run_cell config ~scenario ~runtime ~requests)
      cells
  in
  List.map2
    (fun sc pts -> (sc.Scenario.name, pts))
    scenarios
    (Parallel.group ~size:(List.length runtimes) points)

let print (config : Config.t) =
  let requests = requests_for config in
  Report.section
    (Printf.sprintf
       "Scale: scenario x runtime sweep, %d requests per cell, %d cores"
       requests cores);
  List.iter
    (fun sc ->
      Report.note "%s: offered load %.2f, %.0f krps aggregate, %d tenants"
        sc.Scenario.name
        (Scenario.offered_load sc)
        (Scenario.mean_rate_rps sc /. 1e3)
        (List.length sc.Scenario.tenants))
    scenarios;
  let results = sweep_all config in
  List.iter
    (fun (name, pts) ->
      Report.subsection name;
      Report.table
        ~header:
          [
            "runtime";
            "submitted";
            "completed";
            "virtual ms";
            "krps";
            "p50 (us)";
            "p99 (us)";
            "p99.9 (us)";
            "BE grants";
            "reclaims";
          ]
        (List.map
           (fun (d : Scenario.digest) ->
             let all = Scenario.merged_latency d in
             let virtual_ms = Time.to_us_float d.last_completion /. 1e3 in
             [
               d.runtime;
               string_of_int d.submitted;
               string_of_int d.completed;
               Report.f1 virtual_ms;
               Report.f1 (float_of_int d.completed /. virtual_ms);
               Report.us (Histogram.percentile all 50.0);
               Report.us (Histogram.percentile all 99.0);
               Report.us (Histogram.percentile all 99.9);
               string_of_int d.alloc_grants;
               string_of_int d.alloc_reclaims;
             ])
           pts))
    results;
  Report.note
    "digests are streaming histograms only: live heap is flat in the request count";
  Report.note
    "same seed => byte-identical digests at any -j (goldens in skyloft_run golden)";
  results
