module Trace = Skyloft_stats.Trace
module Trace_analysis = Skyloft_obs.Trace_analysis

(** [skyloft_run trace-dump FILE]: decoder for flight-recorder binary
    images ({!Trace.write_binary} output — e.g. the
    [obs_trace_machine.bin] the obs-report experiment writes).

    Prints the image header (retained/dropped/interned counts), a
    per-kind census of the records, then the decoded event lines —
    and re-runs both invariant checkers over the decoded ring, so the
    dump doubles as an offline verifier: a corrupt or ill-formed image
    exits nonzero.  [--limit] bounds the event lines (0 = all). *)

let fail fmt = Printf.ksprintf failwith fmt

(* All 22 kinds, in wire order, so the census is exhaustive and stable. *)
let all_kinds =
  [
    Trace.Preempt; Trace.Wakeup; Trace.App_switch; Trace.Timer_tick;
    Trace.Fault; Trace.Core_grant; Trace.Core_reclaim; Trace.Inject;
    Trace.Watchdog_rescue; Trace.Failover; Trace.Deadline_drop;
    Trace.Alloc_degrade; Trace.Alloc_recover; Trace.Mode_switch;
    Trace.Broker_grant; Trace.Broker_reclaim; Trace.Broker_yield;
    Trace.Tenant_degrade; Trace.Tenant_recover; Trace.Quarantine;
    Trace.Release; Trace.Tenant_crash;
  ]

let census trace =
  let spans = ref 0 in
  let tbl = Hashtbl.create 32 in
  Trace.iter trace (fun ev ->
      match ev with
      | Trace.Span _ -> incr spans
      | Trace.Instant { kind; _ } ->
          let r =
            match Hashtbl.find_opt tbl kind with
            | Some r -> r
            | None ->
                let r = ref 0 in
                Hashtbl.replace tbl kind r;
                r
          in
          incr r);
  ( !spans,
    List.filter_map
      (fun k ->
        match Hashtbl.find_opt tbl k with
        | Some r when !r > 0 -> Some (k, !r)
        | _ -> None)
      all_kinds )

let dump ~path ~limit =
  let trace =
    try Trace.read_binary ~path
    with
    | Sys_error e -> fail "trace-dump: %s" e
    | Invalid_argument e -> fail "trace-dump: %s" e
  in
  Printf.printf "flight recorder image: %s\n" path;
  Printf.printf "  retained  %d events\n" (Trace.events trace);
  Printf.printf "  dropped   %d events (ring overflow at record time)\n"
    (Trace.dropped trace);
  Printf.printf "  interned  %d names\n" (Trace.interned trace);
  let spans, instants = census trace in
  Printf.printf "  spans     %d\n" spans;
  List.iter
    (fun (k, n) -> Printf.printf "  %-14s %d\n" (Trace.kind_name k) n)
    instants;
  let structural = Trace_analysis.check trace in
  let machine = Trace_analysis.check_machine trace in
  Printf.printf "invariants: %d structural, %d machine-level violations\n"
    (List.length structural) (List.length machine);
  List.iter
    (fun v ->
      Printf.printf "  VIOLATION %s\n"
        (Format.asprintf "%a" Trace_analysis.pp_violation v))
    (structural @ machine);
  let shown = ref 0 in
  (try
     Trace.iter trace (fun ev ->
         if limit > 0 && !shown >= limit then raise Exit;
         incr shown;
         print_endline (Trace.event_to_string ev))
   with Exit -> ());
  if limit > 0 && Trace.events trace > limit then
    Printf.printf "... (%d more; --limit 0 shows all)\n"
      (Trace.events trace - limit);
  if structural <> [] || machine <> [] then
    fail "trace-dump: %d invariant violations in %s"
      (List.length structural + List.length machine)
      path;
  trace
