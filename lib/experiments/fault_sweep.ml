module Time = Skyloft_sim.Time
module Engine = Skyloft_sim.Engine
module Coro = Skyloft_sim.Coro
module Dist = Skyloft_sim.Dist
module Topology = Skyloft_hw.Topology
module Machine = Skyloft_hw.Machine
module Kmod = Skyloft_kernel.Kmod
module Summary = Skyloft_stats.Summary
module Histogram = Skyloft_stats.Histogram
module App = Skyloft.App
module Centralized = Skyloft.Centralized
module Percpu = Skyloft.Percpu
module Hybrid = Skyloft.Hybrid
module Worksteal = Skyloft.Worksteal
module Allocator = Skyloft_alloc.Allocator
module Alloc_policy = Skyloft_alloc.Policy
module Nic = Skyloft_net.Nic
module Packet = Skyloft_net.Packet
module Loadgen = Skyloft_net.Loadgen
module Synthetic = Skyloft_apps.Synthetic
module Plan = Skyloft_fault.Plan
module Injector = Skyloft_fault.Injector

(** Fault-rate sweep: tail latency and recovery accounting under injected
    faults (the lib/fault subsystem exercised end to end).

    Both runtimes serve the dispersive open-loop workload through a NIC
    with small rings while the injector applies every fault class —
    dropped/delayed preemption IPIs and timer ticks, host-kernel core
    steals, poisoned never-yielding tasks, wire packet loss — at a swept
    intensity.  Recovery machinery (per-core watchdog, dispatcher
    failover, request deadlines with client retry, allocator degradation)
    must keep the accounting lossless: every submitted request ends as a
    completion, an explicit give-up, or an explicit network drop.  The
    [lost] column is that reconciliation residue and must be zero. *)

let n_workers = 8
let dispatcher_core = 0
let worker_cores = List.init n_workers (fun i -> i + 1)
let percpu_cores = List.init n_workers Fun.id
let quantum = Time.us 30
let watchdog_bound = Time.us 200
let deadline = Time.ms 25
let retry_budget = 2
let retry_backoff = Time.us 200
let load_frac = 0.4
let rate_rps = load_frac *. Synthetic.saturation_rps ~cores:n_workers
let drain = Time.ms 60
let ring_capacity = 64
let steal_duration = Time.us 30
let poison_service = Time.ms 1
let poison_deadline = Time.ms 2
let fault_rates = [ 0.0; 0.01; 0.05 ]

type runtime = Central | Percore | Hybridized | Stealing

let runtimes =
  [
    ("centralized", Central);
    ("percpu", Percore);
    ("hybrid", Hybridized);
    ("worksteal", Stealing);
  ]

(* Fault intensity [rate] scales every class: IPI drop/delay probability is
   [rate] per delivery, one 30 µs core steal every [30 µs / rate], one
   poisoned task every [2 ms / rate], and wire loss at [rate / 10] per
   packet. *)
let plans rate =
  if rate <= 0.0 then []
  else
    [
      Plan.ipi_loss ~p_drop:rate ~p_delay:rate ~delay:(Time.us 50) ();
      Plan.core_steal
        ~period:(int_of_float (float_of_int steal_duration /. rate))
        ~duration:steal_duration ();
      Plan.poison
        ~period:(int_of_float (float_of_int (Time.ms 2) /. rate))
        ~service:poison_service ();
      Plan.packet_loss ~p_drop:(rate /. 10.) ();
    ]

type point = {
  runtime : string;
  rate : float;
  p99_us : float;
  submitted : int;
  completed : int;
  gave_up : int;
  net_drops : int;  (** ring overflow + injected wire loss *)
  lost : int;  (** reconciliation residue; must be 0 *)
  attempts : int;
  deadline_drops : int;
  rescues : int;
  failovers : int;
  degradations : int;
  detect_p50_us : float;
  detect_p99_us : float;
  injected : int;
  steals : int;
}

type counters = {
  mutable submitted : int;
  mutable completed : int;
  mutable gave_up : int;
  mutable attempts : int;
}

(* Runtime-neutral surface the request pipeline needs. *)
type iface = {
  submit :
    name:string ->
    service:Time.t ->
    on_drop:(unit -> unit) ->
    on_done:(unit -> unit) ->
    unit;
  poison : core:int -> service:Time.t -> unit;
  rescues : unit -> int;
  failovers : unit -> int;
  deadline_drops : unit -> int;
  detect : unit -> Histogram.t;
  allocator : unit -> Allocator.t option;
}

(* The delay policy reclaims BE cores on LC queueing delay — a congestion
   signal that stays live even while LC is fully starved of cores (the
   utilization signal is not: an LC app with no cores has zero utilization
   and would never be granted any). *)
let alloc_cfg () =
  {
    (Allocator.default_config ()) with
    Allocator.policy = Alloc_policy.delay ();
    degrade_after = Some 40;
  }

let make_centralized machine kmod =
  let rt =
    Centralized.create machine kmod ~dispatcher_core ~worker_cores ~quantum
      ~alloc:(alloc_cfg ()) ~watchdog:watchdog_bound
      (fst (Skyloft_policies.Shinjuku_shenango.create ()))
  in
  let lc = Centralized.create_app rt ~name:"lc" in
  let be = Centralized.create_app rt ~name:"batch" in
  Centralized.attach_be_app rt be ~chunk:(Time.us 50) ~workers:n_workers;
  {
    submit =
      (fun ~name ~service ~on_drop ~on_done ->
        ignore
          (Centralized.submit rt lc ~record:false ~deadline
             ~on_drop:(fun _ -> on_drop ())
             ~name
             (Coro.Compute
                ( service,
                  fun () ->
                    on_done ();
                    Coro.Exit ))));
    poison =
      (fun ~core:_ ~service ->
        ignore
          (Centralized.submit rt lc ~record:false ~deadline:poison_deadline
             ~name:"poison"
             (Coro.Compute (service, fun () -> Coro.Exit))));
    rescues = (fun () -> Centralized.watchdog_rescues rt);
    failovers = (fun () -> Centralized.failovers rt);
    deadline_drops = (fun () -> Centralized.deadline_drops rt);
    detect = (fun () -> Centralized.rescue_detection rt);
    allocator = (fun () -> Centralized.allocator rt);
  }

let make_percpu machine kmod =
  let rt =
    Percpu.create machine kmod ~cores:percpu_cores ~timer_hz:100_000
      ~watchdog:watchdog_bound
      (Skyloft_policies.Work_stealing.create ~quantum ())
  in
  let lc = Percpu.create_app rt ~name:"lc" in
  let be = Percpu.create_app rt ~name:"batch" in
  Percpu.attach_be_app rt ~alloc:(alloc_cfg ()) be ~chunk:(Time.us 50)
    ~workers:n_workers;
  {
    submit =
      (fun ~name ~service ~on_drop ~on_done ->
        ignore
          (Percpu.spawn rt lc ~name ~record:false ~deadline
             ~on_drop:(fun _ -> on_drop ())
             (Coro.Compute
                ( service,
                  fun () ->
                    on_done ();
                    Coro.Exit ))));
    poison =
      (fun ~core ~service ->
        ignore
          (Percpu.spawn rt lc ~name:"poison" ~cpu:core ~record:false
             ~deadline:poison_deadline
             (Coro.Compute (service, fun () -> Coro.Exit))));
    rescues = (fun () -> Percpu.watchdog_rescues rt);
    failovers = (fun () -> 0);
    deadline_drops = (fun () -> Percpu.deadline_drops rt);
    detect = (fun () -> Percpu.rescue_detection rt);
    allocator = (fun () -> Percpu.allocator rt);
  }

let make_worksteal machine kmod =
  let rt =
    Worksteal.create machine kmod ~cores:percpu_cores ~timer_hz:100_000
      ~quantum ~watchdog:watchdog_bound ()
  in
  let lc = Worksteal.create_app rt ~name:"lc" in
  let be = Worksteal.create_app rt ~name:"batch" in
  Worksteal.attach_be_app rt ~alloc:(alloc_cfg ()) be ~chunk:(Time.us 50)
    ~workers:n_workers;
  {
    submit =
      (fun ~name ~service ~on_drop ~on_done ->
        ignore
          (Worksteal.spawn rt lc ~name ~record:false ~deadline
             ~on_drop:(fun _ -> on_drop ())
             (Coro.Compute
                ( service,
                  fun () ->
                    on_done ();
                    Coro.Exit ))));
    poison =
      (fun ~core ~service ->
        ignore
          (Worksteal.spawn rt lc ~name:"poison" ~cpu:core ~record:false
             ~deadline:poison_deadline
             (Coro.Compute (service, fun () -> Coro.Exit))));
    rescues = (fun () -> Worksteal.watchdog_rescues rt);
    failovers = (fun () -> 0);
    deadline_drops = (fun () -> Worksteal.deadline_drops rt);
    detect = (fun () -> Worksteal.rescue_detection rt);
    allocator = (fun () -> Worksteal.allocator rt);
  }

let make_hybrid machine kmod =
  let rt =
    Hybrid.create machine kmod ~dispatcher_core ~worker_cores ~quantum
      ~alloc:(alloc_cfg ()) ~watchdog:watchdog_bound
      (fst (Skyloft_policies.Shinjuku_shenango.create ()))
  in
  let lc = Hybrid.create_app rt ~name:"lc" in
  let be = Hybrid.create_app rt ~name:"batch" in
  Hybrid.attach_be_app rt be ~chunk:(Time.us 50) ~workers:n_workers;
  {
    submit =
      (fun ~name ~service ~on_drop ~on_done ->
        ignore
          (Hybrid.submit rt lc ~record:false ~deadline
             ~on_drop:(fun _ -> on_drop ())
             ~name
             (Coro.Compute
                ( service,
                  fun () ->
                    on_done ();
                    Coro.Exit ))));
    poison =
      (fun ~core:_ ~service ->
        ignore
          (Hybrid.submit rt lc ~record:false ~deadline:poison_deadline
             ~name:"poison"
             (Coro.Compute (service, fun () -> Coro.Exit))));
    rescues = (fun () -> Hybrid.watchdog_rescues rt);
    failovers = (fun () -> Hybrid.failovers rt);
    deadline_drops = (fun () -> Hybrid.deadline_drops rt);
    detect = (fun () -> Hybrid.rescue_detection rt);
    allocator = (fun () -> Hybrid.allocator rt);
  }

let run_point (config : Config.t) ~runtime:(rt_name, which) ~rate =
  let engine = Engine.create ~seed:config.seed () in
  let machine = Machine.create engine Topology.paper_server in
  let kmod = Kmod.create machine in
  let iface =
    match which with
    | Central -> make_centralized machine kmod
    | Percore -> make_percpu machine kmod
    | Hybridized -> make_hybrid machine kmod
    | Stealing -> make_worksteal machine kmod
  in
  let nic = Nic.create engine ~queues:1 ~ring_capacity () in
  (* Split order is fixed so a zero-rate run draws the same generator
     stream as a faulty one (the injector draws only from its own split). *)
  let inj_rng = Engine.split_rng engine in
  let gen_rng = Engine.split_rng engine in
  let injector = Injector.create ~engine ~rng:inj_rng () in
  let inject_cores =
    match which with
    | Central | Hybridized -> dispatcher_core :: worker_cores
    | Percore | Stealing -> percpu_cores
  in
  (match plans rate with
  | [] -> ()
  | ps ->
      Injector.arm injector
        {
          Injector.machine;
          kmod = Some kmod;
          nic = Some nic;
          cores = inject_cores;
          poison = Some (fun ~core ~service -> iface.poison ~core ~service);
        }
        ps);
  let cnt = { submitted = 0; completed = 0; gave_up = 0; attempts = 0 } in
  let summary = Summary.create () in
  Nic.on_packet nic ~queue:0 (fun (pkt : Packet.t) ->
      Loadgen.retrying engine ~budget:retry_budget ~backoff:retry_backoff
        ~attempt:(fun _k done_ ->
          cnt.attempts <- cnt.attempts + 1;
          iface.submit ~name:pkt.Packet.kind ~service:pkt.Packet.service
            ~on_drop:(fun () -> done_ false)
            ~on_done:(fun () ->
              cnt.completed <- cnt.completed + 1;
              Summary.record_request summary ~arrival:pkt.Packet.arrival
                ~completion:(Engine.now engine) ~service:pkt.Packet.service;
              done_ true))
        (fun () -> cnt.gave_up <- cnt.gave_up + 1));
  Loadgen.poisson engine ~rng:gen_rng ~rate_rps ~service:Dist.dispersive
    ~duration:config.duration (fun pkt ->
      cnt.submitted <- cnt.submitted + 1;
      Nic.rx nic pkt);
  Engine.run ~until:(config.duration + drain) engine;
  let net_drops = Nic.drops nic + Nic.injected_drops nic in
  let detect = iface.detect () in
  let detect_p p =
    if Histogram.is_empty detect then 0.0
    else Time.to_us_float (Histogram.percentile detect p)
  in
  {
    runtime = rt_name;
    rate;
    p99_us = Time.to_us_float (Summary.latency_p summary 99.0);
    submitted = cnt.submitted;
    completed = cnt.completed;
    gave_up = cnt.gave_up;
    net_drops;
    lost = cnt.submitted - cnt.completed - cnt.gave_up - net_drops;
    attempts = cnt.attempts;
    deadline_drops = iface.deadline_drops ();
    rescues = iface.rescues ();
    failovers = iface.failovers ();
    degradations =
      (match iface.allocator () with
      | Some a -> Allocator.degradations a
      | None -> 0);
    detect_p50_us = detect_p 50.0;
    detect_p99_us = detect_p 99.0;
    injected = Injector.injected injector;
    steals = Kmod.steals kmod;
  }

let sweep (config : Config.t) ~runtime =
  Parallel.map ~jobs:config.jobs
    (fun rate -> run_point config ~runtime ~rate)
    fault_rates

(* One cell per (runtime, rate), fanned across domains. *)
let sweep_all (config : Config.t) =
  let cells =
    List.concat_map
      (fun runtime -> List.map (fun rate -> (runtime, rate)) fault_rates)
      runtimes
  in
  let points =
    Parallel.map ~jobs:config.jobs
      (fun (runtime, rate) -> run_point config ~runtime ~rate)
      cells
  in
  List.map2
    (fun (name, _) pts -> (name, pts))
    runtimes
    (Parallel.group ~size:(List.length fault_rates) points)

(* ---- reporting ----------------------------------------------------------- *)

let json_path = "BENCH_fault.json"

let write_json results =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n  \"runtimes\": {\n";
  List.iteri
    (fun i (name, pts) ->
      Buffer.add_string buf (Printf.sprintf "    %S: [\n" name);
      List.iteri
        (fun j p ->
          Buffer.add_string buf
            (Printf.sprintf
               "      {\"rate\": %.3f, \"p99_us\": %.2f, \"submitted\": %d, \
                \"completed\": %d, \"gave_up\": %d, \"net_drops\": %d, \
                \"lost\": %d, \"attempts\": %d, \"deadline_drops\": %d, \
                \"rescues\": %d, \"failovers\": %d, \"degradations\": %d, \
                \"detect_p50_us\": %.2f, \"detect_p99_us\": %.2f, \
                \"injected\": %d, \"steals\": %d}%s\n"
               p.rate p.p99_us p.submitted p.completed p.gave_up p.net_drops
               p.lost p.attempts p.deadline_drops p.rescues p.failovers
               p.degradations p.detect_p50_us p.detect_p99_us p.injected
               p.steals
               (if j < List.length pts - 1 then "," else "")))
        pts;
      Buffer.add_string buf
        (Printf.sprintf "    ]%s\n"
           (if i < List.length results - 1 then "," else "")))
    results;
  Buffer.add_string buf "  }\n}\n";
  let oc = open_out json_path in
  output_string oc (Buffer.contents buf);
  close_out oc

let print config =
  Report.section
    (Printf.sprintf
       "Fault-rate sweep: recovery under injected faults, %d workers at %.0f%% \
        load"
       n_workers (load_frac *. 100.));
  let results = sweep_all config in
  List.iter
    (fun (name, pts) ->
      Report.subsection (Printf.sprintf "%s runtime" name);
      Report.table
        ~header:
          [
            "fault rate";
            "p99 (us)";
            "submitted";
            "completed";
            "gave up";
            "net drops";
            "lost";
            "rescues";
            "failovers";
            "detect p99 (us)";
            "injected";
          ]
        (List.map
           (fun p ->
             [
               Printf.sprintf "%.2f" p.rate;
               Report.f1 p.p99_us;
               string_of_int p.submitted;
               string_of_int p.completed;
               string_of_int p.gave_up;
               string_of_int p.net_drops;
               string_of_int p.lost;
               string_of_int p.rescues;
               string_of_int p.failovers;
               Report.f1 p.detect_p99_us;
               string_of_int p.injected;
             ])
           pts))
    results;
  Report.note "lost = submitted - completed - gave-up - net-drops; it must be 0:";
  Report.note "every request completes, explicitly gives up, or is a counted drop";
  write_json results;
  Printf.printf "\nwrote %s\n" json_path;
  results
