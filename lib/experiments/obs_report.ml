module Time = Skyloft_sim.Time
module Engine = Skyloft_sim.Engine
module Coro = Skyloft_sim.Coro
module Dist = Skyloft_sim.Dist
module Topology = Skyloft_hw.Topology
module Machine = Skyloft_hw.Machine
module Kmod = Skyloft_kernel.Kmod
module Histogram = Skyloft_stats.Histogram
module Timeseries = Skyloft_stats.Timeseries
module Trace = Skyloft_stats.Trace
module App = Skyloft.App
module Centralized = Skyloft.Centralized
module Percpu = Skyloft.Percpu
module Hybrid = Skyloft.Hybrid
module Worksteal = Skyloft.Worksteal
module Allocator = Skyloft_alloc.Allocator
module Alloc_policy = Skyloft_alloc.Policy
module Nic = Skyloft_net.Nic
module Packet = Skyloft_net.Packet
module Loadgen = Skyloft_net.Loadgen
module Synthetic = Skyloft_apps.Synthetic
module Plan = Skyloft_fault.Plan
module Injector = Skyloft_fault.Injector
module Registry = Skyloft_obs.Registry
module Attribution = Skyloft_obs.Attribution
module Trace_analysis = Skyloft_obs.Trace_analysis
module Broker = Skyloft_alloc.Broker
module Scenario = Skyloft_scenario.Scenario
module Shape = Skyloft_scenario.Shape
module Arrival = Skyloft_scenario.Arrival
module Placement = Skyloft_scenario.Placement

(** Observability report: the lib/obs layer exercised end to end on both
    runtimes.

    An open-loop workload (with a slice of requests that page-fault in the
    middle of their service time) runs co-located with a batch application
    while the injector steals cores, so every latency segment — queueing,
    service, preemption overhead, fault stall — is nonzero.  The run is
    performed twice per runtime, once with the metrics registry attached
    and once without; the trace and every per-request statistic must be
    byte-identical (observation must not perturb the simulation).  On top
    of the trace the analysis pass computes per-core utilization and
    checks the structural invariants; the attribution identity
    [queueing + service + overhead + stall = response] must hold exactly
    for every completed request.  Any violation fails the experiment with
    a nonzero exit — this is the CI smoke check for lib/obs. *)

let n_workers = 4
let dispatcher_core = 0
let worker_cores = List.init n_workers (fun i -> i + 1)
let percpu_cores = List.init n_workers Fun.id
let quantum = Time.us 30
let watchdog_bound = Time.us 200
let load_frac = 0.35
let rate_rps = load_frac *. Synthetic.saturation_rps ~cores:n_workers
let drain = Time.ms 20
let trace_capacity = 300_000
let steal_duration = Time.us 25
let steal_period = Time.us 900
let fault_every = 7  (* every 7th request blocks mid-service... *)
let fault_ns = Time.us 15  (* ...for this long *)
let page_fault_period = Time.us 500  (* percpu: fault the task on core 0 *)
let page_fault_ns = Time.us 20

type runtime = Central | Percore | Hybridized | Stealing

let runtimes =
  [
    ("centralized", Central);
    ("percpu", Percore);
    ("hybrid", Hybridized);
    ("worksteal", Stealing);
  ]

let alloc_cfg () =
  {
    (Allocator.default_config ()) with
    Allocator.policy = Alloc_policy.delay ();
  }

(* Runtime-neutral surface: submit a request (optionally one that blocks
   mid-service), register every subsystem's metrics, and poke the
   runtime-specific fault path. *)
type iface = {
  submit : name:string -> service:Time.t -> fault:bool -> unit;
  register : Registry.t -> unit;
  lc : App.t;
  be : App.t;
  queue_series : Timeseries.t;
  alloc : unit -> Allocator.t option;
  fault_tick : unit -> unit;
}

(* A faulting request computes half its service, blocks (the page-fault
   monitor path), and is woken by an external event; the runtime charges
   the blocked interval as fault stall, never as service. *)
let split_service service = (service / 2, service - (service / 2))

let make_centralized engine machine kmod =
  let rt =
    Centralized.create machine kmod ~dispatcher_core ~worker_cores ~quantum
      ~alloc:(alloc_cfg ()) ~watchdog:watchdog_bound
      (fst (Skyloft_policies.Shinjuku_shenango.create ()))
  in
  let lc = Centralized.create_app rt ~name:"lc" in
  let be = Centralized.create_app rt ~name:"batch" in
  Centralized.attach_be_app rt be ~chunk:(Time.us 50) ~workers:n_workers;
  ( rt,
    {
      submit =
        (fun ~name ~service ~fault ->
          if fault then begin
            let s1, s2 = split_service service in
            let body =
              Coro.Compute
                ( s1,
                  fun () ->
                    Coro.Block (fun () -> Coro.Compute (s2, fun () -> Coro.Exit))
                )
            in
            let task = Centralized.submit rt lc ~service ~name body in
            ignore
              (Engine.after engine (s1 + fault_ns) (fun () ->
                   Centralized.wakeup rt task))
          end
          else
            ignore
              (Centralized.submit rt lc ~service ~name
                 (Coro.Compute (service, fun () -> Coro.Exit))));
      register =
        (fun reg ->
          Centralized.register_metrics rt reg;
          match Centralized.allocator rt with
          | Some a -> Allocator.register_metrics a reg
          | None -> ());
      lc;
      be;
      queue_series = Centralized.queue_depth_series rt;
      alloc = (fun () -> Centralized.allocator rt);
      fault_tick = (fun () -> ());
    },
    (fun trace -> Centralized.set_trace rt trace) )

let make_percpu engine machine kmod =
  let rt =
    Percpu.create machine kmod ~cores:percpu_cores ~timer_hz:100_000
      ~watchdog:watchdog_bound
      (Skyloft_policies.Work_stealing.create ~quantum ())
  in
  let lc = Percpu.create_app rt ~name:"lc" in
  let be = Percpu.create_app rt ~name:"batch" in
  Percpu.attach_be_app rt ~alloc:(alloc_cfg ()) be ~chunk:(Time.us 50)
    ~workers:n_workers;
  ( rt,
    {
      submit =
        (fun ~name ~service ~fault ->
          if fault then begin
            let s1, s2 = split_service service in
            let body =
              Coro.Compute
                ( s1,
                  fun () ->
                    Coro.Block (fun () -> Coro.Compute (s2, fun () -> Coro.Exit))
                )
            in
            let task = Percpu.spawn rt lc ~service ~name body in
            ignore
              (Engine.after engine (s1 + fault_ns) (fun () ->
                   Percpu.wakeup rt task))
          end
          else
            ignore
              (Percpu.spawn rt lc ~service ~name
                 (Coro.Compute (service, fun () -> Coro.Exit))));
      register =
        (fun reg ->
          Percpu.register_metrics rt reg;
          match Percpu.allocator rt with
          | Some a -> Allocator.register_metrics a reg
          | None -> ());
      lc;
      be;
      queue_series = Percpu.queue_depth_series rt;
      alloc = (fun () -> Percpu.allocator rt);
      fault_tick =
        (fun () ->
          ignore (Percpu.fault_current rt ~core:0 ~duration:page_fault_ns));
    },
    (fun trace -> Percpu.set_trace rt trace) )

let make_worksteal engine machine kmod =
  let rt =
    Worksteal.create machine kmod ~cores:percpu_cores ~timer_hz:100_000
      ~quantum ~watchdog:watchdog_bound ()
  in
  let lc = Worksteal.create_app rt ~name:"lc" in
  let be = Worksteal.create_app rt ~name:"batch" in
  Worksteal.attach_be_app rt ~alloc:(alloc_cfg ()) be ~chunk:(Time.us 50)
    ~workers:n_workers;
  ( rt,
    {
      submit =
        (fun ~name ~service ~fault ->
          if fault then begin
            let s1, s2 = split_service service in
            let body =
              Coro.Compute
                ( s1,
                  fun () ->
                    Coro.Block (fun () -> Coro.Compute (s2, fun () -> Coro.Exit))
                )
            in
            let task = Worksteal.spawn rt lc ~service ~name body in
            ignore
              (Engine.after engine (s1 + fault_ns) (fun () ->
                   Worksteal.wakeup rt task))
          end
          else
            ignore
              (Worksteal.spawn rt lc ~service ~name
                 (Coro.Compute (service, fun () -> Coro.Exit))));
      register =
        (fun reg ->
          Worksteal.register_metrics rt reg;
          match Worksteal.allocator rt with
          | Some a -> Allocator.register_metrics a reg
          | None -> ());
      lc;
      be;
      queue_series = Worksteal.queue_depth_series rt;
      alloc = (fun () -> Worksteal.allocator rt);
      fault_tick =
        (fun () ->
          ignore (Worksteal.fault_current rt ~core:0 ~duration:page_fault_ns));
    },
    (fun trace -> Worksteal.set_trace rt trace) )

let make_hybrid engine machine kmod =
  let rt =
    Hybrid.create machine kmod ~dispatcher_core ~worker_cores ~quantum
      ~alloc:(alloc_cfg ()) ~watchdog:watchdog_bound
      (fst (Skyloft_policies.Shinjuku_shenango.create ()))
  in
  let lc = Hybrid.create_app rt ~name:"lc" in
  let be = Hybrid.create_app rt ~name:"batch" in
  Hybrid.attach_be_app rt be ~chunk:(Time.us 50) ~workers:n_workers;
  ( rt,
    {
      submit =
        (fun ~name ~service ~fault ->
          if fault then begin
            let s1, s2 = split_service service in
            let body =
              Coro.Compute
                ( s1,
                  fun () ->
                    Coro.Block (fun () -> Coro.Compute (s2, fun () -> Coro.Exit))
                )
            in
            let task = Hybrid.submit rt lc ~service ~name body in
            ignore
              (Engine.after engine (s1 + fault_ns) (fun () ->
                   Hybrid.wakeup rt task))
          end
          else
            ignore
              (Hybrid.submit rt lc ~service ~name
                 (Coro.Compute (service, fun () -> Coro.Exit))));
      register =
        (fun reg ->
          Hybrid.register_metrics rt reg;
          match Hybrid.allocator rt with
          | Some a -> Allocator.register_metrics a reg
          | None -> ());
      lc;
      be;
      queue_series = Hybrid.queue_depth_series rt;
      alloc = (fun () -> Hybrid.allocator rt);
      fault_tick = (fun () -> ());
    },
    (fun trace -> Hybrid.set_trace rt trace) )

type point = {
  runtime : string;
  instrumented : bool;
  until : Time.t;
  requests : int;
  mismatches : int;
  violations : Trace_analysis.violation list;
  dropped : int;
  busy_delta : int;  (* trace-vs-accounting busy residue; 0 when decidable *)
  util : Trace_analysis.core_report list;
  rows : (string * Attribution.t) list;
  fingerprint : string;
  trace_json : string;
  samples : Registry.sample list;  (* empty when not instrumented *)
  injected : int;
}

(* Everything per-request-visible goes into the fingerprint; the two arms
   (registry attached / not attached) must agree byte for byte. *)
let fingerprint_of ~trace_json ~rows ~queue_series =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf trace_json;
  List.iter
    (fun (name, a) ->
      Buffer.add_string buf
        (Format.asprintf "%a\n" Attribution.pp_row (name, a)))
    rows;
  Buffer.add_string buf
    (Printf.sprintf "qdepth:%d:%d\n"
       (Timeseries.length queue_series)
       (match Timeseries.last queue_series with Some (_, v) -> v | None -> -1));
  Digest.to_hex (Digest.string (Buffer.contents buf))

let run_point (config : Config.t) ~runtime:(rt_name, which) ~instrumented =
  (* App ids leak into trace pids; per-run allocation in Runtime_core
     guarantees both arms assign the same ids without any global reset. *)
  let engine = Engine.create ~seed:config.seed () in
  let machine = Machine.create engine Topology.paper_server in
  let kmod = Kmod.create machine in
  let iface, set_trace =
    match which with
    | Central ->
        let _, iface, set = make_centralized engine machine kmod in
        (iface, set)
    | Percore ->
        let _, iface, set = make_percpu engine machine kmod in
        (iface, set)
    | Hybridized ->
        let _, iface, set = make_hybrid engine machine kmod in
        (iface, set)
    | Stealing ->
        let _, iface, set = make_worksteal engine machine kmod in
        (iface, set)
  in
  let trace = Trace.create ~capacity:trace_capacity () in
  set_trace trace;
  let nic = Nic.create engine ~queues:1 () in
  let inj_rng = Engine.split_rng engine in
  let gen_rng = Engine.split_rng engine in
  let injector = Injector.create ~engine ~rng:inj_rng () in
  let inject_cores =
    match which with
    | Central | Hybridized -> dispatcher_core :: worker_cores
    | Percore | Stealing -> percpu_cores
  in
  Injector.arm injector
    {
      Injector.machine;
      kmod = Some kmod;
      nic = Some nic;
      cores = inject_cores;
      poison = None;
    }
    [ Plan.core_steal ~period:steal_period ~duration:steal_duration () ];
  (* The registry is the only difference between the two arms. *)
  let registry = if instrumented then Some (Registry.create ()) else None in
  (match registry with
  | Some reg ->
      iface.register reg;
      Kmod.register_metrics kmod reg;
      Nic.register_metrics nic reg;
      Injector.register_metrics injector reg
  | None -> ());
  let n = ref 0 in
  Nic.on_packet nic ~queue:0 (fun (pkt : Packet.t) ->
      incr n;
      iface.submit ~name:pkt.Packet.kind ~service:pkt.Packet.service
        ~fault:(!n mod fault_every = 0));
  Loadgen.poisson engine ~rng:gen_rng ~rate_rps ~service:Dist.dispersive
    ~duration:config.duration (fun pkt -> Nic.rx nic pkt);
  (match which with
  | Percore | Stealing ->
      Engine.every engine ~period:page_fault_period (fun () ->
          iface.fault_tick ();
          true)
  | Central | Hybridized -> ());
  let until = config.duration + drain in
  Engine.run ~until engine;
  let rows =
    [ (iface.lc.App.name, iface.lc.App.attribution);
      (iface.be.App.name, iface.be.App.attribution) ]
  in
  let util = Trace_analysis.utilization trace ~until in
  let violations = Trace_analysis.check trace in
  (* When the ring kept everything, each app's span total must reproduce
     the runtime's own busy accounting exactly (segments still in flight
     at the horizon appear in neither). *)
  let busy_delta =
    if Trace.dropped trace > 0 then 0
    else
      let span_busy_of id =
        List.fold_left
          (fun acc (r : Trace_analysis.core_report) ->
            acc
            + Option.value ~default:0
                (List.assoc_opt id r.Trace_analysis.per_app))
          0 util
      in
      abs (span_busy_of iface.lc.App.id - iface.lc.App.busy_ns)
      + abs (span_busy_of iface.be.App.id - iface.be.App.busy_ns)
  in
  let counters =
    ("queue depth", iface.queue_series)
    ::
    (match iface.alloc () with
    | Some a ->
        [
          ( iface.be.App.name ^ " granted cores",
            Allocator.series a ~app:iface.be.App.id );
        ]
    | None -> [])
  in
  let trace_json = Trace_analysis.to_chrome_json ~counters trace in
  {
    runtime = rt_name;
    instrumented;
    until;
    requests = Attribution.requests iface.lc.App.attribution;
    mismatches =
      Attribution.mismatches iface.lc.App.attribution
      + Attribution.mismatches iface.be.App.attribution;
    violations;
    dropped = Trace.dropped trace;
    busy_delta;
    util;
    rows;
    fingerprint =
      fingerprint_of ~trace_json ~rows ~queue_series:iface.queue_series;
    trace_json;
    samples =
      (match registry with
      | Some reg -> Registry.snapshot ~until reg
      | None -> []);
    injected = Injector.injected injector;
  }

(* ---- reporting ----------------------------------------------------------- *)

let trace_path name = Printf.sprintf "obs_trace_%s.json" name

let fail fmt = Printf.ksprintf failwith fmt

let check_point p =
  if p.requests = 0 then fail "obs-report[%s]: no requests completed" p.runtime;
  if p.mismatches > 0 then
    fail
      "obs-report[%s]: %d requests whose segments do not sum to their \
       response time"
      p.runtime p.mismatches;
  (match p.violations with
  | [] -> ()
  | v :: _ ->
      fail "obs-report[%s]: %d trace invariant violations (first: %s)"
        p.runtime
        (List.length p.violations)
        (Format.asprintf "%a" Trace_analysis.pp_violation v));
  if p.busy_delta <> 0 then
    fail "obs-report[%s]: trace busy time differs from accounting by %d ns"
      p.runtime p.busy_delta

(* ---- machine-level observability ------------------------------------------ *)

(* The machine layer under the same discipline: a brokered 4-tenant
   {!Placement} fleet (mixed runtimes, one BE tenant) shares one flight
   recorder — every tenant's spans on its physical cores plus the
   broker's arbitration and health instants on each tenant's base core —
   while three tenants misbehave in sequence (hoard → quarantine +
   release, stale → degrade + recover, crash).  The run is performed with
   and without the registry attached and the fingerprints must match;
   the trace must satisfy both the structural invariants ({!check}) and
   the machine-level health-automaton invariants ({!check_machine}), and
   every broker counter must equal its instant count in the trace — the
   trace mirror is lossless.  The per-tenant allowance series become
   Perfetto counter tracks in [obs_trace_machine.json], and the raw ring
   is written as [obs_trace_machine.bin] for [skyloft_run trace-dump]. *)

let machine_tenants = 4
let machine_capacity = 8  (* ceilings sum to 16: oversubscribed *)
let machine_trace_capacity = 500_000
let machine_lc_rate = 260_000.0
let machine_lc_shape = Shape.Single (Dist.Exponential { mean = Time.us 5 })
let machine_be_rate = 50_000.0
let machine_be_shape = Shape.Single (Dist.Exponential { mean = Time.us 20 })

let machine_runtime i =
  List.nth
    [ Scenario.Percpu; Scenario.Centralized; Scenario.Hybrid; Scenario.Worksteal ]
    (i mod 4)

let machine_kind i = if i mod 4 = 3 then Alloc_policy.Be else Alloc_policy.Lc

let machine_fleet () =
  List.init machine_tenants (fun i ->
      let kind = machine_kind i in
      let shape, arrival =
        match kind with
        | Alloc_policy.Lc ->
            (machine_lc_shape, Arrival.Poisson { rate_rps = machine_lc_rate })
        | Alloc_policy.Be ->
            (machine_be_shape, Arrival.Poisson { rate_rps = machine_be_rate })
      in
      Placement.tenant ~kind
        ~name:
          (Printf.sprintf "t%d-%s" i
             (Scenario.runtime_name (machine_runtime i)))
        ~runtime:(machine_runtime i) ~guaranteed:1 ~burstable:4 ~shape
        ~arrival ())

(* Aggressive health knobs so every edge fires inside a short run: the
   hoarder trips quarantine fast and serves a short sentence (several
   quarantine/release cycles), the stale tenant degrades within 50 µs of
   freezing and recovers when its window closes. *)
let machine_placement_config () =
  {
    (Placement.default_config ()) with
    Placement.broker =
      {
        (Broker.default_config ()) with
        Broker.degrade_after = 10;
        hoard_cap = 10;
        quarantine_ticks = 100;
      };
  }

(* Tenant 0 hoards from 10% of the run on, tenant 1 goes stale over the
   15–50% window (so recovery is inside the measurement), tenant 2
   crashes at 60%.  Tenant 3 stays healthy — the hoard detector needs a
   starving neighbour to call it hoarding. *)
let machine_faults ~t_ns =
  let frac f = int_of_float (float_of_int t_ns *. f) in
  [
    Plan.tenant_hoard ~window:(Plan.window ~start:(frac 0.1) ()) ~tenant:0 ();
    Plan.tenant_stale
      ~window:(Plan.window ~start:(frac 0.15) ~stop:(frac 0.5) ())
      ~tenant:1 ();
    Plan.tenant_crash ~window:(Plan.window ~start:(frac 0.6) ()) ~tenant:2 ();
  ]

type machine_point = {
  m_instrumented : bool;
  m_result : Placement.result;
  m_fingerprint : string;
  m_trace_json : string;
  m_binary : string;
  m_events : int;
  m_dropped : int;
  m_violations : Trace_analysis.violation list;
  m_machine_violations : Trace_analysis.violation list;
  m_kind_counts : (Trace.instant_kind * int) list;
  m_samples : Registry.sample list;
}

let machine_kind_count p kind =
  match List.assoc_opt kind p.m_kind_counts with Some n -> n | None -> 0

let run_machine_point ~seed ~requests ~instrumented =
  let t_ns = int_of_float (float_of_int requests /. machine_lc_rate *. 1e9) in
  let trace = Trace.create ~capacity:machine_trace_capacity () in
  let registry = if instrumented then Some (Registry.create ()) else None in
  let r =
    Placement.run ~seed
      ~faults:(machine_faults ~t_ns)
      ~config:(machine_placement_config ())
      ~trace ?registry ~name:"machine-obs" ~capacity:machine_capacity
      ~requests (machine_fleet ())
  in
  let counters =
    List.map
      (fun (t : Placement.tenant_result) ->
        (t.Placement.t_name ^ " allowance", t.Placement.allowance))
      r.Placement.tenants
  in
  let trace_json = Trace_analysis.to_chrome_json ~counters trace in
  let kind_counts =
    Trace.fold trace
      (fun acc ev ->
        match ev with
        | Trace.Instant { kind; _ } ->
            let n = match List.assoc_opt kind acc with Some n -> n | None -> 0 in
            (kind, n + 1) :: List.remove_assoc kind acc
        | Trace.Span _ -> acc)
      []
  in
  {
    m_instrumented = instrumented;
    m_result = r;
    m_fingerprint =
      Digest.to_hex (Digest.string (trace_json ^ Placement.digest_string r));
    m_trace_json = trace_json;
    m_binary = Trace.to_binary trace;
    m_events = Trace.events trace;
    m_dropped = Trace.dropped trace;
    m_violations = Trace_analysis.check trace;
    m_machine_violations = Trace_analysis.check_machine trace;
    m_kind_counts = kind_counts;
    m_samples =
      (match registry with
      | Some reg -> Registry.snapshot ~until:r.Placement.last_completion reg
      | None -> []);
  }

let check_machine_point p =
  let r = p.m_result in
  List.iter
    (fun t ->
      if Placement.lost t <> 0 then
        fail "obs-report[machine]: tenant %s lost %d requests"
          t.Placement.t_name (Placement.lost t))
    r.Placement.tenants;
  if p.m_dropped <> 0 then
    fail "obs-report[machine]: ring dropped %d events — size it for the run"
      p.m_dropped;
  (match p.m_violations with
  | [] -> ()
  | v :: _ ->
      fail "obs-report[machine]: %d structural violations (first: %s)"
        (List.length p.m_violations)
        (Format.asprintf "%a" Trace_analysis.pp_violation v));
  (match p.m_machine_violations with
  | [] -> ()
  | v :: _ ->
      fail "obs-report[machine]: %d machine-invariant violations (first: %s)"
        (List.length p.m_machine_violations)
        (Format.asprintf "%a" Trace_analysis.pp_violation v));
  (* Every health edge fired — the scenario exercises the full automaton. *)
  if r.Placement.quarantines < 1 then
    fail "obs-report[machine]: the hoarder was never quarantined";
  if r.Placement.releases < 1 then
    fail "obs-report[machine]: no quarantine was released";
  if r.Placement.degradations < 1 then
    fail "obs-report[machine]: the stale tenant was never degraded";
  if machine_kind_count p Trace.Tenant_recover < 1 then
    fail "obs-report[machine]: the degraded tenant never recovered";
  if r.Placement.crashes <> 1 then
    fail "obs-report[machine]: expected exactly 1 crash, saw %d"
      r.Placement.crashes;
  (* The trace mirror is lossless: every broker counter equals its
     instant count in the ring. *)
  List.iter
    (fun (kind, counter, label) ->
      let in_trace = machine_kind_count p kind in
      if in_trace <> counter then
        fail "obs-report[machine]: broker counted %d %s, trace holds %d"
          counter label in_trace)
    [
      (Trace.Broker_grant, r.Placement.grants, "grants");
      (Trace.Broker_reclaim, r.Placement.reclaims, "reclaims");
      (Trace.Broker_yield, r.Placement.yields, "yields");
      (Trace.Tenant_degrade, r.Placement.degradations, "degradations");
      (Trace.Quarantine, r.Placement.quarantines, "quarantines");
      (Trace.Release, r.Placement.releases, "releases");
      (Trace.Tenant_crash, r.Placement.crashes, "crashes");
    ]

let machine_requests_for (config : Config.t) =
  match config.Config.requests with
  | Some r -> r
  | None ->
      if config.Config.duration <= Config.quick.Config.duration then 400
      else if config.Config.duration >= Config.full.Config.duration then 2_000
      else 800

let machine_json_path = "obs_trace_machine.json"
let machine_bin_path = "obs_trace_machine.bin"

let print_machine (config : Config.t) =
  let requests = machine_requests_for config in
  Report.subsection
    (Printf.sprintf
       "machine level: %d brokered tenants on %d cores, %d requests each"
       machine_tenants machine_capacity requests);
  let points =
    Parallel.map ~jobs:config.Config.jobs
      (fun instrumented ->
        run_machine_point ~seed:config.Config.seed ~requests ~instrumented)
      [ true; false ]
  in
  let on_, off =
    match points with [ a; b ] -> (a, b) | _ -> assert false
  in
  if on_.m_fingerprint <> off.m_fingerprint then
    fail
      "obs-report[machine]: registry-on run differs from registry-off run (%s \
       vs %s) — observation perturbed the simulation"
      on_.m_fingerprint off.m_fingerprint;
  check_machine_point on_;
  let r = on_.m_result in
  Report.table
    ~header:
      [ "tenant"; "runtime"; "kind"; "completed"; "gave up"; "granted";
        "health"; "core-time (us)" ]
    (List.map
       (fun (t : Placement.tenant_result) ->
         [
           t.Placement.t_name;
           t.Placement.t_runtime;
           t.Placement.t_kind;
           string_of_int t.Placement.completed;
           string_of_int t.Placement.gave_up;
           string_of_int t.Placement.final_granted;
           t.Placement.final_health;
           Report.f1 (Time.to_us_float t.Placement.core_ns);
         ])
       r.Placement.tenants);
  Printf.printf
    "broker: %d grants, %d reclaims, %d yields, %d degradations, %d \
     quarantines, %d releases, %d crashes — all mirrored 1:1 as trace \
     instants\n"
    r.Placement.grants r.Placement.reclaims r.Placement.yields
    r.Placement.degradations r.Placement.quarantines r.Placement.releases
    r.Placement.crashes;
  Printf.printf
    "trace: %d events retained, %d dropped; structural and machine \
     invariants hold\n"
    on_.m_events on_.m_dropped;
  Printf.printf "registry: %d samples\n" (List.length on_.m_samples);
  let oc = open_out machine_json_path in
  output_string oc on_.m_trace_json;
  close_out oc;
  Printf.printf "wrote %s (per-tenant allowance counter tracks)\n"
    machine_json_path;
  let oc = open_out_bin machine_bin_path in
  output_string oc on_.m_binary;
  close_out oc;
  Printf.printf "wrote %s (decode with: skyloft_run trace-dump %s)\n"
    machine_bin_path machine_bin_path;
  Report.note
    "machine arms were byte-identical with and without the registry attached";
  on_

let print config =
  Report.section
    (Printf.sprintf
       "Observability report: attribution + trace analysis, %d cores at \
        %.0f%% load"
       n_workers (load_frac *. 100.));
  (* One cell per (runtime, arm), fanned across domains; the on/off
     comparison happens after the merge. *)
  let cells =
    List.concat_map
      (fun runtime -> [ (runtime, true); (runtime, false) ])
      runtimes
  in
  let points =
    Parallel.map ~jobs:config.Config.jobs
      (fun (runtime, instrumented) -> run_point config ~runtime ~instrumented)
      cells
  in
  let results =
    List.map
      (function
        | [ on_; off ] ->
            if on_.fingerprint <> off.fingerprint then
              fail
                "obs-report[%s]: registry-on run differs from registry-off run \
                 (%s vs %s) — observation perturbed the simulation"
                on_.runtime on_.fingerprint off.fingerprint;
            check_point on_;
            on_
        | _ -> assert false)
      (Parallel.group ~size:2 points)
  in
  List.iter
    (fun p ->
      Report.subsection (Printf.sprintf "%s runtime" p.runtime);
      Report.table
        ~header:[ "core"; "busy%"; "busy (us)"; "idle (us)"; "spans"; "instants" ]
        (List.map
           (fun (r : Trace_analysis.core_report) ->
             [
               string_of_int r.Trace_analysis.core;
               Report.pct (Trace_analysis.busy_share r);
               Report.f1 (Time.to_us_float r.Trace_analysis.busy_ns);
               Report.f1 (Time.to_us_float r.Trace_analysis.idle_ns);
               string_of_int r.Trace_analysis.spans;
               string_of_int r.Trace_analysis.instants;
             ])
           p.util);
      Report.table
        ~header:
          [ "app"; "requests"; "queue (ns)"; "service (ns)"; "overhead (ns)";
            "stall (ns)"; "response (ns)" ]
        (List.map
           (fun (name, a) ->
             let mean h = Printf.sprintf "%.0f" (Histogram.mean h) in
             [
               name;
               string_of_int (Attribution.requests a);
               mean (Attribution.queueing a);
               mean (Attribution.service a);
               mean (Attribution.overhead a);
               mean (Attribution.stall a);
               mean (Attribution.response a);
             ])
           p.rows);
      Printf.printf
        "identity: queueing + service + overhead + stall = response held for \
         %d/%d requests; %d injected faults; %d trace events dropped\n"
        p.requests p.requests p.injected p.dropped;
      Printf.printf "registry: %d samples; Prometheus excerpt:\n"
        (List.length p.samples);
      let prom = Registry.to_prometheus p.samples in
      String.split_on_char '\n' prom
      |> List.filteri (fun i _ -> i < 8)
      |> List.iter (fun l -> if l <> "" then Printf.printf "  %s\n" l);
      let path = trace_path p.runtime in
      let oc = open_out path in
      output_string oc p.trace_json;
      close_out oc;
      Printf.printf "wrote %s (Perfetto: spans + queue-depth counter track)\n"
        path)
    results;
  Report.note
    "registry-on and registry-off runs were byte-identical per runtime";
  ignore (print_machine config);
  results
