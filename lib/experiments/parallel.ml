(* Domain-based work pool for the experiment suite.

   Every data point in the §5 suite (fig5–fig8, ablations, fault-sweep,
   obs-report, goldens) is an independent deterministic simulation — one
   (experiment, config point, seed) cell — so the suite is embarrassingly
   parallel.  This driver fans cells across [jobs] domains and merges
   results by cell index, so the merged output is byte-identical to the
   sequential run at any [-j]: parallelism only reorders wall-clock
   execution, never results.  The per-run ID state in [Runtime_core]
   (no process-wide App/Task/tid counters) is what makes two simulations
   safe to run in different domains at all.

   Failure: the first raising cell aborts the run.  Workers observe the
   failure flag and stop claiming new cells, every domain is joined (no
   domain is ever left hanging), and the recorded exception with the
   smallest cell index is re-raised with its backtrace. *)

(* Nested [map] calls (an experiment parallelised from an already-parallel
   caller) fall back to sequential execution instead of multiplying
   domains. *)
let inside_pool = Domain.DLS.new_key (fun () -> false)

type 'b cell_result = Ok_cell of 'b | Error_cell of exn * Printexc.raw_backtrace

let validate_order ~n order =
  if Array.length order <> n then
    invalid_arg "Parallel.map: order must have one entry per item";
  let seen = Array.make n false in
  Array.iter
    (fun i ->
      if i < 0 || i >= n || seen.(i) then
        invalid_arg "Parallel.map: order must be a permutation";
      seen.(i) <- true)
    order

let map ?order ~jobs f items =
  let n = List.length items in
  let jobs = if Domain.DLS.get inside_pool then 1 else jobs in
  if jobs <= 1 || n <= 1 then List.map f items
  else begin
    let arr = Array.of_list items in
    let order =
      match order with
      | Some o ->
          validate_order ~n o;
          o
      | None -> Array.init n Fun.id
    in
    (* Disjoint per-index writes; Domain.join gives the happens-before
       edge that makes them visible to the merging domain. *)
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let failed = Atomic.make false in
    let worker () =
      Domain.DLS.set inside_pool true;
      let rec loop () =
        let k = Atomic.fetch_and_add next 1 in
        if k < n && not (Atomic.get failed) then begin
          let i = order.(k) in
          (match f arr.(i) with
          | v -> results.(i) <- Some (Ok_cell v)
          | exception e ->
              let bt = Printexc.get_raw_backtrace () in
              results.(i) <- Some (Error_cell (e, bt));
              Atomic.set failed true);
          loop ()
        end
      in
      loop ()
    in
    let domains = Array.init (min jobs n) (fun _ -> Domain.spawn worker) in
    Array.iter Domain.join domains;
    Array.iter
      (function
        | Some (Error_cell (e, bt)) -> Printexc.raise_with_backtrace e bt
        | Some (Ok_cell _) | None -> ())
      results;
    List.init n (fun i ->
        match results.(i) with
        | Some (Ok_cell v) -> v
        | Some (Error_cell _) | None -> assert false)
  end

(* Split a flattened cell list back into per-group rows: the inverse of
   [List.concat_map] over a rectangular grid. *)
let group ~size items =
  if size <= 0 then invalid_arg "Parallel.group: size must be positive";
  let rec go acc chunk k = function
    | [] ->
        if chunk <> [] then invalid_arg "Parallel.group: ragged input";
        List.rev acc
    | x :: rest ->
        let chunk = x :: chunk in
        if k + 1 = size then go (List.rev chunk :: acc) [] 0 rest
        else go acc chunk (k + 1) rest
  in
  go [] [] 0 items
