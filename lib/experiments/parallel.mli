(** Domain-based work pool for the experiment suite.

    Every data point in the §5 suite is an independent deterministic
    simulation, so sweeps are embarrassingly parallel.  {!map} fans the
    cells across [jobs] domains and merges results by cell index: the
    merged list is identical to [List.map f items] at any [jobs] — the
    determinism gates in [test/test_determinism.ml] hold under [-j 4]
    exactly because parallelism reorders only wall-clock execution. *)

val map : ?order:int array -> jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f items] applies [f] to every item across [jobs] domains
    (sequentially when [jobs <= 1], when there is at most one item, or
    when called from inside a worker — nested sweeps do not multiply
    domains) and returns the results in item order.

    If any cell raises, workers stop claiming new cells, every domain is
    joined (none is left hanging), and the exception from the raising
    cell with the smallest index is re-raised with its backtrace.

    [?order] fixes the order in which workers claim cells (a permutation
    of [0 .. n-1]); it exists so tests can prove claim order cannot leak
    into results.
    @raise Invalid_argument if [order] is not a permutation. *)

val group : size:int -> 'a list -> 'a list list
(** Split a flattened rectangular cell list back into rows of [size]:
    the inverse of [List.concat_map] over a grid.
    @raise Invalid_argument on ragged input or [size <= 0]. *)
