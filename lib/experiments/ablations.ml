module Time = Skyloft_sim.Time
module Engine = Skyloft_sim.Engine
module Topology = Skyloft_hw.Topology
module Machine = Skyloft_hw.Machine
module Kmod = Skyloft_kernel.Kmod
module Summary = Skyloft_stats.Summary
module App = Skyloft.App
module Percpu = Skyloft.Percpu
module Centralized = Skyloft.Centralized
module Hybrid = Skyloft.Hybrid
module Worksteal = Skyloft.Worksteal
module Coro = Skyloft_sim.Coro
module Dist = Skyloft_sim.Dist
module Nic = Skyloft_net.Nic
module Loadgen = Skyloft_net.Loadgen
module Udp_server = Skyloft_apps.Udp_server
module Histogram = Skyloft_stats.Histogram

(** Ablations of the design choices DESIGN.md calls out:

    - A1 tick-frequency overhead: what the 100 kHz user timer costs in
      throughput (the interrupt-handling tax, §5.2's quantum trade-off).
    - A2 per-CPU timers vs centralized dispatcher (Figure 2a vs 2b): same
      workload, who needs the extra core and where the bottleneck sits.
    - A3 dispatcher scalability: centralized throughput vs worker count
      for tiny requests — the serialization ceiling the paper attributes
      to Shinjuku-style designs (§3.2).
    - A4 NIC reception modes: spin-polling vs periodic polling vs §6
      user-interrupt (MSI) delivery.
    - A5 the hybrid runtime vs both parents: the mode-switching runtime
      built on the shared Runtime_core substrate, at low and high load
      against pure per-CPU and pure centralized dispatch.
    - A6 the work-stealing deque runtime against the other three across
      arrival regimes — where steal-half decentralization beats the
      hybrid's dispatcher and where it loses (both asserted in-sweep). *)

(* ---- A1: tick frequency tax -------------------------------------------- *)

let a1_tick_frequency (config : Config.t) =
  Report.section "Ablation A1: user-timer tick frequency vs useful throughput";
  let run hz =
    let engine = Engine.create ~seed:config.seed () in
    let machine = Machine.create engine Topology.paper_server in
    let kmod = Kmod.create machine in
    let rt =
      Percpu.create machine kmod ~cores:[ 0 ] ~timer_hz:hz
        ~preemption:(hz > 0)
        (Skyloft_policies.Rr.create ~slice:(Time.us 50) ())
    in
    let app = Percpu.create_app rt ~name:"hog" in
    (* one core fully loaded with 10us work items *)
    let done_ = ref 0 in
    let rec refill () =
      ignore
        (Percpu.spawn rt app ~name:"chunk" ~record:false
           (Coro.Compute
              ( Time.us 10,
                fun () ->
                  incr done_;
                  if Engine.now engine < config.duration then refill ();
                  Coro.Exit )))
    in
    refill ();
    Engine.run ~until:config.duration engine;
    float_of_int (!done_ * Time.us 10) /. float_of_int config.duration
  in
  let rates = [ 0; 1_000; 10_000; 100_000; 1_000_000 ] in
  let effs = Parallel.map ~jobs:config.jobs run rates in
  (* the hz=0 cell doubles as the baseline: fresh engines make it the
     same value the old separate base run produced *)
  let base = List.hd effs in
  let rows =
    List.map2
      (fun hz eff ->
        [
          (if hz = 0 then "no timer" else Printf.sprintf "%d Hz" hz);
          Report.pct eff;
          Report.pct (eff /. base);
        ])
      rates effs
  in
  Report.table ~header:[ "tick rate"; "useful CPU"; "vs no timer" ] rows;
  Report.note "each tick costs the user-timer receive (~321ns) + SN re-post (~62ns);";
  Report.note "at the paper's 100 kHz that is a ~4%% tax, at 1 MHz it is ~40%%";
  rows

(* ---- A2: per-CPU timers vs centralized dispatcher ----------------------- *)

let a2_percpu_vs_centralized (config : Config.t) =
  Report.section
    "Ablation A2: per-CPU timer preemption (Fig 2a) vs centralized dispatcher (Fig 2b)";
  let n_cores = 8 in
  let rate = 0.75 *. (float_of_int n_cores *. 1e9 /. Dist.mean Dist.dispersive) in
  let run_percpu () =
    let engine = Engine.create ~seed:config.seed () in
    let machine = Machine.create engine Topology.paper_server in
    let kmod = Kmod.create machine in
    let rt =
      Percpu.create machine kmod ~cores:(List.init n_cores Fun.id) ~timer_hz:100_000
        (Skyloft_policies.Work_stealing.create ~quantum:(Time.us 30) ())
    in
    let app = Percpu.create_app rt ~name:"lc" in
    let rng = Engine.split_rng engine in
    Loadgen.poisson engine ~rng ~rate_rps:rate ~service:Dist.dispersive
      ~duration:config.duration (fun pkt ->
        ignore
          (Percpu.spawn rt app ~name:"req" ~arrival:pkt.Skyloft_net.Packet.arrival
             ~service:pkt.Skyloft_net.Packet.service
             (Coro.compute_then_exit pkt.Skyloft_net.Packet.service)));
    Engine.run ~until:(config.duration + Time.ms 60) engine;
    (app.App.summary, n_cores)
  in
  let run_centralized () =
    let engine = Engine.create ~seed:config.seed () in
    let machine = Machine.create engine Topology.paper_server in
    let kmod = Kmod.create machine in
    (* one of the cores becomes the dispatcher: 7 workers *)
    let rt =
      Centralized.create machine kmod ~dispatcher_core:0
        ~worker_cores:(List.init (n_cores - 1) (fun i -> i + 1))
        ~quantum:(Time.us 30)
        (Skyloft_policies.Shinjuku.create ())
    in
    let app = Centralized.create_app rt ~name:"lc" in
    let rng = Engine.split_rng engine in
    Loadgen.poisson engine ~rng ~rate_rps:rate ~service:Dist.dispersive
      ~duration:config.duration (fun pkt ->
        ignore
          (Centralized.submit rt app ~name:"req" ~service:pkt.Skyloft_net.Packet.service
             (Coro.compute_then_exit pkt.Skyloft_net.Packet.service)));
    Engine.run ~until:(config.duration + Time.ms 60) engine;
    (app.App.summary, n_cores - 1)
  in
  let pc, pc_workers, ct, ct_workers =
    match
      Parallel.map ~jobs:config.jobs
        (fun f -> f ())
        [ run_percpu; run_centralized ]
    with
    | [ (pc, pcw); (ct, ctw) ] -> (pc, pcw, ct, ctw)
    | _ -> assert false
  in
  Report.table
    ~header:[ "design"; "workers"; "served"; "p99 (us)"; "p99.9 (us)" ]
    [
      [
        "per-CPU timers (2a)"; string_of_int pc_workers;
        string_of_int (Summary.requests pc);
        Report.us (Summary.latency_p pc 99.0);
        Report.us (Summary.latency_p pc 99.9);
      ];
      [
        "centralized dispatcher (2b)"; string_of_int ct_workers;
        string_of_int (Summary.requests ct);
        Report.us (Summary.latency_p ct 99.0);
        Report.us (Summary.latency_p ct 99.9);
      ];
    ];
  Report.note "same 8 cores and load: the dispatcher core is lost to useful work";
  Report.note "(both p99.9 columns include the 0.5%% of requests that ARE 10ms long)"

(* ---- A3: dispatcher scalability ----------------------------------------- *)

let a3_dispatcher_scalability (config : Config.t) =
  Report.section
    "Ablation A3: centralized dispatcher scalability (1us requests, growing workers)";
  let run workers =
    let engine = Engine.create ~seed:config.seed () in
    let machine = Machine.create engine Topology.paper_server in
    let kmod = Kmod.create machine in
    let rt =
      Centralized.create machine kmod ~dispatcher_core:0
        ~worker_cores:(List.init workers (fun i -> i + 1))
        ~quantum:0
        (Skyloft_policies.Shinjuku.create ())
    in
    let app = Centralized.create_app rt ~name:"lc" in
    let rng = Engine.split_rng engine in
    (* overload: 1.2x the worker capacity of 1us requests *)
    let rate = 1.2 *. float_of_int workers *. 1e6 in
    let in_window = ref 0 in
    ignore
      (Engine.at engine config.duration (fun () ->
           in_window := Summary.requests app.App.summary));
    Loadgen.poisson engine ~rng ~rate_rps:rate ~service:(Dist.Constant (Time.us 1))
      ~duration:config.duration (fun pkt ->
        ignore
          (Centralized.submit rt app ~name:"req" ~service:pkt.Skyloft_net.Packet.service
             (Coro.compute_then_exit pkt.Skyloft_net.Packet.service)));
    Engine.run ~until:(config.duration + Time.ms 20) engine;
    float_of_int !in_window /. Time.to_s_float config.duration /. 1.0e6
  in
  let rows =
    Parallel.map ~jobs:config.jobs
      (fun workers ->
        [ string_of_int workers; Printf.sprintf "%.2f Mrps" (run workers) ])
      [ 2; 4; 8; 16; 32 ]
  in
  Report.table ~header:[ "workers"; "achieved" ] rows;
  Report.note "the global queue + dispatch cost cap throughput regardless of";
  Report.note "worker count — the scalability wall of Figure 2b designs";
  rows

(* ---- A4: NIC reception modes --------------------------------------------- *)

let a4_nic_modes (config : Config.t) =
  Report.section "Ablation A4: NIC reception — spin polling vs periodic vs user MSI (§6)";
  let cores = [ 0; 1 ] in
  let run mode_name make_nic attach =
    let engine = Engine.create ~seed:config.seed () in
    let machine = Machine.create engine Topology.paper_server in
    let kmod = Kmod.create machine in
    (* preemption off: with timer delegation the UPID.SN bit suppresses
       device notification IPIs and MSIs would coalesce onto timer ticks *)
    let rt =
      Percpu.create machine kmod ~cores ~preemption:false
        (Skyloft_policies.Work_stealing.create ())
    in
    let app = Percpu.create_app rt ~name:"srv" in
    let nic = make_nic engine machine in
    attach rt app nic;
    let rng = Engine.split_rng engine in
    (* light load so the latency is pure delivery path *)
    Loadgen.poisson engine ~rng ~rate_rps:50_000.0 ~service:(Dist.Constant (Time.us 2))
      ~duration:config.duration (fun pkt -> Nic.rx nic pkt);
    Engine.run ~until:(config.duration + Time.ms 10) engine;
    [
      mode_name;
      Report.us (Summary.latency_p app.App.summary 50.0);
      Report.us (Summary.latency_p app.App.summary 99.0);
    ]
  in
  let rows =
    Parallel.map ~jobs:config.jobs
      (fun f -> f ())
      [
        (fun () ->
          run "spin polling (dedicated core)"
            (fun engine _ -> Nic.create engine ~queues:2 ())
            (fun rt app nic -> Udp_server.attach rt app nic ~cores));
        (fun () ->
          run "periodic polling (10us)"
            (fun engine _ ->
              Nic.create engine ~queues:2 ~mode:(Nic.Periodic (Time.us 10)) ())
            (fun rt app nic -> Udp_server.attach rt app nic ~cores));
        (fun () ->
          run "user interrupt (MSI via UINTR)"
            (fun engine machine ->
              Nic.create engine ~queues:2
                ~mode:(Nic.Msi { machine; cores = Array.of_list cores })
                ())
            (fun rt app nic -> Udp_server.attach_irq rt app nic ~cores));
      ]
  in
  Report.table ~header:[ "rx mode"; "p50 (us)"; "p99 (us)" ] rows;
  Report.note "user-mode MSI delivery needs no polling core and no kernel, at";
  Report.note "~0.6us interrupt latency; periodic polling trades latency for CPU";
  rows

(* ---- A5: the hybrid runtime vs both parents ------------------------------ *)

(* Same 8 cores for everyone: per-CPU keeps all 8 as workers, centralized
   and hybrid surrender one to the dispatcher.  The load axis is where the
   trade-off lives — the dispatcher's single queue wins the low-load tail,
   per-core timers win throughput once the queue deepens — and the hybrid
   is supposed to track whichever parent is ahead, switching modes as the
   queue depth crosses its hysteresis band. *)
let a5_hybrid_vs_parents (config : Config.t) =
  Report.section
    "Ablation A5: hybrid runtime (shared Runtime_core substrate) vs both parents";
  let n_cores = 8 in
  let quantum = Time.us 30 in
  let cap = float_of_int n_cores *. 1e9 /. Dist.mean Dist.dispersive in
  let measure name summary extra =
    [
      name;
      string_of_int (Summary.requests summary);
      Report.us (Summary.latency_p summary 50.0);
      Report.us (Summary.latency_p summary 99.0);
      extra;
    ]
  in
  let run_percpu rate =
    let engine = Engine.create ~seed:config.seed () in
    let machine = Machine.create engine Topology.paper_server in
    let kmod = Kmod.create machine in
    let rt =
      Percpu.create machine kmod ~cores:(List.init n_cores Fun.id)
        ~timer_hz:100_000
        (Skyloft_policies.Work_stealing.create ~quantum ())
    in
    let app = Percpu.create_app rt ~name:"lc" in
    let rng = Engine.split_rng engine in
    Loadgen.poisson engine ~rng ~rate_rps:rate ~service:Dist.dispersive
      ~duration:config.duration (fun pkt ->
        ignore
          (Percpu.spawn rt app ~name:"req"
             ~arrival:pkt.Skyloft_net.Packet.arrival
             ~service:pkt.Skyloft_net.Packet.service
             (Coro.compute_then_exit pkt.Skyloft_net.Packet.service)));
    Engine.run ~until:(config.duration + Time.ms 60) engine;
    measure "per-CPU (2a)" app.App.summary "-"
  in
  let run_centralized rate =
    let engine = Engine.create ~seed:config.seed () in
    let machine = Machine.create engine Topology.paper_server in
    let kmod = Kmod.create machine in
    let rt =
      Centralized.create machine kmod ~dispatcher_core:0
        ~worker_cores:(List.init (n_cores - 1) (fun i -> i + 1))
        ~quantum
        (Skyloft_policies.Shinjuku.create ())
    in
    let app = Centralized.create_app rt ~name:"lc" in
    let rng = Engine.split_rng engine in
    Loadgen.poisson engine ~rng ~rate_rps:rate ~service:Dist.dispersive
      ~duration:config.duration (fun pkt ->
        ignore
          (Centralized.submit rt app ~name:"req"
             ~service:pkt.Skyloft_net.Packet.service
             (Coro.compute_then_exit pkt.Skyloft_net.Packet.service)));
    Engine.run ~until:(config.duration + Time.ms 60) engine;
    measure "centralized (2b)" app.App.summary "-"
  in
  let run_hybrid rate =
    let engine = Engine.create ~seed:config.seed () in
    let machine = Machine.create engine Topology.paper_server in
    let kmod = Kmod.create machine in
    let rt =
      Hybrid.create machine kmod ~dispatcher_core:0
        ~worker_cores:(List.init (n_cores - 1) (fun i -> i + 1))
        ~quantum
        (fst (Skyloft_policies.Shinjuku_shenango.create ()))
    in
    let app = Hybrid.create_app rt ~name:"lc" in
    let rng = Engine.split_rng engine in
    Loadgen.poisson engine ~rng ~rate_rps:rate ~service:Dist.dispersive
      ~duration:config.duration (fun pkt ->
        ignore
          (Hybrid.submit rt app ~name:"req"
             ~service:pkt.Skyloft_net.Packet.service
             (Coro.compute_then_exit pkt.Skyloft_net.Packet.service)));
    Engine.run ~until:(config.duration + Time.ms 60) engine;
    measure "hybrid" app.App.summary
      (Printf.sprintf "%d switches, end %s"
         (Hybrid.mode_switches rt)
         (match Hybrid.mode rt with
         | Hybrid.Central -> "central"
         | Hybrid.Percore -> "percore"))
  in
  let cells =
    List.concat_map
      (fun load -> List.map (fun r -> (load, r)) [ run_percpu; run_centralized; run_hybrid ])
      [ 0.2; 0.8 ]
  in
  let rows =
    Parallel.map ~jobs:config.jobs
      (fun (load, r) ->
        Printf.sprintf "%.0f%%" (load *. 100.) :: r (load *. cap))
      cells
  in
  Report.table
    ~header:[ "load"; "design"; "served"; "p50 (us)"; "p99 (us)"; "mode" ]
    rows;
  Report.note "low load: the hybrid stays central (single queue, no stealing tail);";
  Report.note "high load: it hands the cores to per-core timers and scales past";
  Report.note "the dispatcher — one Runtime_core substrate under all three";
  rows

(* ---- A6: the work-stealing runtime across arrival regimes ---------------- *)

(* Same 8 cores, three arrival regimes, all four runtimes.  The regimes
   are chosen to pull the steal-half design in opposite directions:

   - skewed: every request carries RSS affinity to a 2-core hot set.  The
     per-core runtimes honour the pin and must move work off the hot
     deques themselves (steal probes, migration cachelines, park/unpark
     round-trips, up to a tick of reaction latency); the dispatcher
     flavours spread by construction and at this load the hybrid stays
     central — its single queue is immune to placement skew.
   - bursty: a batch of requests lands on ONE core every 200 us,
     round-robin.  Steal-half disperses the burst in O(log batch) grabs,
     but thieves only notice on their next tick and parked cores pay the
     resume cost; the centralized flavours serialize the burst through
     one dispatch loop yet place each request on an idle worker with
     zero reaction latency (the hybrid also churns across its hysteresis
     band — mode switches are visible in the notes column).
   - overload: uniform arrivals at 90% of the 8-core capacity.  That is
     comfortable for the decentralized runtimes, but any design that
     surrenders a core to a dispatcher now faces 8/7 of it (~103%) plus
     the per-request dispatch cost — uniform load that overloads exactly
     the dispatcher flavours, so their backlog (and p99) grows with the
     run while steal-half stays stable.

   The sweep asserts the trade-off exists: at least one regime where the
   work-stealing runtime's p99 beats the hybrid's and at least one where
   it loses.  A refactor that makes stealing free (or useless) fails. *)
let a6_worksteal_regimes (config : Config.t) =
  Report.section
    "Ablation A6: work-stealing deques vs the other three runtimes across \
     arrival regimes";
  let n_cores = 8 in
  let quantum = Time.us 30 in
  let service = Dist.Exponential { mean = Time.us 5 } in
  let cap = float_of_int n_cores *. 1e9 /. Dist.mean service in
  let horizon = config.duration + Time.ms 60 in
  let drive_skewed engine rng submit =
    let i = ref 0 in
    Loadgen.poisson engine ~rng ~rate_rps:(0.2 *. cap) ~service
      ~duration:config.duration (fun pkt ->
        let cpu = !i mod 2 in
        incr i;
        submit ~cpu:(Some cpu) ~service:pkt.Skyloft_net.Packet.service)
  in
  let drive_bursty engine rng submit =
    let period = Time.us 200 and batch = 24 in
    for b = 0 to (config.duration / period) - 1 do
      ignore
        (Engine.at engine (b * period) (fun () ->
             for _ = 1 to batch do
               submit ~cpu:(Some (b mod n_cores)) ~service:(Dist.sample service rng)
             done))
    done
  in
  let drive_overload engine rng submit =
    Loadgen.poisson engine ~rng ~rate_rps:(0.9 *. cap) ~service
      ~duration:config.duration (fun pkt ->
        submit ~cpu:None ~service:pkt.Skyloft_net.Packet.service)
  in
  let run_percpu drive =
    let engine = Engine.create ~seed:config.seed () in
    let machine = Machine.create engine Topology.paper_server in
    let kmod = Kmod.create machine in
    let rt =
      Percpu.create machine kmod ~cores:(List.init n_cores Fun.id)
        ~timer_hz:100_000
        (Skyloft_policies.Work_stealing.create ~quantum ())
    in
    let app = Percpu.create_app rt ~name:"lc" in
    let rng = Engine.split_rng engine in
    drive engine rng (fun ~cpu ~service ->
        ignore
          (Percpu.spawn rt app ~name:"req" ?cpu ~service
             (Coro.compute_then_exit service)));
    Engine.run ~until:horizon engine;
    ("percpu", app.App.summary, "-")
  in
  let run_centralized drive =
    let engine = Engine.create ~seed:config.seed () in
    let machine = Machine.create engine Topology.paper_server in
    let kmod = Kmod.create machine in
    let rt =
      Centralized.create machine kmod ~dispatcher_core:0
        ~worker_cores:(List.init (n_cores - 1) (fun i -> i + 1))
        ~quantum
        (Skyloft_policies.Shinjuku.create ())
    in
    let app = Centralized.create_app rt ~name:"lc" in
    let rng = Engine.split_rng engine in
    drive engine rng (fun ~cpu:_ ~service ->
        ignore
          (Centralized.submit rt app ~name:"req" ~service
             (Coro.compute_then_exit service)));
    Engine.run ~until:horizon engine;
    ("centralized", app.App.summary, "-")
  in
  let run_hybrid drive =
    let engine = Engine.create ~seed:config.seed () in
    let machine = Machine.create engine Topology.paper_server in
    let kmod = Kmod.create machine in
    let rt =
      Hybrid.create machine kmod ~dispatcher_core:0
        ~worker_cores:(List.init (n_cores - 1) (fun i -> i + 1))
        ~quantum
        (fst (Skyloft_policies.Shinjuku_shenango.create ()))
    in
    let app = Hybrid.create_app rt ~name:"lc" in
    let rng = Engine.split_rng engine in
    drive engine rng (fun ~cpu:_ ~service ->
        ignore
          (Hybrid.submit rt app ~name:"req" ~service
             (Coro.compute_then_exit service)));
    Engine.run ~until:horizon engine;
    ( "hybrid",
      app.App.summary,
      Printf.sprintf "%d mode switches" (Hybrid.mode_switches rt) )
  in
  let run_worksteal drive =
    let engine = Engine.create ~seed:config.seed () in
    let machine = Machine.create engine Topology.paper_server in
    let kmod = Kmod.create machine in
    let rt =
      Worksteal.create machine kmod ~cores:(List.init n_cores Fun.id)
        ~timer_hz:100_000 ~quantum ()
    in
    let app = Worksteal.create_app rt ~name:"lc" in
    let rng = Engine.split_rng engine in
    drive engine rng (fun ~cpu ~service ->
        ignore
          (Worksteal.spawn rt app ~name:"req" ?cpu ~service
             (Coro.compute_then_exit service)));
    Engine.run ~until:horizon engine;
    ( "worksteal",
      app.App.summary,
      Printf.sprintf "%d steals (%d tasks), %d parks" (Worksteal.steals rt)
        (Worksteal.stolen_tasks rt) (Worksteal.parks rt) )
  in
  let regimes =
    [
      ("skewed", drive_skewed);
      ("bursty", drive_bursty);
      ("overload", drive_overload);
    ]
  in
  let runners = [ run_percpu; run_centralized; run_hybrid; run_worksteal ] in
  let cells =
    List.concat_map
      (fun (rname, drive) -> List.map (fun run -> (rname, drive, run)) runners)
      regimes
  in
  let results =
    Parallel.map ~jobs:config.jobs
      (fun (rname, drive, run) -> (rname, run drive))
      cells
  in
  Report.table
    ~header:[ "regime"; "design"; "served"; "p50 (us)"; "p99 (us)"; "notes" ]
    (List.map
       (fun (rname, (design, summary, extra)) ->
         [
           rname;
           design;
           string_of_int (Summary.requests summary);
           Report.us (Summary.latency_p summary 50.0);
           Report.us (Summary.latency_p summary 99.0);
           extra;
         ])
       results);
  (* The asserted claim: the trade-off is real in both directions. *)
  let p99_of rname design =
    match
      List.find_opt
        (fun (r, (d, _, _)) -> String.equal r rname && String.equal d design)
        results
    with
    | Some (_, (_, summary, _)) -> Summary.latency_p summary 99.0
    | None -> failwith "ablation A6: missing cell"
  in
  let comparisons =
    List.map
      (fun (rname, _) -> (rname, p99_of rname "worksteal", p99_of rname "hybrid"))
      regimes
  in
  let wins = List.filter (fun (_, ws, hy) -> ws < hy) comparisons in
  let losses = List.filter (fun (_, ws, hy) -> ws > hy) comparisons in
  if wins = [] then
    failwith
      "ablation A6: the work-stealing runtime never beat the hybrid in any \
       regime — decentralized steal-half should win somewhere";
  if losses = [] then
    failwith
      "ablation A6: the work-stealing runtime never lost to the hybrid — \
       stealing is not free; some regime must show its cost";
  List.iter
    (fun (rname, ws, hy) ->
      Report.note "%s: worksteal p99 %s vs hybrid %s — stealing %s" rname
        (Report.us ws) (Report.us hy)
        (if ws < hy then "wins" else if ws > hy then "loses" else "ties"))
    comparisons;
  Report.note
    "skew and bursts reward the dispatcher's zero-latency placement; high";
  Report.note
    "uniform load rewards keeping all 8 cores serving with no dispatcher";
  results

let print config =
  ignore (a1_tick_frequency config);
  a2_percpu_vs_centralized config;
  ignore (a3_dispatcher_scalability config);
  ignore (a4_nic_modes config);
  ignore (a5_hybrid_vs_parents config);
  ignore (a6_worksteal_regimes config)
