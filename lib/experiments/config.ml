module Time = Skyloft_sim.Time

(** Shared experiment configuration.

    [duration] is virtual seconds simulated per data point; the default
    trades a little percentile resolution for bench wall-clock time.
    Everything is deterministic given [seed]: [jobs] only fans sweep
    cells across domains (via {!Parallel.map}) and never changes
    results. *)

type t = { duration : Time.t; seed : int; jobs : int }

let default = { duration = Time.ms 300; seed = 42; jobs = 1 }
let quick = { duration = Time.ms 80; seed = 42; jobs = 1 }
let full = { duration = Time.s 1; seed = 42; jobs = 1 }
