module Time = Skyloft_sim.Time

(** Shared experiment configuration.

    [duration] is virtual seconds simulated per data point; the default
    trades a little percentile resolution for bench wall-clock time.
    [requests] overrides the per-cell request count for the experiments
    that are request-driven rather than duration-driven (the [scale]
    sweep; [None] lets the experiment derive a count from the
    quick/default/full tier).  Everything is deterministic given [seed]:
    [jobs] only fans sweep cells across domains (via {!Parallel.map})
    and never changes results. *)

type t = { duration : Time.t; seed : int; jobs : int; requests : int option }

let default = { duration = Time.ms 300; seed = 42; jobs = 1; requests = None }
let quick = { duration = Time.ms 80; seed = 42; jobs = 1; requests = None }
let full = { duration = Time.s 1; seed = 42; jobs = 1; requests = None }
