module Time = Skyloft_sim.Time
module Engine = Skyloft_sim.Engine
module Topology = Skyloft_hw.Topology
module Machine = Skyloft_hw.Machine
module Kmod = Skyloft_kernel.Kmod
module Summary = Skyloft_stats.Summary
module App = Skyloft.App
module Centralized = Skyloft.Centralized
module Synthetic = Skyloft_apps.Synthetic
module Linux_workload = Skyloft_baselines.Linux_workload
module Dist = Skyloft_sim.Dist

(** Figure 7: the §5.2 synthetic comparison on the dispersive workload
    (99.5% 4 µs / 0.5% 10 ms), 20 worker cores plus one dispatcher/load
    generator core.

    - (a) p99 tail latency vs offered load: Skyloft-Shinjuku (user IPIs) ~
      original Shinjuku (posted interrupts), ghOSt tops out around 0.8x
      with ~3x worse low-load tails, Linux CFS reaches ~0.59x.
    - (b) the same with a co-located batch application.
    - (c) the batch application's CPU share vs load: Skyloft ~ Linux ~
      ghOSt; original Shinjuku is identically zero (no multi-app). *)

type system = Skyloft_c of Time.t | Shinjuku_c | Ghost_c | Linux_c

let system_name = function
  | Skyloft_c q -> Printf.sprintf "Skyloft (q=%.0fus)" (Time.to_us_float q)
  | Shinjuku_c -> "Shinjuku"
  | Ghost_c -> "ghOSt"
  | Linux_c -> "Linux CFS"

let n_workers = 20
let dispatcher_core = 0
let worker_cores = List.init n_workers (fun i -> i + 1)
let saturation = Synthetic.saturation_rps ~cores:n_workers

type point = {
  offered_rps : float;
  achieved_rps : float;
  p99_us : float;
  p999_us : float;
  be_share : float;  (** batch app share of worker CPU *)
}

(* A batch application soaking up whatever the LC load leaves idle. *)
let attach_batch rt be =
  Centralized.attach_be_app rt be ~chunk:(Time.us 50) ~workers:n_workers

let run_centralized (config : Config.t) ~mechanism ~quantum ~with_be ~rate_rps =
  let engine = Engine.create ~seed:config.seed () in
  let machine = Machine.create engine Topology.paper_server in
  let kmod = Kmod.create machine in
  (* single-workload runs use the plain Shinjuku policy; co-location uses
     the Shinjuku-Shenango variant (same queue, plus the congestion
     signal), matching the paper's Table 4 naming *)
  let policy =
    if with_be then fst (Skyloft_policies.Shinjuku_shenango.create ())
    else Skyloft_policies.Shinjuku.create ()
  in
  let rt =
    Centralized.create machine kmod ~dispatcher_core ~worker_cores ~quantum ~mechanism
      policy
  in
  let lc = Centralized.create_app rt ~name:"lc" in
  let be = Centralized.create_app rt ~name:"batch" in
  if with_be then attach_batch rt be;
  let rng = Engine.split_rng engine in
  Synthetic.drive rt lc engine ~rng ~rate_rps ~duration:config.duration;
  (* Throughput is completions inside the offered-load window; counting the
     drain tail would overstate a saturated system. *)
  let in_window = ref 0 in
  ignore
    (Engine.at engine config.duration (fun () ->
         in_window := Summary.requests lc.App.summary));
  Engine.run ~until:(config.duration + Time.ms 60) engine;
  let total_worker_ns = n_workers * (config.duration + Time.ms 60) in
  {
    offered_rps = rate_rps;
    achieved_rps = float_of_int !in_window /. Time.to_s_float config.duration;
    p99_us = Time.to_us_float (Summary.latency_p lc.App.summary 99.0);
    p999_us = Time.to_us_float (Summary.latency_p lc.App.summary 99.9);
    be_share = App.cpu_share be ~total_ns:total_worker_ns;
  }

let run_linux (config : Config.t) ~with_be ~rate_rps =
  let engine = Engine.create ~seed:config.seed () in
  let machine = Machine.create engine Topology.paper_server in
  let cores = List.init (n_workers + 1) Fun.id in
  let rng = Engine.split_rng engine in
  let batch_threads = if with_be then n_workers else 0 in
  let t =
    Linux_workload.run machine ~cores ~rng ~rate_rps ~service:Dist.dispersive
      ~duration:config.duration ~batch_threads ()
  in
  let total_worker_ns = (n_workers + 1) * (config.duration + Time.ms 50) in
  let summary = Linux_workload.summary t in
  {
    offered_rps = rate_rps;
    achieved_rps =
      float_of_int (Linux_workload.served_in_window t)
      /. Time.to_s_float config.duration;
    p99_us = Time.to_us_float (Summary.latency_p summary 99.0);
    p999_us = Time.to_us_float (Summary.latency_p summary 99.9);
    be_share =
      float_of_int (Linux_workload.batch_busy_ns t) /. float_of_int total_worker_ns;
  }

let run_point config system ~with_be ~rate_rps =
  match system with
  | Skyloft_c q ->
      run_centralized config ~mechanism:Centralized.skyloft_mechanism ~quantum:q
        ~with_be ~rate_rps
  | Shinjuku_c ->
      (* Shinjuku cannot host a second application: BE never attached. *)
      run_centralized config ~mechanism:Centralized.shinjuku_mechanism
        ~quantum:(Time.us 30) ~with_be:false ~rate_rps
  | Ghost_c ->
      run_centralized config ~mechanism:Centralized.ghost_mechanism ~quantum:(Time.us 30)
        ~with_be ~rate_rps
  | Linux_c -> run_linux config ~with_be ~rate_rps

let load_fractions = [ 0.1; 0.3; 0.5; 0.6; 0.7; 0.8; 0.9; 0.95; 1.0; 1.1; 1.3 ]

let sweep (config : Config.t) system ~with_be =
  Parallel.map ~jobs:config.jobs
    (fun frac -> run_point config system ~with_be ~rate_rps:(frac *. saturation))
    load_fractions

(* One cell per (system, load fraction): the whole grid fans across
   domains instead of one system row at a time. *)
let sweep_all (config : Config.t) systems ~with_be =
  let cells =
    List.concat_map
      (fun s -> List.map (fun frac -> (s, frac)) load_fractions)
      systems
  in
  let points =
    Parallel.map ~jobs:config.jobs
      (fun (s, frac) -> run_point config s ~with_be ~rate_rps:(frac *. saturation))
      cells
  in
  List.map2
    (fun s pts -> (system_name s, pts))
    systems
    (Parallel.group ~size:(List.length load_fractions) points)

let systems_7a = [ Skyloft_c (Time.us 30); Skyloft_c (Time.us 15); Shinjuku_c; Ghost_c; Linux_c ]
let systems_7bc = [ Skyloft_c (Time.us 30); Shinjuku_c; Ghost_c; Linux_c ]

let print_latency_table results =
  let header =
    "system" :: List.map (fun f -> Printf.sprintf "%.0f%%" (f *. 100.)) load_fractions
  in
  let rows =
    List.map
      (fun (name, points) ->
        name :: List.map (fun p -> Printf.sprintf "%.0f" p.p99_us) points)
      results
  in
  Report.table ~header rows

let print_throughput_table results =
  let header =
    "system (krps achieved)"
    :: List.map (fun f -> Printf.sprintf "%.0f%%" (f *. 100.)) load_fractions
  in
  let rows =
    List.map
      (fun (name, points) ->
        name :: List.map (fun p -> Report.krps p.achieved_rps) points)
      results
  in
  Report.table ~header rows

(** Highest achieved load whose p99 stays under the SLO — the "maximum
    throughput" number the paper quotes (tail explosion = saturation). *)
let max_load_under_slo points ~slo_us =
  List.fold_left
    (fun acc p -> if p.p99_us <= slo_us then max acc p.achieved_rps else acc)
    0.0 points

let print_slo_summary results =
  Report.subsection "max throughput at p99 <= 200us SLO (krps)";
  Report.table
    ~header:[ "system"; "max krps @ 200us" ]
    (List.map
       (fun (name, points) ->
         [ name; Report.krps (max_load_under_slo points ~slo_us:200.0) ])
       results)

let print_a config =
  Report.section
    (Printf.sprintf
       "Figure 7a: p99 latency (us) vs offered load, dispersive workload (saturation \
        ~%.0f krps)"
       (saturation /. 1000.));
  let results = sweep_all config systems_7a ~with_be:false in
  print_latency_table results;
  Report.subsection "achieved throughput (krps)";
  print_throughput_table results;
  print_slo_summary results;
  Report.note "paper: Skyloft ~ Shinjuku; ghOSt ~0.8x max throughput, ~3x low-load p99;";
  Report.note "       Linux CFS ~0.59x max throughput";
  results

let print_b config =
  Report.section "Figure 7b: p99 latency (us) with a co-located batch application";
  let results = sweep_all config systems_7bc ~with_be:true in
  print_latency_table results;
  print_slo_summary results;
  Report.note "paper: co-location does not change Skyloft's tail latency";
  results

let print_c (_config : Config.t) results_b =
  Report.section "Figure 7c: CPU share of the batch application vs load";
  let header =
    "system" :: List.map (fun f -> Printf.sprintf "%.0f%%" (f *. 100.)) load_fractions
  in
  let rows =
    List.map
      (fun (name, points) -> name :: List.map (fun p -> Report.pct p.be_share) points)
      results_b
  in
  Report.table ~header rows;
  Report.note "paper: Skyloft ~ ghOSt ~ Linux batch share; Shinjuku is zero (single-app)";
  rows
