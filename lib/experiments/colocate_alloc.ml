module Time = Skyloft_sim.Time
module Engine = Skyloft_sim.Engine
module Topology = Skyloft_hw.Topology
module Machine = Skyloft_hw.Machine
module Kmod = Skyloft_kernel.Kmod
module Summary = Skyloft_stats.Summary
module Timeseries = Skyloft_stats.Timeseries
module App = Skyloft.App
module Centralized = Skyloft.Centralized
module Synthetic = Skyloft_apps.Synthetic
module Allocator = Skyloft_alloc.Allocator
module Alloc_policy = Skyloft_alloc.Policy

(** Core-allocation policy comparison (§5.2 "Multiple workloads", the
    lib/alloc subsystem): the Figure 7b/7c co-location setup — dispersive
    LC workload plus a batch application on 20 worker cores — swept over
    LC load under each allocator policy.

    For every policy and load point we report the LC p99, the batch
    application's CPU share, the mean number of cores the allocator left
    granted to BE, and the §5.4 inter-application switch cost the
    allocator's decisions incurred.  A good policy keeps the BE share
    close to the idle fraction the LC load leaves behind without hurting
    the LC tail; a twitchy one burns the gap in switch costs. *)

let n_workers = 20
let dispatcher_core = 0
let worker_cores = List.init n_workers (fun i -> i + 1)
let saturation = Synthetic.saturation_rps ~cores:n_workers

(* Policies are stateful (hysteresis counters live inside), so each run
   builds a fresh instance. *)
let policies : (string * (unit -> Alloc_policy.t)) list =
  [
    ("static", Alloc_policy.static);
    ("utilization", fun () -> Alloc_policy.utilization ());
    ("delay", fun () -> Alloc_policy.delay ());
  ]

type point = {
  policy : string;
  load_frac : float;
  p99_us : float;
  be_share : float;  (** batch share of worker CPU inside the load window *)
  lc_share : float;
  mean_be_cores : float;
  grants : int;
  reclaims : int;
  yields : int;
  charged_us : float;  (** switch cost charged for allocator moves *)
}

let run_point (config : Config.t) ~policy:(policy_name, make_policy) ~load_frac =
  let engine = Engine.create ~seed:config.seed () in
  let machine = Machine.create engine Topology.paper_server in
  let kmod = Kmod.create machine in
  let alloc_cfg =
    { (Allocator.default_config ()) with Allocator.policy = make_policy () }
  in
  let rt =
    Centralized.create machine kmod ~dispatcher_core ~worker_cores
      ~quantum:(Time.us 30) ~alloc:alloc_cfg
      (fst (Skyloft_policies.Shinjuku_shenango.create ()))
  in
  let lc = Centralized.create_app rt ~name:"lc" in
  let be = Centralized.create_app rt ~name:"batch" in
  Centralized.attach_be_app rt be ~chunk:(Time.us 50) ~workers:n_workers;
  let rng = Engine.split_rng engine in
  Synthetic.drive rt lc engine ~rng ~rate_rps:(load_frac *. saturation)
    ~duration:config.duration;
  (* Share is measured inside the load window only: the drain tail would
     hand BE free cores and overstate its share. *)
  let lc_busy = ref 0 and be_busy = ref 0 in
  ignore
    (Engine.at engine config.duration (fun () ->
         lc_busy := lc.App.busy_ns;
         be_busy := be.App.busy_ns));
  Engine.run ~until:(config.duration + Time.ms 60) engine;
  let total_ns = n_workers * config.duration in
  let alloc =
    match Centralized.allocator rt with
    | Some a -> a
    | None -> failwith "colocate_alloc: allocator not started"
  in
  {
    policy = policy_name;
    load_frac;
    p99_us = Time.to_us_float (Summary.latency_p lc.App.summary 99.0);
    be_share = float_of_int !be_busy /. float_of_int total_ns;
    lc_share = float_of_int !lc_busy /. float_of_int total_ns;
    mean_be_cores =
      Timeseries.mean (Allocator.series alloc ~app:be.App.id) ~until:config.duration;
    grants = Allocator.grants alloc;
    reclaims = Allocator.reclaims alloc;
    yields = Allocator.yields alloc;
    charged_us = Time.to_us_float (Allocator.charged_ns alloc);
  }

let load_fractions = [ 0.2; 0.5; 0.8 ]

let sweep (config : Config.t) ~policy =
  Parallel.map ~jobs:config.jobs
    (fun load_frac -> run_point config ~policy ~load_frac)
    load_fractions

(* One cell per (policy, load fraction), fanned across domains. *)
let sweep_all (config : Config.t) policies =
  let cells =
    List.concat_map
      (fun p -> List.map (fun load_frac -> (p, load_frac)) load_fractions)
      policies
  in
  let points =
    Parallel.map ~jobs:config.jobs
      (fun (p, load_frac) -> run_point config ~policy:p ~load_frac)
      cells
  in
  List.map2
    (fun p pts -> (fst p, pts))
    policies
    (Parallel.group ~size:(List.length load_fractions) points)

let print config =
  Report.section
    (Printf.sprintf
       "Core-allocation policies: LC + batch co-location, 20 workers (saturation \
        ~%.0f krps)"
       (saturation /. 1000.));
  let results = sweep_all config policies in
  Report.subsection "LC p99 latency (us)";
  let header =
    "policy"
    :: List.map (fun f -> Printf.sprintf "%.0f%%" (f *. 100.)) load_fractions
  in
  Report.table ~header
    (List.map
       (fun (name, pts) -> name :: List.map (fun p -> Report.f1 p.p99_us) pts)
       results);
  Report.subsection "batch CPU share (idle fraction is the headroom)";
  Report.table
    ~header:(header @ [ "" ])
    (List.map
       (fun (name, pts) ->
         (name :: List.map (fun p -> Report.pct p.be_share) pts) @ [ "" ])
       results);
  Report.subsection "mean cores granted to batch";
  Report.table ~header
    (List.map
       (fun (name, pts) ->
         name :: List.map (fun p -> Report.f1 p.mean_be_cores) pts)
       results);
  Report.subsection "allocator activity at 80% load (grants/reclaims/yields, cost)";
  Report.table
    ~header:[ "policy"; "grants"; "reclaims"; "yields"; "switch cost (us)" ]
    (List.map
       (fun (name, pts) ->
         let p = List.nth pts (List.length pts - 1) in
         [
           name;
           string_of_int p.grants;
           string_of_int p.reclaims;
           string_of_int p.yields;
           Report.f1 p.charged_us;
         ])
       results);
  Report.note "a good policy tracks the idle fraction with the BE share while";
  Report.note "keeping the LC p99 flat; every core moved costs ~1.9us (§5.4)";
  results
