module Time = Skyloft_sim.Time
module Engine = Skyloft_sim.Engine
module Topology = Skyloft_hw.Topology
module Machine = Skyloft_hw.Machine
module Kmod = Skyloft_kernel.Kmod
module Histogram = Skyloft_stats.Histogram
module Percpu = Skyloft.Percpu
module Runner = Skyloft_apps.Runner
module Schbench = Skyloft_apps.Schbench

(** Figure 6: schbench wakeup latency under Skyloft RR as a function of the
    time slice.  The paper's observation: wakeup latency is roughly
    proportional to the slice; Skyloft-FIFO (infinite slice, no
    preemption) is the worst case. *)

let cores = List.init 24 Fun.id
let slices = [ Some (Time.us 10); Some (Time.us 50); Some (Time.us 200); Some (Time.ms 1) ]
let worker_counts = [ 32; 48; 64 ]

let slice_name = function
  | Some s -> Printf.sprintf "RR-%s" (Format.asprintf "%a" Time.pp s)
  | None -> "FIFO (no preemption)"

let run_one (config : Config.t) ~slice ~workers =
  let engine = Engine.create ~seed:config.seed () in
  let machine = Machine.create engine Topology.paper_server in
  let kmod = Kmod.create machine in
  let rt =
    Percpu.create machine kmod ~cores ~timer_hz:100_000
      (Skyloft_policies.Rr.create ?slice ())
  in
  let app = Percpu.create_app rt ~name:"schbench" in
  let runner = Runner.of_percpu rt app in
  Schbench.run runner engine (Schbench.default_config ~workers) ~duration:config.duration

let print (config : Config.t) =
  Report.section "Figure 6: schbench p99 wakeup latency (us) vs RR time slice, 24 cores";
  let header = "slice" :: List.map (fun w -> Printf.sprintf "%dw" w) worker_counts in
  let all = slices @ [ None ] in
  (* One cell per (slice, worker count), fanned across domains. *)
  let cells =
    List.concat_map (fun slice -> List.map (fun w -> (slice, w)) worker_counts) all
  in
  let points =
    Parallel.map ~jobs:config.jobs
      (fun (slice, workers) ->
        let h = run_one config ~slice ~workers in
        Report.us (Histogram.percentile h 99.0))
      cells
  in
  let rows =
    List.map2
      (fun slice row -> slice_name slice :: row)
      all
      (Parallel.group ~size:(List.length worker_counts) points)
  in
  Report.table ~header rows;
  Report.note "paper: wakeup latency is roughly proportional to the time slice";
  rows
