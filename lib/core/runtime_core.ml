module Time = Skyloft_sim.Time
module Coro = Skyloft_sim.Coro
module Engine = Skyloft_sim.Engine
module Eventq = Skyloft_sim.Eventq
module Machine = Skyloft_hw.Machine
module Costs = Skyloft_hw.Costs
module Kmod = Skyloft_kernel.Kmod
module Histogram = Skyloft_stats.Histogram
module Summary = Skyloft_stats.Summary
module Trace = Skyloft_stats.Trace
module Timeseries = Skyloft_stats.Timeseries
module Alloc_policy = Skyloft_alloc.Policy
module Allocator = Skyloft_alloc.Allocator
module Registry = Skyloft_obs.Registry
module Attribution = Skyloft_obs.Attribution

(* The shared substrate under every runtime (Table 2's framework claim):
   app table, task lifecycle + attribution stamping, BE occupancy, the
   Kmod switch_to multi-app path, trace vocabulary, watchdog bookkeeping,
   deadline kills, allocator probes and metrics.  A runtime contributes
   only its DISPATCH substrate — how tasks are picked, placed and
   preempted (per-CPU timer-driven, dedicated dispatcher, or the hybrid
   of both) — as a record of closures, mirroring the Sched_ops idiom. *)

(* One execution unit: a worker core's scheduling state.  Runtimes wrap
   it with their own per-unit extras (kick flags, assignment generations). *)
type exec = {
  exec_core : int;
  mutable exec_slot : int;  (* index among d_units; -1 before install *)
  mutable current : Task.t option;
  mutable completion : Eventq.handle;  (* Eventq.null when no segment armed *)
  mutable completion_fire : unit -> unit;
      (* the unit's one stable completion closure, installed with the
         dispatch record: every segment end re-arms it instead of building
         a fresh closure per segment *)
  mutable busy_from : Time.t;
  mutable active_app : int;
  mutable stolen_until : Time.t;  (* host kernel holds the core until then *)
}

(* The DISPATCH substrate signature, as a record of closures (installed
   after construction, like the policy, to break the knot). *)
type dispatch = {
  d_name : string;
  d_units : exec array;  (* every execution unit, in core order *)
  d_enqueue_cpu : exec -> int;
      (* queue a yielded task is re-enqueued on: the unit's own core
         (per-CPU) or the dispatcher's global queue (centralized) *)
  d_incoming_app : exec -> int;
      (* app id of an in-flight assignment racing toward the unit, -1 if
         none; synchronous dispatch never has one *)
  d_released : exec -> unit;
      (* the unit gave its task up (completion, block, preempt, kill):
         bump assignment generations, invalidate stale timers *)
  d_reschedule : exec -> prev:Task.t option -> unit;
      (* find the unit something to run: synchronous pick or dispatcher
         assignment *)
}

let null_dispatch =
  {
    d_name = "null";
    d_units = [||];
    d_enqueue_cpu = (fun ex -> ex.exec_core);
    d_incoming_app = (fun _ -> -1);
    d_released = (fun _ -> ());
    d_reschedule = (fun _ ~prev:_ -> ());
  }

type t = {
  machine : Machine.t;
  engine : Engine.t;
  kmod : Kmod.t;
  kthreads : (int * int, Kmod.kthread) Hashtbl.t;  (* (app, core) -> kthread *)
  by_id : (int, App.t) Hashtbl.t;  (* O(1) app lookup, daemon included *)
  mutable apps : App.t list;  (* reverse creation order *)
  daemon : App.t;
  mutable policy : Sched_ops.instance;
  mutable probe : Sched_ops.probe;
  mutable be_app : App.t option;
  be_queue : Runqueue.t;  (* BE work lives here, outside the LC policy *)
  mutable be_allowance : int;  (* units BE tasks may occupy right now *)
  mutable core_allowance : int;
      (* units (by slot, a prefix of d_units) this runtime may occupy at
         all: the machine-level broker's grant.  max_int = uncapped, the
         single-tenant default — every gate below is then a no-op. *)
  mutable allocator : Allocator.t option;
  rescue_detect : Histogram.t;  (* how late each violation was caught *)
  wakeups : Histogram.t option;  (* wakeup-to-dispatch, when recorded *)
  queue_depth : Timeseries.t;  (* LC policy queue length over time *)
  trace_app_switches : bool;  (* emit App_switch instants (per-CPU style) *)
  mutable switches : int;
  mutable app_switches : int;
  mutable preempts : int;
  mutable be_preempts : int;
  mutable rescues : int;
  mutable deadline_drops : int;
  mutable trace : Trace.t option;
  mutable dispatch : dispatch;
  mutable next_app_id : int;  (* per-run id allocators: ids used to come *)
  mutable next_task_id : int;  (* from process-wide counters, which made
                                  concurrent runs perturb each other *)
}

let create machine kmod ~record_wakeups ~trace_app_switches =
  let t =
    {
      machine;
      engine = Machine.engine machine;
      kmod;
      kthreads = Hashtbl.create 64;
      by_id = Hashtbl.create 64;
      apps = [];
      daemon = App.daemon ();
      policy = Sched_ops.null_instance;
      probe = { Sched_ops.queued = (fun () -> 0); oldest_wait = (fun () -> 0) };
      be_app = None;
      be_queue = Runqueue.create ();
      be_allowance = 0;
      core_allowance = max_int;
      allocator = None;
      rescue_detect = Histogram.create ();
      wakeups = (if record_wakeups then Some (Histogram.create ()) else None);
      queue_depth = Timeseries.create ();
      trace_app_switches;
      switches = 0;
      app_switches = 0;
      preempts = 0;
      be_preempts = 0;
      rescues = 0;
      deadline_drops = 0;
      trace = None;
      dispatch = null_dispatch;
      next_app_id = 1;  (* id 0 is the daemon *)
      next_task_id = 1;
    }
  in
  Hashtbl.replace t.by_id t.daemon.App.id t.daemon;
  t

let now t = Engine.now t.engine

let make_exec core =
  {
    exec_core = core;
    exec_slot = -1;
    current = None;
    completion = Eventq.null;
    completion_fire = ignore;
    busy_from = 0;
    active_app = 0;
    stolen_until = 0;
  }

(* Broker gate: a unit whose slot falls beyond the core allowance may not
   run anything (its core belongs to another tenant right now).  Allowed
   units are the d_units prefix, which keeps the mapping deterministic:
   a grant of [n] cores is always units 0..n-1. *)
let unit_capped t ex = ex.exec_slot >= t.core_allowance
let set_core_allowance t n = t.core_allowance <- max 0 n

(* The runtime view handed to policy constructors: derived entirely from
   the DISPATCH units, so it is identical across runtimes. *)
let view t =
  {
    Sched_ops.cores = Array.map (fun ex -> ex.exec_core) t.dispatch.d_units;
    is_idle =
      (fun core ->
        Array.exists
          (fun ex ->
            ex.exec_core = core && ex.current = None && not (unit_capped t ex))
          t.dispatch.d_units);
    now = (fun () -> now t);
  }

let install_policy t ctor =
  let policy, probe =
    Sched_ops.instrument
      ~now:(fun () -> now t)
      ~on_change:(fun n -> Timeseries.record t.queue_depth ~at:(now t) n)
      (ctor (view t))
  in
  t.policy <- policy;
  t.probe <- probe

(* ---- applications and kthreads ------------------------------------------ *)

let find_app t id = Hashtbl.find t.by_id id

let new_app t ~name =
  let id = t.next_app_id in
  t.next_app_id <- id + 1;
  let app = App.create ~id ~name in
  t.apps <- app :: t.apps;
  Hashtbl.replace t.by_id app.App.id app;
  app

let fresh_task_id t =
  let id = t.next_task_id in
  t.next_task_id <- id + 1;
  id

let add_kthread t ~app ~core =
  let kt = Kmod.park_on_cpu t.kmod ~app ~core in
  Hashtbl.replace t.kthreads (app, core) kt;
  kt

let kthread t ~app ~core = Hashtbl.find t.kthreads (app, core)

let is_be t (task : Task.t) =
  match t.be_app with Some app -> task.Task.app = app.App.id | None -> false

(* Units the BE application occupies right now, counting in-flight
   assignments so an allowance cannot be oversubscribed while a dispatch
   is pending (synchronous runtimes never have one). *)
let be_occupancy t =
  match t.be_app with
  | None -> 0
  | Some app ->
      Array.fold_left
        (fun acc ex ->
          let running =
            match ex.current with
            | Some task -> task.Task.app = app.App.id
            | None -> false
          in
          if running || t.dispatch.d_incoming_app ex = app.App.id then acc + 1
          else acc)
        0 t.dispatch.d_units

(* ---- accounting and trace vocabulary ------------------------------------- *)

let account t ex =
  (match ex.current with
  | Some task ->
      let app = find_app t task.Task.app in
      app.App.busy_ns <- app.App.busy_ns + max 0 (now t - ex.busy_from);
      (match t.trace with
      | Some trace when now t > ex.busy_from ->
          Trace.span trace ~core:ex.exec_core ~app:task.Task.app
            ~name:task.Task.name ~start:ex.busy_from ~stop:(now t)
      | _ -> ())
  | None -> ());
  ex.busy_from <- now t

let trace_instant t ~core kind name =
  match t.trace with
  | Some trace -> Trace.instant trace ~core ~at:(now t) kind ~name
  | None -> ()

let release t ex =
  ex.current <- None;
  t.dispatch.d_released ex

(* Cross-application switch through the kernel module (§3.3/§5.4):
   returns the charged cost. *)
let app_switch t ex (task : Task.t) =
  let from_kt = Hashtbl.find t.kthreads (ex.active_app, ex.exec_core) in
  let to_kt = Hashtbl.find t.kthreads (task.Task.app, ex.exec_core) in
  let cost = Kmod.switch_to t.kmod ~from:from_kt ~target:to_kt in
  ex.active_app <- task.Task.app;
  t.app_switches <- t.app_switches + 1;
  if t.trace_app_switches then
    trace_instant t ~core:ex.exec_core Trace.App_switch task.Task.name;
  cost

(* ---- the shared task lifecycle ------------------------------------------- *)

let rec process t ex (task : Task.t) =
  match task.body with
  | Coro.Compute (d, k) ->
      task.cont <- k;
      task.segment_end <- now t + d;
      ex.completion <- Engine.at t.engine task.segment_end ex.completion_fire
  | Coro.Yield _ ->
      (* continuation evaluated at the next dispatch (resume time) *)
      task.state <- Task.Runnable;
      account t ex;
      release t ex;
      task.obs_enq_at <- now t;
      if is_be t task then Runqueue.push_tail t.be_queue task
      else
        t.policy.task_enqueue
          ~cpu:(t.dispatch.d_enqueue_cpu ex)
          ~reason:Sched_ops.Enq_yielded task;
      t.dispatch.d_reschedule ex ~prev:(Some task)
  | Coro.Block k ->
      if task.pending_wake then begin
        task.pending_wake <- false;
        task.body <- k ();
        process t ex task
      end
      else begin
        task.body <- Coro.Block k;
        task.state <- Task.Blocked;
        account t ex;
        release t ex;
        task.obs_block_at <- now t;
        t.policy.task_block ~cpu:ex.exec_core task;
        t.dispatch.d_reschedule ex ~prev:(Some task)
      end
  | Coro.Exit ->
      task.state <- Task.Exited;
      account t ex;
      release t ex;
      let app = find_app t task.app in
      app.App.completed <- app.App.completed + 1;
      app.App.tasks_alive <- app.App.tasks_alive - 1;
      t.policy.task_terminate task;
      (match task.on_exit with Some f -> f task | None -> ());
      t.dispatch.d_reschedule ex ~prev:(Some task)

and on_complete t ex (task : Task.t) =
  ex.completion <- Eventq.null;
  task.body <- task.cont ();
  process t ex task

(* Install the dispatch record and wire each unit's stable completion
   closure.  The closure reads [ex.current] when it fires: a completion is
   only ever armed for the unit's current task, and every path that takes
   the task off the unit (depose, kill, steal-freeze) cancels it first. *)
let install_dispatch t d =
  t.dispatch <- d;
  Array.iteri
    (fun i ex ->
      ex.exec_slot <- i;
      ex.completion_fire <-
        (fun () ->
          ex.completion <- Eventq.null;
          match ex.current with
          | Some task ->
              task.Task.body <- task.Task.cont ();
              process t ex task
          | None -> ()))
    d.d_units;
  t.be_allowance <- Array.length d.d_units

(* Re-arm the completion timer after the segment end moved (time steals). *)
let arm_completion t ex (task : Task.t) =
  ex.completion <- Engine.at t.engine task.Task.segment_end ex.completion_fire

(* Put [task] on [ex]: lifecycle state, attribution stamping, and the
   wakeup-latency sample.  Returns the moment execution begins (after the
   switch cost). *)
let begin_run t ex (task : Task.t) ~switch_cost =
  task.state <- Task.Running;
  ex.current <- Some task;
  ex.busy_from <- now t;
  task.obs_queued_ns <- task.obs_queued_ns + max 0 (now t - task.obs_enq_at);
  task.obs_overhead_ns <- task.obs_overhead_ns + switch_cost;
  let start = now t + switch_cost in
  (match task.wake_time with
  | Some w ->
      (match t.wakeups with
      | Some h when task.track_wakeup -> Histogram.record h (start - w)
      | Some _ | None -> ());
      task.wake_time <- None
  | None -> ());
  task.run_start <- start;
  task.last_core <- ex.exec_core;
  start

(* The second half of a dispatch: once the switch cost has elapsed, start
   executing the task's body — unless the unit moved on meanwhile. *)
let run_after_switch t ex (task : Task.t) ~switch_cost =
  ignore
    (Engine.after t.engine switch_cost (fun () ->
         match ex.current with
         | Some cur when cur == task && task.Task.state = Task.Running ->
             (match task.body with
             | Coro.Yield k -> task.body <- k ()
             | Coro.Block k when task.resuming ->
                 task.resuming <- false;
                 task.body <- k ()
             | Coro.Block _ | Coro.Compute _ | Coro.Exit -> ());
             process t ex task
         | _ -> ()))

(* Take the running task off its unit (preemption, rescue).  [overhead] is
   the receiver-side handling cost: it extends the remaining segment and is
   charged to the task now — the attribution identity holds either way
   because the response time counts it exactly once.  Returns the deposed
   task; the caller requeues it and reschedules the unit. *)
let depose t ex ~overhead =
  match ex.current with
  | Some task when not (Eventq.is_null ex.completion) ->
      Engine.cancel t.engine ex.completion;
      ex.completion <- Eventq.null;
      let remaining = max 0 (task.Task.segment_end - now t) + overhead in
      task.Task.body <- Coro.Compute (remaining, task.Task.cont);
      task.Task.state <- Task.Runnable;
      if overhead > 0 then
        task.Task.obs_overhead_ns <- task.Task.obs_overhead_ns + overhead;
      account t ex;
      release t ex;
      task.Task.obs_enq_at <- now t;
      trace_instant t ~core:ex.exec_core Trace.Preempt task.Task.name;
      Some task
  | _ -> None

(* Dequeue-side filter: tasks killed at their deadline while queued are
   discarded here instead of being hunted down inside the policy's
   runqueues (the drop was accounted at kill time). *)
let rec next_live t pick =
  match pick () with
  | Some task when task.Task.killed ->
      task.Task.state <- Task.Exited;
      if not (is_be t task) then t.policy.task_terminate task;
      next_live t pick
  | next -> next

(* ---- wakeups -------------------------------------------------------------- *)

(* The shared wake path: state transition, stall attribution and the trace
   instant; [place] is the runtime's placement (policy wakeup + kick, or
   dispatcher pump). *)
let awaken t (task : Task.t) ~place =
  match task.Task.state with
  | Task.Blocked ->
      task.Task.state <- Task.Runnable;
      task.Task.resuming <- true;
      task.Task.wake_time <- Some (now t);
      task.Task.obs_stall_ns <-
        task.Task.obs_stall_ns + max 0 (now t - task.Task.obs_block_at);
      task.Task.obs_enq_at <- now t;
      trace_instant t ~core:(max 0 task.Task.last_core) Trace.Wakeup
        task.Task.name;
      place task
  | Task.Running | Task.Runnable -> task.Task.pending_wake <- true
  | Task.Exited -> ()

(* ---- deadlines ------------------------------------------------------------ *)

let deadline_expired t (task : Task.t) ~on_drop =
  let app = find_app t task.Task.app in
  app.App.tasks_alive <- app.App.tasks_alive - 1;
  Summary.record_drop app.App.summary;
  t.deadline_drops <- t.deadline_drops + 1;
  trace_instant t ~core:(max 0 task.Task.last_core) Trace.Deadline_drop
    task.Task.name;
  match on_drop with Some f -> f task | None -> ()

let kill t ?on_drop (task : Task.t) =
  if not task.Task.killed then
    match task.Task.state with
    | Task.Exited -> ()
    | Task.Running -> (
        match
          Array.find_opt
            (fun ex ->
              match ex.current with Some cur -> cur == task | None -> false)
            t.dispatch.d_units
        with
        | Some ex ->
            Engine.cancel t.engine ex.completion;
            ex.completion <- Eventq.null;
            task.Task.killed <- true;
            task.Task.state <- Task.Exited;
            account t ex;
            release t ex;
            t.policy.task_terminate task;
            deadline_expired t task ~on_drop;
            t.dispatch.d_reschedule ex ~prev:(Some task)
        | None -> ())
    | Task.Runnable ->
        (* Somewhere in a runqueue: account the drop now, discard lazily at
           the next dequeue (see [next_live]). *)
        task.Task.killed <- true;
        deadline_expired t task ~on_drop
    | Task.Blocked ->
        task.Task.killed <- true;
        task.Task.state <- Task.Exited;
        t.policy.task_terminate task;
        deadline_expired t task ~on_drop

let arm_deadline t ?on_drop (task : Task.t) ~deadline ~err =
  if deadline <= 0 then invalid_arg err;
  ignore (Engine.after t.engine deadline (fun () -> kill t ?on_drop task))

(* ---- task admission ------------------------------------------------------- *)

(* Create a task with the attribution-recording exit hook: on completion
   the request's summary entry and its latency-attribution row (queueing +
   service + overhead + stall = response, exact in integer ns) are written
   into the owning application. *)
let admit t (app : App.t) ~name ~arrival ~service ~record body =
  let on_exit =
    if record then
      Some
        (fun (task : Task.t) ->
          (* Zero-service completions count too: omitting them broke the
             submitted = completed + gave-up + drops reconciliation for
             degenerate workloads. *)
          Summary.record_request app.App.summary ~arrival:task.Task.arrival
            ~completion:(now t) ~service:task.Task.service;
          Attribution.record app.App.attribution
            ~queueing:task.Task.obs_queued_ns
            ~overhead:task.Task.obs_overhead_ns ~stall:task.Task.obs_stall_ns
            ~response:(now t - task.Task.obs_start)
            ~declared:task.Task.service)
    else None
  in
  let task =
    Task.create ~id:(fresh_task_id t) ~app:app.App.id ~name ~arrival ~service
      ?on_exit body
  in
  task.Task.obs_start <- now t;
  task.Task.obs_enq_at <- now t;
  app.App.spawned <- app.App.spawned + 1;
  app.App.tasks_alive <- app.App.tasks_alive + 1;
  task

(* ---- watchdog bookkeeping ------------------------------------------------- *)

(* Count and trace a watchdog rescue; the runtime performs the actual
   recovery (preempt, timer re-arm, failover) itself. *)
let rescued t ex ~late =
  t.rescues <- t.rescues + 1;
  Histogram.record t.rescue_detect late;
  match ex.current with
  | Some task ->
      trace_instant t ~core:ex.exec_core Trace.Watchdog_rescue task.Task.name
  | None -> ()

let start_watchdog t ~bound scan =
  match bound with
  | Some b ->
      (* Scan at half the bound so a violation is caught within ~1.5x. *)
      Engine.every t.engine ~period:(max 1 (b / 2)) (fun () ->
          scan ~bound:b;
          true)
  | None -> ()

(* Host-kernel steal of a unit's core: the running segment freezes for the
   outage and resumes at hand-back; run_start moves with it so quantum and
   watchdog clocks do not count stolen time against the task. *)
let freeze_for_steal t ex ~duration =
  ex.stolen_until <- max ex.stolen_until (now t + duration);
  match ex.current with
  | Some task when not (Eventq.is_null ex.completion) ->
      Engine.cancel t.engine ex.completion;
      task.Task.segment_end <- task.Task.segment_end + duration;
      task.Task.run_start <- task.Task.run_start + duration;
      task.Task.obs_stall_ns <- task.Task.obs_stall_ns + duration;
      arm_completion t ex task
  | _ -> ()

(* ---- busy accounting for the allocator ----------------------------------- *)

(* Busy nanoseconds including the in-flight segment of running units, so
   the allocator's utilization sample does not lag long-running tasks. *)
let in_flight_busy t ~matches =
  Array.fold_left
    (fun acc ex ->
      match ex.current with
      | Some task when matches task.Task.app -> acc + max 0 (now t - ex.busy_from)
      | _ -> acc)
    0 t.dispatch.d_units

let lc_busy_ns t =
  let be_id = match t.be_app with Some app -> app.App.id | None -> -1 in
  let recorded =
    List.fold_left
      (fun acc (a : App.t) -> if a.App.id = be_id then acc else acc + a.App.busy_ns)
      t.daemon.App.busy_ns t.apps
  in
  recorded + in_flight_busy t ~matches:(fun id -> id <> be_id)

let be_busy_ns t (app : App.t) =
  app.App.busy_ns + in_flight_busy t ~matches:(fun id -> id = app.App.id)

let total_busy_ns t =
  List.fold_left (fun acc app -> acc + app.App.busy_ns) t.daemon.App.busy_ns t.apps

(* The congestion sample a machine-level broker reads for this runtime as
   a whole: the LC policy probe plus the BE backlog, and total busy time
   including in-flight segments (the broker arbitrates whole runtimes,
   not apps). *)
let congestion t =
  {
    Allocator.runq_len = t.probe.Sched_ops.queued () + Runqueue.length t.be_queue;
    oldest_delay = t.probe.Sched_ops.oldest_wait ();
    busy_ns = total_busy_ns t + in_flight_busy t ~matches:(fun _ -> true);
  }

(* ---- BE attachment and the core allocator -------------------------------- *)

let spawn_be_workers t (app : App.t) ~chunk ~workers ~who =
  if t.be_app <> None then invalid_arg (who ^ ": BE app already set");
  if not (List.exists (fun a -> a == app) t.apps) then
    invalid_arg (who ^ ": app not created by this runtime");
  t.be_app <- Some app;
  for i = 1 to workers do
    (* A batch worker is an endless sequence of compute chunks, yielding
       between chunks so reclaimed cores come back promptly. *)
    let rec loop () = Coro.Compute (chunk, fun () -> Coro.Yield loop) in
    let task =
      Task.create ~id:(fresh_task_id t) ~app:app.App.id
        ~name:(Printf.sprintf "be-%d" i) (loop ())
    in
    app.App.spawned <- app.App.spawned + 1;
    app.App.tasks_alive <- app.App.tasks_alive + 1;
    Runqueue.push_tail t.be_queue task
  done

(* Start the congestion-driven core allocator: LC registered on the policy
   probe's congestion signals, BE on its queue backlog; [set_allowance] is
   the runtime's reclaim/grant muscle, and every core moved charges the
   §5.4 inter-application switch cost on the BE side only so each move is
   charged once. *)
let start_allocator t ~cfg ~be:(app : App.t) ~on_event ~set_allowance =
  let total = Array.length t.dispatch.d_units in
  let burst = min (Option.value cfg.Allocator.be_burstable ~default:total) total in
  let guar = min (max 0 cfg.Allocator.be_guaranteed) burst in
  t.be_allowance <- burst;
  let alloc =
    Allocator.create ~engine:t.engine ~policy:cfg.Allocator.policy
      ~interval:cfg.Allocator.interval ~total_cores:total ~on_event
      ?degrade_after:cfg.Allocator.degrade_after ()
  in
  Allocator.register alloc ~app:0 ~name:"lc" ~kind:Alloc_policy.Lc
    ~bounds:{ Allocator.guaranteed = 0; burstable = total }
    ~initial:(total - burst)
    ~sample:(fun () ->
      {
        Allocator.runq_len = t.probe.Sched_ops.queued ();
        oldest_delay = t.probe.Sched_ops.oldest_wait ();
        busy_ns = lc_busy_ns t;
      })
    ~apply:(fun ~granted:_ ~delta:_ -> 0);
  Allocator.register alloc ~app:app.App.id ~name:app.App.name
    ~kind:Alloc_policy.Be
    ~bounds:{ Allocator.guaranteed = guar; burstable = burst }
    ~initial:burst
    ~sample:(fun () ->
      {
        Allocator.runq_len = Runqueue.length t.be_queue;
        oldest_delay = 0;
        busy_ns = be_busy_ns t app;
      })
    ~apply:(fun ~granted ~delta ->
      set_allowance granted;
      Costs.app_switch_ns * abs delta);
  Allocator.start alloc;
  t.allocator <- Some alloc

(* ---- metrics -------------------------------------------------------------- *)

(* Per-application task counters, response-time histogram and latency
   attribution, identical across runtimes: the [skyloft_app_] family. *)
let register_app_metrics t ?(labels = []) reg =
  List.iter
    (fun (app : App.t) ->
      let al = labels @ [ Registry.app app.App.name ] in
      Registry.counter reg ~labels:al "skyloft_app_spawned_total"
        ~help:"Tasks spawned" (fun () -> app.App.spawned);
      Registry.counter reg ~labels:al "skyloft_app_completed_total"
        ~help:"Tasks completed" (fun () -> app.App.completed);
      Registry.counter reg ~labels:al "skyloft_app_busy_ns_total"
        ~help:"Accumulated worker CPU time" (fun () -> app.App.busy_ns);
      Registry.histogram reg ~labels:al "skyloft_app_response_ns"
        ~help:"Request response time" (Summary.latency app.App.summary);
      Attribution.register reg ~labels:al app.App.attribution)
    t.apps
