module Time = Skyloft_sim.Time
module Coro = Skyloft_sim.Coro
module Machine = Skyloft_hw.Machine
module Kmod = Skyloft_kernel.Kmod
module Histogram = Skyloft_stats.Histogram
module Trace = Skyloft_stats.Trace
module Timeseries = Skyloft_stats.Timeseries
module Registry = Skyloft_obs.Registry

(** The work-stealing Skyloft runtime: per-core deques with steal-half
    rebalancing over the {!Runtime_core} substrate (Shenango §5.3 promoted
    to a first-class runtime).

    Each core owns a deque: the owner pushes and pops at the head (LIFO —
    the newest task's state is hottest in cache), preempted and yielded
    tasks go to the tail, and a core whose deque runs dry scans the other
    deques round-robin from a persisted per-thief cursor and takes half the
    first non-empty victim's queue in one grab
    ({!Runqueue.steal_half}).  Stealing is charged: each probed victim deque
    costs a remote cacheline touch and each migrated task a descriptor +
    stack transfer, both added to the stolen dispatch's switch cost.  A
    core whose scan finds nothing parks — immediately after repeated
    failures (the steal-storm brake), after a grace period otherwise — and
    pays the kernel wake-up on its next dispatch, Shenango's core-parking
    trade-off.

    Preemption (when a [quantum] is given) comes from the same delegated
    user-space timer ticks as {!Percpu}: ticks preempt any task past the
    quantum while local work is queued, breaking head-of-line blocking
    without touching the deque discipline. *)

type t

val create :
  Machine.t ->
  Kmod.t ->
  cores:int list ->
  ?timer_hz:int ->
  ?preemption:bool ->
  ?quantum:Time.t ->
  ?park:(Time.t * Time.t) option ->
  ?watchdog:Time.t ->
  unit ->
  t
(** Build the runtime on the isolated [cores].  When [preemption] (default
    true), every core's LAPIC timer is programmed at [timer_hz] (default
    100,000) and delegated to user space; [quantum] (default: none —
    cooperative) makes ticks preempt tasks past the quantum when local work
    is queued.

    [park = Some (idle_after, resume_cost)] (default: 5 µs grace, a Linux
    wakeup switch + 1 µs to resume) models Shenango-style core
    reallocation; [~park:None] keeps idle cores spinning like {!Percpu}.

    [watchdog] arms the same stuck-core watchdog as {!Percpu.create}. *)

val create_app : t -> name:string -> App.t

val attach_be_app :
  t ->
  ?alloc:Skyloft_alloc.Allocator.config ->
  App.t ->
  chunk:Time.t ->
  workers:int ->
  unit
(** Co-schedule [app] as the best-effort application, outside the LC
    deques; see {!Percpu.attach_be_app}. *)

val allocator : t -> Skyloft_alloc.Allocator.t option
val be_preemptions : t -> int

val set_core_allowance : t -> int -> unit
(** Machine-level broker grant; see {!Percpu.set_core_allowance}. *)

val core_allowance : t -> int
val congestion : t -> Skyloft_alloc.Allocator.raw

val spawn :
  t -> App.t -> name:string -> ?cpu:int -> ?arrival:Time.t -> ?service:Time.t ->
  ?record:bool -> ?deadline:Time.t -> ?on_drop:(Task.t -> unit) -> Coro.t ->
  Task.t
(** Create a task.  [cpu] pins initial placement (default: an idle core,
    else round-robin); the task lands at the head of the target's deque.
    [deadline]/[on_drop] as in {!Percpu.spawn}. *)

val kill : t -> ?on_drop:(Task.t -> unit) -> Task.t -> unit
val wakeup : t -> ?waker_cpu:int -> Task.t -> unit
val fault_current : t -> core:int -> duration:Time.t -> bool
val register_uvec : t -> uvec:int -> (int -> unit) -> unit
val start_utimer : t -> src_core:int -> hz:int -> unit
val preempt_core : t -> src_core:int -> dst_core:int -> unit
val now : t -> Time.t
val current : t -> core:int -> Task.t option
val is_idle : t -> core:int -> bool
val wakeup_hist : t -> Histogram.t
val queue_depth_series : t -> Timeseries.t

(** [register_metrics t reg] registers this runtime's counters (under
    [skyloft_worksteal_*], including steals, stolen tasks, failed scans,
    parks and unparks) plus every application's counters; pull-based and
    perturbation-free like the other runtimes'. *)
val register_metrics : t -> ?labels:Registry.labels -> Registry.t -> unit

val task_switches : t -> int
val app_switches : t -> int
val preemptions : t -> int
val timer_ticks : t -> int
val watchdog_rescues : t -> int
val rescue_detection : t -> Histogram.t
val deadline_drops : t -> int
val total_busy_ns : t -> int
val apps : t -> App.t list
val set_trace : t -> Trace.t -> unit

val steals : t -> int
(** Successful steal-half grabs. *)

val stolen_tasks : t -> int
(** Tasks migrated by those grabs (≥ {!steals}). *)

val steal_fails : t -> int
(** Full victim scans that found nothing (the steal-storm signal). *)

val parks : t -> int
(** Idle cores parked back to the kernel. *)

val unparks : t -> int
(** Parked cores woken for new work (each paid the resume cost). *)

val view : t -> Sched_ops.view
