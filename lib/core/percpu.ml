module Time = Skyloft_sim.Time
module Coro = Skyloft_sim.Coro
module Engine = Skyloft_sim.Engine
module Eventq = Skyloft_sim.Eventq
module Machine = Skyloft_hw.Machine
module Costs = Skyloft_hw.Costs
module Vectors = Skyloft_hw.Vectors
module Kmod = Skyloft_kernel.Kmod
module Histogram = Skyloft_stats.Histogram
module Summary = Skyloft_stats.Summary
module Trace = Skyloft_stats.Trace
module Timeseries = Skyloft_stats.Timeseries
module Alloc_policy = Skyloft_alloc.Policy
module Allocator = Skyloft_alloc.Allocator
module Registry = Skyloft_obs.Registry
module Attribution = Skyloft_obs.Attribution

type cpu = {
  core_id : int;
  mutable current : Task.t option;
  mutable completion : Eventq.handle option;
  mutable busy_from : Time.t;
  mutable active_app : int;
  mutable kick_pending : bool;
  mutable parked : bool;  (* yielded to the kernel while idle (Shenango) *)
  mutable idle_gen : int;  (* invalidates stale park timers *)
  mutable last_sched : Time.t;  (* last scheduling point (watchdog) *)
  mutable stolen_until : Time.t;  (* host kernel holds the core until then *)
}

type t = {
  machine : Machine.t;
  engine : Engine.t;
  kmod : Kmod.t;
  cores : int array;
  cpus : cpu array;
  by_core : (int, cpu) Hashtbl.t;
  kthreads : (int * int, Kmod.kthread) Hashtbl.t;  (* (app, core) -> kthread *)
  mutable apps : App.t list;
  daemon : App.t;
  mutable policy : Sched_ops.instance;
  mutable probe : Sched_ops.probe;
  mutable be_app : App.t option;
  be_queue : Runqueue.t;  (* BE work lives here, outside the LC policy *)
  mutable be_allowance : int;  (* cores BE tasks may occupy right now *)
  mutable allocator : Allocator.t option;
  timer_hz : int;
  preemption : bool;
  park : (Time.t * Time.t) option;  (* (idle_after, resume_cost) *)
  watchdog : Time.t option;  (* rescue bound; None disables the watchdog *)
  rescue_detect : Histogram.t;  (* how late each violation was caught *)
  wakeups : Histogram.t;
  queue_depth : Timeseries.t;  (* LC policy queue length over time *)
  mutable switches : int;
  mutable app_switches : int;
  mutable preempts : int;
  mutable be_preempts : int;
  mutable rescues : int;
  mutable deadline_drops : int;
  mutable ticks : int;
  mutable rr_spawn : int;  (* round-robin spawn placement cursor *)
  uvec_handlers : (int, int -> unit) Hashtbl.t;
      (* user-delegated device interrupts: uvec -> handler (gets core id) *)
  mutable trace : Trace.t option;
}

let now t = Engine.now t.engine
let cpu_of t core = Hashtbl.find t.by_core core

let is_idle t ~core =
  match Hashtbl.find_opt t.by_core core with
  | Some cpu -> cpu.current = None
  | None -> false

let view t =
  {
    Sched_ops.cores = t.cores;
    is_idle = (fun core -> is_idle t ~core);
    now = (fun () -> now t);
  }

(* ---- per-application CPU accounting ------------------------------------ *)

let find_app t id = if id = 0 then t.daemon else List.find (fun a -> a.App.id = id) t.apps

let is_be t (task : Task.t) =
  match t.be_app with Some app -> task.Task.app = app.App.id | None -> false

(* Cores the BE application occupies right now.  Per-CPU dispatch is
   synchronous (schedule sets [current] immediately), so counting running
   tasks is exact. *)
let be_occupancy t =
  match t.be_app with
  | None -> 0
  | Some app ->
      Array.fold_left
        (fun acc cpu ->
          match cpu.current with
          | Some task when task.Task.app = app.App.id -> acc + 1
          | _ -> acc)
        0 t.cpus

let account t cpu =
  (match cpu.current with
  | Some task ->
      let app = find_app t task.Task.app in
      app.App.busy_ns <- app.App.busy_ns + max 0 (now t - cpu.busy_from);
      (match t.trace with
      | Some trace when now t > cpu.busy_from ->
          Trace.span trace ~core:cpu.core_id ~app:task.Task.app ~name:task.Task.name
            ~start:cpu.busy_from ~stop:(now t)
      | _ -> ())
  | None -> ());
  cpu.busy_from <- now t

let trace_instant t ~core kind name =
  match t.trace with
  | Some trace -> Trace.instant trace ~core ~at:(now t) kind ~name
  | None -> ()

(* ---- dispatch & the main loop ------------------------------------------ *)

let rec process t cpu (task : Task.t) =
  match task.body with
  | Coro.Compute (d, k) ->
      task.cont <- k;
      task.segment_end <- now t + d;
      cpu.completion <-
        Some (Engine.at t.engine task.segment_end (fun () -> on_complete t cpu task))
  | Coro.Yield _ ->
      (* continuation evaluated at the next dispatch (resume time) *)
      task.state <- Task.Runnable;
      account t cpu;
      cpu.current <- None;
      task.obs_enq_at <- now t;
      if is_be t task then Runqueue.push_tail t.be_queue task
      else
        t.policy.task_enqueue ~cpu:cpu.core_id ~reason:Sched_ops.Enq_yielded task;
      schedule t cpu ~prev:(Some task)
  | Coro.Block k ->
      if task.pending_wake then begin
        task.pending_wake <- false;
        task.body <- k ();
        process t cpu task
      end
      else begin
        task.body <- Coro.Block k;
        task.state <- Task.Blocked;
        account t cpu;
        cpu.current <- None;
        task.obs_block_at <- now t;
        t.policy.task_block ~cpu:cpu.core_id task;
        schedule t cpu ~prev:(Some task)
      end
  | Coro.Exit ->
      task.state <- Task.Exited;
      account t cpu;
      cpu.current <- None;
      let app = find_app t task.app in
      app.App.completed <- app.App.completed + 1;
      app.App.tasks_alive <- app.App.tasks_alive - 1;
      t.policy.task_terminate task;
      (match task.on_exit with Some f -> f task | None -> ());
      schedule t cpu ~prev:(Some task)

and on_complete t cpu (task : Task.t) =
  cpu.completion <- None;
  task.body <- task.cont ();
  process t cpu task

and dispatch t cpu (task : Task.t) ~switch_cost =
  task.state <- Task.Running;
  cpu.current <- Some task;
  cpu.busy_from <- now t;
  cpu.last_sched <- now t;
  task.obs_queued_ns <- task.obs_queued_ns + max 0 (now t - task.obs_enq_at);
  task.obs_overhead_ns <- task.obs_overhead_ns + switch_cost;
  let start = now t + switch_cost in
  (match task.wake_time with
  | Some w ->
      if task.track_wakeup then Histogram.record t.wakeups (start - w);
      task.wake_time <- None
  | None -> ());
  task.run_start <- start;
  task.last_core <- cpu.core_id;
  let continue () =
    match cpu.current with
    | Some cur when cur == task && task.state = Task.Running ->
        (match task.body with
        | Coro.Yield k -> task.body <- k ()
        | Coro.Block k when task.resuming ->
            task.resuming <- false;
            task.body <- k ()
        | Coro.Block _ | Coro.Compute _ | Coro.Exit -> ());
        process t cpu task
    | _ -> ()
  in
  ignore (Engine.after t.engine switch_cost continue)

and schedule t cpu ~prev =
  let pick () =
    (* Cores inside the allocator's current BE grant belong to BE — they
       dispatch BE work ahead of LC so a guaranteed core cannot be starved
       by LC backlog.  LC congestion claws cores back through the
       allocator shrinking the allowance, not by out-queueing BE here. *)
    let be_next =
      if be_occupancy t < t.be_allowance then Runqueue.pop_head t.be_queue
      else None
    in
    match be_next with
    | Some task -> Some task
    | None -> (
        match t.policy.task_dequeue ~cpu:cpu.core_id with
        | Some task -> Some task
        | None -> t.policy.sched_balance ~cpu:cpu.core_id)
  in
  (* Tasks killed at their deadline while queued are discarded here, at
     dequeue time, instead of being hunted down inside the policy's
     runqueues. *)
  let rec next_live () =
    match pick () with
    | Some task when task.Task.killed ->
        task.Task.state <- Task.Exited;
        if not (is_be t task) then t.policy.task_terminate task;
        next_live ()
    | next -> next
  in
  match next_live () with
  | None ->
      cpu.current <- None;
      cpu.idle_gen <- cpu.idle_gen + 1;
      (* Shenango-style runtimes return idle cores to the kernel; waking a
         parked core later costs a kernel wakeup. *)
      (match t.park with
      | Some (idle_after, _) ->
          let gen = cpu.idle_gen in
          ignore
            (Engine.after t.engine idle_after (fun () ->
                 if cpu.current = None && cpu.idle_gen = gen then cpu.parked <- true))
      | None -> ())
  | Some task ->
      let unpark_cost =
        if cpu.parked then begin
          cpu.parked <- false;
          match t.park with Some (_, resume_cost) -> resume_cost | None -> 0
        end
        else 0
      in
      let same = match prev with Some p -> p == task | None -> false in
      let cost =
        if same then 0
        else if task.Task.app = cpu.active_app then begin
          t.switches <- t.switches + 1;
          Costs.uthread_yield_ns
        end
        else begin
          (* Cross-application switch through the kernel module (§3.3). *)
          let from_kt = Hashtbl.find t.kthreads (cpu.active_app, cpu.core_id) in
          let to_kt = Hashtbl.find t.kthreads (task.Task.app, cpu.core_id) in
          let cost = Kmod.switch_to t.kmod ~from:from_kt ~target:to_kt in
          cpu.active_app <- task.Task.app;
          t.app_switches <- t.app_switches + 1;
          trace_instant t ~core:cpu.core_id Trace.App_switch task.Task.name;
          cost
        end
      in
      dispatch t cpu task ~switch_cost:(cost + unpark_cost)

(* ---- preemption --------------------------------------------------------- *)

let preempt_current t cpu =
  match (cpu.current, cpu.completion) with
  | Some task, Some h ->
      Eventq.cancel h;
      cpu.completion <- None;
      let remaining = max 0 (task.segment_end - now t) in
      task.body <- Coro.Compute (remaining, task.cont);
      task.state <- Task.Runnable;
      account t cpu;
      cpu.current <- None;
      task.obs_enq_at <- now t;
      t.preempts <- t.preempts + 1;
      trace_instant t ~core:cpu.core_id Trace.Preempt task.Task.name;
      if is_be t task then begin
        t.be_preempts <- t.be_preempts + 1;
        Runqueue.push_head t.be_queue task
      end
      else t.policy.task_enqueue ~cpu:cpu.core_id ~reason:Sched_ops.Enq_preempted task;
      schedule t cpu ~prev:(Some task)
  | _ -> ()

(* Interrupt handling steals CPU time from the running segment.  The cost
   is attributed to the victim task as scheduling overhead — or as fault
   stall when [stall] (host-kernel core steals, where the core vanishes
   rather than doing scheduling work). *)
let steal_time ?(stall = false) t cpu cost =
  match (cpu.current, cpu.completion) with
  | Some task, Some h ->
      Eventq.cancel h;
      task.segment_end <- task.segment_end + cost;
      if stall then task.obs_stall_ns <- task.obs_stall_ns + cost
      else task.obs_overhead_ns <- task.obs_overhead_ns + cost;
      cpu.completion <-
        Some (Engine.at t.engine task.segment_end (fun () -> on_complete t cpu task))
  | _ -> ()

let kick t cpu =
  if cpu.current = None && not cpu.kick_pending then begin
    cpu.kick_pending <- true;
    (* A stolen core cannot react until the host kernel hands it back. *)
    let delay = max 0 (cpu.stolen_until - now t) in
    ignore
      (Engine.after t.engine delay (fun () ->
           cpu.kick_pending <- false;
           if cpu.current = None then schedule t cpu ~prev:None))
  end

let kick_core t core = kick t (cpu_of t core)

(* After enqueueing work, make sure some idle core will notice it. *)
let kick_some_idle t =
  match Sched_ops.pick_idle (view t) with Some core -> kick_core t core | None -> ()

(* ---- the global user-interrupt handler (Listing 1) ---------------------- *)

(* Timer-tick scheduling decision.  BE tasks live outside the LC policy:
   the tick preempts them when the allowance shrank below the cores BE
   currently occupies.  LC congestion is not checked directly here — the
   allocator reacts to it within one check interval by shrinking the
   allowance (and never below the BE app's guaranteed cores), so the
   allowance is the single arbiter of BE occupancy. *)
let tick_decision t cpu =
  cpu.last_sched <- now t;
  match (cpu.current, cpu.completion) with
  | Some task, Some _ ->
      if is_be t task then begin
        if be_occupancy t > t.be_allowance then preempt_current t cpu
      end
      else if t.policy.sched_timer_tick ~cpu:cpu.core_id task then
        preempt_current t cpu
  | _ -> kick t cpu

let on_tick t cpu =
  t.ticks <- t.ticks + 1;
  steal_time t cpu (Costs.user_timer_receive_ns + Costs.senduipi_sn_ns);
  tick_decision t cpu

let on_preempt_ipi t cpu =
  steal_time t cpu (Costs.uipi_receive_ns ~cross_numa:false);
  tick_decision t cpu

let uintr_handler t cpu ctx ~uvec =
  if uvec = Vectors.uvec_timer then begin
    (* Reset UPID.PIR so the next hardware timer interrupt is recognised
       (Listing 1 line 5) — only on a timer-delegated context (SN set). *)
    if Machine.uintr_sn ctx then
      Machine.senduipi t.machine ~src_core:cpu.core_id ctx ~uvec:Vectors.uvec_timer;
    on_tick t cpu
  end
  else if uvec = Vectors.uvec_preempt then on_preempt_ipi t cpu
  else
    (* Delegated peripheral interrupt (§6): charge the receive overhead and
       run the registered driver handler in user space. *)
    match Hashtbl.find_opt t.uvec_handlers uvec with
    | Some handler ->
        steal_time t cpu (Costs.uipi_receive_ns ~cross_numa:false);
        handler cpu.core_id
    | None -> ()

(* ---- watchdog recovery --------------------------------------------------- *)

(* No scheduling point on this core within the bound: the timer delegation
   was lost (dropped notification, PIR never re-primed) or the current task
   is stuck.  The rescue is what the daemon would do from a healthy core —
   a rescue user IPI (receive cost charged), the LAPIC timer re-armed and
   the PIR re-primed so future ticks are recognised again, then a forced
   preemption so queued work gets the core. *)
let rescue t cpu ~bound =
  t.rescues <- t.rescues + 1;
  Histogram.record t.rescue_detect (max 0 (now t - cpu.last_sched - bound));
  (match cpu.current with
  | Some task -> trace_instant t ~core:cpu.core_id Trace.Watchdog_rescue task.Task.name
  | None -> ());
  steal_time t cpu (Costs.uipi_receive_ns ~cross_numa:false);
  if t.preemption then begin
    ignore (Kmod.timer_set_hz t.kmod ~core:cpu.core_id ~hz:t.timer_hz);
    match Machine.uintr_installed t.machine ~core:cpu.core_id with
    | Some ctx when Machine.uintr_sn ctx ->
        Machine.senduipi t.machine ~src_core:cpu.core_id ctx ~uvec:Vectors.uvec_timer
    | Some _ | None -> ()
  end;
  preempt_current t cpu;
  cpu.last_sched <- now t

let watchdog_scan t ~bound =
  Array.iter
    (fun cpu ->
      match cpu.current with
      | Some _
        when now t >= cpu.stolen_until
             && (not (Machine.interrupts_masked (Machine.core t.machine cpu.core_id)))
             && now t - cpu.last_sched > bound ->
          rescue t cpu ~bound
      | _ -> ())
    t.cpus

(* The host kernel stole this core: the running segment makes no progress
   for the outage, and wake-up kicks defer until hand-back.  Deferred
   interrupt vectors replay at unmask (the {!Machine} mask model), so a
   queued tick re-preempts promptly once the core returns. *)
let on_core_steal t cpu ~duration =
  cpu.stolen_until <- max cpu.stolen_until (now t + duration);
  steal_time ~stall:true t cpu duration;
  cpu.last_sched <- max cpu.last_sched cpu.stolen_until

(* ---- construction -------------------------------------------------------- *)

let register_kthread t app_id core =
  let kt = Kmod.park_on_cpu t.kmod ~app:app_id ~core in
  Hashtbl.replace t.kthreads (app_id, core) kt;
  let cpu = cpu_of t core in
  let ctx = Kmod.uintr_ctx kt in
  Machine.uintr_register_handler ctx ~uinv:Vectors.uintr_notification
    (uintr_handler t cpu ctx);
  if t.preemption then begin
    (* §3.2 timer delegation: UINV <- timer vector, SN <- 1 (kernel module),
       then prime the PIR with a suppressed self-SENDUIPI so the first
       hardware timer interrupt is recognised in user space. *)
    Kmod.timer_enable t.kmod kt;
    Machine.senduipi t.machine ~src_core:core ctx ~uvec:Vectors.uvec_timer
  end;
  kt

let create machine kmod ~cores ?(timer_hz = 100_000) ?(preemption = true) ?park
    ?watchdog ctor =
  if cores = [] then invalid_arg "Percpu.create: no cores";
  (match watchdog with
  | Some bound when bound <= 0 ->
      invalid_arg "Percpu.create: watchdog bound must be positive"
  | Some _ | None -> ());
  let cores_arr = Array.of_list cores in
  let cpus =
    Array.map
      (fun core_id ->
        {
          core_id;
          current = None;
          completion = None;
          busy_from = 0;
          active_app = 0;
          kick_pending = false;
          parked = false;
          idle_gen = 0;
          last_sched = 0;
          stolen_until = 0;
        })
      cores_arr
  in
  let t =
    {
      machine;
      engine = Machine.engine machine;
      kmod;
      cores = cores_arr;
      cpus;
      by_core = Hashtbl.create 64;
      kthreads = Hashtbl.create 64;
      apps = [];
      daemon = App.daemon ();
      policy = Sched_ops.null_instance;
      probe = { Sched_ops.queued = (fun () -> 0); oldest_wait = (fun () -> 0) };
      be_app = None;
      be_queue = Runqueue.create ();
      be_allowance = List.length cores;
      allocator = None;
      timer_hz;
      preemption;
      park;
      watchdog;
      rescue_detect = Histogram.create ();
      wakeups = Histogram.create ();
      queue_depth = Timeseries.create ();
      switches = 0;
      app_switches = 0;
      preempts = 0;
      be_preempts = 0;
      rescues = 0;
      deadline_drops = 0;
      ticks = 0;
      rr_spawn = 0;
      uvec_handlers = Hashtbl.create 8;
      trace = None;
    }
  in
  Array.iter (fun cpu -> Hashtbl.replace t.by_core cpu.core_id cpu) cpus;
  let policy, probe =
    Sched_ops.instrument
      ~now:(fun () -> now t)
      ~on_change:(fun n -> Timeseries.record t.queue_depth ~at:(now t) n)
      (ctor (view t))
  in
  t.policy <- policy;
  t.probe <- probe;
  (* The daemon occupies every isolated core first (§4.1). *)
  Array.iter
    (fun core ->
      let kt = register_kthread t 0 core in
      ignore (Kmod.activate kmod kt))
    cores_arr;
  if preemption then
    Array.iter
      (fun core -> ignore (Kmod.timer_set_hz kmod ~core ~hz:timer_hz))
      cores_arr;
  (* React to host-kernel core steals (lib/fault's imperfect isolation). *)
  Array.iter
    (fun cpu ->
      Kmod.on_steal kmod ~core:cpu.core_id (fun ~duration ->
          on_core_steal t cpu ~duration))
    t.cpus;
  (match watchdog with
  | Some bound ->
      (* Scan at half the bound so a violation is caught within ~1.5x. *)
      Engine.every t.engine ~period:(max 1 (bound / 2)) (fun () ->
          watchdog_scan t ~bound;
          true)
  | None -> ());
  t

let create_app t ~name =
  let app = App.create ~name in
  t.apps <- app :: t.apps;
  Array.iter (fun core -> ignore (register_kthread t app.App.id core)) t.cores;
  app

(* ---- core allocation ----------------------------------------------------- *)

(* Change how many cores BE may occupy.  Shrinking preempts the excess BE
   cores as if the daemon sent them preemption user IPIs (receive cost
   charged, then the next LC dispatch pays {!Kmod.switch_to}).  Growing
   kicks idle cores so they pick BE work up. *)
let set_be_allowance t n =
  let old = t.be_allowance in
  t.be_allowance <- n;
  if n < old then begin
    let excess = ref (be_occupancy t - n) in
    Array.iter
      (fun cpu ->
        if !excess > 0 then
          match cpu.current with
          | Some task when is_be t task && cpu.completion <> None ->
              steal_time t cpu (Costs.uipi_receive_ns ~cross_numa:false);
              preempt_current t cpu;
              decr excess
          | _ -> ())
      t.cpus
  end
  else if n > old && not (Runqueue.is_empty t.be_queue) then
    Array.iter (fun cpu -> if cpu.current = None then kick t cpu) t.cpus

(* Busy nanoseconds including the in-flight segment of running cores, so
   the allocator's utilization sample does not lag long-running tasks. *)
let in_flight_busy t ~matches =
  Array.fold_left
    (fun acc cpu ->
      match cpu.current with
      | Some task when matches task.Task.app -> acc + max 0 (now t - cpu.busy_from)
      | _ -> acc)
    0 t.cpus

let lc_busy_ns t =
  let be_id = match t.be_app with Some app -> app.App.id | None -> -1 in
  let recorded =
    List.fold_left
      (fun acc (a : App.t) -> if a.App.id = be_id then acc else acc + a.App.busy_ns)
      t.daemon.App.busy_ns t.apps
  in
  recorded + in_flight_busy t ~matches:(fun id -> id <> be_id)

let be_busy_ns t (app : App.t) =
  app.App.busy_ns + in_flight_busy t ~matches:(fun id -> id = app.App.id)

let attach_be_app t ?alloc app ~chunk ~workers =
  if t.be_app <> None then invalid_arg "Percpu.attach_be_app: BE app already set";
  if not (List.exists (fun a -> a == app) t.apps) then
    invalid_arg "Percpu.attach_be_app: app not created by this runtime";
  let cfg = match alloc with Some a -> a | None -> Allocator.default_config () in
  t.be_app <- Some app;
  for i = 1 to workers do
    (* A batch worker is an endless sequence of compute chunks, yielding
       between chunks so reclaimed cores come back promptly. *)
    let rec loop () = Coro.Compute (chunk, fun () -> Coro.Yield loop) in
    let task =
      Task.create ~app:app.App.id ~name:(Printf.sprintf "be-%d" i) (loop ())
    in
    app.App.spawned <- app.App.spawned + 1;
    app.App.tasks_alive <- app.App.tasks_alive + 1;
    Runqueue.push_tail t.be_queue task
  done;
  let total = Array.length t.cpus in
  let burst = min (Option.value cfg.Allocator.be_burstable ~default:total) total in
  let guar = min (max 0 cfg.Allocator.be_guaranteed) burst in
  t.be_allowance <- burst;
  let on_event (ev : Allocator.event) =
    let kind =
      match ev.Allocator.action with
      | Allocator.Granted -> Trace.Core_grant
      | Allocator.Reclaimed | Allocator.Yielded -> Trace.Core_reclaim
      | Allocator.Degraded -> Trace.Alloc_degrade
      | Allocator.Recovered -> Trace.Alloc_recover
    in
    trace_instant t ~core:t.cores.(0) kind
      (Printf.sprintf "%s=%d" ev.Allocator.app_name ev.Allocator.granted)
  in
  let alloc =
    Allocator.create ~engine:t.engine ~policy:cfg.Allocator.policy
      ~interval:cfg.Allocator.interval ~total_cores:total ~on_event
      ?degrade_after:cfg.Allocator.degrade_after ()
  in
  Allocator.register alloc ~app:0 ~name:"lc" ~kind:Alloc_policy.Lc
    ~bounds:{ Allocator.guaranteed = 0; burstable = total }
    ~initial:(total - burst)
    ~sample:(fun () ->
      {
        Allocator.runq_len = t.probe.Sched_ops.queued ();
        oldest_delay = t.probe.Sched_ops.oldest_wait ();
        busy_ns = lc_busy_ns t;
      })
    ~apply:(fun ~granted:_ ~delta:_ -> 0);
  Allocator.register alloc ~app:app.App.id ~name:app.App.name
    ~kind:Alloc_policy.Be
    ~bounds:{ Allocator.guaranteed = guar; burstable = burst }
    ~initial:burst
    ~sample:(fun () ->
      {
        Allocator.runq_len = Runqueue.length t.be_queue;
        oldest_delay = 0;
        busy_ns = be_busy_ns t app;
      })
    ~apply:(fun ~granted ~delta ->
      set_be_allowance t granted;
      (* Moving a core between applications costs an inter-application
         switch at the next dispatch on that core (§5.4); account it on
         the BE side only so each move is charged once. *)
      Costs.app_switch_ns * abs delta);
  Allocator.start alloc;
  t.allocator <- Some alloc;
  Array.iter (fun cpu -> if cpu.current = None then kick t cpu) t.cpus

let allocator t = t.allocator
let be_preemptions t = t.be_preempts

let pick_spawn_cpu t =
  match Sched_ops.pick_idle (view t) with
  | Some core -> core
  | None ->
      let core = t.cores.(t.rr_spawn mod Array.length t.cores) in
      t.rr_spawn <- t.rr_spawn + 1;
      core

(* ---- deadlines ----------------------------------------------------------- *)

let deadline_expired t (task : Task.t) ~on_drop =
  let app = find_app t task.Task.app in
  app.App.tasks_alive <- app.App.tasks_alive - 1;
  Summary.record_drop app.App.summary;
  t.deadline_drops <- t.deadline_drops + 1;
  trace_instant t ~core:(max 0 task.Task.last_core) Trace.Deadline_drop
    task.Task.name;
  match on_drop with Some f -> f task | None -> ()

let kill t ?on_drop (task : Task.t) =
  if not task.Task.killed then
    match task.Task.state with
    | Task.Exited -> ()
    | Task.Running -> (
        match
          Array.find_opt
            (fun cpu ->
              match cpu.current with Some cur -> cur == task | None -> false)
            t.cpus
        with
        | Some cpu ->
            (match cpu.completion with
            | Some h ->
                Eventq.cancel h;
                cpu.completion <- None
            | None -> ());
            task.Task.killed <- true;
            task.Task.state <- Task.Exited;
            account t cpu;
            cpu.current <- None;
            t.policy.task_terminate task;
            deadline_expired t task ~on_drop;
            schedule t cpu ~prev:(Some task)
        | None -> ())
    | Task.Runnable ->
        (* Somewhere in a runqueue: account the drop now, discard lazily at
           the next dequeue (see [schedule]). *)
        task.Task.killed <- true;
        deadline_expired t task ~on_drop
    | Task.Blocked ->
        task.Task.killed <- true;
        task.Task.state <- Task.Exited;
        t.policy.task_terminate task;
        deadline_expired t task ~on_drop

let spawn t app ~name ?cpu ?arrival ?service ?(record = true) ?deadline ?on_drop
    body =
  let arrival = match arrival with Some a -> a | None -> now t in
  let service = match service with Some s -> s | None -> 0 in
  let on_exit =
    if record then
      Some
        (fun (task : Task.t) ->
          if task.Task.service > 0 then begin
            Summary.record_request app.App.summary ~arrival:task.arrival
              ~completion:(now t) ~service:task.service;
            Attribution.record app.App.attribution
              ~queueing:task.Task.obs_queued_ns
              ~overhead:task.Task.obs_overhead_ns ~stall:task.Task.obs_stall_ns
              ~response:(now t - task.Task.obs_start)
              ~declared:task.Task.service
          end)
    else None
  in
  let task = Task.create ~app:app.App.id ~name ~arrival ~service ?on_exit body in
  task.Task.obs_start <- now t;
  task.Task.obs_enq_at <- now t;
  app.App.spawned <- app.App.spawned + 1;
  app.App.tasks_alive <- app.App.tasks_alive + 1;
  let target = match cpu with Some c -> c | None -> pick_spawn_cpu t in
  task.last_core <- target;
  t.policy.task_init task;
  t.policy.task_enqueue ~cpu:target ~reason:Sched_ops.Enq_new task;
  if is_idle t ~core:target then kick_core t target else kick_some_idle t;
  (match deadline with
  | Some d ->
      if d <= 0 then invalid_arg "Percpu.spawn: deadline must be positive";
      ignore (Engine.after t.engine d (fun () -> kill t ?on_drop task))
  | None -> ());
  task

(* §6 "Blocking events": the running task hits a page fault (or a blocking
   syscall).  The userfaultfd-style monitor blocks the task and lets the
   scheduler run other work — possibly another application's — on the core
   for the fault's duration, without violating the Single Binding Rule
   (the kthread stays bound; only the user thread sleeps). *)
let rec fault_current t ~core ~duration =
  if duration <= 0 then invalid_arg "Percpu.fault_current: duration must be positive";
  let cpu = cpu_of t core in
  match (cpu.current, cpu.completion) with
  | Some task, Some h ->
      Eventq.cancel h;
      cpu.completion <- None;
      let remaining = max 0 (task.segment_end - now t) in
      task.body <- Coro.Compute (remaining, task.cont);
      task.state <- Task.Blocked;
      account t cpu;
      cpu.current <- None;
      task.Task.obs_block_at <- now t;
      (* BE tasks live outside the LC policy's runqueues; telling the
         policy about one would leak it into LC dispatch at wakeup. *)
      if not (is_be t task) then t.policy.task_block ~cpu:core task;
      trace_instant t ~core Trace.Fault task.Task.name;
      ignore (Engine.after t.engine duration (fun () -> wakeup_task t task));
      schedule t cpu ~prev:(Some task);
      true
  | _ -> false

and wakeup_task t ?waker_cpu task =
  match task.Task.state with
  | Task.Blocked ->
      task.Task.state <- Task.Runnable;
      task.Task.resuming <- true;
      task.Task.wake_time <- Some (now t);
      task.Task.obs_stall_ns <-
        task.Task.obs_stall_ns + max 0 (now t - task.Task.obs_block_at);
      task.Task.obs_enq_at <- now t;
      trace_instant t ~core:task.Task.last_core Trace.Wakeup task.Task.name;
      if is_be t task then begin
        (* Back to the BE queue, never the LC policy's runqueues. *)
        Runqueue.push_tail t.be_queue task;
        if is_idle t ~core:task.Task.last_core then
          kick_core t task.Task.last_core
        else kick_some_idle t
      end
      else
        let waker_cpu =
          match waker_cpu with Some c when c >= 0 -> c | _ -> task.Task.last_core
        in
        let target = t.policy.task_wakeup ~waker_cpu task in
        if is_idle t ~core:target then kick_core t target else kick_some_idle t
  | Task.Running | Task.Runnable -> task.Task.pending_wake <- true
  | Task.Exited -> ()

let wakeup t ?(waker_cpu = -1) (task : Task.t) = wakeup_task t ~waker_cpu task

(* A dedicated core emulating a timer by broadcasting user IPIs to every
   worker core (the "utimer" of §5.3/§5.4).  Needs [preemption:false] so
   the receiver contexts keep the plain notification vector. *)
let start_utimer t ~src_core ~hz =
  if hz <= 0 then invalid_arg "Percpu.start_utimer: hz must be positive";
  let period = max 1 (1_000_000_000 / hz) in
  Engine.every t.engine ~period (fun () ->
      Array.iter
        (fun dst_core ->
          match Machine.uintr_installed t.machine ~core:dst_core with
          | Some ctx ->
              Machine.senduipi t.machine ~src_core ctx ~uvec:Vectors.uvec_preempt
          | None -> ())
        t.cores;
      true)

let register_uvec t ~uvec handler =
  if uvec = Vectors.uvec_timer || uvec = Vectors.uvec_preempt then
    invalid_arg "Percpu.register_uvec: reserved uvec";
  Hashtbl.replace t.uvec_handlers uvec handler

let preempt_core t ~src_core ~dst_core =
  match Machine.uintr_installed t.machine ~core:dst_core with
  | Some ctx -> Machine.senduipi t.machine ~src_core ctx ~uvec:Vectors.uvec_preempt
  | None -> ()

let current t ~core = (cpu_of t core).current
let wakeup_hist t = t.wakeups
let queue_depth_series t = t.queue_depth
let task_switches t = t.switches
let app_switches t = t.app_switches
let preemptions t = t.preempts
let timer_ticks t = t.ticks
let watchdog_rescues t = t.rescues
let rescue_detection t = t.rescue_detect
let deadline_drops t = t.deadline_drops

let total_busy_ns t =
  List.fold_left (fun acc app -> acc + app.App.busy_ns) t.daemon.App.busy_ns t.apps

let apps t = t.apps
let set_trace t trace = t.trace <- Some trace

(* Pull-based registration: every closure reads existing state at snapshot
   time, so attaching a registry cannot perturb the simulation. *)
let register_metrics t ?(labels = []) reg =
  let c name help read = Registry.counter reg ~help ~labels name read in
  c "skyloft_percpu_task_switches_total" "Intra-application task switches"
    (fun () -> t.switches);
  c "skyloft_percpu_app_switches_total"
    "Cross-application kthread switches through the kernel module" (fun () ->
      t.app_switches);
  c "skyloft_percpu_preemptions_total" "Tasks preempted off their core"
    (fun () -> t.preempts);
  c "skyloft_percpu_be_preemptions_total" "Best-effort tasks preempted"
    (fun () -> t.be_preempts);
  c "skyloft_percpu_timer_ticks_total" "User-space timer interrupts handled"
    (fun () -> t.ticks);
  c "skyloft_percpu_watchdog_rescues_total" "Stuck cores rescued" (fun () ->
      t.rescues);
  c "skyloft_percpu_deadline_drops_total" "Tasks killed at their deadline"
    (fun () -> t.deadline_drops);
  Registry.gauge reg ~labels "skyloft_percpu_be_allowance"
    ~help:"Cores the best-effort application may occupy" (fun () ->
      float_of_int t.be_allowance);
  Registry.histogram reg ~labels "skyloft_percpu_wakeup_latency_ns"
    ~help:"Wakeup-to-dispatch latency" t.wakeups;
  Registry.histogram reg ~labels "skyloft_percpu_rescue_detection_ns"
    ~help:"Watchdog detection latency past the bound" t.rescue_detect;
  Registry.series reg ~labels "skyloft_percpu_queue_depth"
    ~help:"LC policy queue length" t.queue_depth;
  List.iter
    (fun (app : App.t) ->
      let al = labels @ [ Registry.app app.App.name ] in
      Registry.counter reg ~labels:al "skyloft_app_spawned_total"
        ~help:"Tasks spawned" (fun () -> app.App.spawned);
      Registry.counter reg ~labels:al "skyloft_app_completed_total"
        ~help:"Tasks completed" (fun () -> app.App.completed);
      Registry.counter reg ~labels:al "skyloft_app_busy_ns_total"
        ~help:"Accumulated worker CPU time" (fun () -> app.App.busy_ns);
      Registry.histogram reg ~labels:al "skyloft_app_response_ns"
        ~help:"Request response time" (Summary.latency app.App.summary);
      Attribution.register reg ~labels:al app.App.attribution)
    t.apps
