module Time = Skyloft_sim.Time
module Coro = Skyloft_sim.Coro
module Engine = Skyloft_sim.Engine
module Eventq = Skyloft_sim.Eventq
module Machine = Skyloft_hw.Machine
module Costs = Skyloft_hw.Costs
module Vectors = Skyloft_hw.Vectors
module Kmod = Skyloft_kernel.Kmod
module Histogram = Skyloft_stats.Histogram
module Trace = Skyloft_stats.Trace
module Timeseries = Skyloft_stats.Timeseries
module Allocator = Skyloft_alloc.Allocator
module Registry = Skyloft_obs.Registry
module Rc = Runtime_core

(* The per-CPU runtime is Runtime_core plus its DISPATCH substrate:
   synchronous per-core scheduling driven by delegated timer interrupts
   (Listing 1), kicks for idle cores, Shenango-style parking, and the
   per-core watchdog.  Everything else — lifecycle, accounting, BE
   occupancy, deadlines, allocator, metrics — lives in the core. *)

type cpu = {
  ex : Rc.exec;
  mutable kick_pending : bool;
  mutable parked : bool;  (* yielded to the kernel while idle (Shenango) *)
  mutable idle_gen : int;  (* invalidates stale park timers *)
  mutable last_sched : Time.t;  (* last scheduling point (watchdog) *)
}

type t = {
  rc : Rc.t;
  cores : int array;
  cpus : cpu array;
  by_core : (int, cpu) Hashtbl.t;
  timer_hz : int;
  preemption : bool;
  park : (Time.t * Time.t) option;  (* (idle_after, resume_cost) *)
  mutable ticks : int;
  mutable rr_spawn : int;  (* round-robin spawn placement cursor *)
  uvec_handlers : (int, int -> unit) Hashtbl.t;
      (* user-delegated device interrupts: uvec -> handler (gets core id) *)
}

let now t = Rc.now t.rc
let cpu_of t core = Hashtbl.find t.by_core core

let is_idle t ~core =
  match Hashtbl.find_opt t.by_core core with
  | Some cpu -> cpu.ex.Rc.current = None && not (Rc.unit_capped t.rc cpu.ex)
  | None -> false

let view t = Rc.view t.rc

(* ---- dispatch & the main loop ------------------------------------------ *)

let rec schedule t cpu ~prev =
  let rc = t.rc in
  if Rc.unit_capped rc cpu.ex then begin
    (* The broker took this core: it may not pick anything up.  Queued
       work is recovered by allowed cores' steals and kicks. *)
    cpu.ex.Rc.current <- None;
    cpu.idle_gen <- cpu.idle_gen + 1
  end
  else
  let pick () =
    (* Cores inside the allocator's current BE grant belong to BE — they
       dispatch BE work ahead of LC so a guaranteed core cannot be starved
       by LC backlog.  LC congestion claws cores back through the
       allocator shrinking the allowance, not by out-queueing BE here. *)
    let be_next =
      if Rc.be_occupancy rc < rc.Rc.be_allowance then
        Runqueue.pop_head rc.Rc.be_queue
      else None
    in
    match be_next with
    | Some task -> Some task
    | None -> (
        match rc.Rc.policy.task_dequeue ~cpu:cpu.ex.Rc.exec_core with
        | Some task -> Some task
        | None -> rc.Rc.policy.sched_balance ~cpu:cpu.ex.Rc.exec_core)
  in
  match Rc.next_live rc pick with
  | None ->
      cpu.ex.Rc.current <- None;
      cpu.idle_gen <- cpu.idle_gen + 1;
      (* Shenango-style runtimes return idle cores to the kernel; waking a
         parked core later costs a kernel wakeup. *)
      (match t.park with
      | Some (idle_after, _) ->
          let gen = cpu.idle_gen in
          ignore
            (Engine.after rc.Rc.engine idle_after (fun () ->
                 if cpu.ex.Rc.current = None && cpu.idle_gen = gen then
                   cpu.parked <- true))
      | None -> ())
  | Some task ->
      let unpark_cost =
        if cpu.parked then begin
          cpu.parked <- false;
          match t.park with Some (_, resume_cost) -> resume_cost | None -> 0
        end
        else 0
      in
      let same = match prev with Some p -> p == task | None -> false in
      let cost =
        if same then 0
        else if task.Task.app = cpu.ex.Rc.active_app then begin
          rc.Rc.switches <- rc.Rc.switches + 1;
          Costs.uthread_yield_ns
        end
        else Rc.app_switch rc cpu.ex task
      in
      dispatch t cpu task ~switch_cost:(cost + unpark_cost)

and dispatch t cpu (task : Task.t) ~switch_cost =
  cpu.last_sched <- now t;
  ignore (Rc.begin_run t.rc cpu.ex task ~switch_cost);
  Rc.run_after_switch t.rc cpu.ex task ~switch_cost

(* ---- preemption --------------------------------------------------------- *)

let preempt_current t cpu =
  match Rc.depose t.rc cpu.ex ~overhead:0 with
  | Some task ->
      t.rc.Rc.preempts <- t.rc.Rc.preempts + 1;
      if Rc.is_be t.rc task then begin
        t.rc.Rc.be_preempts <- t.rc.Rc.be_preempts + 1;
        Runqueue.push_head t.rc.Rc.be_queue task
      end
      else
        t.rc.Rc.policy.task_enqueue ~cpu:cpu.ex.Rc.exec_core
          ~reason:Sched_ops.Enq_preempted task;
      schedule t cpu ~prev:(Some task)
  | None -> ()

(* Interrupt handling steals CPU time from the running segment.  The cost
   is attributed to the victim task as scheduling overhead — or as fault
   stall when [stall] (host-kernel core steals, where the core vanishes
   rather than doing scheduling work). *)
let steal_time ?(stall = false) t cpu cost =
  match cpu.ex.Rc.current with
  | Some task when not (Eventq.is_null cpu.ex.Rc.completion) ->
      Engine.cancel t.rc.Rc.engine cpu.ex.Rc.completion;
      task.Task.segment_end <- task.Task.segment_end + cost;
      if stall then task.Task.obs_stall_ns <- task.Task.obs_stall_ns + cost
      else task.Task.obs_overhead_ns <- task.Task.obs_overhead_ns + cost;
      Rc.arm_completion t.rc cpu.ex task
  | _ -> ()

let kick t cpu =
  if cpu.ex.Rc.current = None && not cpu.kick_pending then begin
    cpu.kick_pending <- true;
    (* A stolen core cannot react until the host kernel hands it back. *)
    let delay = max 0 (cpu.ex.Rc.stolen_until - now t) in
    ignore
      (Engine.after t.rc.Rc.engine delay (fun () ->
           cpu.kick_pending <- false;
           if cpu.ex.Rc.current = None then schedule t cpu ~prev:None))
  end

let kick_core t core = kick t (cpu_of t core)

(* After enqueueing work, make sure some idle core will notice it. *)
let kick_some_idle t =
  match Sched_ops.pick_idle (view t) with Some core -> kick_core t core | None -> ()

(* Evict whatever runs on a broker-capped core: receive cost, depose, then
   requeue on an allowed core's queue — never the capped core's own, since
   with the core gone nothing local would drain it — and wake an allowed
   idle core to pick the refugee up. *)
let evict_capped t cpu =
  match cpu.ex.Rc.current with
  | Some _ when not (Eventq.is_null cpu.ex.Rc.completion) ->
      steal_time t cpu (Costs.uipi_receive_ns ~cross_numa:false);
      (match Rc.depose t.rc cpu.ex ~overhead:0 with
      | Some task ->
          t.rc.Rc.preempts <- t.rc.Rc.preempts + 1;
          if Rc.is_be t.rc task then begin
            t.rc.Rc.be_preempts <- t.rc.Rc.be_preempts + 1;
            Runqueue.push_head t.rc.Rc.be_queue task
          end
          else
            t.rc.Rc.policy.task_enqueue ~cpu:t.cores.(0)
              ~reason:Sched_ops.Enq_preempted task;
          schedule t cpu ~prev:(Some task);
          kick_some_idle t
      | None -> ())
  | _ -> ()

(* ---- the global user-interrupt handler (Listing 1) ---------------------- *)

(* Timer-tick scheduling decision.  BE tasks live outside the LC policy:
   the tick preempts them when the allowance shrank below the cores BE
   currently occupies.  LC congestion is not checked directly here — the
   allocator reacts to it within one check interval by shrinking the
   allowance (and never below the BE app's guaranteed cores), so the
   allowance is the single arbiter of BE occupancy. *)
let tick_decision t cpu =
  cpu.last_sched <- now t;
  if Rc.unit_capped t.rc cpu.ex then
    (* Broker-capped core: the tick only enforces the cap (backstop for a
       task that slipped in around a shrink); it never kicks or picks. *)
    evict_capped t cpu
  else
    match cpu.ex.Rc.current with
  | Some task when not (Eventq.is_null cpu.ex.Rc.completion) ->
      if Rc.is_be t.rc task then begin
        if Rc.be_occupancy t.rc > t.rc.Rc.be_allowance then preempt_current t cpu
      end
      else if t.rc.Rc.policy.sched_timer_tick ~cpu:cpu.ex.Rc.exec_core task then
        preempt_current t cpu
  | _ -> kick t cpu

let on_tick t cpu =
  t.ticks <- t.ticks + 1;
  steal_time t cpu (Costs.user_timer_receive_ns + Costs.senduipi_sn_ns);
  tick_decision t cpu

let on_preempt_ipi t cpu =
  steal_time t cpu (Costs.uipi_receive_ns ~cross_numa:false);
  tick_decision t cpu

let uintr_handler t cpu ctx ~uvec =
  if uvec = Vectors.uvec_timer then begin
    (* Reset UPID.PIR so the next hardware timer interrupt is recognised
       (Listing 1 line 5) — only on a timer-delegated context (SN set). *)
    if Machine.uintr_sn ctx then
      Machine.senduipi t.rc.Rc.machine ~src_core:cpu.ex.Rc.exec_core ctx
        ~uvec:Vectors.uvec_timer;
    on_tick t cpu
  end
  else if uvec = Vectors.uvec_preempt then on_preempt_ipi t cpu
  else
    (* Delegated peripheral interrupt (§6): charge the receive overhead and
       run the registered driver handler in user space. *)
    match Hashtbl.find_opt t.uvec_handlers uvec with
    | Some handler ->
        steal_time t cpu (Costs.uipi_receive_ns ~cross_numa:false);
        handler cpu.ex.Rc.exec_core
    | None -> ()

(* ---- watchdog recovery --------------------------------------------------- *)

(* No scheduling point on this core within the bound: the timer delegation
   was lost (dropped notification, PIR never re-primed) or the current task
   is stuck.  The rescue is what the daemon would do from a healthy core —
   a rescue user IPI (receive cost charged), the LAPIC timer re-armed and
   the PIR re-primed so future ticks are recognised again, then a forced
   preemption so queued work gets the core. *)
let rescue t cpu ~bound =
  Rc.rescued t.rc cpu.ex ~late:(max 0 (now t - cpu.last_sched - bound));
  steal_time t cpu (Costs.uipi_receive_ns ~cross_numa:false);
  if t.preemption then begin
    ignore
      (Kmod.timer_set_hz t.rc.Rc.kmod ~core:cpu.ex.Rc.exec_core ~hz:t.timer_hz);
    match Machine.uintr_installed t.rc.Rc.machine ~core:cpu.ex.Rc.exec_core with
    | Some ctx when Machine.uintr_sn ctx ->
        Machine.senduipi t.rc.Rc.machine ~src_core:cpu.ex.Rc.exec_core ctx
          ~uvec:Vectors.uvec_timer
    | Some _ | None -> ()
  end;
  preempt_current t cpu;
  cpu.last_sched <- now t

let watchdog_scan t ~bound =
  Array.iter
    (fun cpu ->
      match cpu.ex.Rc.current with
      | Some _
        when now t >= cpu.ex.Rc.stolen_until
             && (not
                   (Machine.interrupts_masked
                      (Machine.core t.rc.Rc.machine cpu.ex.Rc.exec_core)))
             && now t - cpu.last_sched > bound ->
          rescue t cpu ~bound
      | _ -> ())
    t.cpus

(* The host kernel stole this core: the running segment makes no progress
   for the outage, and wake-up kicks defer until hand-back.  Deferred
   interrupt vectors replay at unmask (the {!Machine} mask model), so a
   queued tick re-preempts promptly once the core returns. *)
let on_core_steal t cpu ~duration =
  cpu.ex.Rc.stolen_until <- max cpu.ex.Rc.stolen_until (now t + duration);
  steal_time ~stall:true t cpu duration;
  cpu.last_sched <- max cpu.last_sched cpu.ex.Rc.stolen_until

(* ---- construction -------------------------------------------------------- *)

let register_kthread t app_id core =
  let kt = Rc.add_kthread t.rc ~app:app_id ~core in
  let cpu = cpu_of t core in
  let ctx = Kmod.uintr_ctx kt in
  Machine.uintr_register_handler ctx ~uinv:Vectors.uintr_notification
    (uintr_handler t cpu ctx);
  if t.preemption then begin
    (* §3.2 timer delegation: UINV <- timer vector, SN <- 1 (kernel module),
       then prime the PIR with a suppressed self-SENDUIPI so the first
       hardware timer interrupt is recognised in user space. *)
    Kmod.timer_enable t.rc.Rc.kmod kt;
    Machine.senduipi t.rc.Rc.machine ~src_core:core ctx ~uvec:Vectors.uvec_timer
  end;
  kt

let create machine kmod ~cores ?(timer_hz = 100_000) ?(preemption = true) ?park
    ?watchdog ctor =
  if cores = [] then invalid_arg "Percpu.create: no cores";
  (match watchdog with
  | Some bound when bound <= 0 ->
      invalid_arg "Percpu.create: watchdog bound must be positive"
  | Some _ | None -> ());
  let cores_arr = Array.of_list cores in
  let cpus =
    Array.map
      (fun core_id ->
        {
          ex = Rc.make_exec core_id;
          kick_pending = false;
          parked = false;
          idle_gen = 0;
          last_sched = 0;
        })
      cores_arr
  in
  let t =
    {
      rc = Rc.create machine kmod ~record_wakeups:true ~trace_app_switches:true;
      cores = cores_arr;
      cpus;
      by_core = Hashtbl.create 64;
      timer_hz;
      preemption;
      park;
      ticks = 0;
      rr_spawn = 0;
      uvec_handlers = Hashtbl.create 8;
    }
  in
  Array.iter (fun cpu -> Hashtbl.replace t.by_core cpu.ex.Rc.exec_core cpu) cpus;
  Rc.install_dispatch t.rc
    {
      Rc.d_name = "percpu";
      d_units = Array.map (fun cpu -> cpu.ex) cpus;
      d_enqueue_cpu = (fun ex -> ex.Rc.exec_core);
      d_incoming_app = (fun _ -> -1);
      d_released = (fun _ -> ());
      d_reschedule =
        (fun ex ~prev -> schedule t (cpu_of t ex.Rc.exec_core) ~prev);
    };
  Rc.install_policy t.rc ctor;
  (* The daemon occupies every isolated core first (§4.1). *)
  Array.iter
    (fun core ->
      let kt = register_kthread t 0 core in
      ignore (Kmod.activate kmod kt))
    cores_arr;
  if preemption then
    Array.iter
      (fun core -> ignore (Kmod.timer_set_hz kmod ~core ~hz:timer_hz))
      cores_arr;
  (* React to host-kernel core steals (lib/fault's imperfect isolation). *)
  Array.iter
    (fun cpu ->
      Kmod.on_steal kmod ~core:cpu.ex.Rc.exec_core (fun ~duration ->
          on_core_steal t cpu ~duration))
    t.cpus;
  Rc.start_watchdog t.rc ~bound:watchdog (fun ~bound -> watchdog_scan t ~bound);
  t

let create_app t ~name =
  let app = Rc.new_app t.rc ~name in
  Array.iter (fun core -> ignore (register_kthread t app.App.id core)) t.cores;
  app

(* ---- core allocation ----------------------------------------------------- *)

(* Change how many cores BE may occupy.  Shrinking preempts the excess BE
   cores as if the daemon sent them preemption user IPIs (receive cost
   charged, then the next LC dispatch pays {!Kmod.switch_to}).  Growing
   kicks idle cores so they pick BE work up. *)
let set_be_allowance t n =
  let old = t.rc.Rc.be_allowance in
  t.rc.Rc.be_allowance <- n;
  if n < old then begin
    let excess = ref (Rc.be_occupancy t.rc - n) in
    Array.iter
      (fun cpu ->
        if !excess > 0 then
          match cpu.ex.Rc.current with
          | Some task
            when Rc.is_be t.rc task
                 && not (Eventq.is_null cpu.ex.Rc.completion) ->
              steal_time t cpu (Costs.uipi_receive_ns ~cross_numa:false);
              preempt_current t cpu;
              decr excess
          | _ -> ())
      t.cpus
  end
  else if n > old && not (Runqueue.is_empty t.rc.Rc.be_queue) then
    Array.iter (fun cpu -> if cpu.ex.Rc.current = None then kick t cpu) t.cpus

(* Change how many cores this runtime may occupy at all — the machine-level
   broker's reclaim/grant muscle, mirroring {!set_be_allowance} one level
   up.  Shrinking evicts the newly capped units (receive cost charged,
   refugees requeued on an allowed core); growing kicks the units the
   broker just handed back. *)
let set_core_allowance t n =
  let n = max 0 n in
  let old = t.rc.Rc.core_allowance in
  Rc.set_core_allowance t.rc n;
  if n < old then
    Array.iter
      (fun cpu -> if Rc.unit_capped t.rc cpu.ex then evict_capped t cpu)
      t.cpus
  else if n > old then
    Array.iter
      (fun cpu ->
        if (not (Rc.unit_capped t.rc cpu.ex)) && cpu.ex.Rc.current = None then
          kick t cpu)
      t.cpus

let core_allowance t = t.rc.Rc.core_allowance
let congestion t = Rc.congestion t.rc

let attach_be_app t ?alloc app ~chunk ~workers =
  Rc.spawn_be_workers t.rc app ~chunk ~workers ~who:"Percpu.attach_be_app";
  let cfg = match alloc with Some a -> a | None -> Allocator.default_config () in
  let on_event (ev : Allocator.event) =
    let kind =
      match ev.Allocator.action with
      | Allocator.Granted -> Trace.Core_grant
      | Allocator.Reclaimed | Allocator.Yielded -> Trace.Core_reclaim
      | Allocator.Degraded -> Trace.Alloc_degrade
      | Allocator.Recovered -> Trace.Alloc_recover
    in
    Rc.trace_instant t.rc ~core:t.cores.(0) kind
      (Printf.sprintf "%s=%d" ev.Allocator.app_name ev.Allocator.granted)
  in
  Rc.start_allocator t.rc ~cfg ~be:app ~on_event
    ~set_allowance:(set_be_allowance t);
  Array.iter (fun cpu -> if cpu.ex.Rc.current = None then kick t cpu) t.cpus

let allocator t = t.rc.Rc.allocator
let be_preemptions t = t.rc.Rc.be_preempts

let pick_spawn_cpu t =
  match Sched_ops.pick_idle (view t) with
  | Some core -> core
  | None ->
      let core = t.cores.(t.rr_spawn mod Array.length t.cores) in
      t.rr_spawn <- t.rr_spawn + 1;
      core

(* ---- deadlines ----------------------------------------------------------- *)

let kill t ?on_drop task = Rc.kill t.rc ?on_drop task

let spawn t app ~name ?cpu ?arrival ?service ?(record = true) ?deadline ?on_drop
    body =
  let arrival = match arrival with Some a -> a | None -> now t in
  let service = match service with Some s -> s | None -> 0 in
  let task = Rc.admit t.rc app ~name ~arrival ~service ~record body in
  let target = match cpu with Some c -> c | None -> pick_spawn_cpu t in
  task.Task.last_core <- target;
  t.rc.Rc.policy.task_init task;
  t.rc.Rc.policy.task_enqueue ~cpu:target ~reason:Sched_ops.Enq_new task;
  if is_idle t ~core:target then kick_core t target else kick_some_idle t;
  (match deadline with
  | Some d ->
      Rc.arm_deadline t.rc ?on_drop task ~deadline:d
        ~err:"Percpu.spawn: deadline must be positive"
  | None -> ());
  task

(* §6 "Blocking events": the running task hits a page fault (or a blocking
   syscall).  The userfaultfd-style monitor blocks the task and lets the
   scheduler run other work — possibly another application's — on the core
   for the fault's duration, without violating the Single Binding Rule
   (the kthread stays bound; only the user thread sleeps). *)
let rec fault_current t ~core ~duration =
  if duration <= 0 then invalid_arg "Percpu.fault_current: duration must be positive";
  let cpu = cpu_of t core in
  match cpu.ex.Rc.current with
  | Some task when not (Eventq.is_null cpu.ex.Rc.completion) ->
      Engine.cancel t.rc.Rc.engine cpu.ex.Rc.completion;
      cpu.ex.Rc.completion <- Eventq.null;
      let remaining = max 0 (task.Task.segment_end - now t) in
      task.Task.body <- Coro.Compute (remaining, task.Task.cont);
      task.Task.state <- Task.Blocked;
      Rc.account t.rc cpu.ex;
      cpu.ex.Rc.current <- None;
      task.Task.obs_block_at <- now t;
      (* BE tasks live outside the LC policy's runqueues; telling the
         policy about one would leak it into LC dispatch at wakeup. *)
      if not (Rc.is_be t.rc task) then t.rc.Rc.policy.task_block ~cpu:core task;
      Rc.trace_instant t.rc ~core Trace.Fault task.Task.name;
      ignore (Engine.after t.rc.Rc.engine duration (fun () -> wakeup_task t task));
      schedule t cpu ~prev:(Some task);
      true
  | _ -> false

and wakeup_task t ?waker_cpu task =
  Rc.awaken t.rc task ~place:(fun (task : Task.t) ->
      if Rc.is_be t.rc task then begin
        (* Back to the BE queue, never the LC policy's runqueues. *)
        Runqueue.push_tail t.rc.Rc.be_queue task;
        if is_idle t ~core:task.Task.last_core then
          kick_core t task.Task.last_core
        else kick_some_idle t
      end
      else
        let waker_cpu =
          match waker_cpu with Some c when c >= 0 -> c | _ -> task.Task.last_core
        in
        let target = t.rc.Rc.policy.task_wakeup ~waker_cpu task in
        if is_idle t ~core:target then kick_core t target else kick_some_idle t)

let wakeup t ?(waker_cpu = -1) (task : Task.t) = wakeup_task t ~waker_cpu task

(* A dedicated core emulating a timer by broadcasting user IPIs to every
   worker core (the "utimer" of §5.3/§5.4).  Needs [preemption:false] so
   the receiver contexts keep the plain notification vector. *)
let start_utimer t ~src_core ~hz =
  if hz <= 0 then invalid_arg "Percpu.start_utimer: hz must be positive";
  let period = max 1 (1_000_000_000 / hz) in
  Engine.every t.rc.Rc.engine ~period (fun () ->
      Array.iter
        (fun dst_core ->
          match Machine.uintr_installed t.rc.Rc.machine ~core:dst_core with
          | Some ctx ->
              Machine.senduipi t.rc.Rc.machine ~src_core ctx
                ~uvec:Vectors.uvec_preempt
          | None -> ())
        t.cores;
      true)

let register_uvec t ~uvec handler =
  if uvec = Vectors.uvec_timer || uvec = Vectors.uvec_preempt then
    invalid_arg "Percpu.register_uvec: reserved uvec";
  Hashtbl.replace t.uvec_handlers uvec handler

let preempt_core t ~src_core ~dst_core =
  match Machine.uintr_installed t.rc.Rc.machine ~core:dst_core with
  | Some ctx ->
      Machine.senduipi t.rc.Rc.machine ~src_core ctx ~uvec:Vectors.uvec_preempt
  | None -> ()

let current t ~core = (cpu_of t core).ex.Rc.current

let wakeup_hist t =
  match t.rc.Rc.wakeups with Some h -> h | None -> assert false

let queue_depth_series t = t.rc.Rc.queue_depth
let task_switches t = t.rc.Rc.switches
let app_switches t = t.rc.Rc.app_switches
let preemptions t = t.rc.Rc.preempts
let timer_ticks t = t.ticks
let watchdog_rescues t = t.rc.Rc.rescues
let rescue_detection t = t.rc.Rc.rescue_detect
let deadline_drops t = t.rc.Rc.deadline_drops
let total_busy_ns t = Rc.total_busy_ns t.rc
let apps t = t.rc.Rc.apps
let set_trace t trace = t.rc.Rc.trace <- Some trace

(* Pull-based registration: every closure reads existing state at snapshot
   time, so attaching a registry cannot perturb the simulation. *)
let register_metrics t ?(labels = []) reg =
  let rc = t.rc in
  let c name help read = Registry.counter reg ~help ~labels name read in
  c "skyloft_percpu_task_switches_total" "Intra-application task switches"
    (fun () -> rc.Rc.switches);
  c "skyloft_percpu_app_switches_total"
    "Cross-application kthread switches through the kernel module" (fun () ->
      rc.Rc.app_switches);
  c "skyloft_percpu_preemptions_total" "Tasks preempted off their core"
    (fun () -> rc.Rc.preempts);
  c "skyloft_percpu_be_preemptions_total" "Best-effort tasks preempted"
    (fun () -> rc.Rc.be_preempts);
  c "skyloft_percpu_timer_ticks_total" "User-space timer interrupts handled"
    (fun () -> t.ticks);
  c "skyloft_percpu_watchdog_rescues_total" "Stuck cores rescued" (fun () ->
      rc.Rc.rescues);
  c "skyloft_percpu_deadline_drops_total" "Tasks killed at their deadline"
    (fun () -> rc.Rc.deadline_drops);
  Registry.gauge reg ~labels "skyloft_percpu_be_allowance"
    ~help:"Cores the best-effort application may occupy" (fun () ->
      float_of_int rc.Rc.be_allowance);
  Registry.histogram reg ~labels "skyloft_percpu_wakeup_latency_ns"
    ~help:"Wakeup-to-dispatch latency" (wakeup_hist t);
  Registry.histogram reg ~labels "skyloft_percpu_rescue_detection_ns"
    ~help:"Watchdog detection latency past the bound" rc.Rc.rescue_detect;
  Registry.series reg ~labels "skyloft_percpu_queue_depth"
    ~help:"LC policy queue length" rc.Rc.queue_depth;
  Rc.register_app_metrics rc ~labels reg
