module Time = Skyloft_sim.Time
module Coro = Skyloft_sim.Coro
module Machine = Skyloft_hw.Machine
module Kmod = Skyloft_kernel.Kmod

(** The centralized Skyloft runtime (Figure 2b): a dedicated dispatcher
    core owns a global runqueue, assigns requests to worker cores, and
    preempts over-quantum requests with user IPIs (Shinjuku-style
    processor sharing, §5.2).

    The dispatcher is modelled as a serial resource: every operation
    (assignment, preemption send, congestion check) occupies it for the
    mechanism's cost, so a saturated dispatcher becomes the bottleneck —
    the scalability ceiling the paper attributes to centralized designs.

    The same runtime also hosts the ghOSt and original-Shinjuku baselines
    by swapping the {!mechanism} cost vector: ghOSt pays kernel-transaction
    dispatch costs and kernel-IPI preemption; Shinjuku pays posted
    interrupts.  A best-effort (BE) application can be co-scheduled:
    workers fall back to BE work when the LC queue is empty, and BE cores
    are reclaimed when congestion is detected (Shenango's core-allocation
    policy, §5.2 "Multiple workloads"). *)

(** Cost vector of the preemption/dispatch mechanism. *)
type mechanism = {
  mech_name : string;
  dispatch_cost : Time.t;  (** dispatcher work per assignment decision *)
  preempt_send : Time.t;  (** dispatcher-side send cost *)
  preempt_delivery : Time.t;  (** send-to-handler latency at the worker *)
  preempt_receive : Time.t;  (** worker-side handling overhead *)
  worker_switch : Time.t;  (** worker-side task switch cost *)
}

val skyloft_mechanism : mechanism
(** User IPIs + user-level task switch (Table 6 / Table 7). *)

val shinjuku_mechanism : mechanism
(** Dune posted interrupts: slightly costlier delivery than user IPIs. *)

val ghost_mechanism : mechanism
(** ghOSt: transaction-commit dispatch, kernel-IPI preemption, kernel
    thread switches — the §5.2 explanation of its lower throughput and
    higher low-load tail latency. *)

type t

val create :
  Machine.t ->
  Kmod.t ->
  dispatcher_core:int ->
  worker_cores:int list ->
  quantum:Time.t ->
  ?mechanism:mechanism ->
  ?alloc:Skyloft_alloc.Allocator.config ->
  ?immediate:bool ->
  ?watchdog:Time.t ->
  Sched_ops.ctor ->
  t
(** [quantum <= 0] disables quantum preemption (run-to-completion).

    [alloc] configures the core allocator started by {!attach_be_app}
    (default {!Skyloft_alloc.Allocator.default_config}: Static policy at a
    5 µs interval).  [immediate] (default false) additionally preempts a BE
    worker the moment an LC request cannot be placed, without waiting for
    the next allocator tick.

    [watchdog] arms the recovery watchdog: a periodic scan (twice per
    bound) that (a) fails the dispatcher over to a worker when the serial
    dispatcher is wedged more than a bound into the future (host-kernel
    steal — {!failovers}), and (b) rescues workers still running one task
    a full bound past its expected preemption point, meaning the
    preemption user IPI was lost ({!watchdog_rescues},
    {!rescue_detection}).  Cores inside a {!Kmod.steal_core} outage are
    exempt until hand-back. *)

val create_app : t -> name:string -> App.t

val attach_be_app : t -> App.t -> chunk:Time.t -> workers:int -> unit
(** Give the BE application [workers] batch worker tasks, each an endless
    sequence of [chunk]-sized compute segments, and start the core
    allocator: from here on the configured {!alloc_config} policy decides
    how many cores BE may occupy, charging the §5.4 inter-application
    switch cost for every core moved. *)

val allocator : t -> Skyloft_alloc.Allocator.t option
(** The running core allocator, once {!attach_be_app} has started it. *)

val submit :
  t ->
  App.t ->
  ?service:Time.t ->
  ?record:bool ->
  ?deadline:Time.t ->
  ?on_drop:(Task.t -> unit) ->
  name:string ->
  Coro.t ->
  Task.t
(** Enqueue a latency-critical request; the dispatcher assigns it to a
    worker (preempting BE work if needed).

    [deadline] arms a kill timer [deadline] ns from now: a request that
    has not exited by then is forcibly terminated ({!kill}), counted as a
    deadline drop in the app's summary, and [on_drop] is called — every
    submission is accounted for exactly once. *)

val kill : t -> ?on_drop:(Task.t -> unit) -> Task.t -> unit
(** Forcibly terminate a task wherever it is: running (preempted off its
    worker and discarded), runnable (flagged; discarded at the next
    dequeue), or blocked (never woken).  A no-op on exited or
    already-killed tasks.  Counted in {!deadline_drops} and the app
    summary's drop count. *)

val wakeup : t -> Task.t -> unit
val now : t -> Time.t
val quantum : t -> Time.t
val preemptions : t -> int
val dispatches : t -> int
val queue_length : t -> int
(** Tasks currently waiting in the LC runqueue (excludes running). *)

val worker_busy_ns : t -> int
(** Total busy time across workers (all applications). *)

val be_preemptions : t -> int

val set_core_allowance : t -> int -> unit
(** How many workers this runtime may occupy at all: a machine-level core
    broker's grant.  Allowed workers are the creation-order prefix.
    Shrinking preempts the newly capped workers over the usual IPI
    send/deliver path (an assignment already in flight still runs its
    segment — enforcement at the next scheduling point, like a quantum);
    growing redrives dispatch.  Default [max_int] disables the gate. *)

val core_allowance : t -> int
(** The broker's current grant ([max_int] when unbrokered). *)

val congestion : t -> Skyloft_alloc.Allocator.raw
(** The whole-runtime congestion sample a machine-level broker reads. *)

val watchdog_rescues : t -> int
(** Stuck workers rescued by the watchdog (see {!create}'s [watchdog]). *)

val failovers : t -> int
(** Dispatcher failovers performed by the watchdog. *)

val rescue_detection : t -> Skyloft_stats.Histogram.t
(** Detection latency per worker rescue: time past the allowed bound
    before the scan noticed the stuck worker. *)

val deadline_drops : t -> int
(** Tasks killed by their submit deadline (see {!submit}). *)

val set_trace : t -> Skyloft_stats.Trace.t -> unit
(** Record scheduling activity into the trace: one span per interval a
    task runs on a worker, instants for preemptions, wakeups, recovery
    (watchdog rescues, failovers, deadline drops) and allocator mode
    transitions — the same shape the per-CPU runtime emits, so the
    [lib/obs] trace-analysis passes work on either runtime. *)

val queue_depth_series : t -> Skyloft_stats.Timeseries.t
(** LC policy queue length over time (one sample per change); feed it to
    the Perfetto counter-track export in [lib/obs]. *)

(** [register_metrics t reg] registers this runtime's counters, gauges, and
    queue-depth series (under [skyloft_central_*]) plus every application's
    task counters, response-time histogram, and latency attribution (under
    [skyloft_app_*], labelled with the app name).  Call after the
    applications have been created.  Registration is pull-based and never
    perturbs the simulation. *)
val register_metrics :
  t -> ?labels:Skyloft_obs.Registry.labels -> Skyloft_obs.Registry.t -> unit
