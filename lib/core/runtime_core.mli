module Time = Skyloft_sim.Time
module Coro = Skyloft_sim.Coro
module Engine = Skyloft_sim.Engine
module Eventq = Skyloft_sim.Eventq
module Machine = Skyloft_hw.Machine
module Kmod = Skyloft_kernel.Kmod
module Histogram = Skyloft_stats.Histogram
module Trace = Skyloft_stats.Trace
module Timeseries = Skyloft_stats.Timeseries
module Allocator = Skyloft_alloc.Allocator
module Registry = Skyloft_obs.Registry

(** The shared runtime substrate (the framework claim of Table 2).

    Every Skyloft runtime — per-CPU (Figure 2a), centralized (Figure 2b),
    and the hybrid of both — is the same core: an app table, the task
    lifecycle with latency-attribution stamping, BE occupancy accounting,
    the kernel-module multi-application switch path (§5.4), one trace
    span/instant vocabulary, watchdog bookkeeping, deadline kill timers,
    the allocator's congestion probes, and per-app metrics.  What differs
    is only the {!dispatch} substrate: how a runtime picks, places and
    preempts tasks.  A runtime instantiates the core by building its
    execution units, installing a [dispatch] record over them, and keeping
    for itself nothing but its dispatch mechanics (timer ticks and kicks,
    or the serial dispatcher). *)

(** One execution unit: a worker core's scheduling state.  Runtimes wrap
    it with their own per-unit extras (kick flags, assignment
    generations). *)
type exec = {
  exec_core : int;
  mutable exec_slot : int;  (** index among [d_units]; [-1] before install *)
  mutable current : Task.t option;
  mutable completion : Eventq.handle;
      (** segment-end event for [current]; [Eventq.null] when none armed *)
  mutable completion_fire : unit -> unit;
      (** the unit's one stable completion closure (installed by
          {!install_dispatch}); re-armed per segment instead of allocating
          a closure each *)
  mutable busy_from : Time.t;
  mutable active_app : int;
  mutable stolen_until : Time.t;
}

(** The DISPATCH substrate: a record of closures (the {!Sched_ops} idiom),
    installed after construction via {!install_dispatch}. *)
type dispatch = {
  d_name : string;
  d_units : exec array;  (** every execution unit, in core order *)
  d_enqueue_cpu : exec -> int;
      (** which queue a yielded task re-enters: the unit's own core
          (per-CPU) or the dispatcher's global queue (centralized) *)
  d_incoming_app : exec -> int;
      (** app id of an in-flight assignment racing toward the unit, [-1]
          if none; synchronous dispatch never has one *)
  d_released : exec -> unit;
      (** the unit gave its task up: bump assignment generations,
          invalidate stale timers *)
  d_reschedule : exec -> prev:Task.t option -> unit;
      (** find the unit something to run *)
}

val null_dispatch : dispatch

type t = {
  machine : Machine.t;
  engine : Engine.t;
  kmod : Kmod.t;
  kthreads : (int * int, Kmod.kthread) Hashtbl.t;
  by_id : (int, App.t) Hashtbl.t;  (** O(1) app lookup, daemon included *)
  mutable apps : App.t list;  (** reverse creation order *)
  daemon : App.t;
  mutable policy : Sched_ops.instance;
  mutable probe : Sched_ops.probe;
  mutable be_app : App.t option;
  be_queue : Runqueue.t;
  mutable be_allowance : int;
  mutable core_allowance : int;
      (** units (a prefix of [d_units], by slot) this runtime may occupy
          at all: a machine-level core broker's grant.  [max_int] —
          the single-tenant default — disables every gate. *)
  mutable allocator : Allocator.t option;
  rescue_detect : Histogram.t;
  wakeups : Histogram.t option;
  queue_depth : Timeseries.t;
  trace_app_switches : bool;
  mutable switches : int;
  mutable app_switches : int;
  mutable preempts : int;
  mutable be_preempts : int;
  mutable rescues : int;
  mutable deadline_drops : int;
  mutable trace : Trace.t option;
  mutable dispatch : dispatch;
  mutable next_app_id : int;
      (** per-run app-id allocator (1, 2, ...; the daemon is 0).  Ids used
          to come from a process-wide counter, which made simulations in
          different domains perturb each other; per-run state keeps every
          run a pure function of its seed under any parallelism. *)
  mutable next_task_id : int;  (** per-run task-id allocator (1, 2, ...) *)
}

val create :
  Machine.t -> Kmod.t -> record_wakeups:bool -> trace_app_switches:bool -> t
(** A core with the null dispatch installed; {!install_dispatch} and
    {!install_policy} complete construction.  [record_wakeups] keeps a
    wakeup-to-dispatch histogram (per-CPU style); [trace_app_switches]
    emits an [App_switch] instant per cross-application switch. *)

val now : t -> Time.t
val make_exec : int -> exec

val install_dispatch : t -> dispatch -> unit
(** Install the substrate; numbers the unit slots and resets the BE
    allowance to the unit count. *)

val unit_capped : t -> exec -> bool
(** Whether the broker gate forbids this unit from running anything: its
    slot falls beyond {!field-t.core_allowance}.  Allowed units are always
    the [d_units] prefix, so a grant of [n] cores maps deterministically
    to units [0..n-1]. *)

val set_core_allowance : t -> int -> unit
(** Record the broker's grant (clamped at 0).  Pure bookkeeping: evicting
    tasks already running on newly capped units is the runtime's job. *)

val view : t -> Sched_ops.view
(** The runtime view handed to policy constructors, derived entirely from
    the DISPATCH units (requires {!install_dispatch} first). *)

val install_policy : t -> Sched_ops.ctor -> unit
(** Instrument the policy with the congestion probe and the queue-depth
    series, then install it. *)

(** {1 Applications and kthreads} *)

val find_app : t -> int -> App.t
(** O(1); raises [Not_found] on unknown ids (daemon is id 0). *)

val new_app : t -> name:string -> App.t
val add_kthread : t -> app:int -> core:int -> Kmod.kthread
val kthread : t -> app:int -> core:int -> Kmod.kthread
val is_be : t -> Task.t -> bool

val be_occupancy : t -> int
(** Units the BE application occupies right now, in-flight assignments
    included. *)

(** {1 Accounting and trace vocabulary} *)

val account : t -> exec -> unit
(** Charge the unit's busy segment to the running task's application and
    emit the run span; resets the busy clock. *)

val trace_instant : t -> core:int -> Trace.instant_kind -> string -> unit
val release : t -> exec -> unit

val app_switch : t -> exec -> Task.t -> Time.t
(** Cross-application switch through the kernel module; returns the
    charged cost. *)

(** {1 The task lifecycle} *)

val process : t -> exec -> Task.t -> unit
(** Run the task's next coroutine step on the unit: arm the completion
    timer for compute segments; account, release and requeue on yield /
    block / exit, then hand the unit to [d_reschedule]. *)

val on_complete : t -> exec -> Task.t -> unit
val arm_completion : t -> exec -> Task.t -> unit

val begin_run : t -> exec -> Task.t -> switch_cost:Time.t -> Time.t
(** Put the task on the unit: lifecycle state, attribution stamping, the
    wakeup-latency sample.  Returns when execution begins (after the
    switch cost). *)

val run_after_switch : t -> exec -> Task.t -> switch_cost:Time.t -> unit
(** Arm the start-of-execution event for a task placed by {!begin_run}. *)

val depose : t -> exec -> overhead:Time.t -> Task.t option
(** Take the running task off its unit (preemption, rescue), charging the
    receiver-side [overhead] to it.  Returns the deposed task; the caller
    requeues it and reschedules the unit.  [None] if the unit is not
    mid-segment. *)

val next_live : t -> (unit -> Task.t option) -> Task.t option
(** Dequeue through [pick], lazily discarding tasks killed while queued. *)

(** {1 Wakeups} *)

val awaken : t -> Task.t -> place:(Task.t -> unit) -> unit
(** The shared wake path: state transition, stall attribution, trace
    instant, then the runtime's [place].  Non-blocked tasks get their
    pending-wake flag set instead. *)

(** {1 Deadlines} *)

val deadline_expired : t -> Task.t -> on_drop:(Task.t -> unit) option -> unit
val kill : t -> ?on_drop:(Task.t -> unit) -> Task.t -> unit

val arm_deadline :
  t -> ?on_drop:(Task.t -> unit) -> Task.t -> deadline:Time.t -> err:string -> unit
(** Arm a kill timer; raises [Invalid_argument err] unless the deadline is
    positive. *)

(** {1 Task admission} *)

val admit :
  t ->
  App.t ->
  name:string ->
  arrival:Time.t ->
  service:Time.t ->
  record:bool ->
  Coro.t ->
  Task.t
(** Create a task owned by [app] with the attribution-recording exit hook
    (when [record]) and the spawn counters bumped; placement is the
    runtime's job.  Every recorded completion counts — including
    zero-service tasks — so submitted = completed + gave-up + drops
    reconciles for degenerate workloads. *)

(** {1 Watchdog bookkeeping} *)

val rescued : t -> exec -> late:Time.t -> unit
(** Count and trace a watchdog rescue; the runtime performs the actual
    recovery itself. *)

val start_watchdog : t -> bound:Time.t option -> (bound:Time.t -> unit) -> unit
(** Arm the periodic scan at half the bound (violations caught within
    ~1.5x); no-op when [bound] is [None]. *)

val freeze_for_steal : t -> exec -> duration:Time.t -> unit
(** Host-kernel steal: freeze the running segment for the outage and move
    [run_start] with it so quantum/watchdog clocks exempt stolen time. *)

(** {1 Busy accounting} *)

val in_flight_busy : t -> matches:(int -> bool) -> int
val lc_busy_ns : t -> int
val be_busy_ns : t -> App.t -> int
val total_busy_ns : t -> int

val congestion : t -> Allocator.raw
(** The whole-runtime congestion sample a machine-level broker reads: LC
    probe backlog plus BE queue length, oldest LC wait, and total busy
    nanoseconds including in-flight segments. *)

(** {1 BE attachment and the core allocator} *)

val spawn_be_workers :
  t -> App.t -> chunk:Time.t -> workers:int -> who:string -> unit
(** Validate and mark [app] as the BE application, then seed its endless
    chunked batch workers into the BE queue. *)

val start_allocator :
  t ->
  cfg:Allocator.config ->
  be:App.t ->
  on_event:(Allocator.event -> unit) ->
  set_allowance:(int -> unit) ->
  unit
(** Register LC (policy congestion probe) and BE (queue backlog) with a
    new allocator and start it; [set_allowance] is the runtime's
    reclaim/grant muscle.  Each core moved charges the §5.4 switch cost on
    the BE side. *)

(** {1 Metrics} *)

val register_app_metrics : t -> ?labels:Registry.labels -> Registry.t -> unit
(** Per-application counters, response-time histogram and latency
    attribution ([skyloft_app_*]), identical across runtimes. *)
