module Time = Skyloft_sim.Time
module Summary = Skyloft_stats.Summary
module Attribution = Skyloft_obs.Attribution

(** Applications scheduled by Skyloft.

    An application owns user threads and, per isolated core, one kernel
    thread managed by the kernel module (§3.3).  The runtime accounts CPU
    time ([busy_ns]) per application — the basis of the CPU-share
    measurements in Figure 7c — and each application carries a
    {!Summary.t} for its request metrics. *)

type t = {
  id : int;
  name : string;
  mutable busy_ns : int;  (** accumulated worker CPU time *)
  mutable spawned : int;
  mutable completed : int;
  mutable tasks_alive : int;
  summary : Summary.t;
  attribution : Attribution.t;
      (** per-request latency attribution (queueing / service / overhead /
          stall segments), recorded by the runtimes alongside [summary] *)
}

val create : id:int -> name:string -> t
(** Fresh application with the given id (positive; id 0 is the runtime's
    daemon).  Ids are allocated per run by {!Runtime_core} — there is no
    process-wide counter, so simulations in different domains can never
    race or perturb each other's ids.
    @raise Invalid_argument if [id <= 0]. *)

val daemon : unit -> t
(** The Skyloft daemon pseudo-application (id 0): owns the idle loops. *)

val cpu_share : t -> total_ns:int -> float
(** Fraction of [total_ns] this application spent running. *)

val pp : Format.formatter -> t -> unit
