module Time = Skyloft_sim.Time
module Summary = Skyloft_stats.Summary
module Attribution = Skyloft_obs.Attribution

(** Applications scheduled by Skyloft.

    An application owns user threads and, per isolated core, one kernel
    thread managed by the kernel module (§3.3).  The runtime accounts CPU
    time ([busy_ns]) per application — the basis of the CPU-share
    measurements in Figure 7c — and each application carries a
    {!Summary.t} for its request metrics. *)

type t = {
  id : int;
  name : string;
  mutable busy_ns : int;  (** accumulated worker CPU time *)
  mutable spawned : int;
  mutable completed : int;
  mutable tasks_alive : int;
  summary : Summary.t;
  attribution : Attribution.t;
      (** per-request latency attribution (queueing / service / overhead /
          stall segments), recorded by the runtimes alongside [summary] *)
}

val create : name:string -> t
(** Fresh application with a process-wide unique id (starting at 1; id 0 is
    the runtime's daemon). *)

val daemon : unit -> t
(** The Skyloft daemon pseudo-application (id 0): owns the idle loops. *)

val reset_ids : unit -> unit
(** Restart the process-wide id counter.  For tests that compare the
    byte-level output of two sequential runs in one process: app ids leak
    into trace [pid] fields, so each run must start from the same
    counter.  Never call while a runtime is live. *)

val cpu_share : t -> total_ns:int -> float
(** Fraction of [total_ns] this application spent running. *)

val pp : Format.formatter -> t -> unit
