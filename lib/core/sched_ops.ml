module Time = Skyloft_sim.Time

type view = { cores : int array; is_idle : int -> bool; now : unit -> Time.t }
type reason = Enq_new | Enq_preempted | Enq_woken | Enq_yielded

type instance = {
  policy_name : string;
  task_init : Task.t -> unit;
  task_terminate : Task.t -> unit;
  task_enqueue : cpu:int -> reason:reason -> Task.t -> unit;
  task_dequeue : cpu:int -> Task.t option;
  task_block : cpu:int -> Task.t -> unit;
  task_wakeup : waker_cpu:int -> Task.t -> int;
  sched_timer_tick : cpu:int -> Task.t -> bool;
  sched_balance : cpu:int -> Task.t option;
}

type ctor = view -> instance

let no_balance ~cpu:_ = None

(* Inert policy: used as an initialisation placeholder and in tests. *)
let null_instance =
  {
    policy_name = "null";
    task_init = ignore;
    task_terminate = ignore;
    task_enqueue = (fun ~cpu:_ ~reason:_ _ -> ());
    task_dequeue = (fun ~cpu:_ -> None);
    task_block = (fun ~cpu:_ _ -> ());
    task_wakeup = (fun ~waker_cpu _ -> waker_cpu);
    sched_timer_tick = (fun ~cpu:_ _ -> false);
    sched_balance = no_balance;
  }

type probe = { queued : unit -> int; oldest_wait : unit -> Time.t }

(* Queue length and oldest-pending-task age are not part of the Table 2
   interface, so the runtimes measure them by wrapping the policy's queue
   operations.  Enqueue-order timestamps approximate the oldest pending
   task exactly for FIFO policies and conservatively otherwise. *)
let instrument ~now ?on_change (p : instance) =
  let count = ref 0 in
  let stamps = Queue.create () in
  let notify () = match on_change with Some f -> f !count | None -> () in
  let entered () =
    incr count;
    Queue.push (now ()) stamps;
    notify ()
  in
  let left = function
    | None -> None
    | some ->
        if !count > 0 then decr count;
        if not (Queue.is_empty stamps) then ignore (Queue.pop stamps);
        notify ();
        some
  in
  let wrapped =
    {
      p with
      task_enqueue =
        (fun ~cpu ~reason task ->
          entered ();
          p.task_enqueue ~cpu ~reason task);
      task_dequeue = (fun ~cpu -> left (p.task_dequeue ~cpu));
      task_wakeup =
        (fun ~waker_cpu task ->
          (* policies enqueue woken tasks internally, bypassing
             [task_enqueue] *)
          entered ();
          p.task_wakeup ~waker_cpu task);
      sched_balance = (fun ~cpu -> left (p.sched_balance ~cpu));
    }
  in
  let probe =
    {
      queued = (fun () -> !count);
      oldest_wait =
        (fun () ->
          if Queue.is_empty stamps then 0 else max 0 (now () - Queue.peek stamps));
    }
  in
  (wrapped, probe)

let pick_idle view =
  let found = ref None in
  (try
     Array.iter
       (fun core ->
         if view.is_idle core then begin
           found := Some core;
           raise Exit
         end)
       view.cores
   with Exit -> ());
  !found

let wakeup_to_idle_or view ~fallback =
  match pick_idle view with Some core -> core | None -> fallback
