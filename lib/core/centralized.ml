module Time = Skyloft_sim.Time
module Coro = Skyloft_sim.Coro
module Engine = Skyloft_sim.Engine
module Eventq = Skyloft_sim.Eventq
module Machine = Skyloft_hw.Machine
module Costs = Skyloft_hw.Costs
module Kmod = Skyloft_kernel.Kmod
module Summary = Skyloft_stats.Summary
module Alloc_policy = Skyloft_alloc.Policy
module Allocator = Skyloft_alloc.Allocator

type mechanism = {
  mech_name : string;
  dispatch_cost : Time.t;
  preempt_send : Time.t;
  preempt_delivery : Time.t;
  preempt_receive : Time.t;
  worker_switch : Time.t;
}

let skyloft_mechanism =
  {
    mech_name = "Skyloft";
    dispatch_cost = 100;
    preempt_send = Costs.uipi_send_ns ~cross_numa:false;
    preempt_delivery = Costs.uipi_delivery_ns ~cross_numa:false;
    preempt_receive = Costs.uipi_receive_ns ~cross_numa:false + Costs.uthread_yield_ns;
    worker_switch = Costs.uthread_yield_ns;
  }

(* Dune posted interrupts avoid kernel entries on the sender but trap into
   the guest on delivery; measured overheads in the Shinjuku paper are a
   small multiple of user IPIs. *)
let shinjuku_mechanism =
  {
    mech_name = "Shinjuku";
    dispatch_cost = 120;
    preempt_send = 250;
    preempt_delivery = 1_400;
    preempt_receive = 650;
    worker_switch = 60;
  }

(* ghOSt: every dispatch is an agent decision committed through a kernel
   transaction; preemption rides kernel IPIs; workers are kernel threads. *)
let ghost_mechanism =
  {
    mech_name = "ghOSt";
    dispatch_cost = 1_200;
    preempt_send = Costs.kipi_send_ns;
    preempt_delivery = Costs.kipi_delivery_ns;
    preempt_receive = Costs.kipi_receive_ns;
    worker_switch = Costs.linux_ctx_switch_ns;
  }

type worker = {
  core_id : int;
  mutable current : Task.t option;
  mutable completion : Eventq.handle option;
  mutable gen : int;  (* assignment generation, guards stale events *)
  mutable reserved : bool;  (* an assignment is in flight *)
  mutable incoming : int;  (* app of the in-flight assignment; -1 if none *)
  mutable busy_from : Time.t;
  mutable active_app : int;
}

type t = {
  machine : Machine.t;
  engine : Engine.t;
  kmod : Kmod.t;
  dispatcher_core : int;
  workers : worker array;
  mech : mechanism;
  quantum : Time.t;
  alloc_cfg : Allocator.config;
  immediate : bool;  (* preempt BE the instant an LC request cannot place *)
  mutable allocator : Allocator.t option;
  mutable be_allowance : int;  (* cores BE tasks may occupy right now *)
  mutable policy : Sched_ops.instance;
  mutable probe : Sched_ops.probe;
  mutable disp_busy_until : Time.t;
  kthreads : (int * int, Kmod.kthread) Hashtbl.t;
  mutable apps : App.t list;
  daemon : App.t;
  mutable be_app : App.t option;
  be_queue : Runqueue.t;
  mutable preempts : int;
  mutable be_preempts : int;
  mutable dispatches : int;
}

let now t = Engine.now t.engine
let quantum t = t.quantum

let find_app t id = if id = 0 then t.daemon else List.find (fun a -> a.App.id = id) t.apps

let is_be t (task : Task.t) =
  match t.be_app with Some app -> task.app = app.App.id | None -> false

(* Workers the BE application occupies right now, counting in-flight
   assignments so the allowance cannot be oversubscribed while a dispatch
   is pending. *)
let be_occupancy t =
  match t.be_app with
  | None -> 0
  | Some app ->
      Array.fold_left
        (fun acc w ->
          let running =
            match w.current with
            | Some task -> task.Task.app = app.App.id
            | None -> false
          in
          if running || w.incoming = app.App.id then acc + 1 else acc)
        0 t.workers

let account t w =
  (match w.current with
  | Some task ->
      let app = find_app t task.Task.app in
      app.App.busy_ns <- app.App.busy_ns + max 0 (now t - w.busy_from)
  | None -> ());
  w.busy_from <- now t

(* The dispatcher is a serial resource; [f] runs when it has spent [cost]
   on this operation. *)
let dispatcher_do t cost f =
  let start = max (now t) t.disp_busy_until in
  t.disp_busy_until <- start + cost;
  ignore (Engine.at t.engine (start + cost) f)

(* ---- worker-side execution ---------------------------------------------- *)

let rec process t w (task : Task.t) =
  match task.body with
  | Coro.Compute (d, k) ->
      task.cont <- k;
      task.segment_end <- now t + d;
      w.completion <-
        Some (Engine.at t.engine task.segment_end (fun () -> on_complete t w task))
  | Coro.Yield _ ->
      (* continuation evaluated at the next dispatch (resume time) *)
      task.state <- Task.Runnable;
      account t w;
      w.current <- None;
      w.gen <- w.gen + 1;
      if is_be t task then Runqueue.push_tail t.be_queue task
      else
        t.policy.task_enqueue ~cpu:t.dispatcher_core ~reason:Sched_ops.Enq_yielded task;
      try_next t w
  | Coro.Block k ->
      if task.pending_wake then begin
        task.pending_wake <- false;
        task.body <- k ();
        process t w task
      end
      else begin
        task.body <- Coro.Block k;
        task.state <- Task.Blocked;
        account t w;
        w.current <- None;
        w.gen <- w.gen + 1;
        t.policy.task_block ~cpu:w.core_id task;
        try_next t w
      end
  | Coro.Exit ->
      task.state <- Task.Exited;
      account t w;
      w.current <- None;
      w.gen <- w.gen + 1;
      let app = find_app t task.app in
      app.App.completed <- app.App.completed + 1;
      app.App.tasks_alive <- app.App.tasks_alive - 1;
      t.policy.task_terminate task;
      (match task.on_exit with Some f -> f task | None -> ());
      try_next t w

and on_complete t w (task : Task.t) =
  w.completion <- None;
  task.body <- task.cont ();
  process t w task

and start_on t w (task : Task.t) =
  w.reserved <- false;
  w.incoming <- -1;
  t.dispatches <- t.dispatches + 1;
  let switch_cost =
    if task.Task.app = w.active_app then t.mech.worker_switch
    else begin
      let from_kt = Hashtbl.find t.kthreads (w.active_app, w.core_id) in
      let to_kt = Hashtbl.find t.kthreads (task.Task.app, w.core_id) in
      let cost = Kmod.switch_to t.kmod ~from:from_kt ~target:to_kt in
      w.active_app <- task.Task.app;
      cost
    end
  in
  task.state <- Task.Running;
  task.wake_time <- None;
  w.current <- Some task;
  w.busy_from <- now t;
  w.gen <- w.gen + 1;
  let gen = w.gen in
  let start = now t + switch_cost in
  task.run_start <- start;
  task.last_core <- w.core_id;
  (* Arm the quantum timer for LC work (Shinjuku-style PS). *)
  if t.quantum > 0 && not (is_be t task) then
    ignore
      (Engine.at t.engine (start + t.quantum) (fun () -> quantum_check t w task gen));
  ignore
    (Engine.after t.engine switch_cost (fun () ->
         match w.current with
         | Some cur when cur == task && task.state = Task.Running ->
             (match task.body with
             | Coro.Yield k -> task.body <- k ()
             | Coro.Block k when task.resuming ->
                 task.resuming <- false;
                 task.body <- k ()
             | Coro.Block _ | Coro.Compute _ | Coro.Exit -> ());
             process t w task
         | _ -> ()))

and assign t w (task : Task.t) =
  w.reserved <- true;
  w.incoming <- task.Task.app;
  dispatcher_do t t.mech.dispatch_cost (fun () -> start_on t w task)

and try_next t w =
  if not w.reserved && w.current = None then begin
    match t.policy.task_dequeue ~cpu:w.core_id with
    | Some task -> assign t w task
    | None ->
        (* BE work only on cores inside the allocator's current grant *)
        if be_occupancy t < t.be_allowance then (
          match Runqueue.pop_head t.be_queue with
          | Some be -> assign t w be
          | None -> ())
  end

(* Preemption of the task currently on [w]; the caller already charged the
   delivery latency.  [requeue] decides where the preempted task goes. *)
and do_preempt t w gen ~requeue =
  match (w.current, w.completion) with
  | Some task, Some h when w.gen = gen ->
      Eventq.cancel h;
      w.completion <- None;
      (* Worker-side handling overhead runs before the switch. *)
      let overhead = t.mech.preempt_receive in
      let remaining = max 0 (task.segment_end - now t) + overhead in
      task.body <- Coro.Compute (remaining, task.cont);
      task.state <- Task.Runnable;
      account t w;
      w.current <- None;
      w.gen <- w.gen + 1;
      requeue task;
      try_next t w
  | _ -> ()

and quantum_check t w (task : Task.t) gen =
  let still_running =
    match w.current with Some cur -> cur == task && w.gen = gen | None -> false
  in
  if still_running then begin
    t.preempts <- t.preempts + 1;
    dispatcher_do t t.mech.preempt_send (fun () ->
        ignore
          (Engine.after t.engine t.mech.preempt_delivery (fun () ->
               do_preempt t w gen ~requeue:(fun task ->
                   t.policy.task_enqueue ~cpu:t.dispatcher_core
                     ~reason:Sched_ops.Enq_preempted task))))
  end

let preempt_be_worker t w =
  match w.current with
  | Some task when is_be t task && w.completion <> None ->
      let gen = w.gen in
      t.be_preempts <- t.be_preempts + 1;
      dispatcher_do t t.mech.preempt_send (fun () ->
          ignore
            (Engine.after t.engine t.mech.preempt_delivery (fun () ->
                 do_preempt t w gen ~requeue:(fun task ->
                     Runqueue.push_head t.be_queue task))));
      true
  | _ -> false

(* ---- core allocation ----------------------------------------------------- *)

let queue_length t = t.probe.Sched_ops.queued ()

(* Change how many workers BE may occupy.  Shrinking preempts the excess
   BE workers with user IPIs; the next LC dispatch on those cores goes
   through [Kmod.switch_to], charging the §5.4 inter-application switch
   cost.  Growing kicks idle workers so they pick up BE work (again paying
   the switch cost at dispatch). *)
let set_be_allowance t n =
  let old = t.be_allowance in
  t.be_allowance <- n;
  if n < old then begin
    let excess = ref (be_occupancy t - n) in
    if !excess > 0 then
      Array.iter
        (fun w -> if !excess > 0 && preempt_be_worker t w then decr excess)
        t.workers
  end
  else if n > old then Array.iter (fun w -> try_next t w) t.workers

(* Busy nanoseconds including the in-flight segment of running workers, so
   the allocator's utilization sample does not lag long-running tasks. *)
let in_flight_busy t ~matches =
  Array.fold_left
    (fun acc w ->
      match w.current with
      | Some task when matches task.Task.app -> acc + max 0 (now t - w.busy_from)
      | _ -> acc)
    0 t.workers

let lc_busy_ns t =
  let be_id = match t.be_app with Some app -> app.App.id | None -> -1 in
  let recorded =
    List.fold_left
      (fun acc (a : App.t) -> if a.App.id = be_id then acc else acc + a.App.busy_ns)
      t.daemon.App.busy_ns t.apps
  in
  recorded + in_flight_busy t ~matches:(fun id -> id <> be_id)

let be_busy_ns t (app : App.t) =
  app.App.busy_ns + in_flight_busy t ~matches:(fun id -> id = app.App.id)

(* ---- construction -------------------------------------------------------- *)

let worker_view t =
  {
    Sched_ops.cores = Array.map (fun w -> w.core_id) t.workers;
    is_idle =
      (fun core ->
        Array.exists (fun w -> w.core_id = core && w.current = None) t.workers);
    now = (fun () -> now t);
  }

let register_kthread t app_id core =
  let kt = Kmod.park_on_cpu t.kmod ~app:app_id ~core in
  Hashtbl.replace t.kthreads (app_id, core) kt;
  kt

let create machine kmod ~dispatcher_core ~worker_cores ~quantum
    ?(mechanism = skyloft_mechanism) ?alloc ?(immediate = false) ctor =
  if worker_cores = [] then invalid_arg "Centralized.create: no worker cores";
  if List.mem dispatcher_core worker_cores then
    invalid_arg "Centralized.create: dispatcher core cannot also be a worker";
  let alloc = match alloc with Some a -> a | None -> Allocator.default_config () in
  let workers =
    Array.of_list
      (List.map
         (fun core_id ->
           {
             core_id;
             current = None;
             completion = None;
             gen = 0;
             reserved = false;
             incoming = -1;
             busy_from = 0;
             active_app = 0;
           })
         worker_cores)
  in
  let t =
    {
      machine;
      engine = Machine.engine machine;
      kmod;
      dispatcher_core;
      workers;
      mech = mechanism;
      quantum;
      alloc_cfg = alloc;
      immediate;
      allocator = None;
      be_allowance = Array.length workers;
      policy = Sched_ops.null_instance;
      probe = { Sched_ops.queued = (fun () -> 0); oldest_wait = (fun () -> 0) };
      disp_busy_until = 0;
      kthreads = Hashtbl.create 64;
      apps = [];
      daemon = App.daemon ();
      be_app = None;
      be_queue = Runqueue.create ();
      preempts = 0;
      be_preempts = 0;
      dispatches = 0;
    }
  in
  let policy, probe =
    Sched_ops.instrument ~now:(fun () -> now t) (ctor (worker_view t))
  in
  t.policy <- policy;
  t.probe <- probe;
  Array.iter
    (fun w ->
      let kt = register_kthread t 0 w.core_id in
      ignore (Kmod.activate kmod kt))
    workers;
  t

let create_app t ~name =
  let app = App.create ~name in
  t.apps <- app :: t.apps;
  Array.iter (fun w -> ignore (register_kthread t app.App.id w.core_id)) t.workers;
  app

let attach_be_app t app ~chunk ~workers =
  if t.be_app <> None then invalid_arg "Centralized.attach_be_app: BE app already set";
  if not (List.exists (fun a -> a == app) t.apps) then
    invalid_arg "Centralized.attach_be_app: app not created by this runtime";
  t.be_app <- Some app;
  for i = 1 to workers do
    (* A batch worker is an endless sequence of compute chunks, yielding
       between chunks so reclaimed cores come back promptly. *)
    let rec loop () = Coro.Compute (chunk, fun () -> Coro.Yield loop) in
    let task =
      Task.create ~app:app.App.id ~name:(Printf.sprintf "be-%d" i) (loop ())
    in
    app.App.spawned <- app.App.spawned + 1;
    app.App.tasks_alive <- app.App.tasks_alive + 1;
    Runqueue.push_tail t.be_queue task
  done;
  (* Core allocation: the allocator arbitrates LC vs BE core ownership from
     here on.  BE starts at its burstable ceiling (all cores by default) and
     the policy reclaims cores as LC congestion appears. *)
  let total = Array.length t.workers in
  let cfg = t.alloc_cfg in
  let burst = min (Option.value cfg.Allocator.be_burstable ~default:total) total in
  let guar = min (max 0 cfg.Allocator.be_guaranteed) burst in
  t.be_allowance <- burst;
  let alloc =
    Allocator.create ~engine:t.engine ~policy:cfg.Allocator.policy
      ~interval:cfg.Allocator.interval ~total_cores:total ()
  in
  Allocator.register alloc ~app:0 ~name:"lc" ~kind:Alloc_policy.Lc
    ~bounds:{ Allocator.guaranteed = 0; burstable = total }
    ~initial:(total - burst)
    ~sample:(fun () ->
      {
        Allocator.runq_len = t.probe.Sched_ops.queued ();
        oldest_delay = t.probe.Sched_ops.oldest_wait ();
        busy_ns = lc_busy_ns t;
      })
    ~apply:(fun ~granted:_ ~delta:_ -> 0);
  Allocator.register alloc ~app:app.App.id ~name:app.App.name
    ~kind:Alloc_policy.Be
    ~bounds:{ Allocator.guaranteed = guar; burstable = burst }
    ~initial:burst
    ~sample:(fun () ->
      {
        Allocator.runq_len = Runqueue.length t.be_queue;
        oldest_delay = 0;
        busy_ns = be_busy_ns t app;
      })
    ~apply:(fun ~granted ~delta ->
      set_be_allowance t granted;
      (* Moving a core between applications costs an inter-application
         switch at the next dispatch on that core (§5.4); account it on
         the BE side only so each move is charged once. *)
      Costs.app_switch_ns * abs delta);
  Allocator.start alloc;
  t.allocator <- Some alloc;
  Array.iter (fun w -> try_next t w) t.workers

let allocator t = t.allocator

let pump t =
  let made_progress = ref true in
  while !made_progress do
    made_progress := false;
    if queue_length t > 0 then
      match
        Array.to_list t.workers
        |> List.find_opt (fun w -> w.current = None && not w.reserved)
      with
      | Some w ->
          try_next t w;
          made_progress := true
      | None -> ()
  done;
  (* No free worker: under immediate reclaim, kick BE work off a core. *)
  if queue_length t > 0 && t.immediate then begin
    let want = queue_length t in
    let reclaimed = ref 0 in
    Array.iter
      (fun w -> if !reclaimed < want && preempt_be_worker t w then incr reclaimed)
      t.workers
  end

let submit t app ?(service = 0) ?(record = true) ~name body =
  let arrival = now t in
  let on_exit =
    if record then
      Some
        (fun (task : Task.t) ->
          if task.Task.service > 0 then
            Summary.record_request app.App.summary ~arrival:task.arrival
              ~completion:(now t) ~service:task.service)
    else None
  in
  let task = Task.create ~app:app.App.id ~name ~arrival ~service ?on_exit body in
  app.App.spawned <- app.App.spawned + 1;
  app.App.tasks_alive <- app.App.tasks_alive + 1;
  t.policy.task_init task;
  t.policy.task_enqueue ~cpu:t.dispatcher_core ~reason:Sched_ops.Enq_new task;
  pump t;
  task

let wakeup t (task : Task.t) =
  match task.state with
  | Task.Blocked ->
      task.state <- Task.Runnable;
      task.resuming <- true;
      task.wake_time <- Some (now t);
      ignore (t.policy.task_wakeup ~waker_cpu:t.dispatcher_core task);
      pump t
  | Task.Running | Task.Runnable -> task.pending_wake <- true
  | Task.Exited -> ()

let preemptions t = t.preempts
let dispatches t = t.dispatches
let be_preemptions t = t.be_preempts

let worker_busy_ns t =
  List.fold_left (fun acc app -> acc + app.App.busy_ns) t.daemon.App.busy_ns t.apps
