module Time = Skyloft_sim.Time
module Coro = Skyloft_sim.Coro
module Engine = Skyloft_sim.Engine
module Eventq = Skyloft_sim.Eventq
module Machine = Skyloft_hw.Machine
module Costs = Skyloft_hw.Costs
module Vectors = Skyloft_hw.Vectors
module Kmod = Skyloft_kernel.Kmod
module Summary = Skyloft_stats.Summary
module Histogram = Skyloft_stats.Histogram
module Trace = Skyloft_stats.Trace
module Timeseries = Skyloft_stats.Timeseries
module Alloc_policy = Skyloft_alloc.Policy
module Allocator = Skyloft_alloc.Allocator
module Registry = Skyloft_obs.Registry
module Attribution = Skyloft_obs.Attribution

type mechanism = {
  mech_name : string;
  dispatch_cost : Time.t;
  preempt_send : Time.t;
  preempt_delivery : Time.t;
  preempt_receive : Time.t;
  worker_switch : Time.t;
}

let skyloft_mechanism =
  {
    mech_name = "Skyloft";
    dispatch_cost = 100;
    preempt_send = Costs.uipi_send_ns ~cross_numa:false;
    preempt_delivery = Costs.uipi_delivery_ns ~cross_numa:false;
    preempt_receive = Costs.uipi_receive_ns ~cross_numa:false + Costs.uthread_yield_ns;
    worker_switch = Costs.uthread_yield_ns;
  }

(* Dune posted interrupts avoid kernel entries on the sender but trap into
   the guest on delivery; measured overheads in the Shinjuku paper are a
   small multiple of user IPIs. *)
let shinjuku_mechanism =
  {
    mech_name = "Shinjuku";
    dispatch_cost = 120;
    preempt_send = 250;
    preempt_delivery = 1_400;
    preempt_receive = 650;
    worker_switch = 60;
  }

(* ghOSt: every dispatch is an agent decision committed through a kernel
   transaction; preemption rides kernel IPIs; workers are kernel threads. *)
let ghost_mechanism =
  {
    mech_name = "ghOSt";
    dispatch_cost = 1_200;
    preempt_send = Costs.kipi_send_ns;
    preempt_delivery = Costs.kipi_delivery_ns;
    preempt_receive = Costs.kipi_receive_ns;
    worker_switch = Costs.linux_ctx_switch_ns;
  }

type worker = {
  core_id : int;
  mutable current : Task.t option;
  mutable completion : Eventq.handle option;
  mutable gen : int;  (* assignment generation, guards stale events *)
  mutable reserved : bool;  (* an assignment is in flight *)
  mutable incoming : int;  (* app of the in-flight assignment; -1 if none *)
  mutable busy_from : Time.t;
  mutable active_app : int;
  mutable stolen_until : Time.t;  (* host-kernel steal in progress until *)
}

type t = {
  machine : Machine.t;
  engine : Engine.t;
  kmod : Kmod.t;
  dispatcher_core : int;
  workers : worker array;
  mech : mechanism;
  quantum : Time.t;
  alloc_cfg : Allocator.config;
  immediate : bool;  (* preempt BE the instant an LC request cannot place *)
  mutable allocator : Allocator.t option;
  mutable be_allowance : int;  (* cores BE tasks may occupy right now *)
  mutable policy : Sched_ops.instance;
  mutable probe : Sched_ops.probe;
  mutable disp_busy_until : Time.t;
  kthreads : (int * int, Kmod.kthread) Hashtbl.t;
  mutable apps : App.t list;
  daemon : App.t;
  mutable be_app : App.t option;
  be_queue : Runqueue.t;
  mutable preempts : int;
  mutable be_preempts : int;
  mutable dispatches : int;
  watchdog : Time.t option;
  rescue_detect : Histogram.t;
  queue_depth : Timeseries.t;  (* LC policy queue length over time *)
  mutable rescues : int;
  mutable failovers : int;
  mutable deadline_drops : int;
  mutable trace : Trace.t option;
}

let now t = Engine.now t.engine
let quantum t = t.quantum

let trace_instant t ~core kind name =
  match t.trace with
  | Some trace -> Trace.instant trace ~core ~at:(now t) kind ~name
  | None -> ()

let find_app t id = if id = 0 then t.daemon else List.find (fun a -> a.App.id = id) t.apps

let is_be t (task : Task.t) =
  match t.be_app with Some app -> task.app = app.App.id | None -> false

(* Workers the BE application occupies right now, counting in-flight
   assignments so the allowance cannot be oversubscribed while a dispatch
   is pending. *)
let be_occupancy t =
  match t.be_app with
  | None -> 0
  | Some app ->
      Array.fold_left
        (fun acc w ->
          let running =
            match w.current with
            | Some task -> task.Task.app = app.App.id
            | None -> false
          in
          if running || w.incoming = app.App.id then acc + 1 else acc)
        0 t.workers

let account t w =
  (match w.current with
  | Some task ->
      let app = find_app t task.Task.app in
      app.App.busy_ns <- app.App.busy_ns + max 0 (now t - w.busy_from);
      (match t.trace with
      | Some trace when now t > w.busy_from ->
          Trace.span trace ~core:w.core_id ~app:task.Task.app
            ~name:task.Task.name ~start:w.busy_from ~stop:(now t)
      | _ -> ())
  | None -> ());
  w.busy_from <- now t

(* The dispatcher is a serial resource; [f] runs when it has spent [cost]
   on this operation. *)
let dispatcher_do t cost f =
  let start = max (now t) t.disp_busy_until in
  t.disp_busy_until <- start + cost;
  ignore (Engine.at t.engine (start + cost) f)

(* ---- worker-side execution ---------------------------------------------- *)

let rec process t w (task : Task.t) =
  match task.body with
  | Coro.Compute (d, k) ->
      task.cont <- k;
      task.segment_end <- now t + d;
      w.completion <-
        Some (Engine.at t.engine task.segment_end (fun () -> on_complete t w task))
  | Coro.Yield _ ->
      (* continuation evaluated at the next dispatch (resume time) *)
      task.state <- Task.Runnable;
      account t w;
      w.current <- None;
      w.gen <- w.gen + 1;
      task.obs_enq_at <- now t;
      if is_be t task then Runqueue.push_tail t.be_queue task
      else
        t.policy.task_enqueue ~cpu:t.dispatcher_core ~reason:Sched_ops.Enq_yielded task;
      try_next t w
  | Coro.Block k ->
      if task.pending_wake then begin
        task.pending_wake <- false;
        task.body <- k ();
        process t w task
      end
      else begin
        task.body <- Coro.Block k;
        task.state <- Task.Blocked;
        account t w;
        w.current <- None;
        w.gen <- w.gen + 1;
        task.obs_block_at <- now t;
        t.policy.task_block ~cpu:w.core_id task;
        try_next t w
      end
  | Coro.Exit ->
      task.state <- Task.Exited;
      account t w;
      w.current <- None;
      w.gen <- w.gen + 1;
      let app = find_app t task.app in
      app.App.completed <- app.App.completed + 1;
      app.App.tasks_alive <- app.App.tasks_alive - 1;
      t.policy.task_terminate task;
      (match task.on_exit with Some f -> f task | None -> ());
      try_next t w

and on_complete t w (task : Task.t) =
  w.completion <- None;
  task.body <- task.cont ();
  process t w task

and start_on t w (task : Task.t) =
  w.reserved <- false;
  w.incoming <- -1;
  t.dispatches <- t.dispatches + 1;
  let switch_cost =
    if task.Task.app = w.active_app then t.mech.worker_switch
    else begin
      let from_kt = Hashtbl.find t.kthreads (w.active_app, w.core_id) in
      let to_kt = Hashtbl.find t.kthreads (task.Task.app, w.core_id) in
      let cost = Kmod.switch_to t.kmod ~from:from_kt ~target:to_kt in
      w.active_app <- task.Task.app;
      cost
    end
  in
  task.state <- Task.Running;
  task.wake_time <- None;
  task.obs_queued_ns <- task.obs_queued_ns + max 0 (now t - task.obs_enq_at);
  task.obs_overhead_ns <- task.obs_overhead_ns + switch_cost;
  w.current <- Some task;
  w.busy_from <- now t;
  w.gen <- w.gen + 1;
  let gen = w.gen in
  let start = now t + switch_cost in
  task.run_start <- start;
  task.last_core <- w.core_id;
  (* Arm the quantum timer for LC work (Shinjuku-style PS). *)
  if t.quantum > 0 && not (is_be t task) then
    ignore
      (Engine.at t.engine (start + t.quantum) (fun () -> quantum_check t w task gen));
  ignore
    (Engine.after t.engine switch_cost (fun () ->
         match w.current with
         | Some cur when cur == task && task.state = Task.Running ->
             (match task.body with
             | Coro.Yield k -> task.body <- k ()
             | Coro.Block k when task.resuming ->
                 task.resuming <- false;
                 task.body <- k ()
             | Coro.Block _ | Coro.Compute _ | Coro.Exit -> ());
             process t w task
         | _ -> ()))

and assign t w (task : Task.t) =
  w.reserved <- true;
  w.incoming <- task.Task.app;
  dispatcher_do t t.mech.dispatch_cost (fun () -> start_on t w task)

(* Dequeue, discarding tasks killed while they waited (deadline kills of
   Runnable tasks are lazy; the drop was accounted at kill time). *)
and next_lc t w =
  match t.policy.task_dequeue ~cpu:w.core_id with
  | Some task when task.Task.killed ->
      task.Task.state <- Task.Exited;
      t.policy.task_terminate task;
      next_lc t w
  | other -> other

and next_be t =
  match Runqueue.pop_head t.be_queue with
  | Some be when be.Task.killed ->
      be.Task.state <- Task.Exited;
      next_be t
  | other -> other

and try_next t w =
  if not w.reserved && w.current = None then begin
    match next_lc t w with
    | Some task -> assign t w task
    | None ->
        (* BE work only on cores inside the allocator's current grant *)
        if be_occupancy t < t.be_allowance then (
          match next_be t with Some be -> assign t w be | None -> ())
  end

(* Preemption of the task currently on [w]; the caller already charged the
   delivery latency.  [requeue] decides where the preempted task goes. *)
and do_preempt t w gen ~requeue =
  match (w.current, w.completion) with
  | Some task, Some h when w.gen = gen ->
      Eventq.cancel h;
      w.completion <- None;
      (* Worker-side handling overhead runs before the switch.  It is
         charged to the task now even though its wall time elapses inside
         the inflated remaining segment — the attribution identity holds
         either way because the response time counts it exactly once. *)
      let overhead = t.mech.preempt_receive in
      let remaining = max 0 (task.segment_end - now t) + overhead in
      task.body <- Coro.Compute (remaining, task.cont);
      task.state <- Task.Runnable;
      task.obs_overhead_ns <- task.obs_overhead_ns + overhead;
      account t w;
      w.current <- None;
      w.gen <- w.gen + 1;
      task.obs_enq_at <- now t;
      trace_instant t ~core:w.core_id Trace.Preempt task.Task.name;
      requeue task;
      try_next t w
  | _ -> ()

(* The preemption notification in flight from dispatcher to worker.  Its
   modeled delivery path is an engine delay, so injected IPI faults are
   consulted here: a dropped notification silently loses the preemption
   (the §3.2 lost-wakeup window — the watchdog is the backstop), a delayed
   one stretches the delivery latency. *)
and deliver_preempt t w gen ~requeue =
  match Machine.fault_fate t.machine ~core:w.core_id Vectors.uintr_notification with
  | Machine.Drop -> ()
  | Machine.Delay d ->
      ignore
        (Engine.after t.engine (t.mech.preempt_delivery + d) (fun () ->
             do_preempt t w gen ~requeue))
  | Machine.Deliver ->
      ignore
        (Engine.after t.engine t.mech.preempt_delivery (fun () ->
             do_preempt t w gen ~requeue))

and quantum_check t w (task : Task.t) gen =
  let still_running =
    match w.current with Some cur -> cur == task && w.gen = gen | None -> false
  in
  if still_running then begin
    t.preempts <- t.preempts + 1;
    dispatcher_do t t.mech.preempt_send (fun () ->
        deliver_preempt t w gen ~requeue:(fun task ->
            t.policy.task_enqueue ~cpu:t.dispatcher_core
              ~reason:Sched_ops.Enq_preempted task))
  end

let preempt_be_worker t w =
  match w.current with
  | Some task when is_be t task && w.completion <> None ->
      let gen = w.gen in
      t.be_preempts <- t.be_preempts + 1;
      dispatcher_do t t.mech.preempt_send (fun () ->
          deliver_preempt t w gen ~requeue:(fun task ->
              Runqueue.push_head t.be_queue task));
      true
  | _ -> false

(* ---- watchdog: dispatcher failover + stuck-worker rescue ----------------- *)

let rescue_worker t w (task : Task.t) ~late =
  t.rescues <- t.rescues + 1;
  Histogram.record t.rescue_detect late;
  trace_instant t ~core:w.core_id Trace.Watchdog_rescue task.Task.name;
  do_preempt t w w.gen ~requeue:(fun task ->
      if is_be t task then Runqueue.push_head t.be_queue task
      else
        t.policy.task_enqueue ~cpu:t.dispatcher_core
          ~reason:Sched_ops.Enq_preempted task)

let watchdog_scan t ~bound =
  (* Dispatcher failover: the serial dispatcher is wedged more than a full
     bound into the future (host-kernel steal, runaway operation).  Promote
     a worker into the dispatcher role — one inter-application switch, then
     dispatching resumes; operations already queued behind the stall still
     complete at their scheduled times. *)
  if t.disp_busy_until > now t + bound then begin
    t.failovers <- t.failovers + 1;
    trace_instant t ~core:t.dispatcher_core Trace.Failover "dispatcher";
    t.disp_busy_until <- now t + Costs.app_switch_ns
  end;
  Array.iter
    (fun w ->
      if now t >= w.stolen_until then
        match w.current with
        | Some task when w.completion <> None ->
            (* A quantum-sized run is legitimate; a full bound past the
               expected preemption point means the preemption was lost. *)
            let allowed =
              bound + if t.quantum > 0 && not (is_be t task) then t.quantum else 0
            in
            let overrun = now t - task.Task.run_start - allowed in
            if overrun > 0 then rescue_worker t w task ~late:overrun
        | _ -> ())
    t.workers

(* Host-kernel steal of a worker core: the running segment freezes for the
   outage and resumes at hand-back; run_start moves with it so the quantum
   and watchdog clocks do not count stolen time against the task. *)
let on_worker_steal t w ~duration =
  w.stolen_until <- max w.stolen_until (now t + duration);
  match (w.current, w.completion) with
  | Some task, Some h ->
      Eventq.cancel h;
      task.Task.segment_end <- task.Task.segment_end + duration;
      task.Task.run_start <- task.Task.run_start + duration;
      task.Task.obs_stall_ns <- task.Task.obs_stall_ns + duration;
      w.completion <-
        Some
          (Engine.at t.engine task.Task.segment_end (fun () ->
               on_complete t w task))
  | _ -> ()

(* ---- core allocation ----------------------------------------------------- *)

let queue_length t = t.probe.Sched_ops.queued ()

(* Change how many workers BE may occupy.  Shrinking preempts the excess
   BE workers with user IPIs; the next LC dispatch on those cores goes
   through [Kmod.switch_to], charging the §5.4 inter-application switch
   cost.  Growing kicks idle workers so they pick up BE work (again paying
   the switch cost at dispatch). *)
let set_be_allowance t n =
  let old = t.be_allowance in
  t.be_allowance <- n;
  if n < old then begin
    let excess = ref (be_occupancy t - n) in
    if !excess > 0 then
      Array.iter
        (fun w -> if !excess > 0 && preempt_be_worker t w then decr excess)
        t.workers
  end
  else if n > old then Array.iter (fun w -> try_next t w) t.workers

(* Busy nanoseconds including the in-flight segment of running workers, so
   the allocator's utilization sample does not lag long-running tasks. *)
let in_flight_busy t ~matches =
  Array.fold_left
    (fun acc w ->
      match w.current with
      | Some task when matches task.Task.app -> acc + max 0 (now t - w.busy_from)
      | _ -> acc)
    0 t.workers

let lc_busy_ns t =
  let be_id = match t.be_app with Some app -> app.App.id | None -> -1 in
  let recorded =
    List.fold_left
      (fun acc (a : App.t) -> if a.App.id = be_id then acc else acc + a.App.busy_ns)
      t.daemon.App.busy_ns t.apps
  in
  recorded + in_flight_busy t ~matches:(fun id -> id <> be_id)

let be_busy_ns t (app : App.t) =
  app.App.busy_ns + in_flight_busy t ~matches:(fun id -> id = app.App.id)

(* ---- construction -------------------------------------------------------- *)

let worker_view t =
  {
    Sched_ops.cores = Array.map (fun w -> w.core_id) t.workers;
    is_idle =
      (fun core ->
        Array.exists (fun w -> w.core_id = core && w.current = None) t.workers);
    now = (fun () -> now t);
  }

let register_kthread t app_id core =
  let kt = Kmod.park_on_cpu t.kmod ~app:app_id ~core in
  Hashtbl.replace t.kthreads (app_id, core) kt;
  kt

let create machine kmod ~dispatcher_core ~worker_cores ~quantum
    ?(mechanism = skyloft_mechanism) ?alloc ?(immediate = false) ?watchdog ctor =
  if worker_cores = [] then invalid_arg "Centralized.create: no worker cores";
  if List.mem dispatcher_core worker_cores then
    invalid_arg "Centralized.create: dispatcher core cannot also be a worker";
  (match watchdog with
  | Some bound when bound <= 0 ->
      invalid_arg "Centralized.create: watchdog bound must be positive"
  | Some _ | None -> ());
  let alloc = match alloc with Some a -> a | None -> Allocator.default_config () in
  let workers =
    Array.of_list
      (List.map
         (fun core_id ->
           {
             core_id;
             current = None;
             completion = None;
             gen = 0;
             reserved = false;
             incoming = -1;
             busy_from = 0;
             active_app = 0;
             stolen_until = 0;
           })
         worker_cores)
  in
  let t =
    {
      machine;
      engine = Machine.engine machine;
      kmod;
      dispatcher_core;
      workers;
      mech = mechanism;
      quantum;
      alloc_cfg = alloc;
      immediate;
      allocator = None;
      be_allowance = Array.length workers;
      policy = Sched_ops.null_instance;
      probe = { Sched_ops.queued = (fun () -> 0); oldest_wait = (fun () -> 0) };
      disp_busy_until = 0;
      kthreads = Hashtbl.create 64;
      apps = [];
      daemon = App.daemon ();
      be_app = None;
      be_queue = Runqueue.create ();
      preempts = 0;
      be_preempts = 0;
      dispatches = 0;
      watchdog;
      rescue_detect = Histogram.create ();
      queue_depth = Timeseries.create ();
      rescues = 0;
      failovers = 0;
      deadline_drops = 0;
      trace = None;
    }
  in
  let policy, probe =
    Sched_ops.instrument
      ~now:(fun () -> now t)
      ~on_change:(fun n -> Timeseries.record t.queue_depth ~at:(now t) n)
      (ctor (worker_view t))
  in
  t.policy <- policy;
  t.probe <- probe;
  Array.iter
    (fun w ->
      let kt = register_kthread t 0 w.core_id in
      ignore (Kmod.activate kmod kt))
    workers;
  Array.iter
    (fun w ->
      Kmod.on_steal kmod ~core:w.core_id (fun ~duration ->
          on_worker_steal t w ~duration))
    workers;
  Kmod.on_steal kmod ~core:dispatcher_core (fun ~duration ->
      t.disp_busy_until <- max t.disp_busy_until (now t + duration));
  (match watchdog with
  | Some bound ->
      Engine.every t.engine ~period:(max 1 (bound / 2)) (fun () ->
          watchdog_scan t ~bound;
          true)
  | None -> ());
  t

let create_app t ~name =
  let app = App.create ~name in
  t.apps <- app :: t.apps;
  Array.iter (fun w -> ignore (register_kthread t app.App.id w.core_id)) t.workers;
  app

let attach_be_app t app ~chunk ~workers =
  if t.be_app <> None then invalid_arg "Centralized.attach_be_app: BE app already set";
  if not (List.exists (fun a -> a == app) t.apps) then
    invalid_arg "Centralized.attach_be_app: app not created by this runtime";
  t.be_app <- Some app;
  for i = 1 to workers do
    (* A batch worker is an endless sequence of compute chunks, yielding
       between chunks so reclaimed cores come back promptly. *)
    let rec loop () = Coro.Compute (chunk, fun () -> Coro.Yield loop) in
    let task =
      Task.create ~app:app.App.id ~name:(Printf.sprintf "be-%d" i) (loop ())
    in
    app.App.spawned <- app.App.spawned + 1;
    app.App.tasks_alive <- app.App.tasks_alive + 1;
    Runqueue.push_tail t.be_queue task
  done;
  (* Core allocation: the allocator arbitrates LC vs BE core ownership from
     here on.  BE starts at its burstable ceiling (all cores by default) and
     the policy reclaims cores as LC congestion appears. *)
  let total = Array.length t.workers in
  let cfg = t.alloc_cfg in
  let burst = min (Option.value cfg.Allocator.be_burstable ~default:total) total in
  let guar = min (max 0 cfg.Allocator.be_guaranteed) burst in
  t.be_allowance <- burst;
  let alloc =
    Allocator.create ~engine:t.engine ~policy:cfg.Allocator.policy
      ~interval:cfg.Allocator.interval ~total_cores:total
      ~on_event:(fun ev ->
        match ev.Allocator.action with
        | Allocator.Degraded ->
            trace_instant t ~core:t.dispatcher_core Trace.Alloc_degrade
              ev.Allocator.app_name
        | Allocator.Recovered ->
            trace_instant t ~core:t.dispatcher_core Trace.Alloc_recover
              ev.Allocator.app_name
        | Allocator.Granted | Allocator.Reclaimed | Allocator.Yielded -> ())
      ?degrade_after:cfg.Allocator.degrade_after ()
  in
  Allocator.register alloc ~app:0 ~name:"lc" ~kind:Alloc_policy.Lc
    ~bounds:{ Allocator.guaranteed = 0; burstable = total }
    ~initial:(total - burst)
    ~sample:(fun () ->
      {
        Allocator.runq_len = t.probe.Sched_ops.queued ();
        oldest_delay = t.probe.Sched_ops.oldest_wait ();
        busy_ns = lc_busy_ns t;
      })
    ~apply:(fun ~granted:_ ~delta:_ -> 0);
  Allocator.register alloc ~app:app.App.id ~name:app.App.name
    ~kind:Alloc_policy.Be
    ~bounds:{ Allocator.guaranteed = guar; burstable = burst }
    ~initial:burst
    ~sample:(fun () ->
      {
        Allocator.runq_len = Runqueue.length t.be_queue;
        oldest_delay = 0;
        busy_ns = be_busy_ns t app;
      })
    ~apply:(fun ~granted ~delta ->
      set_be_allowance t granted;
      (* Moving a core between applications costs an inter-application
         switch at the next dispatch on that core (§5.4); account it on
         the BE side only so each move is charged once. *)
      Costs.app_switch_ns * abs delta);
  Allocator.start alloc;
  t.allocator <- Some alloc;
  Array.iter (fun w -> try_next t w) t.workers

let allocator t = t.allocator

let pump t =
  let made_progress = ref true in
  while !made_progress do
    made_progress := false;
    if queue_length t > 0 then
      match
        Array.to_list t.workers
        |> List.find_opt (fun w -> w.current = None && not w.reserved)
      with
      | Some w ->
          try_next t w;
          made_progress := true
      | None -> ()
  done;
  (* No free worker: under immediate reclaim, kick BE work off a core. *)
  if queue_length t > 0 && t.immediate then begin
    let want = queue_length t in
    let reclaimed = ref 0 in
    Array.iter
      (fun w -> if !reclaimed < want && preempt_be_worker t w then incr reclaimed)
      t.workers
  end

(* ---- deadlines ----------------------------------------------------------- *)

let deadline_expired t (task : Task.t) ~on_drop =
  let app = find_app t task.Task.app in
  app.App.tasks_alive <- app.App.tasks_alive - 1;
  Summary.record_drop app.App.summary;
  t.deadline_drops <- t.deadline_drops + 1;
  trace_instant t ~core:(max 0 task.Task.last_core) Trace.Deadline_drop
    task.Task.name;
  match on_drop with Some f -> f task | None -> ()

let kill t ?on_drop (task : Task.t) =
  if not task.Task.killed then
    match task.Task.state with
    | Task.Exited -> ()
    | Task.Running -> (
        match
          Array.find_opt
            (fun w ->
              match w.current with Some cur -> cur == task | None -> false)
            t.workers
        with
        | Some w ->
            (match w.completion with
            | Some h ->
                Eventq.cancel h;
                w.completion <- None
            | None -> ());
            task.Task.killed <- true;
            task.Task.state <- Task.Exited;
            account t w;
            w.current <- None;
            w.gen <- w.gen + 1;
            t.policy.task_terminate task;
            deadline_expired t task ~on_drop;
            try_next t w
        | None -> ())
    | Task.Runnable ->
        (* Somewhere in a runqueue: account the drop now, discard lazily at
           the next dequeue (see [next_lc]). *)
        task.Task.killed <- true;
        deadline_expired t task ~on_drop
    | Task.Blocked ->
        task.Task.killed <- true;
        task.Task.state <- Task.Exited;
        t.policy.task_terminate task;
        deadline_expired t task ~on_drop

let submit t app ?(service = 0) ?(record = true) ?deadline ?on_drop ~name body =
  let arrival = now t in
  let on_exit =
    if record then
      Some
        (fun (task : Task.t) ->
          if task.Task.service > 0 then begin
            Summary.record_request app.App.summary ~arrival:task.arrival
              ~completion:(now t) ~service:task.service;
            Attribution.record app.App.attribution
              ~queueing:task.Task.obs_queued_ns
              ~overhead:task.Task.obs_overhead_ns ~stall:task.Task.obs_stall_ns
              ~response:(now t - task.Task.obs_start)
              ~declared:task.Task.service
          end)
    else None
  in
  let task = Task.create ~app:app.App.id ~name ~arrival ~service ?on_exit body in
  task.Task.obs_start <- now t;
  task.Task.obs_enq_at <- now t;
  app.App.spawned <- app.App.spawned + 1;
  app.App.tasks_alive <- app.App.tasks_alive + 1;
  t.policy.task_init task;
  t.policy.task_enqueue ~cpu:t.dispatcher_core ~reason:Sched_ops.Enq_new task;
  pump t;
  (match deadline with
  | Some d ->
      if d <= 0 then invalid_arg "Centralized.submit: deadline must be positive";
      ignore (Engine.after t.engine d (fun () -> kill t ?on_drop task))
  | None -> ());
  task

let wakeup t (task : Task.t) =
  match task.state with
  | Task.Blocked ->
      task.state <- Task.Runnable;
      task.resuming <- true;
      task.wake_time <- Some (now t);
      task.obs_stall_ns <- task.obs_stall_ns + max 0 (now t - task.obs_block_at);
      task.obs_enq_at <- now t;
      trace_instant t ~core:(max 0 task.last_core) Trace.Wakeup task.name;
      ignore (t.policy.task_wakeup ~waker_cpu:t.dispatcher_core task);
      pump t
  | Task.Running | Task.Runnable -> task.pending_wake <- true
  | Task.Exited -> ()

let preemptions t = t.preempts
let dispatches t = t.dispatches
let be_preemptions t = t.be_preempts
let watchdog_rescues t = t.rescues
let failovers t = t.failovers
let rescue_detection t = t.rescue_detect
let deadline_drops t = t.deadline_drops
let set_trace t trace = t.trace <- Some trace
let queue_depth_series t = t.queue_depth

let worker_busy_ns t =
  List.fold_left (fun acc app -> acc + app.App.busy_ns) t.daemon.App.busy_ns t.apps

(* Pull-based registration: every closure reads existing state at snapshot
   time, so attaching a registry cannot perturb the simulation. *)
let register_metrics t ?(labels = []) reg =
  let c name help read = Registry.counter reg ~help ~labels name read in
  c "skyloft_central_dispatches_total" "Tasks assigned to workers" (fun () ->
      t.dispatches);
  c "skyloft_central_preemptions_total" "Quantum preemptions sent" (fun () ->
      t.preempts);
  c "skyloft_central_be_preemptions_total" "Best-effort workers preempted"
    (fun () -> t.be_preempts);
  c "skyloft_central_watchdog_rescues_total" "Stuck workers rescued" (fun () ->
      t.rescues);
  c "skyloft_central_failovers_total" "Dispatcher failovers" (fun () ->
      t.failovers);
  c "skyloft_central_deadline_drops_total" "Tasks killed at their deadline"
    (fun () -> t.deadline_drops);
  Registry.gauge reg ~labels "skyloft_central_be_allowance"
    ~help:"Workers the best-effort application may occupy" (fun () ->
      float_of_int t.be_allowance);
  Registry.gauge reg ~labels "skyloft_central_queue_length"
    ~help:"LC tasks waiting at the dispatcher" (fun () ->
      float_of_int (queue_length t));
  Registry.histogram reg ~labels "skyloft_central_rescue_detection_ns"
    ~help:"Watchdog detection latency past the bound" t.rescue_detect;
  Registry.series reg ~labels "skyloft_central_queue_depth"
    ~help:"LC policy queue length" t.queue_depth;
  List.iter
    (fun (app : App.t) ->
      let al = labels @ [ Registry.app app.App.name ] in
      Registry.counter reg ~labels:al "skyloft_app_spawned_total"
        ~help:"Tasks spawned" (fun () -> app.App.spawned);
      Registry.counter reg ~labels:al "skyloft_app_completed_total"
        ~help:"Tasks completed" (fun () -> app.App.completed);
      Registry.counter reg ~labels:al "skyloft_app_busy_ns_total"
        ~help:"Accumulated worker CPU time" (fun () -> app.App.busy_ns);
      Registry.histogram reg ~labels:al "skyloft_app_response_ns"
        ~help:"Request response time" (Summary.latency app.App.summary);
      Attribution.register reg ~labels:al app.App.attribution)
    t.apps
