module Time = Skyloft_sim.Time
module Coro = Skyloft_sim.Coro
module Engine = Skyloft_sim.Engine
module Eventq = Skyloft_sim.Eventq
module Machine = Skyloft_hw.Machine
module Costs = Skyloft_hw.Costs
module Vectors = Skyloft_hw.Vectors
module Kmod = Skyloft_kernel.Kmod
module Trace = Skyloft_stats.Trace
module Allocator = Skyloft_alloc.Allocator
module Registry = Skyloft_obs.Registry
module Rc = Runtime_core

(* The centralized runtime is Runtime_core plus its DISPATCH substrate: a
   dedicated dispatcher core modelled as a serial resource that assigns
   work to workers and preempts over-quantum requests with IPIs
   (Shinjuku-style PS).  Lifecycle, accounting, BE occupancy, deadlines,
   allocator and metrics all live in the core. *)

type mechanism = {
  mech_name : string;
  dispatch_cost : Time.t;
  preempt_send : Time.t;
  preempt_delivery : Time.t;
  preempt_receive : Time.t;
  worker_switch : Time.t;
}

let skyloft_mechanism =
  {
    mech_name = "Skyloft";
    dispatch_cost = 100;
    preempt_send = Costs.uipi_send_ns ~cross_numa:false;
    preempt_delivery = Costs.uipi_delivery_ns ~cross_numa:false;
    preempt_receive = Costs.uipi_receive_ns ~cross_numa:false + Costs.uthread_yield_ns;
    worker_switch = Costs.uthread_yield_ns;
  }

(* Dune posted interrupts avoid kernel entries on the sender but trap into
   the guest on delivery; measured overheads in the Shinjuku paper are a
   small multiple of user IPIs. *)
let shinjuku_mechanism =
  {
    mech_name = "Shinjuku";
    dispatch_cost = 120;
    preempt_send = 250;
    preempt_delivery = 1_400;
    preempt_receive = 650;
    worker_switch = 60;
  }

(* ghOSt: every dispatch is an agent decision committed through a kernel
   transaction; preemption rides kernel IPIs; workers are kernel threads. *)
let ghost_mechanism =
  {
    mech_name = "ghOSt";
    dispatch_cost = 1_200;
    preempt_send = Costs.kipi_send_ns;
    preempt_delivery = Costs.kipi_delivery_ns;
    preempt_receive = Costs.kipi_receive_ns;
    worker_switch = Costs.linux_ctx_switch_ns;
  }

type worker = {
  ex : Rc.exec;
  mutable gen : int;  (* assignment generation, guards stale events *)
  mutable reserved : bool;  (* an assignment is in flight *)
  mutable incoming : int;  (* app of the in-flight assignment; -1 if none *)
  qtimer : Engine.timer;  (* reusable quantum timer, re-armed per dispatch *)
  mutable qt_gen : int;  (* [gen] at the last quantum arm *)
}

type t = {
  rc : Rc.t;
  dispatcher_core : int;
  workers : worker array;
  mech : mechanism;
  quantum : Time.t;
  alloc_cfg : Allocator.config;
  immediate : bool;  (* preempt BE the instant an LC request cannot place *)
  mutable disp_busy_until : Time.t;
  mutable dispatches : int;
  mutable failovers : int;
}

let now t = Rc.now t.rc
let quantum t = t.quantum

(* The dispatcher is a serial resource; [f] runs when it has spent [cost]
   on this operation. *)
let dispatcher_do t cost f =
  let start = max (now t) t.disp_busy_until in
  t.disp_busy_until <- start + cost;
  ignore (Engine.at t.rc.Rc.engine (start + cost) f)

(* ---- worker-side execution ---------------------------------------------- *)

let rec start_on t w (task : Task.t) =
  w.reserved <- false;
  w.incoming <- -1;
  t.dispatches <- t.dispatches + 1;
  let switch_cost =
    if task.Task.app = w.ex.Rc.active_app then t.mech.worker_switch
    else Rc.app_switch t.rc w.ex task
  in
  task.Task.wake_time <- None;
  let start = Rc.begin_run t.rc w.ex task ~switch_cost in
  w.gen <- w.gen + 1;
  (* Arm the quantum timer for LC work (Shinjuku-style PS): the worker's
     one reusable timer, re-armed per dispatch, supersedes stale firings. *)
  if t.quantum > 0 && not (Rc.is_be t.rc task) then begin
    w.qt_gen <- w.gen;
    Engine.arm w.qtimer ~at:(start + t.quantum)
  end;
  Rc.run_after_switch t.rc w.ex task ~switch_cost

and assign t w (task : Task.t) =
  w.reserved <- true;
  w.incoming <- task.Task.app;
  dispatcher_do t t.mech.dispatch_cost (fun () -> start_on t w task)

and try_next t w =
  if (not w.reserved) && w.ex.Rc.current = None && not (Rc.unit_capped t.rc w.ex)
  then begin
    match
      Rc.next_live t.rc (fun () ->
          t.rc.Rc.policy.task_dequeue ~cpu:w.ex.Rc.exec_core)
    with
    | Some task -> assign t w task
    | None ->
        (* BE work only on cores inside the allocator's current grant *)
        if Rc.be_occupancy t.rc < t.rc.Rc.be_allowance then (
          match Rc.next_live t.rc (fun () -> Runqueue.pop_head t.rc.Rc.be_queue) with
          | Some be -> assign t w be
          | None -> ())
  end

(* Preemption of the task currently on [w]; the caller already charged the
   delivery latency.  [requeue] decides where the preempted task goes. *)
and do_preempt t w gen ~requeue =
  if w.gen = gen then
    match Rc.depose t.rc w.ex ~overhead:t.mech.preempt_receive with
    | Some task ->
        requeue task;
        try_next t w
    | None -> ()

(* The preemption notification in flight from dispatcher to worker.  Its
   modeled delivery path is an engine delay, so injected IPI faults are
   consulted here: a dropped notification silently loses the preemption
   (the §3.2 lost-wakeup window — the watchdog is the backstop), a delayed
   one stretches the delivery latency. *)
and deliver_preempt t w gen ~requeue =
  match
    Machine.fault_fate t.rc.Rc.machine ~core:w.ex.Rc.exec_core
      Vectors.uintr_notification
  with
  | Machine.Drop -> ()
  | Machine.Delay d ->
      ignore
        (Engine.after t.rc.Rc.engine (t.mech.preempt_delivery + d) (fun () ->
             do_preempt t w gen ~requeue))
  | Machine.Deliver ->
      ignore
        (Engine.after t.rc.Rc.engine t.mech.preempt_delivery (fun () ->
             do_preempt t w gen ~requeue))

and quantum_check t w (task : Task.t) gen =
  let still_running =
    match w.ex.Rc.current with
    | Some cur -> cur == task && w.gen = gen
    | None -> false
  in
  if still_running then begin
    t.rc.Rc.preempts <- t.rc.Rc.preempts + 1;
    dispatcher_do t t.mech.preempt_send (fun () ->
        deliver_preempt t w gen ~requeue:(fun task ->
            t.rc.Rc.policy.task_enqueue ~cpu:t.dispatcher_core
              ~reason:Sched_ops.Enq_preempted task))
  end

(* The quantum timer's stable callback: [quantum_check] compares [qt_gen]
   (recorded at arm time) against the live generation, so a dispatch that
   already ended is left alone. *)
let quantum_fire t w =
  match w.ex.Rc.current with
  | Some task -> quantum_check t w task w.qt_gen
  | None -> ()

let preempt_be_worker t w =
  match w.ex.Rc.current with
  | Some task
    when Rc.is_be t.rc task && not (Eventq.is_null w.ex.Rc.completion) ->
      let gen = w.gen in
      t.rc.Rc.be_preempts <- t.rc.Rc.be_preempts + 1;
      dispatcher_do t t.mech.preempt_send (fun () ->
          deliver_preempt t w gen ~requeue:(fun task ->
              Runqueue.push_head t.rc.Rc.be_queue task));
      true
  | _ -> false

(* ---- watchdog: dispatcher failover + stuck-worker rescue ----------------- *)

let rescue_worker t w ~late =
  Rc.rescued t.rc w.ex ~late;
  do_preempt t w w.gen ~requeue:(fun task ->
      if Rc.is_be t.rc task then Runqueue.push_head t.rc.Rc.be_queue task
      else
        t.rc.Rc.policy.task_enqueue ~cpu:t.dispatcher_core
          ~reason:Sched_ops.Enq_preempted task)

let watchdog_scan t ~bound =
  (* Dispatcher failover: the serial dispatcher is wedged more than a full
     bound into the future (host-kernel steal, runaway operation).  Promote
     a worker into the dispatcher role — one inter-application switch, then
     dispatching resumes; operations already queued behind the stall still
     complete at their scheduled times. *)
  if t.disp_busy_until > now t + bound then begin
    t.failovers <- t.failovers + 1;
    Rc.trace_instant t.rc ~core:t.dispatcher_core Trace.Failover "dispatcher";
    t.disp_busy_until <- now t + Costs.app_switch_ns
  end;
  Array.iter
    (fun w ->
      if now t >= w.ex.Rc.stolen_until then
        match w.ex.Rc.current with
        | Some task when not (Eventq.is_null w.ex.Rc.completion) ->
            (* A quantum-sized run is legitimate; a full bound past the
               expected preemption point means the preemption was lost. *)
            let allowed =
              bound
              + if t.quantum > 0 && not (Rc.is_be t.rc task) then t.quantum else 0
            in
            let overrun = now t - task.Task.run_start - allowed in
            if overrun > 0 then rescue_worker t w ~late:overrun
        | _ -> ())
    t.workers

(* ---- core allocation ----------------------------------------------------- *)

let queue_length t = t.rc.Rc.probe.Sched_ops.queued ()

(* Change how many workers BE may occupy.  Shrinking preempts the excess
   BE workers with user IPIs; the next LC dispatch on those cores goes
   through [Kmod.switch_to], charging the §5.4 inter-application switch
   cost.  Growing kicks idle workers so they pick up BE work (again paying
   the switch cost at dispatch). *)
let set_be_allowance t n =
  let old = t.rc.Rc.be_allowance in
  t.rc.Rc.be_allowance <- n;
  if n < old then begin
    let excess = ref (Rc.be_occupancy t.rc - n) in
    if !excess > 0 then
      Array.iter
        (fun w -> if !excess > 0 && preempt_be_worker t w then decr excess)
        t.workers
  end
  else if n > old then Array.iter (fun w -> try_next t w) t.workers

(* Preempt whatever runs on [w] — LC or BE — because the broker capped the
   worker out; the refugee requeues at the dispatcher (LC) or BE queue
   head.  Rides the same send/deliver path as quantum preemption, so IPI
   faults apply and [try_next]'s gate keeps the worker empty afterwards. *)
let preempt_capped_worker t w =
  match w.ex.Rc.current with
  | Some task when not (Eventq.is_null w.ex.Rc.completion) ->
      let gen = w.gen in
      if Rc.is_be t.rc task then
        t.rc.Rc.be_preempts <- t.rc.Rc.be_preempts + 1
      else t.rc.Rc.preempts <- t.rc.Rc.preempts + 1;
      dispatcher_do t t.mech.preempt_send (fun () ->
          deliver_preempt t w gen ~requeue:(fun task ->
              if Rc.is_be t.rc task then Runqueue.push_head t.rc.Rc.be_queue task
              else
                t.rc.Rc.policy.task_enqueue ~cpu:t.dispatcher_core
                  ~reason:Sched_ops.Enq_preempted task))
  | _ -> ()

(* The machine-level broker's reclaim/grant muscle: how many workers this
   runtime may occupy at all ({!set_be_allowance} one level up; allowed
   workers are always the creation-order prefix).  Shrinking preempts the
   newly capped workers; an assignment already in flight toward one still
   runs its segment there — enforcement happens at the next scheduling
   point, exactly like a quantum.  Growing redrives dispatch over the
   workers handed back. *)
let set_core_allowance t n =
  let old = t.rc.Rc.core_allowance in
  Rc.set_core_allowance t.rc n;
  let n = t.rc.Rc.core_allowance in
  if n < old then
    Array.iter
      (fun w -> if Rc.unit_capped t.rc w.ex then preempt_capped_worker t w)
      t.workers
  else if n > old then Array.iter (fun w -> try_next t w) t.workers

let core_allowance t = t.rc.Rc.core_allowance
let congestion t = Rc.congestion t.rc

(* ---- construction -------------------------------------------------------- *)

let create machine kmod ~dispatcher_core ~worker_cores ~quantum
    ?(mechanism = skyloft_mechanism) ?alloc ?(immediate = false) ?watchdog ctor =
  if worker_cores = [] then invalid_arg "Centralized.create: no worker cores";
  if List.mem dispatcher_core worker_cores then
    invalid_arg "Centralized.create: dispatcher core cannot also be a worker";
  (match watchdog with
  | Some bound when bound <= 0 ->
      invalid_arg "Centralized.create: watchdog bound must be positive"
  | Some _ | None -> ());
  let alloc = match alloc with Some a -> a | None -> Allocator.default_config () in
  let engine = Machine.engine machine in
  let workers =
    Array.of_list
      (List.map
         (fun core_id ->
           {
             ex = Rc.make_exec core_id;
             gen = 0;
             reserved = false;
             incoming = -1;
             qtimer = Engine.timer engine ignore;
             qt_gen = 0;
           })
         worker_cores)
  in
  let t =
    {
      rc = Rc.create machine kmod ~record_wakeups:false ~trace_app_switches:false;
      dispatcher_core;
      workers;
      mech = mechanism;
      quantum;
      alloc_cfg = alloc;
      immediate;
      disp_busy_until = 0;
      dispatches = 0;
      failovers = 0;
    }
  in
  let by_core = Hashtbl.create 16 in
  Array.iter (fun w -> Hashtbl.replace by_core w.ex.Rc.exec_core w) workers;
  Array.iter (fun w -> Engine.set_callback w.qtimer (fun () -> quantum_fire t w)) workers;
  Rc.install_dispatch t.rc
    {
      Rc.d_name = "centralized";
      d_units = Array.map (fun w -> w.ex) workers;
      d_enqueue_cpu = (fun _ -> t.dispatcher_core);
      d_incoming_app =
        (fun ex -> (Hashtbl.find by_core ex.Rc.exec_core).incoming);
      d_released = (fun ex -> let w = Hashtbl.find by_core ex.Rc.exec_core in
                              w.gen <- w.gen + 1);
      d_reschedule =
        (fun ex ~prev:_ -> try_next t (Hashtbl.find by_core ex.Rc.exec_core));
    };
  Rc.install_policy t.rc ctor;
  Array.iter
    (fun w ->
      let kt = Rc.add_kthread t.rc ~app:0 ~core:w.ex.Rc.exec_core in
      ignore (Kmod.activate kmod kt))
    workers;
  Array.iter
    (fun w ->
      Kmod.on_steal kmod ~core:w.ex.Rc.exec_core (fun ~duration ->
          Rc.freeze_for_steal t.rc w.ex ~duration))
    workers;
  Kmod.on_steal kmod ~core:dispatcher_core (fun ~duration ->
      t.disp_busy_until <- max t.disp_busy_until (now t + duration));
  Rc.start_watchdog t.rc ~bound:watchdog (fun ~bound -> watchdog_scan t ~bound);
  t

let create_app t ~name =
  let app = Rc.new_app t.rc ~name in
  Array.iter
    (fun w -> ignore (Rc.add_kthread t.rc ~app:app.App.id ~core:w.ex.Rc.exec_core))
    t.workers;
  app

let attach_be_app t app ~chunk ~workers =
  Rc.spawn_be_workers t.rc app ~chunk ~workers
    ~who:"Centralized.attach_be_app";
  (* Core allocation: the allocator arbitrates LC vs BE core ownership from
     here on.  BE starts at its burstable ceiling (all cores by default) and
     the policy reclaims cores as LC congestion appears. *)
  Rc.start_allocator t.rc ~cfg:t.alloc_cfg ~be:app
    ~on_event:(fun ev ->
      match ev.Allocator.action with
      | Allocator.Degraded ->
          Rc.trace_instant t.rc ~core:t.dispatcher_core Trace.Alloc_degrade
            ev.Allocator.app_name
      | Allocator.Recovered ->
          Rc.trace_instant t.rc ~core:t.dispatcher_core Trace.Alloc_recover
            ev.Allocator.app_name
      | Allocator.Granted | Allocator.Reclaimed | Allocator.Yielded -> ())
    ~set_allowance:(set_be_allowance t);
  Array.iter (fun w -> try_next t w) t.workers

let allocator t = t.rc.Rc.allocator

let pump t =
  let made_progress = ref true in
  while !made_progress do
    made_progress := false;
    if queue_length t > 0 then
      match
        Array.to_list t.workers
        |> List.find_opt (fun w ->
               w.ex.Rc.current = None && (not w.reserved)
               && not (Rc.unit_capped t.rc w.ex))
      with
      | Some w ->
          try_next t w;
          made_progress := true
      | None -> ()
  done;
  (* No free worker: under immediate reclaim, kick BE work off a core. *)
  if queue_length t > 0 && t.immediate then begin
    let want = queue_length t in
    let reclaimed = ref 0 in
    Array.iter
      (fun w -> if !reclaimed < want && preempt_be_worker t w then incr reclaimed)
      t.workers
  end

(* ---- deadlines ----------------------------------------------------------- *)

let kill t ?on_drop task = Rc.kill t.rc ?on_drop task

let submit t app ?(service = 0) ?(record = true) ?deadline ?on_drop ~name body =
  let task = Rc.admit t.rc app ~name ~arrival:(now t) ~service ~record body in
  t.rc.Rc.policy.task_init task;
  t.rc.Rc.policy.task_enqueue ~cpu:t.dispatcher_core ~reason:Sched_ops.Enq_new
    task;
  pump t;
  (match deadline with
  | Some d ->
      Rc.arm_deadline t.rc ?on_drop task ~deadline:d
        ~err:"Centralized.submit: deadline must be positive"
  | None -> ());
  task

let wakeup t (task : Task.t) =
  Rc.awaken t.rc task ~place:(fun task ->
      ignore (t.rc.Rc.policy.task_wakeup ~waker_cpu:t.dispatcher_core task);
      pump t)

let preemptions t = t.rc.Rc.preempts
let dispatches t = t.dispatches
let be_preemptions t = t.rc.Rc.be_preempts
let watchdog_rescues t = t.rc.Rc.rescues
let failovers t = t.failovers
let rescue_detection t = t.rc.Rc.rescue_detect
let deadline_drops t = t.rc.Rc.deadline_drops
let set_trace t trace = t.rc.Rc.trace <- Some trace
let queue_depth_series t = t.rc.Rc.queue_depth
let worker_busy_ns t = Rc.total_busy_ns t.rc

(* Pull-based registration: every closure reads existing state at snapshot
   time, so attaching a registry cannot perturb the simulation. *)
let register_metrics t ?(labels = []) reg =
  let rc = t.rc in
  let c name help read = Registry.counter reg ~help ~labels name read in
  c "skyloft_central_dispatches_total" "Tasks assigned to workers" (fun () ->
      t.dispatches);
  c "skyloft_central_preemptions_total" "Quantum preemptions sent" (fun () ->
      rc.Rc.preempts);
  c "skyloft_central_be_preemptions_total" "Best-effort workers preempted"
    (fun () -> rc.Rc.be_preempts);
  c "skyloft_central_watchdog_rescues_total" "Stuck workers rescued" (fun () ->
      rc.Rc.rescues);
  c "skyloft_central_failovers_total" "Dispatcher failovers" (fun () ->
      t.failovers);
  c "skyloft_central_deadline_drops_total" "Tasks killed at their deadline"
    (fun () -> rc.Rc.deadline_drops);
  Registry.gauge reg ~labels "skyloft_central_be_allowance"
    ~help:"Workers the best-effort application may occupy" (fun () ->
      float_of_int rc.Rc.be_allowance);
  Registry.gauge reg ~labels "skyloft_central_queue_length"
    ~help:"LC tasks waiting at the dispatcher" (fun () ->
      float_of_int (queue_length t));
  Registry.histogram reg ~labels "skyloft_central_rescue_detection_ns"
    ~help:"Watchdog detection latency past the bound" rc.Rc.rescue_detect;
  Registry.series reg ~labels "skyloft_central_queue_depth"
    ~help:"LC policy queue length" rc.Rc.queue_depth;
  Rc.register_app_metrics rc ~labels reg
