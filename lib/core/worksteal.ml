module Time = Skyloft_sim.Time
module Coro = Skyloft_sim.Coro
module Engine = Skyloft_sim.Engine
module Eventq = Skyloft_sim.Eventq
module Machine = Skyloft_hw.Machine
module Costs = Skyloft_hw.Costs
module Vectors = Skyloft_hw.Vectors
module Kmod = Skyloft_kernel.Kmod
module Histogram = Skyloft_stats.Histogram
module Trace = Skyloft_stats.Trace
module Timeseries = Skyloft_stats.Timeseries
module Allocator = Skyloft_alloc.Allocator
module Registry = Skyloft_obs.Registry
module Rc = Runtime_core

(* The work-stealing runtime: Runtime_core plus per-core DEQUES with
   steal-half rebalancing (Shenango §5.3 made first-class).  Each core owns
   a deque — the owner pushes and pops at the head for LIFO cache locality,
   preempted and yielded tasks go to the tail — and a core whose deque runs
   dry scans the other deques round-robin from a persisted per-thief cursor
   and takes HALF the first non-empty victim's queue in one grab.  Stealing
   is not free: every probed victim deque costs a remote cacheline touch and
   every migrated task drags its state across cores, both charged as
   scheduling overhead on the stolen dispatch.  A core whose scan finds
   nothing parks (Shenango-style yield to the kernel) — immediately once
   scans keep failing, after a grace period otherwise — so steal storms
   under uniform overload burn park/unpark transitions instead of unbounded
   rescans.  Everything else — lifecycle, accounting, BE occupancy,
   deadlines, allocator, metrics — lives in the core. *)

(* Probing a victim's deque reads a remotely owned cacheline. *)
let steal_probe_ns = Time.of_cycles Costs.remote_cacheline

(* A migrated task's descriptor + hot stack lines move to the thief. *)
let steal_task_ns = Time.of_cycles (2 * Costs.remote_cacheline)

(* Consecutive failed scans before an idle core parks without grace. *)
let storm_park_after = 2

let default_park = Some (Time.us 5, Costs.linux_wakeup_switch_ns + Time.us 1)

type cpu = {
  ex : Rc.exec;
  deque : Runqueue.t;  (* owner: head (LIFO); thieves: tail (steal-half) *)
  mutable kick_pending : bool;
  mutable parked : bool;  (* yielded to the kernel while idle (Shenango) *)
  mutable idle_gen : int;  (* invalidates stale park timers *)
  mutable last_sched : Time.t;  (* last scheduling point (watchdog) *)
  mutable cursor : int;  (* persisted round-robin steal cursor (index) *)
  mutable fail_streak : int;  (* consecutive failed steal scans *)
  mutable pending_steal_cost : Time.t;  (* charged on the next dispatch *)
}

type t = {
  rc : Rc.t;
  cores : int array;
  cpus : cpu array;
  by_core : (int, cpu) Hashtbl.t;
  timer_hz : int;
  preemption : bool;
  park : (Time.t * Time.t) option;  (* (idle_after, resume_cost) *)
  mutable ticks : int;
  mutable rr_spawn : int;  (* round-robin spawn placement cursor *)
  mutable wake_rr : int;  (* rotating fallback for unmanaged wakers *)
  mutable steals : int;  (* successful steal-half grabs *)
  mutable stolen_tasks : int;  (* tasks migrated by those grabs *)
  mutable steal_fails : int;  (* full victim scans that found nothing *)
  mutable parks : int;
  mutable unparks : int;
  uvec_handlers : (int, int -> unit) Hashtbl.t;
}

let now t = Rc.now t.rc
let cpu_of t core = Hashtbl.find t.by_core core

let is_idle t ~core =
  match Hashtbl.find_opt t.by_core core with
  | Some cpu -> cpu.ex.Rc.current = None && not (Rc.unit_capped t.rc cpu.ex)
  | None -> false

let view t = Rc.view t.rc

(* ---- the steal-half policy ---------------------------------------------- *)

(* The deque discipline is the runtime, not a pluggable policy — but it is
   still installed through {!Rc.install_policy} so the congestion probe and
   queue-depth series instrument it exactly like the other runtimes'
   policies.  [sched_balance] moves the victim's tail half into the thief's
   deque and returns one task to run; the rest stay queued on the thief, so
   the instrumented queue count (one decrement per successful balance)
   remains exact. *)
let steal_ctor t quantum : Sched_ops.ctor =
 fun view ->
  let n = Array.length view.cores in
  let q core = (cpu_of t core).deque in
  let index = Hashtbl.create 32 in
  Array.iteri (fun i core -> Hashtbl.replace index core i) view.cores;
  let idx_of core = match Hashtbl.find_opt index core with Some i -> i | None -> 0 in
  {
    Sched_ops.policy_name =
      (match quantum with Some _ -> "worksteal-preemptive" | None -> "worksteal");
    task_init = ignore;
    task_terminate = ignore;
    task_enqueue =
      (fun ~cpu ~reason task ->
        match reason with
        | Sched_ops.Enq_preempted | Sched_ops.Enq_yielded ->
            Runqueue.push_tail (q cpu) task
        | Sched_ops.Enq_new | Sched_ops.Enq_woken -> Runqueue.push_head (q cpu) task);
    task_dequeue = (fun ~cpu -> Runqueue.pop_head (q cpu));
    task_block = (fun ~cpu:_ _ -> ());
    task_wakeup =
      (fun ~waker_cpu task ->
        let target =
          if Hashtbl.mem index waker_cpu then waker_cpu
          else begin
            let fallback = view.cores.(t.wake_rr mod n) in
            t.wake_rr <- (t.wake_rr + 1) mod n;
            Sched_ops.wakeup_to_idle_or view ~fallback
          end
        in
        Runqueue.push_head (q target) task;
        target);
    sched_timer_tick =
      (fun ~cpu task ->
        match quantum with
        | None -> false
        | Some quantum ->
            (not (Runqueue.is_empty (q cpu)))
            && view.now () - task.Task.run_start >= quantum);
    sched_balance =
      (fun ~cpu ->
        let thief = cpu_of t cpu in
        let self = idx_of cpu in
        let start = if thief.cursor >= 0 then thief.cursor else (self + 1) mod n in
        let stolen = ref None in
        let probes = ref 0 in
        let k = ref 0 in
        while !stolen = None && !k < n do
          let idx = (start + !k) mod n in
          if idx <> self then begin
            incr probes;
            let victim = q view.cores.(idx) in
            if not (Runqueue.is_empty victim) then begin
              let moved = Runqueue.steal_half ~from:victim ~into:thief.deque in
              t.steals <- t.steals + 1;
              t.stolen_tasks <- t.stolen_tasks + moved;
              thief.cursor <- (idx + 1) mod n;
              thief.pending_steal_cost <-
                thief.pending_steal_cost
                + (!probes * steal_probe_ns)
                + (moved * steal_task_ns);
              stolen := Runqueue.pop_head thief.deque
            end
          end;
          incr k
        done;
        if !stolen = None then begin
          t.steal_fails <- t.steal_fails + 1;
          thief.fail_streak <- thief.fail_streak + 1
        end;
        !stolen);
  }

(* ---- dispatch & the main loop ------------------------------------------ *)

let rec schedule t cpu ~prev =
  let rc = t.rc in
  if Rc.unit_capped rc cpu.ex then begin
    (* The broker took this core: it may not pick anything up.  Queued
       work is recovered by allowed cores' steals and kicks. *)
    cpu.ex.Rc.current <- None;
    cpu.idle_gen <- cpu.idle_gen + 1
  end
  else
    let pick () =
      (* BE-first inside the allowance, then the own deque, then steal. *)
      let be_next =
        if Rc.be_occupancy rc < rc.Rc.be_allowance then
          Runqueue.pop_head rc.Rc.be_queue
        else None
      in
      match be_next with
      | Some task -> Some task
      | None -> (
          match rc.Rc.policy.task_dequeue ~cpu:cpu.ex.Rc.exec_core with
          | Some task -> Some task
          | None -> rc.Rc.policy.sched_balance ~cpu:cpu.ex.Rc.exec_core)
    in
    match Rc.next_live rc pick with
    | None ->
        cpu.ex.Rc.current <- None;
        cpu.idle_gen <- cpu.idle_gen + 1;
        (match t.park with
        | Some (idle_after, _) ->
            if cpu.fail_streak >= storm_park_after then begin
              (* Scans keep coming up empty: park NOW rather than respin
                 the scan on every kick (the steal-storm brake). *)
              if not cpu.parked then begin
                cpu.parked <- true;
                t.parks <- t.parks + 1
              end
            end
            else
              let gen = cpu.idle_gen in
              ignore
                (Engine.after rc.Rc.engine idle_after (fun () ->
                     if
                       cpu.ex.Rc.current = None
                       && cpu.idle_gen = gen
                       && not cpu.parked
                     then begin
                       cpu.parked <- true;
                       t.parks <- t.parks + 1
                     end))
        | None -> ())
    | Some task ->
        let unpark_cost =
          if cpu.parked then begin
            cpu.parked <- false;
            t.unparks <- t.unparks + 1;
            match t.park with Some (_, resume_cost) -> resume_cost | None -> 0
          end
          else 0
        in
        cpu.fail_streak <- 0;
        let steal_cost = cpu.pending_steal_cost in
        cpu.pending_steal_cost <- 0;
        let same = match prev with Some p -> p == task | None -> false in
        let cost =
          if same then 0
          else if task.Task.app = cpu.ex.Rc.active_app then begin
            rc.Rc.switches <- rc.Rc.switches + 1;
            Costs.uthread_yield_ns
          end
          else Rc.app_switch rc cpu.ex task
        in
        dispatch t cpu task ~switch_cost:(cost + unpark_cost + steal_cost)

and dispatch t cpu (task : Task.t) ~switch_cost =
  cpu.last_sched <- now t;
  ignore (Rc.begin_run t.rc cpu.ex task ~switch_cost);
  Rc.run_after_switch t.rc cpu.ex task ~switch_cost

(* ---- preemption --------------------------------------------------------- *)

let preempt_current t cpu =
  match Rc.depose t.rc cpu.ex ~overhead:0 with
  | Some task ->
      t.rc.Rc.preempts <- t.rc.Rc.preempts + 1;
      if Rc.is_be t.rc task then begin
        t.rc.Rc.be_preempts <- t.rc.Rc.be_preempts + 1;
        Runqueue.push_head t.rc.Rc.be_queue task
      end
      else
        t.rc.Rc.policy.task_enqueue ~cpu:cpu.ex.Rc.exec_core
          ~reason:Sched_ops.Enq_preempted task;
      schedule t cpu ~prev:(Some task)
  | None -> ()

let steal_time ?(stall = false) t cpu cost =
  match cpu.ex.Rc.current with
  | Some task when not (Eventq.is_null cpu.ex.Rc.completion) ->
      Engine.cancel t.rc.Rc.engine cpu.ex.Rc.completion;
      task.Task.segment_end <- task.Task.segment_end + cost;
      if stall then task.Task.obs_stall_ns <- task.Task.obs_stall_ns + cost
      else task.Task.obs_overhead_ns <- task.Task.obs_overhead_ns + cost;
      Rc.arm_completion t.rc cpu.ex task
  | _ -> ()

let kick t cpu =
  if cpu.ex.Rc.current = None && not cpu.kick_pending then begin
    cpu.kick_pending <- true;
    (* A stolen core cannot react until the host kernel hands it back. *)
    let delay = max 0 (cpu.ex.Rc.stolen_until - now t) in
    ignore
      (Engine.after t.rc.Rc.engine delay (fun () ->
           cpu.kick_pending <- false;
           if cpu.ex.Rc.current = None then schedule t cpu ~prev:None))
  end

let kick_core t core = kick t (cpu_of t core)

let kick_some_idle t =
  match Sched_ops.pick_idle (view t) with Some core -> kick_core t core | None -> ()

(* Evict whatever runs on a broker-capped core: receive cost, depose, then
   requeue on an allowed core's deque and wake an allowed idle core. *)
let evict_capped t cpu =
  match cpu.ex.Rc.current with
  | Some _ when not (Eventq.is_null cpu.ex.Rc.completion) ->
      steal_time t cpu (Costs.uipi_receive_ns ~cross_numa:false);
      (match Rc.depose t.rc cpu.ex ~overhead:0 with
      | Some task ->
          t.rc.Rc.preempts <- t.rc.Rc.preempts + 1;
          if Rc.is_be t.rc task then begin
            t.rc.Rc.be_preempts <- t.rc.Rc.be_preempts + 1;
            Runqueue.push_head t.rc.Rc.be_queue task
          end
          else
            t.rc.Rc.policy.task_enqueue ~cpu:t.cores.(0)
              ~reason:Sched_ops.Enq_preempted task;
          schedule t cpu ~prev:(Some task);
          kick_some_idle t
      | None -> ())
  | _ -> ()

(* ---- the global user-interrupt handler (Listing 1) ---------------------- *)

let tick_decision t cpu =
  cpu.last_sched <- now t;
  if Rc.unit_capped t.rc cpu.ex then evict_capped t cpu
  else
    match cpu.ex.Rc.current with
    | Some task when not (Eventq.is_null cpu.ex.Rc.completion) ->
        if Rc.is_be t.rc task then begin
          if Rc.be_occupancy t.rc > t.rc.Rc.be_allowance then preempt_current t cpu
        end
        else if t.rc.Rc.policy.sched_timer_tick ~cpu:cpu.ex.Rc.exec_core task then
          preempt_current t cpu
    | _ -> kick t cpu

let on_tick t cpu =
  t.ticks <- t.ticks + 1;
  steal_time t cpu (Costs.user_timer_receive_ns + Costs.senduipi_sn_ns);
  tick_decision t cpu

let on_preempt_ipi t cpu =
  steal_time t cpu (Costs.uipi_receive_ns ~cross_numa:false);
  tick_decision t cpu

let uintr_handler t cpu ctx ~uvec =
  if uvec = Vectors.uvec_timer then begin
    if Machine.uintr_sn ctx then
      Machine.senduipi t.rc.Rc.machine ~src_core:cpu.ex.Rc.exec_core ctx
        ~uvec:Vectors.uvec_timer;
    on_tick t cpu
  end
  else if uvec = Vectors.uvec_preempt then on_preempt_ipi t cpu
  else
    match Hashtbl.find_opt t.uvec_handlers uvec with
    | Some handler ->
        steal_time t cpu (Costs.uipi_receive_ns ~cross_numa:false);
        handler cpu.ex.Rc.exec_core
    | None -> ()

(* ---- watchdog recovery --------------------------------------------------- *)

let rescue t cpu ~bound =
  Rc.rescued t.rc cpu.ex ~late:(max 0 (now t - cpu.last_sched - bound));
  steal_time t cpu (Costs.uipi_receive_ns ~cross_numa:false);
  if t.preemption then begin
    ignore
      (Kmod.timer_set_hz t.rc.Rc.kmod ~core:cpu.ex.Rc.exec_core ~hz:t.timer_hz);
    match Machine.uintr_installed t.rc.Rc.machine ~core:cpu.ex.Rc.exec_core with
    | Some ctx when Machine.uintr_sn ctx ->
        Machine.senduipi t.rc.Rc.machine ~src_core:cpu.ex.Rc.exec_core ctx
          ~uvec:Vectors.uvec_timer
    | Some _ | None -> ()
  end;
  preempt_current t cpu;
  cpu.last_sched <- now t

let watchdog_scan t ~bound =
  Array.iter
    (fun cpu ->
      match cpu.ex.Rc.current with
      | Some _
        when now t >= cpu.ex.Rc.stolen_until
             && (not
                   (Machine.interrupts_masked
                      (Machine.core t.rc.Rc.machine cpu.ex.Rc.exec_core)))
             && now t - cpu.last_sched > bound ->
          rescue t cpu ~bound
      | _ -> ())
    t.cpus

let on_core_steal t cpu ~duration =
  cpu.ex.Rc.stolen_until <- max cpu.ex.Rc.stolen_until (now t + duration);
  steal_time ~stall:true t cpu duration;
  cpu.last_sched <- max cpu.last_sched cpu.ex.Rc.stolen_until

(* ---- construction -------------------------------------------------------- *)

let register_kthread t app_id core =
  let kt = Rc.add_kthread t.rc ~app:app_id ~core in
  let cpu = cpu_of t core in
  let ctx = Kmod.uintr_ctx kt in
  Machine.uintr_register_handler ctx ~uinv:Vectors.uintr_notification
    (uintr_handler t cpu ctx);
  if t.preemption then begin
    Kmod.timer_enable t.rc.Rc.kmod kt;
    Machine.senduipi t.rc.Rc.machine ~src_core:core ctx ~uvec:Vectors.uvec_timer
  end;
  kt

let create machine kmod ~cores ?(timer_hz = 100_000) ?(preemption = true)
    ?quantum ?(park = default_park) ?watchdog () =
  if cores = [] then invalid_arg "Worksteal.create: no cores";
  (match watchdog with
  | Some bound when bound <= 0 ->
      invalid_arg "Worksteal.create: watchdog bound must be positive"
  | Some _ | None -> ());
  let cores_arr = Array.of_list cores in
  let cpus =
    Array.map
      (fun core_id ->
        {
          ex = Rc.make_exec core_id;
          deque = Runqueue.create ();
          kick_pending = false;
          parked = false;
          idle_gen = 0;
          last_sched = 0;
          cursor = -1;
          fail_streak = 0;
          pending_steal_cost = 0;
        })
      cores_arr
  in
  let t =
    {
      rc = Rc.create machine kmod ~record_wakeups:true ~trace_app_switches:true;
      cores = cores_arr;
      cpus;
      by_core = Hashtbl.create 64;
      timer_hz;
      preemption;
      park;
      ticks = 0;
      rr_spawn = 0;
      wake_rr = 0;
      steals = 0;
      stolen_tasks = 0;
      steal_fails = 0;
      parks = 0;
      unparks = 0;
      uvec_handlers = Hashtbl.create 8;
    }
  in
  Array.iter (fun cpu -> Hashtbl.replace t.by_core cpu.ex.Rc.exec_core cpu) cpus;
  Rc.install_dispatch t.rc
    {
      Rc.d_name = "worksteal";
      d_units = Array.map (fun cpu -> cpu.ex) cpus;
      d_enqueue_cpu = (fun ex -> ex.Rc.exec_core);
      d_incoming_app = (fun _ -> -1);
      d_released = (fun _ -> ());
      d_reschedule =
        (fun ex ~prev -> schedule t (cpu_of t ex.Rc.exec_core) ~prev);
    };
  Rc.install_policy t.rc (steal_ctor t quantum);
  (* The daemon occupies every isolated core first (§4.1). *)
  Array.iter
    (fun core ->
      let kt = register_kthread t 0 core in
      ignore (Kmod.activate kmod kt))
    cores_arr;
  if preemption then
    Array.iter
      (fun core -> ignore (Kmod.timer_set_hz kmod ~core ~hz:timer_hz))
      cores_arr;
  Array.iter
    (fun cpu ->
      Kmod.on_steal kmod ~core:cpu.ex.Rc.exec_core (fun ~duration ->
          on_core_steal t cpu ~duration))
    t.cpus;
  Rc.start_watchdog t.rc ~bound:watchdog (fun ~bound -> watchdog_scan t ~bound);
  t

let create_app t ~name =
  let app = Rc.new_app t.rc ~name in
  Array.iter (fun core -> ignore (register_kthread t app.App.id core)) t.cores;
  app

(* ---- core allocation ----------------------------------------------------- *)

let set_be_allowance t n =
  let old = t.rc.Rc.be_allowance in
  t.rc.Rc.be_allowance <- n;
  if n < old then begin
    let excess = ref (Rc.be_occupancy t.rc - n) in
    Array.iter
      (fun cpu ->
        if !excess > 0 then
          match cpu.ex.Rc.current with
          | Some task
            when Rc.is_be t.rc task
                 && not (Eventq.is_null cpu.ex.Rc.completion) ->
              steal_time t cpu (Costs.uipi_receive_ns ~cross_numa:false);
              preempt_current t cpu;
              decr excess
          | _ -> ())
      t.cpus
  end
  else if n > old && not (Runqueue.is_empty t.rc.Rc.be_queue) then
    Array.iter (fun cpu -> if cpu.ex.Rc.current = None then kick t cpu) t.cpus

let set_core_allowance t n =
  let n = max 0 n in
  let old = t.rc.Rc.core_allowance in
  Rc.set_core_allowance t.rc n;
  if n < old then
    Array.iter
      (fun cpu -> if Rc.unit_capped t.rc cpu.ex then evict_capped t cpu)
      t.cpus
  else if n > old then
    Array.iter
      (fun cpu ->
        if (not (Rc.unit_capped t.rc cpu.ex)) && cpu.ex.Rc.current = None then
          kick t cpu)
      t.cpus

let core_allowance t = t.rc.Rc.core_allowance
let congestion t = Rc.congestion t.rc

let attach_be_app t ?alloc app ~chunk ~workers =
  Rc.spawn_be_workers t.rc app ~chunk ~workers ~who:"Worksteal.attach_be_app";
  let cfg = match alloc with Some a -> a | None -> Allocator.default_config () in
  let on_event (ev : Allocator.event) =
    let kind =
      match ev.Allocator.action with
      | Allocator.Granted -> Trace.Core_grant
      | Allocator.Reclaimed | Allocator.Yielded -> Trace.Core_reclaim
      | Allocator.Degraded -> Trace.Alloc_degrade
      | Allocator.Recovered -> Trace.Alloc_recover
    in
    Rc.trace_instant t.rc ~core:t.cores.(0) kind
      (Printf.sprintf "%s=%d" ev.Allocator.app_name ev.Allocator.granted)
  in
  Rc.start_allocator t.rc ~cfg ~be:app ~on_event
    ~set_allowance:(set_be_allowance t);
  Array.iter (fun cpu -> if cpu.ex.Rc.current = None then kick t cpu) t.cpus

let allocator t = t.rc.Rc.allocator
let be_preemptions t = t.rc.Rc.be_preempts

let pick_spawn_cpu t =
  match Sched_ops.pick_idle (view t) with
  | Some core -> core
  | None ->
      let core = t.cores.(t.rr_spawn mod Array.length t.cores) in
      t.rr_spawn <- t.rr_spawn + 1;
      core

(* ---- deadlines ----------------------------------------------------------- *)

let kill t ?on_drop task = Rc.kill t.rc ?on_drop task

let spawn t app ~name ?cpu ?arrival ?service ?(record = true) ?deadline ?on_drop
    body =
  let arrival = match arrival with Some a -> a | None -> now t in
  let service = match service with Some s -> s | None -> 0 in
  let task = Rc.admit t.rc app ~name ~arrival ~service ~record body in
  let target = match cpu with Some c -> c | None -> pick_spawn_cpu t in
  task.Task.last_core <- target;
  t.rc.Rc.policy.task_init task;
  t.rc.Rc.policy.task_enqueue ~cpu:target ~reason:Sched_ops.Enq_new task;
  if is_idle t ~core:target then kick_core t target else kick_some_idle t;
  (match deadline with
  | Some d ->
      Rc.arm_deadline t.rc ?on_drop task ~deadline:d
        ~err:"Worksteal.spawn: deadline must be positive"
  | None -> ());
  task

let rec fault_current t ~core ~duration =
  if duration <= 0 then
    invalid_arg "Worksteal.fault_current: duration must be positive";
  let cpu = cpu_of t core in
  match cpu.ex.Rc.current with
  | Some task when not (Eventq.is_null cpu.ex.Rc.completion) ->
      Engine.cancel t.rc.Rc.engine cpu.ex.Rc.completion;
      cpu.ex.Rc.completion <- Eventq.null;
      let remaining = max 0 (task.Task.segment_end - now t) in
      task.Task.body <- Coro.Compute (remaining, task.Task.cont);
      task.Task.state <- Task.Blocked;
      Rc.account t.rc cpu.ex;
      cpu.ex.Rc.current <- None;
      task.Task.obs_block_at <- now t;
      if not (Rc.is_be t.rc task) then t.rc.Rc.policy.task_block ~cpu:core task;
      Rc.trace_instant t.rc ~core Trace.Fault task.Task.name;
      ignore (Engine.after t.rc.Rc.engine duration (fun () -> wakeup_task t task));
      schedule t cpu ~prev:(Some task);
      true
  | _ -> false

and wakeup_task t ?waker_cpu task =
  Rc.awaken t.rc task ~place:(fun (task : Task.t) ->
      if Rc.is_be t.rc task then begin
        Runqueue.push_tail t.rc.Rc.be_queue task;
        if is_idle t ~core:task.Task.last_core then
          kick_core t task.Task.last_core
        else kick_some_idle t
      end
      else
        let waker_cpu =
          match waker_cpu with Some c when c >= 0 -> c | _ -> task.Task.last_core
        in
        let target = t.rc.Rc.policy.task_wakeup ~waker_cpu task in
        if is_idle t ~core:target then kick_core t target else kick_some_idle t)

let wakeup t ?(waker_cpu = -1) (task : Task.t) = wakeup_task t ~waker_cpu task

let start_utimer t ~src_core ~hz =
  if hz <= 0 then invalid_arg "Worksteal.start_utimer: hz must be positive";
  let period = max 1 (1_000_000_000 / hz) in
  Engine.every t.rc.Rc.engine ~period (fun () ->
      Array.iter
        (fun dst_core ->
          match Machine.uintr_installed t.rc.Rc.machine ~core:dst_core with
          | Some ctx ->
              Machine.senduipi t.rc.Rc.machine ~src_core ctx
                ~uvec:Vectors.uvec_preempt
          | None -> ())
        t.cores;
      true)

let register_uvec t ~uvec handler =
  if uvec = Vectors.uvec_timer || uvec = Vectors.uvec_preempt then
    invalid_arg "Worksteal.register_uvec: reserved uvec";
  Hashtbl.replace t.uvec_handlers uvec handler

let preempt_core t ~src_core ~dst_core =
  match Machine.uintr_installed t.rc.Rc.machine ~core:dst_core with
  | Some ctx ->
      Machine.senduipi t.rc.Rc.machine ~src_core ctx ~uvec:Vectors.uvec_preempt
  | None -> ()

let current t ~core = (cpu_of t core).ex.Rc.current

let wakeup_hist t =
  match t.rc.Rc.wakeups with Some h -> h | None -> assert false

let queue_depth_series t = t.rc.Rc.queue_depth
let task_switches t = t.rc.Rc.switches
let app_switches t = t.rc.Rc.app_switches
let preemptions t = t.rc.Rc.preempts
let timer_ticks t = t.ticks
let watchdog_rescues t = t.rc.Rc.rescues
let rescue_detection t = t.rc.Rc.rescue_detect
let deadline_drops t = t.rc.Rc.deadline_drops
let total_busy_ns t = Rc.total_busy_ns t.rc
let apps t = t.rc.Rc.apps
let set_trace t trace = t.rc.Rc.trace <- Some trace
let steals t = t.steals
let stolen_tasks t = t.stolen_tasks
let steal_fails t = t.steal_fails
let parks t = t.parks
let unparks t = t.unparks

let register_metrics t ?(labels = []) reg =
  let rc = t.rc in
  let c name help read = Registry.counter reg ~help ~labels name read in
  c "skyloft_worksteal_task_switches_total" "Intra-application task switches"
    (fun () -> rc.Rc.switches);
  c "skyloft_worksteal_app_switches_total"
    "Cross-application kthread switches through the kernel module" (fun () ->
      rc.Rc.app_switches);
  c "skyloft_worksteal_preemptions_total" "Tasks preempted off their core"
    (fun () -> rc.Rc.preempts);
  c "skyloft_worksteal_be_preemptions_total" "Best-effort tasks preempted"
    (fun () -> rc.Rc.be_preempts);
  c "skyloft_worksteal_timer_ticks_total" "User-space timer interrupts handled"
    (fun () -> t.ticks);
  c "skyloft_worksteal_steals_total" "Successful steal-half grabs" (fun () ->
      t.steals);
  c "skyloft_worksteal_stolen_tasks_total" "Tasks migrated by steals" (fun () ->
      t.stolen_tasks);
  c "skyloft_worksteal_steal_fails_total" "Victim scans that found nothing"
    (fun () -> t.steal_fails);
  c "skyloft_worksteal_parks_total" "Idle cores parked to the kernel" (fun () ->
      t.parks);
  c "skyloft_worksteal_unparks_total" "Parked cores woken for new work"
    (fun () -> t.unparks);
  c "skyloft_worksteal_watchdog_rescues_total" "Stuck cores rescued" (fun () ->
      rc.Rc.rescues);
  c "skyloft_worksteal_deadline_drops_total" "Tasks killed at their deadline"
    (fun () -> rc.Rc.deadline_drops);
  Registry.gauge reg ~labels "skyloft_worksteal_be_allowance"
    ~help:"Cores the best-effort application may occupy" (fun () ->
      float_of_int rc.Rc.be_allowance);
  Registry.histogram reg ~labels "skyloft_worksteal_wakeup_latency_ns"
    ~help:"Wakeup-to-dispatch latency" (wakeup_hist t);
  Registry.histogram reg ~labels "skyloft_worksteal_rescue_detection_ns"
    ~help:"Watchdog detection latency past the bound" rc.Rc.rescue_detect;
  Registry.series reg ~labels "skyloft_worksteal_queue_depth"
    ~help:"LC policy queue length" rc.Rc.queue_depth;
  Rc.register_app_metrics rc ~labels reg
