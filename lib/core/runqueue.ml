type node = { task : Task.t; mutable prev : node option; mutable next : node option }

type t = {
  mutable head : node option;
  mutable tail : node option;
  mutable len : int;
  nodes : (int, node) Hashtbl.t;  (* task id -> node, for O(1) removal *)
}

let create () = { head = None; tail = None; len = 0; nodes = Hashtbl.create 16 }
let length t = t.len
let is_empty t = t.len = 0

let push_tail t task =
  if Hashtbl.mem t.nodes task.Task.id then invalid_arg "Runqueue: task already queued";
  let node = { task; prev = t.tail; next = None } in
  (match t.tail with Some old -> old.next <- Some node | None -> t.head <- Some node);
  t.tail <- Some node;
  t.len <- t.len + 1;
  Hashtbl.replace t.nodes task.Task.id node

let push_head t task =
  if Hashtbl.mem t.nodes task.Task.id then invalid_arg "Runqueue: task already queued";
  let node = { task; prev = None; next = t.head } in
  (match t.head with Some old -> old.prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node;
  t.len <- t.len + 1;
  Hashtbl.replace t.nodes task.Task.id node

let unlink t node =
  (match node.prev with Some p -> p.next <- node.next | None -> t.head <- node.next);
  (match node.next with Some n -> n.prev <- node.prev | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None;
  t.len <- t.len - 1;
  Hashtbl.remove t.nodes node.task.Task.id

let pop_head t =
  match t.head with
  | None -> None
  | Some node ->
      unlink t node;
      Some node.task

let pop_tail t =
  match t.tail with
  | None -> None
  | Some node ->
      unlink t node;
      Some node.task

let pop_tail_n t n =
  let rec go n acc =
    if n <= 0 then List.rev acc
    else
      match pop_tail t with
      | None -> List.rev acc
      | Some task -> go (n - 1) (task :: acc)
  in
  go n []

let steal_half ~from ~into =
  (* Under owner-head LIFO the oldest tasks sit at the tail; moving them
     tail-first and appending at [into]'s tail keeps them oldest-first at
     [into]'s head, so the thief's pop_head runs them in arrival order. *)
  let want = (from.len + 1) / 2 in
  let moved = ref 0 in
  List.iter
    (fun task ->
      push_tail into task;
      incr moved)
    (pop_tail_n from want);
  !moved

let peek_head t = match t.head with None -> None | Some node -> Some node.task

let remove t task =
  match Hashtbl.find_opt t.nodes task.Task.id with
  | None -> false
  | Some node ->
      unlink t node;
      true

let iter f t =
  let rec go = function
    | None -> ()
    | Some node ->
        let next = node.next in
        f node.task;
        go next
  in
  go t.head

let to_list t =
  let acc = ref [] in
  iter (fun task -> acc := task :: !acc) t;
  List.rev !acc
