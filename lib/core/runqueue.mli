(** FIFO deque of tasks, the building block for policy runqueues.

    Supports head/tail insertion (preempted tasks often go back to the head
    or tail depending on the policy), O(1) push/pop at both ends, and
    removal of a specific task.  Implemented as a doubly linked list so
    work-stealing policies can steal from the tail while the owner pops the
    head. *)

type t

val create : unit -> t
val length : t -> int
val is_empty : t -> bool
val push_tail : t -> Task.t -> unit
val push_head : t -> Task.t -> unit
val pop_head : t -> Task.t option
val pop_tail : t -> Task.t option

val pop_tail_n : t -> int -> Task.t list
(** [pop_tail_n q n] pops up to [n] tasks from the tail, returned in pop
    order (tail-first — oldest-first when the owner pushes at the head). *)

val steal_half : from:t -> into:t -> int
(** Move the tail half of [from] (rounded up, so a single queued task is
    stealable) to the tail of [into], preserving tail-first order; returns
    the number moved.  This is the steal-half grab of a work-stealing
    deque: the thief takes the victim's oldest tasks in one operation and
    will then pop them oldest-first from its own head. *)

val peek_head : t -> Task.t option
val remove : t -> Task.t -> bool
(** [remove q task] takes [task] out of [q]; [false] if it was not there. *)

val iter : (Task.t -> unit) -> t -> unit
val to_list : t -> Task.t list
