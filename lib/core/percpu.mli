module Time = Skyloft_sim.Time
module Coro = Skyloft_sim.Coro
module Machine = Skyloft_hw.Machine
module Kmod = Skyloft_kernel.Kmod
module Histogram = Skyloft_stats.Histogram
module Trace = Skyloft_stats.Trace
module Timeseries = Skyloft_stats.Timeseries
module Registry = Skyloft_obs.Registry

(** The per-CPU Skyloft runtime (Figure 2a).

    Each isolated core runs the main scheduling loop: dequeue from the
    policy's runqueue, run the task, balance when idle.  Preemption comes
    from user-space timer interrupts — the LAPIC timer delegated through
    UINTR per §3.2 — handled by the global user-interrupt handler of
    Listing 1.  Tasks from multiple applications share the runqueues; a
    switch to a task of a different application goes through the kernel
    module ({!Kmod.switch_to}), charging the inter-application switch cost.

    Costs charged per event:
    - intra-application task switch: {!Skyloft_hw.Costs.uthread_yield_ns}
    - inter-application task switch: {!Skyloft_hw.Costs.app_switch_ns}
    - each timer tick: user-timer receive + the SN re-post SENDUIPI
    - preemption via user IPI (from [preempt_core]): UIPI delivery and
      receive costs. *)

type t

val create :
  Machine.t ->
  Kmod.t ->
  cores:int list ->
  ?timer_hz:int ->
  ?preemption:bool ->
  ?park:Time.t * Time.t ->
  ?watchdog:Time.t ->
  Sched_ops.ctor ->
  t
(** Build the runtime on the isolated [cores].  When [preemption] (default
    true), every core's LAPIC timer is programmed at [timer_hz] (default
    100,000 — Table 5) and delegated to user space.  The policy constructor
    receives the runtime's {!Sched_ops.view}.

    [park = (idle_after, resume_cost)] models Shenango-style core
    reallocation: a core idle for [idle_after] is returned to the kernel,
    and handing it back to the runtime costs [resume_cost] extra on the
    next dispatch — the "frequent core adjustments, yielding and wake-ups"
    the paper blames for Shenango's low-load tail (§5.3).  Skyloft itself
    does not park (idle loops keep spinning).

    [watchdog] arms the per-core watchdog: a periodic scan (twice per
    bound) that detects cores stuck on one task for longer than the bound
    with no scheduling point — a lost timer tick, a disabled preemption
    path, a poisoned task — and rescues them: re-arm the LAPIC timer,
    re-post the pending-tick user IPI if the receiver is masked for timer
    delegation, and force a preemption.  Rescues are counted and traced
    ({!watchdog_rescues}, {!rescue_detection}).  Cores inside a host-kernel
    steal ({!Kmod.steal_core}) are exempt until hand-back. *)

val create_app : t -> name:string -> App.t
(** Launch an application: registers one parked kernel thread per isolated
    core with the kernel module. *)

val attach_be_app :
  t ->
  ?alloc:Skyloft_alloc.Allocator.config ->
  App.t ->
  chunk:Time.t ->
  workers:int ->
  unit
(** Co-schedule [app] as the best-effort application: [workers] batch
    tasks, each an endless sequence of [chunk]-sized compute segments,
    kept outside the LC policy's runqueues.  Starts the core allocator
    ([alloc], default {!Skyloft_alloc.Allocator.default_config}): its
    policy decides each interval how many cores BE may occupy; every core
    moved charges the §5.4 inter-application switch cost, and grants and
    reclaims are emitted as trace instants when tracing is on.  Timer
    ticks preempt BE tasks whenever LC work is queued. *)

val allocator : t -> Skyloft_alloc.Allocator.t option
(** The running core allocator, once {!attach_be_app} has started it. *)

val be_preemptions : t -> int
(** BE tasks preempted (timer ticks with LC work queued + allocator
    reclaims). *)

val set_core_allowance : t -> int -> unit
(** How many cores this runtime may occupy at all: a machine-level core
    broker's grant ({!set_be_allowance} one level up).  Allowed cores are
    always the creation-order prefix.  Shrinking evicts tasks running on
    newly capped cores (user-IPI receive cost charged, refugees requeued
    on an allowed core); growing kicks the cores handed back.  The
    default, [max_int], disables the gate entirely. *)

val core_allowance : t -> int
(** The broker's current grant ([max_int] when unbrokered). *)

val congestion : t -> Skyloft_alloc.Allocator.raw
(** The whole-runtime congestion sample a machine-level broker reads:
    LC probe backlog + BE queue length, oldest LC wait, total busy ns. *)

val spawn :
  t -> App.t -> name:string -> ?cpu:int -> ?arrival:Time.t -> ?service:Time.t ->
  ?record:bool -> ?deadline:Time.t -> ?on_drop:(Task.t -> unit) -> Coro.t ->
  Task.t
(** Create a task.  [cpu] pins initial placement (default: an idle core,
    else round-robin).  When [record] (default true) the task's completion
    is recorded into the application's {!App.t.summary}.

    [deadline] arms a kill timer [deadline] ns from now: if the task has
    not exited by then it is forcibly terminated ({!kill}), counted as a
    deadline drop in the app's summary, and [on_drop] is called — the
    task neither completes nor lingers, so every spawn is accounted for
    exactly once. *)

val kill : t -> ?on_drop:(Task.t -> unit) -> Task.t -> unit
(** Forcibly terminate a task wherever it is: running (preempted off its
    core and discarded), runnable (flagged; discarded at the next
    dequeue), or blocked (never woken).  A no-op on exited or
    already-killed tasks.  Counted in {!deadline_drops} and the app
    summary's drop count. *)

val wakeup : t -> ?waker_cpu:int -> Task.t -> unit
(** [task_wakeup]: make a blocked task runnable again (placement is the
    policy's choice).  Waking a non-blocked task sets its pending-wake
    flag. *)

val fault_current : t -> core:int -> duration:Time.t -> bool
(** §6 "Blocking events": block the task currently running on [core] for
    [duration] (a page fault or blocking syscall observed by the
    userfaultfd monitor) and reschedule other work — possibly another
    application's — on the core meanwhile.  [false] if the core was not
    running a task. *)

val register_uvec : t -> uvec:int -> (int -> unit) -> unit
(** Register a user-space driver handler for a delegated peripheral
    interrupt (§6): when user vector [uvec] is recognised on a managed
    core, the runtime charges the user-IPI receive cost and calls the
    handler with the core id.  Vectors 0 (timer) and 1 (preempt) are
    reserved. *)

val start_utimer : t -> src_core:int -> hz:int -> unit
(** Emulate per-CPU timers from a dedicated core ([src_core], outside the
    managed set) that broadcasts preemption user IPIs at [hz] to every
    worker (the "utimer" of §5.3).  Requires [preemption:false].  Costs a
    whole core and pays cross-core IPI latency per tick — the paper
    measures a 13% performance loss versus LAPIC timer delegation. *)

val preempt_core : t -> src_core:int -> dst_core:int -> unit
(** Send a preemption user IPI from [src_core] to [dst_core] (dispatcher
    style, Figure 2b).  The receiving core's handler re-enqueues its
    current task and reschedules. *)

val now : t -> Time.t
val current : t -> core:int -> Task.t option
val is_idle : t -> core:int -> bool
val wakeup_hist : t -> Histogram.t

val queue_depth_series : t -> Timeseries.t
(** LC policy queue length over time (one sample per change); feed it to
    the Perfetto counter-track export in [lib/obs]. *)

(** [register_metrics t reg] registers this runtime's counters, histograms,
    and queue-depth series (under [skyloft_percpu_*]) plus every
    application's task counters, response-time histogram, and latency
    attribution (under [skyloft_app_*], labelled with the app name).  Call
    after the applications have been created.  Registration is pull-based
    and never perturbs the simulation. *)
val register_metrics : t -> ?labels:Registry.labels -> Registry.t -> unit
val task_switches : t -> int
val app_switches : t -> int
val preemptions : t -> int
val timer_ticks : t -> int

val watchdog_rescues : t -> int
(** Stuck cores rescued by the watchdog (see {!create}'s [watchdog]). *)

val rescue_detection : t -> Histogram.t
(** Detection latency per rescue: time past the watchdog bound before the
    scan noticed the stuck core. *)

val deadline_drops : t -> int
(** Tasks killed by their spawn deadline (see {!spawn}). *)

val total_busy_ns : t -> int
(** Sum of per-application busy time. *)

val apps : t -> App.t list
(** Applications created on this runtime (excluding the daemon). *)

val set_trace : t -> Trace.t -> unit
(** Record scheduling activity (run spans, preemptions, wakeups,
    application switches, faults) into [trace]; export with
    {!Skyloft_stats.Trace.to_chrome_json}. *)

val view : t -> Sched_ops.view
