module Time = Skyloft_sim.Time
module Coro = Skyloft_sim.Coro
module Machine = Skyloft_hw.Machine
module Kmod = Skyloft_kernel.Kmod

(** A hybrid Skyloft runtime: centralized dispatch under low load, per-CPU
    timer-driven scheduling past a load threshold.

    The paper's two runtime shapes trade off against each other: the
    centralized dispatcher (Figure 2b) gives the best low-load tail latency
    (one global queue, no work stealing) but its serial dispatcher is a
    scalability ceiling, while per-CPU timer scheduling (Figure 2a) scales
    but pays queue-imbalance tail at low load.  This runtime switches
    between the two *mechanisms* over one shared {!Runtime_core} substrate:
    a monitor samples the LC queue depth and, with hysteresis, hands the
    cores from the serial dispatcher to per-core preemption timers and
    back.  Every mode transition is a [Mode_switch] trace instant.

    The point of this module is architectural as much as experimental: it
    is written only against the [Runtime_core.dispatch] substrate — the
    same lifecycle, accounting, BE-occupancy, deadline, allocator and
    metrics code the two parent runtimes instantiate — which is the
    evidence that the substrate is a real seam and not a refactoring
    artifact. *)

type mode = Central | Percore

type t

val create :
  Machine.t ->
  Kmod.t ->
  dispatcher_core:int ->
  worker_cores:int list ->
  quantum:Time.t ->
  ?timer_hz:int ->
  ?hi_depth:int ->
  ?lo_depth:int ->
  ?check_period:Time.t ->
  ?alloc:Skyloft_alloc.Allocator.config ->
  ?watchdog:Time.t ->
  Sched_ops.ctor ->
  t
(** In [Central] mode the [dispatcher_core] is the serial resource of the
    centralized runtime (assignment + quantum preemption via user IPIs);
    in [Percore] mode workers self-schedule from the shared queue and
    per-core timers at [timer_hz] (default 100 kHz) drive preemption.  The
    monitor samples the LC queue every [check_period] (default 25 µs) and
    switches to [Percore] when the depth exceeds [hi_depth] (default twice
    the worker count), back to [Central] when it falls to [lo_depth]
    (default half the worker count) or below — the gap is the hysteresis
    band.  [quantum <= 0] disables quantum preemption in [Central] mode.

    [alloc] and [watchdog] behave as in {!Centralized.create}: the core
    allocator started by {!attach_be_app}, and the recovery watchdog
    (dispatcher failover + stuck-worker rescue). *)

val create_app : t -> name:string -> App.t

val attach_be_app : t -> App.t -> chunk:Time.t -> workers:int -> unit
(** As {!Centralized.attach_be_app}: seed the BE application's endless
    chunked batch workers and start the core allocator. *)

val allocator : t -> Skyloft_alloc.Allocator.t option

val submit :
  t ->
  App.t ->
  ?service:Time.t ->
  ?record:bool ->
  ?deadline:Time.t ->
  ?on_drop:(Task.t -> unit) ->
  name:string ->
  Coro.t ->
  Task.t
(** Enqueue a latency-critical request into the shared queue; the current
    mode decides whether the dispatcher assigns it or an idle worker picks
    it up directly.  [deadline] arms a kill timer as in
    {!Centralized.submit}. *)

val kill : t -> ?on_drop:(Task.t -> unit) -> Task.t -> unit
val wakeup : t -> Task.t -> unit
val now : t -> Time.t

val mode : t -> mode
val mode_switches : t -> int
(** Mode transitions performed by the monitor so far. *)

val dispatches : t -> int
(** Central-mode dispatcher assignments (zero while in [Percore]). *)

val preemptions : t -> int
val be_preemptions : t -> int
val timer_ticks : t -> int
(** Percore-mode timer interrupts handled. *)

val set_core_allowance : t -> int -> unit
(** How many workers this runtime may occupy at all: a machine-level core
    broker's grant.  Allowed units are the creation-order prefix.
    Shrinking preempts the newly capped units by whichever mechanism the
    current mode provides (dispatcher IPI or synchronous local
    preemption); growing redrives dispatch (central) or kicks the units
    handed back (percore).  Default [max_int] disables the gate. *)

val core_allowance : t -> int
(** The broker's current grant ([max_int] when unbrokered). *)

val congestion : t -> Skyloft_alloc.Allocator.raw
(** The whole-runtime congestion sample a machine-level broker reads. *)

val queue_length : t -> int
val worker_busy_ns : t -> int
val watchdog_rescues : t -> int
val failovers : t -> int
val rescue_detection : t -> Skyloft_stats.Histogram.t
val deadline_drops : t -> int
val set_trace : t -> Skyloft_stats.Trace.t -> unit
val queue_depth_series : t -> Skyloft_stats.Timeseries.t

val register_metrics :
  t -> ?labels:Skyloft_obs.Registry.labels -> Skyloft_obs.Registry.t -> unit
(** [skyloft_hybrid_*] counters (including the current mode as a gauge and
    the transition count) plus the shared per-application family. *)
