module Time = Skyloft_sim.Time

(** The paper's general scheduling operations (Table 2).

    A scheduling policy is a value of type {!instance} — a record of the
    operations in Table 2 — produced by a constructor that receives a
    {!view} of the runtime.  The per-CPU and centralized runtimes are each
    written once against this interface; implementing a new policy means
    implementing this record, which is why Skyloft policies are a few
    hundred lines where kernel schedulers are thousands (Table 4).

    Conventions:
    - Runqueue state lives inside the instance's closures.
    - Per-task policy data lives in the [policy_*] fields of {!Task.t}.
    - [task.run_start] (maintained by the runtime) is when the task last
      started running; policies use it for slice accounting.
    - Centralized policies ignore the [cpu] argument of queue operations
      and treat their single queue as global. *)

type view = {
  cores : int array;  (** worker core ids managed by this scheduler *)
  is_idle : int -> bool;  (** is this core currently running nothing? *)
  now : unit -> Time.t;
}

(** Why a task is entering the runqueue: policies commonly place preempted
    tasks differently from fresh or woken ones. *)
type reason = Enq_new | Enq_preempted | Enq_woken | Enq_yielded

type instance = {
  policy_name : string;
  task_init : Task.t -> unit;
      (** initialise the policy-defined fields of a new task *)
  task_terminate : Task.t -> unit;
      (** release policy state when a task finishes *)
  task_enqueue : cpu:int -> reason:reason -> Task.t -> unit;
      (** put a task into the runqueue of [cpu] *)
  task_dequeue : cpu:int -> Task.t option;
      (** select and remove the next task to run on [cpu] *)
  task_block : cpu:int -> Task.t -> unit;
      (** the current task of [cpu] is suspending (account its runtime) *)
  task_wakeup : waker_cpu:int -> Task.t -> int;
      (** place a woken task: choose a core, enqueue there, return the
          chosen core so the runtime can kick it *)
  sched_timer_tick : cpu:int -> Task.t -> bool;
      (** timer-tick policy update for the running task; [true] requests a
          reschedule (the task will be preempted) *)
  sched_balance : cpu:int -> Task.t option;
      (** load balancing for an idle [cpu] (per-CPU policies): return a
          task stolen from another runqueue, if any *)
}

type ctor = view -> instance

val no_balance : cpu:int -> Task.t option
(** A [sched_balance] that never steals (centralized and single-queue
    policies). *)

val null_instance : instance
(** An inert policy (empty queues, never preempts): initialisation
    placeholder and test double. *)

(** Congestion measurement over a wrapped policy instance: the signals the
    core allocator samples.  Queue length and oldest-task age are not part
    of the Table 2 interface, so the runtimes count them around the
    policy's own queue operations. *)
type probe = {
  queued : unit -> int;  (** tasks currently waiting (excludes running) *)
  oldest_wait : unit -> Time.t;
      (** age of the oldest pending enqueue; 0 when the queue is empty.
          Exact for FIFO dequeue orders, an approximation otherwise. *)
}

val instrument :
  now:(unit -> Time.t) -> ?on_change:(int -> unit) -> instance -> instance * probe
(** Wrap [task_enqueue]/[task_wakeup] (entries) and
    [task_dequeue]/[sched_balance] (exits) of an instance with counting.
    The returned instance must replace the original.  [on_change] is
    called with the new count after every entry and every successful exit
    (the runtimes record it into a queue-depth {!Skyloft_stats.Timeseries});
    it must not re-enter the policy. *)

val pick_idle : view -> int option
(** First idle managed core, if any. *)

val wakeup_to_idle_or : view -> fallback:int -> int
(** Default wakeup placement: an idle core when available, otherwise
    [fallback]. *)
