module Time = Skyloft_sim.Time
module Summary = Skyloft_stats.Summary
module Attribution = Skyloft_obs.Attribution

type t = {
  id : int;
  name : string;
  mutable busy_ns : int;
  mutable spawned : int;
  mutable completed : int;
  mutable tasks_alive : int;
  summary : Summary.t;
  attribution : Attribution.t;
}

let make id name =
  {
    id;
    name;
    busy_ns = 0;
    spawned = 0;
    completed = 0;
    tasks_alive = 0;
    summary = Summary.create ();
    attribution = Attribution.create ();
  }

let create ~id ~name =
  if id <= 0 then invalid_arg "App.create: id must be positive (0 is the daemon)";
  make id name

let daemon () = make 0 "daemon"

let cpu_share t ~total_ns =
  if total_ns <= 0 then 0.0 else float_of_int t.busy_ns /. float_of_int total_ns

let pp ppf t = Format.fprintf ppf "%s(app=%d)" t.name t.id
