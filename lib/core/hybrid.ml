module Time = Skyloft_sim.Time
module Coro = Skyloft_sim.Coro
module Engine = Skyloft_sim.Engine
module Eventq = Skyloft_sim.Eventq
module Machine = Skyloft_hw.Machine
module Costs = Skyloft_hw.Costs
module Vectors = Skyloft_hw.Vectors
module Kmod = Skyloft_kernel.Kmod
module Trace = Skyloft_stats.Trace
module Allocator = Skyloft_alloc.Allocator
module Registry = Skyloft_obs.Registry
module Rc = Runtime_core

(* The hybrid runtime is Runtime_core plus a DISPATCH substrate that
   changes shape at runtime: the centralized serial dispatcher while the
   shared queue is shallow, per-core preemption timers once it is deep.
   It deliberately uses nothing of Percpu or Centralized beyond the same
   substrate they instantiate — this module existing at all is the test
   that the [Rc.dispatch] seam carries a whole runtime. *)

type mode = Central | Percore

(* One worker core.  [gen]/[reserved]/[incoming] guard central-mode
   assignments in flight; [kick_pending] coalesces percore-mode kicks.
   [qtimer] is the unit's reusable central-mode quantum timer, re-armed
   per dispatch; [qt_gen] records [gen] at the last arm so a firing knows
   whether the dispatch it covered is still running. *)
type unit_state = {
  ex : Rc.exec;
  mutable gen : int;
  mutable reserved : bool;
  mutable incoming : int;
  mutable kick_pending : bool;
  qtimer : Engine.timer;
  mutable qt_gen : int;
}

type t = {
  rc : Rc.t;
  dispatcher_core : int;
  units : unit_state array;
  by_core : (int, unit_state) Hashtbl.t;
  mech : Centralized.mechanism;
  quantum : Time.t;
  tick_period : Time.t;
  hi_depth : int;
  lo_depth : int;
  alloc_cfg : Allocator.config;
  mutable mode : mode;
  mutable mode_switches : int;
  mutable disp_busy_until : Time.t;
  mutable dispatches : int;
  mutable ticks : int;
  mutable failovers : int;
}

let now t = Rc.now t.rc
let unit_of t core = Hashtbl.find t.by_core core
let queue_length t = t.rc.Rc.probe.Sched_ops.queued ()

(* The dispatcher is a serial resource (central mode only). *)
let dispatcher_do t cost f =
  let start = max (now t) t.disp_busy_until in
  t.disp_busy_until <- start + cost;
  ignore (Engine.at t.rc.Rc.engine (start + cost) f)

(* Interrupt handling steals CPU time from the running segment (percore
   mode); the cost is charged to the victim as scheduling overhead. *)
let steal_time t u cost =
  match u.ex.Rc.current with
  | Some task when not (Eventq.is_null u.ex.Rc.completion) ->
      Engine.cancel t.rc.Rc.engine u.ex.Rc.completion;
      task.Task.segment_end <- task.Task.segment_end + cost;
      task.Task.obs_overhead_ns <- task.Task.obs_overhead_ns + cost;
      Rc.arm_completion t.rc u.ex task
  | _ -> ()

(* ---- task start (both modes funnel through here) ------------------------- *)

let rec start_on t u (task : Task.t) =
  u.reserved <- false;
  u.incoming <- -1;
  if task.Task.killed then begin
    (* Killed while the assignment was in flight (deadline fired between
       dequeue and arrival).  The drop was accounted at kill time; discard
       exactly as [Rc.next_live] would have. *)
    task.Task.state <- Task.Exited;
    if not (Rc.is_be t.rc task) then t.rc.Rc.policy.task_terminate task;
    reschedule t u ~prev:None
  end
  else begin
    t.dispatches <- t.dispatches + 1;
    let switch_cost =
      if task.Task.app = u.ex.Rc.active_app then
        t.mech.Centralized.worker_switch
      else Rc.app_switch t.rc u.ex task
    in
    task.Task.wake_time <- None;
    let start = Rc.begin_run t.rc u.ex task ~switch_cost in
    u.gen <- u.gen + 1;
    (* Quantum preemption covers central-mode assignments; percore-mode
       runs are preempted by the per-core timer instead.  Re-arming the
       unit's timer supersedes any stale pending firing. *)
    if t.quantum > 0 && not (Rc.is_be t.rc task) then begin
      u.qt_gen <- u.gen;
      Engine.arm u.qtimer ~at:(start + t.quantum)
    end;
    Rc.run_after_switch t.rc u.ex task ~switch_cost
  end

and assign t u (task : Task.t) =
  u.reserved <- true;
  u.incoming <- task.Task.app;
  dispatcher_do t t.mech.Centralized.dispatch_cost (fun () -> start_on t u task)

and try_next t u =
  if (not u.reserved) && u.ex.Rc.current = None && not (Rc.unit_capped t.rc u.ex)
  then begin
    match
      Rc.next_live t.rc (fun () ->
          t.rc.Rc.policy.task_dequeue ~cpu:u.ex.Rc.exec_core)
    with
    | Some task -> assign t u task
    | None ->
        if Rc.be_occupancy t.rc < t.rc.Rc.be_allowance then (
          match
            Rc.next_live t.rc (fun () -> Runqueue.pop_head t.rc.Rc.be_queue)
          with
          | Some be -> assign t u be
          | None -> ())
  end

(* Percore-mode scheduling: the worker picks from the shared queue
   synchronously, no dispatcher in the path. *)
and schedule t u ~prev =
  if (not u.reserved) && u.ex.Rc.current = None && not (Rc.unit_capped t.rc u.ex)
  then begin
    let rc = t.rc in
    let pick () =
      let be_next =
        if Rc.be_occupancy rc < rc.Rc.be_allowance then
          Runqueue.pop_head rc.Rc.be_queue
        else None
      in
      match be_next with
      | Some task -> Some task
      | None -> (
          match rc.Rc.policy.task_dequeue ~cpu:u.ex.Rc.exec_core with
          | Some task -> Some task
          | None -> rc.Rc.policy.sched_balance ~cpu:u.ex.Rc.exec_core)
    in
    match Rc.next_live rc pick with
    | None -> ()
    | Some task ->
        let same = match prev with Some p -> p == task | None -> false in
        let cost =
          if same then 0
          else if task.Task.app = u.ex.Rc.active_app then begin
            rc.Rc.switches <- rc.Rc.switches + 1;
            Costs.uthread_yield_ns
          end
          else Rc.app_switch rc u.ex task
        in
        task.Task.wake_time <- None;
        ignore (Rc.begin_run rc u.ex task ~switch_cost:cost);
        u.gen <- u.gen + 1;
        Rc.run_after_switch rc u.ex task ~switch_cost:cost
  end

and reschedule t u ~prev =
  match t.mode with
  | Central -> try_next t u
  | Percore -> schedule t u ~prev

(* ---- preemption ----------------------------------------------------------- *)

(* Central-mode arm: the notification rides the modeled IPI path, so
   injected IPI faults are consulted (a dropped one loses the preemption —
   the watchdog is the backstop). *)
and do_preempt t u gen ~requeue =
  if u.gen = gen then
    match Rc.depose t.rc u.ex ~overhead:t.mech.Centralized.preempt_receive with
    | Some task ->
        requeue task;
        reschedule t u ~prev:(Some task)
    | None -> ()

and deliver_preempt t u gen ~requeue =
  match
    Machine.fault_fate t.rc.Rc.machine ~core:u.ex.Rc.exec_core
      Vectors.uintr_notification
  with
  | Machine.Drop -> ()
  | Machine.Delay d ->
      ignore
        (Engine.after t.rc.Rc.engine
           (t.mech.Centralized.preempt_delivery + d)
           (fun () -> do_preempt t u gen ~requeue))
  | Machine.Deliver ->
      ignore
        (Engine.after t.rc.Rc.engine t.mech.Centralized.preempt_delivery
           (fun () -> do_preempt t u gen ~requeue))

and quantum_check t u (task : Task.t) gen =
  let still_running =
    match u.ex.Rc.current with
    | Some cur -> cur == task && u.gen = gen
    | None -> false
  in
  if still_running then begin
    t.rc.Rc.preempts <- t.rc.Rc.preempts + 1;
    dispatcher_do t t.mech.Centralized.preempt_send (fun () ->
        deliver_preempt t u gen ~requeue:(fun task ->
            t.rc.Rc.policy.task_enqueue ~cpu:t.dispatcher_core
              ~reason:Sched_ops.Enq_preempted task))
  end

(* The reusable quantum timer's stable callback: the arm that scheduled
   this firing recorded [qt_gen]; [quantum_check] compares it against the
   unit's live generation, so a dispatch that ended (or was superseded —
   re-arming cancels the stale firing outright) is left alone. *)
let quantum_fire t u =
  match u.ex.Rc.current with
  | Some task -> quantum_check t u task u.qt_gen
  | None -> ()

(* Percore-mode arm: synchronous, the timer handler already charged the
   receive cost to the victim. *)
let preempt_now t u =
  match Rc.depose t.rc u.ex ~overhead:0 with
  | Some task ->
      if Rc.is_be t.rc task then begin
        t.rc.Rc.be_preempts <- t.rc.Rc.be_preempts + 1;
        Runqueue.push_head t.rc.Rc.be_queue task
      end
      else begin
        t.rc.Rc.preempts <- t.rc.Rc.preempts + 1;
        t.rc.Rc.policy.task_enqueue ~cpu:t.dispatcher_core
          ~reason:Sched_ops.Enq_preempted task
      end;
      schedule t u ~prev:(Some task)
  | None -> ()

(* ---- kicks and the shared-queue poke -------------------------------------- *)

let kick t u =
  if u.ex.Rc.current = None && (not u.kick_pending) && not u.reserved then begin
    u.kick_pending <- true;
    let delay = max 0 (u.ex.Rc.stolen_until - now t) in
    ignore
      (Engine.after t.rc.Rc.engine delay (fun () ->
           u.kick_pending <- false;
           if u.ex.Rc.current = None then reschedule t u ~prev:None))
  end

let pump t =
  let made_progress = ref true in
  while !made_progress do
    made_progress := false;
    if queue_length t > 0 then
      match
        Array.to_list t.units
        |> List.find_opt (fun u ->
               u.ex.Rc.current = None && (not u.reserved)
               && not (Rc.unit_capped t.rc u.ex))
      with
      | Some u ->
          try_next t u;
          made_progress := true
      | None -> ()
  done

(* New work arrived in the shared queue: the mode decides who notices. *)
let poke t =
  match t.mode with
  | Central -> pump t
  | Percore -> (
      match Sched_ops.pick_idle (Rc.view t.rc) with
      | Some core -> kick t (unit_of t core)
      | None -> ())

(* ---- the mode monitor ----------------------------------------------------- *)

let flip t m =
  t.mode <- m;
  t.mode_switches <- t.mode_switches + 1;
  Rc.trace_instant t.rc ~core:t.dispatcher_core Trace.Mode_switch
    (match m with Central -> "central" | Percore -> "percore");
  match m with
  | Percore ->
      (* Idle workers now self-schedule; wake them up. *)
      Array.iter (fun u -> kick t u) t.units
  | Central -> pump t

let check_mode t =
  let depth = queue_length t in
  match t.mode with
  | Central when depth > t.hi_depth -> flip t Percore
  | Percore when depth <= t.lo_depth -> flip t Central
  | Central | Percore -> ()

(* ---- percore timer ticks -------------------------------------------------- *)

(* One delegated timer per worker core.  The timer only acts in percore
   mode; in central mode preemption is the dispatcher's quantum timer.  A
   task that started under one mode and survived a flip is preempted by
   whichever mechanism the current mode provides (plus the watchdog as the
   backstop), so no run can outlive both. *)
let on_tick t u =
  if t.mode = Percore && now t >= u.ex.Rc.stolen_until then begin
    t.ticks <- t.ticks + 1;
    steal_time t u (Costs.user_timer_receive_ns + Costs.senduipi_sn_ns);
    match u.ex.Rc.current with
    | Some _
      when (not (Eventq.is_null u.ex.Rc.completion))
           && Rc.unit_capped t.rc u.ex ->
        (* Broker-capped unit: the tick only enforces the cap (backstop
           for a run that slipped in around a shrink). *)
        preempt_now t u
    | Some task when not (Eventq.is_null u.ex.Rc.completion) ->
        if Rc.is_be t.rc task then begin
          if Rc.be_occupancy t.rc > t.rc.Rc.be_allowance then preempt_now t u
        end
        else if
          (* The policy gets first say; single-queue policies written for
             the dispatcher leave ticks alone, so the quantum is enforced
             here — percore mode timeshares exactly like central mode,
             just from the local timer instead of a dispatcher IPI. *)
          t.rc.Rc.policy.sched_timer_tick ~cpu:u.ex.Rc.exec_core task
          || (t.quantum > 0 && now t - task.Task.run_start >= t.quantum)
        then preempt_now t u
    | _ -> if not (Rc.unit_capped t.rc u.ex) then kick t u
  end

(* ---- watchdog: dispatcher failover + stuck-worker rescue ------------------ *)

let rescue_worker t u ~late =
  Rc.rescued t.rc u.ex ~late;
  match Rc.depose t.rc u.ex ~overhead:t.mech.Centralized.preempt_receive with
  | Some task ->
      if Rc.is_be t.rc task then Runqueue.push_head t.rc.Rc.be_queue task
      else
        t.rc.Rc.policy.task_enqueue ~cpu:t.dispatcher_core
          ~reason:Sched_ops.Enq_preempted task;
      reschedule t u ~prev:(Some task)
  | None -> ()

let watchdog_scan t ~bound =
  if t.disp_busy_until > now t + bound then begin
    t.failovers <- t.failovers + 1;
    Rc.trace_instant t.rc ~core:t.dispatcher_core Trace.Failover "dispatcher";
    t.disp_busy_until <- now t + Costs.app_switch_ns
  end;
  Array.iter
    (fun u ->
      if now t >= u.ex.Rc.stolen_until then
        match u.ex.Rc.current with
        | Some task when not (Eventq.is_null u.ex.Rc.completion) ->
            (* The expected preemption point depends on which mechanism
               covers the run; grant the larger of the two. *)
            let allowed =
              bound
              +
              if Rc.is_be t.rc task then 0
              else max (max t.quantum 0) t.tick_period
            in
            let overrun = now t - task.Task.run_start - allowed in
            if overrun > 0 then rescue_worker t u ~late:overrun
        | _ -> ())
    t.units

(* ---- core allocation ------------------------------------------------------ *)

let preempt_be_central t u =
  match u.ex.Rc.current with
  | Some task
    when Rc.is_be t.rc task && not (Eventq.is_null u.ex.Rc.completion) ->
      let gen = u.gen in
      t.rc.Rc.be_preempts <- t.rc.Rc.be_preempts + 1;
      dispatcher_do t t.mech.Centralized.preempt_send (fun () ->
          deliver_preempt t u gen ~requeue:(fun task ->
              Runqueue.push_head t.rc.Rc.be_queue task));
      true
  | _ -> false

let preempt_be_percore t u =
  match u.ex.Rc.current with
  | Some task
    when Rc.is_be t.rc task && not (Eventq.is_null u.ex.Rc.completion) ->
      steal_time t u (Costs.uipi_receive_ns ~cross_numa:false);
      (match Rc.depose t.rc u.ex ~overhead:0 with
      | Some task ->
          t.rc.Rc.be_preempts <- t.rc.Rc.be_preempts + 1;
          Runqueue.push_head t.rc.Rc.be_queue task;
          schedule t u ~prev:(Some task)
      | None -> ());
      true
  | _ -> false

let set_be_allowance t n =
  let old = t.rc.Rc.be_allowance in
  t.rc.Rc.be_allowance <- n;
  if n < old then begin
    let excess = ref (Rc.be_occupancy t.rc - n) in
    let preempt_be =
      match t.mode with
      | Central -> preempt_be_central t
      | Percore -> preempt_be_percore t
    in
    if !excess > 0 then
      Array.iter (fun u -> if !excess > 0 && preempt_be u then decr excess) t.units
  end
  else if n > old then
    Array.iter
      (fun u ->
        match t.mode with
        | Central -> try_next t u
        | Percore -> if u.ex.Rc.current = None then kick t u)
      t.units

(* Preempt whatever runs on a broker-capped unit, by whichever mechanism
   the current mode provides: a dispatcher IPI (central) or a synchronous
   local preemption with the receive cost charged (percore). *)
let preempt_capped_unit t u =
  match u.ex.Rc.current with
  | Some task when not (Eventq.is_null u.ex.Rc.completion) -> (
      match t.mode with
      | Central ->
          let gen = u.gen in
          if Rc.is_be t.rc task then
            t.rc.Rc.be_preempts <- t.rc.Rc.be_preempts + 1
          else t.rc.Rc.preempts <- t.rc.Rc.preempts + 1;
          dispatcher_do t t.mech.Centralized.preempt_send (fun () ->
              deliver_preempt t u gen ~requeue:(fun task ->
                  if Rc.is_be t.rc task then
                    Runqueue.push_head t.rc.Rc.be_queue task
                  else
                    t.rc.Rc.policy.task_enqueue ~cpu:t.dispatcher_core
                      ~reason:Sched_ops.Enq_preempted task))
      | Percore ->
          steal_time t u (Costs.uipi_receive_ns ~cross_numa:false);
          preempt_now t u)
  | _ -> ()

(* The machine-level broker's reclaim/grant muscle ({!set_be_allowance}
   one level up; allowed units are always the creation-order prefix).
   Shrinking preempts the newly capped units; growing redrives dispatch
   (central) or kicks the units handed back (percore). *)
let set_core_allowance t n =
  let old = t.rc.Rc.core_allowance in
  Rc.set_core_allowance t.rc n;
  let n = t.rc.Rc.core_allowance in
  if n < old then
    Array.iter
      (fun u -> if Rc.unit_capped t.rc u.ex then preempt_capped_unit t u)
      t.units
  else if n > old then
    Array.iter
      (fun u ->
        if not (Rc.unit_capped t.rc u.ex) then
          match t.mode with
          | Central -> try_next t u
          | Percore -> if u.ex.Rc.current = None then kick t u)
      t.units

let core_allowance t = t.rc.Rc.core_allowance
let congestion t = Rc.congestion t.rc

(* ---- construction --------------------------------------------------------- *)

let create machine kmod ~dispatcher_core ~worker_cores ~quantum
    ?(timer_hz = 100_000) ?hi_depth ?lo_depth ?check_period ?alloc ?watchdog
    ctor =
  if worker_cores = [] then invalid_arg "Hybrid.create: no worker cores";
  if List.mem dispatcher_core worker_cores then
    invalid_arg "Hybrid.create: dispatcher core cannot also be a worker";
  if timer_hz <= 0 then invalid_arg "Hybrid.create: timer_hz must be positive";
  (match watchdog with
  | Some bound when bound <= 0 ->
      invalid_arg "Hybrid.create: watchdog bound must be positive"
  | Some _ | None -> ());
  let n = List.length worker_cores in
  let hi_depth = match hi_depth with Some h -> h | None -> 2 * n in
  let lo_depth = match lo_depth with Some l -> l | None -> n / 2 in
  if lo_depth > hi_depth then
    invalid_arg "Hybrid.create: lo_depth must not exceed hi_depth";
  let check_period =
    match check_period with Some p -> p | None -> Time.us 25
  in
  if check_period <= 0 then
    invalid_arg "Hybrid.create: check_period must be positive";
  let alloc =
    match alloc with Some a -> a | None -> Allocator.default_config ()
  in
  let engine = Machine.engine machine in
  let units =
    Array.of_list
      (List.map
         (fun core_id ->
           {
             ex = Rc.make_exec core_id;
             gen = 0;
             reserved = false;
             incoming = -1;
             kick_pending = false;
             qtimer = Engine.timer engine ignore;
             qt_gen = 0;
           })
         worker_cores)
  in
  let t =
    {
      rc = Rc.create machine kmod ~record_wakeups:false ~trace_app_switches:true;
      dispatcher_core;
      units;
      by_core = Hashtbl.create 16;
      mech = Centralized.skyloft_mechanism;
      quantum;
      tick_period = max 1 (1_000_000_000 / timer_hz);
      hi_depth;
      lo_depth;
      alloc_cfg = alloc;
      mode = Central;
      mode_switches = 0;
      disp_busy_until = 0;
      dispatches = 0;
      ticks = 0;
      failovers = 0;
    }
  in
  Array.iter (fun u -> Hashtbl.replace t.by_core u.ex.Rc.exec_core u) units;
  Array.iter (fun u -> Engine.set_callback u.qtimer (fun () -> quantum_fire t u)) units;
  Rc.install_dispatch t.rc
    {
      Rc.d_name = "hybrid";
      d_units = Array.map (fun u -> u.ex) units;
      d_enqueue_cpu = (fun _ -> t.dispatcher_core);
      d_incoming_app =
        (fun ex -> (Hashtbl.find t.by_core ex.Rc.exec_core).incoming);
      d_released =
        (fun ex ->
          let u = Hashtbl.find t.by_core ex.Rc.exec_core in
          u.gen <- u.gen + 1);
      d_reschedule =
        (fun ex ~prev -> reschedule t (Hashtbl.find t.by_core ex.Rc.exec_core) ~prev);
    };
  Rc.install_policy t.rc ctor;
  Array.iter
    (fun u ->
      let kt = Rc.add_kthread t.rc ~app:0 ~core:u.ex.Rc.exec_core in
      ignore (Kmod.activate kmod kt))
    units;
  Array.iter
    (fun u ->
      Kmod.on_steal kmod ~core:u.ex.Rc.exec_core (fun ~duration ->
          Rc.freeze_for_steal t.rc u.ex ~duration))
    units;
  Kmod.on_steal kmod ~core:dispatcher_core (fun ~duration ->
      t.disp_busy_until <- max t.disp_busy_until (now t + duration));
  (* Per-core delegated timers; the handler is a no-op outside percore
     mode, so central mode pays no tick overhead. *)
  Array.iter
    (fun u ->
      ignore
        (Engine.every t.rc.Rc.engine ~period:t.tick_period (fun () ->
             on_tick t u;
             true)))
    units;
  ignore
    (Engine.every t.rc.Rc.engine ~period:check_period (fun () ->
         check_mode t;
         true));
  Rc.start_watchdog t.rc ~bound:watchdog (fun ~bound -> watchdog_scan t ~bound);
  t

let create_app t ~name =
  let app = Rc.new_app t.rc ~name in
  Array.iter
    (fun u ->
      ignore (Rc.add_kthread t.rc ~app:app.App.id ~core:u.ex.Rc.exec_core))
    t.units;
  app

let attach_be_app t app ~chunk ~workers =
  Rc.spawn_be_workers t.rc app ~chunk ~workers ~who:"Hybrid.attach_be_app";
  Rc.start_allocator t.rc ~cfg:t.alloc_cfg ~be:app
    ~on_event:(fun ev ->
      match ev.Allocator.action with
      | Allocator.Degraded ->
          Rc.trace_instant t.rc ~core:t.dispatcher_core Trace.Alloc_degrade
            ev.Allocator.app_name
      | Allocator.Recovered ->
          Rc.trace_instant t.rc ~core:t.dispatcher_core Trace.Alloc_recover
            ev.Allocator.app_name
      | Allocator.Granted | Allocator.Reclaimed | Allocator.Yielded -> ())
    ~set_allowance:(set_be_allowance t);
  poke t;
  Array.iter (fun u -> reschedule t u ~prev:None) t.units

let allocator t = t.rc.Rc.allocator

(* ---- submission, deadlines, wakeups --------------------------------------- *)

let kill t ?on_drop task = Rc.kill t.rc ?on_drop task

let submit t app ?(service = 0) ?(record = true) ?deadline ?on_drop ~name body =
  let task = Rc.admit t.rc app ~name ~arrival:(now t) ~service ~record body in
  t.rc.Rc.policy.task_init task;
  t.rc.Rc.policy.task_enqueue ~cpu:t.dispatcher_core ~reason:Sched_ops.Enq_new
    task;
  poke t;
  (match deadline with
  | Some d ->
      Rc.arm_deadline t.rc ?on_drop task ~deadline:d
        ~err:"Hybrid.submit: deadline must be positive"
  | None -> ());
  task

let wakeup t (task : Task.t) =
  Rc.awaken t.rc task ~place:(fun task ->
      ignore (t.rc.Rc.policy.task_wakeup ~waker_cpu:t.dispatcher_core task);
      poke t)

(* ---- accessors ------------------------------------------------------------ *)

let mode t = t.mode
let mode_switches t = t.mode_switches
let dispatches t = t.dispatches
let preemptions t = t.rc.Rc.preempts
let be_preemptions t = t.rc.Rc.be_preempts
let timer_ticks t = t.ticks
let watchdog_rescues t = t.rc.Rc.rescues
let failovers t = t.failovers
let rescue_detection t = t.rc.Rc.rescue_detect
let deadline_drops t = t.rc.Rc.deadline_drops
let set_trace t trace = t.rc.Rc.trace <- Some trace
let queue_depth_series t = t.rc.Rc.queue_depth
let worker_busy_ns t = Rc.total_busy_ns t.rc

(* Pull-based registration: every closure reads existing state at snapshot
   time, so attaching a registry cannot perturb the simulation. *)
let register_metrics t ?(labels = []) reg =
  let rc = t.rc in
  let c name help read = Registry.counter reg ~help ~labels name read in
  c "skyloft_hybrid_dispatches_total" "Central-mode dispatcher assignments"
    (fun () -> t.dispatches);
  c "skyloft_hybrid_mode_switches_total" "Dispatch-mode transitions" (fun () ->
      t.mode_switches);
  c "skyloft_hybrid_preemptions_total" "LC preemptions (both mechanisms)"
    (fun () -> rc.Rc.preempts);
  c "skyloft_hybrid_be_preemptions_total" "Best-effort workers preempted"
    (fun () -> rc.Rc.be_preempts);
  c "skyloft_hybrid_timer_ticks_total" "Percore-mode timer interrupts handled"
    (fun () -> t.ticks);
  c "skyloft_hybrid_watchdog_rescues_total" "Stuck workers rescued" (fun () ->
      rc.Rc.rescues);
  c "skyloft_hybrid_failovers_total" "Dispatcher failovers" (fun () ->
      t.failovers);
  c "skyloft_hybrid_deadline_drops_total" "Tasks killed at their deadline"
    (fun () -> rc.Rc.deadline_drops);
  Registry.gauge reg ~labels "skyloft_hybrid_mode"
    ~help:"Current dispatch mode (0 = central, 1 = percore)" (fun () ->
      match t.mode with Central -> 0.0 | Percore -> 1.0);
  Registry.gauge reg ~labels "skyloft_hybrid_be_allowance"
    ~help:"Workers the best-effort application may occupy" (fun () ->
      float_of_int rc.Rc.be_allowance);
  Registry.gauge reg ~labels "skyloft_hybrid_queue_length"
    ~help:"LC tasks waiting in the shared queue" (fun () ->
      float_of_int (queue_length t));
  Registry.histogram reg ~labels "skyloft_hybrid_rescue_detection_ns"
    ~help:"Watchdog detection latency past the bound" rc.Rc.rescue_detect;
  Registry.series reg ~labels "skyloft_hybrid_queue_depth"
    ~help:"LC policy queue length" rc.Rc.queue_depth;
  Rc.register_app_metrics rc ~labels reg
