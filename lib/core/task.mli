module Time = Skyloft_sim.Time
module Coro = Skyloft_sim.Coro

(** User-level threads — the [task_t] of the paper (§3.3, Table 2).

    A task's shared fields (state, owning application, the policy-defined
    data words) live conceptually in Skyloft's cross-application shared
    memory so any application's copy of the scheduler sees them; the
    context/stack (here: the {!Coro} body and continuation) are private.

    Policy-defined data: the paper reserves one extra field per task for
    the policy.  We provide two floats and one int ([policy_f1],
    [policy_f2], [policy_i]) so CFS (vruntime), EEVDF (deadline + lag) and
    quantum-based policies all fit without per-policy allocation. *)

type state =
  | Runnable  (** in some runqueue *)
  | Running  (** on a CPU *)
  | Blocked  (** waiting for [task_wakeup] *)
  | Exited

type t = {
  id : int;
  app : int;  (** owning application id *)
  name : string;
  mutable state : state;
  mutable body : Coro.t;
  mutable cont : unit -> Coro.t;  (** continuation of the in-flight compute *)
  mutable segment_end : Time.t;
  mutable last_core : int;
  mutable run_start : Time.t;  (** when the task last started running *)
  mutable wake_time : Time.t option;
  mutable pending_wake : bool;
  mutable resuming : bool;  (** woken from a block: next dispatch resumes the
                                block continuation instead of re-blocking *)
  mutable track_wakeup : bool;  (** record this task's wakeup latencies in
                                    the runtime histogram (default true) *)
  mutable enqueue_time : Time.t;  (** when it last entered a runqueue *)
  mutable policy_f1 : float;
  mutable policy_f2 : float;
  mutable policy_i : int;
  mutable arrival : Time.t;  (** request arrival (workload metadata) *)
  mutable service : Time.t;  (** total service demand (workload metadata) *)
  mutable on_exit : (t -> unit) option;  (** completion callback *)
  mutable killed : bool;
      (** killed at its deadline while in a runqueue; the runtime discards
          it lazily at the next dequeue instead of searching every queue *)
  mutable obs_start : Time.t;
      (** when the runtime first accepted the task (latency-attribution
          epoch; distinct from [arrival], which workloads may backdate) *)
  mutable obs_enq_at : Time.t;  (** last runqueue entry (attribution stamp;
                                    distinct from the policy-owned
                                    [enqueue_time]) *)
  mutable obs_block_at : Time.t;  (** last transition to Blocked *)
  mutable obs_queued_ns : int;  (** accumulated runnable-but-not-running time *)
  mutable obs_overhead_ns : int;
      (** accumulated scheduling overhead charged to this task: switch
          costs at dispatch, preemption delivery, interrupt handling *)
  mutable obs_stall_ns : int;
      (** accumulated fault stall: blocked time plus host-kernel core
          steals that froze the running segment *)
}

val create :
  id:int -> app:int -> name:string -> ?arrival:Time.t -> ?service:Time.t ->
  ?on_exit:(t -> unit) -> Coro.t -> t
(** Fresh runnable task.  Ids are allocated per run by {!Runtime_core}
    (no process-wide counter), so concurrent simulations in different
    domains cannot perturb each other's task ids. *)

val is_runnable : t -> bool
val pp : Format.formatter -> t -> unit
