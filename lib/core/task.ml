module Time = Skyloft_sim.Time
module Coro = Skyloft_sim.Coro

type state = Runnable | Running | Blocked | Exited

type t = {
  id : int;
  app : int;
  name : string;
  mutable state : state;
  mutable body : Coro.t;
  mutable cont : unit -> Coro.t;
  mutable segment_end : Time.t;
  mutable last_core : int;
  mutable run_start : Time.t;
  mutable wake_time : Time.t option;
  mutable pending_wake : bool;
  mutable resuming : bool;
  mutable track_wakeup : bool;
  mutable enqueue_time : Time.t;
  mutable policy_f1 : float;
  mutable policy_f2 : float;
  mutable policy_i : int;
  mutable arrival : Time.t;
  mutable service : Time.t;
  mutable on_exit : (t -> unit) option;
  mutable killed : bool;
  mutable obs_start : Time.t;
  mutable obs_enq_at : Time.t;
  mutable obs_block_at : Time.t;
  mutable obs_queued_ns : int;
  mutable obs_overhead_ns : int;
  mutable obs_stall_ns : int;
}

let create ~id ~app ~name ?(arrival = 0) ?(service = 0) ?on_exit body =
  {
    id;
    app;
    name;
    state = Runnable;
    body;
    cont = (fun () -> Coro.Exit);
    segment_end = 0;
    last_core = -1;
    run_start = 0;
    wake_time = None;
    pending_wake = false;
    resuming = false;
    track_wakeup = true;
    enqueue_time = 0;
    policy_f1 = 0.0;
    policy_f2 = 0.0;
    policy_i = 0;
    arrival;
    service;
    on_exit;
    killed = false;
    obs_start = 0;
    obs_enq_at = 0;
    obs_block_at = 0;
    obs_queued_ns = 0;
    obs_overhead_ns = 0;
    obs_stall_ns = 0;
  }

let is_runnable t = match t.state with Runnable | Running -> true | Blocked | Exited -> false

let state_name = function
  | Runnable -> "runnable"
  | Running -> "running"
  | Blocked -> "blocked"
  | Exited -> "exited"

let pp ppf t = Format.fprintf ppf "%s#%d(app=%d,%s)" t.name t.id t.app (state_name t.state)
