module Time = Skyloft_sim.Time

type t = {
  latency : Histogram.t;
  slowdown : Histogram.t;
  wakeup : Histogram.t;
  mutable requests : int;
  mutable drops : int;
}

let create () =
  {
    latency = Histogram.create ();
    slowdown = Histogram.create ();
    wakeup = Histogram.create ();
    requests = 0;
    drops = 0;
  }

let record_request t ~arrival ~completion ~service =
  if completion < arrival then invalid_arg "Summary.record_request: completion < arrival";
  if service < 0 then invalid_arg "Summary.record_request: negative service";
  let response = completion - arrival in
  t.requests <- t.requests + 1;
  Histogram.record t.latency response;
  (* Slowdown is undefined for zero-service requests; they still count
     towards [requests] so completion reconciliation holds. *)
  if service > 0 then begin
    let slowdown_x1000 = response * 1000 / service in
    Histogram.record t.slowdown (max 1000 slowdown_x1000)
  end

let record_wakeup t v = Histogram.record t.wakeup v
let record_drop t = t.drops <- t.drops + 1
let requests t = t.requests
let drops t = t.drops
let latency t = t.latency
let slowdown t = t.slowdown
let wakeup t = t.wakeup
let latency_p t p = Histogram.percentile t.latency p
let slowdown_p t p = float_of_int (Histogram.percentile t.slowdown p) /. 1000.0
let wakeup_p t p = Histogram.percentile t.wakeup p

let throughput_rps t ~duration =
  if duration <= 0 then 0.0
  else float_of_int t.requests /. Time.to_s_float duration

let merge_into ~src ~dst =
  Histogram.merge_into ~src:src.latency ~dst:dst.latency;
  Histogram.merge_into ~src:src.slowdown ~dst:dst.slowdown;
  Histogram.merge_into ~src:src.wakeup ~dst:dst.wakeup;
  dst.requests <- dst.requests + src.requests;
  dst.drops <- dst.drops + src.drops
