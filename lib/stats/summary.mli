module Time = Skyloft_sim.Time

(** Per-run result accounting: request latencies, slowdowns, throughput.

    One [t] accumulates the outcome of one experiment run.  Latency is
    response time (completion - arrival); slowdown is response time divided
    by pure service time, the SLO metric used for the RocksDB experiment
    (§5.3).  Slowdowns are recorded scaled by 1000 (a slowdown of 1.0 is
    stored as 1000) to fit the integer histogram. *)

type t

val create : unit -> t

val record_request :
  t -> arrival:Time.t -> completion:Time.t -> service:Time.t -> unit
(** Record one finished request.  [completion >= arrival] and
    [service >= 0] are required; zero-service requests count towards
    [requests] (and the latency histogram) but record no slowdown
    sample, since slowdown is undefined at zero service. *)

val record_wakeup : t -> Time.t -> unit
(** Record a wakeup-latency sample (schbench-style). *)

val record_drop : t -> unit
(** Count one request that was killed instead of completing (deadline
    expiry).  Dropped requests contribute nothing to the latency
    histograms — they are accounted separately so "lost" work is always
    visible. *)

val requests : t -> int
val drops : t -> int
val latency : t -> Histogram.t
val slowdown : t -> Histogram.t
val wakeup : t -> Histogram.t

val latency_p : t -> float -> Time.t
(** Latency percentile in ns. *)

val slowdown_p : t -> float -> float
(** Slowdown percentile as a ratio (descaled). *)

val wakeup_p : t -> float -> Time.t

val throughput_rps : t -> duration:Time.t -> float
(** Completed requests per second of virtual time. *)

val merge_into : src:t -> dst:t -> unit
