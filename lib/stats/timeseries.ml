module Time = Skyloft_sim.Time

type t = {
  capacity : int;
  times : Time.t array;
  values : int array;
  mutable head : int;  (* next write position *)
  mutable count : int;
  mutable dropped : int;
  (* Accounting for the truncated prefix: the step function over samples
     already evicted from the ring.  [trunc_span] is the virtual time the
     evicted samples covered, [trunc_weighted] their value*dt integral —
     enough for [integrate]/[mean] to stay exact over the full history
     without retaining the samples themselves. *)
  mutable trunc_span : Time.t;
  mutable trunc_weighted : float;
}

let create ?(capacity = 65_536) () =
  if capacity <= 0 then invalid_arg "Timeseries.create: capacity must be positive";
  {
    capacity;
    times = Array.make capacity 0;
    values = Array.make capacity 0;
    head = 0;
    count = 0;
    dropped = 0;
    trunc_span = 0;
    trunc_weighted = 0.0;
  }

let nth t i =
  (* i-th retained sample, oldest first *)
  let start = if t.count = t.capacity then t.head else 0 in
  let j = (start + i) mod t.capacity in
  (t.times.(j), t.values.(j))

let last t = if t.count = 0 then None else Some (nth t (t.count - 1))

let record t ~at v =
  (match last t with
  | Some (prev_at, _) when at < prev_at ->
      invalid_arg "Timeseries.record: time went backwards"
  | _ -> ());
  match last t with
  | Some (_, prev_v) when prev_v = v -> ()
  | _ ->
      if t.count = t.capacity then begin
        (* Evicting the oldest sample: fold the interval it covered — up
           to the next retained sample (or the incoming one at capacity
           1) — into the truncated-prefix accumulators before the slot is
           overwritten. *)
        let t0 = t.times.(t.head) and v0 = t.values.(t.head) in
        let t1 = if t.capacity > 1 then t.times.((t.head + 1) mod t.capacity) else at in
        if t1 > t0 then begin
          t.trunc_span <- t.trunc_span + (t1 - t0);
          t.trunc_weighted <-
            t.trunc_weighted +. (float_of_int (t1 - t0) *. float_of_int v0)
        end;
        t.dropped <- t.dropped + 1
      end
      else t.count <- t.count + 1;
      t.times.(t.head) <- at;
      t.values.(t.head) <- v;
      t.head <- (t.head + 1) mod t.capacity

let length t = t.count
let dropped t = t.dropped
let truncated_span t = t.trunc_span

let to_list t =
  let acc = ref [] in
  for i = t.count - 1 downto 0 do
    acc := nth t i :: !acc
  done;
  !acc

let value_at t at =
  let found = ref None in
  (try
     for i = t.count - 1 downto 0 do
       let time, v = nth t i in
       if time <= at then begin
         found := Some v;
         raise Exit
       end
     done
   with Exit -> ());
  !found

(* Shared step-function integration: (sum of value * dt, covered span). *)
let weighted_span t ~until =
  let weighted = ref 0.0 and span = ref 0.0 in
  for i = 0 to t.count - 1 do
    let start, v = nth t i in
    let stop = if i = t.count - 1 then max until start else fst (nth t (i + 1)) in
    let stop = min stop (max until start) in
    if stop > start then begin
      let w = float_of_int (stop - start) in
      weighted := !weighted +. (w *. float_of_int v);
      span := !span +. w
    end
  done;
  (!weighted, !span)

let integrate t ~until =
  let weighted, _ = weighted_span t ~until in
  t.trunc_weighted +. weighted

let mean t ~until =
  if t.count = 0 then 0.0
  else begin
    let weighted, span = weighted_span t ~until in
    let weighted = t.trunc_weighted +. weighted
    and span = float_of_int t.trunc_span +. span in
    if span = 0.0 then float_of_int (snd (nth t (t.count - 1)))
    else weighted /. span
  end

let fold_values f init t =
  let acc = ref init in
  for i = 0 to t.count - 1 do
    acc := f !acc (snd (nth t i))
  done;
  !acc

let min_value t = if t.count = 0 then 0 else fold_values min max_int t
let max_value t = if t.count = 0 then 0 else fold_values max min_int t
