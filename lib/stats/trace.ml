module Time = Skyloft_sim.Time

type instant_kind =
  | Preempt
  | Wakeup
  | App_switch
  | Timer_tick
  | Fault
  | Core_grant
  | Core_reclaim
  | Inject
  | Watchdog_rescue
  | Failover
  | Deadline_drop
  | Alloc_degrade
  | Alloc_recover
  | Mode_switch
  | Broker_grant
  | Broker_reclaim
  | Broker_yield
  | Tenant_degrade
  | Tenant_recover
  | Quarantine
  | Release
  | Tenant_crash

type event =
  | Span of { core : int; app : int; name : string; start : Time.t; stop : Time.t }
  | Instant of { core : int; at : Time.t; kind : instant_kind; name : string }

(* ---- the flight recorder --------------------------------------------------

   Events are not boxed constructors: each one is a fixed-width 64-byte
   binary record written in place into a preallocated flat ring (the
   Snabb timeline layout — 8 little-endian words per record).  In memory
   the ring is a [Bigarray] of unboxed native ints: every field write is
   a single machine-word store — no per-byte decomposition, no Int64
   boxing, no GC write barrier — which is what makes the push an order
   of magnitude cheaper than allocating a constructor.  Names go through
   a string-interning side table with a two-entry pointer-equality memo,
   so the hot path performs zero allocation per event.  The [event]
   constructors above survive purely as the decode view: [iter]/[fold]
   rebuild them on the fly, so analysis passes are unchanged and unaware
   of the layout.

   Record layout (word index; ×8 bytes in the serialized image):
     w0  tag        0 = span, 1 = instant
     w1  core
     w2  app (span) | instant_kind code (instant)
     w3  interned name id
     w4  start (span) | at (instant)
     w5  stop (span)  | 0
     w6  reserved (0)
     w7  reserved (0)
   Every word — reserved zeros included — is stored on each write, so a
   record never carries stale slot bytes and the binary image is a pure
   function of the events it retains (see [to_binary], which serializes
   each word as 8 LE bytes — the on-disk format is independent of the
   in-memory one). *)

let record_bytes = 64
let record_words = 8

type ring = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  capacity : int;  (* records *)
  buf : ring;  (* capacity * record_words, flat, unboxed *)
  mutable head : int;  (* next record slot *)
  mutable count : int;
  mutable dropped : int;
  (* interning side table: id -> name and name -> id, plus a two-entry
     pointer-equality memo so a pair of alternating hot names (the
     common request/tick interleaving) never touches the hashtable *)
  mutable names : string array;
  mutable n_names : int;
  ids : (string, int) Hashtbl.t;
  mutable last_name : string;
  mutable last_id : int;
  mutable prev_name : string;
  mutable prev_id : int;
}

(* Memo slots start out pointing at a string no caller can hold (freshly
   allocated at module init), so the physical-equality test can never
   false-positive against an empty memo — not even for [""], which the
   runtime may share across compilation units. *)
let memo_empty = String.make 1 '\000'

let create ?(capacity = 100_000) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  (* No eager fill: a big ring would touch every page up front, and every
     record write covers all 8 words, so untouched slots are never read. *)
  let buf =
    Bigarray.Array1.create Bigarray.int Bigarray.c_layout
      (capacity * record_words)
  in
  {
    capacity;
    buf;
    head = 0;
    count = 0;
    dropped = 0;
    names = Array.make 64 "";
    n_names = 0;
    ids = Hashtbl.create 64;
    last_name = memo_empty;
    last_id = -1;
    prev_name = memo_empty;
    prev_id = -1;
  }

(* 63-bit OCaml ints as 8 LE bytes: low 7 bytes carry bits 0..55, the 8th
   carries bits 56..62 (sign bit included), so every int round-trips. *)
let set_word buf off v =
  Bytes.unsafe_set buf off (Char.unsafe_chr (v land 0xff));
  Bytes.unsafe_set buf (off + 1) (Char.unsafe_chr ((v lsr 8) land 0xff));
  Bytes.unsafe_set buf (off + 2) (Char.unsafe_chr ((v lsr 16) land 0xff));
  Bytes.unsafe_set buf (off + 3) (Char.unsafe_chr ((v lsr 24) land 0xff));
  Bytes.unsafe_set buf (off + 4) (Char.unsafe_chr ((v lsr 32) land 0xff));
  Bytes.unsafe_set buf (off + 5) (Char.unsafe_chr ((v lsr 40) land 0xff));
  Bytes.unsafe_set buf (off + 6) (Char.unsafe_chr ((v lsr 48) land 0xff));
  Bytes.unsafe_set buf (off + 7) (Char.unsafe_chr ((v asr 56) land 0x7f))

let get_word buf off =
  Char.code (Bytes.unsafe_get buf off)
  lor (Char.code (Bytes.unsafe_get buf (off + 1)) lsl 8)
  lor (Char.code (Bytes.unsafe_get buf (off + 2)) lsl 16)
  lor (Char.code (Bytes.unsafe_get buf (off + 3)) lsl 24)
  lor (Char.code (Bytes.unsafe_get buf (off + 4)) lsl 32)
  lor (Char.code (Bytes.unsafe_get buf (off + 5)) lsl 40)
  lor (Char.code (Bytes.unsafe_get buf (off + 6)) lsl 48)
  lor (Char.code (Bytes.unsafe_get buf (off + 7)) lsl 56)

let kind_code = function
  | Preempt -> 0
  | Wakeup -> 1
  | App_switch -> 2
  | Timer_tick -> 3
  | Fault -> 4
  | Core_grant -> 5
  | Core_reclaim -> 6
  | Inject -> 7
  | Watchdog_rescue -> 8
  | Failover -> 9
  | Deadline_drop -> 10
  | Alloc_degrade -> 11
  | Alloc_recover -> 12
  | Mode_switch -> 13
  | Broker_grant -> 14
  | Broker_reclaim -> 15
  | Broker_yield -> 16
  | Tenant_degrade -> 17
  | Tenant_recover -> 18
  | Quarantine -> 19
  | Release -> 20
  | Tenant_crash -> 21

let kind_of_code = function
  | 0 -> Preempt
  | 1 -> Wakeup
  | 2 -> App_switch
  | 3 -> Timer_tick
  | 4 -> Fault
  | 5 -> Core_grant
  | 6 -> Core_reclaim
  | 7 -> Inject
  | 8 -> Watchdog_rescue
  | 9 -> Failover
  | 10 -> Deadline_drop
  | 11 -> Alloc_degrade
  | 12 -> Alloc_recover
  | 13 -> Mode_switch
  | 14 -> Broker_grant
  | 15 -> Broker_reclaim
  | 16 -> Broker_yield
  | 17 -> Tenant_degrade
  | 18 -> Tenant_recover
  | 19 -> Quarantine
  | 20 -> Release
  | 21 -> Tenant_crash
  | c -> invalid_arg (Printf.sprintf "Trace: unknown instant kind code %d" c)

(* Two-entry memo: the hot pair of names (request spans interleaved with
   tick instants, say) stays resolvable by pointer comparison alone.  A
   hit on the second slot swaps it to the front; only a miss on both
   pays the hashtable probe.  Interning order — and so every assigned
   id — is independent of memo state. *)
let intern t name =
  if name == t.last_name then t.last_id
  else if name == t.prev_name then begin
    let id = t.prev_id in
    t.prev_name <- t.last_name;
    t.prev_id <- t.last_id;
    t.last_name <- name;
    t.last_id <- id;
    id
  end
  else begin
    let id =
      try Hashtbl.find t.ids name
      with Not_found ->
        let id = t.n_names in
        if id = Array.length t.names then begin
          let bigger = Array.make (2 * id) "" in
          Array.blit t.names 0 bigger 0 id;
          t.names <- bigger
        end;
        t.names.(id) <- name;
        t.n_names <- id + 1;
        Hashtbl.add t.ids name id;
        id
    in
    t.prev_name <- t.last_name;
    t.prev_id <- t.last_id;
    t.last_name <- name;
    t.last_id <- id;
    id
  end

(* Claim the next slot, returning its word offset; advancing over a full
   ring overwrites the oldest record and counts it as dropped. *)
let slot t =
  let off = t.head * record_words in
  if t.count = t.capacity then t.dropped <- t.dropped + 1
  else t.count <- t.count + 1;
  t.head <- t.head + 1;
  if t.head = t.capacity then t.head <- 0;
  off

(* Eight single-word stores per record — all words written every time
   (including the reserved zeros), so the ring never needs pre-zeroing
   and a reused slot carries no stale bytes. *)
let span t ~core ~app ~name ~start ~stop =
  if stop < start then invalid_arg "Trace.span: stop before start";
  let id = intern t name in
  let off = slot t in
  let buf = t.buf in
  Bigarray.Array1.unsafe_set buf off 0;
  Bigarray.Array1.unsafe_set buf (off + 1) core;
  Bigarray.Array1.unsafe_set buf (off + 2) app;
  Bigarray.Array1.unsafe_set buf (off + 3) id;
  Bigarray.Array1.unsafe_set buf (off + 4) start;
  Bigarray.Array1.unsafe_set buf (off + 5) stop;
  Bigarray.Array1.unsafe_set buf (off + 6) 0;
  Bigarray.Array1.unsafe_set buf (off + 7) 0

let instant t ~core ~at kind ~name =
  let id = intern t name in
  let off = slot t in
  let buf = t.buf in
  Bigarray.Array1.unsafe_set buf off 1;
  Bigarray.Array1.unsafe_set buf (off + 1) core;
  Bigarray.Array1.unsafe_set buf (off + 2) (kind_code kind);
  Bigarray.Array1.unsafe_set buf (off + 3) id;
  Bigarray.Array1.unsafe_set buf (off + 4) at;
  Bigarray.Array1.unsafe_set buf (off + 5) 0;
  Bigarray.Array1.unsafe_set buf (off + 6) 0;
  Bigarray.Array1.unsafe_set buf (off + 7) 0

let events t = t.count
let dropped t = t.dropped
let interned t = t.n_names

let clear t =
  Bigarray.Array1.fill t.buf 0;
  t.head <- 0;
  t.count <- 0;
  t.dropped <- 0;
  Array.fill t.names 0 t.n_names "";
  t.n_names <- 0;
  Hashtbl.reset t.ids;
  t.last_name <- memo_empty;
  t.last_id <- -1;
  t.prev_name <- memo_empty;
  t.prev_id <- -1

(* ---- decode view ---------------------------------------------------------- *)

let decode t off =
  let buf = t.buf in
  let word i = Bigarray.Array1.unsafe_get buf (off + i) in
  let core = word 1 in
  let name = t.names.(word 3) in
  match word 0 with
  | 0 -> Span { core; app = word 2; name; start = word 4; stop = word 5 }
  | 1 -> Instant { core; at = word 4; kind = kind_of_code (word 2); name }
  | tag -> invalid_arg (Printf.sprintf "Trace: unknown record tag %d" tag)

(* Oldest-first iteration over the ring. *)
let iter t f =
  let start = if t.count = t.capacity then t.head else 0 in
  for i = 0 to t.count - 1 do
    let idx = start + i in
    let idx = if idx >= t.capacity then idx - t.capacity else idx in
    f (decode t (idx * record_words))
  done

let fold t f init =
  let acc = ref init in
  iter t (fun ev -> acc := f !acc ev);
  !acc

(* ---- rendering ------------------------------------------------------------ *)

let kind_name = function
  | Preempt -> "preempt"
  | Wakeup -> "wakeup"
  | App_switch -> "app-switch"
  | Timer_tick -> "tick"
  | Fault -> "fault"
  | Core_grant -> "core-grant"
  | Core_reclaim -> "core-reclaim"
  | Inject -> "inject"
  | Watchdog_rescue -> "watchdog-rescue"
  | Failover -> "failover"
  | Deadline_drop -> "deadline-drop"
  | Alloc_degrade -> "alloc-degrade"
  | Alloc_recover -> "alloc-recover"
  | Mode_switch -> "mode-switch"
  | Broker_grant -> "broker-grant"
  | Broker_reclaim -> "broker-reclaim"
  | Broker_yield -> "broker-yield"
  | Tenant_degrade -> "tenant-degrade"
  | Tenant_recover -> "tenant-recover"
  | Quarantine -> "quarantine"
  | Release -> "release"
  | Tenant_crash -> "tenant-crash"

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let us t = float_of_int t /. 1_000.0

let event_json ev =
  match ev with
  | Span { core; app; name; start; stop } ->
      Printf.sprintf
        {|{"name":"%s","ph":"X","ts":%.3f,"dur":%.3f,"pid":%d,"tid":%d}|}
        (escape name) (us start)
        (us (stop - start))
        app core
  | Instant { core; at; kind; name } ->
      Printf.sprintf
        {|{"name":"%s:%s","ph":"i","ts":%.3f,"pid":0,"tid":%d,"s":"t"}|}
        (kind_name kind) (escape name) (us at) core

let event_to_string ev =
  match ev with
  | Span { core; app; name; start; stop } ->
      Printf.sprintf "%12d ns  span     core=%-3d app=%-3d %8d ns  %s" start
        core app (stop - start) name
  | Instant { core; at; kind; name } ->
      Printf.sprintf "%12d ns  instant  core=%-3d %-15s %s" at core
        (kind_name kind) name

(* Trailing metadata event: a truncated trace says so instead of looking
   complete.  Consumers ignore "M" events; analysis passes read [dropped]. *)
let dropped_json t =
  Printf.sprintf
    {|{"name":"skyloft_dropped","ph":"M","pid":0,"tid":0,"args":{"dropped":%d,"retained":%d}}|}
    t.dropped t.count

let to_chrome_json t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "[";
  iter t (fun ev ->
      Buffer.add_string buf (event_json ev);
      Buffer.add_string buf ",\n");
  Buffer.add_string buf (dropped_json t);
  Buffer.add_string buf "]";
  Buffer.contents buf

let write_chrome_json t ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_chrome_json t))

(* ---- binary image --------------------------------------------------------

   A self-describing flat file (the decoder CLI's interchange format):

     64-byte header: magic "SKYLFTTR", version, record_bytes, capacity,
                     count, dropped, interned-name count, reserved;
     name table:     per name, one length word + the raw bytes;
     records:        count x record_bytes, oldest first.

   Writing normalizes the ring (records come out oldest-first from slot
   0), so the image is a pure function of the retained events, the drop
   counter and the interning history — same events, same bytes. *)

let magic = "SKYLFTTR"
let binary_version = 1

let to_binary t =
  let buf = Buffer.create ((t.count * record_bytes) + 1024) in
  let word v =
    let w = Bytes.create 8 in
    set_word w 0 v;
    Buffer.add_bytes buf w
  in
  Buffer.add_string buf magic;
  word binary_version;
  word record_bytes;
  word t.capacity;
  word t.count;
  word t.dropped;
  word t.n_names;
  word 0;
  for i = 0 to t.n_names - 1 do
    word (String.length t.names.(i));
    Buffer.add_string buf t.names.(i)
  done;
  let start = if t.count = t.capacity then t.head else 0 in
  for i = 0 to t.count - 1 do
    let idx = start + i in
    let idx = if idx >= t.capacity then idx - t.capacity else idx in
    let off = idx * record_words in
    for w = 0 to record_words - 1 do
      word (Bigarray.Array1.unsafe_get t.buf (off + w))
    done
  done;
  Buffer.contents buf

let of_binary s =
  let fail fmt = Printf.ksprintf invalid_arg ("Trace.of_binary: " ^^ fmt) in
  let len = String.length s in
  if len < 64 then fail "truncated header (%d bytes)" len;
  if String.sub s 0 8 <> magic then fail "bad magic";
  let b = Bytes.unsafe_of_string s in
  let word i = get_word b (8 + (8 * i)) in
  if word 0 <> binary_version then fail "unsupported version %d" (word 0);
  if word 1 <> record_bytes then fail "unsupported record size %d" (word 1);
  let capacity = word 2 and count = word 3 and dropped = word 4 in
  let n_names = word 5 in
  if capacity <= 0 then fail "non-positive capacity";
  if count < 0 || count > capacity then fail "count out of range";
  if dropped < 0 then fail "negative drop count";
  let t = create ~capacity () in
  let pos = ref 64 in
  let take n what =
    if !pos + n > len then fail "truncated %s" what;
    let p = !pos in
    pos := !pos + n;
    p
  in
  for _ = 1 to n_names do
    let nlen = get_word b (take 8 "name length") in
    if nlen < 0 then fail "negative name length";
    let name = String.sub s (take nlen "name bytes") nlen in
    if Hashtbl.mem t.ids name then fail "duplicate interned name %S" name;
    ignore (intern t name)
  done;
  let records = take (count * record_bytes) "records" in
  for r = 0 to count - 1 do
    let src = records + (r * record_bytes) in
    let dst = r * record_words in
    for w = 0 to record_words - 1 do
      Bigarray.Array1.unsafe_set t.buf (dst + w) (get_word b (src + (8 * w)))
    done
  done;
  t.count <- count;
  t.head <- (if count = capacity then 0 else count);
  t.dropped <- dropped;
  (* validate every record decodes (tags, kind codes, name ids in range) *)
  (try
     for r = 0 to count - 1 do
       let off = r * record_words in
       let id = Bigarray.Array1.unsafe_get t.buf (off + 3) in
       if id < 0 || id >= t.n_names then fail "name id %d out of range" id;
       ignore (decode t off)
     done
   with Invalid_argument m -> fail "%s" m);
  t

let write_binary t ~path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_binary t))

let read_binary ~path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_binary (really_input_string ic (in_channel_length ic)))
