module Time = Skyloft_sim.Time

type instant_kind =
  | Preempt
  | Wakeup
  | App_switch
  | Timer_tick
  | Fault
  | Core_grant
  | Core_reclaim
  | Inject
  | Watchdog_rescue
  | Failover
  | Deadline_drop
  | Alloc_degrade
  | Alloc_recover
  | Mode_switch

type event =
  | Span of { core : int; app : int; name : string; start : Time.t; stop : Time.t }
  | Instant of { core : int; at : Time.t; kind : instant_kind; name : string }

type t = {
  capacity : int;
  ring : event option array;
  mutable head : int;  (* next write position *)
  mutable count : int;
  mutable dropped : int;
}

let create ?(capacity = 100_000) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { capacity; ring = Array.make capacity None; head = 0; count = 0; dropped = 0 }

let push t ev =
  if t.count = t.capacity then t.dropped <- t.dropped + 1 else t.count <- t.count + 1;
  t.ring.(t.head) <- Some ev;
  t.head <- (t.head + 1) mod t.capacity

let span t ~core ~app ~name ~start ~stop =
  if stop < start then invalid_arg "Trace.span: stop before start";
  push t (Span { core; app; name; start; stop })

let instant t ~core ~at kind ~name = push t (Instant { core; at; kind; name })
let events t = t.count
let dropped t = t.dropped

let clear t =
  Array.fill t.ring 0 t.capacity None;
  t.head <- 0;
  t.count <- 0;
  t.dropped <- 0

let kind_name = function
  | Preempt -> "preempt"
  | Wakeup -> "wakeup"
  | App_switch -> "app-switch"
  | Timer_tick -> "tick"
  | Fault -> "fault"
  | Core_grant -> "core-grant"
  | Core_reclaim -> "core-reclaim"
  | Inject -> "inject"
  | Watchdog_rescue -> "watchdog-rescue"
  | Failover -> "failover"
  | Deadline_drop -> "deadline-drop"
  | Alloc_degrade -> "alloc-degrade"
  | Alloc_recover -> "alloc-recover"
  | Mode_switch -> "mode-switch"

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let us t = float_of_int t /. 1_000.0

(* Oldest-first iteration over the ring. *)
let iter t f =
  let start = if t.count = t.capacity then t.head else 0 in
  for i = 0 to t.count - 1 do
    match t.ring.((start + i) mod t.capacity) with Some ev -> f ev | None -> ()
  done

let fold t f init =
  let acc = ref init in
  iter t (fun ev -> acc := f !acc ev);
  !acc

let event_json ev =
  match ev with
  | Span { core; app; name; start; stop } ->
      Printf.sprintf
        {|{"name":"%s","ph":"X","ts":%.3f,"dur":%.3f,"pid":%d,"tid":%d}|}
        (escape name) (us start)
        (us (stop - start))
        app core
  | Instant { core; at; kind; name } ->
      Printf.sprintf
        {|{"name":"%s:%s","ph":"i","ts":%.3f,"pid":0,"tid":%d,"s":"t"}|}
        (kind_name kind) (escape name) (us at) core

(* Trailing metadata event: a truncated trace says so instead of looking
   complete.  Consumers ignore "M" events; analysis passes read [dropped]. *)
let dropped_json t =
  Printf.sprintf
    {|{"name":"skyloft_dropped","ph":"M","pid":0,"tid":0,"args":{"dropped":%d,"retained":%d}}|}
    t.dropped t.count

let to_chrome_json t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "[";
  iter t (fun ev ->
      Buffer.add_string buf (event_json ev);
      Buffer.add_string buf ",\n");
  Buffer.add_string buf (dropped_json t);
  Buffer.add_string buf "]";
  Buffer.contents buf

let write_chrome_json t ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_chrome_json t))
