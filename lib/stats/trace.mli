module Time = Skyloft_sim.Time

(** Scheduling trace: a bounded ring of runtime events, exportable as
    Chrome trace-event JSON (load in [chrome://tracing] or Perfetto).

    The runtimes emit a {e span} for every interval a task spends on a
    core and {e instants} for scheduling events (preemptions, wakeups,
    application switches).  Tracing is opt-in per runtime and cheap
    enough to leave on in tests. *)

type t

(** A retained event: either a run interval of one task on one core, or a
    point-in-time scheduling event.  Exposed so analysis passes
    (utilization, invariant checking — see [lib/obs]) can fold over the
    ring without going through the JSON rendering. *)
type instant_kind =
  | Preempt  (** the running task was preempted *)
  | Wakeup  (** a blocked task was made runnable *)
  | App_switch  (** cross-application kthread switch *)
  | Timer_tick  (** user timer interrupt handled *)
  | Fault  (** blocking event (page fault) *)
  | Core_grant  (** the core allocator granted a core to an application *)
  | Core_reclaim  (** the core allocator reclaimed a core *)
  | Inject  (** a fault-injection plan fired (lib/fault) *)
  | Watchdog_rescue  (** the per-core watchdog forced a scheduling point *)
  | Failover  (** a stalled dispatcher was replaced by a promoted worker *)
  | Deadline_drop  (** a task was killed at its deadline *)
  | Alloc_degrade  (** the allocator fell back to its static policy *)
  | Alloc_recover  (** the allocator left degraded mode *)
  | Mode_switch  (** a hybrid runtime changed dispatch mode *)

type event =
  | Span of { core : int; app : int; name : string; start : Time.t; stop : Time.t }
  | Instant of { core : int; at : Time.t; kind : instant_kind; name : string }

val create : ?capacity:int -> unit -> t
(** Keep at most [capacity] (default 100,000) most recent events. *)

val span : t -> core:int -> app:int -> name:string -> start:Time.t -> stop:Time.t -> unit
(** A task ran on [core] from [start] to [stop]. *)

val instant : t -> core:int -> at:Time.t -> instant_kind -> name:string -> unit

val events : t -> int
(** Events currently retained. *)

val dropped : t -> int
(** Events discarded because the ring was full. *)

val clear : t -> unit
(** Forget every retained event and reset the drop counter (reuse one
    ring across runs without reallocating). *)

val iter : t -> (event -> unit) -> unit
(** Oldest-first iteration over the retained events. *)

val fold : t -> ('a -> event -> 'a) -> 'a -> 'a

val kind_name : instant_kind -> string
(** Stable lowercase name used in exports (e.g. ["preempt"]). *)

val escape : string -> string
(** JSON string-body escaping used by the exports (shared with the
    counter-track export in [lib/obs]). *)

val to_chrome_json : t -> string
(** The retained events in Chrome trace-event array format: spans as
    ["X"] complete events (ts/dur in µs), instants as ["i"]; [pid] is the
    application id and [tid] the core.  The array ends with one ["M"]
    (metadata) event, [skyloft_dropped], whose [args] carry the
    {!dropped} and retained counts — a truncated trace is self-describing
    instead of silently incomplete. *)

val write_chrome_json : t -> path:string -> unit
