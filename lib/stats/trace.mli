module Time = Skyloft_sim.Time

(** Scheduling flight recorder: a bounded ring of fixed-width 64-byte
    binary records in one preallocated flat buffer (a [Bigarray] of
    unboxed native ints), exportable as Chrome trace-event JSON (load in
    [chrome://tracing] or Perfetto) or as a self-describing binary
    image.

    The runtimes emit a {e span} for every interval a task spends on a
    core and {e instants} for scheduling events (preemptions, wakeups,
    application switches); the machine-level core broker emits instants
    for its arbitration and tenant-health edges.  Recording performs
    {e zero allocation} per event: payloads are int-packed into the ring
    in place (Snabb timeline idiom) and names go through a
    string-interning side table, so tracing is cheap enough to leave on
    everywhere — in tests, in the benches, and across million-request
    runs. *)

type t

(** A retained event in the {e decode view}: either a run interval of one
    task on one core, or a point-in-time scheduling event.  The binary
    ring is the storage; analysis passes (utilization, invariant
    checking — see [lib/obs]) fold over these decoded values without
    knowing the layout. *)
type instant_kind =
  | Preempt  (** the running task was preempted *)
  | Wakeup  (** a blocked task was made runnable *)
  | App_switch  (** cross-application kthread switch *)
  | Timer_tick  (** user timer interrupt handled *)
  | Fault  (** blocking event (page fault) *)
  | Core_grant  (** the core allocator granted a core to an application *)
  | Core_reclaim  (** the core allocator reclaimed a core *)
  | Inject  (** a fault-injection plan fired (lib/fault) *)
  | Watchdog_rescue  (** the per-core watchdog forced a scheduling point *)
  | Failover  (** a stalled dispatcher was replaced by a promoted worker *)
  | Deadline_drop  (** a task was killed at its deadline *)
  | Alloc_degrade  (** the allocator fell back to its static policy *)
  | Alloc_recover  (** the allocator left degraded mode *)
  | Mode_switch  (** a hybrid runtime changed dispatch mode *)
  | Broker_grant  (** the machine broker granted cores to a tenant *)
  | Broker_reclaim  (** the machine broker reclaimed cores from a tenant *)
  | Broker_yield  (** a tenant voluntarily yielded cores to the broker *)
  | Tenant_degrade  (** a tenant's congestion signal went stale *)
  | Tenant_recover  (** a stale tenant's signal moved again *)
  | Quarantine  (** a hoarding tenant was clamped to its floor *)
  | Release  (** a quarantined tenant served out its sentence *)
  | Tenant_crash  (** a tenant crashed; everything reclaimed *)

type event =
  | Span of { core : int; app : int; name : string; start : Time.t; stop : Time.t }
  | Instant of { core : int; at : Time.t; kind : instant_kind; name : string }

val record_bytes : int
(** Fixed record width: 64 bytes (8 little-endian 8-byte words). *)

val create : ?capacity:int -> unit -> t
(** Keep at most [capacity] (default 100,000) most recent events.  The
    ring is allocated once, up front ([capacity * record_bytes] bytes);
    recording never allocates again. *)

val span : t -> core:int -> app:int -> name:string -> start:Time.t -> stop:Time.t -> unit
(** A task ran on [core] from [start] to [stop]. *)

val instant : t -> core:int -> at:Time.t -> instant_kind -> name:string -> unit

val events : t -> int
(** Events currently retained. *)

val dropped : t -> int
(** Events discarded because the ring was full. *)

val interned : t -> int
(** Distinct names in the interning side table. *)

val clear : t -> unit
(** Forget every retained event, reset the drop counter and the interning
    table (reuse one ring across runs without reallocating). *)

val iter : t -> (event -> unit) -> unit
(** Oldest-first iteration, decoding each record into the {!event} view. *)

val fold : t -> ('a -> event -> 'a) -> 'a -> 'a

val kind_name : instant_kind -> string
(** Stable lowercase name used in exports (e.g. ["preempt"]). *)

val escape : string -> string
(** JSON string-body escaping used by the exports (shared with the
    counter-track export in [lib/obs]). *)

val event_to_string : event -> string
(** One fixed-width human-readable line per event (the [trace-dump]
    rendering): timestamp, record class, core, payload, name. *)

val to_chrome_json : t -> string
(** The retained events in Chrome trace-event array format: spans as
    ["X"] complete events (ts/dur in µs), instants as ["i"]; [pid] is the
    application id and [tid] the core.  The array ends with one ["M"]
    (metadata) event, [skyloft_dropped], whose [args] carry the
    {!dropped} and retained counts — a truncated trace is self-describing
    instead of silently incomplete. *)

val write_chrome_json : t -> path:string -> unit

(** {1 Binary image}

    The flat interchange format the [skyloft_run trace-dump] decoder
    reads: a 64-byte header (magic ["SKYLFTTR"], version, record width,
    ring geometry, drop count), the interning table, then the retained
    records oldest-first.  Writing normalizes the ring, so the image is a
    pure function of the retained events, the drop counter and the
    interning history — same events, same bytes. *)

val to_binary : t -> string

val of_binary : string -> t
(** Rebuild a trace from {!to_binary} output.  The result decodes,
    renders and re-serializes identically to the original.  Raises
    [Invalid_argument] on a corrupt image (bad magic/version, truncation,
    out-of-range name ids or kind codes). *)

val write_binary : t -> path:string -> unit
val read_binary : path:string -> t
