module Time = Skyloft_sim.Time

(** Step-function timeseries: (time, value) samples recorded in
    nondecreasing time order, holding each value until the next sample.

    Used for slowly-changing runtime state — per-application core counts
    from the allocator, queue depths — where a histogram would lose the
    time dimension.

    {b Window semantics.}  Storage is bounded: once [capacity] is
    exceeded the oldest sample is evicted per new sample recorded.  The
    retained ring is therefore a sliding {e window} over the most recent
    history — [to_list], [value_at], [min_value] and [max_value] see only
    that window.  Eviction is not silent: the time span and value*dt
    integral of every evicted sample's holding interval are folded into
    constant-size accumulators, so [integrate] and [mean] remain exact
    over the {e full} history since the first sample, no matter how long
    the run (the million-request scale cells rely on this — a wrapped
    series must not skew utilization).  [truncated_span] exposes how much
    of that history has scrolled out of the window. *)

type t

val create : ?capacity:int -> unit -> t
(** Keep at most [capacity] (default 65,536) most recent samples. *)

val record : t -> at:Time.t -> int -> unit
(** Append a sample.  [at] must be >= the previous sample's time.
    Consecutive samples with the same value are collapsed. *)

val length : t -> int

val dropped : t -> int
(** Samples evicted from the window so far (their time-weighted
    contribution is preserved in [integrate]/[mean]). *)

val truncated_span : t -> Time.t
(** Virtual time covered by evicted samples: the distance between the
    first sample ever recorded and the start of the retained window.
    [0] until the series wraps. *)

val last : t -> (Time.t * int) option

val to_list : t -> (Time.t * int) list
(** Chronological (oldest first); the retained window only. *)

val value_at : t -> Time.t -> int option
(** Step-function lookup: the value of the last sample at or before the
    given time; [None] before the first sample. *)

val mean : t -> until:Time.t -> float
(** Time-weighted mean of the step function from the {e first sample
    ever} to [until] — evicted samples included via the truncation
    accumulators, so a wrapped series still reports an unskewed mean.
    [0.0] when empty, so an unused series renders as zero in reports
    instead of propagating [nan] through every aggregate. *)

val integrate : t -> until:Time.t -> float
(** Time-weighted sum of the step function from the {e first sample
    ever} to [until]: [sum (value * dt)] over the covered span, in
    value·ns, evicted samples included.  Dividing by a duration gives
    e.g. mean granted cores (the utilization pass in [lib/obs] builds
    core-seconds this way).  [0.0] when empty. *)

val min_value : t -> int
val max_value : t -> int
(** Extremes over the retained window only; 0 when empty. *)
